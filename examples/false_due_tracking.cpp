/**
 * @file
 * A didactic walk through the pi-bit machinery of Section 4: takes
 * a small hand-written program, pretends the instruction queue
 * detected a parity error on each instruction in turn, and shows
 * where every tracking level finally signals the error — or proves
 * it false and suppresses it.
 *
 * Usage: false_due_tracking
 */

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "avf/deadness.hh"
#include "core/pi_machine.hh"
#include "cpu/pipeline.hh"
#include "harness/bench_options.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "isa/assembler.hh"

using namespace ser;
using core::PiMachine;
using core::TrackingLevel;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv,
        "Walkthrough: where each tracking level signals or "
        "suppresses a detected error");
    // A little program with one of everything the paper's taxonomy
    // cares about: live work, a no-op and a prefetch (neutral), a
    // nullified instruction, an overwritten-unread def (FDD), a
    // dead chain (TDD), and dead stores.
    const char *src = R"(
        .entry main
        main:
            movi r5 = 0x4000
            movi r2 = 6
            movi r3 = 7
            mul r4 = r2, r3       // live: reaches the out
            nop                   // neutral
            prefetch [r5, 64]     // neutral
            cmpieq p2 = r4, 0
            (p2) addi r4 = r4, 1  // predicated false
            movi r8 = 111         // FDD: overwritten unread
            movi r8 = 222
            addi r9 = r8, 1       // TDD: read only by a dead def
            movi r9 = 0
            st8 [r5, 0] = r4      // live store: loaded below
            ld8 r10 = [r5, 0]
            st8 [r5, 8] = r2      // dead store: overwritten unread
            st8 [r5, 8] = r10
            out r4
            out r10
            halt
    )";
    isa::Program program = isa::assembleOrDie(src);

    cpu::PipelineParams params;
    params.maxInsts = 1000;
    cpu::InOrderPipeline pipe(program, params);
    cpu::SimTrace trace = pipe.run();
    trace.program = &program;
    avf::DeadnessResult dead = avf::analyzeDeadness(trace);

    const TrackingLevel levels[] = {
        TrackingLevel::None,          TrackingLevel::PiToCommit,
        TrackingLevel::AntiPi,        TrackingLevel::PetBuffer,
        TrackingLevel::PiRegFile,     TrackingLevel::PiStoreBuffer,
        TrackingLevel::PiMemory,
    };

    harness::printHeading(
        std::cout,
        "where each tracking level signals a detected error");
    std::cout << std::left << std::setw(34) << "instruction"
              << std::setw(10) << "deadness";
    for (auto l : levels)
        std::cout << std::setw(18) << core::trackingLevelName(l);
    std::cout << "\n" << std::string(34 + 10 + 18 * 7, '-') << "\n";

    std::vector<std::string> headers = {"instruction", "deadness"};
    for (auto l : levels)
        headers.push_back(core::trackingLevelName(l));
    harness::Table matrix(headers);

    for (std::uint64_t i = 0; i < trace.commits.size(); ++i) {
        const auto &cr = trace.commits[i];
        const isa::StaticInst &inst = program.inst(cr.staticIdx);
        std::string text = inst.toString();
        if (!cr.qpTrue)
            text += " [nullified]";
        std::vector<std::string> row = {
            text, avf::deadKindName(dead.kind[i])};
        std::cout << std::setw(34) << text.substr(0, 33)
                  << std::setw(10)
                  << avf::deadKindName(dead.kind[i]);
        for (auto l : levels) {
            PiMachine machine(trace, l);
            auto out = machine.run(i);
            std::string cell =
                out.signalled ? core::piSignalPointName(out.point)
                              : "(suppressed)";
            std::cout << std::setw(18) << cell;
            row.push_back(cell);
        }
        matrix.addRow(row);
        std::cout << "\n";
    }

    std::cout
        << "\nreading guide: plain parity signals everything at "
           "detection; pi-to-commit clears nullified instructions; "
           "the anti-pi bit clears no-ops and prefetches; the PET "
           "buffer and the pi-bit levels progressively prove the "
           "dead defs false, until pi-on-memory signals only what "
           "truly reaches the program output (Section 4.3).\n";

    if (!opts.jsonPath.empty()) {
        harness::JsonReport report;
        report.setArgs(opts.config);
        report.addTable("tracking_matrix", matrix);
        report.write(opts.jsonPath);
    }
    return 0;
}
