/**
 * @file
 * Scenario: validating the analytical AVF with statistical fault
 * injection (the methodology of the paper's related work, Kim &
 * Somani / Wang et al.). Runs a Monte-Carlo campaign against a
 * surrogate benchmark, prints the Figure-1 outcome distribution
 * under both protection schemes, and tells a few concrete fault
 * stories (which instruction was hit, in which field, and what
 * happened).
 *
 * Usage: fault_injection_demo [benchmark=crafty] [insts=40000]
 *        [samples=400]
 */

#include <iostream>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "cpu/pipeline.hh"
#include "faults/campaign.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "isa/encoding.hh"
#include "isa/executor.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Monte-Carlo fault-injection campaign");
    Config &config = opts.config;
    std::string benchmark = config.getString("benchmark", "crafty");
    std::uint64_t insts = config.getUint("insts", 40000);
    std::uint64_t samples = config.getUint("samples", 400);

    isa::Program program =
        workloads::buildBenchmark(benchmark, insts);
    isa::Executor golden(program);
    if (golden.run(insts * 3) != isa::Termination::Halted) {
        std::cerr << "golden run failed\n";
        return 1;
    }

    // The timing run goes through the experiment harness (instead of
    // a raw pipeline) with the same parameters as before — no
    // warmup, same instruction cap — so --json gets a full run
    // manifest and --metrics-out sees the run's phases.
    harness::ExperimentConfig run_cfg;
    run_cfg.dynamicTarget = insts;
    run_cfg.warmupInsts = 0;
    run_cfg.pipeline.maxInsts = insts * 3;
    run_cfg.intervalCycles = opts.intervalCycles;
    harness::RunArtifacts run =
        harness::runProgram(program, run_cfg, benchmark);
    const cpu::SimTrace &trace = *run.trace;

    faults::FaultInjector injector(*run.program, trace,
                                   golden.state().output());

    harness::printHeading(std::cout, "outcome distribution (" +
                                         std::to_string(samples) +
                                         " samples)");
    Table outcomes(
        {"protection", "outcome", "count", "rate", "lo95", "hi95"});
    for (auto prot :
         {faults::Protection::None, faults::Protection::Parity}) {
        faults::CampaignConfig cfg;
        cfg.samples = samples;
        cfg.protection = prot;
        auto res = faults::runCampaign(injector, trace, cfg);
        const char *prot_name = prot == faults::Protection::None
                                    ? "none"
                                    : "parity";
        std::cout << (prot == faults::Protection::None
                          ? "unprotected queue:\n"
                          : "parity-protected queue:\n")
                  << res.summary() << "\n";
        for (std::size_t o = 0; o < faults::numOutcomes; ++o) {
            auto outcome = static_cast<faults::Outcome>(o);
            auto iv = res.interval(outcome);
            outcomes.addRow({prot_name,
                             faults::outcomeName(outcome),
                             std::to_string(res.count(outcome)),
                             Table::pct(res.rate(outcome)),
                             Table::pct(iv.lo), Table::pct(iv.hi)});
        }
    }

    harness::printHeading(std::cout, "a few fault stories");
    Rng rng(0xbead);
    int stories = 0;
    std::uint64_t window = trace.endCycle - trace.startCycle;
    while (stories < 6) {
        faults::FaultSite site;
        site.entry =
            static_cast<std::uint16_t>(rng.range(trace.iqEntries));
        site.bit =
            static_cast<std::uint8_t>(rng.range(faults::payloadBits));
        site.cycle = trace.startCycle + rng.range(window);
        auto fr = injector.classify(site, faults::Protection::Parity);
        if (fr.incarnationIndex < 0)
            continue;  // idle entries make dull stories
        const auto &inc = trace.incarnations[static_cast<std::size_t>(
            fr.incarnationIndex)];
        const isa::StaticInst &inst = run.program->inst(inc.staticIdx);
        std::cout << "cycle " << site.cycle << ", entry "
                  << site.entry << ", bit " << int(site.bit) << " ("
                  << isa::fieldName(isa::fieldForBit(site.bit))
                  << " field of `" << inst.toString() << "`"
                  << ((inc.flags & cpu::incWrongPath)
                          ? ", wrong path"
                          : "")
                  << ") -> " << faults::outcomeName(fr.outcome)
                  << (fr.reRan ? (fr.outputChanged
                                      ? " [re-run diverged]"
                                      : " [re-run identical]")
                               : "")
                  << "\n";
        ++stories;
    }

    if (!opts.jsonPath.empty()) {
        harness::JsonReport report;
        report.setArgs(config);
        report.addRun(run, run_cfg);
        report.addTable("outcomes", outcomes);
        report.write(opts.jsonPath);
    }
    return 0;
}
