/**
 * @file
 * Scenario: validating the analytical AVF with statistical fault
 * injection (the methodology of the paper's related work, Kim &
 * Somani / Wang et al.). Runs a campaign-engine sweep against a
 * surrogate benchmark through the experiment harness, prints the
 * Figure-1 outcome distribution under each protection scheme next
 * to the analytical band the measured rates must cover, and tells a
 * few concrete fault stories (which instruction was hit, in which
 * field, and what happened).
 *
 * Usage: fault_injection_demo [benchmark=crafty] [insts=40000]
 *        [samples=2000] [structures=iq] [--ci-target X]
 *        [--progress] [--jobs N] [--json PATH]
 *        [--convergence-out F] [--serve PORT]
 */

#include <iostream>
#include <vector>

#include "faults/campaign_engine.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/progress.hh"
#include "harness/reporting.hh"
#include "isa/encoding.hh"
#include "isa/executor.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Monte-Carlo fault-injection campaign");
    Config &config = opts.config;
    std::string benchmark = config.getString("benchmark", "crafty");
    std::uint64_t insts = config.getUint("insts", 40000);
    std::uint64_t samples = config.getUint("samples", 2000);

    // The timing run and the campaigns go through the experiment
    // harness, so --json gets the full manifest (campaign block
    // included), --metrics-out sees the phases, and the run cache
    // shares one simulation across the three protection campaigns.
    harness::ExperimentConfig run_cfg;
    run_cfg.dynamicTarget = insts;
    run_cfg.warmupInsts = 0;
    run_cfg.pipeline.maxInsts = insts * 3;
    run_cfg.intervalCycles = opts.intervalCycles;
    run_cfg.campaign.samples = samples;
    run_cfg.campaign.structures = faults::parseStructures(
        config.getString("structures", "iq"));
    run_cfg.campaign.ciTarget = opts.ciTarget;
    run_cfg.campaign.jobs = opts.jobs;

    harness::Progress &progress = harness::Progress::instance();

    harness::JsonReport report;
    report.setArgs(config);

    harness::printHeading(std::cout, "outcome distribution (" +
                                         std::to_string(samples) +
                                         " samples per protection)");
    Table outcomes(
        {"protection", "outcome", "count", "rate", "lo95", "hi95"});
    harness::RunArtifacts run;
    std::vector<harness::RunArtifacts> all_runs;
    for (auto prot :
         {faults::Protection::None, faults::Protection::Parity,
          faults::Protection::Ecc}) {
        run_cfg.campaign.protection = prot;
        // Campaign batches double as progress ticks: each campaign
        // is one 'sweep' of ~1k-sample units on the --progress line.
        progress.beginSweep((samples + 1023) / 1024,
                            std::string("campaign/") +
                                faults::protectionName(prot));
        auto ticked = std::make_shared<std::uint64_t>(0);
        run_cfg.campaign.onBatch = [&progress, ticked](
                                       std::uint64_t done,
                                       std::uint64_t) {
            for (; *ticked + 1024 <= done; *ticked += 1024)
                progress.runCompleted();
        };
        run = harness::runProgram(
            run.program ? run.program
                        : std::make_shared<const isa::Program>(
                              workloads::buildBenchmark(benchmark,
                                                        insts)),
            run_cfg, benchmark);
        progress.endSweep();
        if (!opts.jsonPath.empty())
            report.addRun(run, run_cfg);
        if (!opts.convergenceOutPath.empty())
            all_runs.push_back(run);

        const faults::CampaignOutcome &c = *run.campaign;
        std::cout << faults::protectionName(prot) << ":\n"
                  << c.summary() << "\n";
        for (const faults::StructureCampaign &s : c.structures) {
            for (int o = 0; o < faults::numOutcomes; ++o) {
                auto outcome = static_cast<faults::Outcome>(o);
                auto iv = s.tally.interval(outcome);
                outcomes.addRow(
                    {faults::protectionName(prot),
                     faults::outcomeName(outcome),
                     std::to_string(s.tally.count(outcome)),
                     Table::pct(s.tally.rate(outcome)),
                     Table::pct(iv.lo), Table::pct(iv.hi)});
            }
        }
    }
    if (opts.csv)
        outcomes.printCsv(std::cout);
    else
        outcomes.print(std::cout);

    const cpu::SimTrace &trace = *run.trace;
    isa::Executor golden(*run.program);
    if (golden.run(insts * 3) != isa::Termination::Halted) {
        std::cerr << "golden run failed\n";
        return 1;
    }
    faults::FaultInjector injector(*run.program, trace,
                                   golden.state().output());

    harness::printHeading(std::cout, "a few fault stories");
    Rng rng(0xbead);
    int stories = 0;
    while (stories < 6) {
        faults::FaultSite site;
        site.entry =
            static_cast<std::uint16_t>(rng.range(trace.iqEntries));
        site.bit =
            static_cast<std::uint8_t>(rng.range(faults::payloadBits));
        site.cycle = faults::sampleWindowCycle(rng, trace.startCycle,
                                               trace.endCycle);
        auto fr = injector.classify(site, faults::Protection::Parity);
        if (fr.incarnationIndex < 0)
            continue;  // idle entries make dull stories
        const auto &inc = trace.incarnations[static_cast<std::size_t>(
            fr.incarnationIndex)];
        const isa::StaticInst &inst = run.program->inst(inc.staticIdx);
        std::cout << "cycle " << site.cycle << ", entry "
                  << site.entry << ", bit " << int(site.bit) << " ("
                  << isa::fieldName(isa::fieldForBit(site.bit))
                  << " field of `" << inst.toString() << "`"
                  << ((inc.flags & cpu::incWrongPath)
                          ? ", wrong path"
                          : "")
                  << ") -> " << faults::outcomeName(fr.outcome)
                  << (fr.reRan ? (fr.outputChanged
                                      ? " [re-run diverged]"
                                      : " [re-run identical]")
                               : "")
                  << "\n";
        ++stories;
    }

    if (!opts.convergenceOutPath.empty())
        harness::writeConvergenceJsonl(opts.convergenceOutPath,
                                       all_runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("outcomes", outcomes);
        report.write(opts.jsonPath);
    }
    return 0;
}
