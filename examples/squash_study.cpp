/**
 * @file
 * Scenario: you are sizing an exposure-reduction policy for a
 * memory-bound workload. This example sweeps the full trigger/action
 * space of Section 3.1 on one benchmark and reports the
 * IPC-vs-AVF-vs-MITF frontier, showing how to reason with the
 * paper's MITF metric (worthwhile only if IPC/AVF rises).
 *
 * Usage: squash_study [benchmark=ammp] [insts=200000]
 */

#include <iostream>

#include "avf/mitf.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "sim/config.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Squash study: trigger/action frontier");
    Config &config = opts.config;
    std::string benchmark = config.getString("benchmark", "ammp");
    std::uint64_t insts = config.getUint("insts", 200000);
    harness::JsonReport report;
    report.setArgs(config);

    isa::Program program =
        workloads::buildBenchmark(benchmark, insts);

    struct Point
    {
        const char *trigger;
        const char *action;
    };
    const Point points[] = {
        {"none", "squash"},   {"l0", "squash"}, {"l1", "squash"},
        {"l2", "squash"},     {"l0", "throttle"},
        {"l1", "throttle"},   {"l0", "both"},   {"l1", "both"},
    };

    Table table({"trigger", "action", "IPC", "SDC AVF", "DUE AVF",
                 "idle", "SDC MITF", "DUE MITF", "verdict"});
    double base_ipc = 1, base_sdc = 1, base_due = 1;
    for (const auto &pt : points) {
        harness::ExperimentConfig cfg;
        cfg.dynamicTarget = insts;
        cfg.warmupInsts = insts / 10;
        cfg.triggerLevel = pt.trigger;
        cfg.triggerAction = pt.action;
        cfg.intervalCycles = opts.intervalCycles;
        auto r = harness::runProgram(program, cfg, benchmark);
        r.seed = workloads::findProfile(benchmark).seed;
        if (!opts.jsonPath.empty())
            report.addRun(r, cfg);
        if (std::string(pt.trigger) == "none") {
            base_ipc = r.ipc;
            base_sdc = r.avf->sdcAvf();
            base_due = r.avf->dueAvf();
        }
        double sdc_mitf = avf::mitfRatio(base_ipc, base_sdc, r.ipc,
                                         r.avf->sdcAvf());
        double due_mitf = avf::mitfRatio(base_ipc, base_due, r.ipc,
                                         r.avf->dueAvf());
        const char *verdict =
            sdc_mitf > 1.02 ? "worthwhile"
            : sdc_mitf < 0.98 ? "counterproductive"
                              : "neutral";
        table.addRow({pt.trigger, pt.action, Table::fmt(r.ipc),
                      Table::pct(r.avf->sdcAvf()),
                      Table::pct(r.avf->dueAvf()),
                      Table::pct(r.avf->idleFraction()),
                      Table::fmt(sdc_mitf) + "x",
                      Table::fmt(due_mitf) + "x", verdict});
    }

    harness::printHeading(std::cout, "exposure-reduction frontier: " +
                                         benchmark);
    table.print(std::cout);
    std::cout << "\nMITF = IPC x frequency x MTTF; at fixed "
                 "frequency and raw error rate it is proportional "
                 "to IPC / AVF, so a design point is worthwhile "
                 "exactly when that ratio beats the baseline "
                 "(Section 3.2).\n";

    if (!opts.jsonPath.empty()) {
        report.addTable("frontier", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
