/**
 * @file
 * Scenario: a reliability budget review (paper Section 2: "vendors
 * typically specify targets for both SDC and DUE rates"). Converts
 * the instruction queue's measured AVFs into FIT and MTTF numbers
 * under the configurable raw-error-rate model — at sea level and at
 * Denver's altitude (the paper's 3-5x neutron-flux example) — and
 * checks them against example vendor targets, with and without the
 * paper's techniques.
 *
 * Usage: fit_budget [benchmark=equake] [insts=150000]
 *        [mfit_per_bit=1.0] [sdc_target_years=1000]
 *        [due_target_years=25]
 */

#include <iostream>

#include "avf/mitf.hh"
#include "core/due_tracker.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "sim/config.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "FIT/MTTF budget review for the IQ");
    Config &config = opts.config;
    std::string benchmark = config.getString("benchmark", "equake");
    std::uint64_t insts = config.getUint("insts", 150000);
    double mfit = config.getDouble("mfit_per_bit", 1.0);
    double sdc_target = config.getDouble("sdc_target_years", 1000);
    double due_target = config.getDouble("due_target_years", 25);

    // The protected structure: 64 entries x 64 payload bits.
    const std::uint64_t bits = 64 * 64;

    harness::ExperimentConfig base;
    base.dynamicTarget = insts;
    base.warmupInsts = insts / 10;
    base.intervalCycles = opts.intervalCycles;
    auto r_base = harness::runBenchmark(benchmark, base);

    harness::ExperimentConfig opt = base;
    opt.triggerLevel = "l1";
    auto r_opt = harness::runBenchmark(benchmark, opt);

    harness::JsonReport report;
    report.setArgs(config);
    if (!opts.jsonPath.empty()) {
        report.addRun(r_base, base);
        report.addRun(r_opt, opt);
    }

    struct DesignPoint
    {
        const char *name;
        double sdcAvf;
        double dueAvf;
        double ipc;
    };
    const DesignPoint points[] = {
        {"unprotected, no techniques", r_base.avf->sdcAvf(), 0.0,
         r_base.ipc},
        {"unprotected + squash(l1)", r_opt.avf->sdcAvf(), 0.0,
         r_opt.ipc},
        {"parity, signal-on-detect", 0.0, r_base.avf->dueAvf(),
         r_base.ipc},
        {"parity + squash + pi(store-buffer)", 0.0,
         r_opt.falseDue.dueAvf(core::TrackingLevel::PiStoreBuffer),
         r_opt.ipc},
    };

    for (double altitude : {0.0, 1.5}) {
        avf::ErrorRateModel model;
        model.rawMilliFitPerBit = mfit;
        model.altitudeKm = altitude;

        harness::printHeading(
            std::cout,
            benchmark + " instruction-queue budget at " +
                (altitude == 0.0 ? std::string("sea level")
                                 : "1.5 km (Denver), neutron flux x" +
                                       Table::fmt(
                                           model.neutronFluxFactor(),
                                           1)));
        Table table({"design point", "SDC FIT", "SDC MTTF",
                     "DUE FIT", "DUE MTTF", "meets targets?"});
        for (const auto &p : points) {
            double sdc_fit =
                avf::structureFit(model, bits, p.sdcAvf);
            double due_fit =
                avf::structureFit(model, bits, p.dueAvf);
            double sdc_mttf = avf::fitToMttfYears(sdc_fit);
            double due_mttf = avf::fitToMttfYears(due_fit);
            bool ok = sdc_mttf >= sdc_target &&
                      due_mttf >= due_target;
            auto years = [](double y) {
                return y > 1e7 ? std::string("inf")
                               : Table::fmt(y, 0) + " y";
            };
            table.addRow({p.name, Table::fmt(sdc_fit, 4),
                          years(sdc_mttf), Table::fmt(due_fit, 4),
                          years(due_mttf), ok ? "yes" : "NO"});
        }
        table.print(std::cout);
    }

    std::cout << "\ntargets: SDC MTTF >= "
              << Table::fmt(sdc_target, 0)
              << " years, DUE MTTF >= " << Table::fmt(due_target, 0)
              << " years (per-structure example budget; raw rate "
              << mfit
              << " mFIT/bit). Note the paper's caution: MITF "
                 "reasoning holds for incremental changes, but "
                 "customers still see absolute MTTF.\n";

    if (!opts.jsonPath.empty())
        report.write(opts.jsonPath);
    return 0;
}
