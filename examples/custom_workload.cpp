/**
 * @file
 * Scenario: analysing your own kernel. Shows the whole public API
 * end to end on a hand-written TIA64 program — assemble it, run the
 * timing model with and without squashing, compute the AVF
 * breakdown, the dynamically-dead population, the false-DUE
 * coverage of each tracking level, and the PET-buffer sweet spot.
 *
 * Usage: custom_workload
 */

#include <iostream>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "core/due_tracker.hh"
#include "core/pet_buffer.hh"
#include "core/trigger.hh"
#include "cpu/pipeline.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "isa/assembler.hh"

using namespace ser;
using harness::Table;

namespace
{

/** A toy histogram kernel over a 1 MB buffer (written in TIA64). */
const char *kernelSource = R"(
    .entry main
    main:
        movi r50 = 0x100000     // input buffer
        movi r51 = 0x300000     // histogram (256 bins)
        movi r61 = 99991        // lcg state
        movi r30 = 1103515245
        movi r31 = 12345
        movi r1 = 6000          // iterations
    loop:
        // synthesise an "input byte" and bin it
        mul r61 = r61, r30
        add r61 = r61, r31
        shri r8 = r61, 16
        andi r9 = r8, 131064    // wander a 1MB window (word-aligned)
        add r10 = r50, r9
        ld8 r11 = [r10, 0]
        andi r12 = r11, 255
        shli r13 = r12, 3
        add r14 = r51, r13
        ld8 r15 = [r14, 0]
        addi r15 = r15, 1
        st8 [r14, 0] = r15
        // a dead temporary, as real compilers leave behind
        add r20 = r12, r15
        addi r4 = r1, 0
        addi r1 = r1, -1
        cmplt p2 = r0, r1
        (p2) br loop
        // emit the checksum of a few bins
        ld8 r16 = [r51, 0]
        ld8 r17 = [r51, 8]
        add r18 = r16, r17
        out r18
        halt
)";

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "End-to-end API tour on a hand-written kernel");
    auto program = std::make_shared<const isa::Program>(
        isa::assembleOrDie(kernelSource));
    std::cout << "assembled " << program->size()
              << " static instructions\n";

    // Both design points go through the experiment harness (instead
    // of raw pipelines): same parameters as before — no warmup, same
    // instruction cap — plus run manifests for --json, telemetry for
    // --metrics-out, and the shared run cache.
    harness::TraceExport trace_export(opts);
    auto run = [&](const char *trigger) {
        harness::ExperimentConfig cfg;
        cfg.dynamicTarget = 100'000;  // the kernel halts well before
        cfg.warmupInsts = 0;
        cfg.triggerLevel = trigger;
        cfg.triggerAction = "squash";
        cfg.pipeline.maxInsts = 1000000;
        cfg.intervalCycles = opts.intervalCycles;
        trace_export.configure(cfg);
        return std::make_pair(
            harness::runProgram(program, cfg, "histogram"), cfg);
    };

    auto [baseline, base_cfg] = run("none");
    const avf::DeadnessResult &dead = *baseline.deadness;
    const avf::AvfResult &avf = *baseline.avf;

    harness::printHeading(std::cout, "baseline AVF breakdown");
    std::cout << avf.summary();
    std::cout << "IPC " << Table::fmt(baseline.ipc, 3) << ", "
              << baseline.trace->commits.size()
              << " committed instructions, "
              << Table::pct(dead.deadFraction())
              << " dynamically dead (" << dead.numFddReg
              << " FDD-reg, " << dead.numTddReg << " TDD-reg, "
              << dead.numFddMem + dead.numTddMem << " via memory)\n";

    auto [squashed, squash_cfg] = run("l1");
    const avf::AvfResult &avf2 = *squashed.avf;
    harness::printHeading(std::cout, "with squash-on-L1-miss");
    std::cout << "IPC " << Table::fmt(squashed.ipc, 3) << " ("
              << Table::pct(squashed.ipc / baseline.ipc - 1)
              << "), SDC AVF " << Table::pct(avf2.sdcAvf()) << " ("
              << Table::pct(avf2.sdcAvf() / avf.sdcAvf() - 1)
              << "), DUE AVF " << Table::pct(avf2.dueAvf()) << "\n";

    harness::printHeading(std::cout, "false-DUE tracking levels");
    std::cout << squashed.falseDue.summary();

    harness::printHeading(std::cout, "PET buffer sizing");
    Table pet({"entries", "FDD-reg coverage"});
    for (std::uint32_t size : {64u, 256u, 1024u, 4096u}) {
        auto cov = core::petCoverage(dead, size);
        pet.addRow({std::to_string(size),
                    Table::pct(cov.fracRegWithReturns())});
    }
    pet.print(std::cout);

    trace_export.emit(std::cout, {baseline, squashed});

    if (!opts.jsonPath.empty()) {
        harness::JsonReport report;
        report.setArgs(opts.config);
        report.addRun(baseline, base_cfg);
        report.addRun(squashed, squash_cfg);
        report.addTable("pet_sizing", pet);
        report.write(opts.jsonPath);
    }
    return 0;
}
