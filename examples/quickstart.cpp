/**
 * @file
 * Quickstart: run one surrogate benchmark on the Itanium2-like core,
 * compute its instruction-queue AVF, and show what squashing on L1
 * load misses buys (the paper's headline experiment, on one
 * benchmark).
 *
 * Usage:
 *   quickstart [benchmark=mcf] [insts=300000] [trigger=l1]
 */

#include <iostream>

#include "avf/mitf.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "sim/config.hh"

using namespace ser;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Quickstart: one benchmark, baseline vs squash");
    Config &config = opts.config;

    std::string benchmark = config.getString("benchmark", "mcf");
    std::uint64_t insts = config.getUint("insts", 300000);
    std::string trigger = config.getString("trigger", "l1");

    harness::TraceExport trace_export(opts);
    harness::ExperimentConfig base;
    base.dynamicTarget = insts;
    base.warmupInsts = insts / 10;
    base.triggerLevel = "none";
    base.intervalCycles = opts.intervalCycles;
    trace_export.configure(base);

    std::cout << "Running '" << benchmark << "' ("
              << insts << " dynamic instructions)...\n";
    auto baseline = harness::runBenchmark(benchmark, base);

    harness::ExperimentConfig squash = base;
    squash.triggerLevel = trigger;
    squash.triggerAction = "squash";
    trace_export.configure(squash);
    auto squashed = harness::runBenchmark(benchmark, squash);

    harness::printHeading(std::cout, "baseline (no squashing)");
    std::cout << baseline.avf->summary();
    std::cout << "IPC " << baseline.ipc << "\n";
    std::cout << "dynamically dead instructions: "
              << harness::Table::pct(
                     baseline.deadness->deadFraction())
              << "\n";

    harness::printHeading(std::cout,
                          "squash on " + trigger + " load miss");
    std::cout << squashed.avf->summary();
    std::cout << "IPC " << squashed.ipc << "\n";

    harness::printHeading(std::cout, "the trade-off (MITF)");
    double sdc_ratio = avf::mitfRatio(
        baseline.ipc, baseline.avf->sdcAvf(), squashed.ipc,
        squashed.avf->sdcAvf());
    double due_ratio = avf::mitfRatio(
        baseline.ipc, baseline.avf->dueAvf(), squashed.ipc,
        squashed.avf->dueAvf());
    std::cout << "IPC change        "
              << harness::Table::pct(squashed.ipc / baseline.ipc - 1)
              << "\n";
    std::cout << "SDC AVF change    "
              << harness::Table::pct(
                     squashed.avf->sdcAvf() / baseline.avf->sdcAvf() -
                     1)
              << "\n";
    std::cout << "DUE AVF change    "
              << harness::Table::pct(
                     squashed.avf->dueAvf() / baseline.avf->dueAvf() -
                     1)
              << "\n";
    std::cout << "SDC MITF ratio    " << harness::Table::fmt(sdc_ratio)
              << "x\n";
    std::cout << "DUE MITF ratio    " << harness::Table::fmt(due_ratio)
              << "x\n";

    trace_export.emit(std::cout, {baseline, squashed});

    if (!opts.jsonPath.empty()) {
        harness::JsonReport report;
        report.setArgs(config);
        report.addRun(baseline, base);
        report.addRun(squashed, squash);
        report.write(opts.jsonPath);
    }
    return 0;
}
