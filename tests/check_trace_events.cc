/**
 * @file
 * Standalone validator for Chrome trace-event files written by
 * --trace-events, used by the trace_events_validate ctest case (and
 * handy interactively):
 *
 *     check_trace_events TRACE.json [MIN_SQUASH_INSTANTS]
 *
 * Verifies the invariants the writer promises:
 *
 *  - the document parses with the in-tree JSON parser and carries a
 *    traceEvents array;
 *  - every event has a name, a phase, pid/tid, and (except metadata)
 *    a timestamp;
 *  - per (pid, tid) track, B/E pairs match — never an E without an
 *    open slice, never a slice left open — and timestamps never move
 *    backwards;
 *  - counter events sit on the dedicated counters track (tid 0);
 *  - at least MIN_SQUASH_INSTANTS (default 1) squash instants
 *    (trigger_squash or mispredict_squash) are present, so a trace
 *    from a squashing run demonstrably captures the squash bursts.
 *
 * Exits 0 when the trace is valid, 1 with a message otherwise.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "sim/json.hh"

using ser::json::JsonValue;

namespace
{

int failures = 0;

void
fail(const std::string &what)
{
    std::cerr << "check_trace_events: " << what << "\n";
    ++failures;
}

struct TrackState
{
    std::uint64_t openSlices = 0;
    double lastTs = 0.0;
    bool sawTs = false;
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2 && argc != 3) {
        std::cerr << "usage: check_trace_events TRACE.json "
                     "[MIN_SQUASH_INSTANTS]\n";
        return 2;
    }
    std::uint64_t min_squashes =
        argc == 3 ? std::strtoull(argv[2], nullptr, 10) : 1;

    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
        fail(std::string("cannot open '") + argv[1] + "'");
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    JsonValue doc;
    std::string err;
    if (!ser::json::parseJson(buf.str(), &doc, &err)) {
        fail("trace does not parse: " + err);
        return 1;
    }
    if (!doc.isObject()) {
        fail("trace root is not an object");
        return 1;
    }
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        fail("no traceEvents array");
        return 1;
    }

    std::map<std::pair<double, double>, TrackState> tracks;
    std::uint64_t squash_instants = 0;
    std::uint64_t begins = 0, ends = 0, counters = 0;

    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        const std::string where =
            "traceEvents[" + std::to_string(i) + "]";
        if (!e.isObject()) {
            fail(where + ": not an object");
            continue;
        }
        const JsonValue *name = e.find("name");
        const JsonValue *ph = e.find("ph");
        const JsonValue *pid = e.find("pid");
        const JsonValue *tid = e.find("tid");
        if (!name || !name->isString() || !ph || !ph->isString() ||
            !pid || !pid->isNumber() || !tid || !tid->isNumber()) {
            fail(where + ": missing name/ph/pid/tid");
            continue;
        }
        if (ph->string == "M")
            continue;  // metadata carries no timestamp

        const JsonValue *ts = e.find("ts");
        if (!ts || !ts->isNumber()) {
            fail(where + ": '" + ph->string + "' event without ts");
            continue;
        }
        TrackState &track =
            tracks[{pid->number, tid->number}];
        if (track.sawTs && ts->number < track.lastTs)
            fail(where + ": ts moves backwards on pid " +
                 std::to_string(pid->number) + " tid " +
                 std::to_string(tid->number));
        track.lastTs = ts->number;
        track.sawTs = true;

        if (ph->string == "B") {
            ++track.openSlices;
            ++begins;
        } else if (ph->string == "E") {
            if (track.openSlices == 0)
                fail(where + ": E with no open slice");
            else
                --track.openSlices;
            ++ends;
        } else if (ph->string == "C") {
            ++counters;
            if (tid->number != 0.0)
                fail(where + ": counter off the counters track");
        } else if (ph->string == "i") {
            if (name->string == "trigger_squash" ||
                name->string == "mispredict_squash")
                ++squash_instants;
        } else {
            fail(where + ": unknown phase '" + ph->string + "'");
        }
    }

    for (const auto &track : tracks) {
        if (track.second.openSlices)
            fail("pid " + std::to_string(track.first.first) +
                 " tid " + std::to_string(track.first.second) +
                 ": " + std::to_string(track.second.openSlices) +
                 " slice(s) left open");
    }
    if (begins != ends)
        fail(std::to_string(begins) + " B events vs " +
             std::to_string(ends) + " E events");
    if (begins == 0)
        fail("no duration events at all");
    if (squash_instants < min_squashes)
        fail("only " + std::to_string(squash_instants) +
             " squash instant(s), expected at least " +
             std::to_string(min_squashes));

    if (failures) {
        std::cerr << "check_trace_events: " << failures
                  << " problem(s) in '" << argv[1] << "'\n";
        return 1;
    }
    std::cout << "check_trace_events: '" << argv[1] << "' ok ("
              << events->array.size() << " events, " << begins
              << " slices, " << squash_instants
              << " squash instants, " << counters << " counter "
              << "samples)\n";
    return 0;
}
