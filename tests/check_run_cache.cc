/**
 * @file
 * Standalone checker for the run-cache manifest counters, used by the
 * run_cache_counts ctest case:
 *
 *     check_run_cache manifest.json runs_per_benchmark
 *
 * Asserts that a cache-enabled sweep manifest proves the memoization
 * worked: for every benchmark, every cache section (sim, deadness,
 * avf) records exactly one "miss" and runs_per_benchmark - 1 "hit"s —
 * i.e. each benchmark was simulated and analyzed exactly once no
 * matter how many sweep points rode on it.
 *
 * Exits 0 when the counts hold, 1 with a message otherwise.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "sim/json.hh"

using ser::json::JsonValue;

namespace
{

const JsonValue *
member(const JsonValue &obj, const std::string &name)
{
    if (!obj.isObject())
        return nullptr;
    for (const auto &m : obj.object)
        if (m.first == name)
            return &m.second;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: check_run_cache manifest.json "
                     "runs_per_benchmark\n";
        return 2;
    }
    const unsigned long per_bench = std::strtoul(argv[2], nullptr, 10);

    std::ifstream in(argv[1]);
    if (!in) {
        std::cerr << "check_run_cache: cannot open '" << argv[1]
                  << "'\n";
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue manifest;
    std::string err;
    if (!ser::json::parseJson(buf.str(), &manifest, &err)) {
        std::cerr << "check_run_cache: '" << argv[1]
                  << "' does not parse: " << err << "\n";
        return 1;
    }

    const JsonValue *runs = member(manifest, "runs");
    if (!runs || !runs->isArray() || runs->array.empty()) {
        std::cerr << "check_run_cache: no runs in '" << argv[1]
                  << "'\n";
        return 1;
    }

    // benchmark -> section -> {misses, hits}
    const char *sections[] = {"sim", "deadness", "avf"};
    std::map<std::string, std::map<std::string,
                                   std::pair<unsigned, unsigned>>>
        counts;
    for (const JsonValue &run : runs->array) {
        const JsonValue *bench = member(run, "benchmark");
        const JsonValue *rc = member(run, "run_cache");
        if (!bench || !bench->isString() || !rc) {
            std::cerr << "check_run_cache: run without benchmark / "
                         "run_cache members\n";
            return 1;
        }
        for (const char *section : sections) {
            const JsonValue *outcome = member(*rc, section);
            if (!outcome || !outcome->isString()) {
                std::cerr << "check_run_cache: run_cache." << section
                          << " missing\n";
                return 1;
            }
            auto &c = counts[bench->string][section];
            if (outcome->string == "miss")
                ++c.first;
            else if (outcome->string == "hit")
                ++c.second;
            else {
                std::cerr << "check_run_cache: " << bench->string
                          << " run_cache." << section << " is '"
                          << outcome->string
                          << "' (cache disabled or bypassed?)\n";
                return 1;
            }
        }
    }

    bool ok = true;
    for (const auto &bench : counts) {
        for (const char *section : sections) {
            auto it = bench.second.find(section);
            unsigned misses = it == bench.second.end()
                                  ? 0
                                  : it->second.first;
            unsigned hits = it == bench.second.end()
                                ? 0
                                : it->second.second;
            if (misses != 1 || hits != per_bench - 1) {
                std::cerr << "check_run_cache: " << bench.first
                          << " " << section << ": " << misses
                          << " misses + " << hits
                          << " hits, want 1 + " << (per_bench - 1)
                          << "\n";
                ok = false;
            }
        }
    }
    if (!ok)
        return 1;

    std::cout << "check_run_cache: every benchmark simulated and "
                 "analyzed exactly once ("
              << counts.size() << " benchmarks x " << per_bench
              << " sweep points)\n";
    return 0;
}
