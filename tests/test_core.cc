/**
 * @file
 * Tests for the paper's contribution library: trigger policies,
 * tracking levels, the PET buffer (operational and analytical), the
 * pi-bit machine, and the false-DUE coverage analysis — including
 * the key property that the operational pi-bit propagation agrees
 * exactly with the analytical deadness classification at every
 * tracking level.
 */

#include <gtest/gtest.h>

#include "avf/deadness.hh"
#include "core/due_tracker.hh"
#include "core/pet_buffer.hh"
#include "core/pi_machine.hh"
#include "core/tracking.hh"
#include "core/trigger.hh"
#include "cpu/pipeline.hh"
#include "isa/assembler.hh"
#include "workloads/random_program.hh"

using namespace ser;
using namespace ser::core;

TEST(Trigger, LevelsFireOnTheRightMisses)
{
    using memory::HitLevel;
    MissTriggerPolicy l0(TriggerLevel::L0Miss, TriggerAction::Squash);
    MissTriggerPolicy l1(TriggerLevel::L1Miss, TriggerAction::Squash);
    MissTriggerPolicy none(TriggerLevel::None, TriggerAction::Squash);

    auto fires = [](MissTriggerPolicy &p, HitLevel lvl) {
        return p.onLoadServiced(lvl, 10, 100).squash;
    };
    EXPECT_FALSE(fires(l0, HitLevel::L0));
    EXPECT_TRUE(fires(l0, HitLevel::L1));
    EXPECT_TRUE(fires(l0, HitLevel::Memory));
    EXPECT_FALSE(fires(l1, HitLevel::L1));
    EXPECT_TRUE(fires(l1, HitLevel::L2));
    EXPECT_TRUE(fires(l1, HitLevel::Memory));
    EXPECT_FALSE(fires(none, HitLevel::Memory));
}

TEST(Trigger, NoActionWhenFillAlreadyBack)
{
    MissTriggerPolicy l1(TriggerLevel::L1Miss, TriggerAction::Squash);
    auto d = l1.onLoadServiced(memory::HitLevel::Memory, 100, 90);
    EXPECT_FALSE(d.squash);
}

TEST(Trigger, ThrottleReturnsFillCycle)
{
    MissTriggerPolicy p(TriggerLevel::L0Miss,
                        TriggerAction::Throttle);
    auto d = p.onLoadServiced(memory::HitLevel::L2, 10, 150);
    EXPECT_FALSE(d.squash);
    EXPECT_EQ(d.throttleUntilCycle, 150u);

    MissTriggerPolicy both(TriggerLevel::L0Miss,
                           TriggerAction::SquashThrottle);
    auto d2 = both.onLoadServiced(memory::HitLevel::L2, 10, 150);
    EXPECT_TRUE(d2.squash);
    EXPECT_EQ(d2.throttleUntilCycle, 150u);
}

TEST(Trigger, FactoryParsesConfigStrings)
{
    auto p = makeTriggerPolicy("l1", "both");
    EXPECT_EQ(p->level(), TriggerLevel::L1Miss);
    EXPECT_EQ(p->action(), TriggerAction::SquashThrottle);
}

TEST(Tracking, CoverageIsCumulative)
{
    using avf::UnAceSource;
    for (int s = 0; s < avf::numUnAceSources; ++s) {
        auto source = static_cast<UnAceSource>(s);
        bool covered_before = false;
        for (int l = 0; l < numTrackingLevels; ++l) {
            bool c = coversSource(static_cast<TrackingLevel>(l),
                                  source);
            EXPECT_TRUE(!covered_before || c)
                << "coverage must be monotone: source " << s
                << " level " << l;
            covered_before = covered_before || c;
        }
        EXPECT_TRUE(coversSource(TrackingLevel::PiMemory, source));
    }
    EXPECT_FALSE(coversSource(TrackingLevel::None,
                              UnAceSource::WrongPath));
    EXPECT_TRUE(coversSource(TrackingLevel::PiToCommit,
                             UnAceSource::PredFalse));
    EXPECT_FALSE(coversSource(TrackingLevel::PetBuffer,
                              UnAceSource::FddReg));
    EXPECT_TRUE(coversSource(TrackingLevel::PiStoreBuffer,
                             UnAceSource::TddReg));
}

TEST(Tracking, AttributionPrecision)
{
    // Section 4.3.3: the PET buffer still names the offending
    // instruction; the pi-bit-everywhere schemes do not.
    EXPECT_TRUE(preciseAttribution(TrackingLevel::PetBuffer));
    EXPECT_FALSE(preciseAttribution(TrackingLevel::PiRegFile));
}

// ---------------------------------------------------------------

namespace
{

PetEntry
entry(std::uint64_t seq, const char *text, bool pi = false)
{
    isa::Program p = isa::assembleOrDie(std::string(text) + "\n");
    PetEntry e;
    e.seq = seq;
    e.inst = p.inst(0);
    e.qpTrue = true;
    e.pi = pi;
    return e;
}

} // namespace

TEST(PetBuffer, ProvesOverwriteBeforeReadDead)
{
    PetBuffer pet(4);
    // Poisoned def of r4, overwritten before any read.
    EXPECT_FALSE(pet.retire(entry(0, "movi r4 = 1", true)));
    EXPECT_FALSE(pet.retire(entry(1, "movi r5 = 2")));
    EXPECT_FALSE(pet.retire(entry(2, "movi r4 = 3")));
    EXPECT_FALSE(pet.retire(entry(3, "movi r6 = 4")));
    auto ev = pet.retire(entry(4, "movi r7 = 5"));
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->seq, 0u);
    EXPECT_TRUE(ev->provenDead);
    EXPECT_FALSE(ev->signalled);
}

TEST(PetBuffer, SignalsWhenReadIntervenes)
{
    PetBuffer pet(4);
    pet.retire(entry(0, "movi r4 = 1", true));
    pet.retire(entry(1, "addi r5 = r4, 1"));  // reads r4
    pet.retire(entry(2, "movi r4 = 3"));
    pet.retire(entry(3, "nop"));
    auto ev = pet.retire(entry(4, "nop"));
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->signalled);
}

TEST(PetBuffer, ReadAndOverwriteInSameInstructionCountsAsRead)
{
    PetBuffer pet(2);
    pet.retire(entry(0, "movi r4 = 1", true));
    pet.retire(entry(1, "addi r4 = r4, 1"));
    auto ev = pet.retire(entry(2, "nop"));
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->signalled);
}

TEST(PetBuffer, QpReadCountsAsRead)
{
    PetBuffer pet(3);
    pet.retire(entry(0, "cmpieq p3 = r4, 0", true));
    auto nullified = entry(1, "(p3) addi r5 = r5, 1");
    nullified.qpTrue = false;  // still consults p3
    pet.retire(nullified);
    pet.retire(entry(2, "cmpieq p3 = r4, 1"));
    // Entry 0 is evicted here; the scan sees the qp read before the
    // overwrite and must signal.
    auto ev = pet.retire(entry(3, "nop"));
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->seq, 0u);
    EXPECT_TRUE(ev->signalled);
}

TEST(PetBuffer, NoOverwriteInWindowCannotProve)
{
    PetBuffer pet(2);
    pet.retire(entry(0, "movi r4 = 1", true));
    pet.retire(entry(1, "nop"));
    auto ev = pet.retire(entry(2, "nop"));
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->signalled);  // cannot prove: must signal
}

TEST(PetBuffer, MemoryModeProvesDeadStores)
{
    PetBuffer pet(4, true);
    auto st = entry(0, "st8 [r5, 0] = r4", true);
    st.memAddr = 0x1000;
    pet.retire(st);
    auto st2 = entry(1, "st8 [r5, 0] = r6");
    st2.memAddr = 0x1000;
    pet.retire(st2);
    pet.retire(entry(2, "nop"));
    pet.retire(entry(3, "nop"));
    auto ev = pet.retire(entry(4, "nop"));
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->provenDead);
}

TEST(PetBuffer, DrainResolvesRemainingEntries)
{
    PetBuffer pet(8);
    pet.retire(entry(0, "movi r4 = 1", true));
    pet.retire(entry(1, "movi r4 = 2"));
    auto evs = pet.drain();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_TRUE(evs[0].provenDead);
}

TEST(PetCoverage, GrowsWithBufferSize)
{
    avf::DeadnessResult d;
    // Five FDD-reg defs with overwrite distances 10..50.
    for (std::uint32_t i = 0; i < 5; ++i) {
        d.kind.push_back(avf::DeadKind::FddReg);
        d.overwriteDist.push_back((i + 1) * 10);
        d.returnFdd.push_back(i >= 3);
    }
    d.kind.push_back(avf::DeadKind::FddMem);
    d.overwriteDist.push_back(25);
    d.returnFdd.push_back(false);

    PetCoverage small = petCoverage(d, 15);
    EXPECT_EQ(small.coveredNonReturn, 1u);
    EXPECT_EQ(small.coveredReturn, 0u);
    EXPECT_EQ(small.coveredMem, 0u);

    PetCoverage big = petCoverage(d, 100);
    EXPECT_EQ(big.coveredNonReturn, 3u);
    EXPECT_EQ(big.coveredReturn, 2u);
    EXPECT_EQ(big.coveredMem, 1u);
    EXPECT_GE(big.fracAll(), small.fracAll());
}

// ---------------------------------------------------------------

namespace
{

/** Run a program through the pipeline and return trace+deadness. */
struct Ctx
{
    isa::Program program;
    cpu::SimTrace trace;
    avf::DeadnessResult deadness;
};

Ctx
makeCtx(const isa::Program &program)
{
    Ctx c;
    c.program = program;
    cpu::PipelineParams params;
    params.maxInsts = 2000000;
    cpu::InOrderPipeline pipe(c.program, params);
    c.trace = pipe.run();
    c.trace.program = &c.program;
    c.deadness = avf::analyzeDeadness(c.trace);
    return c;
}

Ctx
makeCtx(const std::string &src)
{
    return makeCtx(isa::assembleOrDie(src));
}

} // namespace

TEST(PiMachine, SignalsAtDetectionWithPlainParity)
{
    Ctx c = makeCtx("movi r4 = 1\nout r4\nhalt\n");
    PiMachine m(c.trace, TrackingLevel::None);
    auto out = m.run(0);
    EXPECT_TRUE(out.signalled);
    EXPECT_EQ(out.point, PiSignalPoint::AtDetection);
}

TEST(PiMachine, PredicatedFalseSuppressedFromCommitOn)
{
    Ctx c = makeCtx(R"(
        movi r4 = 5
        cmpieq p2 = r4, 99
        (p2) addi r5 = r5, 1
        out r5
        halt
    )");
    PiMachine m(c.trace, TrackingLevel::PiToCommit);
    EXPECT_FALSE(m.run(2).signalled);  // the nullified add
    EXPECT_TRUE(m.run(0).signalled);   // a live movi signals
}

TEST(PiMachine, AntiPiSuppressesNeutral)
{
    Ctx c = makeCtx("nop\nprefetch [r0, 64]\nhint\nout r0\nhalt\n");
    PiMachine commit_only(c.trace, TrackingLevel::PiToCommit);
    PiMachine anti(c.trace, TrackingLevel::AntiPi);
    for (std::uint64_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(commit_only.run(i).signalled);
        EXPECT_FALSE(anti.run(i).signalled);
    }
}

TEST(PiMachine, PetDefersAndProves)
{
    Ctx c = makeCtx(R"(
        movi r4 = 1
        movi r4 = 2
        out r4
        halt
    )");
    PiMachine pet(c.trace, TrackingLevel::PetBuffer, 16);
    EXPECT_FALSE(pet.run(0).signalled);  // proven FDD
    auto live = pet.run(1);
    EXPECT_TRUE(live.signalled);  // its value reaches out
}

TEST(PiMachine, RegFileTracksReadsAndOverwrites)
{
    Ctx c = makeCtx(R"(
        movi r4 = 1
        movi r5 = 2
        add r6 = r4, r5
        movi r4 = 3
        out r6
        halt
    )");
    PiMachine m(c.trace, TrackingLevel::PiRegFile);
    auto read = m.run(0);  // r4 read by the add
    EXPECT_TRUE(read.signalled);
    EXPECT_EQ(read.point, PiSignalPoint::AtRegisterRead);
    EXPECT_EQ(read.signalSeq, 2u);

    Ctx c2 = makeCtx(R"(
        movi r4 = 1
        movi r4 = 2
        out r4
        halt
    )");
    PiMachine m2(c2.trace, TrackingLevel::PiRegFile);
    EXPECT_FALSE(m2.run(0).signalled);  // overwritten unread
}

TEST(PiMachine, StoreBufferLevelSignalsAtStoreOrOutput)
{
    Ctx c = makeCtx(R"(
        movi r5 = 0x4000
        movi r4 = 7
        addi r6 = r4, 1
        st8 [r5, 0] = r6
        halt
    )");
    PiMachine m(c.trace, TrackingLevel::PiStoreBuffer);
    auto out = m.run(1);  // r4 -> r6 -> store data
    EXPECT_TRUE(out.signalled);
    EXPECT_EQ(out.point, PiSignalPoint::AtStoreCommit);
    EXPECT_EQ(out.signalSeq, 3u);

    // A chain that dies in registers is suppressed at this level.
    Ctx c2 = makeCtx(R"(
        movi r4 = 7
        addi r6 = r4, 1
        movi r6 = 0
        out r6
        halt
    )");
    PiMachine m2(c2.trace, TrackingLevel::PiStoreBuffer);
    EXPECT_FALSE(m2.run(0).signalled);
}

TEST(PiMachine, MemoryLevelFollowsPiThroughMemory)
{
    // The poisoned value goes to memory, is loaded back, and
    // reaches the output: must signal at the out.
    Ctx c = makeCtx(R"(
        movi r5 = 0x4000
        movi r4 = 7
        st8 [r5, 0] = r4
        ld8 r6 = [r5, 0]
        out r6
        halt
    )");
    PiMachine m(c.trace, TrackingLevel::PiMemory);
    auto out = m.run(1);
    EXPECT_TRUE(out.signalled);
    EXPECT_EQ(out.point, PiSignalPoint::AtOutput);

    // A dead store's pi dies with the overwrite: 100% coverage of
    // FDD via memory.
    Ctx c2 = makeCtx(R"(
        movi r5 = 0x4000
        movi r4 = 7
        st8 [r5, 0] = r4
        st8 [r5, 0] = r0
        ld8 r6 = [r5, 0]
        out r6
        halt
    )");
    PiMachine m2(c2.trace, TrackingLevel::PiMemory);
    EXPECT_FALSE(m2.run(2).signalled);  // the dead store
    EXPECT_FALSE(m2.run(1).signalled);  // its data producer (TddMem)
}

TEST(PiMachine, PoisonedPredicateSignals)
{
    Ctx c = makeCtx(R"(
        movi r4 = 5
        cmpieq p2 = r4, 5
        (p2) addi r5 = r5, 1
        out r5
        halt
    )");
    PiMachine m(c.trace, TrackingLevel::PiStoreBuffer);
    auto out = m.run(1);  // the compare's predicate is consulted
    EXPECT_TRUE(out.signalled);
    EXPECT_EQ(out.point, PiSignalPoint::AtPredicate);
}

TEST(PiMachine, ControlConsumersSignal)
{
    Ctx c = makeCtx(R"(
            movi r7 = target
            bri r7
            halt
        target:
            out r0
            halt
    )");
    PiMachine m(c.trace, TrackingLevel::PiMemory);
    auto out = m.run(0);  // poisons r7, consumed by bri
    EXPECT_TRUE(out.signalled);
    EXPECT_EQ(out.point, PiSignalPoint::AtControl);
}

/**
 * The central property: operational pi-bit tracking agrees with the
 * analytical deadness classification on every committed instruction.
 */
class PiDeadnessEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PiDeadnessEquivalence, SuppressionMatchesDeadness)
{
    Ctx c = makeCtx(workloads::randomProgram(GetParam()));
    ASSERT_TRUE(c.trace.programHalted);

    PiMachine reg_file(c.trace, TrackingLevel::PiRegFile);
    PiMachine store_buf(c.trace, TrackingLevel::PiStoreBuffer);
    PiMachine mem(c.trace, TrackingLevel::PiMemory);

    for (std::uint64_t i = 0; i < c.trace.commits.size(); ++i) {
        const auto &cr = c.trace.commits[i];
        const isa::StaticInst &inst = c.program.inst(cr.staticIdx);
        if (!cr.qpTrue || inst.isNeutral())
            continue;  // covered by earlier levels
        auto kind = c.deadness.kind[i];

        // Pi-on-memory achieves exactly "signal iff live".
        EXPECT_EQ(mem.run(i).signalled, kind == avf::DeadKind::Live)
            << "seq " << i << " (" << inst.toString() << ") kind "
            << avf::deadKindName(kind);

        // Pi-to-store-buffer: suppression == dead via registers.
        bool reg_dead = kind == avf::DeadKind::FddReg ||
                        kind == avf::DeadKind::TddReg;
        EXPECT_EQ(!store_buf.run(i).signalled, reg_dead)
            << "seq " << i << " (" << inst.toString() << ") kind "
            << avf::deadKindName(kind);

        // Pi-per-register: suppression == first-level dead via regs.
        EXPECT_EQ(!reg_file.run(i).signalled,
                  kind == avf::DeadKind::FddReg)
            << "seq " << i << " (" << inst.toString() << ") kind "
            << avf::deadKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PiDeadnessEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21,
                                           34));

// ---------------------------------------------------------------

TEST(DueTracker, ResidualIsMonotoneAndReachesZero)
{
    avf::AvfResult avf;
    avf.totalBitCycles = 1000000;
    avf.ace = 200000;
    for (int s = 0; s < avf::numUnAceSources; ++s)
        avf.unAceRead[s] = 30000 + 1000 * s;
    avf.fddRegExposures.push_back(
        {avf.unAceRead[static_cast<int>(avf::UnAceSource::FddReg)] /
             2,
         100});
    avf.fddRegExposures.push_back(
        {avf.unAceRead[static_cast<int>(avf::UnAceSource::FddReg)] -
             avf.fddRegExposures[0].bitCycles,
         100000});

    FalseDueAnalysis fda = analyzeFalseDue(avf, 512);
    double prev = fda.baseFalseDueAvf + 1;
    for (int l = 0; l < numTrackingLevels; ++l) {
        EXPECT_LE(fda.residualFalseDue[l], prev + 1e-12);
        prev = fda.residualFalseDue[l];
    }
    EXPECT_NEAR(
        fda.residualFalseDue[static_cast<int>(
            TrackingLevel::PiMemory)],
        0.0, 1e-12);
    EXPECT_NEAR(fda.coveredFraction(TrackingLevel::PiMemory), 1.0,
                1e-12);
    // The PET level sits between anti-pi and pi-reg-file.
    double pet =
        fda.residualFalseDue[static_cast<int>(
            TrackingLevel::PetBuffer)];
    double anti = fda.residualFalseDue[static_cast<int>(
        TrackingLevel::AntiPi)];
    double regf = fda.residualFalseDue[static_cast<int>(
        TrackingLevel::PiRegFile)];
    EXPECT_LE(pet, anti);
    EXPECT_GE(pet, regf);
}

TEST(DueTracker, PetCoverageWeightsByBitCycles)
{
    avf::AvfResult avf;
    avf.totalBitCycles = 1000;
    avf.fddRegExposures = {{100, 10}, {200, 1000}, {50, avf::noOverwrite}};
    EXPECT_EQ(petCoveredBitCycles(avf, 512), 100u);
    EXPECT_EQ(petCoveredBitCycles(avf, 2000), 300u);
}
