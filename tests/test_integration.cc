/**
 * @file
 * End-to-end integration tests: the experiment harness, the paper's
 * qualitative results on real surrogate runs (squash reduces AVF,
 * pi-bit coverage ordering, 100% coverage at pi-on-memory, PET
 * coverage growth), reporting, and AVF accounting closure.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/pet_buffer.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"

using namespace ser;
using namespace ser::harness;

namespace
{

ExperimentConfig
smallConfig(const std::string &trigger = "none")
{
    ExperimentConfig cfg;
    cfg.dynamicTarget = 60000;
    cfg.warmupInsts = 6000;
    cfg.triggerLevel = trigger;
    return cfg;
}

} // namespace

TEST(Integration, BaselineRunProducesSaneNumbers)
{
    auto r = runBenchmark("gzip", smallConfig());
    EXPECT_GT(r.ipc, 0.2);
    EXPECT_LT(r.ipc, 6.0);
    double sdc = r.avf->sdcAvf();
    EXPECT_GT(sdc, 0.02);
    EXPECT_LT(sdc, 0.95);
    EXPECT_GE(r.avf->dueAvf(), sdc);  // DUE = true (=SDC) + false
    EXPECT_GT(r.deadness->deadFraction(), 0.05);
    EXPECT_LT(r.deadness->deadFraction(), 0.40);

    // The AVF classes must tile the queue's bit-cycles exactly.
    std::uint64_t sum = r.avf->idle + r.avf->exAce +
                        r.avf->squashedUnread + r.avf->ace;
    for (int s = 0; s < avf::numUnAceSources; ++s)
        sum += r.avf->unAceRead[s] + r.avf->unAceUnread[s];
    EXPECT_EQ(sum, r.avf->totalBitCycles);
}

TEST(Integration, SquashingTradesIpcForAvf)
{
    // On a memory-bound benchmark, squashing must cut the AVF
    // substantially at only a small IPC cost — the paper's headline.
    auto base = runBenchmark("ammp", smallConfig("none"));
    auto squash = runBenchmark("ammp", smallConfig("l0"));
    EXPECT_LT(squash.avf->sdcAvf(), base.avf->sdcAvf() * 0.9);
    EXPECT_GT(squash.ipc, base.ipc * 0.80);
    // MITF (IPC/AVF) improves.
    EXPECT_GT(squash.ipc / squash.avf->sdcAvf(),
              base.ipc / base.avf->sdcAvf());
}

TEST(Integration, FalseDueCoverageIsOrderedAndComplete)
{
    auto r = runBenchmark("vortex", smallConfig());
    const auto &f = r.falseDue;
    EXPECT_GT(f.baseFalseDueAvf, 0.0);
    // Residual shrinks level by level, hitting zero at pi-memory
    // (the paper's 100% coverage claim).
    double prev = f.baseFalseDueAvf;
    for (int l = 1; l < core::numTrackingLevels; ++l) {
        double cur = f.residualFalseDue[l];
        EXPECT_LE(cur, prev + 1e-12) << "level " << l;
        prev = cur;
    }
    EXPECT_NEAR(f.residualFalseDue[core::numTrackingLevels - 1], 0.0,
                1e-12);
    // DUE AVF at parity-only equals true+false.
    EXPECT_NEAR(f.dueAvf(core::TrackingLevel::None), r.avf->dueAvf(),
                1e-9);
}

TEST(Integration, PetCoverageGrowsWithSize)
{
    auto r = runBenchmark("cc", smallConfig());
    double prev = -1;
    for (std::uint32_t size : {32u, 128u, 512u, 4096u, 16384u}) {
        auto cov = core::petCoverage(*r.deadness, size);
        double frac = cov.fracNonReturn();
        EXPECT_GE(frac, prev) << "PET size " << size;
        prev = frac;
    }
    // Return-established FDDs exist in call-heavy code and need
    // bigger buffers than the near overwrites (Figure 3's story).
    auto small = core::petCoverage(*r.deadness, 64);
    auto large = core::petCoverage(*r.deadness, 16384);
    EXPECT_GT(r.deadness->numReturnFdd, 0u);
    EXPECT_GT(large.fracRegWithReturns(),
              small.fracRegWithReturns());
}

TEST(Integration, IntegerCodesHaveMoreWrongPathExposure)
{
    // Figure 2: pi-to-commit (wrong-path + predicated-false) matters
    // more for integer benchmarks.
    auto fp = runBenchmark("mgrid", smallConfig());
    auto integer = runBenchmark("crafty", smallConfig());
    auto frac = [](const RunArtifacts &r) {
        std::uint64_t covered =
            r.avf->unAceRead[static_cast<int>(
                avf::UnAceSource::WrongPath)] +
            r.avf->unAceRead[static_cast<int>(
                avf::UnAceSource::PredFalse)];
        std::uint64_t total = r.avf->unAceReadTotal();
        return total ? double(covered) / double(total) : 0.0;
    };
    EXPECT_GT(frac(integer), frac(fp));
}

TEST(Integration, FpCodesGainMoreFromAntiPi)
{
    // Figure 2: the anti-pi bit's coverage share is larger for fp
    // benchmarks (more no-op padding).
    auto fp = runBenchmark("mgrid", smallConfig());
    auto integer = runBenchmark("crafty", smallConfig());
    auto neutral_share = [](const RunArtifacts &r) {
        std::uint64_t total = r.avf->unAceReadTotal();
        return total ? double(r.avf->unAceRead[static_cast<int>(
                           avf::UnAceSource::Neutral)]) /
                           double(total)
                     : 0.0;
    };
    EXPECT_GT(neutral_share(fp), neutral_share(integer));
}

TEST(Integration, StatsDumpMentionsKeyCounters)
{
    auto r = runBenchmark("art", smallConfig());
    EXPECT_NE(r.statsDump.find("cpu.committed"), std::string::npos);
    EXPECT_NE(r.statsDump.find("cpu.dcache.l0.hits"),
              std::string::npos);
    EXPECT_NE(r.statsDump.find("trigger.fired"), std::string::npos);
}

TEST(Reporting, TableAlignsAndCsvEscapesNothing)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream text, csv;
    t.print(text);
    t.printCsv(csv);
    EXPECT_NE(text.str().find("333"), std::string::npos);
    EXPECT_EQ(csv.str(), "a,bb\n1,2\n333,4\n");
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::pct(0.125, 1), "12.5%");
}

TEST(Integration, CombinedTechniquesReduceBothRates)
{
    // The paper's Figure 4 claim in miniature: squashing cuts the
    // unprotected queue's SDC AVF, and squashing + pi-to-store-
    // buffer cuts the parity-protected queue's DUE AVF by more.
    auto base = runBenchmark("facerec", smallConfig("none"));
    auto opt = runBenchmark("facerec", smallConfig("l1"));

    double rel_sdc = opt.avf->sdcAvf() / base.avf->sdcAvf();
    double due_base = base.falseDue.dueAvf(core::TrackingLevel::None);
    double due_opt =
        opt.falseDue.dueAvf(core::TrackingLevel::PiStoreBuffer);
    double rel_due = due_opt / due_base;
    EXPECT_LT(rel_sdc, 1.0);
    EXPECT_LT(rel_due, rel_sdc);  // tracking adds coverage
}
