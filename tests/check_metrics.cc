/**
 * @file
 * Standalone comparator for --metrics-out snapshots, used by the
 * metrics_determinism ctest cases (and handy interactively):
 *
 *     check_metrics A.prom B.prom
 *
 * Asserts that two Prometheus exposition files written by the same
 * bench invocation at different --jobs values (or across
 * --no-cycle-skip) are identical line for line once the *values* of
 * the two documented non-deterministic metric classes are masked
 * (metrics.hh's determinism contract):
 *
 *   - wall-clock metrics: family name ends in `_seconds` or
 *     `_seconds_total` (scope timers, phase timings);
 *   - simulator-speed observations: family name starts with
 *     `ser_speed_` (tick-loop iterations, skipped cycles — these
 *     also differ across --no-cycle-skip).
 *
 * Masking replaces the value only; the metric names, label blocks,
 * HELP/TYPE headers, series order and line count must all still
 * match exactly, so a run that *records* different scopes or
 * counters fails even when every differing value is wall-clock.
 *
 * Exits 0 when the snapshots agree, 1 with the first offending line
 * otherwise.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** The family name of a sample line: everything before the label
 * block or the value separator. */
std::string
familyName(const std::string &line)
{
    std::size_t end = line.find_first_of("{ ");
    return line.substr(0, end);
}

bool
isMaskedFamily(const std::string &family)
{
    return endsWith(family, "_seconds") ||
           endsWith(family, "_seconds_total") ||
           startsWith(family, "ser_speed_");
}

/** A sample line with a masked family keeps everything up to and
 * including the space before the value; the value becomes "masked".
 * Comment lines (# HELP / # TYPE) and unmasked samples pass through
 * untouched. */
std::string
maskLine(const std::string &line)
{
    if (line.empty() || line[0] == '#')
        return line;
    if (!isMaskedFamily(familyName(line)))
        return line;
    std::size_t sep = line.rfind(' ');
    if (sep == std::string::npos)
        return line;
    return line.substr(0, sep + 1) + "masked";
}

bool
loadLines(const char *path, std::vector<std::string> *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "check_metrics: cannot open '" << path << "'\n";
        return false;
    }
    std::string line;
    while (std::getline(in, line))
        out->push_back(maskLine(line));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: check_metrics A.prom B.prom\n";
        return 2;
    }

    std::vector<std::string> a, b;
    if (!loadLines(argv[1], &a) || !loadLines(argv[2], &b))
        return 1;

    std::size_t n = a.size() < b.size() ? a.size() : b.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) {
            std::cerr << "check_metrics: '" << argv[1] << "' and '"
                      << argv[2] << "' differ at line " << i + 1
                      << " (after masking):\n  " << a[i] << "\n  "
                      << b[i] << "\n";
            return 1;
        }
    }
    if (a.size() != b.size()) {
        std::cerr << "check_metrics: '" << argv[1] << "' has "
                  << a.size() << " lines but '" << argv[2]
                  << "' has " << b.size() << "\n";
        return 1;
    }

    std::cout << "check_metrics: snapshots agree (" << a.size()
              << " lines)\n";
    return 0;
}
