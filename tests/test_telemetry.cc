/**
 * @file
 * Tests for the live-telemetry HTTP server (--serve): the
 * request-line parser, the socket-free handle() router, a live
 * instance on an ephemeral port under concurrent clients, malformed
 * input and oversized headers, and the campaign convergence series
 * invariants (publishing hook on vs off must not change the
 * campaign's outcome — the determinism contract the telemetry_*
 * ctest fixtures then prove end to end).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "cpu/pipeline.hh"
#include "faults/campaign_engine.hh"
#include "harness/telemetry_server.hh"
#include "isa/assembler.hh"
#include "isa/executor.hh"
#include "sim/json.hh"

using namespace ser;
using harness::TelemetryServer;

namespace
{

int
connectLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Send a raw request, read until the server closes, return the
 * whole response (status line + headers + body). */
std::string
roundTrip(std::uint16_t port, const std::string &request)
{
    int fd = connectLoopback(port);
    EXPECT_GE(fd, 0) << "connect failed";
    if (fd < 0)
        return "";
    std::size_t off = 0;
    while (off < request.size()) {
        ssize_t n = ::send(fd, request.data() + off,
                           request.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            break;  // server may close early (oversized header)
        off += static_cast<std::size_t>(n);
    }
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return out;
}

std::string
get(std::uint16_t port, const std::string &target)
{
    return roundTrip(port, "GET " + target +
                               " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string
body(const std::string &response)
{
    std::size_t pos = response.find("\r\n\r\n");
    return pos == std::string::npos ? std::string()
                                    : response.substr(pos + 4);
}

const char *kLoopSrc = R"(
    movi r2 = 17
    movi r4 = 200
    loop:
    mul r2 = r2, r2
    addi r2 = r2, 13
    xor r6 = r6, r2
    movi r5 = 1
    addi r4 = r4, -1
    cmplt p3 = r0, r4
    (p3) br loop
    out r2
    out r6
    halt
)";

struct EngineRun
{
    isa::Program program;
    cpu::SimTrace trace;
    avf::DeadnessResult deadness;
    avf::AvfResult avf;
    std::vector<std::uint64_t> golden;
};

EngineRun
makeRun()
{
    EngineRun r;
    r.program = isa::assembleOrDie(kLoopSrc);
    isa::Executor golden(r.program);
    EXPECT_EQ(golden.run(3000000), isa::Termination::Halted);
    r.golden = golden.state().output();
    cpu::PipelineParams params;
    params.maxInsts = 3000000;
    cpu::InOrderPipeline pipe(r.program, params);
    r.trace = pipe.run();
    r.trace.program = &r.program;
    r.deadness = avf::analyzeDeadness(r.trace);
    r.avf = avf::computeAvf(r.trace, r.deadness);
    return r;
}

} // namespace

TEST(ParseRequest, CompleteWellFormed)
{
    std::string method, target;
    EXPECT_EQ(TelemetryServer::parseRequest(
                  "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
                  &method, &target),
              1);
    EXPECT_EQ(method, "GET");
    EXPECT_EQ(target, "/metrics");
}

TEST(ParseRequest, BareLfTerminatorAccepted)
{
    std::string method, target;
    EXPECT_EQ(TelemetryServer::parseRequest("GET / HTTP/1.0\n\n",
                                            &method, &target),
              1);
    EXPECT_EQ(target, "/");
}

TEST(ParseRequest, IncompleteNeedsMoreBytes)
{
    std::string method, target;
    EXPECT_EQ(TelemetryServer::parseRequest(
                  "GET /status HTTP/1.1\r\nHost: x\r\n", &method,
                  &target),
              0);
    EXPECT_EQ(TelemetryServer::parseRequest("GE", &method, &target),
              0);
}

TEST(ParseRequest, MalformedIsRejected)
{
    std::string method, target;
    // One token, three-token with a bad version, a target that
    // doesn't start with '/': all complete but malformed.
    EXPECT_EQ(TelemetryServer::parseRequest("garbage\r\n\r\n",
                                            &method, &target),
              -1);
    EXPECT_EQ(TelemetryServer::parseRequest(
                  "GET / FTP/1.1\r\n\r\n", &method, &target),
              -1);
    EXPECT_EQ(TelemetryServer::parseRequest(
                  "GET metrics HTTP/1.1\r\n\r\n", &method, &target),
              -1);
}

TEST(Handle, RoutesAndContentTypes)
{
    TelemetryServer server;

    auto healthz = server.handle("GET", "/healthz");
    EXPECT_EQ(healthz.status, 200);
    EXPECT_EQ(healthz.body, "ok\n");

    auto metrics = server.handle("GET", "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_EQ(metrics.contentType,
              "text/plain; version=0.0.4; charset=utf-8");
    EXPECT_NE(metrics.body.find("ser_build_info"),
              std::string::npos);

    EXPECT_EQ(server.handle("GET", "/nope").status, 404);
    EXPECT_EQ(server.handle("POST", "/healthz").status, 405);
    // Query strings are stripped before routing.
    EXPECT_EQ(server.handle("GET", "/healthz?verbose=1").status,
              200);
}

TEST(Handle, StatusIsValidJson)
{
    TelemetryServer server;
    auto status = server.handle("GET", "/status");
    EXPECT_EQ(status.status, 200);
    EXPECT_EQ(status.contentType, "application/json; charset=utf-8");
    json::JsonValue doc;
    std::string err;
    ASSERT_TRUE(json::parseJson(status.body, &doc, &err)) << err;
    EXPECT_NE(doc.find("active"), nullptr);
    EXPECT_NE(doc.find("done"), nullptr);
    EXPECT_NE(doc.find("total"), nullptr);
    EXPECT_NE(doc.find("cache"), nullptr);
}

TEST(Handle, RunLedger)
{
    TelemetryServer server;
    // Publishing is gated on a live server (a sweep without --serve
    // must not accumulate manifests): before start(), publishes are
    // dropped.
    server.publishRun(9, "dropped", 1.0, "");
    EXPECT_EQ(server.handle("GET", "/runs/9").status, 404);

    server.start(0);
    EXPECT_EQ(server.handle("GET", "/runs/0").status, 404);
    EXPECT_EQ(server.handle("GET", "/runs/xyz").status, 404);

    server.publishRun(3, "mcf", 0.75, "");
    server.publishRun(1, "gzip", 1.25,
                      "{\"benchmark\": \"gzip\"}\n");

    json::JsonValue index;
    std::string err;
    auto runs = server.handle("GET", "/runs");
    ASSERT_TRUE(json::parseJson(runs.body, &index, &err)) << err;
    EXPECT_NE(runs.body.find("\"mcf\""), std::string::npos);
    EXPECT_NE(runs.body.find("\"gzip\""), std::string::npos);

    // A published manifest is served verbatim; a run without one
    // falls back to the summary fields.
    EXPECT_EQ(server.handle("GET", "/runs/1").body,
              "{\"benchmark\": \"gzip\"}\n");
    auto summary = server.handle("GET", "/runs/3");
    EXPECT_EQ(summary.status, 200);
    json::JsonValue doc;
    ASSERT_TRUE(json::parseJson(summary.body, &doc, &err)) << err;
    EXPECT_NE(doc.find("benchmark"), nullptr);
    server.stop();
}

TEST(Handle, CampaignRing)
{
    TelemetryServer server;
    server.start(0);
    faults::ConvergencePoint point;
    point.batch = 0;
    point.samples = 512;
    point.worstHalfWidth = 0.04;
    faults::ConvergencePoint::StructurePoint s;
    s.structure = faults::Structure::Iq;
    s.samples = 512;
    s.sdcRate = 0.1;
    s.sdcHalfWidth = 0.02;
    point.structures.push_back(s);
    server.publishCampaignPoint("mcf", "parity", point);

    auto campaign = server.handle("GET", "/campaign");
    EXPECT_EQ(campaign.status, 200);
    json::JsonValue doc;
    std::string err;
    ASSERT_TRUE(json::parseJson(campaign.body, &doc, &err)) << err;
    EXPECT_NE(campaign.body.find("\"parity\""), std::string::npos);
    EXPECT_NE(campaign.body.find("\"iq\""), std::string::npos);
    server.stop();
}

TEST(LiveServer, ServesConcurrentClients)
{
    TelemetryServer server;
    server.start(0);  // ephemeral port
    ASSERT_TRUE(server.running());
    std::uint16_t port = server.port();
    ASSERT_NE(port, 0);
    server.publishRun(0, "mcf", 0.8, "");

    static const char *kTargets[] = {"/healthz", "/metrics",
                                     "/status", "/runs",
                                     "/campaign"};
    std::vector<std::thread> clients;
    std::vector<int> failures(4, 0);
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([port, t, &failures] {
            for (int i = 0; i < 5; ++i) {
                std::string response =
                    get(port, kTargets[(t + i) % 5]);
                if (response.find("HTTP/1.1 200") != 0)
                    ++failures[static_cast<std::size_t>(t)];
            }
        });
    }
    for (auto &c : clients)
        c.join();
    for (int f : failures)
        EXPECT_EQ(f, 0);
    server.stop();
    EXPECT_FALSE(server.running());
    // A second stop is a no-op, not a crash.
    server.stop();
}

TEST(LiveServer, MalformedRequestGets400)
{
    TelemetryServer server;
    server.start(0);
    std::string response =
        roundTrip(server.port(), "NONSENSE\r\n\r\n");
    EXPECT_EQ(response.find("HTTP/1.1 400"), 0u) << response;
    server.stop();
}

TEST(LiveServer, MethodNotAllowedGets405)
{
    TelemetryServer server;
    server.start(0);
    std::string response = roundTrip(
        server.port(), "POST /healthz HTTP/1.1\r\n\r\n");
    EXPECT_EQ(response.find("HTTP/1.1 405"), 0u) << response;
    server.stop();
}

TEST(LiveServer, OversizedHeaderIsDropped)
{
    TelemetryServer server;
    server.start(0);
    // A header that never terminates and exceeds the cap: the server
    // closes the connection without an answer.
    std::string request = "GET /healthz HTTP/1.1\r\nX-Pad: ";
    request.append(TelemetryServer::maxHeaderBytes + 1024, 'a');
    std::string response = roundTrip(server.port(), request);
    EXPECT_EQ(response, "");
    // The server survives and still answers well-formed requests.
    EXPECT_EQ(get(server.port(), "/healthz").find("HTTP/1.1 200"),
              0u);
    server.stop();
}

TEST(LiveServer, MetricsScrapeMatchesExposition)
{
    TelemetryServer server;
    server.start(0);
    std::string response = get(server.port(), "/metrics");
    EXPECT_NE(response.find(
                  "Content-Type: text/plain; version=0.0.4; "
                  "charset=utf-8"),
              std::string::npos);
    std::string text = body(response);
    EXPECT_NE(text.find("# HELP ser_build_info"), std::string::npos);
    EXPECT_NE(text.find("# TYPE ser_build_info gauge"),
              std::string::npos);
    server.stop();
}

// The convergence series is a campaign *result*: attaching the
// publishing hook must not change anything about the outcome, and
// the series must agree with the outcome's own totals. This is the
// unit-level half of the --serve determinism contract (the ctest
// fixture proves the end-to-end half on real sweep artifacts).
TEST(Convergence, HookDoesNotPerturbOutcome)
{
    EngineRun r = makeRun();
    faults::CampaignSpec spec;
    spec.samples = 2000;
    spec.batchSamples = 256;
    spec.structures = faults::structIq | faults::structRegFile;

    faults::CampaignOutcome plain = faults::runCampaignEngine(
        r.program, r.trace, r.deadness, r.avf, spec);

    std::vector<faults::ConvergencePoint> seen;
    spec.onConvergence =
        [&seen](const faults::ConvergencePoint &point) {
            seen.push_back(point);
        };
    faults::CampaignOutcome hooked = faults::runCampaignEngine(
        r.program, r.trace, r.deadness, r.avf, spec);

    EXPECT_EQ(plain.samplesRun, hooked.samplesRun);
    EXPECT_EQ(plain.ciHalfWidth, hooked.ciHalfWidth);
    ASSERT_EQ(plain.convergence.size(), hooked.convergence.size());
    ASSERT_EQ(seen.size(), hooked.convergence.size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].batch, hooked.convergence[i].batch);
        EXPECT_EQ(seen[i].samples, hooked.convergence[i].samples);
        EXPECT_EQ(seen[i].worstHalfWidth,
                  hooked.convergence[i].worstHalfWidth);
        EXPECT_EQ(plain.convergence[i].worstHalfWidth,
                  hooked.convergence[i].worstHalfWidth);
    }

    // One point per batch, cumulative sample counts, and the final
    // point agrees with the outcome's own totals.
    std::uint64_t batches =
        (spec.samples + spec.batchSamples - 1) / spec.batchSamples;
    EXPECT_EQ(hooked.convergence.size(), batches);
    for (std::size_t i = 1; i < hooked.convergence.size(); ++i)
        EXPECT_GT(hooked.convergence[i].samples,
                  hooked.convergence[i - 1].samples);
    const faults::ConvergencePoint &last =
        hooked.convergence.back();
    EXPECT_EQ(last.samples, hooked.samplesRun);
    EXPECT_EQ(last.worstHalfWidth, hooked.ciHalfWidth);
}
