/**
 * @file
 * Standalone telemetry scraper for the telemetry_* ctest fixtures:
 * runs alongside a bench started with --serve PORT, polls the
 * endpoints while the sweep executes, validates every response
 * (status code, content type, JSON well-formedness) and saves the
 * last successful scrape of each endpoint into OUTDIR
 * (live_metrics.prom, live_status.json, live_runs.json,
 * live_campaign.json) for the downstream exposition lint.
 *
 * Usage: check_telemetry PORT OUTDIR
 *
 * Exit 0 iff every endpoint answered correctly at least once. The
 * bench may finish (and the server vanish) at any moment, so a
 * connection that fails *after* an endpoint has already succeeded is
 * normal end-of-sweep, not an error; only never-succeeding endpoints
 * fail the check.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "sim/json.hh"

using namespace ser;

namespace
{

int
connectLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** GET target; returns true and fills the full response on success
 * (any HTTP answer), false when the server is unreachable. */
bool
httpGet(std::uint16_t port, const std::string &target,
        std::string *response)
{
    int fd = connectLoopback(port);
    if (fd < 0)
        return false;
    std::string request =
        "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
    std::size_t off = 0;
    while (off < request.size()) {
        ssize_t n = ::send(fd, request.data() + off,
                           request.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    response->clear();
    char buf[8192];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response->append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return !response->empty();
}

std::string
body(const std::string &response)
{
    std::size_t pos = response.find("\r\n\r\n");
    return pos == std::string::npos ? std::string()
                                    : response.substr(pos + 4);
}

bool
save(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary);
    os << content;
    return static_cast<bool>(os);
}

struct Endpoint
{
    const char *target;
    const char *file;
    bool json;     ///< body must parse as JSON
    bool ok = false;
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: check_telemetry PORT OUTDIR\n";
        return 2;
    }
    std::uint16_t port =
        static_cast<std::uint16_t>(std::stoul(argv[1]));
    std::string outdir = argv[2];

    // Wait for the server to come up: the bench arms it while
    // parsing options, before any simulation, so this resolves in
    // well under a second unless the bench itself failed to launch.
    std::string response;
    bool up = false;
    for (int i = 0; i < 600 && !up; ++i) {
        up = httpGet(port, "/healthz", &response) &&
             response.find("HTTP/1.1 200") == 0;
        if (!up)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
    }
    if (!up) {
        std::cerr << "check_telemetry: /healthz never answered on "
                     "port " << port << "\n";
        return 1;
    }

    Endpoint endpoints[] = {
        {"/metrics", "live_metrics.prom", false},
        {"/status", "live_status.json", true},
        {"/runs", "live_runs.json", true},
        {"/campaign", "live_campaign.json", true},
    };

    // Scrape every endpoint each round until the server goes away
    // (= the sweep finished) or everything has succeeded and a
    // generous deadline passes. Responses are re-validated every
    // round so a mid-sweep regression still fails the check.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(120);
    int errors = 0;
    bool alive = true;
    while (alive && std::chrono::steady_clock::now() < deadline) {
        alive = false;
        for (Endpoint &endpoint : endpoints) {
            if (!httpGet(port, endpoint.target, &response))
                continue;  // server gone mid-round: end of sweep
            alive = true;
            if (response.find("HTTP/1.1 200") != 0) {
                std::cerr << "check_telemetry: " << endpoint.target
                          << " answered\n" << response << "\n";
                ++errors;
                continue;
            }
            std::string text = body(response);
            if (endpoint.json) {
                json::JsonValue doc;
                std::string err;
                if (!json::parseJson(text, &doc, &err)) {
                    std::cerr << "check_telemetry: "
                              << endpoint.target
                              << " body is not JSON: " << err
                              << "\n";
                    ++errors;
                    continue;
                }
            } else if (text.find("# HELP") == std::string::npos ||
                       response.find("text/plain; version=0.0.4") ==
                           std::string::npos) {
                std::cerr << "check_telemetry: " << endpoint.target
                          << " is not a Prometheus exposition\n";
                ++errors;
                continue;
            }
            if (!save(outdir + "/" + endpoint.file, text)) {
                std::cerr << "check_telemetry: cannot write "
                          << endpoint.file << "\n";
                ++errors;
                continue;
            }
            endpoint.ok = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    int missing = 0;
    for (const Endpoint &endpoint : endpoints) {
        if (!endpoint.ok) {
            std::cerr << "check_telemetry: " << endpoint.target
                      << " never answered correctly\n";
            ++missing;
        }
    }
    if (errors || missing)
        return 1;
    std::cout << "check_telemetry: all endpoints scraped and "
                 "validated\n";
    return 0;
}
