/**
 * @file
 * Tests for the cache model and the three-level hierarchy, including
 * LRU behaviour, inclusive fills, in-flight (MSHR) latency, and the
 * timed prefetch path.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"
#include "memory/hierarchy.hh"

using namespace ser;
using namespace ser::memory;

namespace
{

CacheParams
tinyCache(unsigned assoc = 2)
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = 4 * 64 * assoc;  // 4 sets
    p.lineBytes = 64;
    p.assoc = assoc;
    p.hitLatency = 2;
    return p;
}

} // namespace

TEST(Cache, MissThenFillThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x1000));
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038));  // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
    c.fill(0x1000);
    EXPECT_TRUE(c.probe(0x1000));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyCache(2));  // 2-way, 4 sets, set stride 64*4=256
    // Two lines in the same set.
    c.fill(0x0000);
    c.fill(0x0400);
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x0400));
    // Touch the first so the second becomes LRU.
    EXPECT_TRUE(c.access(0x0000));
    c.fill(0x0800);  // evicts 0x0400
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0400));
    EXPECT_TRUE(c.probe(0x0800));
}

TEST(Cache, InvalidateAllDropsEverything)
{
    Cache c(tinyCache());
    c.fill(0x1000);
    c.fill(0x2000);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    CacheParams p;
    p.sizeBytes = 10 * 1024 * 1024;
    p.lineBytes = 128;
    p.assoc = 16;
    Cache c(p);  // 5120 sets, like the paper's 10MB L2
    EXPECT_EQ(c.numSets(), 5120u);
    c.fill(0x12345680);
    EXPECT_TRUE(c.probe(0x12345680));
}

TEST(Hierarchy, LatenciesMatchServiceLevel)
{
    CacheHierarchy h;
    auto first = h.access(0x100000, 0);
    EXPECT_EQ(first.level, HitLevel::Memory);
    EXPECT_EQ(first.latency, h.params().memLatency);

    // After the fill completes, the line is everywhere.
    auto later = h.access(0x100000, 1000);
    EXPECT_EQ(later.level, HitLevel::L0);
    EXPECT_EQ(later.latency, h.params().l0.hitLatency);
}

TEST(Hierarchy, InflightSecondaryMissPaysRemainder)
{
    CacheHierarchy h;
    auto first = h.access(0x200000, 100);  // memory: ready at 300
    ASSERT_EQ(first.level, HitLevel::Memory);
    auto second = h.access(0x200008, 150);  // same L0 line
    EXPECT_TRUE(second.secondary);
    EXPECT_EQ(second.level, HitLevel::Memory);
    EXPECT_EQ(second.latency, 150u);  // 300 - 150
    auto third = h.access(0x200010, 299);
    EXPECT_EQ(third.latency, h.params().l0.hitLatency);  // clamped
    auto after = h.access(0x200018, 301);
    EXPECT_FALSE(after.secondary);
    EXPECT_EQ(after.level, HitLevel::L0);
}

TEST(Hierarchy, PrefetchHidesLatency)
{
    CacheHierarchy h;
    h.prefetch(0x300000, 0);  // starts a memory fill, ready at 200
    auto early = h.access(0x300000, 50);
    EXPECT_TRUE(early.secondary);
    EXPECT_EQ(early.latency, 150u);

    h.prefetch(0x340000, 0);
    auto late = h.access(0x340000, 500);
    EXPECT_EQ(late.level, HitLevel::L0);
    EXPECT_EQ(late.latency, h.params().l0.hitLatency);
}

TEST(Hierarchy, InclusiveFillsServeFromCloserLevelNextTime)
{
    CacheHierarchy h;
    h.access(0x400000, 0);
    // Evict from L0 by filling its set heavily; the L1 copy remains.
    // L0: 8KB/64B/4-way = 32 sets; lines mapping to the same set are
    // 32*64 = 2KB apart.
    for (int i = 1; i <= 8; ++i)
        h.access(0x400000 + i * 2048ULL, 1000 + i * 300ULL);
    auto again = h.access(0x400000, 100000);
    EXPECT_EQ(again.level, HitLevel::L1);
    EXPECT_EQ(again.latency, h.params().l1.hitLatency);
}

TEST(Hierarchy, HitLevelNames)
{
    EXPECT_STREQ(hitLevelName(HitLevel::L0), "L0");
    EXPECT_STREQ(hitLevelName(HitLevel::Memory), "memory");
}
