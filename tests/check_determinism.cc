/**
 * @file
 * Standalone determinism checker for the parallel suite runner, used
 * by the determinism_validate ctest case (and handy interactively):
 *
 *     check_determinism A.json B.json [A.extra B.extra]...
 *
 * Asserts that two manifests produced by the same bench invocation at
 * different --jobs values (or across --no-cycle-skip / --no-run-cache
 * settings) are identical except for wall-clock phase
 * timings and run-cache outcomes: the documents must match member for
 * member once every value inside a "timings_seconds" or "run_cache"
 * object is masked (the phase *keys*
 * must still match exactly — parallel runs must record the same
 * phases, including the once-per-benchmark "build" phase, just not
 * the same durations). Any number of further file pairs (captured
 * stdout, --trace-events output, interval .jsonl series) must each
 * be byte-identical.
 *
 * Exits 0 when the artifacts agree, 1 with a message otherwise.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/json.hh"

using ser::json::JsonValue;

namespace
{

/** Mask the values (not the keys) of every timings_seconds object so
 * wall-clock noise does not participate in the comparison, and of
 * every run_cache object: which worker's sweep point misses and
 * which hits depends on scheduling (and on --no-run-cache), while
 * every simulated result must not. */
void
maskTimings(JsonValue &v)
{
    if (v.isObject()) {
        for (auto &member : v.object) {
            if (member.first == "timings_seconds" &&
                member.second.isObject()) {
                for (auto &phase : member.second.object) {
                    phase.second = JsonValue{};
                    phase.second.kind = JsonValue::Kind::Number;
                }
            } else if (member.first == "run_cache" &&
                       member.second.isObject()) {
                for (auto &section : member.second.object) {
                    section.second = JsonValue{};
                    section.second.kind = JsonValue::Kind::String;
                    section.second.string = "masked";
                }
            } else {
                maskTimings(member.second);
            }
        }
    } else if (v.isArray()) {
        for (auto &elem : v.array)
            maskTimings(elem);
    }
}

/** Structural equality with a breadcrumb for the first mismatch. */
bool
jsonEqual(const JsonValue &a, const JsonValue &b, const std::string &path,
      std::string *where)
{
    if (a.kind != b.kind) {
        *where = path + ": kind differs";
        return false;
    }
    switch (a.kind) {
      case JsonValue::Kind::Null:
        return true;
      case JsonValue::Kind::Bool:
        if (a.boolean != b.boolean) {
            *where = path + ": boolean differs";
            return false;
        }
        return true;
      case JsonValue::Kind::Number:
        if (a.number != b.number) {
            *where = path + ": " + std::to_string(a.number) +
                     " != " + std::to_string(b.number);
            return false;
        }
        return true;
      case JsonValue::Kind::String:
        if (a.string != b.string) {
            *where = path + ": '" + a.string + "' != '" + b.string +
                     "'";
            return false;
        }
        return true;
      case JsonValue::Kind::Array:
        if (a.array.size() != b.array.size()) {
            *where = path + ": array length " +
                     std::to_string(a.array.size()) + " != " +
                     std::to_string(b.array.size());
            return false;
        }
        for (std::size_t i = 0; i < a.array.size(); ++i) {
            if (!jsonEqual(a.array[i], b.array[i],
                       path + "[" + std::to_string(i) + "]", where))
                return false;
        }
        return true;
      case JsonValue::Kind::Object: {
        auto ia = a.object.begin(), ib = b.object.begin();
        for (; ia != a.object.end() && ib != b.object.end();
             ++ia, ++ib) {
            if (ia->first != ib->first) {
                *where = path + ": member '" + ia->first +
                         "' vs '" + ib->first + "'";
                return false;
            }
            if (!jsonEqual(ia->second, ib->second,
                       path + "." + ia->first, where))
                return false;
        }
        if (ia != a.object.end() || ib != b.object.end()) {
            *where = path + ": object member counts differ";
            return false;
        }
        return true;
      }
    }
    return true;
}

bool
load(const char *path, JsonValue *out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "check_determinism: cannot open '" << path
                  << "'\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string err;
    if (!ser::json::parseJson(buf.str(), out, &err)) {
        std::cerr << "check_determinism: '" << path
                  << "' does not parse: " << err << "\n";
        return false;
    }
    return true;
}

bool
slurp(const char *path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "check_determinism: cannot open '" << path
                  << "'\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3 || argc % 2 == 0) {
        std::cerr << "usage: check_determinism A.json B.json "
                     "[A.extra B.extra]...\n";
        return 2;
    }

    JsonValue a, b;
    if (!load(argv[1], &a) || !load(argv[2], &b))
        return 1;
    maskTimings(a);
    maskTimings(b);
    std::string where;
    if (!jsonEqual(a, b, "manifest", &where)) {
        std::cerr << "check_determinism: '" << argv[1] << "' and '"
                  << argv[2]
                  << "' differ beyond wall-clock timings at "
                  << where << "\n";
        return 1;
    }

    // Any further pairs (stdout captures, --trace-events output)
    // must be byte-identical.
    for (int i = 3; i + 1 < argc; i += 2) {
        std::string out_a, out_b;
        if (!slurp(argv[i], &out_a) || !slurp(argv[i + 1], &out_b))
            return 1;
        if (out_a != out_b) {
            std::cerr << "check_determinism: captures '" << argv[i]
                      << "' and '" << argv[i + 1]
                      << "' are not byte-identical\n";
            return 1;
        }
    }

    std::cout << "check_determinism: artifacts agree\n";
    return 0;
}
