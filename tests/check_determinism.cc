/**
 * @file
 * Standalone determinism checker for the parallel suite runner, used
 * by the determinism_validate ctest case (and handy interactively):
 *
 *     check_determinism A.json B.json [A.extra B.extra]...
 *
 * Asserts that two manifests produced by the same bench invocation at
 * different --jobs values (or across --no-cycle-skip / --no-run-cache
 * settings) are identical except for wall-clock phase
 * timings and run-cache outcomes: the documents must match member for
 * member once every value inside a "timings_seconds" or "run_cache"
 * object is masked (the phase *keys*
 * must still match exactly — parallel runs must record the same
 * phases, including the once-per-benchmark "build" phase, just not
 * the same durations). Any number of further file pairs (captured
 * stdout, --trace-events output, interval .jsonl series) must each
 * be byte-identical.
 *
 * Exits 0 when the artifacts agree, 1 with a message otherwise.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "manifest_mask.hh"
#include "sim/json.hh"

using ser::json::JsonValue;
using ser::tests::jsonEqual;
using ser::tests::maskTimings;

namespace
{

bool
load(const char *path, JsonValue *out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "check_determinism: cannot open '" << path
                  << "'\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string err;
    if (!ser::json::parseJson(buf.str(), out, &err)) {
        std::cerr << "check_determinism: '" << path
                  << "' does not parse: " << err << "\n";
        return false;
    }
    return true;
}

bool
slurp(const char *path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "check_determinism: cannot open '" << path
                  << "'\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3 || argc % 2 == 0) {
        std::cerr << "usage: check_determinism A.json B.json "
                     "[A.extra B.extra]...\n";
        return 2;
    }

    JsonValue a, b;
    if (!load(argv[1], &a) || !load(argv[2], &b))
        return 1;
    maskTimings(a);
    maskTimings(b);
    std::string where;
    if (!jsonEqual(a, b, "manifest", &where)) {
        std::cerr << "check_determinism: '" << argv[1] << "' and '"
                  << argv[2]
                  << "' differ beyond wall-clock timings at "
                  << where << "\n";
        return 1;
    }

    // Any further pairs (stdout captures, --trace-events output)
    // must be byte-identical.
    for (int i = 3; i + 1 < argc; i += 2) {
        std::string out_a, out_b;
        if (!slurp(argv[i], &out_a) || !slurp(argv[i + 1], &out_b))
            return 1;
        if (out_a != out_b) {
            std::cerr << "check_determinism: captures '" << argv[i]
                      << "' and '" << argv[i + 1]
                      << "' are not byte-identical\n";
            return 1;
        }
    }

    std::cout << "check_determinism: artifacts agree\n";
    return 0;
}
