/**
 * @file
 * The bounded lock-free MPMC queue (sim/mpmc_queue.hh) and the
 * WorkerPool built on it (sim/parallel.hh): single-threaded
 * contract checks (FIFO order, capacity rounding, full/empty
 * tryPush/tryPop, close-then-drain), then multi-threaded stress —
 * N producers x M consumers must hand every element over exactly
 * once (checked by sum and by per-element multiplicity), and the
 * pool must run every submitted job exactly once even when
 * submitters outnumber the queue capacity. Run these under
 * SER_SANITIZE=thread to turn the memory-ordering claims in the
 * queue's file comment into checked facts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "sim/mpmc_queue.hh"
#include "sim/parallel.hh"

using ser::MpmcQueue;
using ser::WorkerPool;

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(MpmcQueue<int>(0).capacity(), 2u);
    EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(MpmcQueue<int>(4).capacity(), 4u);
    EXPECT_EQ(MpmcQueue<int>(5).capacity(), 8u);
    EXPECT_EQ(MpmcQueue<int>(256).capacity(), 256u);
    EXPECT_EQ(MpmcQueue<int>(257).capacity(), 512u);
}

TEST(MpmcQueue, FifoSingleThread)
{
    MpmcQueue<int> q(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.tryPush(i));
    int out = -1;
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(q.tryPop(&out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(q.tryPop(&out));
}

TEST(MpmcQueue, TryPushFailsWhenFullTryPopFailsWhenEmpty)
{
    MpmcQueue<int> q(4);
    int out = -1;
    EXPECT_FALSE(q.tryPop(&out));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.tryPush(i));
    EXPECT_FALSE(q.tryPush(99));
    // Popping one frees exactly one slot for the next generation.
    EXPECT_TRUE(q.tryPop(&out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(q.tryPush(4));
    EXPECT_FALSE(q.tryPush(5));
}

TEST(MpmcQueue, WrapAroundManyLaps)
{
    MpmcQueue<int> q(2);
    int out = -1;
    for (int lap = 0; lap < 1000; ++lap) {
        EXPECT_TRUE(q.tryPush(2 * lap));
        EXPECT_TRUE(q.tryPush(2 * lap + 1));
        EXPECT_FALSE(q.tryPush(-1));
        EXPECT_TRUE(q.tryPop(&out));
        EXPECT_EQ(out, 2 * lap);
        EXPECT_TRUE(q.tryPop(&out));
        EXPECT_EQ(out, 2 * lap + 1);
    }
    EXPECT_FALSE(q.tryPop(&out));
}

TEST(MpmcQueue, PopDrainsThenObservesClose)
{
    MpmcQueue<int> q(8);
    q.push(1);
    q.push(2);
    q.close();
    EXPECT_TRUE(q.closed());
    int out = -1;
    // pop() after close still returns the queued elements in order,
    // and only then reports exhaustion.
    EXPECT_TRUE(q.pop(&out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(q.pop(&out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(q.pop(&out));
    EXPECT_FALSE(q.pop(&out));  // close is sticky
}

TEST(MpmcQueue, CloseWakesBlockedConsumers)
{
    MpmcQueue<int> q(4);
    std::atomic<int> woke{0};
    std::vector<std::thread> consumers;
    for (int i = 0; i < 4; ++i) {
        consumers.emplace_back([&] {
            int out;
            while (q.pop(&out)) {
            }
            woke.fetch_add(1);
        });
    }
    q.close();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(woke.load(), 4);
}

TEST(MpmcQueue, MoveOnlyElements)
{
    MpmcQueue<std::unique_ptr<int>> q(2);
    EXPECT_TRUE(q.tryPush(std::make_unique<int>(7)));
    std::unique_ptr<int> out;
    EXPECT_TRUE(q.tryPop(&out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 7);
}

TEST(MpmcQueue, StressManyProducersManyConsumers)
{
    // Every element crosses the ring exactly once: the consumers'
    // multiplicity vector ends at exactly 1 per element and the sum
    // matches, even with the ring (64) far smaller than the element
    // count so both full and empty transitions are exercised hard.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 20000;
    constexpr int kTotal = kProducers * kPerProducer;

    MpmcQueue<int> q(64);
    std::vector<std::atomic<std::uint32_t>> seen(kTotal);
    std::atomic<std::uint64_t> sum{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            int value;
            std::uint64_t local = 0;
            while (q.pop(&value)) {
                seen[value].fetch_add(1,
                                      std::memory_order_relaxed);
                local += static_cast<std::uint64_t>(value);
            }
            sum.fetch_add(local);
        });
    }

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                q.push(p * kPerProducer + i);
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    std::uint64_t expected =
        static_cast<std::uint64_t>(kTotal) * (kTotal - 1) / 2;
    EXPECT_EQ(sum.load(), expected);
    for (int i = 0; i < kTotal; ++i)
        ASSERT_EQ(seen[i].load(), 1u) << "element " << i;
}

TEST(WorkerPool, RunsEveryJobExactlyOnce)
{
    constexpr int kJobs = 5000;
    std::vector<std::atomic<std::uint32_t>> ran(kJobs);
    {
        // Queue capacity (16) far below the job count: submit must
        // exercise its backpressure path, and the destructor must
        // not return until every accepted job finished.
        WorkerPool pool(4, 16);
        EXPECT_EQ(pool.threads(), 4u);
        for (int i = 0; i < kJobs; ++i)
            pool.submit([&ran, i] {
                ran[i].fetch_add(1, std::memory_order_relaxed);
            });
    }
    for (int i = 0; i < kJobs; ++i)
        ASSERT_EQ(ran[i].load(), 1u) << "job " << i;
}

TEST(WorkerPool, ConcurrentSubmitters)
{
    // The daemon's shape: several producer threads (HTTP handlers)
    // race submissions into one pool.
    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = 2000;
    std::atomic<int> ran{0};
    {
        WorkerPool pool(2, 8);
        std::vector<std::thread> submitters;
        for (int s = 0; s < kSubmitters; ++s) {
            submitters.emplace_back([&] {
                for (int i = 0; i < kPerSubmitter; ++i)
                    pool.submit([&] { ran.fetch_add(1); });
            });
        }
        for (auto &t : submitters)
            t.join();
    }
    EXPECT_EQ(ran.load(), kSubmitters * kPerSubmitter);
}

TEST(WorkerPool, ZeroThreadsStillRunsJobs)
{
    // A pool asked for zero workers must still make progress (the
    // constructor clamps to one thread) — the daemon passes the
    // user's --jobs through unchecked.
    std::atomic<int> ran{0};
    {
        WorkerPool pool(0);
        EXPECT_GE(pool.threads(), 1u);
        pool.submit([&] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 1);
}
