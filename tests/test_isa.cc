/**
 * @file
 * Unit and property tests for the TIA64 ISA: encoding round trips,
 * the per-bit field map, the assembler (including error reporting
 * and disassembly round trips), architectural state, and the
 * functional executor's semantics.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "isa/executor.hh"
#include "isa/isa.hh"
#include "isa/program.hh"
#include "sim/rng.hh"

using namespace ser;
using namespace ser::isa;

TEST(Encoding, FieldRoundTrip)
{
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        auto op = static_cast<Opcode>(rng.range(numOpcodes));
        auto qp = static_cast<std::uint8_t>(rng.range(64));
        auto dst = static_cast<std::uint8_t>(rng.range(64));
        auto s1 = static_cast<std::uint8_t>(rng.range(64));
        auto s2 = static_cast<std::uint8_t>(rng.range(64));
        auto imm = static_cast<std::int32_t>(rng.next());
        std::uint64_t w = encodeWord(qp, op, dst, s1, s2, imm);
        EXPECT_EQ(encQp(w), qp);
        EXPECT_EQ(encOpcodeRaw(w), static_cast<std::uint8_t>(op));
        EXPECT_EQ(encDst(w), dst);
        EXPECT_EQ(encSrc1(w), s1);
        EXPECT_EQ(encSrc2(w), s2);
        EXPECT_EQ(encImm(w), imm);
    }
}

TEST(Encoding, FieldForBitCoversWholeWordConsistently)
{
    int counts[6] = {};
    for (int bit = 0; bit < 64; ++bit)
        ++counts[static_cast<int>(fieldForBit(bit))];
    EXPECT_EQ(counts[static_cast<int>(Field::Qp)], 6);
    EXPECT_EQ(counts[static_cast<int>(Field::Opcode)], 8);
    EXPECT_EQ(counts[static_cast<int>(Field::Dst)], 6);
    EXPECT_EQ(counts[static_cast<int>(Field::Src1)], 6);
    EXPECT_EQ(counts[static_cast<int>(Field::Src2)], 6);
    EXPECT_EQ(counts[static_cast<int>(Field::Imm)], 32);
    for (auto f : {Field::Qp, Field::Opcode, Field::Dst, Field::Src1,
                   Field::Src2, Field::Imm}) {
        int w = 0;
        for (int bit = 0; bit < 64; ++bit)
            w += fieldForBit(bit) == f;
        EXPECT_EQ(w, fieldWidth(f));
    }
}

TEST(Encoding, FlippingAFieldBitChangesOnlyThatField)
{
    std::uint64_t w =
        encodeWord(3, Opcode::Add, 4, 5, 6, 1234);
    // Flip one dst bit.
    int dst_bit = encoding::dstShift + 1;
    std::uint64_t w2 = w ^ (1ULL << dst_bit);
    EXPECT_EQ(encQp(w2), encQp(w));
    EXPECT_EQ(encOpcodeRaw(w2), encOpcodeRaw(w));
    EXPECT_NE(encDst(w2), encDst(w));
    EXPECT_EQ(encImm(w2), encImm(w));
}

TEST(StaticInst, DecodeRejectsInvalidOpcode)
{
    std::uint64_t w = encoding::insert(0, encoding::opcodeShift,
                                       encoding::opcodeBits, 0xff);
    StaticInst inst;
    EXPECT_FALSE(StaticInst::decode(w, inst));
    EXPECT_TRUE(inst.isNop());  // left as a safe default
}

TEST(StaticInst, PropertyFlags)
{
    StaticInst ld(Opcode::Ld8, 0, 4, 5, 0, 16);
    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.isMem());
    EXPECT_FALSE(ld.isStore());
    EXPECT_TRUE(ld.writesIntReg());

    StaticInst st(Opcode::St8, 0, 0, 5, 6, 16);
    EXPECT_TRUE(st.isStore());
    EXPECT_FALSE(st.hasDst());

    StaticInst nop(Opcode::Nop, 0, 0, 0, 0, 0);
    EXPECT_TRUE(nop.isNeutral());
    StaticInst pf(Opcode::Prefetch, 0, 0, 5, 0, 64);
    EXPECT_TRUE(pf.isNeutral());
    EXPECT_TRUE(pf.isMem());

    StaticInst br(Opcode::Br, 3, 0, 0, 0, 7);
    EXPECT_TRUE(br.isBranch());
    EXPECT_TRUE(br.isDirectBranch());
    EXPECT_TRUE(br.isConditionalBranch());
    StaticInst br0(Opcode::Br, 0, 0, 0, 0, 7);
    EXPECT_FALSE(br0.isConditionalBranch());

    StaticInst call(Opcode::Call, 0, 62, 0, 0, 3);
    EXPECT_TRUE(call.isCall());
    EXPECT_TRUE(call.writesIntReg());
    StaticInst ret(Opcode::Ret, 0, 0, 62, 0, 0);
    EXPECT_TRUE(ret.isReturn());
    EXPECT_TRUE(ret.isIndirectBranch());

    StaticInst cmp(Opcode::CmpLt, 0, 3, 4, 5, 0);
    EXPECT_TRUE(cmp.writesPredReg());
}

TEST(Assembler, BasicProgramAndLabels)
{
    auto result = assemble(R"(
        .entry main
        main:
            movi r4 = 100
            addi r4 = r4, -1
            cmplt p2 = r0, r4
            (p2) br main
            out r4
            halt
    )");
    ASSERT_TRUE(result.ok());
    const Program &p = result.program;
    EXPECT_EQ(p.size(), 6u);
    EXPECT_EQ(p.entry(), 0u);
    EXPECT_EQ(p.inst(3).opcode(), Opcode::Br);
    EXPECT_EQ(p.inst(3).qp(), 2);
    EXPECT_EQ(p.inst(3).imm(), 0);  // label resolved to index
}

TEST(Assembler, MemoryAndDataDirectives)
{
    auto result = assemble(R"(
        .data 0x2000
        .word 7
        .word 9
        ld8 r4 = [r5, 16]
        st8 [r5, 24] = r4
        fld f3 = [r5, 0]
        fst [r5, 8] = f3
        prefetch [r5, 64]
        halt
    )");
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.program.dataInits().size(), 2u);
    EXPECT_EQ(result.program.dataInits()[0].addr, 0x2000u);
    EXPECT_EQ(result.program.dataInits()[1].addr, 0x2008u);
    EXPECT_EQ(result.program.dataInits()[1].value, 9u);
    EXPECT_EQ(result.program.inst(0).imm(), 16);
    EXPECT_EQ(result.program.inst(1).src2(), 4);
}

TEST(Assembler, ReportsErrorsWithLineNumbers)
{
    auto bad_mnemonic = assemble("main:\n    frobnicate r1\n");
    ASSERT_FALSE(bad_mnemonic.ok());
    EXPECT_EQ(bad_mnemonic.error->line, 2);

    auto bad_reg = assemble("add r99 = r1, r2\n");
    ASSERT_FALSE(bad_reg.ok());

    auto undefined_label = assemble("br nowhere\nhalt\n");
    ASSERT_FALSE(undefined_label.ok());

    auto duplicate = assemble("a:\na:\nhalt\n");
    ASSERT_FALSE(duplicate.ok());

    auto trailing = assemble("nop nop\n");
    ASSERT_FALSE(trailing.ok());
}

TEST(Assembler, MoviOfLabelGivesCodeAddress)
{
    auto result = assemble(R"(
            movi r7 = target
            bri r7
            halt
        target:
            out r0
            halt
    )");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(static_cast<std::uint64_t>(result.program.inst(0).imm()),
              Program::indexToAddr(3));
}

TEST(Assembler, DisassemblyRoundTrips)
{
    // Build a program exercising every syntactic form, disassemble,
    // re-assemble, and require identical encodings.
    auto first = assembleOrDie(R"(
        main:
            movi r4 = -12345
            (p3) add r5 = r4, r6
            cmpieq p3 = r5, 0
            ld8 r7 = [r5, -8]
            st8 [r5, 8] = r7
            fld f2 = [r5, 0]
            fst [r5, 16] = f2
            fadd f3 = f2, f2
            i2f f4 = r5
            f2i r8 = f4
            prefetch [r5, 128]
            hint
            nop
            call r62 = main
            ret r62
            bri r7
            (p3) br main
            out r8
            fout f3
            halt
    )");
    auto second = assembleOrDie(first.disassemble());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first.inst(i).encode(), second.inst(i).encode())
            << "instruction " << i << ": "
            << first.inst(i).toString();
}

TEST(ArchState, HardwiredRegisters)
{
    ArchState st;
    st.writeInt(0, 99);
    EXPECT_EQ(st.readInt(0), 0u);
    st.writeFp(0, 3.0);
    st.writeFp(1, 3.0);
    EXPECT_DOUBLE_EQ(st.readFp(0), 0.0);
    EXPECT_DOUBLE_EQ(st.readFp(1), 1.0);
    st.writePred(0, false);
    EXPECT_TRUE(st.readPred(0));
}

TEST(ArchState, SparseMemoryWordAccess)
{
    SparseMemory mem;
    EXPECT_EQ(mem.readWord(0x5000), 0u);
    mem.writeWord(0x5000, 0x1122334455667788ULL);
    EXPECT_EQ(mem.readWord(0x5000), 0x1122334455667788ULL);
    EXPECT_EQ(mem.readByte(0x5000), 0x88);
    EXPECT_EQ(mem.readByte(0x5007), 0x11);
    // Unaligned, page-straddling access.
    mem.writeWord(4096 - 3, 0xAABBCCDDEEFF0011ULL);
    EXPECT_EQ(mem.readWord(4096 - 3), 0xAABBCCDDEEFF0011ULL);
}

namespace
{

/** Run source to completion and return the output stream. */
std::vector<std::uint64_t>
runSource(const std::string &src, std::uint64_t max_steps = 100000)
{
    Program p = assembleOrDie(src);
    Executor ex(p);
    EXPECT_EQ(ex.run(max_steps), Termination::Halted);
    return ex.state().output();
}

} // namespace

TEST(Executor, ArithmeticSemantics)
{
    auto out = runSource(R"(
        movi r2 = 7
        movi r3 = 3
        add r4 = r2, r3
        out r4
        sub r4 = r2, r3
        out r4
        mul r4 = r2, r3
        out r4
        divq r4 = r2, r3
        out r4
        remq r4 = r2, r3
        out r4
        divq r4 = r2, r0
        out r4
        shl r4 = r2, r3
        out r4
        sar r4 = r2, r3
        out r4
        halt
    )");
    ASSERT_EQ(out.size(), 8u);
    EXPECT_EQ(out[0], 10u);
    EXPECT_EQ(out[1], 4u);
    EXPECT_EQ(out[2], 21u);
    EXPECT_EQ(out[3], 2u);
    EXPECT_EQ(out[4], 1u);
    EXPECT_EQ(out[5], 0u);  // divide by zero is defined as 0
    EXPECT_EQ(out[6], 56u);
    EXPECT_EQ(out[7], 0u);
}

TEST(Executor, PredicationNullifies)
{
    auto out = runSource(R"(
        movi r2 = 5
        cmpieq p3 = r2, 5
        cmpieq p4 = r2, 6
        (p3) movi r4 = 111
        (p4) movi r4 = 222
        out r4
        halt
    )");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 111u);
}

TEST(Executor, CallAndReturn)
{
    auto out = runSource(R"(
        .entry main
        main:
            movi r2 = 1
            call r62 = fn
            out r2
            halt
        fn:
            addi r2 = r2, 41
            ret r62
    )");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 42u);
}

TEST(Executor, MemoryAndFpRoundTrip)
{
    auto out = runSource(R"(
        movi r5 = 0x3000
        movi r2 = 3
        i2f f2 = r2
        fst [r5, 0] = f2
        fld f3 = [r5, 0]
        fmul f4 = f3, f3
        f2i r6 = f4
        out r6
        halt
    )");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 9u);
}

TEST(Executor, TrapsOnBadIndirectTarget)
{
    Program p = assembleOrDie(R"(
        movi r5 = 12345
        bri r5
        halt
    )");
    Executor ex(p);
    EXPECT_EQ(ex.run(10), Termination::Trap);
}

TEST(Executor, TrapsOnCorruptedOpcode)
{
    Program p = assembleOrDie("nop\nnop\nhalt\n");
    Executor ex(p);
    // Flip opcode bits until the raw value is invalid.
    std::uint64_t mask = 0xffULL << encoding::opcodeShift;
    ex.setCorruption(1, mask);
    auto term = ex.run(10);
    // Either traps (invalid opcode) or survives if the flip happened
    // to land on a valid one; with full-field inversion of Nop (0)
    // the result is 0xff which is invalid.
    EXPECT_EQ(term, Termination::Trap);
}

TEST(Executor, CorruptionChangesSemantics)
{
    Program p = assembleOrDie(R"(
        movi r2 = 5
        out r2
        halt
    )");
    Executor golden(p);
    ASSERT_EQ(golden.run(100), Termination::Halted);

    Executor faulty(p);
    faulty.setCorruption(0, 1ULL << 0);  // flip imm bit 0: 5 -> 4
    ASSERT_EQ(faulty.run(100), Termination::Halted);
    EXPECT_NE(golden.state().output(), faulty.state().output());
}

TEST(Executor, StepInfoReportsControlFlow)
{
    Program p = assembleOrDie(R"(
        movi r2 = 1
        cmpieq p2 = r2, 1
        (p2) br target
        nop
        target:
        halt
    )");
    Executor ex(p);
    StepInfo si;
    ex.step(&si);
    EXPECT_EQ(si.pc, 0u);
    EXPECT_FALSE(si.taken);
    ex.step(&si);
    ex.step(&si);
    EXPECT_TRUE(si.qpTrue);
    EXPECT_TRUE(si.taken);
    EXPECT_EQ(si.nextPc, 4u);
}

TEST(Executor, MaxStepsStopsLoops)
{
    Program p = assembleOrDie("loop:\n    br loop\n");
    Executor ex(p);
    EXPECT_EQ(ex.run(1000), Termination::MaxSteps);
    EXPECT_EQ(ex.steps(), 1000u);
}

TEST(Executor, DeterministicReplay)
{
    Program p = assembleOrDie(R"(
        movi r2 = 12345
        movi r3 = 1103515245
        movi r4 = 10
        loop:
        mul r2 = r2, r3
        addi r2 = r2, 12345
        out r2
        addi r4 = r4, -1
        cmplt p2 = r0, r4
        (p2) br loop
        halt
    )");
    Executor a(p), b(p);
    EXPECT_EQ(a.run(100000), Termination::Halted);
    EXPECT_EQ(b.run(100000), Termination::Halted);
    EXPECT_EQ(a.state().output(), b.state().output());
    EXPECT_EQ(a.steps(), b.steps());
}
