/**
 * @file
 * Tests for the register-file AVF extension and a second wave of
 * edge-case unit tests across the stack (executor op coverage,
 * assembler corner cases, pipeline corner configurations, harness
 * ownership semantics).
 */

#include <gtest/gtest.h>

#include "avf/regfile_avf.hh"
#include "core/tracked_injection.hh"
#include "cpu/pipeline.hh"
#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "isa/executor.hh"
#include "workloads/random_program.hh"

using namespace ser;

namespace
{

struct Ctx
{
    isa::Program program;
    cpu::SimTrace trace;
    avf::DeadnessResult deadness;
};

Ctx
makeCtx(const std::string &src)
{
    Ctx c;
    c.program = isa::assembleOrDie(src);
    cpu::PipelineParams params;
    params.maxInsts = 2000000;
    cpu::InOrderPipeline pipe(c.program, params);
    c.trace = pipe.run();
    c.trace.program = &c.program;
    c.deadness = avf::analyzeDeadness(c.trace);
    return c;
}

} // namespace

TEST(RegFileAvf, LiveValueChargesAceUntilLastRead)
{
    Ctx c = makeCtx(R"(
        movi r4 = 7
        nop
        nop
        nop
        addi r5 = r4, 1
        out r5
        halt
    )");
    auto rf = avf::computeRegFileAvf(c.trace, c.deadness);
    // r4 is live from its def to the addi's read; r5 from its def
    // to the out.
    EXPECT_GT(rf.intFile.ace, 0u);
    EXPECT_GT(rf.intFile.sdcAvf(), 0.0);
    EXPECT_LT(rf.intFile.sdcAvf(), 0.2);  // 2 regs of 64, short run
}

TEST(RegFileAvf, DeadValuesAreRemovable)
{
    Ctx c = makeCtx(R"(
        movi r4 = 7
        nop
        nop
        nop
        nop
        nop
        movi r4 = 8
        out r4
        halt
    )");
    auto rf = avf::computeRegFileAvf(c.trace, c.deadness);
    EXPECT_GT(rf.intFile.deadValue, 0u);
    EXPECT_GT(rf.intFile.falseDueAvf(), 0.0);
}

TEST(RegFileAvf, ClassesTileTheFile)
{
    Ctx c = makeCtx(R"(
        movi r4 = 1
        movi r5 = 2
        add r6 = r4, r5
        movi r4 = 9
        out r6
        halt
    )");
    auto rf = avf::computeRegFileAvf(c.trace, c.deadness);
    for (const avf::RegFileAvf *f :
         {&rf.intFile, &rf.fpFile, &rf.predFile}) {
        EXPECT_EQ(f->ace + f->exAce + f->deadValue + f->unwritten,
                  f->totalBitCycles);
    }
    // No fp activity at all in this program.
    EXPECT_EQ(rf.fpFile.ace, 0u);
    EXPECT_EQ(rf.fpFile.unwritten, rf.fpFile.totalBitCycles);
}

TEST(RegFileAvf, PredicateFileIsOneBitWide)
{
    Ctx c = makeCtx(R"(
        movi r4 = 1
        cmpieq p2 = r4, 1
        (p2) out r4
        halt
    )");
    auto rf = avf::computeRegFileAvf(c.trace, c.deadness);
    EXPECT_EQ(rf.predFile.bitsPerReg, 1u);
    EXPECT_GT(rf.predFile.ace, 0u);  // p2 read as a qp
}

TEST(RegFileAvf, RandomProgramsTile)
{
    for (std::uint64_t seed : {4u, 17u, 51u}) {
        isa::Program program = workloads::randomProgram(seed);
        cpu::PipelineParams params;
        params.maxInsts = 2000000;
        cpu::InOrderPipeline pipe(program, params);
        cpu::SimTrace trace = pipe.run();
        trace.program = &program;
        auto dead = avf::analyzeDeadness(trace);
        auto rf = avf::computeRegFileAvf(trace, dead);
        for (const avf::RegFileAvf *f :
             {&rf.intFile, &rf.fpFile, &rf.predFile}) {
            EXPECT_EQ(
                f->ace + f->exAce + f->deadValue + f->unwritten,
                f->totalBitCycles)
                << "seed " << seed;
        }
    }
}

// ---------------------------------------------------------------

TEST(Harness, ArtifactsOwnTheirProgram)
{
    harness::RunArtifacts r;
    {
        harness::ExperimentConfig cfg;
        cfg.dynamicTarget = 5000;
        cfg.warmupInsts = 0;
        r = harness::runBenchmark("art", cfg);
    }
    // The trace's program pointer must still be valid (owned).
    ASSERT_NE(r.trace->program, nullptr);
    EXPECT_GT(r.trace->program->size(), 0u);
    auto rf = avf::computeRegFileAvf(*r.trace, *r.deadness);
    EXPECT_GT(rf.intFile.totalBitCycles, 0u);
}

// ---------------------------------------------------------------

namespace
{

std::vector<std::uint64_t>
runSrc(const std::string &src)
{
    isa::Program p = isa::assembleOrDie(src);
    isa::Executor ex(p);
    EXPECT_EQ(ex.run(100000), isa::Termination::Halted);
    return ex.state().output();
}

} // namespace

TEST(ExecutorMore, BitwiseAndShiftImmediates)
{
    auto out = runSrc(R"(
        movi r2 = 0xF0F0
        movi r3 = 0x0FF0
        andc r4 = r2, r3
        out r4
        andi r4 = r2, 0xFF
        out r4
        ori r4 = r2, 0xF
        out r4
        xori r4 = r2, 0xFFFF
        out r4
        shli r4 = r2, 4
        out r4
        shri r4 = r2, 4
        out r4
        cmpltu p2 = r3, r2
        (p2) movi r5 = 1
        out r5
        cmple p3 = r2, r2
        (p3) movi r6 = 2
        out r6
        halt
    )");
    ASSERT_EQ(out.size(), 8u);
    EXPECT_EQ(out[0], 0xF000u);
    EXPECT_EQ(out[1], 0xF0u);
    EXPECT_EQ(out[2], 0xF0FFu);
    EXPECT_EQ(out[3], 0x0F0Fu);
    EXPECT_EQ(out[4], 0xF0F00u);
    EXPECT_EQ(out[5], 0xF0Fu);
    EXPECT_EQ(out[6], 1u);
    EXPECT_EQ(out[7], 2u);
}

TEST(ExecutorMore, FoutAndFpCompare)
{
    auto out = runSrc(R"(
        movi r2 = 2
        i2f f2 = r2
        movi r3 = 3
        i2f f3 = r3
        fcmplt p2 = f2, f3
        (p2) movi r4 = 1
        out r4
        fcmpeq p3 = f2, f2
        (p3) movi r5 = 1
        out r5
        fsub f4 = f3, f2
        fout f4
        halt
    )");
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 1u);
    EXPECT_EQ(out[1], 1u);
    EXPECT_EQ(out[2], std::bit_cast<std::uint64_t>(1.0));
}

TEST(ExecutorMore, PredicatedMemoryOpsAreNullified)
{
    auto out = runSrc(R"(
        movi r5 = 0x5000
        movi r4 = 77
        st8 [r5, 0] = r4
        cmpieq p2 = r4, 0
        (p2) st8 [r5, 0] = r0
        ld8 r6 = [r5, 0]
        out r6
        halt
    )");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 77u);  // the nullified store wrote nothing
}

TEST(ExecutorMore, NegativeImmediatesAndOffsets)
{
    auto out = runSrc(R"(
        movi r2 = -5
        addi r3 = r2, -10
        out r3
        movi r5 = 0x5010
        movi r4 = 42
        st8 [r5, -16] = r4
        ld8 r6 = [r5, -16]
        out r6
        halt
    )");
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(static_cast<std::int64_t>(out[0]), -15);
    EXPECT_EQ(out[1], 42u);
}

TEST(AssemblerMore, EmptyAndLabelOnlyPrograms)
{
    auto empty = isa::assemble("");
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty.program.size(), 0u);

    auto labels = isa::assemble("a:\nb:\n    halt\n");
    ASSERT_TRUE(labels.ok());
    EXPECT_EQ(labels.program.labelIndex("a"), 0u);
    EXPECT_EQ(labels.program.labelIndex("b"), 0u);
}

TEST(AssemblerMore, CommentsEverywhere)
{
    auto r = isa::assemble(R"(
        // leading comment
        # hash comment
        nop // trailing
        halt # trailing hash
    )");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.program.size(), 2u);
}

TEST(AssemblerMore, ImmediateBoundaries)
{
    auto ok = isa::assemble("movi r2 = 2147483647\n"
                            "movi r3 = -2147483648\nhalt\n");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.program.inst(0).imm(), 2147483647);
    auto too_big = isa::assemble("movi r2 = 2147483648\nhalt\n");
    EXPECT_FALSE(too_big.ok());
}

// ---------------------------------------------------------------

TEST(PipelineMore, TinyQueueStillCorrect)
{
    isa::Program program = workloads::randomProgram(99);
    isa::Executor golden(program);
    ASSERT_EQ(golden.run(2000000), isa::Termination::Halted);

    cpu::PipelineParams params;
    params.maxInsts = 2000000;
    params.iqEntries = 8;
    cpu::InOrderPipeline pipe(program, params);
    cpu::SimTrace trace = pipe.run();
    EXPECT_EQ(trace.commits.size(), golden.steps());
    EXPECT_EQ(pipe.archState().output(), golden.state().output());
}

TEST(PipelineMore, NarrowMachineStillCorrect)
{
    isa::Program program = workloads::randomProgram(123);
    isa::Executor golden(program);
    ASSERT_EQ(golden.run(2000000), isa::Termination::Halted);

    cpu::PipelineParams params;
    params.maxInsts = 2000000;
    params.fetchWidth = 1;
    params.issueWidth = 1;
    params.enqueueWidth = 1;
    cpu::InOrderPipeline pipe(program, params);
    cpu::SimTrace trace = pipe.run();
    EXPECT_EQ(trace.commits.size(), golden.steps());
    EXPECT_EQ(pipe.archState().output(), golden.state().output());
    // A 1-wide machine cannot exceed IPC 1.
    EXPECT_LE(trace.ipc(), 1.0);
}

TEST(PipelineMore, MaxInstsTruncatesWithoutHalt)
{
    isa::Program program = isa::assembleOrDie(R"(
        loop:
        addi r2 = r2, 1
        br loop
    )");
    cpu::PipelineParams params;
    params.maxInsts = 5000;
    cpu::InOrderPipeline pipe(program, params);
    cpu::SimTrace trace = pipe.run();
    EXPECT_EQ(trace.commits.size(), 5000u);
    EXPECT_FALSE(trace.programHalted);
}

TEST(PipelineMore, DifferentPredictorsAllWork)
{
    isa::Program program = workloads::randomProgram(7);
    isa::Executor golden(program);
    ASSERT_EQ(golden.run(2000000), isa::Termination::Halted);
    for (const char *kind : {"bimodal", "gshare", "tournament"}) {
        cpu::PipelineParams params;
        params.maxInsts = 2000000;
        params.predictor = kind;
        cpu::InOrderPipeline pipe(program, params);
        cpu::SimTrace trace = pipe.run();
        EXPECT_EQ(pipe.archState().output(),
                  golden.state().output())
            << kind;
    }
}

// ---------------------------------------------------------------

namespace
{

struct InjCtx
{
    isa::Program program;
    cpu::SimTrace trace;
    std::vector<std::uint64_t> golden;
};

InjCtx
makeInjCtx(const std::string &src)
{
    InjCtx c;
    c.program = isa::assembleOrDie(src);
    isa::Executor golden(c.program);
    EXPECT_EQ(golden.run(2000000), isa::Termination::Halted);
    c.golden = golden.state().output();
    cpu::PipelineParams params;
    params.maxInsts = 2000000;
    cpu::InOrderPipeline pipe(c.program, params);
    c.trace = pipe.run();
    c.trace.program = &c.program;
    return c;
}

} // namespace

TEST(EccProtection, CorrectsReadPayloadFaults)
{
    InjCtx c = makeInjCtx("movi r4 = 57\nout r4\nhalt\n");
    faults::FaultInjector inj(c.program, c.trace, c.golden);
    for (const auto &inc : c.trace.incarnations) {
        if (!(inc.flags & cpu::incCommitted))
            continue;
        if (inc.issueCycle <= inc.enqueueCycle)
            continue;
        faults::FaultSite site{inc.iqEntry, 0, inc.enqueueCycle};
        EXPECT_EQ(inj.classify(site, faults::Protection::Ecc).outcome,
                  faults::Outcome::Corrected);
        // Unread strikes need no correction.
        faults::FaultSite late{inc.iqEntry, 0, inc.issueCycle};
        EXPECT_EQ(
            inj.classify(late, faults::Protection::Ecc).outcome,
            faults::Outcome::BenignNotRead);
        return;
    }
    FAIL() << "no committed residency";
}

TEST(TrackedInjection, FalseDueBecomesBenign)
{
    // A dead instruction's imm-field strike: parity flags it, the
    // pi machinery proves it false.
    InjCtx c = makeInjCtx(R"(
        movi r4 = 1
        movi r4 = 2
        out r4
        halt
    )");
    faults::FaultInjector inj(c.program, c.trace, c.golden);
    core::PiMachine machine(c.trace,
                            core::TrackingLevel::PiStoreBuffer);
    for (const auto &inc : c.trace.incarnations) {
        if (inc.staticIdx != 0 || !(inc.flags & cpu::incCommitted))
            continue;
        faults::FaultSite site{inc.iqEntry, 3, inc.enqueueCycle};
        EXPECT_EQ(inj.classify(site, faults::Protection::Parity)
                      .outcome,
                  faults::Outcome::FalseDue);
        EXPECT_EQ(
            core::classifyTracked(inj, c.trace, machine, site)
                .outcome,
            faults::Outcome::BenignNoError);
        return;
    }
    FAIL() << "residency not found";
}

TEST(TrackedInjection, TrueErrorsStillSignalOrSurfaceAsSdc)
{
    InjCtx c = makeInjCtx(R"(
        movi r4 = 57
        addi r5 = r4, 1
        out r5
        halt
    )");
    faults::FaultInjector inj(c.program, c.trace, c.golden);
    core::PiMachine machine(c.trace,
                            core::TrackingLevel::PiStoreBuffer);
    for (const auto &inc : c.trace.incarnations) {
        if (inc.staticIdx != 0 || !(inc.flags & cpu::incCommitted))
            continue;
        // Imm strike on a live movi: true DUE, and the pi chain
        // reaches the out — still signalled under tracking.
        faults::FaultSite site{inc.iqEntry, 0, inc.enqueueCycle};
        auto tracked =
            core::classifyTracked(inj, c.trace, machine, site);
        EXPECT_EQ(tracked.outcome, faults::Outcome::TrueDue);
        return;
    }
    FAIL() << "residency not found";
}

TEST(TrackedInjection, DstFieldStrikePoisonsTheActualTarget)
{
    // r4's def is dead (overwritten unread), so an instruction-
    // granularity pi bit would suppress any strike on it. But a
    // dst-field strike redirects the write onto another register;
    // the pi bit follows the value there, and a reader of that
    // register must still raise the error.
    InjCtx c = makeInjCtx(R"(
        movi r6 = 10
        movi r4 = 1
        movi r4 = 2
        add r7 = r6, r6
        out r7
        out r4
        halt
    )");
    faults::FaultInjector inj(c.program, c.trace, c.golden);
    core::PiMachine machine(c.trace,
                            core::TrackingLevel::PiStoreBuffer);
    for (const auto &inc : c.trace.incarnations) {
        if (inc.staticIdx != 1 || !(inc.flags & cpu::incCommitted))
            continue;
        // Flip dst bit 1: r4 (=0b000100) becomes r6 (=0b000110),
        // clobbering live data.
        auto bit = static_cast<std::uint8_t>(
            isa::encoding::dstShift + 1);
        faults::FaultSite site{inc.iqEntry, bit, inc.enqueueCycle};
        auto base = inj.classify(site, faults::Protection::Parity);
        EXPECT_EQ(base.outcome, faults::Outcome::TrueDue);
        auto tracked =
            core::classifyTracked(inj, c.trace, machine, site);
        // The overridden poison lands on r6, which the add reads:
        // the error is still detected, not silently suppressed.
        EXPECT_EQ(tracked.outcome, faults::Outcome::TrueDue);
        return;
    }
    FAIL() << "residency not found";
}

TEST(TrackedInjection, CampaignNeverSignalsMoreThanParity)
{
    InjCtx c = makeInjCtx(R"(
        movi r2 = 17
        movi r4 = 200
        loop:
        mul r2 = r2, r2
        addi r2 = r2, 13
        movi r5 = 1
        movi r5 = 2
        xor r6 = r6, r2
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r2
        out r6
        halt
    )");
    faults::FaultInjector inj(c.program, c.trace, c.golden);
    core::PiMachine machine(c.trace,
                            core::TrackingLevel::PiMemory);
    faults::CampaignConfig cfg;
    cfg.samples = 300;
    cfg.protection = faults::Protection::Parity;
    auto parity = faults::runCampaign(inj, c.trace, cfg);
    auto tracked =
        core::runTrackedCampaign(inj, c.trace, machine, cfg);
    auto due = [](const faults::CampaignResult &r) {
        return r.count(faults::Outcome::FalseDue) +
               r.count(faults::Outcome::TrueDue);
    };
    EXPECT_LE(due(tracked), due(parity));
    EXPECT_LT(tracked.count(faults::Outcome::FalseDue),
              parity.count(faults::Outcome::FalseDue));
}
