/**
 * @file
 * Tests for the statistical campaign engine: counter-keyed sampling
 * (shard invariance), window-edge sampling, checkpoint/fork verdict
 * equivalence against full re-execution, register-file
 * classification, run-cache key completeness, Wilson edge cases, and
 * the measured-vs-analytical coverage property on real workload
 * surrogates.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "cpu/pipeline.hh"
#include "faults/campaign.hh"
#include "faults/campaign_engine.hh"
#include "faults/fork_server.hh"
#include "faults/injector.hh"
#include "harness/experiment.hh"
#include "harness/run_cache.hh"
#include "isa/assembler.hh"
#include "isa/executor.hh"
#include "sim/rng.hh"

using namespace ser;
using namespace ser::faults;

namespace
{

struct EngineRun
{
    isa::Program program;
    cpu::SimTrace trace;
    avf::DeadnessResult deadness;
    avf::AvfResult avf;
    std::vector<std::uint64_t> golden;
};

EngineRun
makeRun(const std::string &src)
{
    EngineRun r;
    r.program = isa::assembleOrDie(src);
    isa::Executor golden(r.program);
    EXPECT_EQ(golden.run(3000000), isa::Termination::Halted);
    r.golden = golden.state().output();

    cpu::PipelineParams params;
    params.maxInsts = 3000000;
    cpu::InOrderPipeline pipe(r.program, params);
    r.trace = pipe.run();
    r.trace.program = &r.program;
    r.deadness = avf::analyzeDeadness(r.trace);
    r.avf = avf::computeAvf(r.trace, r.deadness);
    return r;
}

const char *kLoopSrc = R"(
    movi r2 = 17
    movi r4 = 200
    loop:
    mul r2 = r2, r2
    addi r2 = r2, 13
    xor r6 = r6, r2
    movi r5 = 1
    movi r5 = 2
    addi r4 = r4, -1
    cmplt p3 = r0, r4
    (p3) br loop
    out r2
    out r6
    halt
)";

bool
sameOutcome(const CampaignOutcome &a, const CampaignOutcome &b)
{
    if (a.samplesRun != b.samplesRun ||
        a.earlyStopped != b.earlyStopped || a.reruns != b.reruns ||
        a.rerunSteps != b.rerunSteps ||
        a.structures.size() != b.structures.size())
        return false;
    for (std::size_t i = 0; i < a.structures.size(); ++i) {
        if (a.structures[i].tally.counts !=
                b.structures[i].tally.counts ||
            a.structures[i].tally.samples !=
                b.structures[i].tally.samples)
            return false;
    }
    if (a.rootCauses.size() != b.rootCauses.size())
        return false;
    for (std::size_t i = 0; i < a.rootCauses.size(); ++i)
        if (a.rootCauses[i].staticIdx != b.rootCauses[i].staticIdx ||
            a.rootCauses[i].sdcInjections !=
                b.rootCauses[i].sdcInjections)
            return false;
    return true;
}

} // namespace

TEST(KeyedRng, IndependentOfDrawHistory)
{
    // Sample i's stream must depend only on (seed, i): however many
    // values an earlier sample drew, sample i starts identically.
    Rng a = Rng::keyed(123, 7);
    Rng warm = Rng::keyed(123, 6);
    for (int i = 0; i < 100; ++i)
        warm.next();  // unrelated draws on another key
    Rng b = Rng::keyed(123, 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());

    // Adjacent indices and different seeds give distinct streams.
    EXPECT_NE(Rng::keyed(123, 7).next(), Rng::keyed(123, 8).next());
    EXPECT_NE(Rng::keyed(123, 7).next(), Rng::keyed(124, 7).next());
}

TEST(SampleWindowCycle, DegenerateAndBounds)
{
    Rng rng(42);
    // Empty and reversed windows pin to start instead of panicking
    // on Rng::range(0).
    EXPECT_EQ(sampleWindowCycle(rng, 100, 100), 100u);
    EXPECT_EQ(sampleWindowCycle(rng, 100, 50), 100u);

    // Half-open [start, end): end-1 must be reachable, end never.
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t c = sampleWindowCycle(rng, 10, 14);
        EXPECT_GE(c, 10u);
        EXPECT_LT(c, 14u);
        seen.insert(c);
    }
    EXPECT_EQ(seen.size(), 4u) << "all four cycles sampleable";
    EXPECT_TRUE(seen.count(13)) << "last occupied cycle sampleable";
}

TEST(ForkServer, VerdictMatchesFullRerun)
{
    EngineRun r = makeRun(kLoopSrc);
    ForkServer fork(r.program, 0, 8);

    // Two injectors over the same trace: one re-runs through the
    // fork server, the other replays from scratch. Every classified
    // site must agree exactly.
    FaultInjector forked(r.program, r.trace, r.golden);
    forked.attachForkServer(&fork);
    FaultInjector full(r.program, r.trace, r.golden);

    int reran = 0;
    for (std::uint64_t i = 0; i < 400; ++i) {
        Rng rng = Rng::keyed(0xF0, i);
        FaultSite site;
        site.entry =
            static_cast<std::uint16_t>(rng.range(r.trace.iqEntries));
        site.bit =
            static_cast<std::uint8_t>(rng.range(payloadBits));
        site.cycle = sampleWindowCycle(rng, r.trace.startCycle,
                                       r.trace.endCycle);
        FaultResult a = forked.classify(site, Protection::None);
        FaultResult b = full.classify(site, Protection::None);
        ASSERT_EQ(a.outcome, b.outcome)
            << "entry " << site.entry << " bit " << int(site.bit)
            << " cycle " << site.cycle;
        EXPECT_EQ(a.reRan, b.reRan);
        if (a.reRan) {
            ++reran;
            // The fork pays at most the full suffix; usually less.
            EXPECT_LE(a.rerunSteps, b.rerunSteps);
        }
    }
    EXPECT_GT(reran, 0) << "sites never exercised the re-run path";
}

TEST(CampaignEngine, ShardInvariantAcrossJobs)
{
    EngineRun r = makeRun(kLoopSrc);
    CampaignSpec spec;
    spec.samples = 1500;
    spec.structures = structIq | structRegFile;
    spec.batchSamples = 256;
    spec.rootCauseTopN = 5;

    spec.jobs = 1;
    CampaignOutcome j1 = runCampaignEngine(r.program, r.trace,
                                           r.deadness, r.avf, spec);
    spec.jobs = 4;
    CampaignOutcome j4 = runCampaignEngine(r.program, r.trace,
                                           r.deadness, r.avf, spec);
    EXPECT_TRUE(sameOutcome(j1, j4))
        << "campaign tallies differ between 1 and 4 worker threads";
    EXPECT_EQ(j1.summary(), j4.summary());
}

TEST(CampaignEngine, CountsSumAndEarlyStop)
{
    EngineRun r = makeRun(kLoopSrc);
    CampaignSpec spec;
    spec.samples = 100000;
    spec.structures = structIq;
    spec.batchSamples = 512;
    spec.ciTarget = 0.05;  // loose: stops after a few batches
    CampaignOutcome out = runCampaignEngine(r.program, r.trace,
                                            r.deadness, r.avf, spec);
    EXPECT_TRUE(out.earlyStopped);
    EXPECT_LT(out.samplesRun, spec.samples);
    EXPECT_LE(out.ciHalfWidth, spec.ciTarget);
    ASSERT_EQ(out.structures.size(), 1u);
    std::uint64_t sum = 0;
    for (auto c : out.structures[0].tally.counts)
        sum += c;
    EXPECT_EQ(sum, out.samplesRun);
}

TEST(CampaignEngine, RegfileClassification)
{
    // r2 is written, read much later, then output: its live windows
    // make int-regfile strikes produce SDC under no protection and
    // detected DUE under parity; ECC corrects everything.
    EngineRun r = makeRun(kLoopSrc);
    CampaignSpec spec;
    spec.samples = 1200;
    spec.structures = structIntReg;

    spec.protection = Protection::None;
    CampaignOutcome none = runCampaignEngine(
        r.program, r.trace, r.deadness, r.avf, spec);
    ASSERT_EQ(none.structures.size(), 1u);
    const StructureCampaign &n = none.structures[0];
    EXPECT_EQ(n.structure, Structure::IntRegFile);
    EXPECT_GT(n.tally.count(Outcome::Sdc), 0u);
    EXPECT_EQ(n.tally.count(Outcome::TrueDue), 0u);
    EXPECT_EQ(n.tally.count(Outcome::FalseDue), 0u);
    EXPECT_EQ(n.tally.count(Outcome::Corrected), 0u);

    spec.protection = Protection::Parity;
    CampaignOutcome par = runCampaignEngine(
        r.program, r.trace, r.deadness, r.avf, spec);
    const StructureCampaign &p = par.structures[0];
    EXPECT_EQ(p.tally.count(Outcome::Sdc), 0u);
    EXPECT_GT(p.tally.count(Outcome::TrueDue), 0u);
    // Same sites, same reads: parity converts every unprotected SDC
    // into a detected event.
    EXPECT_EQ(p.tally.count(Outcome::TrueDue) +
                  p.tally.count(Outcome::FalseDue),
              n.tally.count(Outcome::Sdc) +
                  n.tally.count(Outcome::BenignNoError));

    spec.protection = Protection::Ecc;
    CampaignOutcome ecc = runCampaignEngine(
        r.program, r.trace, r.deadness, r.avf, spec);
    const StructureCampaign &e = ecc.structures[0];
    EXPECT_EQ(e.tally.count(Outcome::Sdc), 0u);
    EXPECT_EQ(e.tally.count(Outcome::TrueDue), 0u);
    EXPECT_EQ(e.tally.count(Outcome::FalseDue), 0u);
    EXPECT_GT(e.tally.count(Outcome::Corrected), 0u);
}

TEST(RunCacheKeys, CampaignKnobsNeverShareEntries)
{
    const std::string sim_key = "simkey";
    CampaignSpec base;
    base.samples = 1000;

    std::set<std::string> keys;
    keys.insert(harness::RunCache::campaignKey(sim_key, base));

    // Every semantic knob must move the key.
    CampaignSpec s = base;
    s.samples = 2000;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    s = base;
    s.seed = 99;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    s = base;
    s.protection = Protection::Parity;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    s = base;
    s.payloadOnly = false;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    s = base;
    s.structures = structRegFile;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    s = base;
    s.ciTarget = 0.01;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    s = base;
    s.batchSamples = 128;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    s = base;
    s.checkpoints = 7;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    s = base;
    s.rootCauseTopN = 3;
    keys.insert(harness::RunCache::campaignKey(sim_key, s));
    EXPECT_EQ(keys.size(), 10u)
        << "two specs differing in a semantic knob shared a key";

    // Non-semantic knobs (sharding, progress callbacks) must NOT:
    // a 4-thread campaign is byte-identical to a serial one and the
    // cache may share them.
    s = base;
    s.jobs = 8;
    s.onBatch = [](std::uint64_t, std::uint64_t) {};
    EXPECT_EQ(harness::RunCache::campaignKey(sim_key, s),
              harness::RunCache::campaignKey(sim_key, base));
}

TEST(RunCacheKeys, CampaignRidesSimKeyButSimIsShared)
{
    // Two experiment configs differing only in campaign knobs have
    // the same sim key (the whole point: one simulation feeds many
    // campaigns) but different campaign keys.
    isa::Program program = isa::assembleOrDie(
        "movi r4 = 1\nout r4\nhalt\n");
    harness::ExperimentConfig a;
    harness::ExperimentConfig b;
    b.campaign.samples = 500;
    b.campaign.protection = Protection::Parity;
    std::string sim_a =
        harness::RunCache::simKey(program, a, a.pipeline);
    std::string sim_b =
        harness::RunCache::simKey(program, b, b.pipeline);
    EXPECT_EQ(sim_a, sim_b);
    EXPECT_NE(
        harness::RunCache::campaignKey(sim_a, a.campaign),
        harness::RunCache::campaignKey(sim_b, b.campaign));
}

TEST(Wilson, EdgeCases)
{
    // n = 0: no information, the whole unit interval.
    Interval i = wilson(0, 0);
    EXPECT_DOUBLE_EQ(i.lo, 0.0);
    EXPECT_DOUBLE_EQ(i.hi, 1.0);

    // k = 0: the lower bound is exactly 0 (not a rounding residue),
    // so a zero-count CI covers an exact [0, 0] analytical band.
    i = wilson(0, 500);
    EXPECT_EQ(i.lo, 0.0);
    EXPECT_GT(i.hi, 0.0);
    EXPECT_LT(i.hi, 0.02);

    // k = n: symmetric at the top.
    i = wilson(500, 500);
    EXPECT_EQ(i.hi, 1.0);
    EXPECT_LT(i.lo, 1.0);
    EXPECT_GT(i.lo, 0.98);

    // Interior intervals stay within [0, 1] and shrink with n.
    Interval wide = wilson(5, 10);
    Interval narrow = wilson(500, 1000);
    EXPECT_GE(wide.lo, 0.0);
    EXPECT_LE(wide.hi, 1.0);
    EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(CampaignProperty, ExhaustiveDueEqualsAnalyticalExactly)
{
    // The unbiasedness claim behind the parity DUE reconciliation,
    // checked without sampling noise: enumerating *every* (entry,
    // cycle) site in the window, the fraction the injector would
    // classify as a detected event (occupied, issued, pre-read)
    // must equal the analytical DUE AVF exactly — both sides count
    // precisely the pre-read occupied payload bit-cycles.
    EngineRun r = makeRun(kLoopSrc);
    ResidencyIndex index(r.trace);
    std::uint64_t pre = 0, total = 0;
    for (std::uint64_t c = r.trace.startCycle;
         c < r.trace.endCycle; ++c) {
        for (std::uint16_t e = 0; e < r.trace.iqEntries; ++e) {
            ++total;
            const std::int64_t rec = index.find(e, c);
            if (rec != ResidencyIndex::noIncarnation) {
                const std::uint32_t issue =
                    r.trace.incarnations
                        .issueCycle[static_cast<std::size_t>(rec)];
                if (issue != cpu::noCycle32 && c < issue)
                    ++pre;
            }
        }
    }
    double exhaustive =
        static_cast<double>(pre) / static_cast<double>(total);
    EXPECT_NEAR(exhaustive, r.avf.dueAvf(), 1e-12)
        << "injector-induced DUE probability drifted from the "
        << "analytical fold";
}

TEST(CampaignProperty, MeasuredCoversAnalyticalOnSurrogates)
{
    // The acceptance property, on three behaviourally distinct
    // workload surrogates: the measured payload-bit SDC rate's 95%
    // CI must cover the analytical SDC band (ACE conservatism:
    // measured <= field-refined ACE), and the measured DUE rate
    // under parity must cover the fold's DUE AVF point. Also pins
    // the checkpoint/fork economics: the mean forked re-run costs
    // under half a full golden replay.
    for (const char *bench : {"gzip", "mcf", "swim"}) {
        harness::ExperimentConfig cfg;
        cfg.dynamicTarget = 8000;
        cfg.warmupInsts = 500;
        cfg.campaign.samples = 2500;
        cfg.campaign.structures = structIq;

        for (auto prot : {Protection::None, Protection::Parity}) {
            cfg.campaign.protection = prot;
            harness::RunArtifacts run =
                harness::runBenchmark(bench, cfg);
            ASSERT_TRUE(run.campaign) << bench;
            const CampaignOutcome &c = *run.campaign;
            ASSERT_EQ(c.structures.size(), 1u);
            const StructureCampaign &s = c.structures[0];
            EXPECT_TRUE(s.sdcCovered)
                << bench << "/" << protectionName(prot) << ": SDC "
                << s.sdcRate() << " CI [" << s.sdcCi.lo << ", "
                << s.sdcCi.hi << "] vs [" << s.analyticalSdcLower
                << ", " << s.analyticalSdc << "]";
            // The parity DUE band is an exact point, so a fixed-seed
            // 95% CI misses it for ~5% of (bench, seed) pairs by
            // construction. The exactness itself is pinned by the
            // exhaustive test above; here allow 4 standard errors
            // (~99.99%) so the deterministic draw cannot fail on an
            // honest 2-sigma excursion.
            if (s.analyticalDueLower == s.analyticalDue) {
                double p = s.analyticalDue;
                double se = std::sqrt(
                    p * (1.0 - p) /
                    static_cast<double>(s.tally.samples));
                EXPECT_NEAR(s.dueRate(), p, 4.0 * se + 1e-9)
                    << bench << "/" << protectionName(prot);
            } else {
                EXPECT_TRUE(s.dueCovered)
                    << bench << "/" << protectionName(prot)
                    << ": DUE " << s.dueRate() << " CI ["
                    << s.dueCi.lo << ", " << s.dueCi.hi << "] vs ["
                    << s.analyticalDueLower << ", "
                    << s.analyticalDue << "]";
            }
            if (prot == Protection::None) {
                // Nontrivial on both sides: the surrogate must have
                // real ACE payload, and injection must find it.
                EXPECT_GT(s.sdcRate(), 0.0) << bench;
                EXPECT_GT(s.analyticalSdc, 0.0) << bench;
            } else {
                EXPECT_GT(s.dueRate(), 0.0) << bench;
            }
            if (c.reruns) {
                EXPECT_LT(c.meanRerunFraction(), 0.5)
                    << bench << ": forking must beat half a full "
                    << "golden replay per injection";
            }
        }
    }
}
