/**
 * @file
 * Tests for the instruction-lifetime trace export and the per-PC AVF
 * attribution: the Chrome trace-event writer (valid JSON via the
 * in-tree parser, matched B/E pairs, per-track monotonic timestamps,
 * fragment merging), and the attribution fold — both on a hand-built
 * trace with known answers and against the AVF fold's totals on a
 * real pipeline run.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "avf/attribution.hh"
#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "cpu/pipeline.hh"
#include "isa/assembler.hh"
#include "sim/json.hh"
#include "sim/trace_event.hh"

using namespace ser;
using json::JsonValue;

namespace
{

/** Parse a merged trace document and return the traceEvents array. */
JsonValue
parseTrace(const std::vector<std::string> &fragments)
{
    std::ostringstream os;
    trace::writeChromeTrace(os, fragments);
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(json::parseJson(os.str(), &doc, &err)) << err;
    EXPECT_TRUE(doc.isObject());
    const JsonValue *events = doc.find("traceEvents");
    EXPECT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    return *events;
}

/** Run a program on the pipeline and analyze deadness. */
struct Analyzed
{
    isa::Program program;
    cpu::SimTrace trace;
    avf::DeadnessResult deadness;
};

Analyzed
analyze(const std::string &src)
{
    Analyzed a;
    a.program = isa::assembleOrDie(src);
    cpu::PipelineParams params;
    params.maxInsts = 1000000;
    cpu::InOrderPipeline pipe(a.program, params);
    a.trace = pipe.run();
    a.trace.program = &a.program;
    a.deadness = avf::analyzeDeadness(a.trace);
    return a;
}

} // namespace

TEST(TraceWriter, EmitsValidChromeTraceJson)
{
    trace::TraceWriter tw(3);
    tw.processName("gzip");
    tw.threadName(trace::tracks::pipeline, "pipeline events");
    tw.begin(16, "add r1 = r2, r3", 10,
             {{"seq", std::uint64_t{7}}, {"wrong_path", false}});
    tw.instant(trace::tracks::pipeline, "trigger_fire", 12,
               {{"level", std::int64_t{1}}});
    tw.counter("iq_occupancy", 12,
               {{"valid", std::uint64_t{5}},
                {"waiting", std::uint64_t{2}}});
    tw.end(16, 20);
    EXPECT_TRUE(tw.balanced());

    JsonValue events = parseTrace({tw.str()});
    ASSERT_EQ(events.array.size(), 6u);  // 2 M + B + i + C + E
    int begins = 0, ends = 0;
    for (const JsonValue &e : events.array) {
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        const JsonValue *pid = e.find("pid");
        ASSERT_NE(pid, nullptr);
        EXPECT_DOUBLE_EQ(pid->number, 3.0);
        if (ph->string == "B")
            ++begins;
        if (ph->string == "E")
            ++ends;
        if (ph->string == "C") {
            EXPECT_DOUBLE_EQ(e.find("tid")->number, 0.0);
        }
        if (ph->string == "i") {
            EXPECT_EQ(e.find("s")->string, "t");
        }
    }
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(ends, 1);
}

TEST(TraceWriter, MergesFragmentsInOrderAndSkipsEmpty)
{
    trace::TraceWriter a(1), b(2);
    a.instant(1, "one", 5);
    b.instant(1, "two", 3);

    JsonValue events = parseTrace({a.str(), std::string(), b.str()});
    ASSERT_EQ(events.array.size(), 2u);
    EXPECT_DOUBLE_EQ(events.array[0].find("pid")->number, 1.0);
    EXPECT_DOUBLE_EQ(events.array[1].find("pid")->number, 2.0);
}

TEST(TraceWriter, EscapesStringsInNamesAndArgs)
{
    trace::TraceWriter tw;
    tw.instant(1, "ld r1 = [r2 + \"8\"]\\n", 1,
               {{"outcome", "commit \"quoted\""}});
    JsonValue events = parseTrace({tw.str()});
    ASSERT_EQ(events.array.size(), 1u);
    EXPECT_EQ(events.array[0].find("name")->string,
              "ld r1 = [r2 + \"8\"]\\n");
    EXPECT_EQ(events.array[0].find("args")->find("outcome")->string,
              "commit \"quoted\"");
}

TEST(TraceWriter, BalancedReportsOpenSlices)
{
    trace::TraceWriter tw;
    tw.begin(2, "fetch_throttle", 4);
    EXPECT_FALSE(tw.balanced());
    tw.end(2, 9);
    EXPECT_TRUE(tw.balanced());
    // Nesting on one track balances too (slices close inner-first).
    tw.begin(3, "outer", 10);
    tw.begin(3, "inner", 11);
    tw.end(3, 12);
    EXPECT_FALSE(tw.balanced());
    tw.end(3, 13);
    EXPECT_TRUE(tw.balanced());
}

TEST(TraceWriterDeath, EndWithoutBeginPanics)
{
    EXPECT_DEATH(
        {
            trace::TraceWriter tw;
            tw.end(1, 5);
        },
        "no open slice");
}

TEST(TraceWriterDeath, TimeMovingBackwardsPanics)
{
    EXPECT_DEATH(
        {
            trace::TraceWriter tw;
            tw.instant(1, "late", 10);
            tw.instant(1, "early", 9);
        },
        "before track");
}

TEST(Attribution, FoldOnHandBuiltTrace)
{
    // Two static instructions; three residencies built by hand so
    // every cycle count is known: pc0 commits twice (issued), pc1 is
    // squashed before issue.
    isa::Program program = isa::assembleOrDie(R"(
        add r1 = r2, r3
        halt
    )");
    cpu::SimTrace trace;
    trace.program = &program;
    trace.startCycle = 0;
    trace.endCycle = 100;
    trace.iqEntries = 4;
    trace.committedInsts = 2;
    trace.commits.push_back({0, true, 0});
    trace.commits.push_back({0, true, 0});

    cpu::IncarnationRecord inc{};
    inc.staticIdx = 0;
    inc.oracleSeq = 0;
    inc.enqueueCycle = 10;
    inc.issueCycle = 14;
    inc.evictCycle = 20;  // pre 4, post 6
    inc.iqEntry = 0;
    inc.flags = cpu::incCommitted;
    trace.incarnations.push_back(inc);
    inc.oracleSeq = 1;
    inc.enqueueCycle = 30;
    inc.issueCycle = 31;
    inc.evictCycle = 40;  // pre 1, post 9
    trace.incarnations.push_back(inc);
    inc.staticIdx = 1;
    inc.oracleSeq = cpu::noSeq32;
    inc.enqueueCycle = 50;
    inc.issueCycle = cpu::noCycle32;
    inc.evictCycle = 55;  // never issued: 5 squashed cycles
    inc.flags = cpu::incSquashMispredict;
    trace.incarnations.push_back(inc);

    avf::DeadnessResult deadness;
    deadness.kind = {avf::DeadKind::Live, avf::DeadKind::Live};
    deadness.overwriteDist = {avf::noOverwrite, avf::noOverwrite};
    deadness.returnFdd = {false, false};
    deadness.numInsts = 2;

    avf::AttributionResult attr =
        avf::attributeAvf(trace, deadness);
    ASSERT_EQ(attr.pcs.size(), 2u);
    // pc0 carries all the ACE bit-cycles, so it sorts first.
    EXPECT_EQ(attr.pcs[0].staticIdx, 0u);
    EXPECT_EQ(attr.pcs[0].incarnations, 2u);
    EXPECT_EQ(attr.pcs[0].committedIncs, 2u);
    EXPECT_EQ(attr.pcs[0].residencyCycles, 20u);
    EXPECT_GT(attr.pcs[0].ace, 0u);
    EXPECT_EQ(attr.pcs[1].staticIdx, 1u);
    EXPECT_EQ(attr.pcs[1].ace, 0u);
    EXPECT_EQ(attr.pcs[1].residencyCycles, 5u);
    EXPECT_GT(attr.pcs[1].squashedUnread, 0u);

    EXPECT_EQ(attr.totalAce, attr.pcs[0].ace);
    EXPECT_DOUBLE_EQ(attr.aceShare(attr.pcs[0]), 1.0);
    EXPECT_EQ(attr.totalIncarnations, 3u);
    EXPECT_EQ(attr.totalResidencyCycles, 25u);
    EXPECT_EQ(attr.lifetime.count, 3u);
    // Only issued residencies contribute read-phase samples.
    EXPECT_EQ(attr.preRead.count, 2u);
    EXPECT_EQ(attr.postRead.count, 2u);

    // The fold and the AVF fold classify identically, so the totals
    // agree exactly even on this synthetic trace.
    avf::AvfResult avf = avf::computeAvf(trace, deadness);
    EXPECT_EQ(attr.totalAce, avf.ace);
    EXPECT_EQ(attr.totalExAce, avf.exAce);
    EXPECT_EQ(attr.totalSquashedUnread, avf.squashedUnread);
    EXPECT_EQ(attr.totalUnAceRead, avf.unAceReadTotal());
}

TEST(Attribution, TotalsMatchAvfFoldOnRealRun)
{
    Analyzed a = analyze(R"(
        movi r10 = 200
        movi r1 = 0
    loop:
        add r1 = r1, r10
        shli r2 = r1, 1
        addi r10 = r10, -1
        movi r3 = 77       # dead: overwritten before any read
        movi r3 = 1
        cmplt p1 = r0, r10
        (p1) br loop
        halt
    )");
    avf::AvfResult avf = avf::computeAvf(a.trace, a.deadness);
    avf::AttributionResult attr =
        avf::attributeAvf(a.trace, a.deadness);

    // Per-PC attribution is a partition of the AVF fold's totals.
    EXPECT_EQ(attr.totalAce, avf.ace);
    EXPECT_EQ(attr.totalExAce, avf.exAce);
    EXPECT_EQ(attr.totalSquashedUnread, avf.squashedUnread);
    EXPECT_EQ(attr.totalUnAceRead, avf.unAceReadTotal());
    EXPECT_GT(attr.totalAce, 0u);

    // Sorted descending by ACE, shares sum to 1.
    double share_sum = 0.0;
    std::uint64_t prev = ~std::uint64_t{0};
    for (const avf::PcAttribution &pc : attr.pcs) {
        EXPECT_LE(pc.ace, prev);
        prev = pc.ace;
        share_sum += attr.aceShare(pc);
    }
    EXPECT_NEAR(share_sum, 1.0, 1e-9);

    // The hotspot table renders every requested row.
    std::ostringstream os;
    avf::printHotspots(os, attr, a.program, 5);
    EXPECT_NE(os.str().find("#"), std::string::npos);
    EXPECT_NE(os.str().find("p99"), std::string::npos);
    std::ostringstream csv;
    avf::writeHotspotCsv(csv, attr, a.program, 5);
    EXPECT_NE(csv.str().find("rank,pc,static_idx"),
              std::string::npos);
}
