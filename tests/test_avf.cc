/**
 * @file
 * Tests for the AVF machinery: the deadness (dynamically-dead)
 * analysis on hand-written cases, the per-bit AVF fold on synthetic
 * traces with hand-computed expectations, the MITF math (including
 * the paper's own worked example), and the range-min utility.
 */

#include <gtest/gtest.h>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "avf/mitf.hh"
#include "avf/range_min.hh"
#include "cpu/pipeline.hh"
#include "isa/assembler.hh"
#include "sim/rng.hh"

using namespace ser;
using namespace ser::avf;

namespace
{

/** Run a program on the pipeline and analyze deadness. */
struct Analyzed
{
    isa::Program program;
    cpu::SimTrace trace;
    DeadnessResult deadness;
};

Analyzed
analyze(const std::string &src)
{
    Analyzed a;
    a.program = isa::assembleOrDie(src);
    cpu::PipelineParams params;
    params.maxInsts = 1000000;
    cpu::InOrderPipeline pipe(a.program, params);
    a.trace = pipe.run();
    a.trace.program = &a.program;
    a.deadness = analyzeDeadness(a.trace);
    return a;
}

/** Find the commit indices of a given static instruction index. */
std::vector<std::size_t>
commitsOf(const cpu::SimTrace &trace, std::size_t static_idx)
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < trace.commits.size(); ++i)
        if (trace.commits[i].staticIdx == static_idx)
            out.push_back(i);
    return out;
}

} // namespace

TEST(Deadness, FddRegOverwrittenBeforeRead)
{
    // inst 0 writes r4, inst 1 overwrites it unread.
    auto a = analyze(R"(
        movi r4 = 1
        movi r4 = 2
        out r4
        halt
    )");
    auto idx = commitsOf(a.trace, 0);
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(a.deadness.kind[idx[0]], DeadKind::FddReg);
    EXPECT_EQ(a.deadness.overwriteDist[idx[0]], 1u);
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 1)[0]],
              DeadKind::Live);
    EXPECT_EQ(a.deadness.numFddReg, 1u);
}

TEST(Deadness, TddRegChain)
{
    // r4's only reader is the def of r5, which is itself dead.
    auto a = analyze(R"(
        movi r4 = 1
        addi r5 = r4, 1
        movi r5 = 7
        out r5
        halt
    )");
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 0)[0]],
              DeadKind::TddReg);
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 1)[0]],
              DeadKind::FddReg);
}

TEST(Deadness, DeadAtProgramEndIsFddWhenHalted)
{
    auto a = analyze(R"(
        movi r4 = 1
        out r0
        halt
    )");
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 0)[0]],
              DeadKind::FddReg);
    EXPECT_EQ(a.deadness.overwriteDist[commitsOf(a.trace, 0)[0]],
              noOverwrite);
}

TEST(Deadness, FddMemStoreOverwritten)
{
    auto a = analyze(R"(
        movi r5 = 0x4000
        movi r4 = 1
        st8 [r5, 0] = r4
        movi r6 = 2
        st8 [r5, 0] = r6
        ld8 r7 = [r5, 0]
        out r7
        halt
    )");
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 2)[0]],
              DeadKind::FddMem);
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 4)[0]],
              DeadKind::Live);
}

TEST(Deadness, RegDefFeedingDeadStoreIsTddMem)
{
    // r4 is read only by a store whose word is overwritten unread:
    // dead, but only provably so with memory tracking.
    auto a = analyze(R"(
        movi r5 = 0x4000
        movi r4 = 123
        st8 [r5, 0] = r4
        st8 [r5, 0] = r0
        ld8 r7 = [r5, 0]
        out r7
        halt
    )");
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 1)[0]],
              DeadKind::TddMem);
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 2)[0]],
              DeadKind::FddMem);
}

TEST(Deadness, QualifyingPredicateReadsKeepCompareLive)
{
    // p2's only "reader" is the qp of a nullified instruction; the
    // conservative rule keeps the compare live.
    auto a = analyze(R"(
        movi r4 = 5
        cmpieq p2 = r4, 99
        (p2) addi r6 = r6, 1
        out r6
        halt
    )");
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 1)[0]],
              DeadKind::Live);
}

TEST(Deadness, StoreAddressIsALiveUse)
{
    // r5 feeds only a store's address; even though the store's data
    // ends up dead, the address must stay correct, so r5's def is
    // live.
    auto a = analyze(R"(
        movi r5 = 0x4000
        movi r4 = 1
        st8 [r5, 0] = r4
        st8 [r0, 0x4000] = r0
        halt
    )");
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 0)[0]],
              DeadKind::Live);
}

TEST(Deadness, ReturnFddDetected)
{
    // fn writes r20 and never reads it; the overwrite happens on the
    // *next call*, after the frame exited: a return-established FDD.
    auto a = analyze(R"(
        .entry main
        main:
            movi r4 = 3
        again:
            call r62 = fn
            addi r4 = r4, -1
            cmplt p2 = r0, r4
            (p2) br again
            out r7
            halt
        fn:
            addi r7 = r7, 1
            add r20 = r7, r4
            ret r62
    )");
    EXPECT_GE(a.deadness.numReturnFdd, 2u);
    // The r20 writes are FDD via registers.
    std::size_t fn_add = a.program.labelIndex("fn") + 1;
    auto idx = commitsOf(a.trace, fn_add);
    ASSERT_GE(idx.size(), 2u);
    EXPECT_EQ(a.deadness.kind[idx[0]], DeadKind::FddReg);
    EXPECT_TRUE(a.deadness.returnFdd[idx[0]]);
}

TEST(Deadness, NeutralInstructionsAreNotDefs)
{
    auto a = analyze(R"(
        movi r5 = 0x4000
        prefetch [r5, 0]
        nop
        hint
        out r5
        halt
    )");
    EXPECT_EQ(a.deadness.numDead(), 0u);
    EXPECT_EQ(a.deadness.numDefs, 1u);  // only the movi
}

TEST(Deadness, TruncatedTraceIsConservative)
{
    // No halt within the instruction budget: tail defs without a
    // subsequent overwrite must be treated as live.
    isa::Program program = isa::assembleOrDie(R"(
        loop:
        movi r4 = 1
        addi r5 = r5, 1
        br loop
    )");
    cpu::PipelineParams params;
    params.maxInsts = 3000;
    cpu::InOrderPipeline pipe(program, params);
    cpu::SimTrace trace = pipe.run();
    trace.program = &program;
    EXPECT_FALSE(trace.programHalted);
    DeadnessResult d = analyzeDeadness(trace);
    // Every movi r4 except (possibly) the last is FDD; the last has
    // no overwrite in the truncated trace and must be Live.
    auto idx = commitsOf(trace, 0);
    ASSERT_GT(idx.size(), 2u);
    EXPECT_EQ(d.kind[idx.front()], DeadKind::FddReg);
    EXPECT_EQ(d.kind[idx.back()], DeadKind::Live);
}

TEST(Deadness, WritesToHardwiredRegistersAreDead)
{
    auto a = analyze(R"(
        movi r2 = 5
        add r0 = r2, r2
        out r2
        halt
    )");
    EXPECT_EQ(a.deadness.kind[commitsOf(a.trace, 1)[0]],
              DeadKind::FddReg);
}

// ---------------------------------------------------------------

TEST(Avf, SyntheticTraceHandComputed)
{
    // One committed ACE instruction resident [10, 20) read at 20,
    // evicted at 24, in a 2-entry queue over 100 cycles.
    isa::Program program = isa::assembleOrDie("add r4 = r5, r6\n");
    cpu::SimTrace trace;
    trace.program = &program;
    trace.iqEntries = 2;
    trace.startCycle = 0;
    trace.endCycle = 100;
    trace.programHalted = true;
    trace.commits.push_back({0, 1, 0});
    trace.incarnations.push_back(
        {0, 0, 10, 20, 24, 0, cpu::incCommitted});

    DeadnessResult dead = analyzeDeadness(trace);
    // r4 never read again but the trace halts... actually this
    // program has no halt record; the single commit's def has no
    // future access and complete trace => FDD.
    AvfResult avf = computeAvf(trace, dead);

    std::uint64_t total = 2ULL * 64 * 100;
    EXPECT_EQ(avf.totalBitCycles, total);
    // Pre-read residency: 10 cycles. FDD: dst bits (6) ACE, 58
    // un-ACE. Post-read: 4 cycles of Ex-ACE.
    EXPECT_EQ(avf.ace, 10u * 6);
    EXPECT_EQ(avf.unAceRead[static_cast<int>(UnAceSource::FddReg)],
              10u * 58);
    EXPECT_EQ(avf.exAce, 4u * 64);
    EXPECT_EQ(avf.idle, total - 14u * 64);
    EXPECT_DOUBLE_EQ(avf.sdcAvf(), 60.0 / total);
    EXPECT_DOUBLE_EQ(avf.dueAvf(),
                     (10.0 * 64) / total);
}

TEST(Avf, SquashedResidencyIsUnreadAndUndetectable)
{
    isa::Program program = isa::assembleOrDie("add r4 = r5, r6\n");
    cpu::SimTrace trace;
    trace.program = &program;
    trace.iqEntries = 1;
    trace.endCycle = 50;
    trace.programHalted = true;
    trace.commits.push_back({0, 1, 0});
    // A squashed (never-read) residency plus the committed one.
    trace.incarnations.push_back(
        {0, 0, 5, cpu::noCycle32, 15, 0, cpu::incSquashTrigger});
    trace.incarnations.push_back(
        {0, 0, 30, 35, 40, 0, cpu::incCommitted});

    DeadnessResult dead = analyzeDeadness(trace);
    AvfResult avf = computeAvf(trace, dead);
    EXPECT_EQ(avf.squashedUnread, 10u * 64);
    // Squashed bit-cycles contribute to neither SDC nor DUE.
    EXPECT_DOUBLE_EQ(avf.dueAvf() * avf.totalBitCycles, 5.0 * 64);
}

TEST(Avf, WrongPathAndNeutralClassification)
{
    isa::Program program =
        isa::assembleOrDie("nop\nadd r4 = r5, r6\n");
    cpu::SimTrace trace;
    trace.program = &program;
    trace.iqEntries = 4;
    trace.endCycle = 100;
    trace.programHalted = true;
    trace.commits.push_back({0, 1, 0});  // the nop commits
    // Wrong-path residency of the add (read then squashed).
    trace.incarnations.push_back(
        {1, cpu::noSeq32, 10, 18, 20, 0,
         static_cast<std::uint8_t>(cpu::incWrongPath |
                                   cpu::incSquashMispredict)});
    // The neutral nop, committed.
    trace.incarnations.push_back(
        {0, 0, 10, 16, 20, 1, cpu::incCommitted});

    DeadnessResult dead = analyzeDeadness(trace);
    AvfResult avf = computeAvf(trace, dead);
    EXPECT_EQ(avf.unAceRead[static_cast<int>(UnAceSource::WrongPath)],
              8u * 64);
    EXPECT_EQ(avf.unAceRead[static_cast<int>(UnAceSource::Neutral)],
              6u * 56);
    EXPECT_EQ(avf.ace, 6u * 8);  // nop opcode bits stay ACE
}

TEST(Avf, DecodeAtRetireAddsExAce)
{
    isa::Program program = isa::assembleOrDie("nop\n");
    cpu::SimTrace trace;
    trace.program = &program;
    trace.iqEntries = 1;
    trace.endCycle = 100;
    trace.programHalted = true;
    trace.commits.push_back({0, 1, 0});
    trace.incarnations.push_back(
        {0, 0, 0, 10, 30, 0, cpu::incCommitted});
    DeadnessResult dead = analyzeDeadness(trace);
    AvfResult avf = computeAvf(trace, dead);
    EXPECT_GT(avf.falseDueAvfDecodeAtRetire(), avf.falseDueAvf());
    EXPECT_NEAR(avf.falseDueAvfDecodeAtRetire() - avf.falseDueAvf(),
                avf.exAceFraction(), 1e-12);
}

TEST(Avf, WindowClippingIgnoresOutOfWindowExposure)
{
    isa::Program program = isa::assembleOrDie("add r4 = r5, r6\n");
    cpu::SimTrace trace;
    trace.program = &program;
    trace.iqEntries = 1;
    trace.startCycle = 100;
    trace.endCycle = 200;
    trace.programHalted = true;
    trace.commits.push_back({0, 1, 0});
    // Residency entirely before the window.
    trace.incarnations.push_back(
        {0, 0, 10, 50, 60, 0, cpu::incCommitted});
    DeadnessResult dead = analyzeDeadness(trace);
    AvfResult avf = computeAvf(trace, dead);
    EXPECT_EQ(avf.ace, 0u);
    EXPECT_EQ(avf.idle, avf.totalBitCycles);
}

// ---------------------------------------------------------------

TEST(Mitf, PaperWorkedExample)
{
    // "a processor running at 2 GHz with an average IPC of 2 and DUE
    // MTTF of 10 years would have a DUE MITF of 1.3e18."
    double v = mitf(2.0, 2.0, 10.0);
    EXPECT_NEAR(v / 1e18, 1.26, 0.05);
}

TEST(Mitf, FitMttfInverses)
{
    EXPECT_NEAR(mttfYearsToFit(1.0), 114155.0, 1.0);
    EXPECT_NEAR(fitToMttfYears(114155.0), 1.0, 1e-3);
    EXPECT_NEAR(fitToMttfYears(mttfYearsToFit(7.5)), 7.5, 1e-9);
}

TEST(Mitf, StructureFitScalesWithAvfAndBits)
{
    ErrorRateModel model;
    model.rawMilliFitPerBit = 2.0;
    model.alphaFraction = 0.0;
    double fit = structureFit(model, 64 * 64, 0.25);
    EXPECT_NEAR(fit, 0.002 * 4096 * 0.25, 1e-9);
    // Alpha adds a flux-independent component.
    model.alphaFraction = 0.5;
    EXPECT_NEAR(structureFit(model, 64 * 64, 0.25), fit * 1.5,
                1e-9);
}

TEST(Mitf, AltitudeScalesNeutronFlux)
{
    ErrorRateModel sea;
    ErrorRateModel denver;
    denver.altitudeKm = 1.5;  // the paper's example
    double factor =
        denver.neutronFluxFactor() / sea.neutronFluxFactor();
    EXPECT_GT(factor, 3.0);  // paper: 3x to 5x the sea-level flux
    EXPECT_LT(factor, 5.0);
    EXPECT_GT(denver.rawFitPerBit(), sea.rawFitPerBit());
}

TEST(Mitf, RatioMatchesIpcOverAvf)
{
    // Paper Table 1: IPC 1.21->1.19, SDC AVF 29%->22% gives
    // IPC/AVF 4.1->5.6, a ~1.3x MITF gain.
    double ratio = mitfRatio(1.21, 0.29, 1.19, 0.22);
    EXPECT_NEAR(ratio, (1.19 / 0.22) / (1.21 / 0.29), 1e-12);
    EXPECT_GT(ratio, 1.25);
}

// ---------------------------------------------------------------

TEST(RangeMin, MatchesBruteForce)
{
    Rng rng(3);
    std::vector<std::int32_t> values(1000);
    for (auto &v : values)
        v = static_cast<std::int32_t>(rng.rangeInclusive(-50, 50));
    RangeMin rm(values, 16);
    for (int trial = 0; trial < 2000; ++trial) {
        std::size_t lo = rng.range(values.size());
        std::size_t hi = lo + rng.range(values.size() - lo);
        std::int32_t expect = values[lo];
        for (std::size_t i = lo; i <= hi; ++i)
            expect = std::min(expect, values[i]);
        ASSERT_EQ(rm.min(lo, hi), expect)
            << "range [" << lo << ", " << hi << "]";
    }
}

TEST(RangeMin, SingleElementAndFullRange)
{
    RangeMin rm({5, 3, 9, 1, 7}, 2);
    EXPECT_EQ(rm.min(0, 0), 5);
    EXPECT_EQ(rm.min(0, 4), 1);
    EXPECT_EQ(rm.min(4, 4), 7);
    EXPECT_EQ(rm.min(0, 2), 3);
}
