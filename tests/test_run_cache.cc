/**
 * @file
 * The allocation-path layers, tested together: the SoA instruction
 * arena (cpu/inst_arena.hh) and the memoized run cache
 * (harness/run_cache.hh).
 *
 * Arena: LIFO id recycling, the high-water mark, and — through a
 * real squash-heavy pipeline run — that the in-flight population
 * never outgrows the architecturally reserved bound, so steady state
 * allocates nothing.
 *
 * Cache: content-addressed keys (equal-content programs share, any
 * timing-relevant knob separates), pointer-identical artifacts on a
 * hit, miss/hit/off outcome reporting, FIFO eviction, and equality
 * of results between cache-enabled and disabled runs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/trigger.hh"
#include "cpu/inst_arena.hh"
#include "cpu/pipeline.hh"
#include "harness/experiment.hh"
#include "harness/run_cache.hh"
#include "isa/assembler.hh"
#include "workloads/suite.hh"

using namespace ser;

// ---------------------------------------------------------------
// InstArena

TEST(InstArena, LifoRecyclingAndHighWater)
{
    cpu::InstArena arena(4);
    EXPECT_EQ(arena.capacity(), 0u);

    cpu::InstId a = arena.allocate();
    cpu::InstId b = arena.allocate();
    EXPECT_NE(a, b);
    EXPECT_EQ(arena.live(), 2u);
    EXPECT_EQ(arena.highWater(), 2u);
    EXPECT_EQ(arena.capacity(), 4u);  // one slab

    // LIFO: the next allocation reuses the most recent release.
    arena.release(b);
    EXPECT_EQ(arena.live(), 1u);
    cpu::InstId c = arena.allocate();
    EXPECT_EQ(c, b);

    // The id comes back with only the liveness column (issueCycle)
    // reset; every other column is deliberately left stale — the
    // fetch path overwrites them before any stage reads them (see
    // allocate()'s contract), so the arena does not pay to clear
    // them on every recycle.
    arena.seq[c] = 1234;
    arena.issueCycle[c] = 77;
    arena.flags[c] = cpu::diWrongPath;
    arena.release(c);
    cpu::InstId d = arena.allocate();
    ASSERT_EQ(d, c);
    EXPECT_EQ(arena.issueCycle[d], cpu::invalidCycle);
    EXPECT_EQ(arena.seq[d], 1234u);  // stale by contract

    arena.release(a);
    arena.release(d);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(arena.highWater(), 2u);  // the mark survives releases
}

TEST(InstArena, ReserveCoversAllocationsWithoutGrowth)
{
    cpu::InstArena arena(4);
    arena.reserve(100);
    EXPECT_EQ(arena.capacity(), 100u);
    arena.reserve(50);  // already covered: no-op
    EXPECT_EQ(arena.capacity(), 100u);

    std::vector<cpu::InstId> taken;
    for (int i = 0; i < 100; ++i)
        taken.push_back(arena.allocate());
    EXPECT_EQ(arena.capacity(), 100u);  // no slab was added
    EXPECT_EQ(arena.highWater(), 100u);
    cpu::InstId extra = arena.allocate();  // 101st grows by a slab
    EXPECT_GT(arena.capacity(), 100u);
    arena.release(extra);
    for (cpu::InstId id : taken)
        arena.release(id);
}

TEST(InstArena, PipelineRecyclesAcrossSquashes)
{
    // A squash-heavy run (loads wander a large array, L0-miss
    // trigger) fetches the same in-flight window over and over —
    // including wrong-path and replayed incarnations. The pool must
    // recycle through all of it: the capacity reserved up front
    // (front-end pipe + IQ) never grows, which also proves no slot
    // leaks on any squash path (a leak would strand slots and force
    // slab growth).
    std::string src = R"(
        movi r2 = 12345
        movi r3 = 1103515245
        movi r8 = 0x100000
        movi r4 = 800
        loop:
        mul r2 = r2, r3
        addi r2 = r2, 12345
        shri r5 = r2, 13
        andi r5 = r5, 0x7ffff8
        add r6 = r8, r5
        ld8 r7 = [r6, 0]
        xor r9 = r9, r7
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r9
        halt
    )";
    isa::Program program = isa::assembleOrDie(src);
    cpu::PipelineParams params;
    core::MissTriggerPolicy policy(core::TriggerLevel::L0Miss,
                                   core::TriggerAction::Squash);
    cpu::InOrderPipeline pipe(program, params);
    pipe.setExposurePolicy(&policy);
    cpu::SimTrace t = pipe.run();

    const std::size_t bound =
        std::size_t(params.frontEndDepth) * params.enqueueWidth +
        params.iqEntries;
    EXPECT_GT(t.incarnations.size(), bound * 10);
    EXPECT_LE(pipe.poolHighWater(), bound);
    EXPECT_EQ(pipe.poolCapacity(), bound);
    EXPECT_GT(pipe.poolHighWater(), 0u);
}

// ---------------------------------------------------------------
// RunCache

namespace
{

class RunCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { reset(); }
    void TearDown() override { reset(); }

    static harness::RunCache &cache()
    {
        return harness::RunCache::instance();
    }

    static void reset()
    {
        cache().setEnabled(true);
        cache().setCapacity(0);
        cache().clear();
    }

    static std::shared_ptr<const isa::Program>
    buildShared(const char *name, std::uint64_t insts)
    {
        return std::make_shared<const isa::Program>(
            workloads::buildBenchmark(name, insts));
    }

    static harness::ExperimentConfig smallConfig()
    {
        harness::ExperimentConfig cfg;
        cfg.dynamicTarget = 5000;
        cfg.warmupInsts = 500;
        return cfg;
    }
};

} // namespace

TEST_F(RunCacheTest, HitSharesPointerIdenticalArtifacts)
{
    auto program = buildShared("gzip", 5000);
    harness::ExperimentConfig cfg = smallConfig();

    auto r1 = harness::runProgram(program, cfg, "gzip");
    EXPECT_EQ(r1.cacheSim, harness::CacheOutcome::Miss);
    EXPECT_EQ(r1.cacheDeadness, harness::CacheOutcome::Miss);
    EXPECT_EQ(r1.cacheAvf, harness::CacheOutcome::Miss);

    auto r2 = harness::runProgram(program, cfg, "gzip");
    EXPECT_EQ(r2.cacheSim, harness::CacheOutcome::Hit);
    EXPECT_EQ(r2.cacheDeadness, harness::CacheOutcome::Hit);
    EXPECT_EQ(r2.cacheAvf, harness::CacheOutcome::Hit);

    // Not just equal: the same objects.
    EXPECT_EQ(r1.trace.get(), r2.trace.get());
    EXPECT_EQ(r1.deadness.get(), r2.deadness.get());
    EXPECT_EQ(r1.avf.get(), r2.avf.get());
    EXPECT_EQ(r1.program.get(), r2.program.get());

    auto sim = cache().simCounters();
    EXPECT_EQ(sim.misses, 1u);
    EXPECT_EQ(sim.hits, 1u);
}

TEST_F(RunCacheTest, ContentEqualProgramsShareOneSimulation)
{
    // Two distinct builds of the same benchmark have equal content,
    // so they hash to the same key and share the first simulation.
    auto p1 = buildShared("mcf", 5000);
    auto p2 = buildShared("mcf", 5000);
    ASSERT_NE(p1.get(), p2.get());
    EXPECT_EQ(harness::RunCache::programHash(*p1),
              harness::RunCache::programHash(*p2));

    harness::ExperimentConfig cfg = smallConfig();
    auto r1 = harness::runProgram(p1, cfg, "mcf");
    auto r2 = harness::runProgram(p2, cfg, "mcf");
    EXPECT_EQ(r2.cacheSim, harness::CacheOutcome::Hit);
    EXPECT_EQ(r1.trace.get(), r2.trace.get());
    // The hit adopted the cache's canonical program, keeping
    // trace->program valid.
    EXPECT_EQ(r2.program.get(), r1.program.get());
}

TEST_F(RunCacheTest, TimingKnobsSeparateKeysPostCommitKnobsShare)
{
    auto program = buildShared("gzip", 5000);
    harness::ExperimentConfig cfg = smallConfig();
    auto base = harness::runProgram(program, cfg, "gzip");

    // A timing-relevant knob must miss and resimulate...
    harness::ExperimentConfig smaller_iq = cfg;
    smaller_iq.pipeline.iqEntries = 16;
    auto iq = harness::runProgram(program, smaller_iq, "gzip");
    EXPECT_EQ(iq.cacheSim, harness::CacheOutcome::Miss);
    EXPECT_NE(iq.trace.get(), base.trace.get());

    // ...while a post-commit knob shares the simulation and its
    // analyses; only the falseDue fold differs.
    harness::ExperimentConfig big_pet = cfg;
    big_pet.petSize = 16384;
    auto pet = harness::runProgram(program, big_pet, "gzip");
    EXPECT_EQ(pet.cacheSim, harness::CacheOutcome::Hit);
    EXPECT_EQ(pet.trace.get(), base.trace.get());
    EXPECT_EQ(pet.deadness.get(), base.deadness.get());
    EXPECT_EQ(pet.avf.get(), base.avf.get());

    EXPECT_NE(harness::RunCache::simKey(*program, cfg, cfg.pipeline),
              harness::RunCache::simKey(*program, smaller_iq,
                                        smaller_iq.pipeline));
}

TEST_F(RunCacheTest, FifoEvictionRecomputesEvictedKeys)
{
    cache().setCapacity(1);
    auto program = buildShared("gzip", 5000);
    harness::ExperimentConfig a = smallConfig();
    harness::ExperimentConfig b = smallConfig();
    b.pipeline.iqEntries = 16;

    auto r1 = harness::runProgram(program, a, "gzip");
    auto r2 = harness::runProgram(program, b, "gzip");  // evicts a
    auto r3 = harness::runProgram(program, a, "gzip");  // must miss
    EXPECT_EQ(r1.cacheSim, harness::CacheOutcome::Miss);
    EXPECT_EQ(r2.cacheSim, harness::CacheOutcome::Miss);
    EXPECT_EQ(r3.cacheSim, harness::CacheOutcome::Miss);
    // Evicted-and-recomputed results are distinct objects with the
    // same content.
    EXPECT_NE(r1.trace.get(), r3.trace.get());
    EXPECT_EQ(r1.trace->commits.size(), r3.trace->commits.size());
    EXPECT_DOUBLE_EQ(r1.ipc, r3.ipc);
}

TEST_F(RunCacheTest, CountersTrackEvictionsAndBytes)
{
    cache().setCapacity(1);
    auto program = buildShared("gzip", 5000);
    harness::ExperimentConfig a = smallConfig();
    harness::ExperimentConfig b = smallConfig();
    b.pipeline.iqEntries = 16;

    auto r1 = harness::runProgram(program, a, "gzip");
    auto sim = cache().simCounters();
    EXPECT_EQ(sim.evictions, 0u);
    EXPECT_GT(sim.bytes, sizeof(harness::SimProducts));
    // One entry per section, so the bytes gauge is exactly that
    // entry's approxBytes.
    EXPECT_EQ(cache().deadnessCounters().bytes,
              harness::approxBytes(*r1.deadness));
    EXPECT_EQ(cache().avfCounters().bytes,
              harness::approxBytes(*r1.avf));

    // A different timing key at capacity 1 evicts r1's entries from
    // every section; the bytes gauges track the surviving entry.
    auto r2 = harness::runProgram(program, b, "gzip");
    sim = cache().simCounters();
    EXPECT_EQ(sim.misses, 2u);
    EXPECT_EQ(sim.evictions, 1u);
    EXPECT_EQ(cache().deadnessCounters().evictions, 1u);
    EXPECT_EQ(cache().avfCounters().evictions, 1u);
    EXPECT_EQ(cache().deadnessCounters().bytes,
              harness::approxBytes(*r2.deadness));

    cache().clear();
    sim = cache().simCounters();
    EXPECT_EQ(sim.evictions, 0u);
    EXPECT_EQ(sim.bytes, 0u);
}

TEST_F(RunCacheTest, BytesAreAFunctionOfContent)
{
    // The footprint estimate must be deterministic: two passes over
    // the same work report identical bytes (the metrics determinism
    // fixture byte-compares these across --jobs counts).
    auto program = buildShared("mcf", 5000);
    harness::ExperimentConfig cfg = smallConfig();

    (void)harness::runProgram(program, cfg, "mcf");
    auto first = cache().simCounters();
    reset();
    (void)harness::runProgram(program, cfg, "mcf");
    auto second = cache().simCounters();
    EXPECT_GT(first.bytes, 0u);
    EXPECT_EQ(first.bytes, second.bytes);
}

TEST_F(RunCacheTest, DisabledCacheComputesDirectly)
{
    cache().setEnabled(false);
    auto program = buildShared("gzip", 5000);
    harness::ExperimentConfig cfg = smallConfig();

    auto r1 = harness::runProgram(program, cfg, "gzip");
    auto r2 = harness::runProgram(program, cfg, "gzip");
    EXPECT_EQ(r1.cacheSim, harness::CacheOutcome::Off);
    EXPECT_EQ(r2.cacheSim, harness::CacheOutcome::Off);
    EXPECT_NE(r1.trace.get(), r2.trace.get());

    auto sim = cache().simCounters();
    EXPECT_EQ(sim.hits, 0u);
    EXPECT_EQ(sim.misses, 0u);
}

TEST_F(RunCacheTest, CachedAndUncachedResultsAgree)
{
    auto program = buildShared("vortex", 5000);
    harness::ExperimentConfig cfg = smallConfig();
    cfg.triggerLevel = "l1";

    auto cached_miss = harness::runProgram(program, cfg, "vortex");
    auto cached_hit = harness::runProgram(program, cfg, "vortex");
    cache().setEnabled(false);
    auto direct = harness::runProgram(program, cfg, "vortex");

    EXPECT_EQ(cached_hit.cacheSim, harness::CacheOutcome::Hit);
    EXPECT_EQ(direct.cacheSim, harness::CacheOutcome::Off);
    for (const auto *r : {&cached_miss, &cached_hit}) {
        EXPECT_DOUBLE_EQ(r->ipc, direct.ipc);
        EXPECT_EQ(r->trace->commits.size(),
                  direct.trace->commits.size());
        EXPECT_DOUBLE_EQ(r->avf->sdcAvf(), direct.avf->sdcAvf());
        EXPECT_DOUBLE_EQ(r->avf->falseDueAvf(),
                         direct.avf->falseDueAvf());
        EXPECT_EQ(r->statsJson, direct.statsJson);
        EXPECT_EQ(r->poolHighWater, direct.poolHighWater);
    }
}
