/**
 * @file
 * Unit tests for the simulation substrate: logging format helper,
 * RNG, statistics package, and the config store.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace ser;

TEST(Logging, FormatSubstitutesPlaceholders)
{
    EXPECT_EQ(logging_detail::format("a {} b {}", 1, "x"), "a 1 b x");
    EXPECT_EQ(logging_detail::format("no holes", 1), "no holes");
    EXPECT_EQ(logging_detail::format("{} {} {}", 1, 2), "1 2 {}");
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    // Different seeds diverge (overwhelmingly likely).
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a2.next() == c2.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.range(17), 17u);
        auto v = rng.rangeInclusive(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, SkewedPrefersSmallIndices)
{
    Rng rng(5);
    std::uint64_t low = 0, total = 10000;
    for (std::uint64_t i = 0; i < total; ++i) {
        auto v = rng.skewed(100, 0.5);
        ASSERT_LT(v, 100u);
        low += v < 10;
    }
    EXPECT_GT(low, total * 9 / 10);
}

TEST(Stats, ScalarAccumulates)
{
    statistics::StatGroup g("g");
    statistics::Scalar s(&g, "s", "d");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    statistics::StatGroup g("g");
    statistics::Average a(&g, "a", "d");
    a.sample(1);
    a.sample(5);
    a.sample(3);
    EXPECT_DOUBLE_EQ(a.value(), 3.0);
    EXPECT_DOUBLE_EQ(a.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(a.maxValue(), 5.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBucketsAndOverflow)
{
    statistics::StatGroup g("g");
    statistics::Distribution d(&g, "d", "d", 0, 10, 2);
    d.sample(0);
    d.sample(1.9);
    d.sample(9.9);
    d.sample(-1);
    d.sample(100);
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.count(), 5u);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    statistics::StatGroup g("g");
    statistics::Scalar a(&g, "a", "d"), b(&g, "b", "d");
    statistics::Formula f(&g, "f", "ratio",
                          [&]() { return a.value() / b.value(); });
    a += 6;
    b += 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    a += 6;
    EXPECT_DOUBLE_EQ(f.value(), 4.0);
}

TEST(Stats, GroupDumpAndReset)
{
    statistics::StatGroup root("root");
    statistics::StatGroup child("child", &root);
    statistics::Scalar s(&child, "counter", "a counter");
    s += 7;
    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_NE(os.str().find("root.child.counter 7"),
              std::string::npos);
    root.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FindStat)
{
    statistics::StatGroup g("g");
    statistics::Scalar s(&g, "x", "d");
    EXPECT_EQ(g.findStat("x"), &s);
    EXPECT_EQ(g.findStat("y"), nullptr);
}

TEST(Config, ParsesAssignmentsAndPositional)
{
    Config c;
    const char *argv[] = {"prog", "a=1", "b.c=2.5", "pos",
                          "flag=true"};
    c.parseArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(c.getInt("a", 0), 1);
    EXPECT_DOUBLE_EQ(c.getDouble("b.c", 0), 2.5);
    EXPECT_TRUE(c.getBool("flag", false));
    ASSERT_EQ(c.positional().size(), 1u);
    EXPECT_EQ(c.positional()[0], "pos");
}

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_EQ(c.getInt("nope", 42), 42);
    EXPECT_EQ(c.getString("nope", "x"), "x");
    EXPECT_FALSE(c.has("nope"));
}

TEST(Config, HexAndBoolForms)
{
    Config c;
    c.set("h", "0x10");
    c.set("b1", "on");
    c.set("b0", "Off");
    EXPECT_EQ(c.getUint("h", 0), 16u);
    EXPECT_TRUE(c.getBool("b1", false));
    EXPECT_FALSE(c.getBool("b0", true));
}
