/**
 * @file
 * Unit tests for the simulation substrate: logging format helper,
 * RNG, statistics package, the config store, the JSON layer, debug
 * trace flags, the interval sampler, and the shared bench options.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/sampler.hh"
#include "harness/bench_options.hh"
#include "harness/reporting.hh"
#include "sim/config.hh"
#include "sim/debug.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace ser;

TEST(Logging, FormatSubstitutesPlaceholders)
{
    EXPECT_EQ(logging_detail::format("a {} b {}", 1, "x"), "a 1 b x");
    EXPECT_EQ(logging_detail::format("no holes", 1), "no holes");
    EXPECT_EQ(logging_detail::format("{} {} {}", 1, 2), "1 2 {}");
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    // Different seeds diverge (overwhelmingly likely).
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a2.next() == c2.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.range(17), 17u);
        auto v = rng.rangeInclusive(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, SkewedPrefersSmallIndices)
{
    Rng rng(5);
    std::uint64_t low = 0, total = 10000;
    for (std::uint64_t i = 0; i < total; ++i) {
        auto v = rng.skewed(100, 0.5);
        ASSERT_LT(v, 100u);
        low += v < 10;
    }
    EXPECT_GT(low, total * 9 / 10);
}

TEST(Stats, ScalarAccumulates)
{
    statistics::StatGroup g("g");
    statistics::Scalar s(&g, "s", "d");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    statistics::StatGroup g("g");
    statistics::Average a(&g, "a", "d");
    a.sample(1);
    a.sample(5);
    a.sample(3);
    EXPECT_DOUBLE_EQ(a.value(), 3.0);
    EXPECT_DOUBLE_EQ(a.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(a.maxValue(), 5.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, AverageWeightedSampleMatchesRepeatedSamples)
{
    // The cycle-skipping pipeline folds an N-cycle idle span into one
    // weighted sample; for integer-valued samples the products are
    // exact, so the aggregate must be bit-identical to N plain calls.
    statistics::StatGroup g("g");
    statistics::Average batched(&g, "batched", "d");
    statistics::Average ticked(&g, "ticked", "d");
    batched.sample(3.0, 1000);
    batched.sample(7.0);
    for (int i = 0; i < 1000; ++i)
        ticked.sample(3.0);
    ticked.sample(7.0, 1);
    EXPECT_EQ(batched.count(), ticked.count());
    EXPECT_EQ(batched.value(), ticked.value());
    EXPECT_EQ(batched.minValue(), ticked.minValue());
    EXPECT_EQ(batched.maxValue(), ticked.maxValue());

    // Zero weight is a no-op and must not disturb min/max.
    batched.sample(99.0, 0);
    EXPECT_EQ(batched.count(), 1001u);
    EXPECT_DOUBLE_EQ(batched.maxValue(), 7.0);
}

TEST(Stats, DistributionBucketsAndOverflow)
{
    statistics::StatGroup g("g");
    statistics::Distribution d(&g, "d", "d", 0, 10, 2);
    d.sample(0);
    d.sample(1.9);
    d.sample(9.9);
    d.sample(-1);
    d.sample(100);
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.count(), 5u);
}

TEST(Stats, DistributionPercentiles)
{
    statistics::StatGroup g("g");
    statistics::Distribution d(&g, "d", "d", 0, 100, 10);
    // One sample per unit in [0, 100): every bucket holds 10, so the
    // interpolated percentiles land exactly on their rank.
    for (int v = 0; v < 100; ++v)
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(d.percentile(90), 90.0);
    EXPECT_DOUBLE_EQ(d.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.0);
}

TEST(Stats, DistributionPercentileInterpolatesWithinBucket)
{
    statistics::StatGroup g("g");
    statistics::Distribution d(&g, "d", "d", 0, 10, 10);
    // All four samples share the single bucket: the p50 rank (2 of
    // 4) interpolates to the bucket's midpoint.
    for (int i = 0; i < 4; ++i)
        d.sample(5);
    EXPECT_DOUBLE_EQ(d.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(d.percentile(25), 2.5);
}

TEST(Stats, DistributionPercentileClampsOutOfRange)
{
    statistics::StatGroup g("g");
    statistics::Distribution d(&g, "d", "d", 0, 10, 2);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);  // no samples
    d.sample(-5);
    d.sample(-5);
    d.sample(3);
    d.sample(100);
    // Underflowed ranks pin to the range minimum, overflowed ranks
    // to the range maximum: the histogram never saw the true values.
    EXPECT_DOUBLE_EQ(d.percentile(25), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 10.0);
}

TEST(Stats, DistributionDumpsPercentiles)
{
    statistics::StatGroup g("g");
    statistics::Distribution d(&g, "d", "d", 0, 10, 2);
    for (int v = 0; v < 10; ++v)
        d.sample(v);
    std::ostringstream os;
    g.dumpStats(os);
    EXPECT_NE(os.str().find("g.d::p50"), std::string::npos);
    EXPECT_NE(os.str().find("g.d::p99"), std::string::npos);

    std::ostringstream js;
    {
        json::JsonWriter jw(js);
        g.dumpJson(jw);
    }
    EXPECT_NE(js.str().find("\"p90\""), std::string::npos);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    statistics::StatGroup g("g");
    statistics::Scalar a(&g, "a", "d"), b(&g, "b", "d");
    statistics::Formula f(&g, "f", "ratio",
                          [&]() { return a.value() / b.value(); });
    a += 6;
    b += 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    a += 6;
    EXPECT_DOUBLE_EQ(f.value(), 4.0);
}

TEST(Stats, GroupDumpAndReset)
{
    statistics::StatGroup root("root");
    statistics::StatGroup child("child", &root);
    statistics::Scalar s(&child, "counter", "a counter");
    s += 7;
    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_NE(os.str().find("root.child.counter 7"),
              std::string::npos);
    root.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FindStat)
{
    statistics::StatGroup g("g");
    statistics::Scalar s(&g, "x", "d");
    EXPECT_EQ(g.findStat("x"), &s);
    EXPECT_EQ(g.findStat("y"), nullptr);
}

TEST(Config, ParsesAssignmentsAndPositional)
{
    Config c;
    const char *argv[] = {"prog", "a=1", "b.c=2.5", "pos",
                          "flag=true"};
    c.parseArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(c.getInt("a", 0), 1);
    EXPECT_DOUBLE_EQ(c.getDouble("b.c", 0), 2.5);
    EXPECT_TRUE(c.getBool("flag", false));
    ASSERT_EQ(c.positional().size(), 1u);
    EXPECT_EQ(c.positional()[0], "pos");
}

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_EQ(c.getInt("nope", 42), 42);
    EXPECT_EQ(c.getString("nope", "x"), "x");
    EXPECT_FALSE(c.has("nope"));
}

TEST(Config, HexAndBoolForms)
{
    Config c;
    c.set("h", "0x10");
    c.set("b1", "on");
    c.set("b0", "Off");
    EXPECT_EQ(c.getUint("h", 0), 16u);
    EXPECT_TRUE(c.getBool("b1", false));
    EXPECT_FALSE(c.getBool("b0", true));
}

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json::escape(std::string("a\x01") + "b"),
              "a\\u0001b");
}

TEST(Json, WriterRoundTripsThroughParser)
{
    std::ostringstream os;
    json::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("name", "quote\" and \\slash");
    jw.kv("count", std::uint64_t(12345));
    jw.kv("delta", std::int64_t(-7));
    jw.kv("ratio", 0.25);
    jw.kv("flag", true);
    jw.key("none").nullValue();
    jw.key("list").beginArray();
    jw.value(1).value(2).value(3);
    jw.endArray();
    jw.key("nested").beginObject();
    jw.kv("inner", "x");
    jw.endObject();
    jw.endObject();

    json::JsonValue doc;
    std::string err;
    ASSERT_TRUE(json::parseJson(os.str(), &doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("name")->string, "quote\" and \\slash");
    EXPECT_DOUBLE_EQ(doc.find("count")->number, 12345.0);
    EXPECT_DOUBLE_EQ(doc.find("delta")->number, -7.0);
    EXPECT_DOUBLE_EQ(doc.find("ratio")->number, 0.25);
    EXPECT_TRUE(doc.find("flag")->boolean);
    EXPECT_TRUE(doc.find("none")->isNull());
    ASSERT_EQ(doc.find("list")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(doc.find("list")->array[2].number, 3.0);
    EXPECT_EQ(doc.find("nested")->find("inner")->string, "x");
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    std::ostringstream os;
    json::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("nan", std::nan(""));
    jw.kv("inf", std::numeric_limits<double>::infinity());
    jw.endObject();
    json::JsonValue doc;
    ASSERT_TRUE(json::parseJson(os.str(), &doc));
    EXPECT_TRUE(doc.find("nan")->isNull());
    EXPECT_TRUE(doc.find("inf")->isNull());
}

TEST(Json, CompactModeIsSingleLine)
{
    std::ostringstream os;
    json::JsonWriter jw(os, 0);
    jw.beginObject();
    jw.kv("a", 1);
    jw.key("b").beginArray().value(2).value(3).endArray();
    jw.endObject();
    EXPECT_EQ(os.str().find('\n'), std::string::npos);
    json::JsonValue doc;
    EXPECT_TRUE(json::parseJson(os.str(), &doc));
}

TEST(Json, RawValueSplicesVerbatim)
{
    std::ostringstream os;
    json::JsonWriter jw(os, 0);
    jw.beginObject();
    jw.key("stats").rawValue("{\"x\": 1}");
    jw.kv("after", 2);
    jw.endObject();
    json::JsonValue doc;
    ASSERT_TRUE(json::parseJson(os.str(), &doc));
    EXPECT_DOUBLE_EQ(doc.find("stats")->find("x")->number, 1.0);
    EXPECT_DOUBLE_EQ(doc.find("after")->number, 2.0);
}

TEST(Json, ParserRejectsMalformedInput)
{
    json::JsonValue doc;
    EXPECT_FALSE(json::parseJson("{", &doc));
    EXPECT_FALSE(json::parseJson("{} trailing", &doc));
    EXPECT_FALSE(json::parseJson("{\"a\": }", &doc));
    EXPECT_FALSE(json::parseJson("[1, 2,]", &doc));
    EXPECT_FALSE(json::parseJson("nul", &doc));
}

TEST(Stats, DumpJsonNestedTreeRoundTrips)
{
    statistics::StatGroup root("cpu");
    statistics::Scalar cycles(&root, "cycles", "d");
    cycles += 100;
    statistics::StatGroup child("iq", &root);
    statistics::Scalar enq(&child, "enqueued", "d");
    enq += 42;
    statistics::Average occ(&child, "occupancy", "d");
    occ.sample(2);
    occ.sample(4);
    statistics::Distribution lat(&child, "latency", "d", 0, 8, 2);
    lat.sample(1);
    lat.sample(3);
    lat.sample(100);
    statistics::Formula ipc(&root, "ipc", "d",
                            [&]() { return 42.0 / 100.0; });

    std::ostringstream os;
    json::JsonWriter jw(os);
    jw.beginObject();
    root.dumpJson(jw);
    jw.endObject();

    json::JsonValue doc;
    std::string err;
    ASSERT_TRUE(json::parseJson(os.str(), &doc, &err)) << err;
    const json::JsonValue *cpu = doc.find("cpu");
    ASSERT_NE(cpu, nullptr);
    EXPECT_DOUBLE_EQ(cpu->find("cycles")->number, 100.0);
    EXPECT_DOUBLE_EQ(cpu->find("ipc")->number, 0.42);
    const json::JsonValue *iq = cpu->find("iq");
    ASSERT_NE(iq, nullptr);
    EXPECT_DOUBLE_EQ(iq->find("enqueued")->number, 42.0);
    const json::JsonValue *jocc = iq->find("occupancy");
    ASSERT_NE(jocc, nullptr);
    ASSERT_TRUE(jocc->isObject());
    EXPECT_DOUBLE_EQ(jocc->find("mean")->number, 3.0);
    const json::JsonValue *jlat = iq->find("latency");
    ASSERT_NE(jlat, nullptr);
    ASSERT_TRUE(jlat->isObject());
    EXPECT_DOUBLE_EQ(jlat->find("count")->number, 3.0);
}

TEST(Stats, DistributionAndFormulaReset)
{
    statistics::StatGroup g("g");
    statistics::Distribution d(&g, "d", "d", 0, 10, 2);
    d.sample(1);
    d.sample(11);
    d.sample(-1);
    ASSERT_EQ(d.count(), 3u);
    g.resetStats();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.underflows(), 0u);
    EXPECT_EQ(d.overflows(), 0u);
    for (std::size_t i = 0; i < d.numBuckets(); ++i)
        EXPECT_EQ(d.bucketCount(i), 0u);

    statistics::Scalar a(&g, "a", "d");
    statistics::Formula f(&g, "f", "d",
                          [&]() { return a.value() * 2; });
    a += 3;
    EXPECT_DOUBLE_EQ(f.value(), 6.0);
    f.reset();  // formulas have no state; still live afterwards
    EXPECT_DOUBLE_EQ(f.value(), 6.0);
}

TEST(Stats, FindStatEdgeCases)
{
    statistics::StatGroup root("root");
    statistics::StatGroup child("child", &root);
    statistics::Scalar s(&child, "x", "d");
    // findStat is by local name within one group: the parent does
    // not see the child's stats, and lookups are exact-match.
    EXPECT_EQ(root.findStat("x"), nullptr);
    EXPECT_EQ(root.findStat("child.x"), nullptr);
    EXPECT_EQ(child.findStat("x"), &s);
    EXPECT_EQ(child.findStat("X"), nullptr);
    EXPECT_EQ(child.findStat(""), nullptr);
}

TEST(Debug, ParseFlagsNamesAndAll)
{
    unsigned mask = 0;
    EXPECT_TRUE(debug::parseFlags("Trigger", &mask));
    EXPECT_EQ(mask,
              1u << static_cast<unsigned>(debug::Flag::Trigger));
    EXPECT_TRUE(debug::parseFlags("trigger,iq", &mask));
    EXPECT_EQ(mask,
              (1u << static_cast<unsigned>(debug::Flag::Trigger)) |
                  (1u << static_cast<unsigned>(debug::Flag::IQ)));
    EXPECT_TRUE(debug::parseFlags("all", &mask));
    EXPECT_EQ(mask, (1u << debug::numFlags) - 1);
    EXPECT_TRUE(debug::parseFlags("", &mask));
    EXPECT_EQ(mask, 0u);
    unsigned untouched = 99;
    EXPECT_FALSE(debug::parseFlags("bogus", &untouched));
    EXPECT_EQ(untouched, 99u);
}

TEST(Debug, DisabledFlagsRecordNothing)
{
    debug::printMask = 0;
    debug::captureMask = 0;
    debug::clearRing();
    SER_DPRINTF(Trigger, "should not appear {}", 1);
    EXPECT_TRUE(debug::ringContents().empty());
}

TEST(Debug, RingBufferWrapsKeepingNewest)
{
    debug::setRingCapacity(4);
    debug::setCaptureFlags("Trigger");
    for (int i = 0; i < 6; ++i)
        SER_DPRINTF(Trigger, "msg {}", i);
    auto contents = debug::ringContents();
    ASSERT_EQ(contents.size(), 4u);
    EXPECT_EQ(contents.front(), "[Trigger] msg 2");
    EXPECT_EQ(contents.back(), "[Trigger] msg 5");

    // Capture-only selection must not print: flag enabled, print
    // mask clear.
    EXPECT_EQ(debug::printMask, 0u);
    EXPECT_TRUE(debug::enabled(debug::Flag::Trigger));

    debug::setCaptureFlags("");
    debug::setRingCapacity(256);
    debug::clearRing();
}

namespace
{

cpu::IntervalCounters
countersAt(std::uint64_t committed, std::uint64_t occupancy)
{
    cpu::IntervalCounters c;
    c.committed = committed;
    c.fetched = committed * 2;
    c.iqOccupancy = occupancy;
    c.iqWaiting = occupancy / 2;
    return c;
}

} // namespace

TEST(Sampler, ClosesEpochsOnTheGridWithPartialTail)
{
    cpu::IntervalSampler sampler(10);
    sampler.windowOpen(100);
    // 25 in-window cycles: two full epochs plus a 5-cycle tail.
    for (std::uint64_t cycle = 100; cycle < 125; ++cycle)
        sampler.tick(cycle, countersAt(2 * (cycle - 99), 3));
    sampler.finish(125);

    const auto &s = sampler.samples();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].startCycle, 100u);
    EXPECT_EQ(s[0].endCycle, 110u);
    EXPECT_EQ(s[0].committed, 20u);
    EXPECT_EQ(s[0].iqValidEntryCycles, 30u);
    EXPECT_DOUBLE_EQ(s[0].ipc(), 2.0);
    EXPECT_DOUBLE_EQ(s[0].avgIqOccupancy(), 3.0);
    EXPECT_EQ(s[1].startCycle, 110u);
    EXPECT_EQ(s[1].endCycle, 120u);
    EXPECT_EQ(s[1].committed, 20u);
    // The partial last epoch covers the remaining 5 cycles.
    EXPECT_EQ(s[2].startCycle, 120u);
    EXPECT_EQ(s[2].endCycle, 125u);
    EXPECT_EQ(s[2].cycles(), 5u);
    EXPECT_EQ(s[2].committed, 10u);

    std::uint64_t total = 0;
    for (const auto &e : s)
        total += e.committed;
    EXPECT_EQ(total, 50u);  // == the run's committed instructions
}

TEST(Sampler, WarmupTicksAreExcluded)
{
    cpu::IntervalSampler sampler(10);
    // Ticks before the window opens must leave no trace.
    for (std::uint64_t cycle = 0; cycle < 50; ++cycle)
        sampler.tick(cycle, countersAt(1000 + cycle, 60));
    EXPECT_TRUE(sampler.samples().empty());
    sampler.finish(50);
    EXPECT_TRUE(sampler.samples().empty());

    sampler.windowOpen(50);
    for (std::uint64_t cycle = 50; cycle < 60; ++cycle)
        sampler.tick(cycle, countersAt(cycle - 49, 1));
    ASSERT_EQ(sampler.samples().size(), 1u);
    // The grid restarts at the window-open cycle and the deltas
    // restart from zero, untouched by the warmup values.
    EXPECT_EQ(sampler.samples()[0].startCycle, 50u);
    EXPECT_EQ(sampler.samples()[0].endCycle, 60u);
    EXPECT_EQ(sampler.samples()[0].committed, 10u);
    EXPECT_EQ(sampler.samples()[0].iqValidEntryCycles, 10u);
}

TEST(Sampler, ExactMultipleLeavesNoPartialEpoch)
{
    cpu::IntervalSampler sampler(5);
    sampler.windowOpen(0);
    for (std::uint64_t cycle = 0; cycle < 10; ++cycle)
        sampler.tick(cycle, countersAt(cycle + 1, 0));
    sampler.finish(10);
    ASSERT_EQ(sampler.samples().size(), 2u);
    EXPECT_EQ(sampler.samples()[1].endCycle, 10u);
}

TEST(Sampler, BatchAdvanceMatchesPerCycleTicks)
{
    // An inert span batch-advanced in one call must leave the sampler
    // in exactly the state that per-cycle ticking with unchanged
    // counters would, including spans that cross several epoch
    // boundaries and the snapshot-free mid-epoch fast path.
    cpu::IntervalSampler ticked(10);
    cpu::IntervalSampler batched(10);
    ticked.windowOpen(0);
    batched.windowOpen(0);

    struct Span
    {
        std::uint64_t cycles;
        std::uint64_t committed;
        std::uint64_t occupancy;
    };
    const Span spans[] = {
        {3, 4, 2}, {12, 4, 5}, {1, 6, 1}, {9, 8, 7}, {25, 9, 3},
    };
    std::uint64_t cycle = 0;
    cpu::IntervalCounters c;
    for (const Span &sp : spans) {
        c = countersAt(sp.committed, sp.occupancy);
        for (std::uint64_t i = 0; i < sp.cycles; ++i)
            ticked.tick(cycle + i, c);
        if (batched.needsCounters(sp.cycles))
            batched.advance(cycle, sp.cycles, c);
        else
            batched.advanceMidEpoch(sp.cycles, c.iqOccupancy,
                                    c.iqWaiting);
        cycle += sp.cycles;
    }
    ticked.finish(cycle, c);
    batched.finish(cycle, c);

    const auto &a = ticked.samples();
    const auto &b = batched.samples();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].startCycle, b[i].startCycle) << i;
        EXPECT_EQ(a[i].endCycle, b[i].endCycle) << i;
        EXPECT_EQ(a[i].committed, b[i].committed) << i;
        EXPECT_EQ(a[i].fetched, b[i].fetched) << i;
        EXPECT_EQ(a[i].iqValidEntryCycles, b[i].iqValidEntryCycles)
            << i;
        EXPECT_EQ(a[i].iqWaitingEntryCycles,
                  b[i].iqWaitingEntryCycles)
            << i;
    }
}

TEST(Sampler, JsonlLinesAreCompactAndParse)
{
    cpu::IntervalSampler sampler(4);
    sampler.windowOpen(0);
    for (std::uint64_t cycle = 0; cycle < 9; ++cycle)
        sampler.tick(cycle, countersAt(cycle, 2));
    sampler.finish(9);

    std::ostringstream os;
    sampler.writeJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        json::JsonValue doc;
        std::string err;
        ASSERT_TRUE(json::parseJson(line, &doc, &err)) << err;
        EXPECT_TRUE(doc.find("committed")->isNumber());
        EXPECT_TRUE(doc.find("avg_iq_occupancy")->isNumber());
        ++lines;
    }
    EXPECT_EQ(lines, sampler.samples().size());
}

TEST(Table, CsvQuotesPerRfc4180)
{
    harness::Table t({"name", "value, with comma"});
    t.addRow({"say \"hi\"", "multi\nline"});
    t.addRow({"plain", "1.5"});
    std::ostringstream os;
    t.printCsv(os);
    std::string csv = os.str();
    EXPECT_NE(csv.find("\"value, with comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
    EXPECT_NE(csv.find("plain,1.5"), std::string::npos);
}

TEST(BenchOptions, ParsesSharedFlagsAndConfig)
{
    std::vector<std::string> args = {
        "prog", "--csv", "--json", "out.json", "--intervals", "500",
        "insts=1234", "benchmark=mcf"};
    std::vector<char *> argv;
    for (auto &a : args)
        argv.push_back(a.data());
    auto opts = harness::BenchOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(opts.csv);
    EXPECT_EQ(opts.jsonPath, "out.json");
    EXPECT_EQ(opts.intervalCycles, 500u);
    EXPECT_EQ(opts.config.getUint("insts", 0), 1234u);
    EXPECT_EQ(opts.config.getString("benchmark", ""), "mcf");
}

TEST(BenchOptions, EqualsFormAndLegacyCsvKey)
{
    std::vector<std::string> args = {"prog", "--json=m.json",
                                     "csv=1"};
    std::vector<char *> argv;
    for (auto &a : args)
        argv.push_back(a.data());
    auto opts = harness::BenchOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(opts.csv);  // legacy csv=1 still selects CSV
    EXPECT_EQ(opts.jsonPath, "m.json");
    EXPECT_EQ(opts.intervalCycles, 0u);
}
