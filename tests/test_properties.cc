/**
 * @file
 * Cross-module property tests, parameterized over random programs
 * and the surrogate suite:
 *
 *  - timing/functional agreement for every surrogate benchmark;
 *  - AVF accounting closure (classes tile the bit-cycle space);
 *  - operational PET buffer vs analytical overwrite distances;
 *  - injector determinism and outcome/protection coherence;
 *  - trace invariants under every trigger policy.
 */

#include <gtest/gtest.h>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "core/pi_machine.hh"
#include "core/trigger.hh"
#include "cpu/pipeline.hh"
#include "faults/campaign.hh"
#include "faults/injector.hh"
#include "isa/encoding.hh"
#include "isa/executor.hh"
#include "workloads/profile.hh"
#include "workloads/random_program.hh"
#include "workloads/suite.hh"

using namespace ser;

namespace
{

struct RunCtx
{
    isa::Program program;
    cpu::SimTrace trace;
    std::vector<std::uint64_t> output;
    std::uint64_t goldenSteps = 0;
};

RunCtx
runCtx(const isa::Program &program, const char *trigger = "none",
       std::uint64_t max_insts = 2000000)
{
    RunCtx c;
    c.program = program;
    isa::Executor golden(c.program);
    golden.run(max_insts);
    c.output = golden.state().output();
    c.goldenSteps = golden.steps();

    cpu::PipelineParams params;
    params.maxInsts = max_insts;
    cpu::InOrderPipeline pipe(c.program, params);
    auto policy = core::makeTriggerPolicy(trigger, "squash");
    pipe.setExposurePolicy(policy.get());
    c.trace = pipe.run();
    c.trace.program = &c.program;
    return c;
}

} // namespace

/** Every surrogate: the pipeline commits exactly the oracle stream
 * regardless of trigger policy. */
class SuiteFidelity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteFidelity, CommitStreamMatchesOracleUnderSquashing)
{
    isa::Program program =
        workloads::buildBenchmark(GetParam(), 30000);
    RunCtx base = runCtx(program, "none", 90000);
    RunCtx squash = runCtx(program, "l0", 90000);
    EXPECT_EQ(base.trace.commits.size(), base.goldenSteps);
    EXPECT_EQ(squash.trace.commits.size(), base.goldenSteps);
    EXPECT_EQ(base.trace.programHalted, squash.trace.programHalted);

    // Squashing must not reduce the committed stream, only the
    // exposure; and the AVF classes always tile the space.
    for (const RunCtx *c : {&base, &squash}) {
        avf::DeadnessResult dead = avf::analyzeDeadness(c->trace);
        avf::AvfResult avf = avf::computeAvf(c->trace, dead);
        std::uint64_t sum = avf.idle + avf.exAce +
                            avf.squashedUnread + avf.ace;
        for (int s = 0; s < avf::numUnAceSources; ++s)
            sum += avf.unAceRead[s] + avf.unAceUnread[s];
        EXPECT_EQ(sum, avf.totalBitCycles) << GetParam();
        EXPECT_LE(avf.sdcAvfRefined(), avf.sdcAvf() + 1e-12)
            << GetParam();
        EXPECT_LE(avf.sdcAvf(), 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteFidelity,
    ::testing::ValuesIn(workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

/** Random programs: the PET machine's verdicts match the analytical
 * overwrite distances exactly. */
class PetAnalyticalEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PetAnalyticalEquivalence, OperationalMatchesDistances)
{
    RunCtx c = runCtx(workloads::randomProgram(GetParam()));
    ASSERT_TRUE(c.trace.programHalted);
    avf::DeadnessResult dead = avf::analyzeDeadness(c.trace);

    const std::size_t pet_size = 24;
    core::PiMachine pet(c.trace, core::TrackingLevel::PetBuffer,
                        pet_size);
    for (std::uint64_t i = 0; i < c.trace.commits.size(); ++i) {
        const auto &cr = c.trace.commits[i];
        const isa::StaticInst &inst = c.program.inst(cr.staticIdx);
        if (!cr.qpTrue || inst.isNeutral())
            continue;
        bool suppressed = !pet.run(i).signalled;
        // The PET buffer can only prove register FDDs whose
        // overwrite happens within its window.
        bool expect_suppressed =
            dead.kind[i] == avf::DeadKind::FddReg &&
            dead.overwriteDist[i] != avf::noOverwrite &&
            dead.overwriteDist[i] <= pet_size;
        EXPECT_EQ(suppressed, expect_suppressed)
            << "seq " << i << " " << inst.toString() << " kind "
            << avf::deadKindName(dead.kind[i]) << " dist "
            << dead.overwriteDist[i];
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PetAnalyticalEquivalence,
                         ::testing::Values(3, 7, 11, 19, 23, 42));

/** Random programs: classify() is deterministic and coherent across
 * protection schemes. */
class InjectorCoherence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(InjectorCoherence, ProtectionOnlyMovesDetectedOutcomes)
{
    RunCtx c = runCtx(workloads::randomProgram(GetParam()));
    faults::FaultInjector inj(c.program, c.trace, c.output);

    Rng rng(GetParam() * 7919);
    std::uint64_t window = c.trace.endCycle - c.trace.startCycle;
    for (int i = 0; i < 60; ++i) {
        faults::FaultSite site;
        site.entry = static_cast<std::uint16_t>(
            rng.range(c.trace.iqEntries));
        site.bit = static_cast<std::uint8_t>(
            rng.range(faults::payloadBits));
        site.cycle = c.trace.startCycle + rng.range(window);

        auto none_a = inj.classify(site, faults::Protection::None);
        auto none_b = inj.classify(site, faults::Protection::None);
        EXPECT_EQ(none_a.outcome, none_b.outcome);  // deterministic

        auto parity =
            inj.classify(site, faults::Protection::Parity);
        // Parity never creates SDC from payload bits, and the
        // benign/detected split must correspond exactly:
        EXPECT_NE(parity.outcome, faults::Outcome::Sdc);
        switch (none_a.outcome) {
          case faults::Outcome::Sdc:
            EXPECT_EQ(parity.outcome, faults::Outcome::TrueDue);
            break;
          case faults::Outcome::BenignNoError:
            EXPECT_EQ(parity.outcome, faults::Outcome::FalseDue);
            break;
          case faults::Outcome::BenignNoBit:
          case faults::Outcome::BenignNotRead:
            EXPECT_EQ(parity.outcome, none_a.outcome);
            break;
          default:
            FAIL() << "unexpected unprotected outcome";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, InjectorCoherence,
                         ::testing::Values(2, 9, 27));

/** The whole taxonomy, statistically: campaigns with the same seed
 * are identical; disjoint outcomes sum to 1. */
TEST(CampaignProperties, DeterministicAndExhaustive)
{
    RunCtx c = runCtx(workloads::randomProgram(5));
    faults::FaultInjector inj(c.program, c.trace, c.output);
    faults::CampaignConfig cfg;
    cfg.samples = 200;
    cfg.payloadOnly = false;  // include valid/parity/pi bits
    auto a = faults::runCampaign(inj, c.trace, cfg);
    auto b = faults::runCampaign(inj, c.trace, cfg);
    EXPECT_EQ(a.counts, b.counts);
    std::uint64_t total = 0;
    for (auto v : a.counts)
        total += v;
    EXPECT_EQ(total, cfg.samples);
}

/** Squashing strictly reduces (or preserves) pre-read exposure on
 * every benchmark, never increases it. */
class SquashMonotonicity
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SquashMonotonicity, PreReadExposureNeverGrows)
{
    isa::Program program =
        workloads::buildBenchmark(GetParam(), 30000);
    RunCtx base = runCtx(program, "none", 90000);
    RunCtx squash = runCtx(program, "l0", 90000);
    auto pre_read = [](const cpu::SimTrace &t) {
        std::uint64_t sum = 0;
        for (const auto &inc : t.incarnations) {
            if (inc.issueCycle != cpu::noCycle32)
                sum += inc.issueCycle - inc.enqueueCycle;
        }
        return sum;
    };
    // Allow a small tolerance: refetched incarnations can wait
    // slightly longer in degenerate cases.
    EXPECT_LE(pre_read(squash.trace),
              pre_read(base.trace) * 11 / 10)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    SomeBenchmarks, SquashMonotonicity,
    ::testing::Values("mcf", "ammp", "equake", "gzip", "cc",
                      "swim"));

/**
 * Reference fold: the production AVF fold (class-summed, unrolled,
 * and SIMD-batched where the host supports it) must match a naive
 * per-bit-cycle integration exactly. The reference walks every
 * incarnation with the table-free classifyIncarnation() and adds
 * each clipped resident cycle's bit rates one cycle at a time —
 * no class summing, no rate factoring, no batching — so any
 * reassociation or clipping bug in the optimized kernels shows up
 * as a mismatch here.
 */
namespace
{

avf::AvfResult
referenceFold(const cpu::SimTrace &trace,
              const avf::DeadnessResult &deadness)
{
    avf::AvfResult r;
    constexpr std::uint64_t bits = isa::encoding::payloadBits;
    r.windowCycles = trace.endCycle - trace.startCycle;
    r.totalBitCycles = static_cast<std::uint64_t>(trace.iqEntries) *
                       bits * r.windowCycles;
    std::uint64_t occupied = 0;
    for (const auto &inc : trace.incarnations) {
        avf::IncarnationClass c =
            avf::classifyIncarnation(trace, deadness, inc);
        for (std::uint64_t cy = c.preLo; cy < c.preHi; ++cy) {
            occupied += bits;
            if (!c.issued) {
                r.squashedUnread += bits;
                continue;
            }
            r.ace += c.aceRate;
            r.aceRefined += c.aceRefinedRate;
            r.unAceRead[static_cast<int>(c.source)] +=
                c.unAceReadRate;
        }
        for (std::uint64_t cy = c.postLo; cy < c.postHi; ++cy) {
            occupied += bits;
            r.exAce += bits;
        }
        if (c.issued && c.fddRegExposure && c.preCycles() > 0)
            r.fddRegExposures.push_back(
                {c.preCycles() * c.unAceReadRate,
                 c.overwriteDist});
    }
    r.idle = r.totalBitCycles - occupied;
    return r;
}

void
expectFoldsEqual(const avf::AvfResult &got,
                 const avf::AvfResult &ref, const std::string &tag)
{
    EXPECT_EQ(got.windowCycles, ref.windowCycles) << tag;
    EXPECT_EQ(got.totalBitCycles, ref.totalBitCycles) << tag;
    EXPECT_EQ(got.idle, ref.idle) << tag;
    EXPECT_EQ(got.exAce, ref.exAce) << tag;
    EXPECT_EQ(got.squashedUnread, ref.squashedUnread) << tag;
    EXPECT_EQ(got.ace, ref.ace) << tag;
    EXPECT_EQ(got.aceRefined, ref.aceRefined) << tag;
    for (int s = 0; s < avf::numUnAceSources; ++s) {
        EXPECT_EQ(got.unAceRead[s], ref.unAceRead[s]) << tag;
        EXPECT_EQ(got.unAceUnread[s], ref.unAceUnread[s]) << tag;
    }
    ASSERT_EQ(got.fddRegExposures.size(),
              ref.fddRegExposures.size())
        << tag;
    for (std::size_t i = 0; i < got.fddRegExposures.size(); ++i) {
        EXPECT_EQ(got.fddRegExposures[i].bitCycles,
                  ref.fddRegExposures[i].bitCycles)
            << tag << " exposure " << i;
        EXPECT_EQ(got.fddRegExposures[i].overwriteDist,
                  ref.fddRegExposures[i].overwriteDist)
            << tag << " exposure " << i;
    }
    // The derived AVFs ride on the integer totals; the issue's
    // acceptance bound is 1e-12 on these.
    EXPECT_NEAR(got.sdcAvf(), ref.sdcAvf(), 1e-12) << tag;
    EXPECT_NEAR(got.sdcAvfRefined(), ref.sdcAvfRefined(), 1e-12)
        << tag;
    EXPECT_NEAR(got.dueAvf(), ref.dueAvf(), 1e-12) << tag;
    EXPECT_NEAR(got.falseDueAvf(), ref.falseDueAvf(), 1e-12) << tag;
    EXPECT_NEAR(got.idleFraction(), ref.idleFraction(), 1e-12)
        << tag;
    EXPECT_NEAR(got.exAceFraction(), ref.exAceFraction(), 1e-12)
        << tag;
}

} // namespace

/** Every surrogate, two window shapes: the optimized fold equals
 * the naive per-bit-cycle reference. The warmup variant puts the
 * window start mid-run so residencies straddle the boundary and the
 * batched kernel's clipping fallback is exercised. */
class ReferenceFold : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ReferenceFold, OptimizedFoldMatchesNaivePerBitCycleFold)
{
    isa::Program program =
        workloads::buildBenchmark(GetParam(), 12000);

    cpu::PipelineParams params;
    params.maxInsts = 40000;
    auto policy = core::makeTriggerPolicy("l0", "squash");

    // Whole-window trace, with squashing for class variety.
    {
        cpu::InOrderPipeline pipe(program, params);
        pipe.setExposurePolicy(policy.get());
        cpu::SimTrace trace = pipe.run();
        trace.program = &program;
        avf::DeadnessResult dead = avf::analyzeDeadness(trace);
        expectFoldsEqual(avf::computeAvf(trace, dead),
                         referenceFold(trace, dead),
                         GetParam() + "/whole");
    }

    // Warmup window: startCycle > 0 exercises the clip path.
    {
        cpu::InOrderPipeline pipe(program, params);
        pipe.setExposurePolicy(policy.get());
        pipe.setWarmupInsts(3000);
        cpu::SimTrace trace = pipe.run();
        trace.program = &program;
        ASSERT_GT(trace.startCycle, 0u) << GetParam();
        avf::DeadnessResult dead = avf::analyzeDeadness(trace);
        expectFoldsEqual(avf::computeAvf(trace, dead),
                         referenceFold(trace, dead),
                         GetParam() + "/warmup");
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ReferenceFold,
    ::testing::ValuesIn(workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });
