/**
 * @file
 * Tests for the branch predictors, BTB and return-address stack,
 * including speculative-history repair and checkpoint restore.
 */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "sim/rng.hh"

using namespace ser;
using namespace ser::branch;

TEST(Bimodal, LearnsABiasedBranch)
{
    BimodalPredictor pred(256);
    for (int i = 0; i < 8; ++i) {
        Lookup l = pred.predict(10);
        pred.update(10, true, l);
    }
    EXPECT_TRUE(pred.predict(10).taken);
    for (int i = 0; i < 8; ++i) {
        Lookup l = pred.predict(10);
        pred.update(10, false, l);
    }
    EXPECT_FALSE(pred.predict(10).taken);
}

TEST(Gshare, LearnsAHistoryPattern)
{
    // Alternating taken/not-taken is invisible to bimodal but easy
    // for a history predictor.
    GsharePredictor pred(4096, 8);
    bool outcome = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        Lookup l = pred.predict(77);
        if (i >= 200)
            correct += l.taken == outcome;
        pred.update(77, outcome, l);
        if (l.taken != outcome)
            pred.restoreHistory(l, outcome);
    }
    EXPECT_GT(correct, 190);  // near-perfect after warmup
}

TEST(Gshare, HistoryRepairAfterSquash)
{
    GsharePredictor pred(1024, 8);
    Lookup a = pred.predict(1);
    (void)pred.predict(2);
    (void)pred.predict(3);
    // Squash everything younger than branch 1 and set its outcome.
    pred.restoreHistory(a, true);
    EXPECT_EQ(pred.currentHistory(), ((a.ghr << 1) | 1) & 0xffULL);

    // Rewinding (branch 1 itself squashed, to be re-predicted).
    pred.rewindHistory(a);
    EXPECT_EQ(pred.currentHistory(), a.ghr);
}

TEST(Tournament, TracksTheBetterComponent)
{
    TournamentPredictor pred(4096, 8);
    // Alternating pattern again: gshare wins, chooser should follow.
    bool outcome = false;
    int correct = 0;
    for (int i = 0; i < 600; ++i) {
        outcome = !outcome;
        Lookup l = pred.predict(99);
        if (i >= 300)
            correct += l.taken == outcome;
        pred.update(99, outcome, l);
        if (l.taken != outcome)
            pred.restoreHistory(l, outcome);
    }
    EXPECT_GT(correct, 280);
}

TEST(Predictor, FactoryMakesAllKinds)
{
    for (const char *kind : {"bimodal", "gshare", "tournament"}) {
        auto p = makeDirectionPredictor(kind, 1024, 8, nullptr);
        ASSERT_NE(p, nullptr) << kind;
        (void)p->predict(5);
    }
}

TEST(Predictor, AccuracyAccounting)
{
    BimodalPredictor pred(64);
    pred.recordResolution(true);
    pred.recordResolution(true);
    pred.recordResolution(false);
    EXPECT_NEAR(pred.accuracy(), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(pred.mispredicts(), 1u);
}

TEST(Btb, StoresAndTagsTargets)
{
    Btb btb(64);
    EXPECT_FALSE(btb.lookup(5).has_value());
    btb.update(5, 1234);
    ASSERT_TRUE(btb.lookup(5).has_value());
    EXPECT_EQ(*btb.lookup(5), 1234u);
    // A colliding pc (5 + 64) must not alias thanks to the tag.
    EXPECT_FALSE(btb.lookup(5 + 64).has_value());
    btb.update(5 + 64, 999);
    EXPECT_EQ(*btb.lookup(5 + 64), 999u);
    EXPECT_FALSE(btb.lookup(5).has_value());  // evicted
}

TEST(Ras, PushPopNesting)
{
    Ras ras(16);
    ras.push(100);
    ras.push(200);
    ras.push(300);
    EXPECT_EQ(ras.pop(), 300u);
    EXPECT_EQ(ras.pop(), 200u);
    ras.push(250);
    EXPECT_EQ(ras.pop(), 250u);
    EXPECT_EQ(ras.pop(), 100u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u);  // empty pop is defined
}

TEST(Ras, CheckpointRestoreUndoesSpeculation)
{
    Ras ras(16);
    ras.push(1);
    ras.push(2);
    RasCheckpoint cp = ras.checkpoint();
    // Speculative pop then push (a wrong-path ret + call).
    (void)ras.pop();
    ras.push(77);
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 1u);
}

TEST(Ras, WrapsAroundWithoutCorruptingRecentEntries)
{
    Ras ras(4);
    for (std::uint32_t i = 1; i <= 6; ++i)
        ras.push(i * 10);
    // The four most recent survive.
    EXPECT_EQ(ras.pop(), 60u);
    EXPECT_EQ(ras.pop(), 50u);
    EXPECT_EQ(ras.pop(), 40u);
    EXPECT_EQ(ras.pop(), 30u);
    EXPECT_TRUE(ras.empty());
}
