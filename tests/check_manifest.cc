/**
 * @file
 * Standalone validator for run-manifest JSON files, used by the
 * manifest_validate ctest case (and handy interactively:
 * `check_manifest out.json`). Verifies the schema the bench binaries
 * emit via harness::JsonReport:
 *
 *  - the document parses and carries schema_version 1;
 *  - every run has the config, seed, per-phase timings, AVF block
 *    and stats tree the manifest promises;
 *  - when an intervals file is advertised, every JSONL line parses,
 *    the epochs chain (each epoch starts where the previous ended)
 *    and, per run, the per-epoch committed counts sum exactly to the
 *    run's committed_insts — the invariant that makes the time
 *    series trustworthy.
 *
 * Exits 0 when the manifest is valid, 1 with a message otherwise.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hh"

using ser::json::JsonValue;

namespace
{

int failures = 0;

void
fail(const std::string &what)
{
    std::cerr << "check_manifest: " << what << "\n";
    ++failures;
}

/** Fetch a member of the given kind, reporting a failure if absent. */
const JsonValue *
need(const JsonValue &obj, const std::string &name,
     JsonValue::Kind kind, const std::string &where)
{
    const JsonValue *v = obj.find(name);
    if (!v) {
        fail(where + ": missing member '" + name + "'");
        return nullptr;
    }
    if (v->kind != kind) {
        fail(where + ": member '" + name + "' has the wrong type");
        return nullptr;
    }
    return v;
}

bool
checkRun(const JsonValue &run, std::size_t index,
         std::string *benchmark, std::uint64_t *committed,
         std::uint64_t *epochs)
{
    std::ostringstream tag;
    tag << "runs[" << index << "]";
    const std::string where = tag.str();

    const JsonValue *bench =
        need(run, "benchmark", JsonValue::Kind::String, where);
    if (bench)
        *benchmark = bench->string;
    need(run, "seed", JsonValue::Kind::Number, where);
    need(run, "ipc", JsonValue::Kind::Number, where);
    need(run, "window_cycles", JsonValue::Kind::Number, where);

    const JsonValue *committed_v =
        need(run, "committed_insts", JsonValue::Kind::Number, where);
    if (committed_v)
        *committed = static_cast<std::uint64_t>(committed_v->number);

    const JsonValue *config =
        need(run, "config", JsonValue::Kind::Object, where);
    if (config) {
        need(*config, "dynamic_target", JsonValue::Kind::Number,
             where + ".config");
        need(*config, "warmup_insts", JsonValue::Kind::Number,
             where + ".config");
        need(*config, "trigger_level", JsonValue::Kind::String,
             where + ".config");
        need(*config, "interval_cycles", JsonValue::Kind::Number,
             where + ".config");
    }

    const JsonValue *timings =
        need(run, "timings_seconds", JsonValue::Kind::Object, where);
    if (timings) {
        const JsonValue *total =
            need(*timings, "total", JsonValue::Kind::Number,
                 where + ".timings_seconds");
        if (total && total->number <= 0.0)
            fail(where + ": total phase time is not positive");
        if (!timings->find("pipeline"))
            fail(where + ": no 'pipeline' phase timing");
    }

    const JsonValue *avf =
        need(run, "avf", JsonValue::Kind::Object, where);
    if (avf) {
        for (const char *k : {"sdc_avf", "true_due_avf",
                              "false_due_avf", "idle_fraction"}) {
            const JsonValue *v = need(*avf, k,
                                      JsonValue::Kind::Number,
                                      where + ".avf");
            if (v && (v->number < 0.0 || v->number > 1.0))
                fail(where + ".avf." + k + " outside [0, 1]");
        }
    }

    const JsonValue *stats = run.find("stats");
    if (!stats)
        fail(where + ": missing member 'stats'");
    else if (!stats->isObject() && !stats->isNull())
        fail(where + ": 'stats' is neither an object nor null");

    const JsonValue *intervals =
        need(run, "intervals", JsonValue::Kind::Object, where);
    if (intervals) {
        const JsonValue *n =
            need(*intervals, "epochs", JsonValue::Kind::Number,
                 where + ".intervals");
        if (n)
            *epochs = static_cast<std::uint64_t>(n->number);
    }
    return failures == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::cerr << "usage: check_manifest MANIFEST.json\n";
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        fail(std::string("cannot open '") + argv[1] + "'");
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    JsonValue doc;
    std::string err;
    if (!ser::json::parseJson(buf.str(), &doc, &err)) {
        fail("manifest does not parse: " + err);
        return 1;
    }
    if (!doc.isObject()) {
        fail("manifest root is not an object");
        return 1;
    }

    const JsonValue *version =
        need(doc, "schema_version", JsonValue::Kind::Number,
             "manifest");
    if (version && version->number != 1.0)
        fail("unknown schema_version");
    need(doc, "args", JsonValue::Kind::Object, "manifest");
    need(doc, "tables", JsonValue::Kind::Object, "manifest");

    const JsonValue *runs =
        need(doc, "runs", JsonValue::Kind::Array, "manifest");

    std::vector<std::string> run_benchmarks;
    std::vector<std::uint64_t> run_committed;
    std::vector<std::uint64_t> run_epochs;
    if (runs) {
        for (std::size_t i = 0; i < runs->array.size(); ++i) {
            std::string benchmark;
            std::uint64_t committed = 0, epochs = 0;
            checkRun(runs->array[i], i, &benchmark, &committed,
                     &epochs);
            run_benchmarks.push_back(benchmark);
            run_committed.push_back(committed);
            run_epochs.push_back(epochs);
        }
    }

    const JsonValue *intervals_file = doc.find("intervals_file");
    if (intervals_file) {
        if (!intervals_file->isString()) {
            fail("'intervals_file' is not a string");
            return 1;
        }
        // The manifest names its JSONL sibling by bare file name;
        // resolve it relative to the manifest's own directory so the
        // checker works from any cwd.
        std::string jl_path = intervals_file->string;
        std::string manifest(argv[1]);
        std::size_t slash = manifest.find_last_of('/');
        if (slash != std::string::npos && jl_path.find('/') == std::string::npos)
            jl_path = manifest.substr(0, slash + 1) + jl_path;
        std::ifstream jl(jl_path);
        if (!jl) {
            fail("cannot open intervals file '" + jl_path + "'");
            return 1;
        }

        // Lines are appended in run order: the first epochs[0] lines
        // belong to runs[0], and so on. Walk them run by run and
        // check the chaining and committed-sum invariants.
        std::string line;
        std::size_t run = 0, epoch_in_run = 0;
        std::uint64_t committed_sum = 0, prev_end = 0;
        std::size_t total_lines = 0;
        while (run < run_epochs.size() && run_epochs[run] == 0)
            ++run;
        while (std::getline(jl, line)) {
            ++total_lines;
            if (line.find('\n') != std::string::npos ||
                line.empty()) {
                fail("intervals line " +
                     std::to_string(total_lines) + " is empty");
                continue;
            }
            JsonValue epoch;
            if (!ser::json::parseJson(line, &epoch, &err)) {
                fail("intervals line " +
                     std::to_string(total_lines) +
                     " does not parse: " + err);
                continue;
            }
            if (run >= run_epochs.size()) {
                fail("more interval lines than the runs advertise");
                break;
            }
            const std::string where =
                "intervals line " + std::to_string(total_lines);
            const JsonValue *bench =
                need(epoch, "benchmark", JsonValue::Kind::String,
                     where);
            if (bench && bench->string != run_benchmarks[run])
                fail(where + ": benchmark '" + bench->string +
                     "' does not match run '" +
                     run_benchmarks[run] + "'");
            const JsonValue *idx = need(
                epoch, "epoch", JsonValue::Kind::Number, where);
            if (idx && static_cast<std::size_t>(idx->number) !=
                           epoch_in_run)
                fail(where + ": epoch index out of sequence");
            const JsonValue *start = need(
                epoch, "start_cycle", JsonValue::Kind::Number,
                where);
            const JsonValue *end = need(
                epoch, "end_cycle", JsonValue::Kind::Number, where);
            if (start && end) {
                if (end->number <= start->number)
                    fail(where + ": empty or inverted epoch");
                if (epoch_in_run > 0 && start->number != prev_end)
                    fail(where + ": epoch does not start where the "
                                 "previous one ended");
                prev_end = end->number;
            }
            const JsonValue *committed = need(
                epoch, "committed", JsonValue::Kind::Number, where);
            if (committed)
                committed_sum +=
                    static_cast<std::uint64_t>(committed->number);

            ++epoch_in_run;
            if (epoch_in_run == run_epochs[run]) {
                if (committed_sum != run_committed[run])
                    fail("run '" + run_benchmarks[run] +
                         "': per-epoch committed sum " +
                         std::to_string(committed_sum) +
                         " != committed_insts " +
                         std::to_string(run_committed[run]));
                ++run;
                while (run < run_epochs.size() &&
                       run_epochs[run] == 0)
                    ++run;
                epoch_in_run = 0;
                committed_sum = 0;
            }
        }
        std::uint64_t expected_lines = 0;
        for (std::uint64_t n : run_epochs)
            expected_lines += n;
        if (total_lines != expected_lines)
            fail("intervals file has " +
                 std::to_string(total_lines) + " lines, runs " +
                 "advertise " + std::to_string(expected_lines));
        if (expected_lines == 0)
            fail("intervals file advertised but no run has epochs");
    }

    if (failures) {
        std::cerr << "check_manifest: " << failures
                  << " problem(s) in '" << argv[1] << "'\n";
        return 1;
    }
    std::cout << "check_manifest: '" << argv[1] << "' ok ("
              << run_benchmarks.size() << " runs)\n";
    return 0;
}
