/**
 * @file
 * The telemetry layer, tested bottom-up: the sim::prof primitives
 * (counter interning, per-thread merge, scoped-timer nesting, the
 * disabled fast path) and the harness::MetricsRegistry on top
 * (golden Prometheus exposition bytes, name mapping, label
 * escaping, gauge semantics).
 *
 * The exposition golden test pins the exact serialization — sorted
 * families, sorted series, HELP/TYPE headers, shortest-round-trip
 * doubles — because tests/check_metrics.cc byte-compares snapshots
 * across --jobs counts; any formatting change must be deliberate.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "harness/metrics.hh"
#include "sim/prof.hh"

using namespace ser;

// ---------------------------------------------------------------
// sim::prof

namespace
{

/** Every prof test runs against the same process-wide registry, so
 * each starts from zeroed values and leaves profiling off. */
class ProfTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        prof::setEnabled(true);
        prof::reset();
    }
    void TearDown() override
    {
        prof::setEnabled(false);
        prof::reset();
    }

    static std::uint64_t counterValue(const std::string &name)
    {
        for (const prof::CounterSample &c :
             prof::snapshot().counters) {
            if (c.name == name)
                return c.value;
        }
        ADD_FAILURE() << "counter '" << name
                      << "' not in snapshot";
        return 0;
    }

    static const prof::ScopeSample *scope(const prof::Snapshot &snap,
                                          const std::string &path)
    {
        for (const prof::ScopeSample &s : snap.scopes) {
            if (s.path == path)
                return &s;
        }
        return nullptr;
    }
};

} // namespace

TEST_F(ProfTest, CounterInterningIsByName)
{
    prof::Counter a("test.interned", "first");
    prof::Counter b("test.interned", "second wins nothing");
    EXPECT_EQ(a.id(), b.id());

    a.add(3);
    b.add(4);
    EXPECT_EQ(counterValue("test.interned"), 7u);
}

TEST_F(ProfTest, InternedCountersAppearInSnapshotsAsZero)
{
    prof::Counter c("test.never_hit", "schema, not data");
    // Never add()ed — but snapshots must still carry the name, so
    // two runs that exercise different code paths stay structurally
    // identical.
    EXPECT_EQ(counterValue("test.never_hit"), 0u);
}

TEST_F(ProfTest, DisabledAddIsANoOp)
{
    prof::Counter c("test.disabled");
    prof::setEnabled(false);
    c.add(100);
    EXPECT_EQ(counterValue("test.disabled"), 0u);
    prof::setEnabled(true);
    c.add(1);
    EXPECT_EQ(counterValue("test.disabled"), 1u);
}

TEST_F(ProfTest, ThreadCountsMergeBySummation)
{
    prof::Counter c("test.merge");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 1000; ++i)
                c.add(2);
        });
    }
    // Joined threads retire their buffers into the global totals;
    // the snapshot below must see the full sum either way.
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(counterValue("test.merge"), 8000u);
}

TEST_F(ProfTest, ScopedTimersRecordHierarchicalPaths)
{
    {
        SER_PROF_SCOPE("outer");
        {
            SER_PROF_SCOPE("inner");
        }
        {
            SER_PROF_SCOPE("inner");
        }
    }
    {
        SER_PROF_SCOPE("outer");
    }

    prof::Snapshot snap = prof::snapshot();
    const prof::ScopeSample *outer = scope(snap, "outer");
    const prof::ScopeSample *inner = scope(snap, "outer/inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->calls, 2u);
    EXPECT_EQ(inner->calls, 2u);
    EXPECT_GE(outer->seconds, inner->seconds);
    // "inner" never ran as a root scope.
    EXPECT_EQ(scope(snap, "inner"), nullptr);
}

TEST_F(ProfTest, ScopePathsAreSeparatePerThread)
{
    SER_PROF_SCOPE("main_thread");
    std::thread([] {
        // A worker's scopes do not nest under the spawning thread's
        // open path — exactly the property that keeps scope paths
        // identical across --jobs 1 and --jobs 4.
        SER_PROF_SCOPE("worker");
    }).join();

    prof::Snapshot snap = prof::snapshot();
    EXPECT_NE(scope(snap, "worker"), nullptr);
    EXPECT_EQ(scope(snap, "main_thread/worker"), nullptr);
}

TEST_F(ProfTest, DisabledScopesRecordNothing)
{
    prof::setEnabled(false);
    {
        SER_PROF_SCOPE("ghost");
    }
    prof::setEnabled(true);
    EXPECT_EQ(scope(prof::snapshot(), "ghost"), nullptr);
}

TEST_F(ProfTest, ResetZeroesValuesButKeepsNames)
{
    prof::Counter c("test.reset_me");
    c.add(9);
    {
        SER_PROF_SCOPE("reset_scope");
    }
    prof::reset();
    EXPECT_EQ(counterValue("test.reset_me"), 0u);
    EXPECT_TRUE(prof::snapshot().scopes.empty());
}

// ---------------------------------------------------------------
// harness::MetricsRegistry

TEST(PromCounterName, MapsSpeedAndProfNamespaces)
{
    EXPECT_EQ(harness::promCounterName("speed.cycles_skipped"),
              "ser_speed_cycles_skipped_total");
    EXPECT_EQ(harness::promCounterName("pipeline.committed_insts"),
              "ser_prof_pipeline_committed_insts_total");
    // Dots beyond the namespace sanitize to underscores.
    EXPECT_EQ(harness::promCounterName("speed.tick.rate"),
              "ser_speed_tick_rate_total");
    EXPECT_EQ(harness::promCounterName("deadness.commits_scanned"),
              "ser_prof_deadness_commits_scanned_total");
}

TEST(MetricsRegistry, GoldenExposition)
{
    harness::MetricsRegistry reg;
    reg.add("ser_runs_total", 3, "Experiment runs by final status.",
            "status", "ok");
    reg.add("ser_runs_total", 1, "ignored: first help wins",
            "status", "failed");
    reg.setGauge("ser_dyninst_pool_high_water", 172,
                 "Largest in-flight pool size.");
    reg.addSeconds("ser_run_phase_seconds_total", 0.25,
                   "Wall-clock seconds per phase.", "phase",
                   "pipeline");

    std::ostringstream os;
    reg.writePrometheus(os);
    EXPECT_EQ(
        os.str(),
        "# HELP ser_dyninst_pool_high_water Largest in-flight pool "
        "size.\n"
        "# TYPE ser_dyninst_pool_high_water gauge\n"
        "ser_dyninst_pool_high_water 172\n"
        "# HELP ser_run_phase_seconds_total Wall-clock seconds per "
        "phase.\n"
        "# TYPE ser_run_phase_seconds_total counter\n"
        "ser_run_phase_seconds_total{phase=\"pipeline\"} 0.25\n"
        "# HELP ser_runs_total Experiment runs by final status.\n"
        "# TYPE ser_runs_total counter\n"
        "ser_runs_total{status=\"failed\"} 1\n"
        "ser_runs_total{status=\"ok\"} 3\n");
}

TEST(MetricsRegistry, CountersAccumulateGaugesSet)
{
    harness::MetricsRegistry reg;
    reg.add("ser_things_total", 2);
    reg.add("ser_things_total", 3);
    reg.setGauge("ser_level", 7);
    reg.setGauge("ser_level", 4);  // absolute: last set wins
    reg.maxGauge("ser_high_water", 5);
    reg.maxGauge("ser_high_water", 3);  // below the mark: ignored
    reg.maxGauge("ser_high_water", 9);

    std::ostringstream os;
    reg.writePrometheus(os);
    EXPECT_EQ(os.str(),
              "# TYPE ser_high_water gauge\n"
              "ser_high_water 9\n"
              "# TYPE ser_level gauge\n"
              "ser_level 4\n"
              "# TYPE ser_things_total counter\n"
              "ser_things_total 5\n");
}

TEST(MetricsRegistry, NamesSanitizeAndLabelValuesEscape)
{
    harness::MetricsRegistry reg;
    // A dotted name (prof style) must sanitize to the exposition
    // alphabet; label values must escape quotes and backslashes.
    reg.add("ser.dotted.name", 1, "", "bench", "say \"hi\"\\");
    std::ostringstream os;
    reg.writePrometheus(os);
    EXPECT_EQ(os.str(),
              "# TYPE ser_dotted_name counter\n"
              "ser_dotted_name{bench=\"say \\\"hi\\\"\\\\\"} 1\n");
}

TEST(MetricsRegistry, SecondsUseShortestRoundTripFormatting)
{
    harness::MetricsRegistry reg;
    reg.addSeconds("ser_a_seconds_total", 0.1);
    reg.addSeconds("ser_a_seconds_total", 0.2);
    std::ostringstream os;
    reg.writePrometheus(os);
    // 0.1 + 0.2 is famously not 0.3; the formatter prints the
    // shortest string that round-trips the actual double.
    EXPECT_EQ(os.str(),
              "# TYPE ser_a_seconds_total counter\n"
              "ser_a_seconds_total 0.30000000000000004\n");
}

TEST(MetricsRegistry, ClearDropsMetricsButKeepsThePath)
{
    harness::MetricsRegistry reg;
    reg.setOutputPath("somewhere.prom");
    reg.add("ser_x_total", 1);
    reg.clear();
    std::ostringstream os;
    reg.writePrometheus(os);
    EXPECT_EQ(os.str(), "");
    EXPECT_EQ(reg.outputPath(), "somewhere.prom");
}

TEST(MetricsRegistry, UnarmedSnapshotWritesNothing)
{
    harness::MetricsRegistry reg;
    EXPECT_FALSE(reg.writeSnapshot());
}
