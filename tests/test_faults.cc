/**
 * @file
 * Tests for the fault-injection library: residency indexing, outcome
 * classification of hand-placed faults, Wilson intervals, and the
 * statistical cross-validation of injection against the analytical
 * AVF (injection must not exceed the conservative ACE bound).
 */

#include <gtest/gtest.h>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "cpu/pipeline.hh"
#include "faults/campaign.hh"
#include "faults/injector.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"

using namespace ser;
using namespace ser::faults;

namespace
{

struct InjRun
{
    isa::Program program;
    cpu::SimTrace trace;
    std::vector<std::uint64_t> golden;
};

InjRun
makeRun(const std::string &src)
{
    InjRun r;
    r.program = isa::assembleOrDie(src);
    isa::Executor golden(r.program);
    EXPECT_EQ(golden.run(3000000), isa::Termination::Halted);
    r.golden = golden.state().output();

    cpu::PipelineParams params;
    params.maxInsts = 3000000;
    cpu::InOrderPipeline pipe(r.program, params);
    r.trace = pipe.run();
    r.trace.program = &r.program;
    return r;
}

} // namespace

TEST(ResidencyIndex, FindsOccupantsByEntryAndCycle)
{
    InjRun r = makeRun(R"(
        movi r4 = 1
        movi r5 = 2
        add r6 = r4, r5
        out r6
        halt
    )");
    ResidencyIndex index(r.trace);
    for (std::size_t i = 0; i < r.trace.incarnations.size(); ++i) {
        const cpu::IncarnationRecord inc = r.trace.incarnations[i];
        const std::int64_t found =
            index.find(inc.iqEntry, inc.enqueueCycle);
        ASSERT_NE(found, ResidencyIndex::noIncarnation);
        EXPECT_EQ(r.trace
                      .incarnations[static_cast<std::size_t>(found)]
                      .staticIdx,
                  inc.staticIdx);
        // Outside the residency: either empty or someone else.
        const std::int64_t after =
            index.find(inc.iqEntry, inc.evictCycle);
        if (after != ResidencyIndex::noIncarnation) {
            EXPECT_NE(after, found);
        }
    }
    EXPECT_EQ(index.find(0, 1u << 30),
              ResidencyIndex::noIncarnation);
}

TEST(Injector, IdleEntryIsBenign)
{
    InjRun r = makeRun("movi r4 = 1\nout r4\nhalt\n");
    FaultInjector inj(r.program, r.trace, r.golden);
    // An entry far beyond what this tiny program uses.
    FaultSite site{50, 5, r.trace.endCycle - 1};
    auto fr = inj.classify(site, Protection::Parity);
    EXPECT_EQ(fr.outcome, Outcome::BenignNoBit);
}

TEST(Injector, AceBitIsSdcOrTrueDue)
{
    InjRun r = makeRun("movi r4 = 57\nout r4\nhalt\n");
    FaultInjector inj(r.program, r.trace, r.golden);
    // Find the movi's committed residency and strike an imm bit
    // before its read.
    for (const auto &inc : r.trace.incarnations) {
        if (inc.staticIdx != 0 || !(inc.flags & cpu::incCommitted))
            continue;
        ASSERT_NE(inc.issueCycle, cpu::noCycle32);
        ASSERT_GT(inc.issueCycle, inc.enqueueCycle);
        FaultSite site{inc.iqEntry, 0, inc.enqueueCycle};
        auto unprot = inj.classify(site, Protection::None);
        EXPECT_EQ(unprot.outcome, Outcome::Sdc);
        auto parity = inj.classify(site, Protection::Parity);
        EXPECT_EQ(parity.outcome, Outcome::TrueDue);
        return;
    }
    FAIL() << "movi residency not found";
}

TEST(Injector, DeadInstructionImmBitIsBenignOrFalseDue)
{
    InjRun r = makeRun(R"(
        movi r4 = 1
        movi r4 = 2
        out r4
        halt
    )");
    FaultInjector inj(r.program, r.trace, r.golden);
    for (const auto &inc : r.trace.incarnations) {
        if (inc.staticIdx != 0 || !(inc.flags & cpu::incCommitted))
            continue;
        FaultSite site{inc.iqEntry, 3, inc.enqueueCycle};
        EXPECT_EQ(inj.classify(site, Protection::None).outcome,
                  Outcome::BenignNoError);
        EXPECT_EQ(inj.classify(site, Protection::Parity).outcome,
                  Outcome::FalseDue);
        return;
    }
    FAIL() << "residency not found";
}

TEST(Injector, ExAcePhaseIsNotRead)
{
    InjRun r = makeRun("movi r4 = 57\nout r4\nhalt\n");
    FaultInjector inj(r.program, r.trace, r.golden);
    for (const auto &inc : r.trace.incarnations) {
        if (!(inc.flags & cpu::incCommitted))
            continue;
        if (inc.issueCycle + 1 >= inc.evictCycle)
            continue;
        FaultSite site{inc.iqEntry, 0, inc.issueCycle};
        EXPECT_EQ(inj.classify(site, Protection::Parity).outcome,
                  Outcome::BenignNotRead);
        return;
    }
    FAIL() << "no post-read residency found";
}

TEST(Injector, PiBitStrikeIsFalseDue)
{
    InjRun r = makeRun("movi r4 = 1\nout r4\nhalt\n");
    FaultInjector inj(r.program, r.trace, r.golden);
    for (const auto &inc : r.trace.incarnations) {
        if (!(inc.flags & cpu::incCommitted))
            continue;
        FaultSite site{inc.iqEntry,
                       static_cast<std::uint8_t>(piBit),
                       inc.enqueueCycle};
        EXPECT_EQ(inj.classify(site, Protection::Parity).outcome,
                  Outcome::FalseDue);
        return;
    }
}

TEST(Injector, ParityBitStrikeIsFalseDueOnlyWithParity)
{
    InjRun r = makeRun("movi r4 = 1\nout r4\nhalt\n");
    FaultInjector inj(r.program, r.trace, r.golden);
    for (const auto &inc : r.trace.incarnations) {
        if (!(inc.flags & cpu::incCommitted))
            continue;
        if (inc.issueCycle <= inc.enqueueCycle)
            continue;
        FaultSite site{inc.iqEntry,
                       static_cast<std::uint8_t>(parityBit),
                       inc.enqueueCycle};
        EXPECT_EQ(inj.classify(site, Protection::Parity).outcome,
                  Outcome::FalseDue);
        EXPECT_EQ(inj.classify(site, Protection::None).outcome,
                  Outcome::BenignNoBit);
        return;
    }
}

TEST(Wilson, KnownValuesAndBounds)
{
    Interval i = wilson(0, 0);
    EXPECT_DOUBLE_EQ(i.lo, 0.0);
    EXPECT_DOUBLE_EQ(i.hi, 1.0);

    i = wilson(50, 100);
    EXPECT_GT(i.lo, 0.40);
    EXPECT_LT(i.hi, 0.60);
    EXPECT_LT(i.lo, 0.5);
    EXPECT_GT(i.hi, 0.5);

    i = wilson(0, 100);
    EXPECT_DOUBLE_EQ(i.lo, 0.0);
    EXPECT_LT(i.hi, 0.05);
}

TEST(Campaign, OutcomeCountsSumToSamples)
{
    InjRun r = makeRun(R"(
        movi r2 = 17
        movi r4 = 100
        loop:
        mul r2 = r2, r2
        addi r2 = r2, 13
        movi r5 = 1
        movi r5 = 2
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r2
        out r5
        halt
    )");
    FaultInjector inj(r.program, r.trace, r.golden);
    CampaignConfig cfg;
    cfg.samples = 300;
    CampaignResult res = runCampaign(inj, r.trace, cfg);
    std::uint64_t sum = 0;
    for (auto c : res.counts)
        sum += c;
    EXPECT_EQ(sum, cfg.samples);
    EXPECT_FALSE(res.summary().empty());
}

TEST(Campaign, InjectionRatesRespectAnalyticalBounds)
{
    // The ACE analysis is conservative: measured SDC from injection
    // must not exceed the analytical SDC AVF (modulo sampling
    // noise), and both must be nontrivial for this ACE-heavy
    // program.
    InjRun r = makeRun(R"(
        movi r2 = 17
        movi r4 = 400
        loop:
        mul r2 = r2, r2
        addi r2 = r2, 13
        xor r6 = r6, r2
        movi r5 = 1
        movi r5 = 2
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r2
        out r6
        halt
    )");
    avf::DeadnessResult dead = avf::analyzeDeadness(r.trace);
    avf::AvfResult avf = avf::computeAvf(r.trace, dead);

    FaultInjector inj(r.program, r.trace, r.golden);
    CampaignConfig cfg;
    cfg.samples = 600;
    cfg.protection = Protection::None;
    CampaignResult res = runCampaign(inj, r.trace, cfg);

    Interval sdc_ci = res.interval(Outcome::Sdc);
    EXPECT_LT(sdc_ci.lo, avf.sdcAvf() + 0.02)
        << "injection SDC " << res.sdcRate() << " vs analytical "
        << avf.sdcAvf();
    EXPECT_GT(res.sdcRate(), 0.0);

    cfg.protection = Protection::Parity;
    CampaignResult pres = runCampaign(inj, r.trace, cfg);
    EXPECT_EQ(pres.count(Outcome::Sdc), 0u);
    Interval due_ci = pres.interval(Outcome::TrueDue);
    EXPECT_LT(due_ci.lo, avf.trueDueAvf() + 0.02);
    EXPECT_GT(pres.dueRate(), 0.0);
}
