/**
 * @file
 * The persistent run-cache tier, bottom to top: the CRC-64/XZ
 * checksum (known-answer vectors, chaining), the raw DiskCache blob
 * store (roundtrip, atomicity-adjacent framing checks, quarantine of
 * corrupted and truncated blobs, stale-schema clean misses,
 * filename-bucket key comparison), the cache codec (byte-canonical
 * encodings of every section's artifact type, proven by end-to-end
 * equality), and the RunCache integration (disk_hit outcome and
 * per-tier counters across a simulated process restart).
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cache_codec.hh"
#include "harness/disk_cache.hh"
#include "harness/experiment.hh"
#include "harness/run_cache.hh"
#include "sim/crc64.hh"
#include "workloads/suite.hh"

using namespace ser;

// ---------------------------------------------------------------
// CRC-64/XZ

TEST(Crc64, KnownAnswerVectors)
{
    // The CRC-64/XZ check value (reveng catalogue): the ASCII
    // digits "123456789".
    EXPECT_EQ(crc64(0, "123456789", 9), 0x995DC9BBDF1939FAull);
    // Empty input is the identity.
    EXPECT_EQ(crc64(0, "", 0), 0ull);
    // A single zero byte is not (the reflected ~0 init/xorout see
    // it).
    EXPECT_NE(crc64(0, "\0", 1), 0ull);
}

TEST(Crc64, ChainingMatchesOneShot)
{
    const char *text = "The quick brown fox jumps over the lazy dog";
    std::size_t len = std::string(text).size();
    std::uint64_t oneshot = crc64(0, text, len);
    for (std::size_t split = 0; split <= len; ++split) {
        std::uint64_t part = crc64(0, text, split);
        EXPECT_EQ(crc64(part, text + split, len - split), oneshot)
            << "split at " << split;
    }
}

TEST(Crc64, SingleBitFlipChangesEveryPrefix)
{
    std::string data(256, '\0');
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<char>(i * 37 + 11);
    std::uint64_t clean = crc64(0, data.data(), data.size());
    std::string flipped = data;
    flipped[100] ^= 0x10;
    EXPECT_NE(crc64(0, flipped.data(), flipped.size()), clean);
}

// ---------------------------------------------------------------
// DiskCache blob store

namespace
{

class DiskCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        char tmpl[] = "/tmp/ser_disk_cache_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        _dir = tmpl;
        disk().setDirectory(_dir,
                            harness::codec::kSchemaVersion);
        cache().setEnabled(true);
        cache().setCapacity(0);
        cache().clear();
    }

    void TearDown() override
    {
        // Disable the singleton tier so later tests (and suites) are
        // unaffected, then remove the temp tree.
        disk().setDirectory("", harness::codec::kSchemaVersion);
        cache().clear();
        std::string cmd = "rm -rf '" + _dir + "'";
        ASSERT_EQ(std::system(cmd.c_str()), 0);
    }

    static harness::DiskCache &disk()
    {
        return harness::DiskCache::instance();
    }

    static harness::RunCache &cache()
    {
        return harness::RunCache::instance();
    }

    /** The single *.blob under <dir>/<section>/. */
    std::string
    onlyBlob(const std::string &section) const
    {
        std::string dir = _dir + "/" + section;
        DIR *d = ::opendir(dir.c_str());
        if (!d)
            return "";
        std::string found;
        while (dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name.size() > 5 &&
                name.substr(name.size() - 5) == ".blob")
                found = dir + "/" + name;
        }
        ::closedir(d);
        return found;
    }

    static int
    countEntries(const std::string &dir, const std::string &suffix)
    {
        DIR *d = ::opendir(dir.c_str());
        if (!d)
            return 0;
        int n = 0;
        while (dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name.size() >= suffix.size() &&
                name.substr(name.size() - suffix.size()) == suffix)
                ++n;
        }
        ::closedir(d);
        return n;
    }

    std::string _dir;
};

/** load() wrapper capturing the payload bytes. */
harness::DiskCache::LoadResult
loadPayload(const std::string &section, const std::string &key,
            std::string *payload)
{
    return harness::DiskCache::instance().load(
        section, key, [&](const void *data, std::size_t len) {
            payload->assign(static_cast<const char *>(data), len);
            return true;
        });
}

} // namespace

TEST_F(DiskCacheTest, StoreLoadRoundtrip)
{
    std::string payload = "the payload bytes \x01\x02\x00 end";
    payload.push_back('\0');
    std::uint64_t written = disk().store("test", "key-A", payload);
    EXPECT_GT(written, payload.size());  // header + key + payload

    std::string got;
    auto result = loadPayload("test", "key-A", &got);
    EXPECT_EQ(result.status, harness::DiskCache::LoadStatus::Ok);
    EXPECT_EQ(result.payloadBytes, payload.size());
    EXPECT_EQ(got, payload);
}

TEST_F(DiskCacheTest, MissingKeyIsNoEntry)
{
    std::string got;
    auto result = loadPayload("test", "absent", &got);
    EXPECT_EQ(result.status,
              harness::DiskCache::LoadStatus::NoEntry);
}

TEST_F(DiskCacheTest, DisabledTierAnswersDisabled)
{
    disk().setDirectory("", harness::codec::kSchemaVersion);
    EXPECT_FALSE(disk().enabled());
    EXPECT_EQ(disk().store("test", "k", "v"), 0u);
    std::string got;
    EXPECT_EQ(loadPayload("test", "k", &got).status,
              harness::DiskCache::LoadStatus::Disabled);
}

TEST_F(DiskCacheTest, BucketCollisionWithDifferentKeyIsCleanMiss)
{
    // Simulate a CRC64 filename collision: copy key-A's blob to the
    // path key-B hashes to. The stored key bytes say "key-A", so a
    // load for key-B must answer NoEntry — never key-A's payload.
    ASSERT_GT(disk().store("test", "key-A", "payload-A"), 0u);
    std::string src = disk().blobPath("test", "key-A");
    std::string dst = disk().blobPath("test", "key-B");
    ASSERT_NE(src, dst);
    std::string cmd = "cp '" + src + "' '" + dst + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    std::string got;
    EXPECT_EQ(loadPayload("test", "key-B", &got).status,
              harness::DiskCache::LoadStatus::NoEntry);
    // And the impostor file is left alone (it is not corrupt).
    struct stat st;
    EXPECT_EQ(::stat(dst.c_str(), &st), 0);
}

TEST_F(DiskCacheTest, FlippedPayloadByteQuarantines)
{
    ASSERT_GT(disk().store("test", "key-A",
                           std::string(1000, 'x')), 0u);
    std::string path = disk().blobPath("test", "key-A");

    // Flip one byte near the end (inside the payload region).
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        std::streamoff size = f.tellg();
        f.seekp(size - 8);
        char c;
        f.seekg(size - 8);
        f.get(c);
        c ^= 0x40;
        f.seekp(size - 8);
        f.put(c);
    }

    std::string got;
    EXPECT_EQ(loadPayload("test", "key-A", &got).status,
              harness::DiskCache::LoadStatus::Corrupt);
    // The blob was renamed aside, so the next lookup is a clean
    // miss, not a repeated CRC failure.
    struct stat st;
    EXPECT_NE(::stat(path.c_str(), &st), 0);
    EXPECT_EQ(countEntries(_dir + "/test", ".quarantine"), 1);
    EXPECT_EQ(loadPayload("test", "key-A", &got).status,
              harness::DiskCache::LoadStatus::NoEntry);
}

TEST_F(DiskCacheTest, TruncatedBlobQuarantines)
{
    ASSERT_GT(disk().store("test", "key-A",
                           std::string(1000, 'y')), 0u);
    std::string path = disk().blobPath("test", "key-A");
    ASSERT_EQ(::truncate(path.c_str(), 200), 0);

    std::string got;
    EXPECT_EQ(loadPayload("test", "key-A", &got).status,
              harness::DiskCache::LoadStatus::Corrupt);
    EXPECT_EQ(countEntries(_dir + "/test", ".quarantine"), 1);
}

TEST_F(DiskCacheTest, RejectedDecodeQuarantines)
{
    ASSERT_GT(disk().store("test", "key-A", "valid bytes"), 0u);
    // The framing and CRC are intact; the decoder still rejects —
    // exactly what a schema-compatible but semantically bad payload
    // (e.g. an out-of-range enum) looks like.
    auto result = disk().load(
        "test", "key-A",
        [](const void *, std::size_t) { return false; });
    EXPECT_EQ(result.status,
              harness::DiskCache::LoadStatus::Corrupt);
    EXPECT_EQ(countEntries(_dir + "/test", ".quarantine"), 1);
}

TEST_F(DiskCacheTest, StaleSchemaVersionIsCleanMiss)
{
    ASSERT_GT(disk().store("test", "key-A", "old payload"), 0u);
    // A future build with a bumped payload schema must treat the old
    // blob as a miss (and not quarantine it: it is not damaged).
    disk().setDirectory(_dir,
                        harness::codec::kSchemaVersion + 1);
    std::string got;
    EXPECT_EQ(loadPayload("test", "key-A", &got).status,
              harness::DiskCache::LoadStatus::Stale);
    EXPECT_EQ(countEntries(_dir + "/test", ".quarantine"), 0);

    // Re-publishing under the new schema overwrites atomically and
    // hits again.
    ASSERT_GT(disk().store("test", "key-A", "new payload"), 0u);
    EXPECT_EQ(loadPayload("test", "key-A", &got).status,
              harness::DiskCache::LoadStatus::Ok);
    EXPECT_EQ(got, "new payload");
}

TEST_F(DiskCacheTest, LastWriteWinsOnOverwrite)
{
    ASSERT_GT(disk().store("test", "k", "first"), 0u);
    ASSERT_GT(disk().store("test", "k", "second"), 0u);
    std::string got;
    EXPECT_EQ(loadPayload("test", "k", &got).status,
              harness::DiskCache::LoadStatus::Ok);
    EXPECT_EQ(got, "second");
    // No temp files left behind.
    EXPECT_EQ(countEntries(_dir + "/test", ".blob"), 1);
}

// ---------------------------------------------------------------
// RunCache integration: the disk tier across a simulated process
// restart (clear() empties the in-process map exactly like a new
// process, while the blob directory persists).

namespace
{

harness::ExperimentConfig
smallConfig()
{
    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = 5000;
    cfg.warmupInsts = 500;
    return cfg;
}

} // namespace

TEST_F(DiskCacheTest, DiskHitAfterRestartReproducesArtifacts)
{
    auto program = std::make_shared<const isa::Program>(
        workloads::buildBenchmark("gzip", 5000));
    harness::ExperimentConfig cfg = smallConfig();
    cfg.campaign.samples = 200;  // exercise the campaign section too

    auto r1 = harness::runProgram(program, cfg, "gzip");
    EXPECT_EQ(r1.cacheSim, harness::CacheOutcome::Miss);
    auto cold = cache().simCounters();
    EXPECT_EQ(cold.misses, 1u);
    EXPECT_GT(cold.diskBytesWritten, 0u);

    // "Restart": drop the in-process map, keep the blob directory.
    cache().clear();

    auto r2 = harness::runProgram(program, cfg, "gzip");
    EXPECT_EQ(r2.cacheSim, harness::CacheOutcome::DiskHit);
    EXPECT_EQ(r2.cacheDeadness, harness::CacheOutcome::DiskHit);
    EXPECT_EQ(r2.cacheAvf, harness::CacheOutcome::DiskHit);
    EXPECT_EQ(r2.cacheCampaign, harness::CacheOutcome::DiskHit);

    auto warm = cache().simCounters();
    EXPECT_EQ(warm.misses, 0u);
    EXPECT_EQ(warm.diskHits, 1u);
    EXPECT_GT(warm.diskBytesRead, 0u);
    EXPECT_EQ(warm.diskCorrupt, 0u);

    // The decoded artifacts are semantically identical: the codec
    // encodings are canonical (no padding, no pointers), so
    // byte-equal re-encodings prove member-level equality of every
    // artifact the manifest is derived from.
    EXPECT_EQ(r1.ipc, r2.ipc);
    EXPECT_EQ(r1.statsJson, r2.statsJson);
    EXPECT_EQ(r1.statsDump, r2.statsDump);
    EXPECT_EQ(r1.cyclesSkipped, r2.cyclesSkipped);
    EXPECT_EQ(r1.poolHighWater, r2.poolHighWater);
    EXPECT_EQ(
        harness::codec::encodeDeadness(*r1.deadness),
        harness::codec::encodeDeadness(*r2.deadness));
    EXPECT_EQ(harness::codec::encodeAvf(*r1.avf),
              harness::codec::encodeAvf(*r2.avf));
    EXPECT_EQ(harness::codec::encodeCampaign(*r1.campaign),
              harness::codec::encodeCampaign(*r2.campaign));
    // The false-DUE fold is recomputed per run from the shared
    // trace; equal traces must give equal folds.
    EXPECT_EQ(r1.falseDue.baseFalseDueAvf,
              r2.falseDue.baseFalseDueAvf);
    EXPECT_EQ(r1.falseDue.trueDueAvf, r2.falseDue.trueDueAvf);

    // A third lookup in the same "process" is a plain memory hit.
    auto r3 = harness::runProgram(program, cfg, "gzip");
    EXPECT_EQ(r3.cacheSim, harness::CacheOutcome::Hit);
    EXPECT_EQ(r3.trace.get(), r2.trace.get());
}

TEST_F(DiskCacheTest, CorruptBlobFallsBackToComputeAndCounts)
{
    auto program = std::make_shared<const isa::Program>(
        workloads::buildBenchmark("gzip", 5000));
    harness::ExperimentConfig cfg = smallConfig();

    auto r1 = harness::runProgram(program, cfg, "gzip");
    ASSERT_EQ(r1.cacheSim, harness::CacheOutcome::Miss);

    // Corrupt the sim blob, restart, re-run: the integrity check
    // must reject it, count it, quarantine it, and recompute — and
    // the recomputed result must match the original.
    std::string path = onlyBlob("sim");
    ASSERT_FALSE(path.empty());
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        ASSERT_TRUE(f.good());
        // Flip a byte near the end: well inside the payload (a flip
        // in the key region reads as a bucket collision — a clean
        // miss — not as corruption).
        f.seekg(0, std::ios::end);
        std::streamoff size = f.tellg();
        char c;
        f.seekg(size - 8);
        f.get(c);
        f.seekp(size - 8);
        f.put(static_cast<char>(c ^ 0x7f));
    }
    cache().clear();

    auto r2 = harness::runProgram(program, cfg, "gzip");
    EXPECT_EQ(r2.cacheSim, harness::CacheOutcome::Miss);
    EXPECT_EQ(r2.ipc, r1.ipc);
    EXPECT_EQ(r2.statsJson, r1.statsJson);

    auto counters = cache().simCounters();
    EXPECT_EQ(counters.diskCorrupt, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(countEntries(_dir + "/sim", ".quarantine"), 1);

    // The recompute re-published a good blob: another restart hits.
    cache().clear();
    auto r3 = harness::runProgram(program, cfg, "gzip");
    EXPECT_EQ(r3.cacheSim, harness::CacheOutcome::DiskHit);
}

TEST_F(DiskCacheTest, NoRunCacheNeverTouchesDisk)
{
    cache().setEnabled(false);
    auto program = std::make_shared<const isa::Program>(
        workloads::buildBenchmark("gzip", 5000));
    auto r = harness::runProgram(program, smallConfig(), "gzip");
    EXPECT_EQ(r.cacheSim, harness::CacheOutcome::Off);
    EXPECT_EQ(onlyBlob("sim"), "");
    cache().setEnabled(true);
}
