/**
 * @file
 * End-to-end checker for the sweep daemon
 * (harness/sweep_service.hh mounted on harness/telemetry_server.hh),
 * used by the daemon_query_identical ctest case. Runs everything
 * in-process against a private TelemetryServer on an ephemeral port
 * and a throwaway --cache-dir:
 *
 *  1. a cold POST /sweep answers 202 with a ticket and completes on
 *     the worker pool (polled over real HTTP);
 *  2. a repeat POST answers 200 inline with a byte-identical
 *     manifest (the response memo);
 *  3. the daemon's manifest equals a direct in-process
 *     runProgram + writeRunManifest of the same spec, modulo the
 *     masked timings_seconds / run_cache fields (manifest_mask.hh) —
 *     the daemon is a transport, not a different simulator;
 *  4. after a simulated process restart (RunCache cleared, blob
 *     directory kept) a fresh service still answers 200 inline from
 *     the disk tier, with zero sim misses;
 *  5. malformed specs answer 400 with a JSON error, unclaimed paths
 *     fall through to the server's routes;
 *  6. the warm-answer latency acceptance: the median of 50 repeat
 *     POSTs through SweepService::handle() is under 1 ms.
 *
 * Exits 0 when every check passes, 1 with a message otherwise.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/cache_codec.hh"
#include "harness/disk_cache.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/run_cache.hh"
#include "harness/sweep_service.hh"
#include "harness/telemetry_server.hh"
#include "manifest_mask.hh"
#include "sim/json.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::SweepService;
using harness::TelemetryServer;

namespace
{

[[noreturn]] void
fail(const std::string &message)
{
    std::cerr << "check_daemon: FAIL: " << message << "\n";
    std::exit(1);
}

void
check(bool ok, const std::string &message)
{
    if (!ok)
        fail(message);
}

struct HttpReply
{
    int status = 0;
    std::string body;
};

/** One HTTP/1.1 request against 127.0.0.1:port (Connection: close,
 * matching the server's per-request contract). */
HttpReply
httpRequest(std::uint16_t port, const std::string &method,
            const std::string &path, const std::string &body = "")
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd >= 0, "socket(2) failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    check(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) == 0,
          "connect(2) failed");

    std::ostringstream req;
    req << method << " " << path << " HTTP/1.1\r\n"
        << "Host: 127.0.0.1\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << body;
    std::string out = req.str();
    std::size_t sent = 0;
    while (sent < out.size()) {
        ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                           0);
        check(n > 0, "send(2) failed");
        sent += static_cast<std::size_t>(n);
    }

    std::string reply;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    HttpReply parsed;
    std::size_t space = reply.find(' ');
    check(space != std::string::npos, "malformed status line");
    parsed.status = std::atoi(reply.c_str() + space + 1);
    std::size_t blank = reply.find("\r\n\r\n");
    check(blank != std::string::npos, "missing header terminator");
    parsed.body = reply.substr(blank + 4);
    return parsed;
}

json::JsonValue
parsed(const std::string &text, const std::string &what)
{
    json::JsonValue doc;
    std::string err;
    if (!json::parseJson(text, &doc, &err))
        fail(what + " does not parse as JSON: " + err);
    return doc;
}

std::string
stringField(const json::JsonValue &doc, const char *name,
            const std::string &what)
{
    const json::JsonValue *v = doc.find(name);
    check(v && v->isString(), what + " lacks string '" + name + "'");
    return v->string;
}

/** The serialized "result" manifest bytes of a compact ticket JSON
 * (the last member, so the bytes run to the closing brace). */
std::string
resultBytes(const std::string &ticket)
{
    const std::string marker = "\"result\":";
    std::size_t pos = ticket.find(marker);
    check(pos != std::string::npos, "ticket has no result member");
    pos += marker.size();
    check(ticket.size() > pos + 1 && ticket.back() == '}',
          "unexpected ticket layout");
    return ticket.substr(pos, ticket.size() - pos - 1);
}

void
checkMaskedEqual(const std::string &a, const std::string &b,
                 const std::string &what)
{
    json::JsonValue da = parsed(a, what + " (lhs)");
    json::JsonValue db = parsed(b, what + " (rhs)");
    tests::maskTimings(da);
    tests::maskTimings(db);
    std::string where;
    if (!tests::jsonEqual(da, db, "manifest", &where))
        fail(what + ": manifests differ at " + where);
}

} // namespace

int
main()
{
    // Throwaway persistent tier + a clean in-process cache.
    char dirTemplate[] = "/tmp/ser_check_daemon_XXXXXX";
    check(::mkdtemp(dirTemplate) != nullptr, "mkdtemp failed");
    const std::string cacheDir = dirTemplate;
    harness::DiskCache::instance().setDirectory(
        cacheDir, harness::codec::kSchemaVersion);
    harness::RunCache &cache = harness::RunCache::instance();
    cache.setEnabled(true);
    cache.setCapacity(0);
    cache.clear();

    TelemetryServer server;
    auto service = std::make_unique<SweepService>(2);
    service->mountOn(server);
    server.start(0);  // ephemeral port
    const std::uint16_t port = server.port();

    const std::string spec =
        "{\"benchmark\": \"gzip\", \"insts\": 5000, "
        "\"warmup\": 500}";

    // --- 1. Cold query: 202, ticket completes on the pool. ------
    HttpReply cold = httpRequest(port, "POST", "/sweep", spec);
    check(cold.status == 202,
          "cold POST /sweep: expected 202, got " +
              std::to_string(cold.status));
    json::JsonValue coldTicket = parsed(cold.body, "cold ticket");
    check(stringField(coldTicket, "state", "cold ticket") !=
              "done",
          "cold POST answered inline; expected a scheduled run");

    std::string doneBody;
    for (int i = 0; i < 3000; ++i) {
        HttpReply poll = httpRequest(port, "GET", "/sweep/1");
        check(poll.status == 200, "GET /sweep/1: expected 200");
        std::string state =
            stringField(parsed(poll.body, "ticket"), "state",
                        "ticket");
        check(state != "failed", "cold run failed");
        if (state == "done") {
            doneBody = poll.body;
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
    }
    check(!doneBody.empty(), "cold run did not complete in time");
    const std::string coldManifest = resultBytes(doneBody);
    check(service->coldAnswers() == 1, "cold_answers != 1");

    // --- 2. Repeat query: 200 inline, byte-identical manifest. --
    HttpReply warm = httpRequest(port, "POST", "/sweep", spec);
    check(warm.status == 200,
          "repeat POST /sweep: expected 200, got " +
              std::to_string(warm.status));
    check(stringField(parsed(warm.body, "warm ticket"), "state",
                      "warm ticket") == "done",
          "repeat POST not answered inline");
    check(resultBytes(warm.body) == coldManifest,
          "repeat answer is not byte-identical to the cold one");
    check(service->warmAnswers() == 1, "warm_answers != 1");

    // --- 3. The daemon result equals a direct in-process run. ---
    harness::ExperimentConfig config;
    config.dynamicTarget = 5000;
    config.warmupInsts = 500;
    auto program = std::make_shared<const isa::Program>(
        workloads::buildBenchmark("gzip", 5000));
    harness::RunArtifacts direct =
        harness::runProgram(program, config, "gzip");
    std::ostringstream directOs;
    {
        json::JsonWriter jw(directOs);
        harness::writeRunManifest(jw, direct, config);
    }
    checkMaskedEqual(coldManifest, directOs.str(),
                     "daemon vs direct run");

    // --- 4. Disk-tier warm answer across a simulated restart. ---
    // A fresh service has an empty response memo and the cleared
    // RunCache an empty map; only the blob directory persists. The
    // POST must still answer 200 inline, with zero sim misses.
    cache.clear();
    SweepService restarted(1);
    TelemetryServer::Response restartReply =
        restarted.handle("POST", "/sweep", spec);
    check(restartReply.status == 200,
          "post-restart POST: expected 200 (disk-warm), got " +
              std::to_string(restartReply.status));
    checkMaskedEqual(resultBytes(restartReply.body), coldManifest,
                     "post-restart vs original answer");
    auto counters = cache.simCounters();
    check(counters.misses == 0,
          "post-restart run re-simulated (sim misses != 0)");
    check(counters.diskHits == 1,
          "post-restart run did not hit the disk tier");

    // --- 5. Error paths and route fall-through. -----------------
    HttpReply bad =
        httpRequest(port, "POST", "/sweep",
                    "{\"benchmark\": \"no-such-benchmark\"}");
    check(bad.status == 400, "unknown benchmark: expected 400");
    parsed(bad.body, "error body");
    bad = httpRequest(port, "POST", "/sweep",
                      "{\"benchmark\": \"gzip\", \"instz\": 1}");
    check(bad.status == 400, "unknown field: expected 400");
    bad = httpRequest(port, "POST", "/sweep", "{\"insts\": 5}");
    check(bad.status == 400, "missing benchmark: expected 400");
    bad = httpRequest(port, "GET", "/sweep/999");
    check(bad.status == 404, "unknown ticket: expected 404");
    check(httpRequest(port, "GET", "/healthz").status == 200,
          "/healthz did not fall through to the server");
    check(httpRequest(port, "POST", "/healthz").status == 405,
          "POST /healthz: expected 405");

    HttpReply index = httpRequest(port, "GET", "/sweep");
    json::JsonValue indexDoc = parsed(index.body, "index");
    const json::JsonValue *tickets = indexDoc.find("tickets");
    check(tickets && tickets->isArray() &&
              tickets->array.size() == 2,
          "index does not list both tickets");

    // --- 6. Warm-answer latency: median handle() under 1 ms. ----
    std::vector<double> micros;
    for (int i = 0; i < 50; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        TelemetryServer::Response r =
            service->handle("POST", "/sweep", spec);
        auto t1 = std::chrono::steady_clock::now();
        check(r.status == 200, "timed repeat POST not warm");
        micros.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count());
    }
    std::sort(micros.begin(), micros.end());
    double median = micros[micros.size() / 2];
    std::cout << "check_daemon: warm answer median " << median
              << " us (p90 " << micros[micros.size() * 9 / 10]
              << " us)\n";
    check(median < 1000.0,
          "warm-answer median " + std::to_string(median) +
              " us exceeds the 1 ms acceptance");

    // Orderly teardown: the service must outlive the server's poll
    // thread (mountOn contract).
    server.stop();
    service.reset();
    harness::DiskCache::instance().setDirectory(
        "", harness::codec::kSchemaVersion);
    check(std::system(("rm -rf '" + cacheDir + "'").c_str()) == 0,
          "cleanup failed");

    std::cout << "check_daemon: all checks passed\n";
    return 0;
}
