/**
 * @file
 * Standalone disk-tier accounting checker for the persistent-cache
 * fixtures:
 *
 *     check_disk_cache manifest.json cold|warm
 *
 * Reads the manifest's process-wide run_cache block and asserts the
 * disk tier actually did its job:
 *
 *   cold  — a run against an empty --cache-dir: every section
 *           computed at least once (misses > 0), published its
 *           blobs (disk_bytes_written > 0), read nothing back, and
 *           hit no corruption;
 *   warm  — a later *process* against the populated directory: the
 *           sim section simulated nothing (misses == 0) and answered
 *           from blobs (disk_hits > 0, disk_bytes_read > 0), again
 *           corruption-free. This is the cross-process warm-hit
 *           guarantee: the byte-identity of the manifests themselves
 *           is checked separately by check_determinism.
 *
 * Exits 0 when the counters agree with the mode, 1 otherwise.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/json.hh"

using ser::json::JsonValue;

namespace
{

int failures = 0;

const JsonValue *
lookup(const JsonValue &doc, const std::string &path)
{
    const JsonValue *v = &doc;
    std::istringstream parts(path);
    std::string part;
    while (std::getline(parts, part, '.')) {
        if (!v->isObject() || !(v = v->find(part.c_str()))) {
            std::cerr << "check_disk_cache: missing '" << path
                      << "'\n";
            ++failures;
            return nullptr;
        }
    }
    return v;
}

double
number(const JsonValue &doc, const std::string &path)
{
    const JsonValue *v = lookup(doc, path);
    if (!v)
        return 0;
    if (!v->isNumber()) {
        std::cerr << "check_disk_cache: '" << path
                  << "' is not a number\n";
        ++failures;
        return 0;
    }
    return v->number;
}

void
expect(bool ok, const std::string &what)
{
    if (!ok) {
        std::cerr << "check_disk_cache: FAIL: " << what << "\n";
        ++failures;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr
            << "usage: check_disk_cache manifest.json cold|warm\n";
        return 2;
    }
    const std::string mode = argv[2];
    if (mode != "cold" && mode != "warm") {
        std::cerr << "check_disk_cache: bad mode '" << mode << "'\n";
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::cerr << "check_disk_cache: cannot open '" << argv[1]
                  << "'\n";
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue doc;
    std::string err;
    if (!ser::json::parseJson(buf.str(), &doc, &err)) {
        std::cerr << "check_disk_cache: '" << argv[1]
                  << "' does not parse: " << err << "\n";
        return 1;
    }

    const JsonValue *enabled = lookup(doc, "run_cache.disk_enabled");
    expect(enabled && enabled->isBool() && enabled->boolean,
           "disk tier not enabled");

    for (const char *section : {"sim", "deadness", "avf"}) {
        std::string base = std::string("run_cache.") + section + ".";
        expect(number(doc, base + "disk_corrupt") == 0,
               base + "disk_corrupt != 0");
        if (mode == "cold") {
            expect(number(doc, base + "misses") > 0,
                   base + "misses == 0 in a cold run");
            expect(number(doc, base + "disk_bytes_written") > 0,
                   base + "disk_bytes_written == 0 in a cold run");
            expect(number(doc, base + "disk_hits") == 0,
                   base + "disk_hits != 0 in a cold run");
        } else {
            expect(number(doc, base + "misses") == 0,
                   base + "misses != 0 in a warm run");
            expect(number(doc, base + "disk_hits") > 0,
                   base + "disk_hits == 0 in a warm run");
            expect(number(doc, base + "disk_bytes_read") > 0,
                   base + "disk_bytes_read == 0 in a warm run");
        }
    }

    if (failures)
        return 1;
    std::cout << "check_disk_cache: " << mode
              << " counters agree\n";
    return 0;
}
