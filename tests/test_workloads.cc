/**
 * @file
 * Tests for the workload library: the assembly builder's
 * decorations, the 26-benchmark roster, generated-program validity
 * (assembles, runs, halts near the dynamic target, produces output),
 * determinism, and the random-program generator.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/executor.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"
#include "workloads/random_program.hh"
#include "workloads/suite.hh"

using namespace ser;
using namespace ser::workloads;

TEST(Builder, CountsInstructionsNotLabelsOrComments)
{
    AsmBuilder b(1);
    b.comment("hello");
    b.label("foo");
    b.op("nop");
    b.op("movi r4 = 1");
    EXPECT_EQ(b.size(), 2u);
}

TEST(Builder, UniqueLabels)
{
    AsmBuilder b(1);
    EXPECT_NE(b.newLabel("x"), b.newLabel("x"));
}

TEST(Builder, DeadCodeAndArmsAssemble)
{
    AsmBuilder b(1);
    b.entry("main");
    b.label("main");
    b.op("movi r2 = 1");
    b.op("movi r3 = 2");
    b.op("movi r60 = 0x80000");
    b.op("movi r5 = 9");
    for (int i = 0; i < 30; ++i) {
        b.deadCode(i % 3 == 0, i % 3 == 1, 0x80000);
        b.predicatedArms(10, 5, 36);
        b.maybeNoop(0.5);
    }
    b.op("halt");
    auto result = isa::assemble(b.str());
    ASSERT_TRUE(result.ok())
        << result.error->line << ": " << result.error->message;
    isa::Executor ex(result.program);
    EXPECT_EQ(ex.run(10000), isa::Termination::Halted);
}

TEST(Suite, RosterMatchesPaperTable2)
{
    const auto &suite = specSuite();
    ASSERT_EQ(suite.size(), 26u);
    int integer = 0, fp = 0;
    for (const auto &p : suite)
        (p.floatingPoint ? fp : integer)++;
    EXPECT_EQ(integer, 12);  // paper Table 2: 12 integer
    EXPECT_EQ(fp, 14);       // and 14 floating point
    // Spot checks.
    EXPECT_FALSE(findProfile("mcf").floatingPoint);
    EXPECT_TRUE(findProfile("ammp").floatingPoint);
    EXPECT_EQ(findProfile("ammp").kernel, Kernel::PointerChase);
    // Distinct seeds everywhere (deterministic but decorrelated).
    for (std::size_t i = 0; i < suite.size(); ++i)
        for (std::size_t j = i + 1; j < suite.size(); ++j)
            EXPECT_NE(suite[i].seed, suite[j].seed)
                << suite[i].name << " vs " << suite[j].name;
}

TEST(Suite, FpProfilesHaveMorePadding)
{
    // The paper attributes the anti-pi bit's larger effect on fp
    // benchmarks to their higher no-op density; the profiles encode
    // that.
    double int_noop = 0, fp_noop = 0;
    int ni = 0, nf = 0;
    for (const auto &p : specSuite()) {
        if (p.floatingPoint) {
            fp_noop += p.noopDensity;
            ++nf;
        } else {
            int_noop += p.noopDensity;
            ++ni;
        }
    }
    EXPECT_GT(fp_noop / nf, int_noop / ni);
}

TEST(Suite, GenerationIsDeterministic)
{
    const auto &p = findProfile("gzip");
    EXPECT_EQ(benchmarkSource(p, 50000), benchmarkSource(p, 50000));
}

/** Every benchmark builds, halts close to the target, and outputs. */
class SuitePrograms : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuitePrograms, BuildsRunsHaltsAndOutputs)
{
    const std::uint64_t target = 60000;
    isa::Program program = buildBenchmark(GetParam(), target);
    EXPECT_GT(program.size(), 50u);

    isa::Executor ex(program);
    auto term = ex.run(target * 2);
    EXPECT_EQ(term, isa::Termination::Halted) << GetParam();
    // Lands within a factor of the target (loop sizing is an
    // estimate; entropy branches skip instructions).
    EXPECT_GT(ex.steps(), target / 3) << GetParam();
    EXPECT_LT(ex.steps(), target * 2) << GetParam();
    EXPECT_FALSE(ex.state().output().empty()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuitePrograms,
    ::testing::ValuesIn(suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(RandomProgram, AlwaysHaltsAndIsDeterministic)
{
    for (std::uint64_t seed = 100; seed < 130; ++seed) {
        isa::Program p = randomProgram(seed);
        isa::Executor a(p), b(p);
        ASSERT_EQ(a.run(3000000), isa::Termination::Halted)
            << "seed " << seed;
        ASSERT_EQ(b.run(3000000), isa::Termination::Halted);
        EXPECT_EQ(a.state().output(), b.state().output());
        EXPECT_FALSE(a.state().output().empty());
    }
}

TEST(RandomProgram, RespectsShapeOptions)
{
    RandomProgramOptions opts;
    opts.loopIterations = 3;
    opts.bodyInstructions = 10;
    isa::Program p = randomProgram(7, opts);
    isa::Executor ex(p);
    EXPECT_EQ(ex.run(100000), isa::Termination::Halted);
    EXPECT_LT(ex.steps(), 1000u);
}
