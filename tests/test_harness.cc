/**
 * @file
 * Tests for the harness layer's parallel machinery: parallelFor, the
 * SuiteRunner's determinism and shared-program guarantees, the
 * BenchOptions --jobs / debug_flags wiring, and concurrent
 * SER_DPRINTF capture (the test that makes a TSan build of ctest
 * exercise the sim-layer locking).
 */

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/suite_runner.hh"
#include "sim/debug.hh"
#include "workloads/profile.hh"

using namespace ser;

namespace
{

bool
hasPhase(const harness::RunArtifacts &r, const std::string &name)
{
    for (const auto &p : r.timings.phases)
        if (p.first == name)
            return true;
    return false;
}

harness::BenchOptions
parseArgs(std::vector<std::string> args)
{
    std::vector<char *> argv;
    args.insert(args.begin(), "test_bin");
    argv.reserve(args.size());
    for (auto &a : args)
        argv.push_back(a.data());
    return harness::BenchOptions::parse(
        static_cast<int>(argv.size()), argv.data());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    harness::parallelFor(n, 4, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, MoreJobsThanWork)
{
    std::vector<std::atomic<int>> hits(3);
    harness::parallelFor(3, 16, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
    // And the degenerate cases do not hang or call fn.
    harness::parallelFor(0, 4, [&](std::size_t) { FAIL(); });
}

TEST(ParallelFor, RethrowsWorkerException)
{
    EXPECT_THROW(
        harness::parallelFor(8, 4,
                             [&](std::size_t i) {
                                 if (i == 5)
                                     throw std::runtime_error("boom");
                             }),
        std::runtime_error);
}

TEST(DefaultJobs, IsAtLeastOne)
{
    // SER_JOBS is unset in the test environment, so the compiled-in
    // serial default applies (the value is cached process-wide).
    EXPECT_GE(harness::defaultJobs(), 1u);
}

TEST(BenchOptions, JobsFlagBothSpellings)
{
    EXPECT_EQ(parseArgs({"--jobs", "3"}).jobs, 3u);
    EXPECT_EQ(parseArgs({"--jobs=5"}).jobs, 5u);
    EXPECT_EQ(parseArgs({}).jobs, 1u);  // serial default
}

TEST(BenchOptionsDeathTest, JobsMustBePositive)
{
    EXPECT_EXIT(parseArgs({"--jobs", "0"}),
                testing::ExitedWithCode(1), "--jobs");
}

TEST(BenchOptions, LegacyDebugFlagsKeySelectsFlags)
{
    unsigned saved = debug::printMask.load();
    parseArgs({"debug_flags=Trigger,PET"});
    EXPECT_TRUE(debug::enabled(debug::Flag::Trigger));
    EXPECT_TRUE(debug::enabled(debug::Flag::PET));
    EXPECT_FALSE(debug::enabled(debug::Flag::Cache));
    debug::printMask.store(saved);
}

TEST(BenchOptionsDeathTest, UnknownDebugFlagIsFatal)
{
    // The documented Config key must fail loudly, exactly like
    // --debug does, rather than being silently ignored.
    EXPECT_EXIT(parseArgs({"debug_flags=NoSuchFlag"}),
                testing::ExitedWithCode(1), "NoSuchFlag");
}

TEST(SuiteRunner, ResultsIndexedBySubmissionOrder)
{
    // Generic jobs finishing in any order must land in their
    // submission slots.
    harness::SuiteRunner runner(4);
    for (int i = 0; i < 12; ++i) {
        runner.submit([i]() {
            harness::RunArtifacts r;
            r.benchmark = "job" + std::to_string(i);
            r.ipc = i;
            return r;
        });
    }
    auto runs = runner.run();
    ASSERT_EQ(runs.size(), 12u);
    for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(runs[i].benchmark, "job" + std::to_string(i));
        EXPECT_DOUBLE_EQ(runs[i].ipc, i);
    }
}

TEST(SuiteRunner, ParallelMatchesSerial)
{
    harness::ExperimentConfig base;
    base.dynamicTarget = 8000;
    base.warmupInsts = 800;
    harness::ExperimentConfig l1 = base;
    l1.triggerLevel = "l1";

    auto sweep = [&](unsigned jobs) {
        harness::SuiteRunner runner(jobs);
        for (const char *name : {"gzip", "mcf"}) {
            std::size_t prog = runner.addProgram(name, 8000);
            runner.submit(prog, base);
            runner.submit(prog, l1);
        }
        return runner.run();
    };
    // With the run cache on, the second sweep would just be handed
    // the first sweep's artifacts; disable it so the parallel
    // schedule really recomputes everything it compares.
    harness::RunCache &cache = harness::RunCache::instance();
    cache.setEnabled(false);
    auto serial = sweep(1);
    auto parallel = sweep(4);
    cache.setEnabled(true);
    cache.clear();

    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), 4u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
        EXPECT_EQ(serial[i].seed, parallel[i].seed);
        EXPECT_DOUBLE_EQ(serial[i].ipc, parallel[i].ipc);
        EXPECT_DOUBLE_EQ(serial[i].avf->sdcAvf(),
                         parallel[i].avf->sdcAvf());
        EXPECT_DOUBLE_EQ(serial[i].avf->falseDueAvf(),
                         parallel[i].avf->falseDueAvf());
        EXPECT_EQ(serial[i].trace->commits.size(),
                  parallel[i].trace->commits.size());
        EXPECT_EQ(serial[i].statsJson, parallel[i].statsJson);
    }
}

TEST(SuiteRunner, MatchesRunBenchmarkAndBuildsOnce)
{
    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = 8000;
    cfg.warmupInsts = 800;

    harness::SuiteRunner runner(2);
    std::size_t prog = runner.addProgram("vortex", 8000);
    runner.submit(prog, cfg);
    runner.submit(prog, cfg);
    auto runs = runner.run();
    ASSERT_EQ(runs.size(), 2u);

    auto reference = harness::runBenchmark("vortex", cfg);
    EXPECT_DOUBLE_EQ(runs[0].ipc, reference.ipc);
    EXPECT_DOUBLE_EQ(runs[0].avf->sdcAvf(), reference.avf->sdcAvf());
    EXPECT_EQ(runs[0].seed, reference.seed);
    EXPECT_EQ(runs[0].benchmark, reference.benchmark);

    // One build, shared read-only: both runs hold the same program
    // object, and only the first-submitted run records the build
    // phase (exactly once per program in the manifest).
    EXPECT_EQ(runs[0].program.get(), runs[1].program.get());
    EXPECT_TRUE(hasPhase(runs[0], "build"));
    EXPECT_FALSE(hasPhase(runs[1], "build"));
    EXPECT_TRUE(hasPhase(reference, "build"));
}

TEST(ConcurrentDebug, RingCapturesEveryMessage)
{
    unsigned saved_capture = debug::captureMask.load();
    debug::setCaptureFlags("Pipeline");
    debug::setRingCapacity(4096);
    debug::clearRing();

    constexpr int threads = 4, per_thread = 200;
    harness::parallelFor(threads, threads, [&](std::size_t t) {
        for (int i = 0; i < per_thread; ++i)
            SER_DPRINTF(Pipeline, "worker {} message {}", t, i);
    });

    auto captured = debug::ringContents();
    EXPECT_EQ(captured.size(),
              static_cast<std::size_t>(threads * per_thread));
    // Per-thread message order is preserved even under contention.
    std::vector<int> last(threads, -1);
    int in_order = 0;
    for (const auto &msg : captured) {
        unsigned long t = 0, i = 0;
        if (std::sscanf(msg.c_str(),
                        "[Pipeline] worker %lu message %lu", &t,
                        &i) == 2) {
            ASSERT_LT(t, static_cast<unsigned long>(threads));
            if (static_cast<int>(i) > last[t])
                ++in_order;
            last[t] = static_cast<int>(i);
        }
    }
    EXPECT_EQ(in_order, threads * per_thread);

    debug::clearRing();
    debug::setRingCapacity(64);
    debug::captureMask.store(saved_capture);
}

} // namespace
