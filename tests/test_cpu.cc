/**
 * @file
 * Pipeline model tests: in-order semantics, wrong-path fetch and
 * squash, trigger squash with replay, commit-stream fidelity against
 * the functional executor, and structural invariants of the traces
 * (including a Little's-law cross-check of queue occupancy).
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/trigger.hh"
#include "cpu/pipeline.hh"
#include "isa/assembler.hh"
#include "isa/executor.hh"
#include "workloads/random_program.hh"

using namespace ser;
using namespace ser::cpu;

namespace
{

PipelineParams
quietParams()
{
    PipelineParams p;
    p.maxInsts = 500000;
    return p;
}

SimTrace
runProgramSource(const std::string &src,
                 core::MissTriggerPolicy *policy = nullptr,
                 PipelineParams params = quietParams())
{
    isa::Program program = isa::assembleOrDie(src);
    InOrderPipeline pipe(program, params);
    if (policy)
        pipe.setExposurePolicy(policy);
    SimTrace trace = pipe.run();
    // The trace borrows the program; tests only inspect records that
    // don't dereference it after return... so copy what we need
    // before the program dies. To keep it simple we leak a copy.
    auto *kept = new isa::Program(program);
    trace.program = kept;
    return trace;
}

/** Structural invariants every run must satisfy. */
void
checkTraceInvariants(const SimTrace &trace)
{
    // Every committed oracle instruction commits exactly once.
    std::map<std::uint32_t, int> commits;
    for (const auto &inc : trace.incarnations) {
        EXPECT_LE(inc.enqueueCycle, inc.evictCycle);
        if (inc.issueCycle != noCycle32) {
            EXPECT_LE(inc.enqueueCycle, inc.issueCycle);
            EXPECT_LE(inc.issueCycle, inc.evictCycle);
        } else {
            // Never read: must have been squashed.
            EXPECT_TRUE(inc.flags & (incSquashTrigger |
                                     incSquashMispredict));
        }
        if (inc.flags & incCommitted) {
            EXPECT_FALSE(inc.flags & incWrongPath);
            ASSERT_NE(inc.oracleSeq, noSeq32);
            commits[inc.oracleSeq]++;
        }
        if (inc.flags & incWrongPath) {
            EXPECT_EQ(inc.oracleSeq, noSeq32);
        }
    }
    for (std::uint32_t seq = 0; seq < trace.commits.size(); ++seq) {
        EXPECT_EQ(commits.count(seq), 1u) << "oracle seq " << seq;
        EXPECT_EQ(commits[seq], 1) << "oracle seq " << seq;
    }
}

} // namespace

TEST(Pipeline, IndependentNopsFlowAtFullWidth)
{
    std::string src;
    for (int i = 0; i < 1200; ++i)
        src += "nop\n";
    src += "halt\n";
    SimTrace t = runProgramSource(src);
    // 1201 instructions at 6 wide with some fill latency.
    EXPECT_GT(t.ipc(), 4.0);
    checkTraceInvariants(t);
}

TEST(Pipeline, SerialDependentChainIsLatencyBound)
{
    std::string src = "movi r2 = 1\n";
    for (int i = 0; i < 400; ++i)
        src += "mul r2 = r2, r2\n";  // 4-cycle latency chain
    src += "out r2\nhalt\n";
    SimTrace t = runProgramSource(src);
    EXPECT_LT(t.ipc(), 0.35);  // ~1 per 4 cycles
    EXPECT_GT(t.ipc(), 0.15);
}

TEST(Pipeline, CommitStreamMatchesFunctionalExecution)
{
    const std::string src = R"(
        movi r2 = 17
        movi r4 = 40
        loop:
        mul r2 = r2, r2
        addi r2 = r2, 13
        andi r3 = r2, 255
        cmpilt p2 = r3, 128
        (p2) addi r5 = r5, 1
        st8 [r0, 0x4000] = r5
        ld8 r6 = [r0, 0x4000]
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r2
        out r5
        out r6
        halt
    )";
    isa::Program program = isa::assembleOrDie(src);

    isa::Executor golden(program);
    ASSERT_EQ(golden.run(100000), isa::Termination::Halted);

    InOrderPipeline pipe(program, quietParams());
    SimTrace trace = pipe.run();

    // Same dynamic instruction count and identical output.
    EXPECT_EQ(trace.commits.size(), golden.steps());
    EXPECT_EQ(pipe.archState().output(), golden.state().output());
    EXPECT_TRUE(trace.programHalted);
    trace.program = new isa::Program(program);
    checkTraceInvariants(trace);
}

TEST(Pipeline, MispredictsProduceWrongPathIncarnations)
{
    // A data-dependent branch pattern the predictor cannot learn
    // perfectly (LCG-driven), guaranteeing some wrong-path fetch.
    SimTrace t = runProgramSource(R"(
        movi r2 = 99991
        movi r3 = 1103515245
        movi r4 = 2000
        loop:
        mul r2 = r2, r3
        addi r2 = r2, 12345
        shri r5 = r2, 16
        andi r5 = r5, 1
        cmpieq p2 = r5, 0
        (p2) addi r6 = r6, 1
        (p2) br skip
        addi r7 = r7, 3
        xori r7 = r7, 5
        skip:
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r6
        halt
    )");
    std::uint64_t wrong_path = 0;
    for (const auto &inc : t.incarnations)
        wrong_path += (inc.flags & incWrongPath) != 0;
    EXPECT_GT(wrong_path, 100u);
    checkTraceInvariants(t);
}

TEST(Pipeline, PredicatedFalseIncarnationsAreFlagged)
{
    SimTrace t = runProgramSource(R"(
        movi r4 = 300
        loop:
        cmpieq p2 = r4, -1
        (p2) addi r5 = r5, 1
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r5
        halt
    )");
    std::uint64_t pred_false = 0;
    for (const auto &inc : t.incarnations)
        pred_false += (inc.flags & incPredFalse) != 0;
    EXPECT_GE(pred_false, 300u);  // the (p2) add never executes
    checkTraceInvariants(t);
}

TEST(Pipeline, TriggerSquashReplaysAndStillCommitsEverything)
{
    // Loads that wander a large array force misses at every level.
    std::string src = R"(
        movi r2 = 12345
        movi r3 = 1103515245
        movi r8 = 0x100000
        movi r4 = 800
        loop:
        mul r2 = r2, r3
        addi r2 = r2, 12345
        shri r5 = r2, 13
        andi r5 = r5, 0x7ffff8
        add r6 = r8, r5
        ld8 r7 = [r6, 0]
        xor r9 = r9, r7
        addi r10 = r9, 1
        addi r11 = r10, 1
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r9
        halt
    )";
    core::MissTriggerPolicy policy(core::TriggerLevel::L0Miss,
                                   core::TriggerAction::Squash);
    SimTrace t = runProgramSource(src, &policy);

    std::uint64_t squashed = 0;
    for (const auto &inc : t.incarnations)
        squashed += (inc.flags & incSquashTrigger) != 0;
    EXPECT_GT(squashed, 50u);
    checkTraceInvariants(t);

    // The functional result must be unaffected by squashing.
    isa::Program program = isa::assembleOrDie(src);
    isa::Executor golden(program);
    ASSERT_EQ(golden.run(1000000), isa::Termination::Halted);
    EXPECT_EQ(t.commits.size(), golden.steps());
}

TEST(Pipeline, ThrottleActionStallsFetch)
{
    std::string src = R"(
        movi r2 = 12345
        movi r3 = 1103515245
        movi r8 = 0x100000
        movi r4 = 300
        loop:
        mul r2 = r2, r3
        addi r2 = r2, 12345
        shri r5 = r2, 13
        andi r5 = r5, 0x7ffff8
        add r6 = r8, r5
        ld8 r7 = [r6, 0]
        xor r9 = r9, r7
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r9
        halt
    )";
    core::MissTriggerPolicy squash_policy(
        core::TriggerLevel::L0Miss, core::TriggerAction::Squash);
    core::MissTriggerPolicy throttle_policy(
        core::TriggerLevel::L0Miss, core::TriggerAction::Throttle);
    SimTrace base = runProgramSource(src);
    SimTrace thr = runProgramSource(src, &throttle_policy);
    // Throttling must not change the committed stream.
    EXPECT_EQ(base.commits.size(), thr.commits.size());
    checkTraceInvariants(thr);
}

TEST(Pipeline, SquashingReducesOccupiedBitCycles)
{
    std::string src = R"(
        movi r2 = 12345
        movi r3 = 1103515245
        movi r8 = 0x100000
        movi r4 = 500
        loop:
        mul r2 = r2, r3
        addi r2 = r2, 12345
        shri r5 = r2, 13
        andi r5 = r5, 0x7ffff8
        add r6 = r8, r5
        ld8 r7 = [r6, 0]
        xor r9 = r9, r7
        mul r10 = r7, r7
        mul r11 = r10, r10
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r9
        halt
    )";
    auto occupied = [](const SimTrace &t) {
        std::uint64_t sum = 0;
        for (const auto &inc : t.incarnations) {
            if (inc.issueCycle != noCycle32)
                sum += inc.issueCycle - inc.enqueueCycle;
        }
        return sum;
    };
    core::MissTriggerPolicy policy(core::TriggerLevel::L0Miss,
                                   core::TriggerAction::Squash);
    SimTrace base = runProgramSource(src);
    SimTrace squashed = runProgramSource(src, &policy);
    // Pre-read exposure must shrink when squashing is on.
    EXPECT_LT(occupied(squashed), occupied(base));
}

TEST(Pipeline, LittlesLawOccupancyConsistency)
{
    // Sum of residencies across incarnations == integral of
    // occupancy over time; check against entries * cycles bound and
    // the denominator used by the AVF calculation.
    SimTrace t = runProgramSource(R"(
        movi r4 = 2000
        loop:
        addi r5 = r5, 1
        mul r6 = r5, r5
        xor r7 = r7, r6
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r7
        halt
    )");
    std::uint64_t resident = 0;
    for (const auto &inc : t.incarnations)
        resident += inc.evictCycle - inc.enqueueCycle;
    std::uint64_t capacity =
        static_cast<std::uint64_t>(t.iqEntries) *
        (t.endCycle - t.startCycle);
    EXPECT_LE(resident, capacity);
    EXPECT_GT(resident, 0u);
}

TEST(Pipeline, WarmupWindowShrinksMeasuredRegion)
{
    std::string src;
    src += "movi r4 = 3000\nloop:\naddi r5 = r5, 1\n";
    src += "addi r4 = r4, -1\ncmplt p3 = r0, r4\n(p3) br loop\n";
    src += "out r5\nhalt\n";
    isa::Program program = isa::assembleOrDie(src);

    InOrderPipeline cold(program, quietParams());
    SimTrace t_cold = cold.run();

    InOrderPipeline warm(program, quietParams());
    warm.setWarmupInsts(5000);
    SimTrace t_warm = warm.run();

    EXPECT_EQ(t_cold.startCycle, 0u);
    EXPECT_GT(t_warm.startCycle, 0u);
    EXPECT_LT(t_warm.committedInsts, t_cold.committedInsts);
}

TEST(Pipeline, CycleSkipIsExactUnderLongLatencies)
{
    // A long-latency memory hierarchy plus a squash+throttle trigger
    // is the stress case for idle-cycle fast-forward: the queue
    // drains behind 900-cycle misses, throttling pins fetch, and the
    // event scheduler must jump those dead spans without perturbing
    // one cycle of the simulated result.
    std::string src = R"(
        movi r2 = 12345
        movi r3 = 1103515245
        movi r8 = 0x100000
        movi r4 = 400
        loop:
        mul r2 = r2, r3
        addi r2 = r2, 12345
        shri r5 = r2, 13
        andi r5 = r5, 0x7ffff8
        add r6 = r8, r5
        ld8 r7 = [r6, 0]
        xor r9 = r9, r7
        mul r10 = r7, r7
        addi r4 = r4, -1
        cmplt p3 = r0, r4
        (p3) br loop
        out r9
        halt
    )";
    isa::Program program = isa::assembleOrDie(src);

    auto run = [&](bool skip, std::uint64_t *skipped,
                   std::string *stats) {
        PipelineParams p = quietParams();
        p.cycleSkip = skip;
        p.hierarchy.l1.hitLatency = 30;
        p.hierarchy.l2.hitLatency = 120;
        p.hierarchy.memLatency = 900;
        InOrderPipeline pipe(program, p);
        core::MissTriggerPolicy policy(
            core::TriggerLevel::L0Miss,
            core::TriggerAction::SquashThrottle);
        pipe.setExposurePolicy(&policy);
        pipe.setWarmupInsts(1000);
        SimTrace t = pipe.run();
        *skipped = pipe.cyclesSkipped();
        std::ostringstream os;
        pipe.dumpStats(os);
        *stats = os.str();
        return t;
    };

    std::uint64_t skipped_on = 0, skipped_off = 0;
    std::string stats_on, stats_off;
    SimTrace fast = run(true, &skipped_on, &stats_on);
    SimTrace slow = run(false, &skipped_off, &stats_off);

    EXPECT_GT(skipped_on, 0u);
    EXPECT_EQ(skipped_off, 0u);

    // Identical simulated outcome, field for field.
    EXPECT_EQ(fast.startCycle, slow.startCycle);
    EXPECT_EQ(fast.endCycle, slow.endCycle);
    EXPECT_EQ(fast.committedInsts, slow.committedInsts);
    EXPECT_EQ(fast.programHalted, slow.programHalted);
    ASSERT_EQ(fast.commits.size(), slow.commits.size());
    for (std::size_t i = 0; i < fast.commits.size(); ++i) {
        EXPECT_EQ(fast.commits[i].staticIdx, slow.commits[i].staticIdx);
        EXPECT_EQ(fast.commits[i].qpTrue, slow.commits[i].qpTrue);
        EXPECT_EQ(fast.commits[i].memAddr, slow.commits[i].memAddr);
    }
    ASSERT_EQ(fast.incarnations.size(), slow.incarnations.size());
    for (std::size_t i = 0; i < fast.incarnations.size(); ++i) {
        const IncarnationRecord &a = fast.incarnations[i];
        const IncarnationRecord &b = slow.incarnations[i];
        EXPECT_EQ(a.staticIdx, b.staticIdx) << i;
        EXPECT_EQ(a.oracleSeq, b.oracleSeq) << i;
        EXPECT_EQ(a.enqueueCycle, b.enqueueCycle) << i;
        EXPECT_EQ(a.issueCycle, b.issueCycle) << i;
        EXPECT_EQ(a.evictCycle, b.evictCycle) << i;
        EXPECT_EQ(a.iqEntry, b.iqEntry) << i;
        EXPECT_EQ(a.flags, b.flags) << i;
    }

    // Even the formatted stats tree (cycle counts, stall breakdown,
    // occupancy averages, trigger counters) must be byte-identical.
    EXPECT_EQ(stats_on, stats_off);

    fast.program = new isa::Program(program);
    checkTraceInvariants(fast);
}

TEST(Pipeline, RandomProgramsAgreeWithFunctionalExecution)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        isa::Program program = workloads::randomProgram(seed);
        isa::Executor golden(program);
        ASSERT_EQ(golden.run(2000000), isa::Termination::Halted)
            << "seed " << seed;

        InOrderPipeline pipe(program, quietParams());
        SimTrace trace = pipe.run();
        EXPECT_EQ(trace.commits.size(), golden.steps())
            << "seed " << seed;
        EXPECT_EQ(pipe.archState().output(),
                  golden.state().output())
            << "seed " << seed;
        trace.program = new isa::Program(program);
        checkTraceInvariants(trace);
    }
}

// --- InstArena round-trip: the SoA packing loses no state ---------

TEST(InstArena, OperandPackingRoundTrips)
{
    // Random programs cover every operand shape the generator can
    // emit (int/fp/pred defs, memory ops, predicated control). The
    // packed u32 must reproduce the register specifiers and operand
    // classes of every static instruction exactly.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        isa::Program program = workloads::randomProgram(seed);
        for (std::size_t i = 0; i < program.size(); ++i) {
            const isa::StaticInst inst =
                program.inst(static_cast<std::uint32_t>(i));
            const std::uint32_t w = packOperands(inst);
            EXPECT_EQ(opndQp(w), inst.qp()) << "seed " << seed;
            EXPECT_EQ(opndSrc1(w), inst.src1()) << "seed " << seed;
            EXPECT_EQ(opndSrc2(w), inst.src2()) << "seed " << seed;
            EXPECT_EQ(opndSrc1Class(w),
                      static_cast<std::uint32_t>(
                          inst.info().src1Class))
                << "seed " << seed;
            EXPECT_EQ(opndSrc2Class(w),
                      static_cast<std::uint32_t>(
                          inst.info().src2Class))
                << "seed " << seed;
        }
    }
}

TEST(InstArena, RecyclingIsLifoAndResetsTheLivenessPredicate)
{
    InstArena arena(4);
    arena.reserve(8);
    EXPECT_GE(arena.capacity(), 8u);
    EXPECT_EQ(arena.live(), 0u);

    // Fill three ids with distinct junk in every column.
    InstId a = arena.allocate();
    InstId b = arena.allocate();
    InstId c = arena.allocate();
    EXPECT_EQ(arena.live(), 3u);
    for (InstId id : {a, b, c}) {
        arena.seq[id] = 100 + id;
        arena.fetchCycle[id] = 200 + id;
        arena.enqueueCycle[id] = 300 + id;
        arena.issueCycle[id] = 400 + id;
        arena.completeCycle[id] = 500 + id;
        arena.pc[id] = 600 + id;
        arena.opnd[id] = 700 + id;
        arena.iqEntry[id] = static_cast<std::uint16_t>(id);
        arena.flags[id] = diWrongPath | diQpTrue;
        EXPECT_TRUE(arena.issued(id));
    }

    // Squash releases youngest-first; the replay fetch must get the
    // same ids back in reverse release order (LIFO, cache-warm) with
    // the liveness predicate — and only that — reset.
    arena.release(c);
    arena.release(b);
    EXPECT_EQ(arena.live(), 1u);
    InstId b2 = arena.allocate();
    InstId c2 = arena.allocate();
    EXPECT_EQ(b2, b);
    EXPECT_EQ(c2, c);
    for (InstId id : {b2, c2}) {
        EXPECT_FALSE(arena.issued(id));
        EXPECT_EQ(arena.issueCycle[id], invalidCycle);
    }
    // The survivor's state is untouched by its neighbors' recycling.
    EXPECT_EQ(arena.seq[a], 100u + a);
    EXPECT_EQ(arena.issueCycle[a], 400u + a);
    EXPECT_TRUE(arena.issued(a));

    arena.release(a);
    arena.release(b2);
    arena.release(c2);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(arena.highWater(), 3u);
}

TEST(InstArena, SquashReplayLosesNoArchitecturalState)
{
    // Heavy trigger squashing recycles arena ids constantly: every
    // replayed instruction re-lands in ids that just held other
    // incarnations' fields. If any column or cold-record field
    // leaked across recycling, the commit stream (staticIdx, qpTrue,
    // memAddr — all carried through the arena) would diverge from
    // the functional oracle.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        isa::Program program = workloads::randomProgram(seed);
        isa::Executor golden(program);
        ASSERT_EQ(golden.run(2000000), isa::Termination::Halted)
            << "seed " << seed;

        core::MissTriggerPolicy policy(core::TriggerLevel::L0Miss,
                                       core::TriggerAction::Squash);
        InOrderPipeline pipe(program, quietParams());
        pipe.setExposurePolicy(&policy);
        SimTrace trace = pipe.run();

        isa::Executor check(program);
        ASSERT_EQ(trace.commits.size(), golden.steps())
            << "seed " << seed;
        for (std::size_t i = 0; i < trace.commits.size(); ++i) {
            isa::StepInfo si;
            ASSERT_EQ(check.step(&si), i + 1 == trace.commits.size()
                                           ? isa::Termination::Halted
                                           : isa::Termination::Running)
                << "seed " << seed << " commit " << i;
            const CommitRecord &cr = trace.commits[i];
            EXPECT_EQ(cr.staticIdx, si.pc) << "seed " << seed;
            EXPECT_EQ(cr.qpTrue != 0, si.qpTrue) << "seed " << seed;
            const std::uint64_t mem =
                si.qpTrue && si.inst.isMem() &&
                        !si.inst.isPrefetch()
                    ? si.memAddr
                    : 0;
            EXPECT_EQ(cr.memAddr, mem) << "seed " << seed;
        }
        EXPECT_EQ(pipe.archState().output(),
                  golden.state().output())
            << "seed " << seed;

        // Replays of one oracle instruction must agree on the static
        // identity in every incarnation (no pc/staticIdx leakage).
        std::map<std::uint32_t, std::uint32_t> seq2idx;
        for (const auto &inc : trace.incarnations) {
            if (inc.oracleSeq == noSeq32)
                continue;
            auto [it, fresh] =
                seq2idx.emplace(inc.oracleSeq, inc.staticIdx);
            if (!fresh) {
                EXPECT_EQ(it->second, inc.staticIdx)
                    << "seed " << seed << " seq " << inc.oracleSeq;
            }
        }
        trace.program = new isa::Program(program);
        checkTraceInvariants(trace);
    }
}
