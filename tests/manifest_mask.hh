/**
 * @file
 * Shared manifest-comparison helpers for the standalone checkers
 * (check_determinism, check_daemon): the canonical masking of the
 * two documented run-to-run-variable manifest fields, and a
 * structural JSON equality with a breadcrumb to the first mismatch.
 *
 * Masking contract (the determinism fixtures' definition of
 * "identical"): every value inside a "timings_seconds" object is
 * wall-clock noise, and every value inside a "run_cache" object
 * depends on worker scheduling and cache tier state (off / miss /
 * hit / disk_hit) — both are masked; every other byte must agree,
 * including the masked objects' *keys*.
 */

#ifndef SER_TESTS_MANIFEST_MASK_HH
#define SER_TESTS_MANIFEST_MASK_HH

#include <string>

#include "sim/json.hh"

namespace ser
{
namespace tests
{

/** Mask the values (not the keys) of every timings_seconds object so
 * wall-clock noise does not participate in the comparison, and of
 * every run_cache object: which worker's sweep point misses and
 * which hits depends on scheduling (and on --no-run-cache /
 * --cache-dir), while every simulated result must not. */
inline void
maskTimings(json::JsonValue &v)
{
    using json::JsonValue;
    if (v.isObject()) {
        for (auto &member : v.object) {
            if (member.first == "timings_seconds" &&
                member.second.isObject()) {
                for (auto &phase : member.second.object) {
                    phase.second = JsonValue{};
                    phase.second.kind = JsonValue::Kind::Number;
                }
            } else if (member.first == "run_cache" &&
                       member.second.isObject()) {
                for (auto &section : member.second.object) {
                    section.second = JsonValue{};
                    section.second.kind = JsonValue::Kind::String;
                    section.second.string = "masked";
                }
            } else {
                maskTimings(member.second);
            }
        }
    } else if (v.isArray()) {
        for (auto &elem : v.array)
            maskTimings(elem);
    }
}

/** Structural equality with a breadcrumb for the first mismatch. */
inline bool
jsonEqual(const json::JsonValue &a, const json::JsonValue &b,
          const std::string &path, std::string *where)
{
    using json::JsonValue;
    if (a.kind != b.kind) {
        *where = path + ": kind differs";
        return false;
    }
    switch (a.kind) {
      case JsonValue::Kind::Null:
        return true;
      case JsonValue::Kind::Bool:
        if (a.boolean != b.boolean) {
            *where = path + ": boolean differs";
            return false;
        }
        return true;
      case JsonValue::Kind::Number:
        if (a.number != b.number) {
            *where = path + ": " + std::to_string(a.number) +
                     " != " + std::to_string(b.number);
            return false;
        }
        return true;
      case JsonValue::Kind::String:
        if (a.string != b.string) {
            *where = path + ": '" + a.string + "' != '" + b.string +
                     "'";
            return false;
        }
        return true;
      case JsonValue::Kind::Array:
        if (a.array.size() != b.array.size()) {
            *where = path + ": array length " +
                     std::to_string(a.array.size()) + " != " +
                     std::to_string(b.array.size());
            return false;
        }
        for (std::size_t i = 0; i < a.array.size(); ++i) {
            if (!jsonEqual(a.array[i], b.array[i],
                           path + "[" + std::to_string(i) + "]",
                           where))
                return false;
        }
        return true;
      case JsonValue::Kind::Object: {
        auto ia = a.object.begin(), ib = b.object.begin();
        for (; ia != a.object.end() && ib != b.object.end();
             ++ia, ++ib) {
            if (ia->first != ib->first) {
                *where = path + ": member '" + ia->first + "' vs '" +
                         ib->first + "'";
                return false;
            }
            if (!jsonEqual(ia->second, ib->second,
                           path + "." + ia->first, where))
                return false;
        }
        if (ia != a.object.end() || ib != b.object.end()) {
            *where = path + ": object member counts differ";
            return false;
        }
        return true;
      }
    }
    return true;
}

} // namespace tests
} // namespace ser

#endif // SER_TESTS_MANIFEST_MASK_HH
