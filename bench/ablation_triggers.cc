/**
 * @file
 * Ablation: the full trigger/action design space of Section 3.1.
 * Sweeps trigger level {l0, l1, l2} x action {squash, throttle,
 * both} over a representative benchmark subset and reports the
 * IPC/AVF/MITF frontier — including the fetch-throttling action the
 * paper studied but did not report numbers for ("we did not observe
 * significant reduction in AVF beyond what instruction squashing
 * already provides").
 *
 * Usage: ablation_triggers [insts=N] [benchmarks=a,b,c]
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Ablation: trigger level x action design space");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 120000);
    std::vector<std::string> benchmarks = {"mcf",    "ammp",
                                           "gzip",   "equake",
                                           "vortex", "facerec"};
    if (config.has("benchmarks")) {
        benchmarks.clear();
        std::istringstream is(config.getString("benchmarks", ""));
        std::string item;
        while (std::getline(is, item, ','))
            benchmarks.push_back(item);
    }

    struct Point
    {
        const char *trigger;
        const char *action;
    };
    const Point points[] = {
        {"none", "squash"}, {"l0", "squash"},   {"l1", "squash"},
        {"l2", "squash"},   {"l0", "throttle"}, {"l1", "throttle"},
        {"l0", "both"},     {"l1", "both"},
    };

    harness::JsonReport report;
    report.setArgs(config);

    // Each program is built once and shared read-only across all
    // eight trigger/action points; the sweep runs on the --jobs
    // worker pool with submission-order aggregation.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("ablation_triggers");
    harness::TraceExport trace_export(opts);
    std::vector<std::size_t> prog_ids;
    for (const auto &name : benchmarks)
        prog_ids.push_back(runner.addProgram(name, insts));
    std::vector<harness::ExperimentConfig> configs;
    for (const auto &pt : points) {
        for (std::size_t i = 0; i < prog_ids.size(); ++i) {
            harness::ExperimentConfig cfg;
            cfg.dynamicTarget = insts;
            cfg.warmupInsts = insts / 10;
            cfg.triggerLevel = pt.trigger;
            cfg.triggerAction = pt.action;
            cfg.intervalCycles = opts.intervalCycles;
            trace_export.configure(cfg);
            runner.submit(prog_ids[i], cfg);
            configs.push_back(cfg);
        }
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");

    Table table({"trigger", "action", "IPC", "SDC AVF", "DUE AVF",
                 "SDC MITF", "DUE MITF"});
    double base_ipc = 0, base_sdc = 0, base_due = 0;
    std::size_t idx = 0;
    for (const auto &pt : points) {
        double ipc = 0, sdc = 0, due = 0;
        for (std::size_t i = 0; i < prog_ids.size(); ++i, ++idx) {
            const harness::RunArtifacts &r = runs[idx];
            if (!opts.jsonPath.empty())
                report.addRun(r, configs[idx]);
            ipc += r.ipc;
            sdc += r.avf->sdcAvf();
            due += r.avf->dueAvf();
        }
        double n = static_cast<double>(prog_ids.size());
        ipc /= n;
        sdc /= n;
        due /= n;
        if (std::string(pt.trigger) == "none") {
            base_ipc = ipc;
            base_sdc = sdc;
            base_due = due;
        }
        table.addRow(
            {pt.trigger, pt.action, Table::fmt(ipc),
             Table::pct(sdc), Table::pct(due),
             Table::fmt((ipc / sdc) / (base_ipc / base_sdc)) + "x",
             Table::fmt((ipc / due) / (base_ipc / base_due)) +
                 "x"});
    }

    harness::printHeading(
        std::cout,
        "trigger/action ablation (avg over " +
            std::to_string(benchmarks.size()) + " benchmarks, " +
            std::to_string(insts) + " insts)");
    table.print(std::cout);

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("triggers", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
