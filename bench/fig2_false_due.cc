/**
 * @file
 * Reproduces the paper's Figure 2: coverage of the instruction
 * queue's false DUE AVF by each cumulative tracking technique —
 * pi-bit to commit, + anti-pi bit, + 512-entry PET buffer,
 * + pi bit per register, + pi to the store buffer, + pi on memory.
 *
 * Prints the per-benchmark coverage fractions plus the int/fp/all
 * averages the paper's text quotes (pi-to-commit ~18%, bigger for
 * int; anti-pi ~49%, bigger for fp; PET +3%; pi-reg +11%;
 * store-buffer +8%; memory +12%; total 100%).
 *
 * Usage: fig2_false_due [insts=N] [pet=512] [csv=1]
 */

#include <iostream>

#include "core/due_tracker.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"

using namespace ser;
using harness::Table;
using core::TrackingLevel;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv,
        "Figure 2: false-DUE coverage by tracking technique");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 200000);
    auto pet = static_cast<std::uint32_t>(config.getUint("pet", 512));
    bool csv = opts.csv;
    harness::JsonReport report;
    report.setArgs(config);

    const TrackingLevel levels[] = {
        TrackingLevel::PiToCommit,   TrackingLevel::AntiPi,
        TrackingLevel::PetBuffer,    TrackingLevel::PiRegFile,
        TrackingLevel::PiStoreBuffer, TrackingLevel::PiMemory,
    };

    Table table({"benchmark", "false DUE AVF", "pi-to-commit",
                 "+anti-pi", "+PET(512)", "+pi-reg", "+pi-store",
                 "+pi-mem"});

    // Incremental coverage sums for the int/fp/all averages.
    double inc_sum[2][6] = {};
    int group_n[2] = {};

    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = insts;
    cfg.warmupInsts = insts / 10;
    cfg.petSize = pet;
    cfg.intervalCycles = opts.intervalCycles;

    // One run per surrogate, executed on the --jobs worker pool;
    // aggregation below walks the results in suite order.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("fig2_false_due");
    harness::TraceExport trace_export(opts);
    for (const auto &profile : workloads::specSuite()) {
        trace_export.configure(cfg);
        runner.submit(runner.addProgram(profile, insts), cfg);
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");

    std::size_t idx = 0;
    for (const auto &profile : workloads::specSuite()) {
        const harness::RunArtifacts &r = runs[idx++];
        if (!opts.jsonPath.empty())
            report.addRun(r, cfg);

        std::vector<std::string> row{
            profile.name, Table::pct(r.falseDue.baseFalseDueAvf)};
        int g = profile.floatingPoint ? 1 : 0;
        double prev = 0.0;
        for (int i = 0; i < 6; ++i) {
            double cum = r.falseDue.coveredFraction(levels[i]);
            row.push_back(Table::pct(cum));
            inc_sum[g][i] += cum - prev;
            prev = cum;
        }
        ++group_n[g];
        table.addRow(row);
    }

    harness::printHeading(
        std::cout,
        "Figure 2: cumulative coverage of the false DUE AVF");
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    harness::printHeading(std::cout,
                          "incremental coverage by technique");
    Table avg({"technique", "int avg", "fp avg", "all avg",
               "paper (all)"});
    const char *names[] = {"pi-to-commit", "anti-pi", "PET buffer",
                           "pi per register", "pi to store buffer",
                           "pi on memory"};
    const char *paper[] = {"18%", "49%", "3%", "11%", "8%", "12%"};
    for (int i = 0; i < 6; ++i) {
        double int_avg = inc_sum[0][i] / group_n[0];
        double fp_avg = inc_sum[1][i] / group_n[1];
        double all = (inc_sum[0][i] + inc_sum[1][i]) /
                     (group_n[0] + group_n[1]);
        avg.addRow({names[i], Table::pct(int_avg),
                    Table::pct(fp_avg), Table::pct(all), paper[i]});
    }
    avg.print(std::cout);
    std::cout << "\n(cumulative coverage reaches 100% at pi-on-"
                 "memory for every benchmark, matching the paper's "
                 "complete-coverage claim)\n";

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("coverage", table);
        report.addTable("incremental", avg);
        report.write(opts.jsonPath);
    }
    return 0;
}
