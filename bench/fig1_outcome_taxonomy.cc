/**
 * @file
 * Reproduces the paper's Figure 1 as a measurement: classifies a
 * Monte-Carlo fault-injection campaign into the possible outcomes of
 * a single-bit fault —
 *
 *   1  benign: no bit affected / fault-free state
 *   2  benign: bit read-protected (squashed or never read again)
 *   3  benign: read, but does not affect the outcome
 *   4  SDC    (no detection)
 *   5  false DUE (detection, error would have been benign)
 *   6  true DUE  (detection, error affects the outcome)
 *
 * and cross-validates the injected SDC/DUE rates against the
 * analytical (ACE) AVF — the injection rate must sit at or below the
 * conservative analytical bound.
 *
 * Usage: fig1_outcome_taxonomy [benchmark=gzip] [insts=N]
 *        [samples=800] [seed=S]
 */

#include <iostream>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "core/tracked_injection.hh"
#include "cpu/pipeline.hh"
#include "faults/campaign.hh"
#include "harness/bench_options.hh"
#include "harness/manifest.hh"
#include "harness/progress.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "harness/telemetry_server.hh"
#include "isa/executor.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv,
        "Figure 1: fault-injection outcome taxonomy");
    harness::TraceExport::warnUnsupported(opts);
    Config &config = opts.config;
    std::string benchmark = config.getString("benchmark", "gzip");
    std::uint64_t insts = config.getUint("insts", 60000);
    std::uint64_t samples = config.getUint("samples", 800);
    std::uint64_t seed = config.getUint("seed", 0xFA117);

    isa::Program program =
        workloads::buildBenchmark(benchmark, insts);

    isa::Executor golden(program);
    if (golden.run(insts * 3) != isa::Termination::Halted) {
        std::cerr << "golden run did not halt\n";
        return 1;
    }

    cpu::PipelineParams params;
    params.maxInsts = insts * 3;
    cpu::InOrderPipeline pipe(program, params);
    cpu::SimTrace trace = pipe.run();
    trace.program = &program;

    avf::DeadnessResult dead = avf::analyzeDeadness(trace);
    avf::AvfResult avf = avf::computeAvf(trace, dead);

    faults::FaultInjector injector(program, trace,
                                   golden.state().output());

    harness::printHeading(
        std::cout, "Figure 1: outcome taxonomy (" + benchmark +
                       ", " + std::to_string(samples) +
                       " payload-bit faults)");

    Table table({"outcome", "unprotected", "parity", "parity+pi",
                 "ECC"});
    faults::CampaignConfig cfg;
    cfg.samples = samples;
    cfg.seed = seed;

    // The four campaigns share the injector and trace read-only
    // (FaultInjector::classify is const), so they fan out on the
    // --jobs worker pool. Each campaign seeds its own RNG from the
    // config, so results are independent of scheduling. This bench
    // bypasses SuiteRunner, so it drives the --progress reporter
    // (and the --serve /runs ledger) itself; /status works because
    // the telemetry server reads the same Progress state.
    harness::Progress &progress = harness::Progress::instance();
    progress.beginSweep(4, "fig1_outcome_taxonomy");
    harness::TelemetryServer &server =
        harness::TelemetryServer::instance();
    static const char *kVariants[] = {"none", "parity", "ecc",
                                      "parity+pi"};
    faults::CampaignResult unprot, parity, ecc, tracked;
    harness::parallelFor(4, opts.jobs, [&](std::size_t i) {
        SER_PROF_SCOPE("campaign");
        faults::CampaignConfig c = cfg;
        switch (i) {
          case 0:
            c.protection = faults::Protection::None;
            unprot = faults::runCampaign(injector, trace, c);
            break;
          case 1:
            c.protection = faults::Protection::Parity;
            parity = faults::runCampaign(injector, trace, c);
            break;
          case 2:
            c.protection = faults::Protection::Ecc;
            ecc = faults::runCampaign(injector, trace, c);
            break;
          case 3: {
            // Parity plus the full pi machinery (tracked to the
            // store buffer, the paper's option 3): deferred
            // detections that prove harmless become benign.
            core::PiMachine machine(
                trace, core::TrackingLevel::PiStoreBuffer);
            c.protection = faults::Protection::Parity;
            tracked = core::runTrackedCampaign(injector, trace,
                                               machine, c);
            break;
          }
        }
        progress.runCompleted();
        if (server.running())
            server.publishRun(i,
                              std::string("campaign/") + kVariants[i],
                              trace.ipc(), "");
    });
    progress.endSweep();

    for (int o = 0; o < faults::numOutcomes; ++o) {
        auto oc = static_cast<faults::Outcome>(o);
        table.addRow({faults::outcomeName(oc),
                      Table::pct(unprot.rate(oc)),
                      Table::pct(parity.rate(oc)),
                      Table::pct(tracked.rate(oc)),
                      Table::pct(ecc.rate(oc))});
    }
    table.print(std::cout);
    std::cout << "\n(parity turns SDC into DUE; the pi machinery "
                 "moves the provably-false DUEs back to benign; ECC "
                 "removes outcomes 3-6 entirely, at the cost the "
                 "paper's introduction describes)\n";

    harness::printHeading(std::cout,
                          "injection vs analytical (ACE) AVF");
    auto ci = [](faults::Interval i) {
        return "[" + Table::pct(i.lo) + ", " + Table::pct(i.hi) +
               "]";
    };
    std::cout << "SDC rate (injected)     "
              << Table::pct(unprot.sdcRate()) << " 95% CI "
              << ci(unprot.interval(faults::Outcome::Sdc)) << "\n";
    std::cout << "SDC AVF (analytical)    "
              << Table::pct(avf.sdcAvf())
              << "  (conservative upper bound)\n";
    std::cout << "DUE rate (injected)     "
              << Table::pct(parity.dueRate()) << "\n";
    std::cout << "DUE AVF (analytical)    "
              << Table::pct(avf.dueAvf()) << "\n";
    std::cout << "false/total DUE (inj.)  "
              << Table::pct(parity.dueRate() > 0
                                ? parity.rate(
                                      faults::Outcome::FalseDue) /
                                      parity.dueRate()
                                : 0)
              << "  (paper: false DUE up to ~52% of the total)\n";

    bool ok = unprot.interval(faults::Outcome::Sdc).lo <=
              avf.sdcAvf() + 0.02;
    std::cout << "\nconsistency: "
              << (ok ? "PASS (injection within the analytical "
                       "bound)"
                     : "FAIL")
              << "\n";

    if (!opts.jsonPath.empty()) {
        harness::JsonReport report;
        report.setArgs(config);
        report.addTable("outcomes", table);
        report.write(opts.jsonPath);
    }
    return ok ? 0 : 1;
}
