/**
 * @file
 * Ablation: AVF and the benefit of squashing as a function of the
 * instruction-queue size (the paper fixes 64 entries; this sweep
 * shows how exposure and the squashing win scale with the structure
 * being protected).
 *
 * Usage: ablation_iq_size [insts=N] [benchmark=vortex]
 */

#include <iostream>

#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "sim/config.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Ablation: AVF vs instruction-queue size");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 120000);
    std::string benchmark = config.getString("benchmark", "vortex");
    harness::JsonReport report;
    report.setArgs(config);

    isa::Program program =
        workloads::buildBenchmark(benchmark, insts);
    std::uint64_t seed = workloads::findProfile(benchmark).seed;

    Table table({"IQ entries", "IPC", "SDC AVF", "idle",
                 "SDC AVF (squash l1)", "squash dSDC"});
    for (unsigned entries : {16u, 32u, 64u, 128u, 256u}) {
        harness::ExperimentConfig cfg;
        cfg.dynamicTarget = insts;
        cfg.warmupInsts = insts / 10;
        cfg.pipeline.iqEntries = entries;
        cfg.intervalCycles = opts.intervalCycles;
        auto base = harness::runProgram(program, cfg, benchmark);
        base.seed = seed;

        cfg.triggerLevel = "l1";
        auto squash = harness::runProgram(program, cfg, benchmark);
        squash.seed = seed;
        if (!opts.jsonPath.empty()) {
            report.addRun(base, cfg);
            report.addRun(squash, cfg);
        }

        table.addRow(
            {std::to_string(entries), Table::fmt(base.ipc),
             Table::pct(base.avf.sdcAvf()),
             Table::pct(base.avf.idleFraction()),
             Table::pct(squash.avf.sdcAvf()),
             Table::pct(squash.avf.sdcAvf() / base.avf.sdcAvf() -
                        1)});
    }

    harness::printHeading(std::cout,
                          "IQ size ablation (" + benchmark + ")");
    table.print(std::cout);
    std::cout << "\n(the AVF *fraction* falls with queue size as a "
                 "bigger queue holds more idle/unread state, while "
                 "the absolute exposed bit-cycles grow; squashing "
                 "matters more as occupancy rises)\n";

    if (!opts.jsonPath.empty()) {
        report.addTable("iq_size", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
