/**
 * @file
 * Ablation: AVF and the benefit of squashing as a function of the
 * instruction-queue size (the paper fixes 64 entries; this sweep
 * shows how exposure and the squashing win scale with the structure
 * being protected).
 *
 * Usage: ablation_iq_size [insts=N] [benchmark=vortex]
 */

#include <iostream>

#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Ablation: AVF vs instruction-queue size");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 120000);
    std::string benchmark = config.getString("benchmark", "vortex");
    harness::JsonReport report;
    report.setArgs(config);

    const unsigned sizes[] = {16u, 32u, 64u, 128u, 256u};

    // One shared program build; the 5 sizes x {base, squash-l1}
    // runs execute on the --jobs worker pool.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("ablation_iq_size");
    harness::TraceExport trace_export(opts);
    std::size_t prog = runner.addProgram(benchmark, insts);
    std::vector<harness::ExperimentConfig> configs;
    for (unsigned entries : sizes) {
        harness::ExperimentConfig cfg;
        cfg.dynamicTarget = insts;
        cfg.warmupInsts = insts / 10;
        cfg.pipeline.iqEntries = entries;
        cfg.intervalCycles = opts.intervalCycles;
        trace_export.configure(cfg);
        runner.submit(prog, cfg);
        configs.push_back(cfg);

        cfg.triggerLevel = "l1";
        trace_export.configure(cfg);
        runner.submit(prog, cfg);
        configs.push_back(cfg);
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");

    Table table({"IQ entries", "IPC", "SDC AVF", "idle",
                 "SDC AVF (squash l1)", "squash dSDC"});
    std::size_t idx = 0;
    for (unsigned entries : sizes) {
        const harness::RunArtifacts &base = runs[idx];
        const harness::RunArtifacts &squash = runs[idx + 1];
        if (!opts.jsonPath.empty()) {
            report.addRun(base, configs[idx]);
            report.addRun(squash, configs[idx + 1]);
        }
        idx += 2;

        table.addRow(
            {std::to_string(entries), Table::fmt(base.ipc),
             Table::pct(base.avf->sdcAvf()),
             Table::pct(base.avf->idleFraction()),
             Table::pct(squash.avf->sdcAvf()),
             Table::pct(squash.avf->sdcAvf() / base.avf->sdcAvf() -
                        1)});
    }

    harness::printHeading(std::cout,
                          "IQ size ablation (" + benchmark + ")");
    table.print(std::cout);
    std::cout << "\n(the AVF *fraction* falls with queue size as a "
                 "bigger queue holds more idle/unread state, while "
                 "the absolute exposed bit-cycles grow; squashing "
                 "matters more as occupancy rises)\n";

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("iq_size", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
