/**
 * @file
 * Reproduces the paper's Table 2 in surrogate form: the benchmark
 * roster (12 integer + 14 floating point CPU2000 programs). Where
 * the paper lists SimPoint skip intervals, we list each surrogate's
 * generator parameters, and then measure the dynamic properties the
 * paper quotes in the text: the dynamically-dead fraction (~20% on
 * average) and the instruction mix.
 *
 * Usage: table2_roster [insts=N] [csv=1]
 */

#include <iostream>

#include <vector>

#include "avf/deadness.hh"
#include "cpu/pipeline.hh"
#include "harness/bench_options.hh"
#include "harness/manifest.hh"
#include "harness/progress.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "harness/telemetry_server.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Table 2: the surrogate benchmark roster");
    harness::TraceExport::warnUnsupported(opts);
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 120000);
    bool csv = opts.csv;

    Table roster({"benchmark", "type", "kernel", "working set",
                  "no-op density", "prefetch", "branch entropy",
                  "dyn insts", "dead", "fdd-reg", "tdd-reg",
                  "dead-mem", "return-fdd"});

    // Each benchmark's build + run + deadness analysis is
    // independent: fan out on the --jobs worker pool, writing into
    // pre-sized per-benchmark slots, then aggregate serially in
    // suite order so the table is identical for any job count.
    const auto &suite = workloads::specSuite();
    std::vector<avf::DeadnessResult> deadness(suite.size());
    // Bare parallelFor (no SuiteRunner), so this bench drives the
    // --progress reporter (and the --serve /runs ledger) itself;
    // /status works because the telemetry server reads the same
    // Progress state.
    harness::Progress &progress = harness::Progress::instance();
    progress.beginSweep(suite.size(), "table2_roster");
    harness::TelemetryServer &server =
        harness::TelemetryServer::instance();
    harness::parallelFor(
        suite.size(), opts.jobs, [&](std::size_t i) {
            SER_PROF_SCOPE("roster_point");
            isa::Program program =
                workloads::buildBenchmark(suite[i], insts);
            cpu::PipelineParams params;
            params.maxInsts = insts * 2;
            cpu::InOrderPipeline pipe(program, params);
            cpu::SimTrace trace = pipe.run();
            trace.program = &program;
            deadness[i] = avf::analyzeDeadness(trace);
            progress.runCompleted();
            if (server.running())
                server.publishRun(i, suite[i].name, trace.ipc(),
                                  "");
        });
    progress.endSweep();

    SER_PROF_SCOPE("aggregate");
    double dead_sum = 0;
    int count = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const workloads::BenchmarkProfile &profile = suite[i];
        const avf::DeadnessResult &dead = deadness[i];

        double n = static_cast<double>(dead.numInsts);
        roster.addRow(
            {profile.name, profile.floatingPoint ? "fp" : "int",
             workloads::kernelName(profile.kernel),
             std::to_string(profile.wsWords * 8 / 1024) + " KB",
             Table::fmt(profile.noopDensity),
             Table::fmt(profile.prefetchDensity),
             std::to_string(profile.entropyBits) + "b",
             std::to_string(dead.numInsts),
             Table::pct(dead.deadFraction()),
             Table::pct(dead.numFddReg / n),
             Table::pct(dead.numTddReg / n),
             Table::pct((dead.numFddMem + dead.numTddMem) / n),
             Table::pct(dead.numReturnFdd / n)});
        dead_sum += dead.deadFraction();
        ++count;
    }

    harness::printHeading(
        std::cout,
        "Table 2 (surrogate roster): the SPEC CPU2000 stand-ins");
    if (csv)
        roster.printCsv(std::cout);
    else
        roster.print(std::cout);

    std::cout << "\nsuite-average dynamically dead fraction: "
              << Table::pct(dead_sum / count)
              << "  (paper: ~20% of all instructions)\n";

    if (!opts.jsonPath.empty()) {
        harness::JsonReport report;
        report.setArgs(config);
        report.addTable("roster", roster);
        report.write(opts.jsonPath);
    }
    return 0;
}
