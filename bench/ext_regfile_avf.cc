/**
 * @file
 * Extension study (the paper's closing remark): applying the same
 * machinery to the register files. For each benchmark, reports the
 * int/fp/predicate register-file SDC AVFs, the dead-value fraction
 * a pi-bit-per-register scheme would prove false on a parity-
 * protected file, and the effect of instruction-queue squashing on
 * the register files (minimal — squashing protects queue residency,
 * not committed values, which is why the paper applies it to the
 * queue).
 *
 * Usage: ext_regfile_avf [insts=N] [csv=1]
 */

#include <iostream>

#include "avf/regfile_avf.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Extension: register-file AVF");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 150000);
    bool csv = opts.csv;
    harness::JsonReport report;
    report.setArgs(config);

    Table table({"benchmark", "int SDC AVF", "int dead-value",
                 "fp SDC AVF", "fp dead-value", "pred SDC AVF",
                 "IQ SDC AVF"});
    double int_sum = 0, dead_sum = 0;
    int n = 0;

    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = insts;
    cfg.warmupInsts = insts / 10;
    cfg.intervalCycles = opts.intervalCycles;

    // One run per surrogate on the --jobs worker pool.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("ext_regfile_avf");
    harness::TraceExport trace_export(opts);
    for (const auto &profile : workloads::specSuite()) {
        trace_export.configure(cfg);
        runner.submit(runner.addProgram(profile, insts), cfg);
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");

    std::size_t idx = 0;
    for (const auto &profile : workloads::specSuite()) {
        const harness::RunArtifacts &r = runs[idx++];
        if (!opts.jsonPath.empty())
            report.addRun(r, cfg);
        auto rf = avf::computeRegFileAvf(*r.trace, *r.deadness);
        table.addRow({profile.name,
                      Table::pct(rf.intFile.sdcAvf()),
                      Table::pct(rf.intFile.falseDueAvf()),
                      Table::pct(rf.fpFile.sdcAvf()),
                      Table::pct(rf.fpFile.falseDueAvf()),
                      Table::pct(rf.predFile.sdcAvf()),
                      Table::pct(r.avf->sdcAvf())});
        int_sum += rf.intFile.sdcAvf();
        dead_sum += rf.intFile.falseDueAvf();
        ++n;
    }

    harness::printHeading(
        std::cout,
        "extension: register-file AVF (paper Section 8: 'they can "
        "also reduce the AVF of other structures, such as the "
        "register file')");
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\naverages: int-file SDC AVF "
              << Table::pct(int_sum / n) << ", of which dead-value "
              << Table::pct(dead_sum / n)
              << " is removable by the pi-bit-per-register scheme "
                 "on a parity-protected file\n";

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("regfile_avf", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
