/**
 * @file
 * Simulator performance microbenchmarks (google-benchmark): how fast
 * the substrates themselves run — cache lookups, predictor lookups,
 * the assembler, the functional executor, the timing pipeline, and
 * the post-run analyses. Useful for keeping the simulator fast
 * enough for full-suite sweeps.
 */

#include <benchmark/benchmark.h>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "branch/predictor.hh"
#include "cpu/pipeline.hh"
#include "cpu/sampler.hh"
#include "harness/experiment.hh"
#include "harness/suite_runner.hh"
#include "isa/assembler.hh"
#include "isa/executor.hh"
#include "avf/attribution.hh"
#include "memory/hierarchy.hh"
#include "sim/prof.hh"
#include "sim/rng.hh"
#include "sim/trace_event.hh"
#include "workloads/suite.hh"

using namespace ser;

namespace
{

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    memory::CacheHierarchy h;
    Rng rng(1);
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        std::uint64_t addr = rng.range(1 << 22) & ~7ULL;
        benchmark::DoNotOptimize(h.access(addr, cycle));
        cycle += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_GsharePredict(benchmark::State &state)
{
    branch::GsharePredictor pred(16384, 12);
    Rng rng(2);
    for (auto _ : state) {
        std::uint64_t pc = rng.range(4096);
        auto l = pred.predict(pc);
        pred.update(pc, l.taken, l);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredict);

void
BM_Assembler(benchmark::State &state)
{
    std::string src = workloads::benchmarkSource(
        workloads::findProfile("gzip"), 100000);
    for (auto _ : state) {
        auto result = isa::assemble(src);
        benchmark::DoNotOptimize(result.ok());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * src.size()));
}
BENCHMARK(BM_Assembler);

void
BM_FunctionalExecutor(benchmark::State &state)
{
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        isa::Executor ex(program);
        ex.run(50000);
        benchmark::DoNotOptimize(ex.steps());
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_FunctionalExecutor);

void
BM_TimingPipeline(benchmark::State &state)
{
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        cpu::PipelineParams params;
        params.maxInsts = 20000;
        cpu::InOrderPipeline pipe(program, params);
        auto trace = pipe.run();
        benchmark::DoNotOptimize(trace.commits.size());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipeline);

void
BM_TimingPipelineProfiled(benchmark::State &state)
{
    // The same run as BM_TimingPipeline but with sim::prof enabled
    // (as --metrics-out arms it): the gap between the two is the
    // live telemetry cost, and BM_TimingPipeline itself (telemetry
    // compiled in, disabled) carries the <2% disabled-overhead
    // budget the perf_regression_gate enforces.
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    prof::setEnabled(true);
    for (auto _ : state) {
        cpu::PipelineParams params;
        params.maxInsts = 20000;
        cpu::InOrderPipeline pipe(program, params);
        auto trace = pipe.run();
        benchmark::DoNotOptimize(trace.commits.size());
    }
    prof::setEnabled(false);
    prof::reset();
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipelineProfiled);

void
BM_TimingPipelineTraced(benchmark::State &state)
{
    // The same run as BM_TimingPipeline but with the lifetime trace
    // writer attached: the gap between the two is the cost of
    // --trace-events, and BM_TimingPipeline itself (tracing compiled
    // in, disabled) must not regress against pre-tracing baselines.
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        cpu::PipelineParams params;
        params.maxInsts = 20000;
        cpu::InOrderPipeline pipe(program, params);
        trace::TraceWriter tw;
        pipe.setTraceWriter(&tw);
        auto trace = pipe.run();
        benchmark::DoNotOptimize(tw.eventCount());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipelineTraced);

cpu::PipelineParams
longLatencyParams(bool cycle_skip)
{
    // The cycle-skipping showcase: a hierarchy slow enough that the
    // pipeline spends most simulated cycles waiting on misses. With
    // skipping the scheduler jumps those spans; without it every one
    // is ticked. The gap between the two benchmarks below is the
    // event-driven speedup (small on the default low-latency config,
    // which rarely goes idle for long; growing with miss latency as
    // idle spans come to dominate the cycle count).
    cpu::PipelineParams params;
    params.maxInsts = 20000;
    params.cycleSkip = cycle_skip;
    params.hierarchy.l1.hitLatency = 60;
    params.hierarchy.l2.hitLatency = 300;
    params.hierarchy.memLatency = 2500;
    return params;
}

void
BM_TimingPipelineLongLat(benchmark::State &state)
{
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        cpu::InOrderPipeline pipe(program, longLatencyParams(true));
        auto trace = pipe.run();
        benchmark::DoNotOptimize(trace.commits.size());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipelineLongLat);

void
BM_TimingPipelineLongLatNoSkip(benchmark::State &state)
{
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        cpu::InOrderPipeline pipe(program, longLatencyParams(false));
        auto trace = pipe.run();
        benchmark::DoNotOptimize(trace.commits.size());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipelineLongLatNoSkip);

void
BM_TraceWriterThroughput(benchmark::State &state)
{
    // Raw writer throughput: one B/E residency pair per item.
    for (auto _ : state) {
        trace::TraceWriter tw;
        std::uint64_t ts = 0;
        for (std::uint64_t i = 0; i < 1000; ++i) {
            tw.begin(trace::tracks::iqBase, "add r1 = r2, r3", ts,
                     {{"seq", i}, {"outcome", "commit"}});
            tw.end(trace::tracks::iqBase, ts + 10);
            ts += 10;
        }
        benchmark::DoNotOptimize(tw.str().size());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TraceWriterThroughput);

void
BM_IntervalSamplerAdvance(benchmark::State &state)
{
    // Sampler batch advances as the cycle-skipping pipeline issues
    // them: a deterministic mix of short mid-epoch spans (the
    // counter-free fast path) and spans that cross an epoch close.
    constexpr std::uint64_t epoch = 1000;
    constexpr std::uint64_t advances = 100000;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        cpu::IntervalSampler sampler(epoch);
        sampler.windowOpen(0);
        cpu::IntervalCounters ctr;
        std::uint64_t cycle = 0;
        std::uint64_t lcg = 12345;
        for (std::uint64_t i = 0; i < advances; ++i) {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            const std::uint64_t span = 1 + ((lcg >> 33) % 37);
            ctr.committed += 3;
            ctr.fetched += 4;
            ctr.iqOccupancy = (lcg >> 20) & 63;
            ctr.iqWaiting = ctr.iqOccupancy / 2;
            if (sampler.needsCounters(span))
                sampler.advance(cycle, span, ctr);
            else
                sampler.advanceMidEpoch(span, ctr.iqOccupancy,
                                        ctr.iqWaiting);
            cycle += span;
        }
        sampler.finish(cycle, ctr);
        sink += sampler.samples().size();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * advances);
}
BENCHMARK(BM_IntervalSamplerAdvance);

/**
 * One vortex/200k simulation shared by every analysis benchmark
 * (each used to run its own copy: three simulations, three programs
 * held for the process lifetime). Heap-allocated and leaked so
 * trace.program stays valid with a stable address.
 */
struct AnalysisFixture
{
    isa::Program program;
    cpu::SimTrace trace;
    avf::DeadnessResult dead;
};

const AnalysisFixture &
analysisFixture()
{
    static const AnalysisFixture *fixture = [] {
        auto *f = new AnalysisFixture;
        f->program = workloads::buildBenchmark("vortex", 200000);
        cpu::PipelineParams params;
        params.maxInsts = 400000;
        cpu::InOrderPipeline pipe(f->program, params);
        f->trace = pipe.run();
        f->trace.program = &f->program;
        f->dead = avf::analyzeDeadness(f->trace);
        return f;
    }();
    return *fixture;
}

void
BM_DeadnessAnalysis(benchmark::State &state)
{
    const AnalysisFixture &f = analysisFixture();
    for (auto _ : state) {
        auto dead = avf::analyzeDeadness(f.trace);
        benchmark::DoNotOptimize(dead.numDead());
    }
    state.SetItemsProcessed(state.iterations() *
                            f.trace.commits.size());
}
BENCHMARK(BM_DeadnessAnalysis);

void
BM_AvfFold(benchmark::State &state)
{
    const AnalysisFixture &f = analysisFixture();
    for (auto _ : state) {
        auto avf = avf::computeAvf(f.trace, f.dead);
        benchmark::DoNotOptimize(avf.sdcAvf());
    }
    state.SetItemsProcessed(state.iterations() *
                            f.trace.incarnations.size());
}
BENCHMARK(BM_AvfFold);

void
BM_AvfAttribution(benchmark::State &state)
{
    const AnalysisFixture &f = analysisFixture();
    for (auto _ : state) {
        auto attr = avf::attributeAvf(f.trace, f.dead);
        benchmark::DoNotOptimize(attr.totalAce);
    }
    state.SetItemsProcessed(state.iterations() *
                            f.trace.incarnations.size());
}
BENCHMARK(BM_AvfAttribution);

void
BM_CampaignThroughput(benchmark::State &state)
{
    // Injections/second through the full campaign engine (keyed
    // sampling, checkpoint/fork re-runs, Wilson fold) on the shared
    // vortex trace. Guards the checkpoint/fork economics: if forking
    // regresses toward full replays, this rate collapses.
    const AnalysisFixture &f = analysisFixture();
    static const avf::AvfResult *avf = [] {
        return new avf::AvfResult(avf::computeAvf(
            analysisFixture().trace, analysisFixture().dead));
    }();
    faults::CampaignSpec spec;
    spec.samples = 2000;
    spec.structures = faults::structIq;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        spec.seed = seed++;  // defeat any memoization, vary sites
        auto out = faults::runCampaignEngine(f.program, f.trace,
                                             f.dead, *avf, spec);
        benchmark::DoNotOptimize(out.samplesRun);
    }
    state.SetItemsProcessed(state.iterations() * spec.samples);
}
BENCHMARK(BM_CampaignThroughput);

void
BM_SuiteRunnerSweep(benchmark::State &state)
{
    // A small design-point sweep (one shared program, four IQ
    // sizes) end to end, at jobs = state.range(0). On a multi-core
    // host the jobs=4 variant shows the worker-pool speedup; the
    // result vector is submission-ordered either way.
    const std::uint64_t insts = 20000;
    auto jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        // Each design point has a distinct sim key, but iterations
        // repeat them: drop the run cache so every iteration
        // measures real simulation work.
        harness::RunCache::instance().clear();
        harness::SuiteRunner runner(jobs);
        std::size_t prog = runner.addProgram("gzip", insts);
        for (unsigned entries : {16u, 32u, 64u, 128u}) {
            harness::ExperimentConfig cfg;
            cfg.dynamicTarget = insts;
            cfg.warmupInsts = insts / 10;
            cfg.pipeline.iqEntries = entries;
            runner.submit(prog, cfg);
        }
        auto runs = runner.run();
        benchmark::DoNotOptimize(runs.front().ipc);
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_SuiteRunnerSweep)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_RunProgramCacheHit(benchmark::State &state)
{
    // End-to-end harness::runProgram when every run-cache section
    // hits: what each additional sweep point costs once the first
    // point has paid for simulation and analysis (the remaining
    // work is the false-DUE fold plus artifact plumbing).
    static auto program = std::make_shared<const isa::Program>(
        workloads::buildBenchmark("gzip", 20000));
    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = 20000;
    cfg.warmupInsts = 0;
    harness::RunCache &cache = harness::RunCache::instance();
    cache.clear();
    auto warm = harness::runProgram(program, cfg, "gzip");
    benchmark::DoNotOptimize(warm.ipc);
    for (auto _ : state) {
        auto r = harness::runProgram(program, cfg, "gzip");
        benchmark::DoNotOptimize(r.avf->sdcAvf());
    }
    cache.clear();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunProgramCacheHit);

} // namespace

BENCHMARK_MAIN();
