/**
 * @file
 * Simulator performance microbenchmarks (google-benchmark): how fast
 * the substrates themselves run — cache lookups, predictor lookups,
 * the assembler, the functional executor, the timing pipeline, and
 * the post-run analyses. Useful for keeping the simulator fast
 * enough for full-suite sweeps.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "branch/predictor.hh"
#include "cpu/pipeline.hh"
#include "cpu/sampler.hh"
#include "harness/cache_codec.hh"
#include "harness/disk_cache.hh"
#include "harness/experiment.hh"
#include "harness/suite_runner.hh"
#include "harness/sweep_service.hh"
#include "isa/assembler.hh"
#include "isa/executor.hh"
#include "avf/attribution.hh"
#include "memory/hierarchy.hh"
#include "sim/mpmc_queue.hh"
#include "sim/prof.hh"
#include "sim/rng.hh"
#include "sim/trace_event.hh"
#include "workloads/suite.hh"

using namespace ser;

namespace
{

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    memory::CacheHierarchy h;
    Rng rng(1);
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        std::uint64_t addr = rng.range(1 << 22) & ~7ULL;
        benchmark::DoNotOptimize(h.access(addr, cycle));
        cycle += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_GsharePredict(benchmark::State &state)
{
    branch::GsharePredictor pred(16384, 12);
    Rng rng(2);
    for (auto _ : state) {
        std::uint64_t pc = rng.range(4096);
        auto l = pred.predict(pc);
        pred.update(pc, l.taken, l);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredict);

void
BM_Assembler(benchmark::State &state)
{
    std::string src = workloads::benchmarkSource(
        workloads::findProfile("gzip"), 100000);
    for (auto _ : state) {
        auto result = isa::assemble(src);
        benchmark::DoNotOptimize(result.ok());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * src.size()));
}
BENCHMARK(BM_Assembler);

void
BM_FunctionalExecutor(benchmark::State &state)
{
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        isa::Executor ex(program);
        ex.run(50000);
        benchmark::DoNotOptimize(ex.steps());
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_FunctionalExecutor);

void
BM_TimingPipeline(benchmark::State &state)
{
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        cpu::PipelineParams params;
        params.maxInsts = 20000;
        cpu::InOrderPipeline pipe(program, params);
        auto trace = pipe.run();
        benchmark::DoNotOptimize(trace.commits.size());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipeline);

void
BM_TimingPipelineProfiled(benchmark::State &state)
{
    // The same run as BM_TimingPipeline but with sim::prof enabled
    // (as --metrics-out arms it): the gap between the two is the
    // live telemetry cost, and BM_TimingPipeline itself (telemetry
    // compiled in, disabled) carries the <2% disabled-overhead
    // budget the perf_regression_gate enforces.
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    prof::setEnabled(true);
    for (auto _ : state) {
        cpu::PipelineParams params;
        params.maxInsts = 20000;
        cpu::InOrderPipeline pipe(program, params);
        auto trace = pipe.run();
        benchmark::DoNotOptimize(trace.commits.size());
    }
    prof::setEnabled(false);
    prof::reset();
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipelineProfiled);

void
BM_TimingPipelineTraced(benchmark::State &state)
{
    // The same run as BM_TimingPipeline but with the lifetime trace
    // writer attached: the gap between the two is the cost of
    // --trace-events, and BM_TimingPipeline itself (tracing compiled
    // in, disabled) must not regress against pre-tracing baselines.
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        cpu::PipelineParams params;
        params.maxInsts = 20000;
        cpu::InOrderPipeline pipe(program, params);
        trace::TraceWriter tw;
        pipe.setTraceWriter(&tw);
        auto trace = pipe.run();
        benchmark::DoNotOptimize(tw.eventCount());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipelineTraced);

cpu::PipelineParams
longLatencyParams(bool cycle_skip)
{
    // The cycle-skipping showcase: a hierarchy slow enough that the
    // pipeline spends most simulated cycles waiting on misses. With
    // skipping the scheduler jumps those spans; without it every one
    // is ticked. The gap between the two benchmarks below is the
    // event-driven speedup (small on the default low-latency config,
    // which rarely goes idle for long; growing with miss latency as
    // idle spans come to dominate the cycle count).
    cpu::PipelineParams params;
    params.maxInsts = 20000;
    params.cycleSkip = cycle_skip;
    params.hierarchy.l1.hitLatency = 60;
    params.hierarchy.l2.hitLatency = 300;
    params.hierarchy.memLatency = 2500;
    return params;
}

void
BM_TimingPipelineLongLat(benchmark::State &state)
{
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        cpu::InOrderPipeline pipe(program, longLatencyParams(true));
        auto trace = pipe.run();
        benchmark::DoNotOptimize(trace.commits.size());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipelineLongLat);

void
BM_TimingPipelineLongLatNoSkip(benchmark::State &state)
{
    isa::Program program =
        workloads::buildBenchmark("gzip", 1000000);
    for (auto _ : state) {
        cpu::InOrderPipeline pipe(program, longLatencyParams(false));
        auto trace = pipe.run();
        benchmark::DoNotOptimize(trace.commits.size());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TimingPipelineLongLatNoSkip);

void
BM_TraceWriterThroughput(benchmark::State &state)
{
    // Raw writer throughput: one B/E residency pair per item.
    for (auto _ : state) {
        trace::TraceWriter tw;
        std::uint64_t ts = 0;
        for (std::uint64_t i = 0; i < 1000; ++i) {
            tw.begin(trace::tracks::iqBase, "add r1 = r2, r3", ts,
                     {{"seq", i}, {"outcome", "commit"}});
            tw.end(trace::tracks::iqBase, ts + 10);
            ts += 10;
        }
        benchmark::DoNotOptimize(tw.str().size());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TraceWriterThroughput);

void
BM_IntervalSamplerAdvance(benchmark::State &state)
{
    // Sampler batch advances as the cycle-skipping pipeline issues
    // them: a deterministic mix of short mid-epoch spans (the
    // counter-free fast path) and spans that cross an epoch close.
    constexpr std::uint64_t epoch = 1000;
    constexpr std::uint64_t advances = 100000;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        cpu::IntervalSampler sampler(epoch);
        sampler.windowOpen(0);
        cpu::IntervalCounters ctr;
        std::uint64_t cycle = 0;
        std::uint64_t lcg = 12345;
        for (std::uint64_t i = 0; i < advances; ++i) {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            const std::uint64_t span = 1 + ((lcg >> 33) % 37);
            ctr.committed += 3;
            ctr.fetched += 4;
            ctr.iqOccupancy = (lcg >> 20) & 63;
            ctr.iqWaiting = ctr.iqOccupancy / 2;
            if (sampler.needsCounters(span))
                sampler.advance(cycle, span, ctr);
            else
                sampler.advanceMidEpoch(span, ctr.iqOccupancy,
                                        ctr.iqWaiting);
            cycle += span;
        }
        sampler.finish(cycle, ctr);
        sink += sampler.samples().size();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * advances);
}
BENCHMARK(BM_IntervalSamplerAdvance);

/**
 * One vortex/200k simulation shared by every analysis benchmark
 * (each used to run its own copy: three simulations, three programs
 * held for the process lifetime). Heap-allocated and leaked so
 * trace.program stays valid with a stable address.
 */
struct AnalysisFixture
{
    isa::Program program;
    cpu::SimTrace trace;
    avf::DeadnessResult dead;
};

const AnalysisFixture &
analysisFixture()
{
    static const AnalysisFixture *fixture = [] {
        auto *f = new AnalysisFixture;
        f->program = workloads::buildBenchmark("vortex", 200000);
        cpu::PipelineParams params;
        params.maxInsts = 400000;
        cpu::InOrderPipeline pipe(f->program, params);
        f->trace = pipe.run();
        f->trace.program = &f->program;
        f->dead = avf::analyzeDeadness(f->trace);
        return f;
    }();
    return *fixture;
}

void
BM_DeadnessAnalysis(benchmark::State &state)
{
    const AnalysisFixture &f = analysisFixture();
    for (auto _ : state) {
        auto dead = avf::analyzeDeadness(f.trace);
        benchmark::DoNotOptimize(dead.numDead());
    }
    state.SetItemsProcessed(state.iterations() *
                            f.trace.commits.size());
}
BENCHMARK(BM_DeadnessAnalysis);

void
BM_AvfFold(benchmark::State &state)
{
    const AnalysisFixture &f = analysisFixture();
    for (auto _ : state) {
        auto avf = avf::computeAvf(f.trace, f.dead);
        benchmark::DoNotOptimize(avf.sdcAvf());
    }
    state.SetItemsProcessed(state.iterations() *
                            f.trace.incarnations.size());
}
BENCHMARK(BM_AvfFold);

void
BM_AvfAttribution(benchmark::State &state)
{
    const AnalysisFixture &f = analysisFixture();
    for (auto _ : state) {
        auto attr = avf::attributeAvf(f.trace, f.dead);
        benchmark::DoNotOptimize(attr.totalAce);
    }
    state.SetItemsProcessed(state.iterations() *
                            f.trace.incarnations.size());
}
BENCHMARK(BM_AvfAttribution);

void
BM_CampaignThroughput(benchmark::State &state)
{
    // Injections/second through the full campaign engine (keyed
    // sampling, checkpoint/fork re-runs, Wilson fold) on the shared
    // vortex trace. Guards the checkpoint/fork economics: if forking
    // regresses toward full replays, this rate collapses.
    const AnalysisFixture &f = analysisFixture();
    static const avf::AvfResult *avf = [] {
        return new avf::AvfResult(avf::computeAvf(
            analysisFixture().trace, analysisFixture().dead));
    }();
    faults::CampaignSpec spec;
    spec.samples = 2000;
    spec.structures = faults::structIq;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        spec.seed = seed++;  // defeat any memoization, vary sites
        auto out = faults::runCampaignEngine(f.program, f.trace,
                                             f.dead, *avf, spec);
        benchmark::DoNotOptimize(out.samplesRun);
    }
    state.SetItemsProcessed(state.iterations() * spec.samples);
}
BENCHMARK(BM_CampaignThroughput);

void
BM_SuiteRunnerSweep(benchmark::State &state)
{
    // A small design-point sweep (one shared program, four IQ
    // sizes) end to end, at jobs = state.range(0). On a multi-core
    // host the jobs=4 variant shows the worker-pool speedup; the
    // result vector is submission-ordered either way.
    const std::uint64_t insts = 20000;
    auto jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        // Each design point has a distinct sim key, but iterations
        // repeat them: drop the run cache so every iteration
        // measures real simulation work.
        harness::RunCache::instance().clear();
        harness::SuiteRunner runner(jobs);
        std::size_t prog = runner.addProgram("gzip", insts);
        for (unsigned entries : {16u, 32u, 64u, 128u}) {
            harness::ExperimentConfig cfg;
            cfg.dynamicTarget = insts;
            cfg.warmupInsts = insts / 10;
            cfg.pipeline.iqEntries = entries;
            runner.submit(prog, cfg);
        }
        auto runs = runner.run();
        benchmark::DoNotOptimize(runs.front().ipc);
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_SuiteRunnerSweep)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_RunProgramCacheHit(benchmark::State &state)
{
    // End-to-end harness::runProgram when every run-cache section
    // hits: what each additional sweep point costs once the first
    // point has paid for simulation and analysis (the remaining
    // work is the false-DUE fold plus artifact plumbing).
    static auto program = std::make_shared<const isa::Program>(
        workloads::buildBenchmark("gzip", 20000));
    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = 20000;
    cfg.warmupInsts = 0;
    harness::RunCache &cache = harness::RunCache::instance();
    cache.clear();
    auto warm = harness::runProgram(program, cfg, "gzip");
    benchmark::DoNotOptimize(warm.ipc);
    for (auto _ : state) {
        auto r = harness::runProgram(program, cfg, "gzip");
        benchmark::DoNotOptimize(r.avf->sdcAvf());
    }
    cache.clear();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunProgramCacheHit);

void
BM_RunCacheDiskHit(benchmark::State &state)
{
    // End-to-end harness::runProgram when the in-process map is
    // empty but every section is on disk: mmap + CRC-64 verify +
    // codec decode for all four sections, per iteration (the warm
    // path a daemon restart or a second sweep process takes). The
    // gap to BM_RunProgramCacheHit is the disk tier's decode cost;
    // the gap to a cold run is what the blob store saves.
    char dirTemplate[] = "/tmp/ser_bench_disk_XXXXXX";
    if (!::mkdtemp(dirTemplate)) {
        state.SkipWithError("mkdtemp failed");
        return;
    }
    harness::DiskCache::instance().setDirectory(
        dirTemplate, harness::codec::kSchemaVersion);
    static auto program = std::make_shared<const isa::Program>(
        workloads::buildBenchmark("gzip", 20000));
    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = 20000;
    cfg.warmupInsts = 0;
    harness::RunCache &cache = harness::RunCache::instance();
    cache.clear();
    auto publish = harness::runProgram(program, cfg, "gzip");
    benchmark::DoNotOptimize(publish.ipc);
    for (auto _ : state) {
        cache.clear();  // drop the memory tier, keep the blobs
        auto r = harness::runProgram(program, cfg, "gzip");
        benchmark::DoNotOptimize(r.avf->sdcAvf());
    }
    cache.clear();
    harness::DiskCache::instance().setDirectory(
        "", harness::codec::kSchemaVersion);
    int rc = std::system(
        (std::string("rm -rf '") + dirTemplate + "'").c_str());
    (void)rc;
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunCacheDiskHit);

void
BM_MpmcQueueThroughput(benchmark::State &state)
{
    // Raw ring handoff rate, 2 producers x 2 consumers on a ring
    // far smaller than the element count (both the full and the
    // empty backoff paths run). Guards the lock-free dispatch
    // substrate parallelFor and the daemon pool stand on.
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    constexpr std::uint64_t kPerProducer = 100000;
    for (auto _ : state) {
        MpmcQueue<std::uint64_t> queue(256);
        std::atomic<std::uint64_t> sum{0};
        std::vector<std::thread> threads;
        for (int c = 0; c < kConsumers; ++c) {
            threads.emplace_back([&] {
                std::uint64_t value, local = 0;
                while (queue.pop(&value))
                    local += value;
                sum.fetch_add(local);
            });
        }
        std::vector<std::thread> producers;
        for (int p = 0; p < kProducers; ++p) {
            producers.emplace_back([&] {
                for (std::uint64_t i = 1; i <= kPerProducer; ++i)
                    queue.push(i);
            });
        }
        for (auto &t : producers)
            t.join();
        queue.close();
        for (auto &t : threads)
            t.join();
        benchmark::DoNotOptimize(sum.load());
    }
    state.SetItemsProcessed(state.iterations() * kProducers *
                            kPerProducer);
}
// Real time, not CPU time: the work runs on spawned producer and
// consumer threads, so the main thread's CPU clock sees almost
// nothing.
BENCHMARK(BM_MpmcQueueThroughput)->UseRealTime();

void
BM_SweepWarmCache(benchmark::State &state)
{
    // The daemon's repeat-query path: SweepService::handle() on a
    // spec this service has already answered — one response-memo
    // lookup plus ticket serialization, no simulation, no analysis
    // replay. This is the "<1 ms cached query" acceptance as a
    // tracked number (daemon_query_identical asserts the bound).
    static harness::SweepService *service = [] {
        auto *s = new harness::SweepService(1);
        return s;
    }();
    const std::string spec =
        "{\"benchmark\": \"gzip\", \"insts\": 5000, "
        "\"warmup\": 500}";
    // First answer pays for the simulation once, outside the loop
    // (polling the ticket, not re-POSTing, so no duplicate cold runs
    // are scheduled while it is in flight).
    auto first = service->handle("POST", "/sweep", spec);
    if (first.status != 200 && first.status != 202) {
        state.SkipWithError("priming POST failed");
        return;
    }
    while (first.status == 202) {
        auto poll = service->handle("GET", "/sweep/1", "");
        if (poll.body.find("\"done\"") != std::string::npos)
            break;
        if (poll.body.find("\"failed\"") != std::string::npos) {
            state.SkipWithError("priming run failed");
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (auto _ : state) {
        auto r = service->handle("POST", "/sweep", spec);
        benchmark::DoNotOptimize(r.body.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SweepWarmCache);

} // namespace

BENCHMARK_MAIN();
