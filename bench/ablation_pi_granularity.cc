/**
 * @file
 * Ablation: pi-bit granularity and self-exposure (Section 4.2).
 *
 * The pi bit is itself vulnerable: "a strike on the pi bit itself
 * will result in a false DUE event". Attaching pi bits at finer
 * granularity (per byte rather than per entry) localises errors but
 * multiplies that self-exposure. This study computes, from a real
 * run's residency, the false-DUE AVF contribution of k pi bits per
 * queue entry for k in {1 (per entry), 2, 4, 8 (per byte)} — the
 * pi-bit self-exposure is the committed residency fraction times
 * k / (64 + k) of the protected block.
 *
 * Usage: ablation_pi_granularity [insts=N] [benchmark=mesa]
 */

#include <iostream>

#include "cpu/trace.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Ablation: pi-bit granularity self-exposure");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 150000);
    std::string benchmark = config.getString("benchmark", "mesa");

    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = insts;
    cfg.warmupInsts = insts / 10;
    cfg.intervalCycles = opts.intervalCycles;

    // Single design point, still routed through the SuiteRunner so
    // --jobs plumbing and build/run phase timing are uniform across
    // the bench mains.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("ablation_pi_granularity");
    harness::TraceExport trace_export(opts);
    trace_export.configure(cfg);
    runner.submit(runner.addProgram(benchmark, insts), cfg);
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");
    harness::RunArtifacts &r = runs.front();

    // A pi-bit strike is examined whenever the instruction commits
    // on the correct path; its exposure window is the entry's full
    // residency (the bit is live from allocation to retire-check).
    std::uint64_t committed_residency = 0;
    for (const auto &inc : r.trace->incarnations) {
        if (inc.flags & cpu::incCommitted)
            committed_residency +=
                inc.evictCycle - inc.enqueueCycle;
    }
    std::uint64_t window = r.trace->endCycle - r.trace->startCycle;
    double entry_cycles =
        static_cast<double>(r.trace->iqEntries) * window;

    harness::printHeading(
        std::cout, "pi-bit granularity self-exposure (" + benchmark +
                       ")");
    Table table({"pi bits/entry", "granularity",
                 "self false-DUE AVF", "vs payload false DUE"});
    double payload_false = r.avf->falseDueAvf();
    for (int k : {1, 2, 4, 8}) {
        // Fraction of the (64 payload + k pi) bit-cycles that are
        // vulnerable pi bits on committed instructions.
        double self =
            (static_cast<double>(committed_residency) /
             entry_cycles) *
            (static_cast<double>(k) / (64.0 + k));
        const char *gran = k == 1   ? "per entry"
                           : k == 8 ? "per byte"
                                    : "per sub-word";
        table.addRow({std::to_string(k), gran, Table::pct(self, 2),
                      Table::pct(payload_false > 0
                                     ? self / payload_false
                                     : 0)});
    }
    table.print(std::cout);
    std::cout
        << "\npayload false DUE AVF for reference: "
        << Table::pct(payload_false)
        << "\n(finer pi granularity isolates errors for byte-write "
           "ISAs but linearly multiplies the pi bits' own "
           "false-DUE exposure)\n";

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        harness::JsonReport report;
        report.setArgs(config);
        report.addRun(r, cfg);
        report.addTable("pi_granularity", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
