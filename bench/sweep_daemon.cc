/**
 * @file
 * The persistent sweep daemon: a long-lived process that answers
 * repeat sweep queries from the run cache's memory and disk tiers
 * in well under a millisecond instead of re-simulating.
 *
 * It is the thin composition of three PR-sized pieces:
 *
 *   - the TelemetryServer poll loop (--serve PORT) carries the HTTP
 *     surface (/metrics /status /runs ... plus the mounted routes),
 *   - the SweepService (harness/sweep_service.hh) mounts POST /sweep
 *     and GET /sweep[/N] on it,
 *   - the RunCache with --cache-dir arms the persistent tier, so the
 *     daemon's warm set survives restarts and is shared with every
 *     batch bench pointed at the same directory.
 *
 * Usage:
 *
 *   sweep_daemon --serve 8080 --cache-dir /var/tmp/ser-cache \
 *                [--jobs N] [--metrics-out F]
 *
 *   curl -d '{"benchmark":"mcf","insts":200000}' \
 *        http://127.0.0.1:8080/sweep
 *       -> 202 {"id":1,"state":"pending",...}   (cold: scheduled)
 *       -> 200 {"id":2,"state":"done","warm":true,"result":{...}}
 *                                               (warm: answered)
 *   curl http://127.0.0.1:8080/sweep/1          (poll the ticket)
 *
 * Cold queries run on --jobs pool workers; SIGINT/SIGTERM shuts the
 * daemon down cleanly. EXPERIMENTS.md has a full walkthrough.
 */

#include <csignal>
#include <iostream>

#include "harness/bench_options.hh"
#include "harness/sweep_service.hh"
#include "harness/telemetry_server.hh"
#include "sim/logging.hh"

using namespace ser;

int
main(int argc, char **argv)
{
    // Block the shutdown signals before any thread exists, so the
    // poll loop and the pool workers inherit the mask and only the
    // sigwait below ever sees them. (installShutdownFlush, armed by
    // --metrics-out, waits on the same set; whichever waiter wins
    // terminates the process after flushing — both paths are clean.)
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv,
        "--serve PORT --cache-dir DIR [--jobs N]   "
        "(persistent sweep daemon; POST /sweep, GET /sweep/<id>)");
    if (opts.servePort < 0)
        SER_FATAL("{}: the daemon needs --serve PORT (0 picks an "
                  "ephemeral port)", argv[0]);
    if (opts.cacheDir.empty())
        SER_WARN("no --cache-dir / SER_CACHE_DIR: the warm set "
                 "will not survive this process");

    harness::TelemetryServer &server =
        harness::TelemetryServer::instance();
    harness::SweepService service(opts.jobs);
    service.mountOn(server);
    std::cerr << "info: sweep daemon: POST http://127.0.0.1:"
              << server.port() << "/sweep ("
              << (opts.jobs ? opts.jobs : 1)
              << " worker(s); Ctrl-C to stop)\n";

    int sig = 0;
    sigwait(&set, &sig);
    std::cerr << "info: sweep daemon: caught "
              << (sig == SIGINT ? "SIGINT" : "SIGTERM")
              << ", shutting down\n";
    server.stop();
    return 0;
}
