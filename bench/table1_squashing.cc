/**
 * @file
 * Reproduces the paper's Table 1: the impact of squashing on IPC and
 * the instruction queue's SDC and DUE AVFs, for three design points:
 *
 *     No squashing
 *     Squash on L1 load misses
 *     Squash on L0 load misses
 *
 * Prints per-benchmark rows plus the suite averages the paper
 * reports (IPC, SDC AVF, DUE AVF, IPC/SDC-AVF, IPC/DUE-AVF).
 *
 * The 26 x 3 runs execute on the SuiteRunner worker pool (--jobs N
 * or SER_JOBS); each surrogate is built once and shared read-only
 * across its three design points, and output is byte-identical for
 * any job count (timings aside).
 *
 * Usage: table1_squashing [insts=N] [benchmarks=a,b,c] [csv=1]
 *                         [action=squash|throttle|both]
 *                         [l1_lat=N] [l2_lat=N] [mem_lat=N]
 *                         [samples=N] [cseed=N] [protection=none]
 *                         [structures=iq] [batch=N] [checkpoints=N]
 *                         [--ci-target R] [--jobs N]
 *
 * action= overrides the trigger action of every design point;
 * l1_lat=/l2_lat=/mem_lat= override the memory-hierarchy latencies
 * (0 or absent keeps the defaults). The latency keys exist so the
 * cycle_skip_identical_* ctest fixtures can build a long-latency
 * stress configuration where idle-cycle fast-forward actually has
 * spans to skip.
 *
 * samples=N (default 0 = off) attaches a statistical fault-injection
 * campaign to every run, cross-validating each design point's
 * analytical AVF against measured injection outcomes; the
 * reconciliation lands in an extra table and in each manifest run's
 * campaign block.
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "sim/logging.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

namespace
{

struct DesignPoint
{
    const char *label;
    const char *trigger;
};

struct Row
{
    double ipc = 0.0;
    double sdc = 0.0;
    double due = 0.0;
};

std::vector<std::string>
parseList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

faults::Protection
parseProtection(const std::string &name)
{
    if (name == "none")
        return faults::Protection::None;
    if (name == "parity")
        return faults::Protection::Parity;
    if (name == "ecc")
        return faults::Protection::Ecc;
    SER_FATAL("table1_squashing: unknown protection '{}' (want "
              "none, parity or ecc)",
              name);
}

std::string
band(double lo, double hi)
{
    if (lo == hi)
        return Table::pct(hi);
    return Table::pct(lo) + ".." + Table::pct(hi);
}

std::string
ci(const faults::Interval &interval)
{
    return Table::pct(interval.lo) + ".." + Table::pct(interval.hi);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Table 1: the IPC and AVF impact of squashing");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 300000);
    bool csv = opts.csv;
    std::string action = config.getString("action", "squash");
    std::uint32_t l1_lat =
        static_cast<std::uint32_t>(config.getUint("l1_lat", 0));
    std::uint32_t l2_lat =
        static_cast<std::uint32_t>(config.getUint("l2_lat", 0));
    std::uint32_t mem_lat =
        static_cast<std::uint32_t>(config.getUint("mem_lat", 0));
    std::vector<std::string> benchmarks =
        config.has("benchmarks")
            ? parseList(config.getString("benchmarks", ""))
            : workloads::suiteNames();
    harness::JsonReport report;
    report.setArgs(config);

    // Optional measured-AVF cross-validation campaign per run.
    faults::CampaignSpec campaign;
    campaign.samples = config.getUint("samples", 0);
    campaign.seed = config.getUint("cseed", 0xFA117);
    campaign.protection =
        parseProtection(config.getString("protection", "none"));
    campaign.structures = faults::parseStructures(
        config.getString("structures", "iq"));
    campaign.ciTarget = opts.ciTarget;
    campaign.batchSamples = config.getUint("batch", 4096);
    campaign.checkpoints =
        static_cast<unsigned>(config.getUint("checkpoints", 32));
    campaign.rootCauseTopN = opts.topn;
    campaign.jobs = opts.jobs;

    const DesignPoint points[] = {
        {"No squashing", "none"},
        {"Squash on L1 load misses", "l1"},
        {"Squash on L0 load misses", "l0"},
    };

    Table per_bench({"benchmark", "design", "IPC", "SDC AVF",
                     "DUE AVF", "idle", "ex-ACE", "dead"});
    std::vector<Row> totals(3);

    // Queue the whole 26 x 3 sweep: each surrogate is built once
    // (by the first worker that needs it) and shared read-only
    // across its design points; the one-time build phase lands in
    // the first design point's manifest run only.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("table1_squashing");
    harness::TraceExport trace_export(opts);
    std::vector<harness::ExperimentConfig> configs;
    for (const auto &name : benchmarks) {
        std::size_t prog = runner.addProgram(name, insts);
        for (int d = 0; d < 3; ++d) {
            harness::ExperimentConfig cfg;
            cfg.dynamicTarget = insts;
            cfg.warmupInsts = insts / 10;
            cfg.triggerLevel = points[d].trigger;
            cfg.triggerAction = action;
            cfg.intervalCycles = opts.intervalCycles;
            if (l1_lat)
                cfg.pipeline.hierarchy.l1.hitLatency = l1_lat;
            if (l2_lat)
                cfg.pipeline.hierarchy.l2.hitLatency = l2_lat;
            if (mem_lat)
                cfg.pipeline.hierarchy.memLatency = mem_lat;
            cfg.campaign = campaign;
            trace_export.configure(cfg);
            runner.submit(prog, cfg);
            configs.push_back(cfg);
        }
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");

    // Aggregate in submission order: identical tables, averages and
    // manifest for any --jobs value.
    std::size_t idx = 0;
    for (const auto &name : benchmarks) {
        for (int d = 0; d < 3; ++d, ++idx) {
            const harness::RunArtifacts &r = runs[idx];
            if (!opts.jsonPath.empty())
                report.addRun(r, configs[idx]);
            totals[d].ipc += r.ipc;
            totals[d].sdc += r.avf->sdcAvf();
            totals[d].due += r.avf->dueAvf();
            per_bench.addRow(
                {name, points[d].trigger, Table::fmt(r.ipc),
                 Table::pct(r.avf->sdcAvf()),
                 Table::pct(r.avf->dueAvf()),
                 Table::pct(r.avf->idleFraction()),
                 Table::pct(r.avf->exAceFraction()),
                 Table::pct(r.deadness->deadFraction())});
        }
    }

    harness::printHeading(std::cout,
                          "per-benchmark results (" +
                              std::to_string(insts) +
                              " dynamic instructions each)");
    if (csv)
        per_bench.printCsv(std::cout);
    else
        per_bench.print(std::cout);

    // The paper's Table 1 (suite averages).
    double n = static_cast<double>(benchmarks.size());
    Table table1({"Design Point", "IPC", "SDC AVF", "DUE AVF",
                  "IPC / SDC AVF", "IPC / DUE AVF"});
    for (int d = 0; d < 3; ++d) {
        double ipc = totals[d].ipc / n;
        double sdc = totals[d].sdc / n;
        double due = totals[d].due / n;
        table1.addRow({points[d].label, Table::fmt(ipc),
                       Table::pct(sdc, 0), Table::pct(due, 0),
                       Table::fmt(sdc > 0 ? ipc / sdc : 0, 1),
                       Table::fmt(due > 0 ? ipc / due : 0, 1)});
    }
    harness::printHeading(
        std::cout, "Table 1: impact of squashing (suite averages)");
    table1.print(std::cout);

    // Paper anchor: L1 squashing cuts SDC AVF ~26% and DUE AVF ~18%
    // for ~2% IPC; L0 squashing cuts more AVF but ~10% IPC.
    harness::printHeading(std::cout, "changes vs no squashing");
    Table deltas({"Design Point", "dIPC", "dSDC AVF", "dDUE AVF",
                  "SDC MITF", "DUE MITF"});
    for (int d = 1; d < 3; ++d) {
        double ipc0 = totals[0].ipc, ipc = totals[d].ipc;
        double sdc0 = totals[0].sdc, sdc = totals[d].sdc;
        double due0 = totals[0].due, due = totals[d].due;
        deltas.addRow(
            {points[d].label, Table::pct(ipc / ipc0 - 1),
             Table::pct(sdc / sdc0 - 1), Table::pct(due / due0 - 1),
             Table::fmt((ipc / sdc) / (ipc0 / sdc0), 2) + "x",
             Table::fmt((ipc / due) / (ipc0 / due0), 2) + "x"});
    }
    deltas.print(std::cout);

    if (campaign.samples) {
        Table recon({"benchmark", "design", "structure", "samples",
                     "SDC", "SDC 95% CI", "analytical SDC",
                     "covered", "DUE", "DUE 95% CI",
                     "analytical DUE", "covered", "rerun cost"});
        std::size_t covered = 0, checks = 0;
        idx = 0;
        for (const auto &name : benchmarks) {
            for (int d = 0; d < 3; ++d, ++idx) {
                const harness::RunArtifacts &r = runs[idx];
                if (!r.campaign)
                    continue;
                const faults::CampaignOutcome &c = *r.campaign;
                for (const auto &s : c.structures) {
                    checks += 2;
                    covered += (s.sdcCovered ? 1 : 0) +
                               (s.dueCovered ? 1 : 0);
                    recon.addRow(
                        {name, points[d].trigger,
                         faults::structureName(s.structure),
                         std::to_string(s.tally.samples),
                         Table::pct(s.sdcRate()), ci(s.sdcCi),
                         band(s.analyticalSdcLower, s.analyticalSdc),
                         s.sdcCovered ? "yes" : "NO",
                         Table::pct(s.dueRate()), ci(s.dueCi),
                         band(s.analyticalDueLower, s.analyticalDue),
                         s.dueCovered ? "yes" : "NO",
                         Table::pct(c.meanRerunFraction())});
                }
            }
        }
        harness::printHeading(
            std::cout, "measured vs analytical AVF (" +
                           std::to_string(campaign.samples) +
                           "-sample campaigns)");
        recon.print(std::cout);
        std::cout << "reconciliation: " << covered << "/" << checks
                  << " measured 95% CIs cover their analytical "
                     "band\n";
        if (!opts.jsonPath.empty())
            report.addTable("campaign_reconciliation", recon);
    }
    // Per-batch campaign convergence series (plot time-to-CI-target;
    // live view at /campaign with --serve).
    if (!opts.convergenceOutPath.empty())
        harness::writeConvergenceJsonl(opts.convergenceOutPath,
                                       runs);

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("per_benchmark", per_bench);
        report.addTable("table1", table1);
        report.addTable("deltas", deltas);
        report.write(opts.jsonPath);
    }
    return 0;
}
