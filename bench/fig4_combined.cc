/**
 * @file
 * Reproduces the paper's Figure 4: the combined impact of both
 * techniques, per benchmark —
 *
 *   - relative SDC AVF of an *unprotected* queue with squashing on
 *     L1 load misses (paper average: 0.74, i.e. a 26% reduction;
 *     ammp is the outlier at ~0.1 for only ~7% IPC loss);
 *   - relative DUE AVF of a *parity-protected* queue with squashing
 *     plus pi-bit tracking to the store-buffer commit point
 *     (Section 4.3.3 option 3; paper average: 0.43, a 57%
 *     reduction);
 *   - the IPC impact (paper: ~2%).
 *
 * Usage: fig4_combined [insts=N] [csv=1]
 */

#include <iostream>

#include "core/due_tracker.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"

using namespace ser;
using harness::Table;
using core::TrackingLevel;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv,
        "Figure 4: combined squashing + pi-tracking impact");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 200000);
    bool csv = opts.csv;
    harness::JsonReport report;
    report.setArgs(config);

    Table table({"benchmark", "rel SDC AVF", "rel DUE AVF",
                 "dIPC"});
    double sdc_sum = 0, due_sum = 0, ipc_sum = 0;
    int n = 0;

    harness::ExperimentConfig base;
    base.dynamicTarget = insts;
    base.warmupInsts = insts / 10;
    base.intervalCycles = opts.intervalCycles;
    harness::ExperimentConfig opt = base;
    opt.triggerLevel = "l1";
    opt.triggerAction = "squash";

    // Baseline and optimized runs share one program build per
    // surrogate and execute on the --jobs worker pool.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("fig4_combined");
    harness::TraceExport trace_export(opts);
    for (const auto &profile : workloads::specSuite()) {
        std::size_t prog = runner.addProgram(profile, insts);
        trace_export.configure(base);
        runner.submit(prog, base);
        trace_export.configure(opt);
        runner.submit(prog, opt);
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");

    std::size_t idx = 0;
    for (const auto &profile : workloads::specSuite()) {
        const harness::RunArtifacts &r_base = runs[idx++];
        const harness::RunArtifacts &r_opt = runs[idx++];
        if (!opts.jsonPath.empty()) {
            report.addRun(r_base, base);
            report.addRun(r_opt, opt);
        }

        // SDC: unprotected queue, squashing only.
        double rel_sdc =
            r_base.avf->sdcAvf() > 0
                ? r_opt.avf->sdcAvf() / r_base.avf->sdcAvf()
                : 1.0;
        // DUE: parity-protected queue; baseline signals on detect,
        // optimized squashes and tracks pi to the store buffer.
        double due_base =
            r_base.falseDue.dueAvf(TrackingLevel::None);
        double due_opt =
            r_opt.falseDue.dueAvf(TrackingLevel::PiStoreBuffer);
        double rel_due = due_base > 0 ? due_opt / due_base : 1.0;
        double d_ipc = r_opt.ipc / r_base.ipc - 1.0;

        table.addRow({profile.name, Table::fmt(rel_sdc),
                      Table::fmt(rel_due), Table::pct(d_ipc)});
        sdc_sum += rel_sdc;
        due_sum += rel_due;
        ipc_sum += d_ipc;
        ++n;
    }

    harness::printHeading(
        std::cout,
        "Figure 4: combined exposure + false-DUE reduction");
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::cout << "\naverages: relative SDC AVF "
              << Table::fmt(sdc_sum / n) << " (paper ~0.74), "
              << "relative DUE AVF " << Table::fmt(due_sum / n)
              << " (paper ~0.43), IPC change "
              << Table::pct(ipc_sum / n) << " (paper ~-2%)\n";

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("combined", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
