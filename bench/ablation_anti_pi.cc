/**
 * @file
 * Ablation: the anti-pi bit versus re-decoding at retire
 * (Section 4.3.2). Without the anti-pi bit, the retire unit must
 * re-read and re-decode each instruction to recognise neutral
 * types, which makes the Ex-ACE residency readable and inflates the
 * false DUE AVF — the paper quotes 33% -> 41%.
 *
 * Usage: ablation_anti_pi [insts=N]
 */

#include <iostream>

#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Ablation: anti-pi bit vs decode-at-retire");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 150000);
    harness::JsonReport report;
    report.setArgs(config);

    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = insts;
    cfg.warmupInsts = insts / 10;
    cfg.intervalCycles = opts.intervalCycles;

    // One run per surrogate on the --jobs worker pool.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("ablation_anti_pi");
    harness::TraceExport trace_export(opts);
    for (const auto &profile : workloads::specSuite()) {
        trace_export.configure(cfg);
        runner.submit(runner.addProgram(profile, insts), cfg);
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");

    Table table({"benchmark", "false DUE (anti-pi)",
                 "false DUE (decode-at-retire)", "inflation"});
    double a_sum = 0, d_sum = 0;
    int n = 0;
    std::size_t idx = 0;
    for (const auto &profile : workloads::specSuite()) {
        const harness::RunArtifacts &r = runs[idx++];
        if (!opts.jsonPath.empty())
            report.addRun(r, cfg);
        double anti = r.avf->falseDueAvf();
        double decode = r.avf->falseDueAvfDecodeAtRetire();
        table.addRow({profile.name, Table::pct(anti),
                      Table::pct(decode),
                      Table::pct(anti > 0 ? decode / anti - 1 : 0)});
        a_sum += anti;
        d_sum += decode;
        ++n;
    }

    harness::printHeading(
        std::cout, "anti-pi bit vs decode-at-retire (Section "
                   "4.3.2 trade-off)");
    table.print(std::cout);
    std::cout << "\naverages: " << Table::pct(a_sum / n) << " -> "
              << Table::pct(d_sum / n)
              << " (paper: 33% -> 41% — re-decoding at retire "
                 "makes Ex-ACE time readable)\n";

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("anti_pi", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
