/**
 * @file
 * Reproduces the paper's Figure 3: coverage of FDD (first-level
 * dynamically dead) instructions as a function of PET-buffer size,
 * in the paper's three cumulative categories:
 *
 *   - FDD via registers, excluding return-established FDDs
 *   - + FDD established by procedure returns
 *   - + FDD via memory
 *
 * The paper's anchors: a 512-entry buffer covers ~32% of FDD via
 * registers; growing to ~10,000 entries and including returns covers
 * most of them.
 *
 * Usage: fig3_pet_sweep [insts=N] [csv=1]
 */

#include <iostream>
#include <vector>

#include "avf/deadness.hh"
#include "core/pet_buffer.hh"
#include "cpu/pipeline.hh"
#include "harness/bench_options.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Figure 3: FDD coverage vs PET-buffer size");
    harness::TraceExport::warnUnsupported(opts);
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 200000);
    bool csv = opts.csv;

    const std::vector<std::uint32_t> sizes = {
        32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

    // Aggregate the populations over the whole suite, then sweep.
    struct Totals
    {
        std::uint64_t nonRet = 0, nonRetCov = 0;
        std::uint64_t ret = 0, retCov = 0;
        std::uint64_t mem = 0, memCov = 0;
    };
    // Each benchmark's sweep is independent: run them on the --jobs
    // worker pool into per-benchmark slots, then fold into the suite
    // totals serially in suite order (integer sums, so the result is
    // identical for any job count anyway).
    const auto &suite = workloads::specSuite();
    std::vector<std::vector<Totals>> per_bench(
        suite.size(), std::vector<Totals>(sizes.size()));
    harness::parallelFor(
        suite.size(), opts.jobs, [&](std::size_t b) {
            isa::Program program =
                workloads::buildBenchmark(suite[b], insts);
            cpu::PipelineParams params;
            params.maxInsts = insts * 2;
            cpu::InOrderPipeline pipe(program, params);
            cpu::SimTrace trace = pipe.run();
            trace.program = &program;
            avf::DeadnessResult dead = avf::analyzeDeadness(trace);

            for (std::size_t i = 0; i < sizes.size(); ++i) {
                core::PetCoverage cov =
                    core::petCoverage(dead, sizes[i]);
                per_bench[b][i].nonRet += cov.fddRegNonReturn;
                per_bench[b][i].nonRetCov += cov.coveredNonReturn;
                per_bench[b][i].ret += cov.fddRegReturn;
                per_bench[b][i].retCov += cov.coveredReturn;
                per_bench[b][i].mem += cov.fddMem;
                per_bench[b][i].memCov += cov.coveredMem;
            }
        });

    std::vector<Totals> totals(sizes.size());
    for (std::size_t b = 0; b < suite.size(); ++b) {
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            totals[i].nonRet += per_bench[b][i].nonRet;
            totals[i].nonRetCov += per_bench[b][i].nonRetCov;
            totals[i].ret += per_bench[b][i].ret;
            totals[i].retCov += per_bench[b][i].retCov;
            totals[i].mem += per_bench[b][i].mem;
            totals[i].memCov += per_bench[b][i].memCov;
        }
    }

    Table table({"PET entries", "FDD-reg (no returns)",
                 "+ return FDDs", "+ FDD via memory"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const Totals &t = totals[i];
        double non_ret =
            t.nonRet ? double(t.nonRetCov) / t.nonRet : 0;
        double with_ret =
            t.nonRet + t.ret
                ? double(t.nonRetCov + t.retCov) /
                      double(t.nonRet + t.ret)
                : 0;
        double all =
            t.nonRet + t.ret + t.mem
                ? double(t.nonRetCov + t.retCov + t.memCov) /
                      double(t.nonRet + t.ret + t.mem)
                : 0;
        table.addRow({std::to_string(sizes[i]), Table::pct(non_ret),
                      Table::pct(with_ret), Table::pct(all)});
    }

    harness::printHeading(
        std::cout,
        "Figure 3: FDD coverage vs PET buffer size (suite "
        "aggregate)");
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::cout << "\npaper anchors: 512 entries cover ~32% of FDD "
                 "via registers; ~10k entries with returns cover "
                 "most FDDs (but a 10,000-entry PET buffer may not "
                 "be implementable)\n";

    if (!opts.jsonPath.empty()) {
        harness::JsonReport report;
        report.setArgs(config);
        report.addTable("pet_sweep", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
