/**
 * @file
 * Reproduces the paper's Figure 3: coverage of FDD (first-level
 * dynamically dead) instructions as a function of PET-buffer size,
 * in the paper's three cumulative categories:
 *
 *   - FDD via registers, excluding return-established FDDs
 *   - + FDD established by procedure returns
 *   - + FDD via memory
 *
 * The paper's anchors: a 512-entry buffer covers ~32% of FDD via
 * registers; growing to ~10,000 entries and including returns covers
 * most of them.
 *
 * The sweep runs benchmark x PET-size points through the experiment
 * harness on the SuiteRunner worker pool. The PET size only matters
 * after commit (the coverage fold and the false-DUE summary), so the
 * process-wide run cache (harness/run_cache.hh) simulates and
 * analyzes each benchmark exactly once: with --json, every
 * benchmark's first point records run_cache {sim, deadness, avf} =
 * "miss" and the other sizes record "hit".
 *
 * Usage: fig3_pet_sweep [insts=N] [benchmarks=a,b,c] [csv=1]
 *                       [--jobs N]
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "core/pet_buffer.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

using namespace ser;
using harness::Table;

namespace
{

std::vector<std::string>
parseList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "Figure 3: FDD coverage vs PET-buffer size");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 200000);
    bool csv = opts.csv;
    std::vector<std::string> benchmarks =
        config.has("benchmarks")
            ? parseList(config.getString("benchmarks", ""))
            : workloads::suiteNames();
    harness::JsonReport report;
    report.setArgs(config);

    const std::vector<std::uint32_t> sizes = {
        32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

    // Queue benchmark x size: each surrogate is built once and
    // shared read-only; each simulation/deadness/AVF is computed
    // once per benchmark (run cache) no matter how many sizes sweep.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("fig3_pet_sweep");
    harness::TraceExport trace_export(opts);
    std::vector<harness::ExperimentConfig> configs;
    for (const auto &name : benchmarks) {
        std::size_t prog = runner.addProgram(name, insts);
        for (std::uint32_t size : sizes) {
            harness::ExperimentConfig cfg;
            cfg.dynamicTarget = insts;
            cfg.warmupInsts = 0;
            cfg.petSize = size;
            cfg.pipeline.maxInsts = insts * 2;
            cfg.intervalCycles = opts.intervalCycles;
            trace_export.configure(cfg);
            runner.submit(prog, cfg);
            configs.push_back(cfg);
        }
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    // Everything after the sweep (fold, tables, manifest) under
    // one profiled scope, so snapshots show sweep vs aggregation
    // time at a glance.
    SER_PROF_SCOPE("aggregate");

    // Fold the coverage populations over the whole suite, in
    // submission order: integer sums, so the table is identical for
    // any --jobs value (and with --no-run-cache).
    struct Totals
    {
        std::uint64_t nonRet = 0, nonRetCov = 0;
        std::uint64_t ret = 0, retCov = 0;
        std::uint64_t mem = 0, memCov = 0;
    };
    std::vector<Totals> totals(sizes.size());
    std::size_t idx = 0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        for (std::size_t i = 0; i < sizes.size(); ++i, ++idx) {
            const harness::RunArtifacts &r = runs[idx];
            if (!opts.jsonPath.empty())
                report.addRun(r, configs[idx]);
            core::PetCoverage cov =
                core::petCoverage(*r.deadness, sizes[i]);
            totals[i].nonRet += cov.fddRegNonReturn;
            totals[i].nonRetCov += cov.coveredNonReturn;
            totals[i].ret += cov.fddRegReturn;
            totals[i].retCov += cov.coveredReturn;
            totals[i].mem += cov.fddMem;
            totals[i].memCov += cov.coveredMem;
        }
    }

    Table table({"PET entries", "FDD-reg (no returns)",
                 "+ return FDDs", "+ FDD via memory"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const Totals &t = totals[i];
        double non_ret =
            t.nonRet ? double(t.nonRetCov) / t.nonRet : 0;
        double with_ret =
            t.nonRet + t.ret
                ? double(t.nonRetCov + t.retCov) /
                      double(t.nonRet + t.ret)
                : 0;
        double all =
            t.nonRet + t.ret + t.mem
                ? double(t.nonRetCov + t.retCov + t.memCov) /
                      double(t.nonRet + t.ret + t.mem)
                : 0;
        table.addRow({std::to_string(sizes[i]), Table::pct(non_ret),
                      Table::pct(with_ret), Table::pct(all)});
    }

    harness::printHeading(
        std::cout,
        "Figure 3: FDD coverage vs PET buffer size (suite "
        "aggregate)");
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::cout << "\npaper anchors: 512 entries cover ~32% of FDD "
                 "via registers; ~10k entries with returns cover "
                 "most FDDs (but a 10,000-entry PET buffer may not "
                 "be implementable)\n";

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("pet_sweep", table);
        report.write(opts.jsonPath);
    }
    return 0;
}
