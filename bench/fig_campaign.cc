/**
 * @file
 * Statistical fault-injection campaigns cross-validating the
 * analytical AVF fold (the paper's ACE methodology) against
 * *measured* outcome rates.
 *
 * For each benchmark x protection level, a Monte-Carlo campaign
 * samples (structure, entry, bit, cycle) sites, classifies each via
 * checkpoint/fork counterfactual re-execution, and reports the
 * measured SDC/DUE rates with 95% Wilson CIs next to the analytical
 * AVF band each must cover. The final table is the empirical check
 * that the ACE analysis brackets ground truth: measured SDC lands in
 * [field-refined ACE, whole-payload ACE], measured DUE under parity
 * lands on the pre-read occupancy the fold counts.
 *
 * Each campaign also records its per-batch convergence time-series
 * (faults::ConvergencePoint): the convergence table below shows how
 * many samples each campaign needed to reach --ci-target, and
 * --convergence-out streams the full series as JSONL for plotting
 * time-to-CI-target (scripts/bench_compare.py-style tooling). With
 * --serve PORT the same series is queryable live at /campaign while
 * the sweep runs.
 *
 * Usage: fig_campaign [insts=N] [samples=N] [benchmarks=a,b]
 *                     [protections=none,parity,ecc]
 *                     [structures=iq,regfile] [cseed=N] [batch=N]
 *                     [checkpoints=N] [--ci-target X] [--topn N]
 *                     [--jobs N] [--json PATH] [--csv]
 *                     [--convergence-out F] [--serve PORT]
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "faults/campaign_engine.hh"
#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/manifest.hh"
#include "harness/reporting.hh"
#include "harness/suite_runner.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"
#include "workloads/profile.hh"

using namespace ser;
using harness::Table;

namespace
{

faults::Protection
parseProtection(const std::string &name)
{
    if (name == "none")
        return faults::Protection::None;
    if (name == "parity")
        return faults::Protection::Parity;
    if (name == "ecc")
        return faults::Protection::Ecc;
    SER_FATAL("fig_campaign: unknown protection '{}' (want "
              "none/parity/ecc)", name);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
band(double lo, double hi)
{
    if (lo == hi)
        return Table::pct(hi);
    return Table::pct(lo) + ".." + Table::pct(hi);
}

std::string
ci(const faults::Interval &interval)
{
    return Table::pct(interval.lo) + ".." + Table::pct(interval.hi);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv,
        "Measured vs analytical AVF: fault-injection campaigns");
    Config &config = opts.config;
    std::uint64_t insts = config.getUint("insts", 60000);
    std::uint64_t samples = config.getUint("samples", 20000);
    // Defaults span the suite's behaviour space: an integer
    // compressor, the memory-bound pointer chaser, and an FP
    // streaming code.
    std::string benchmarks =
        config.getString("benchmarks", "gzip,mcf,swim");
    std::string protections =
        config.getString("protections", "none,parity,ecc");
    std::string structures = config.getString("structures",
                                              "iq,regfile");

    harness::JsonReport report;
    report.setArgs(config);

    harness::ExperimentConfig cfg;
    cfg.dynamicTarget = insts;
    cfg.warmupInsts = insts / 10;
    cfg.intervalCycles = opts.intervalCycles;
    cfg.attributionTopN = opts.topn;
    cfg.campaign.samples = samples;
    cfg.campaign.seed = config.getUint("cseed", 0xFA117);
    cfg.campaign.structures = faults::parseStructures(structures);
    cfg.campaign.ciTarget = opts.ciTarget;
    cfg.campaign.batchSamples = config.getUint("batch", 4096);
    cfg.campaign.checkpoints = static_cast<unsigned>(
        config.getUint("checkpoints", 32));
    cfg.campaign.rootCauseTopN = opts.topn;
    // The engine shards each campaign's batches over the same worker
    // count the sweep uses; results are byte-identical for any N.
    cfg.campaign.jobs = opts.jobs;

    std::vector<std::string> bench_names = splitCsv(benchmarks);
    std::vector<std::string> prot_names = splitCsv(protections);
    if (bench_names.empty() || prot_names.empty())
        SER_FATAL("fig_campaign: benchmarks= and protections= must "
                  "be non-empty");

    // One run per benchmark x protection. The run cache shares the
    // simulation and analytical folds across the protection axis
    // (protection only changes the campaign classification), so each
    // benchmark simulates once.
    harness::SuiteRunner runner(opts.jobs);
    runner.setLabel("fig_campaign");
    harness::TraceExport trace_export(opts);
    std::vector<harness::ExperimentConfig> cfgs;
    for (const auto &bench : bench_names) {
        std::size_t program =
            runner.addProgram(workloads::findProfile(bench), insts);
        for (const auto &prot : prot_names) {
            harness::ExperimentConfig point = cfg;
            point.campaign.protection = parseProtection(prot);
            trace_export.configure(point);
            runner.submit(program, point);
            cfgs.push_back(point);
        }
    }
    std::vector<harness::RunArtifacts> runs = runner.run();
    SER_PROF_SCOPE("aggregate");

    Table table({"benchmark", "protection", "structure", "samples",
                 "SDC rate", "SDC 95% CI", "analytical SDC",
                 "SDC ok", "DUE rate", "DUE 95% CI",
                 "analytical DUE", "DUE ok"});
    Table econ({"benchmark", "protection", "samples", "early stop",
                "CI half-width", "reruns", "mean rerun cost",
                "checkpoints"});
    std::size_t covered = 0, checks = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const harness::RunArtifacts &r = runs[i];
        if (!opts.jsonPath.empty())
            report.addRun(r, cfgs[i]);
        if (!r.campaign)
            continue;
        const faults::CampaignOutcome &c = *r.campaign;
        const char *prot = faults::protectionName(c.protection);
        for (const faults::StructureCampaign &s : c.structures) {
            table.addRow(
                {r.benchmark, prot,
                 faults::structureName(s.structure),
                 std::to_string(s.tally.samples),
                 Table::pct(s.sdcRate()), ci(s.sdcCi),
                 band(s.analyticalSdcLower, s.analyticalSdc),
                 s.sdcCovered ? "yes" : "NO",
                 Table::pct(s.dueRate()), ci(s.dueCi),
                 band(s.analyticalDueLower, s.analyticalDue),
                 s.dueCovered ? "yes" : "NO"});
            covered += (s.sdcCovered ? 1 : 0) + (s.dueCovered ? 1 : 0);
            checks += 2;
        }
        std::ostringstream cost;
        cost << Table::pct(c.meanRerunFraction()) << " of golden";
        econ.addRow({r.benchmark, prot,
                     std::to_string(c.samplesRun),
                     c.earlyStopped ? "yes" : "no",
                     Table::pct(c.ciHalfWidth),
                     std::to_string(c.reruns), cost.str(),
                     std::to_string(c.checkpoints)});
    }

    harness::printHeading(
        std::cout,
        "measured vs analytical AVF: statistical fault injection "
        "(cross-validation of the ACE fold)");
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\nreconciliation: " << covered << "/" << checks
              << " measured 95% CIs cover their analytical band\n";

    harness::printHeading(std::cout,
                          "campaign economics: checkpoint/fork "
                          "re-execution cost");
    if (opts.csv)
        econ.printCsv(std::cout);
    else
        econ.print(std::cout);

    // Per-batch convergence: how fast each campaign's worst tracked
    // CI half-width shrank, and (when --ci-target is set) how many
    // samples it took to cross it. The series itself is a campaign
    // result (deterministic), so this table is byte-identical across
    // --jobs / cache / --serve variants.
    Table conv({"benchmark", "protection", "batches", "samples",
                "final CI half-width", "samples to target",
                "early stop"});
    for (const harness::RunArtifacts &r : runs) {
        if (!r.campaign)
            continue;
        const faults::CampaignOutcome &c = *r.campaign;
        std::string to_target = "-";
        if (c.ciTarget > 0) {
            for (const faults::ConvergencePoint &p : c.convergence) {
                if (p.worstHalfWidth <= c.ciTarget) {
                    to_target = std::to_string(p.samples);
                    break;
                }
            }
        }
        conv.addRow({r.benchmark,
                     faults::protectionName(c.protection),
                     std::to_string(c.convergence.size()),
                     std::to_string(c.samplesRun),
                     Table::pct(c.ciHalfWidth), to_target,
                     c.earlyStopped ? "yes" : "no"});
    }
    harness::printHeading(std::cout,
                          "campaign convergence: per-batch CI "
                          "half-width time-series");
    if (opts.csv)
        conv.printCsv(std::cout);
    else
        conv.print(std::cout);
    if (!opts.convergenceOutPath.empty()) {
        harness::writeConvergenceJsonl(opts.convergenceOutPath,
                                       runs);
        std::cout << "\nconvergence series written to "
                  << opts.convergenceOutPath << "\n";
    }

    if (opts.topn) {
        for (const harness::RunArtifacts &r : runs) {
            if (!r.campaign || r.campaign->rootCauses.empty())
                continue;
            const faults::CampaignOutcome &c = *r.campaign;
            if (c.protection != faults::Protection::None)
                continue;
            harness::printHeading(
                std::cout, "SDC root causes: " + r.benchmark +
                               " (measured share vs analytical ACE "
                               "share)");
            Table rc({"pc", "disasm", "SDC injections",
                      "measured share", "analytical ACE share"});
            for (const faults::RootCause &cause : c.rootCauses) {
                std::ostringstream pc;
                pc << "0x" << std::hex
                   << isa::Program::indexToAddr(cause.staticIdx);
                rc.addRow({pc.str(),
                           r.program->inst(cause.staticIdx)
                               .toString(),
                           std::to_string(cause.sdcInjections),
                           Table::pct(cause.measuredShare),
                           Table::pct(cause.analyticalAceShare)});
            }
            if (opts.csv)
                rc.printCsv(std::cout);
            else
                rc.print(std::cout);
        }
    }

    trace_export.emit(std::cout, runs);

    if (!opts.jsonPath.empty()) {
        report.addTable("campaign_reconciliation", table);
        report.addTable("campaign_economics", econ);
        report.addTable("campaign_convergence", conv);
        report.write(opts.jsonPath);
    }
    return 0;
}
