#include "static_inst.hh"

#include <sstream>

namespace ser
{
namespace isa
{

StaticInst::StaticInst(Opcode op, std::uint8_t qp, std::uint8_t dst,
                       std::uint8_t src1, std::uint8_t src2,
                       std::int32_t imm)
    : _op(op), _qp(qp & 0x3f), _dst(dst & 0x3f), _src1(src1 & 0x3f),
      _src2(src2 & 0x3f), _imm(imm)
{
}

bool
StaticInst::decode(std::uint64_t word, StaticInst &inst)
{
    std::uint8_t raw = encOpcodeRaw(word);
    if (!opcodeValid(raw)) {
        inst = StaticInst();
        return false;
    }
    inst = StaticInst(static_cast<Opcode>(raw), encQp(word),
                      encDst(word), encSrc1(word), encSrc2(word),
                      encImm(word));
    return true;
}

std::uint64_t
StaticInst::encode() const
{
    return encodeWord(_qp, _op, _dst, _src1, _src2, _imm);
}

namespace
{

char
regPrefix(RegClass rc)
{
    switch (rc) {
      case RegClass::Int: return 'r';
      case RegClass::Fp: return 'f';
      case RegClass::Pred: return 'p';
      case RegClass::None: return '?';
    }
    return '?';
}

} // namespace

std::string
StaticInst::toString() const
{
    std::ostringstream os;
    const OpInfo &oi = info();
    if (_qp != 0)
        os << "(p" << int(_qp) << ") ";
    os << oi.mnemonic;

    bool mem_form = isMem() && !isPrefetch();
    if (mem_form) {
        if (isLoad()) {
            os << " " << regPrefix(oi.dstClass) << int(_dst) << " = ["
               << "r" << int(_src1) << ", " << _imm << "]";
        } else {
            os << " [r" << int(_src1) << ", " << _imm << "] = "
               << regPrefix(oi.src2Class) << int(_src2);
        }
        return os.str();
    }
    if (isPrefetch()) {
        os << " [r" << int(_src1) << ", " << _imm << "]";
        return os.str();
    }

    bool first = true;
    if (oi.dstClass != RegClass::None) {
        os << " " << regPrefix(oi.dstClass) << int(_dst) << " =";
        first = true;
    }
    auto emit_operand = [&](const std::string &text) {
        os << (first ? " " : ", ") << text;
        first = false;
    };
    if (oi.src1Class != RegClass::None) {
        emit_operand(std::string(1, regPrefix(oi.src1Class)) +
                     std::to_string(int(_src1)));
    }
    if (oi.src2Class != RegClass::None) {
        emit_operand(std::string(1, regPrefix(oi.src2Class)) +
                     std::to_string(int(_src2)));
    }
    if (oi.usesImm)
        emit_operand(std::to_string(_imm));
    return os.str();
}

} // namespace isa
} // namespace ser
