#include "assembler.hh"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "sim/logging.hh"

namespace ser
{
namespace isa
{

namespace
{

/** A pending label reference in an immediate slot. */
struct Fixup
{
    std::size_t instIndex;
    std::string label;
    bool wantsIndex;  ///< true: instruction index; false: code address
    int line;
};

/** Split a line into tokens; punctuation chars are their own tokens. */
std::vector<std::string>
tokenize(std::string_view line)
{
    std::vector<std::string> tokens;
    std::string current;
    auto flush = [&]() {
        if (!current.empty()) {
            tokens.push_back(current);
            current.clear();
        }
    };
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
            break;
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            flush();
        } else if (c == ',' || c == '=' || c == '[' || c == ']' ||
                   c == '(' || c == ')' || c == ':') {
            flush();
            tokens.push_back(std::string(1, c));
        } else {
            current.push_back(c);
        }
    }
    flush();
    return tokens;
}

/** Parser state for one source text. */
class Parser
{
  public:
    explicit Parser(std::string_view source) : _source(source) {}

    AsmResult run();

  private:
    // --- token-stream helpers over the current line ---
    bool atEnd() const { return _pos >= _tokens.size(); }
    const std::string &peek() const { return _tokens[_pos]; }
    const std::string &take() { return _tokens[_pos++]; }

    bool expect(const std::string &tok);
    bool parseReg(RegClass rc, std::uint8_t &out);
    bool parseImmOrLabel(std::int32_t &imm, bool &is_label,
                         std::string &label);
    bool parseNumber(const std::string &tok, std::int64_t &out);

    void fail(const std::string &msg);

    bool parseLine();
    bool parseDirective();
    bool parseInstruction();
    bool parseOperands(Opcode op, std::uint8_t qp);

    // --- accumulated output ---
    std::string_view _source;
    Program _program;
    std::vector<Fixup> _fixups;
    std::optional<AsmError> _error;
    std::string _entryLabel;

    std::vector<std::string> _tokens;
    std::size_t _pos = 0;
    int _line = 0;
    std::uint64_t _dataCursor = dataBase;
};

void
Parser::fail(const std::string &msg)
{
    if (!_error)
        _error = AsmError{_line, msg};
}

bool
Parser::expect(const std::string &tok)
{
    if (atEnd() || peek() != tok) {
        fail("expected '" + tok + "'" +
             (atEnd() ? " at end of line" : ", got '" + peek() + "'"));
        return false;
    }
    take();
    return true;
}

bool
Parser::parseNumber(const std::string &tok, std::int64_t &out)
{
    if (tok.empty())
        return false;
    const char *begin = tok.c_str();
    char *end = nullptr;
    out = std::strtoll(begin, &end, 0);
    return end && *end == '\0' && end != begin;
}

bool
Parser::parseReg(RegClass rc, std::uint8_t &out)
{
    if (atEnd()) {
        fail("expected register at end of line");
        return false;
    }
    std::string tok = take();
    char prefix = 0;
    int limit = 0;
    switch (rc) {
      case RegClass::Int: prefix = 'r'; limit = numIntRegs; break;
      case RegClass::Fp: prefix = 'f'; limit = numFpRegs; break;
      case RegClass::Pred: prefix = 'p'; limit = numPredRegs; break;
      case RegClass::None:
        fail("internal: parseReg(None)");
        return false;
    }
    if (tok.size() < 2 || tok[0] != prefix) {
        fail(std::string("expected ") + prefix + "-register, got '" +
             tok + "'");
        return false;
    }
    std::int64_t n;
    if (!parseNumber(tok.substr(1), n) || n < 0 || n >= limit) {
        fail("bad register '" + tok + "'");
        return false;
    }
    out = static_cast<std::uint8_t>(n);
    return true;
}

bool
Parser::parseImmOrLabel(std::int32_t &imm, bool &is_label,
                        std::string &label)
{
    if (atEnd()) {
        fail("expected immediate at end of line");
        return false;
    }
    std::string tok = take();
    std::int64_t n;
    if (parseNumber(tok, n)) {
        if (n < INT32_MIN || n > INT32_MAX) {
            fail("immediate out of 32-bit range: " + tok);
            return false;
        }
        imm = static_cast<std::int32_t>(n);
        is_label = false;
        return true;
    }
    // Otherwise it must be a label name.
    if (!std::isalpha(static_cast<unsigned char>(tok[0])) &&
        tok[0] != '_' && tok[0] != '.') {
        fail("expected immediate or label, got '" + tok + "'");
        return false;
    }
    label = tok;
    is_label = true;
    imm = 0;
    return true;
}

bool
Parser::parseDirective()
{
    std::string dir = take();
    if (dir == ".data") {
        std::int32_t imm;
        bool is_label;
        std::string label;
        if (!parseImmOrLabel(imm, is_label, label))
            return false;
        if (is_label) {
            fail(".data requires a numeric address");
            return false;
        }
        _dataCursor = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(imm));
        return true;
    }
    if (dir == ".word") {
        if (atEnd()) {
            fail(".word requires a value");
            return false;
        }
        std::int64_t n;
        std::string tok = take();
        if (!parseNumber(tok, n)) {
            fail(".word requires a numeric value, got '" + tok + "'");
            return false;
        }
        _program.addData(_dataCursor, static_cast<std::uint64_t>(n));
        _dataCursor += 8;
        return true;
    }
    if (dir == ".entry") {
        if (atEnd()) {
            fail(".entry requires a label");
            return false;
        }
        _entryLabel = take();
        return true;
    }
    fail("unknown directive '" + dir + "'");
    return false;
}

bool
Parser::parseOperands(Opcode op, std::uint8_t qp)
{
    const OpInfo &oi = opInfo(op);
    std::uint8_t dst = 0, src1 = 0, src2 = 0;
    std::int32_t imm = 0;
    bool is_label = false;
    std::string label;
    bool wants_index = (op == Opcode::Br || op == Opcode::Call);

    StaticInst inst;
    bool mem_form = oi.isMem && op != Opcode::Prefetch;
    if (op == Opcode::Prefetch) {
        // prefetch [rN, imm]
        if (!expect("[") || !parseReg(RegClass::Int, src1) ||
            !expect(",") ||
            !parseImmOrLabel(imm, is_label, label) || !expect("]"))
            return false;
    } else if (mem_form && oi.dstClass != RegClass::None) {
        // load: dst = [rN, imm]
        if (!parseReg(oi.dstClass, dst) || !expect("=") ||
            !expect("[") || !parseReg(RegClass::Int, src1) ||
            !expect(",") ||
            !parseImmOrLabel(imm, is_label, label) || !expect("]"))
            return false;
    } else if (mem_form) {
        // store: [rN, imm] = src2
        if (!expect("[") || !parseReg(RegClass::Int, src1) ||
            !expect(",") ||
            !parseImmOrLabel(imm, is_label, label) || !expect("]") ||
            !expect("=") || !parseReg(oi.src2Class, src2))
            return false;
    } else {
        // General form: [dst =] [src1[, src2][, imm]]
        if (oi.dstClass != RegClass::None) {
            if (!parseReg(oi.dstClass, dst) || !expect("="))
                return false;
        }
        bool first = true;
        auto sep = [&]() -> bool {
            if (first) {
                first = false;
                return true;
            }
            return expect(",");
        };
        if (oi.src1Class != RegClass::None) {
            if (!sep() || !parseReg(oi.src1Class, src1))
                return false;
        }
        if (oi.src2Class != RegClass::None) {
            if (!sep() || !parseReg(oi.src2Class, src2))
                return false;
        }
        if (oi.usesImm) {
            if (!sep() || !parseImmOrLabel(imm, is_label, label))
                return false;
        }
    }

    if (!atEnd()) {
        fail("trailing tokens after instruction: '" + peek() + "'");
        return false;
    }

    std::size_t index =
        _program.append(StaticInst(op, qp, dst, src1, src2, imm));
    if (is_label)
        _fixups.push_back({index, label, wants_index, _line});
    return true;
}

bool
Parser::parseInstruction()
{
    std::uint8_t qp = 0;
    if (peek() == "(") {
        take();
        if (!parseReg(RegClass::Pred, qp) || !expect(")"))
            return false;
        if (atEnd()) {
            fail("qualifying predicate without an instruction");
            return false;
        }
    }
    std::string mnemonic = take();
    Opcode op;
    if (!opcodeFromMnemonic(mnemonic, op)) {
        fail("unknown mnemonic '" + mnemonic + "'");
        return false;
    }
    return parseOperands(op, qp);
}

bool
Parser::parseLine()
{
    // Leading labels ("name:"), possibly several on one line.
    while (_tokens.size() - _pos >= 2 && _tokens[_pos + 1] == ":") {
        const std::string &name = _tokens[_pos];
        if (!std::isalpha(static_cast<unsigned char>(name[0])) &&
            name[0] != '_') {
            fail("bad label name '" + name + "'");
            return false;
        }
        if (_program.hasLabel(name)) {
            fail("duplicate label '" + name + "'");
            return false;
        }
        _program.defineLabel(name, _program.size());
        _pos += 2;
    }
    if (atEnd())
        return true;
    if (peek()[0] == '.')
        return parseDirective();
    return parseInstruction();
}

AsmResult
Parser::run()
{
    std::size_t start = 0;
    while (start <= _source.size() && !_error) {
        auto nl = _source.find('\n', start);
        std::string_view line = _source.substr(
            start, nl == std::string_view::npos ? std::string_view::npos
                                                : nl - start);
        ++_line;
        _tokens = tokenize(line);
        _pos = 0;
        if (!_tokens.empty())
            parseLine();
        if (nl == std::string_view::npos)
            break;
        start = nl + 1;
    }

    // Resolve label fixups.
    for (const auto &fixup : _fixups) {
        if (_error)
            break;
        if (!_program.hasLabel(fixup.label)) {
            _error = AsmError{fixup.line,
                              "undefined label '" + fixup.label + "'"};
            break;
        }
        std::size_t target = _program.labelIndex(fixup.label);
        StaticInst &inst = _program.inst(fixup.instIndex);
        std::int64_t value =
            fixup.wantsIndex
                ? static_cast<std::int64_t>(target)
                : static_cast<std::int64_t>(
                      Program::indexToAddr(target));
        inst = StaticInst(inst.opcode(), inst.qp(), inst.dst(),
                          inst.src1(), inst.src2(),
                          static_cast<std::int32_t>(value));
    }

    if (!_error && !_entryLabel.empty()) {
        if (!_program.hasLabel(_entryLabel)) {
            _error = AsmError{0, "undefined entry label '" +
                                     _entryLabel + "'"};
        } else {
            _program.setEntry(_program.labelIndex(_entryLabel));
        }
    }

    AsmResult result;
    result.error = _error;
    if (!_error)
        result.program = std::move(_program);
    return result;
}

} // namespace

AsmResult
assemble(std::string_view source)
{
    return Parser(source).run();
}

Program
assembleOrDie(std::string_view source)
{
    AsmResult result = assemble(source);
    if (!result.ok()) {
        SER_FATAL("assembler error at line {}: {}",
                  result.error->line, result.error->message);
    }
    return std::move(result.program);
}

} // namespace isa
} // namespace ser
