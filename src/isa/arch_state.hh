/**
 * @file
 * ArchState: the full architectural state of a TIA64 machine.
 *
 * Registers (with the hardwired r0/f0/f1/p0 conventions), a sparse
 * paged 64-bit byte-addressable memory, and the program output stream
 * (the ACE sink — the only state an observer of the program can see).
 */

#ifndef SER_ISA_ARCH_STATE_HH
#define SER_ISA_ARCH_STATE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/isa.hh"
#include "isa/program.hh"
#include "sim/flat_hash.hh"

namespace ser
{
namespace isa
{

/**
 * Sparse byte-addressable memory backed by 4 KiB pages.
 *
 * The page table is a flat open-addressing map from page index to a
 * slot in a contiguous page store (sim/flat_hash.hh), not a
 * node-based unordered_map: the oracle does one table probe per
 * load/store, making this the hottest map in the simulator. A
 * one-entry memo of the last page touched short-circuits the probe
 * entirely for the common run of consecutive accesses to the same
 * stack or heap page.
 */
class SparseMemory
{
  public:
    static constexpr std::uint64_t pageBytes = 4096;

    std::uint8_t readByte(std::uint64_t addr) const;
    void writeByte(std::uint64_t addr, std::uint8_t value);

    /** Little-endian 8-byte accesses; unaligned accesses allowed. */
    std::uint64_t readWord(std::uint64_t addr) const;
    void writeWord(std::uint64_t addr, std::uint64_t value);

    /** Number of pages ever touched (for footprint statistics). */
    std::size_t numPages() const { return _pageStore.size(); }

    void
    clear()
    {
        _pageTable.clear();
        _pageStore.clear();
        _lastPage = noPage;
        _lastSlot = 0;
    }

    /**
     * Content equality. A page present on one side only counts as
     * equal when it is all zeroes, since untouched memory reads as
     * zero — two states that merely differ in which zero pages were
     * materialized are architecturally identical.
     */
    bool equals(const SparseMemory &other) const;

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    static constexpr std::uint64_t noPage = ~std::uint64_t{0};

    const Page *findPage(std::uint64_t addr) const;
    Page &getPage(std::uint64_t addr);

    /** Page index -> slot in _pageStore. Page indices are addresses
     * shifted down by 12 bits, so the flat map's ~0 sentinel is
     * unreachable. */
    sim::FlatHashMap<std::uint32_t> _pageTable;
    std::vector<Page> _pageStore;

    // Last-page memo (mutable: reads warm it too).
    mutable std::uint64_t _lastPage = noPage;
    mutable std::uint32_t _lastSlot = 0;
};

/** Registers + memory + output stream. */
class ArchState
{
  public:
    ArchState();

    /** Reset registers/memory/output and load a program's data. */
    void reset(const Program &program);

    // Register accessors enforce the hardwired conventions.
    std::uint64_t readInt(int reg) const;
    void writeInt(int reg, std::uint64_t value);
    double readFp(int reg) const;
    void writeFp(int reg, double value);
    bool readPred(int reg) const;
    void writePred(int reg, bool value);

    /** Raw fp bits (for fst/fout and state comparison). */
    std::uint64_t readFpBits(int reg) const;
    void writeFpBits(int reg, std::uint64_t bits);

    SparseMemory &memory() { return _mem; }
    const SparseMemory &memory() const { return _mem; }

    void appendOutput(std::uint64_t value)
    {
        _output.push_back(value);
    }
    const std::vector<std::uint64_t> &output() const { return _output; }

    /** Full architectural equality: registers, memory, and output. */
    bool equals(const ArchState &other) const;

  private:
    std::array<std::uint64_t, numIntRegs> _intRegs{};
    std::array<std::uint64_t, numFpRegs> _fpRegs{};
    std::array<bool, numPredRegs> _predRegs{};
    SparseMemory _mem;
    std::vector<std::uint64_t> _output;
};

} // namespace isa
} // namespace ser

#endif // SER_ISA_ARCH_STATE_HH
