/**
 * @file
 * The TIA64 functional executor.
 *
 * Executes a Program against an ArchState one instruction at a time.
 * Two users:
 *
 *  - The timing model (src/cpu) drives an Executor as its oracle: one
 *    step per correct-path fetched instruction, in fetch order. The
 *    StepInfo it returns (taken branches, effective addresses, the
 *    qp outcome) is what lets fetch detect mispredictions and lets
 *    the dcache model see real addresses.
 *
 *  - The fault injector re-runs programs functionally with a single
 *    dynamic instruction's encoding corrupted (setCorruption) and
 *    compares the output stream against the golden run to decide
 *    whether a fault would have affected the program output.
 *
 * Execution is fully deterministic: divide-by-zero yields 0 rather
 *  than trapping, shift counts are masked, and memory reads of
 * untouched locations return 0.
 */

#ifndef SER_ISA_EXECUTOR_HH
#define SER_ISA_EXECUTOR_HH

#include <cstdint>
#include <optional>

#include "isa/arch_state.hh"
#include "isa/program.hh"

namespace ser
{
namespace isa
{

/** Why the executor stopped (or didn't). */
enum class Termination : std::uint8_t
{
    Running,   ///< step() executed normally
    Halted,    ///< executed a halt
    MaxSteps,  ///< run() hit its step bound
    Trap,      ///< illegal opcode / bad branch target / pc off the end
};

/** What one dynamic instruction did. */
struct StepInfo
{
    std::uint64_t seq;       ///< dynamic step index (0-based)
    std::uint32_t pc;        ///< instruction index executed
    StaticInst inst;         ///< as executed (post-corruption if any)
    bool qpTrue;             ///< false: instruction was nullified
    bool taken;              ///< control transfer redirected the pc
    std::uint32_t nextPc;    ///< instruction index executed next
    std::uint64_t memAddr;   ///< effective address for memory ops
    std::uint64_t storeValue;///< raw value written, for stores
    int callDepthDelta;      ///< +1 for call, -1 for ret (if qpTrue)
};

/**
 * A resumable snapshot of an execution in flight: the architectural
 * state plus the executor's own position (pc, step count, call
 * depth). Restoring one is equivalent to replaying the program from
 * the entry for 'steps' instructions, at the cost of one ArchState
 * copy — the checkpoint/fork primitive the fault-injection campaign
 * engine uses to pay only an injection's post-strike suffix.
 */
struct ExecCheckpoint
{
    ArchState state;
    std::uint32_t pc = 0;
    std::uint64_t steps = 0;
    int callDepth = 0;
};

/** Functional executor over one Program. */
class Executor
{
  public:
    explicit Executor(const Program &program);

    /** Restart from the program entry with fresh state. */
    void reset();

    /** Capture the current execution position and state. */
    ExecCheckpoint snapshot() const;

    /**
     * Resume from a checkpoint. The step counter is restored too, so
     * a pending setCorruption keyed on an absolute dynamic seq still
     * fires at the right instruction after a restore.
     */
    void restore(const ExecCheckpoint &checkpoint);

    /**
     * Corrupt the instruction fetched at dynamic step 'seq' by XORing
     * its encoding with 'mask' (single-event upset model). At most
     * one corruption is in effect per run.
     */
    void setCorruption(std::uint64_t seq, std::uint64_t mask);
    void clearCorruption() { _corruptSeq.reset(); }

    /**
     * Execute one instruction. Returns Termination::Running on a
     * normal step, or the terminal condition. info (optional)
     * receives the step's details; it is filled in even for the
     * halting step, but not for traps detected before decode.
     */
    Termination step(StepInfo *info = nullptr);

    /** Run until halt/trap or until max_steps more instructions. */
    Termination run(std::uint64_t max_steps);

    const ArchState &state() const { return _state; }
    ArchState &state() { return _state; }
    const Program &program() const { return _program; }

    std::uint64_t steps() const { return _steps; }
    std::uint32_t pc() const { return _pc; }
    int callDepth() const { return _callDepth; }

  private:
    Termination execute(const StaticInst &inst, StepInfo &info);

    const Program &_program;
    ArchState _state;
    std::uint32_t _pc;
    std::uint64_t _steps = 0;
    int _callDepth = 0;
    std::optional<std::uint64_t> _corruptSeq;
    std::uint64_t _corruptMask = 0;
};

} // namespace isa
} // namespace ser

#endif // SER_ISA_EXECUTOR_HH
