/**
 * @file
 * Core definitions of the TIA64 mini-ISA.
 *
 * TIA64 is a small, fully predicated, IA64-flavoured 64-bit ISA built
 * for this reproduction. Every instruction carries a qualifying
 * predicate (like Itanium), there are large int/fp/predicate register
 * files, and the instruction set includes the "neutral" instruction
 * types the paper cares about (no-ops, prefetches, branch hints) as
 * well as an explicit output instruction that defines the ACE
 * endpoint of a program.
 *
 * The fixed 64-bit encoding (see encoding.hh) gives every instruction
 * bit a defined meaning, which the AVF analysis and the fault
 * injector rely on.
 */

#ifndef SER_ISA_ISA_HH
#define SER_ISA_ISA_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ser
{
namespace isa
{

/** Architectural register-file sizes. */
constexpr int numIntRegs = 64;   ///< r0 is hardwired to zero.
constexpr int numFpRegs = 64;    ///< f0 == 0.0, f1 == 1.0 (hardwired).
constexpr int numPredRegs = 64;  ///< p0 is hardwired to true.

/** Code layout: instruction i lives at codeBase + i * instBytes. */
constexpr std::uint64_t codeBase = 0x1000;
constexpr std::uint64_t instBytes = 8;

/** Default base of generated programs' data segments. */
constexpr std::uint64_t dataBase = 0x100000;

/** Which register file an operand names. */
enum class RegClass : std::uint8_t
{
    None,  ///< operand slot unused by this opcode
    Int,
    Fp,
    Pred,
};

/**
 * TIA64 opcodes. The numeric values are the 8-bit opcode field of the
 * encoding and must stay dense from 0 so decode can table-index.
 */
enum class Opcode : std::uint8_t
{
    // Neutral instruction types (paper Section 4.1).
    Nop = 0,
    Prefetch,  ///< touch dcache at [src1 + imm]; no architectural effect
    Hint,      ///< branch-predict hint; no architectural effect

    // Program control of the simulation itself.
    Halt,      ///< stop the program
    Out,       ///< append int src1 to the program output (the ACE sink)
    FOut,      ///< append fp src1 (raw bits) to the program output

    // Integer ALU, register forms: dst = src1 op src2.
    Add, Sub, Mul, Divq, Remq,
    And, Or, Xor, Andc,
    Shl, Shr, Sar,

    // Integer ALU, immediate forms: dst = src1 op imm.
    Addi, Andi, Ori, Xori, Shli, Shri,

    // dst = sign-extended 32-bit immediate.
    Movi,

    // Compares write a predicate register: pdst = src1 op src2.
    CmpEq, CmpNe, CmpLt, CmpLe, CmpLtu,
    CmpiEq, CmpiLt,  ///< immediate compare: pdst = src1 op imm

    // Floating point: dst = src1 op src2 (doubles).
    Fadd, Fsub, Fmul, Fdiv,
    FcmpLt, FcmpEq,  ///< pdst = fsrc1 op fsrc2
    I2f,             ///< fdst = double(int src1)
    F2i,             ///< dst = int64(fp src1)

    // Memory: 8-byte accesses at [src1 + imm].
    Ld8,   ///< dst = mem[src1 + imm]
    St8,   ///< mem[src1 + imm] = src2
    Fld,   ///< fdst = mem[src1 + imm]
    Fst,   ///< mem[src1 + imm] = fsrc2

    // Control transfer. All branches are predicated on qp.
    Br,    ///< pc = imm (instruction index) if qp
    Bri,   ///< pc = index(src1) if qp (indirect)
    Call,  ///< dst = link address; pc = imm; pushes call depth
    Ret,   ///< pc = index(src1); pops call depth

    NumOpcodes
};

constexpr int numOpcodes = static_cast<int>(Opcode::NumOpcodes);

/** Functional-unit class; determines execution latency. */
enum class OpClass : std::uint8_t
{
    Nop,
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    FpCvt,
    Load,
    Store,
    Branch,
    Other,
};

/**
 * Static properties of one opcode. A single table (opInfo) drives the
 * decoder, the assembler, the functional executor and the AVF
 * classifier so they can never disagree.
 */
struct OpInfo
{
    std::string_view mnemonic;
    OpClass opClass;
    RegClass dstClass;   ///< RegClass::None if no destination
    RegClass src1Class;
    RegClass src2Class;
    bool usesImm;
    bool isNeutral;      ///< no-op / prefetch / hint (paper Section 4.1)
    bool isMem;          ///< accesses data memory (incl. prefetch)
    bool isControl;      ///< may redirect the pc
    bool isOutput;       ///< writes the program output (ACE sink)
};

namespace detail
{
/** One row per opcode, indexed by the opcode's numeric value
 * (defined in isa.cc; reach it through opInfo()). */
extern const std::array<OpInfo, numOpcodes> opTable;

/** Out-of-line panic for an out-of-range opcode. */
[[noreturn]] void invalidOpcode(std::size_t idx);
} // namespace detail

/** Metadata for an opcode; valid for raw values < numOpcodes.
 * Inline: every decoder, latency and AVF-classification query funnels
 * through this lookup, so it must compile to a load, not a call. */
inline const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    if (idx >= detail::opTable.size())
        detail::invalidOpcode(idx);
    return detail::opTable[idx];
}

/** True if the raw 8-bit opcode field names a defined opcode. */
bool opcodeValid(std::uint8_t raw);

/** Mnemonic lookup used by the assembler; returns false if unknown. */
bool opcodeFromMnemonic(std::string_view mnemonic, Opcode &op);

} // namespace isa
} // namespace ser

#endif // SER_ISA_ISA_HH
