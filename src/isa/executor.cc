#include "executor.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "sim/compiler.hh"
#include "sim/logging.hh"

namespace ser
{
namespace isa
{

Executor::Executor(const Program &program) : _program(program)
{
    reset();
}

void
Executor::reset()
{
    _state.reset(_program);
    _pc = static_cast<std::uint32_t>(_program.entry());
    _steps = 0;
    _callDepth = 0;
}

ExecCheckpoint
Executor::snapshot() const
{
    return ExecCheckpoint{_state, _pc, _steps, _callDepth};
}

void
Executor::restore(const ExecCheckpoint &checkpoint)
{
    _state = checkpoint.state;
    _pc = checkpoint.pc;
    _steps = checkpoint.steps;
    _callDepth = checkpoint.callDepth;
}

void
Executor::setCorruption(std::uint64_t seq, std::uint64_t mask)
{
    _corruptSeq = seq;
    _corruptMask = mask;
}

Termination
Executor::step(StepInfo *info)
{
    if (_pc >= _program.size())
        return Termination::Trap;

    StaticInst inst = _program.inst(_pc);
    if (SER_UNLIKELY(_corruptSeq && *_corruptSeq == _steps)) {
        std::uint64_t word = inst.encode() ^ _corruptMask;
        if (!StaticInst::decode(word, inst))
            return Termination::Trap;  // illegal opcode after upset
    }

    StepInfo local;
    StepInfo &si = info ? *info : local;
    // Field-at-a-time reset: this is the per-fetch oracle step, and
    // a whole-struct clear rewrites every byte the next lines
    // immediately overwrite again.
    si.seq = _steps;
    si.pc = _pc;
    si.inst = inst;
    si.qpTrue = _state.readPred(inst.qp());
    si.taken = false;
    si.nextPc = _pc + 1;
    si.memAddr = 0;
    si.storeValue = 0;
    si.callDepthDelta = 0;

    Termination term = Termination::Running;
    if (si.qpTrue)
        term = execute(inst, si);

    ++_steps;
    if (term == Termination::Running || term == Termination::Halted)
        _pc = si.nextPc;
    _callDepth += si.callDepthDelta;
    return term;
}

Termination
Executor::run(std::uint64_t max_steps)
{
    for (std::uint64_t i = 0; i < max_steps; ++i) {
        Termination term = step();
        if (term != Termination::Running)
            return term;
    }
    return Termination::MaxSteps;
}

namespace
{

std::uint32_t
branchTargetFromAddr(const Program &program, std::uint64_t addr,
                     bool &ok)
{
    if (!Program::addrInCode(addr, program.size())) {
        ok = false;
        return 0;
    }
    ok = true;
    return static_cast<std::uint32_t>(Program::addrToIndex(addr));
}

} // namespace

Termination
Executor::execute(const StaticInst &inst, StepInfo &si)
{
    ArchState &st = _state;
    auto rd1 = [&]() { return st.readInt(inst.src1()); };
    auto rd2 = [&]() { return st.readInt(inst.src2()); };
    auto imm = [&]() {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(inst.imm()));
    };
    auto wrInt = [&](std::uint64_t v) { st.writeInt(inst.dst(), v); };
    auto wrPred = [&](bool v) { st.writePred(inst.dst(), v); };
    auto f1 = [&]() { return st.readFp(inst.src1()); };
    auto f2 = [&]() { return st.readFp(inst.src2()); };
    auto wrFp = [&](double v) { st.writeFp(inst.dst(), v); };
    auto ea = [&]() {
        return rd1() + imm();
    };

    switch (inst.opcode()) {
      case Opcode::Nop:
      case Opcode::Hint:
        break;
      case Opcode::Prefetch:
        si.memAddr = ea();  // timing-only; no architectural effect
        break;

      case Opcode::Halt:
        return Termination::Halted;
      case Opcode::Out:
        st.appendOutput(rd1());
        break;
      case Opcode::FOut:
        st.appendOutput(st.readFpBits(inst.src1()));
        break;

      case Opcode::Add: wrInt(rd1() + rd2()); break;
      case Opcode::Sub: wrInt(rd1() - rd2()); break;
      case Opcode::Mul: wrInt(rd1() * rd2()); break;
      case Opcode::Divq: {
        std::uint64_t d = rd2();
        wrInt(d == 0 ? 0 : rd1() / d);
        break;
      }
      case Opcode::Remq: {
        std::uint64_t d = rd2();
        wrInt(d == 0 ? 0 : rd1() % d);
        break;
      }
      case Opcode::And: wrInt(rd1() & rd2()); break;
      case Opcode::Or: wrInt(rd1() | rd2()); break;
      case Opcode::Xor: wrInt(rd1() ^ rd2()); break;
      case Opcode::Andc: wrInt(rd1() & ~rd2()); break;
      case Opcode::Shl: wrInt(rd1() << (rd2() & 63)); break;
      case Opcode::Shr: wrInt(rd1() >> (rd2() & 63)); break;
      case Opcode::Sar:
        wrInt(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rd1()) >>
            static_cast<std::int64_t>(rd2() & 63)));
        break;

      case Opcode::Addi: wrInt(rd1() + imm()); break;
      case Opcode::Andi: wrInt(rd1() & imm()); break;
      case Opcode::Ori: wrInt(rd1() | imm()); break;
      case Opcode::Xori: wrInt(rd1() ^ imm()); break;
      case Opcode::Shli:
        wrInt(rd1() << (static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(inst.imm())) &
                        63));
        break;
      case Opcode::Shri:
        wrInt(rd1() >> (static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(inst.imm())) &
                        63));
        break;

      case Opcode::Movi: wrInt(imm()); break;

      case Opcode::CmpEq: wrPred(rd1() == rd2()); break;
      case Opcode::CmpNe: wrPred(rd1() != rd2()); break;
      case Opcode::CmpLt:
        wrPred(static_cast<std::int64_t>(rd1()) <
               static_cast<std::int64_t>(rd2()));
        break;
      case Opcode::CmpLe:
        wrPred(static_cast<std::int64_t>(rd1()) <=
               static_cast<std::int64_t>(rd2()));
        break;
      case Opcode::CmpLtu: wrPred(rd1() < rd2()); break;
      case Opcode::CmpiEq: wrPred(rd1() == imm()); break;
      case Opcode::CmpiLt:
        wrPred(static_cast<std::int64_t>(rd1()) <
               static_cast<std::int64_t>(imm()));
        break;

      case Opcode::Fadd: wrFp(f1() + f2()); break;
      case Opcode::Fsub: wrFp(f1() - f2()); break;
      case Opcode::Fmul: wrFp(f1() * f2()); break;
      case Opcode::Fdiv: {
        double d = f2();
        wrFp(d == 0.0 ? 0.0 : f1() / d);
        break;
      }
      case Opcode::FcmpLt: wrPred(f1() < f2()); break;
      case Opcode::FcmpEq: wrPred(f1() == f2()); break;
      case Opcode::I2f:
        wrFp(static_cast<double>(static_cast<std::int64_t>(rd1())));
        break;
      case Opcode::F2i: {
        // Deterministic, trap-free conversion: NaN and out-of-range
        // values (where the C++ cast would be UB) saturate.
        double v = f1();
        std::int64_t result;
        if (std::isnan(v))
            result = 0;
        else if (v >= 9.2233720368547758e18)
            result = std::numeric_limits<std::int64_t>::max();
        else if (v <= -9.2233720368547758e18)
            result = std::numeric_limits<std::int64_t>::min();
        else
            result = static_cast<std::int64_t>(v);
        wrInt(static_cast<std::uint64_t>(result));
        break;
      }

      case Opcode::Ld8:
        si.memAddr = ea();
        wrInt(st.memory().readWord(si.memAddr));
        break;
      case Opcode::St8:
        si.memAddr = ea();
        si.storeValue = rd2();
        st.memory().writeWord(si.memAddr, si.storeValue);
        break;
      case Opcode::Fld:
        si.memAddr = ea();
        st.writeFpBits(inst.dst(), st.memory().readWord(si.memAddr));
        break;
      case Opcode::Fst:
        si.memAddr = ea();
        si.storeValue = st.readFpBits(inst.src2());
        st.memory().writeWord(si.memAddr, si.storeValue);
        break;

      case Opcode::Br: {
        auto target = static_cast<std::uint32_t>(
            static_cast<std::uint32_t>(inst.imm()));
        if (target >= _program.size())
            return Termination::Trap;
        si.taken = true;
        si.nextPc = target;
        break;
      }
      case Opcode::Bri:
      case Opcode::Ret: {
        bool ok;
        std::uint32_t target =
            branchTargetFromAddr(_program, rd1(), ok);
        if (!ok)
            return Termination::Trap;
        si.taken = true;
        si.nextPc = target;
        if (inst.opcode() == Opcode::Ret)
            si.callDepthDelta = -1;
        break;
      }
      case Opcode::Call: {
        auto target = static_cast<std::uint32_t>(
            static_cast<std::uint32_t>(inst.imm()));
        if (target >= _program.size())
            return Termination::Trap;
        wrInt(Program::indexToAddr(_pc + 1));
        si.taken = true;
        si.nextPc = target;
        si.callDepthDelta = 1;
        break;
      }

      case Opcode::NumOpcodes:
        SER_PANIC("executor: NumOpcodes is not an opcode");
    }
    return Termination::Running;
}

} // namespace isa
} // namespace ser
