/**
 * @file
 * A text assembler for TIA64.
 *
 * Syntax (one instruction per line; "//" and "#" start comments):
 *
 *     .entry main            // entry label (default: first inst)
 *     .data 0x100000         // set the data cursor
 *     .word 42               // emit a u64 at the cursor, advance 8
 *     main:
 *         movi r4 = 100
 *         (p3) add r5 = r4, r6
 *         ld8 r7 = [r5, 16]
 *         st8 [r5, 24] = r7
 *         cmplt p3 = r4, r5
 *         (p3) br main       // direct branch targets are labels
 *         call r62 = func    // link register = address of next inst
 *         ret r62
 *         out r7
 *         halt
 *
 * Labels used as immediates resolve to an instruction *index* in
 * direct branches (br/call) and to a full code *address* elsewhere
 * (e.g. movi of a function address for an indirect call).
 *
 * Errors are reported with line numbers via the AsmError result; the
 * assembler never exits the process, so it is safe to drive from
 * fuzzing/property tests.
 */

#ifndef SER_ISA_ASSEMBLER_HH
#define SER_ISA_ASSEMBLER_HH

#include <optional>
#include <string>
#include <string_view>

#include "isa/program.hh"

namespace ser
{
namespace isa
{

/** A parse/semantic error with its source line. */
struct AsmError
{
    int line;
    std::string message;
};

/** The outcome of assembling a source text. */
struct AsmResult
{
    Program program;
    std::optional<AsmError> error;

    bool ok() const { return !error.has_value(); }
};

/** Assemble TIA64 source text into a Program. */
AsmResult assemble(std::string_view source);

/** Assemble, treating any error as fatal (for trusted inputs). */
Program assembleOrDie(std::string_view source);

} // namespace isa
} // namespace ser

#endif // SER_ISA_ASSEMBLER_HH
