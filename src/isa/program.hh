/**
 * @file
 * Program: a TIA64 executable image.
 *
 * Holds the static instruction sequence (instruction i lives at
 * address codeBase + i * instBytes), named labels, and the initial
 * contents of the data segment. Programs are produced either by the
 * assembler (from text) or directly by the workload builder.
 */

#ifndef SER_ISA_PROGRAM_HH
#define SER_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/static_inst.hh"

namespace ser
{
namespace isa
{

/** One 8-byte initialised data word. */
struct DataInit
{
    std::uint64_t addr;
    std::uint64_t value;
};

/** An executable TIA64 image. */
class Program
{
  public:
    Program() = default;

    /** Append an instruction; returns its instruction index. */
    std::size_t append(const StaticInst &inst);

    /** Define a label at the given instruction index. */
    void defineLabel(const std::string &name, std::size_t index);

    /** Look up a label; fatal error if undefined. */
    std::size_t labelIndex(const std::string &name) const;
    bool hasLabel(const std::string &name) const;

    /** Add an initial data word. */
    void addData(std::uint64_t addr, std::uint64_t value);

    std::size_t size() const { return _insts.size(); }
    bool empty() const { return _insts.empty(); }

    /** Instruction at an index; panics when out of range. Inline:
     * wrong-path fetch decodes through this accessor every cycle it
     * runs ahead, so it must be a bounds check and a load, not a
     * call (the panic itself stays out of line). */
    const StaticInst &
    inst(std::size_t index) const
    {
        if (index >= _insts.size())
            instOutOfRange(index);
        return _insts[index];
    }
    StaticInst &
    inst(std::size_t index)
    {
        if (index >= _insts.size())
            instOutOfRange(index);
        return _insts[index];
    }

    const std::vector<StaticInst> &instructions() const
    {
        return _insts;
    }
    const std::vector<DataInit> &dataInits() const { return _data; }
    const std::map<std::string, std::size_t> &labels() const
    {
        return _labels;
    }

    /** Entry point (instruction index); defaults to 0. */
    std::size_t entry() const { return _entry; }
    void setEntry(std::size_t index) { _entry = index; }

    /** Address <-> instruction-index mapping. */
    static std::uint64_t indexToAddr(std::size_t index)
    {
        return codeBase + index * instBytes;
    }
    static bool addrInCode(std::uint64_t addr, std::size_t num_insts);
    static std::size_t addrToIndex(std::uint64_t addr);

    /** Full text disassembly (with labels). */
    std::string disassemble() const;

  private:
    [[noreturn]] void instOutOfRange(std::size_t index) const;

    std::vector<StaticInst> _insts;
    std::map<std::string, std::size_t> _labels;
    std::vector<DataInit> _data;
    std::size_t _entry = 0;
};

} // namespace isa
} // namespace ser

#endif // SER_ISA_PROGRAM_HH
