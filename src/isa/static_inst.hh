/**
 * @file
 * StaticInst: one decoded TIA64 instruction.
 *
 * A StaticInst is a value type decoded from (and re-encodable to) the
 * 64-bit encoding word. All structural questions the pipeline, AVF
 * analysis, and fault injector ask — does it write a register, is it
 * neutral, is it a branch, which fields does it actually use — are
 * answered here, from the shared opInfo table.
 */

#ifndef SER_ISA_STATIC_INST_HH
#define SER_ISA_STATIC_INST_HH

#include <cstdint>
#include <string>

#include "isa/encoding.hh"
#include "isa/isa.hh"

namespace ser
{
namespace isa
{

/** A decoded instruction. */
class StaticInst
{
  public:
    /** Default: a nop predicated on p0. */
    StaticInst() = default;

    StaticInst(Opcode op, std::uint8_t qp, std::uint8_t dst,
               std::uint8_t src1, std::uint8_t src2, std::int32_t imm);

    /**
     * Decode a raw word. Returns false (and leaves the instruction
     * as a nop) if the opcode field is not a defined opcode — the
     * caller decides whether that is an illegal-instruction trap.
     */
    static bool decode(std::uint64_t word, StaticInst &inst);

    /** Re-encode to the canonical 64-bit word. */
    std::uint64_t encode() const;

    Opcode opcode() const { return _op; }
    const OpInfo &info() const { return opInfo(_op); }

    std::uint8_t qp() const { return _qp; }
    std::uint8_t dst() const { return _dst; }
    std::uint8_t src1() const { return _src1; }
    std::uint8_t src2() const { return _src2; }
    std::int32_t imm() const { return _imm; }

    /** Destination register class (RegClass::None if no dest). */
    RegClass dstClass() const { return info().dstClass; }
    bool writesIntReg() const { return dstClass() == RegClass::Int; }
    bool writesFpReg() const { return dstClass() == RegClass::Fp; }
    bool writesPredReg() const { return dstClass() == RegClass::Pred; }
    bool hasDst() const { return dstClass() != RegClass::None; }

    bool isNop() const { return _op == Opcode::Nop; }
    bool isNeutral() const { return info().isNeutral; }
    bool isLoad() const
    {
        return _op == Opcode::Ld8 || _op == Opcode::Fld;
    }
    bool isStore() const
    {
        return _op == Opcode::St8 || _op == Opcode::Fst;
    }
    bool isPrefetch() const { return _op == Opcode::Prefetch; }
    bool isMem() const { return info().isMem; }
    bool isControl() const { return info().isControl; }
    bool isBranch() const { return info().opClass == OpClass::Branch; }
    bool isCall() const { return _op == Opcode::Call; }
    bool isReturn() const { return _op == Opcode::Ret; }
    bool isIndirectBranch() const
    {
        return _op == Opcode::Bri || _op == Opcode::Ret;
    }
    bool isDirectBranch() const
    {
        return _op == Opcode::Br || _op == Opcode::Call;
    }
    /** Direct branches/calls are always-taken when qp is true;
     * conditionality comes entirely from the qualifying predicate. */
    bool isConditionalBranch() const
    {
        return _op == Opcode::Br && _qp != 0;
    }
    bool isOutput() const { return info().isOutput; }
    bool isHalt() const { return _op == Opcode::Halt; }

    /** Reads the qp predicate register (p0 is constant true). */
    bool readsQp() const { return _qp != 0; }

    OpClass opClass() const { return info().opClass; }

    /** Disassemble to assembler syntax. */
    std::string toString() const;

  private:
    Opcode _op = Opcode::Nop;
    std::uint8_t _qp = 0;
    std::uint8_t _dst = 0;
    std::uint8_t _src1 = 0;
    std::uint8_t _src2 = 0;
    std::int32_t _imm = 0;
};

} // namespace isa
} // namespace ser

#endif // SER_ISA_STATIC_INST_HH
