#include "program.hh"

#include <sstream>

#include "sim/logging.hh"

namespace ser
{
namespace isa
{

std::size_t
Program::append(const StaticInst &inst)
{
    _insts.push_back(inst);
    return _insts.size() - 1;
}

void
Program::defineLabel(const std::string &name, std::size_t index)
{
    auto [it, inserted] = _labels.emplace(name, index);
    if (!inserted)
        SER_FATAL("program: duplicate label '{}'", name);
}

std::size_t
Program::labelIndex(const std::string &name) const
{
    auto it = _labels.find(name);
    if (it == _labels.end())
        SER_FATAL("program: undefined label '{}'", name);
    return it->second;
}

bool
Program::hasLabel(const std::string &name) const
{
    return _labels.count(name) > 0;
}

void
Program::addData(std::uint64_t addr, std::uint64_t value)
{
    _data.push_back({addr, value});
}

void
Program::instOutOfRange(std::size_t index) const
{
    SER_PANIC("program: instruction index {} out of range ({})",
              index, _insts.size());
}

bool
Program::addrInCode(std::uint64_t addr, std::size_t num_insts)
{
    return addr >= codeBase && addr % instBytes == 0 &&
           (addr - codeBase) / instBytes < num_insts;
}

std::size_t
Program::addrToIndex(std::uint64_t addr)
{
    return (addr - codeBase) / instBytes;
}

std::string
Program::disassemble() const
{
    // Invert the label map for printing.
    std::map<std::size_t, std::vector<std::string>> by_index;
    for (const auto &[name, index] : _labels)
        by_index[index].push_back(name);

    std::ostringstream os;
    for (std::size_t i = 0; i < _insts.size(); ++i) {
        auto it = by_index.find(i);
        if (it != by_index.end()) {
            for (const auto &name : it->second)
                os << name << ":\n";
        }
        os << "    " << _insts[i].toString() << "\n";
    }
    return os.str();
}

} // namespace isa
} // namespace ser
