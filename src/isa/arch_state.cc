#include "arch_state.hh"

#include <bit>
#include <cstring>

#include "sim/logging.hh"

namespace ser
{
namespace isa
{

const SparseMemory::Page *
SparseMemory::findPage(std::uint64_t addr) const
{
    const std::uint64_t page = addr / pageBytes;
    if (page == _lastPage)
        return &_pageStore[_lastSlot];
    const std::uint32_t *slot = _pageTable.find(page);
    if (!slot)
        return nullptr;
    _lastPage = page;
    _lastSlot = *slot;
    return &_pageStore[*slot];
}

SparseMemory::Page &
SparseMemory::getPage(std::uint64_t addr)
{
    const std::uint64_t page = addr / pageBytes;
    if (page == _lastPage)
        return _pageStore[_lastSlot];
    std::uint32_t *slot = _pageTable.find(page);
    if (!slot) {
        slot = &_pageTable[page];
        *slot = static_cast<std::uint32_t>(_pageStore.size());
        _pageStore.emplace_back();
        _pageStore.back().fill(0);
    }
    _lastPage = page;
    _lastSlot = *slot;
    return _pageStore[*slot];
}

std::uint8_t
SparseMemory::readByte(std::uint64_t addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % pageBytes] : 0;
}

void
SparseMemory::writeByte(std::uint64_t addr, std::uint8_t value)
{
    getPage(addr)[addr % pageBytes] = value;
}

std::uint64_t
SparseMemory::readWord(std::uint64_t addr) const
{
    // Fast path: the whole word lives in one page. Words are
    // little-endian by specification, so on a little-endian host the
    // assembly loop collapses to one unaligned 8-byte load.
    if (addr % pageBytes <= pageBytes - 8) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        std::uint64_t off = addr % pageBytes;
        if constexpr (std::endian::native == std::endian::little) {
            std::uint64_t v;
            std::memcpy(&v, page->data() + off, 8);
            return v;
        } else {
            std::uint64_t v = 0;
            for (int i = 7; i >= 0; --i)
                v = (v << 8) |
                    (*page)[off + static_cast<std::uint64_t>(i)];
            return v;
        }
    }
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | readByte(addr + static_cast<std::uint64_t>(i));
    return v;
}

void
SparseMemory::writeWord(std::uint64_t addr, std::uint64_t value)
{
    if (addr % pageBytes <= pageBytes - 8) {
        Page &page = getPage(addr);
        std::uint64_t off = addr % pageBytes;
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(page.data() + off, &value, 8);
        } else {
            for (int i = 0; i < 8; ++i) {
                page[off + static_cast<std::uint64_t>(i)] =
                    static_cast<std::uint8_t>(value >> (8 * i));
            }
        }
        return;
    }
    for (int i = 0; i < 8; ++i) {
        writeByte(addr + static_cast<std::uint64_t>(i),
                  static_cast<std::uint8_t>(value >> (8 * i)));
    }
}

bool
SparseMemory::equals(const SparseMemory &other) const
{
    auto zero = [](const Page &page) {
        for (std::uint8_t byte : page) {
            if (byte != 0)
                return false;
        }
        return true;
    };
    bool equal = true;
    _pageTable.forEach([&](std::uint64_t index, std::uint32_t slot) {
        if (!equal)
            return;
        const Page &page = _pageStore[slot];
        const std::uint32_t *theirs = other._pageTable.find(index);
        if (!theirs) {
            if (!zero(page))
                equal = false;
        } else if (page != other._pageStore[*theirs]) {
            equal = false;
        }
    });
    if (!equal)
        return false;
    other._pageTable.forEach(
        [&](std::uint64_t index, std::uint32_t slot) {
            if (!equal)
                return;
            if (!_pageTable.contains(index) &&
                !zero(other._pageStore[slot]))
                equal = false;
        });
    return equal;
}

ArchState::ArchState()
{
    _fpRegs[1] = std::bit_cast<std::uint64_t>(1.0);
    _predRegs[0] = true;
}

void
ArchState::reset(const Program &program)
{
    _intRegs.fill(0);
    _fpRegs.fill(0);
    _fpRegs[1] = std::bit_cast<std::uint64_t>(1.0);
    _predRegs.fill(false);
    _predRegs[0] = true;
    _mem.clear();
    _output.clear();
    for (const auto &init : program.dataInits())
        _mem.writeWord(init.addr, init.value);
}

std::uint64_t
ArchState::readInt(int reg) const
{
    return reg == 0 ? 0 : _intRegs[static_cast<std::size_t>(reg)];
}

void
ArchState::writeInt(int reg, std::uint64_t value)
{
    if (reg != 0)
        _intRegs[static_cast<std::size_t>(reg)] = value;
}

double
ArchState::readFp(int reg) const
{
    return std::bit_cast<double>(readFpBits(reg));
}

void
ArchState::writeFp(int reg, double value)
{
    writeFpBits(reg, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t
ArchState::readFpBits(int reg) const
{
    if (reg == 0)
        return 0;
    if (reg == 1)
        return std::bit_cast<std::uint64_t>(1.0);
    return _fpRegs[static_cast<std::size_t>(reg)];
}

void
ArchState::writeFpBits(int reg, std::uint64_t bits)
{
    if (reg > 1)
        _fpRegs[static_cast<std::size_t>(reg)] = bits;
}

bool
ArchState::readPred(int reg) const
{
    return reg == 0 ? true : _predRegs[static_cast<std::size_t>(reg)];
}

void
ArchState::writePred(int reg, bool value)
{
    if (reg != 0)
        _predRegs[static_cast<std::size_t>(reg)] = value;
}

bool
ArchState::equals(const ArchState &other) const
{
    return _intRegs == other._intRegs && _fpRegs == other._fpRegs &&
           _predRegs == other._predRegs && _output == other._output &&
           _mem.equals(other._mem);
}

} // namespace isa
} // namespace ser
