#include "encoding.hh"

#include "sim/logging.hh"

namespace ser
{
namespace isa
{

using namespace encoding;

std::uint8_t
encQp(std::uint64_t word)
{
    return static_cast<std::uint8_t>(extract(word, qpShift, qpBits));
}

std::uint8_t
encOpcodeRaw(std::uint64_t word)
{
    return static_cast<std::uint8_t>(
        extract(word, opcodeShift, opcodeBits));
}

std::uint8_t
encDst(std::uint64_t word)
{
    return static_cast<std::uint8_t>(extract(word, dstShift, dstBits));
}

std::uint8_t
encSrc1(std::uint64_t word)
{
    return static_cast<std::uint8_t>(
        extract(word, src1Shift, src1Bits));
}

std::uint8_t
encSrc2(std::uint64_t word)
{
    return static_cast<std::uint8_t>(
        extract(word, src2Shift, src2Bits));
}

std::int32_t
encImm(std::uint64_t word)
{
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(extract(word, immShift, immBits)));
}

std::uint64_t
encodeWord(std::uint8_t qp, Opcode op, std::uint8_t dst,
           std::uint8_t src1, std::uint8_t src2, std::int32_t imm)
{
    std::uint64_t w = 0;
    w = insert(w, qpShift, qpBits, qp);
    w = insert(w, opcodeShift, opcodeBits,
               static_cast<std::uint64_t>(op));
    w = insert(w, dstShift, dstBits, dst);
    w = insert(w, src1Shift, src1Bits, src1);
    w = insert(w, src2Shift, src2Bits, src2);
    w = insert(w, immShift, immBits,
               static_cast<std::uint32_t>(imm));
    return w;
}

Field
fieldForBit(int bit)
{
    if (bit < 0 || bit >= payloadBits)
        SER_PANIC("fieldForBit: bit {} out of range", bit);
    if (bit < src2Shift)
        return Field::Imm;
    if (bit < src1Shift)
        return Field::Src2;
    if (bit < dstShift)
        return Field::Src1;
    if (bit < opcodeShift)
        return Field::Dst;
    if (bit < qpShift)
        return Field::Opcode;
    return Field::Qp;
}

int
fieldWidth(Field f)
{
    switch (f) {
      case Field::Qp: return qpBits;
      case Field::Opcode: return opcodeBits;
      case Field::Dst: return dstBits;
      case Field::Src1: return src1Bits;
      case Field::Src2: return src2Bits;
      case Field::Imm: return immBits;
    }
    SER_PANIC("fieldWidth: bad field");
}

std::string_view
fieldName(Field f)
{
    switch (f) {
      case Field::Qp: return "qp";
      case Field::Opcode: return "opcode";
      case Field::Dst: return "dst";
      case Field::Src1: return "src1";
      case Field::Src2: return "src2";
      case Field::Imm: return "imm";
    }
    SER_PANIC("fieldName: bad field");
}

} // namespace isa
} // namespace ser
