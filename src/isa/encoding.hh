/**
 * @file
 * The fixed 64-bit TIA64 instruction encoding.
 *
 * Layout (bit 63 is the MSB):
 *
 *     63      58 57      50 49   44 43   38 37   32 31         0
 *     +---------+----------+-------+-------+-------+------------+
 *     |   qp    |  opcode  |  dst  | src1  | src2  |    imm     |
 *     |  6 bits |  8 bits  | 6 bits| 6 bits| 6 bits|  32 bits   |
 *     +---------+----------+-------+-------+-------+------------+
 *
 * The per-bit field map (fieldForBit) is what lets the AVF analysis
 * apply the paper's field-sensitive un-ACE rules — e.g. "a strike on
 * any bit of a dynamically dead instruction, except the destination
 * register specifier bits, will not change the final outcome"
 * (Section 4.1) — and lets the fault injector name the field it hit.
 */

#ifndef SER_ISA_ENCODING_HH
#define SER_ISA_ENCODING_HH

#include <cstdint>
#include <string_view>

#include "isa/isa.hh"

namespace ser
{
namespace isa
{

/** The named fields of the 64-bit encoding. */
enum class Field : std::uint8_t
{
    Qp,
    Opcode,
    Dst,
    Src1,
    Src2,
    Imm,
};

/** Bit positions (LSB index of each field). */
namespace encoding
{
constexpr int immShift = 0;
constexpr int immBits = 32;
constexpr int src2Shift = 32;
constexpr int src2Bits = 6;
constexpr int src1Shift = 38;
constexpr int src1Bits = 6;
constexpr int dstShift = 44;
constexpr int dstBits = 6;
constexpr int opcodeShift = 50;
constexpr int opcodeBits = 8;
constexpr int qpShift = 58;
constexpr int qpBits = 6;

constexpr int payloadBits = 64;

/** Extract an unsigned field. */
constexpr std::uint64_t
extract(std::uint64_t word, int shift, int bits)
{
    return (word >> shift) & ((1ULL << bits) - 1);
}

/** Insert an unsigned field (value is masked to width). */
constexpr std::uint64_t
insert(std::uint64_t word, int shift, int bits, std::uint64_t value)
{
    std::uint64_t mask = ((1ULL << bits) - 1) << shift;
    return (word & ~mask) | ((value << shift) & mask);
}

} // namespace encoding

/** Field accessors over a raw encoding word. */
std::uint8_t encQp(std::uint64_t word);
std::uint8_t encOpcodeRaw(std::uint64_t word);
std::uint8_t encDst(std::uint64_t word);
std::uint8_t encSrc1(std::uint64_t word);
std::uint8_t encSrc2(std::uint64_t word);
std::int32_t encImm(std::uint64_t word);

/** Build an encoding word from field values. */
std::uint64_t encodeWord(std::uint8_t qp, Opcode op, std::uint8_t dst,
                         std::uint8_t src1, std::uint8_t src2,
                         std::int32_t imm);

/** The field that payload bit 'bit' (0 = LSB) belongs to. */
Field fieldForBit(int bit);

/** Number of bits in a field. */
int fieldWidth(Field f);

/** Human-readable field name. */
std::string_view fieldName(Field f);

} // namespace isa
} // namespace ser

#endif // SER_ISA_ENCODING_HH
