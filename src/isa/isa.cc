#include "isa.hh"

#include <array>

#include "sim/logging.hh"

namespace ser
{
namespace isa
{

namespace detail
{

using RC = RegClass;
using OC = OpClass;

/** One row per opcode, indexed by the opcode's numeric value. */
const std::array<OpInfo, numOpcodes> opTable = {{
    // mnemonic   class       dst       src1      src2      imm   neut  mem   ctrl  out
    {"nop",       OC::Nop,    RC::None, RC::None, RC::None, false, true,  false, false, false},
    {"prefetch",  OC::Load,   RC::None, RC::Int,  RC::None, true,  true,  true,  false, false},
    {"hint",      OC::Nop,    RC::None, RC::None, RC::None, false, true,  false, false, false},

    {"halt",      OC::Other,  RC::None, RC::None, RC::None, false, false, false, true,  false},
    {"out",       OC::Other,  RC::None, RC::Int,  RC::None, false, false, false, false, true},
    {"fout",      OC::Other,  RC::None, RC::Fp,   RC::None, false, false, false, false, true},

    {"add",       OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"sub",       OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"mul",       OC::IntMul, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"divq",      OC::IntDiv, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"remq",      OC::IntDiv, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"and",       OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"or",        OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"xor",       OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"andc",      OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"shl",       OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"shr",       OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},
    {"sar",       OC::IntAlu, RC::Int,  RC::Int,  RC::Int,  false, false, false, false, false},

    {"addi",      OC::IntAlu, RC::Int,  RC::Int,  RC::None, true,  false, false, false, false},
    {"andi",      OC::IntAlu, RC::Int,  RC::Int,  RC::None, true,  false, false, false, false},
    {"ori",       OC::IntAlu, RC::Int,  RC::Int,  RC::None, true,  false, false, false, false},
    {"xori",      OC::IntAlu, RC::Int,  RC::Int,  RC::None, true,  false, false, false, false},
    {"shli",      OC::IntAlu, RC::Int,  RC::Int,  RC::None, true,  false, false, false, false},
    {"shri",      OC::IntAlu, RC::Int,  RC::Int,  RC::None, true,  false, false, false, false},

    {"movi",      OC::IntAlu, RC::Int,  RC::None, RC::None, true,  false, false, false, false},

    {"cmpeq",     OC::IntAlu, RC::Pred, RC::Int,  RC::Int,  false, false, false, false, false},
    {"cmpne",     OC::IntAlu, RC::Pred, RC::Int,  RC::Int,  false, false, false, false, false},
    {"cmplt",     OC::IntAlu, RC::Pred, RC::Int,  RC::Int,  false, false, false, false, false},
    {"cmple",     OC::IntAlu, RC::Pred, RC::Int,  RC::Int,  false, false, false, false, false},
    {"cmpltu",    OC::IntAlu, RC::Pred, RC::Int,  RC::Int,  false, false, false, false, false},
    {"cmpieq",    OC::IntAlu, RC::Pred, RC::Int,  RC::None, true,  false, false, false, false},
    {"cmpilt",    OC::IntAlu, RC::Pred, RC::Int,  RC::None, true,  false, false, false, false},

    {"fadd",      OC::FpAdd,  RC::Fp,   RC::Fp,   RC::Fp,   false, false, false, false, false},
    {"fsub",      OC::FpAdd,  RC::Fp,   RC::Fp,   RC::Fp,   false, false, false, false, false},
    {"fmul",      OC::FpMul,  RC::Fp,   RC::Fp,   RC::Fp,   false, false, false, false, false},
    {"fdiv",      OC::FpDiv,  RC::Fp,   RC::Fp,   RC::Fp,   false, false, false, false, false},
    {"fcmplt",    OC::FpAdd,  RC::Pred, RC::Fp,   RC::Fp,   false, false, false, false, false},
    {"fcmpeq",    OC::FpAdd,  RC::Pred, RC::Fp,   RC::Fp,   false, false, false, false, false},
    {"i2f",       OC::FpCvt,  RC::Fp,   RC::Int,  RC::None, false, false, false, false, false},
    {"f2i",       OC::FpCvt,  RC::Int,  RC::Fp,   RC::None, false, false, false, false, false},

    {"ld8",       OC::Load,   RC::Int,  RC::Int,  RC::None, true,  false, true,  false, false},
    {"st8",       OC::Store,  RC::None, RC::Int,  RC::Int,  true,  false, true,  false, false},
    {"fld",       OC::Load,   RC::Fp,   RC::Int,  RC::None, true,  false, true,  false, false},
    {"fst",       OC::Store,  RC::None, RC::Int,  RC::Fp,   true,  false, true,  false, false},

    {"br",        OC::Branch, RC::None, RC::None, RC::None, true,  false, false, true,  false},
    {"bri",       OC::Branch, RC::None, RC::Int,  RC::None, false, false, false, true,  false},
    {"call",      OC::Branch, RC::Int,  RC::None, RC::None, true,  false, false, true,  false},
    {"ret",       OC::Branch, RC::None, RC::Int,  RC::None, false, false, false, true,  false},
}};

void
invalidOpcode(std::size_t idx)
{
    SER_PANIC("opInfo: invalid opcode {}", idx);
}

} // namespace detail

bool
opcodeValid(std::uint8_t raw)
{
    return raw < numOpcodes;
}

bool
opcodeFromMnemonic(std::string_view mnemonic, Opcode &op)
{
    for (int i = 0; i < numOpcodes; ++i) {
        if (detail::opTable[static_cast<std::size_t>(i)].mnemonic ==
            mnemonic) {
            op = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

} // namespace isa
} // namespace ser
