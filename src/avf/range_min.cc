#include "range_min.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace ser
{
namespace avf
{

RangeMin::RangeMin(std::vector<std::int32_t> values, std::size_t block)
    : _values(std::move(values)), _block(block ? block : 1)
{
    std::size_t nblocks = (_values.size() + _block - 1) / _block;
    if (nblocks == 0)
        return;
    // Level 0: per-block minima.
    _sparse.emplace_back(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::int32_t m = _values[b * _block];
        std::size_t end =
            std::min(_values.size(), (b + 1) * _block);
        for (std::size_t i = b * _block + 1; i < end; ++i)
            m = std::min(m, _values[i]);
        _sparse[0][b] = m;
    }
    // Doubling levels.
    for (std::size_t len = 2; len <= nblocks; len *= 2) {
        const auto &prev = _sparse.back();
        std::vector<std::int32_t> level(nblocks - len + 1);
        for (std::size_t b = 0; b + len <= nblocks; ++b)
            level[b] = std::min(prev[b], prev[b + len / 2]);
        _sparse.push_back(std::move(level));
    }
}

std::int32_t
RangeMin::min(std::size_t lo, std::size_t hi) const
{
    if (lo > hi || hi >= _values.size())
        SER_PANIC("RangeMin: bad range [{}, {}] of {}", lo, hi,
                  _values.size());
    std::size_t blo = lo / _block;
    std::size_t bhi = hi / _block;
    if (blo == bhi) {
        std::int32_t m = _values[lo];
        for (std::size_t i = lo + 1; i <= hi; ++i)
            m = std::min(m, _values[i]);
        return m;
    }
    // Partial edges.
    std::int32_t m = _values[lo];
    for (std::size_t i = lo + 1; i < (blo + 1) * _block; ++i)
        m = std::min(m, _values[i]);
    for (std::size_t i = bhi * _block; i <= hi; ++i)
        m = std::min(m, _values[i]);
    // Full blocks (blo+1 .. bhi-1) via the sparse table.
    if (blo + 1 <= bhi - 1 && bhi >= 1) {
        std::size_t first = blo + 1;
        std::size_t count = bhi - 1 - first + 1;
        if (count > 0) {
            unsigned level = std::bit_width(count) - 1;
            std::size_t len = std::size_t{1} << level;
            m = std::min(m, _sparse[level][first]);
            m = std::min(m, _sparse[level][bhi - len]);
        }
    }
    return m;
}

} // namespace avf
} // namespace ser
