/**
 * @file
 * FIT / MTTF / MITF arithmetic (paper Sections 2 and 3.2).
 *
 * FIT (failures in time) = failures per 10^9 device-hours; a
 * structure's FIT contribution is (raw FIT/bit) * bits * AVF. MTTF is
 * the reciprocal. MITF (mean instructions to failure), the paper's
 * new metric, is
 *
 *     MITF = IPC * frequency * MTTF
 *          = (frequency / raw error rate) * (IPC / AVF),
 *
 * so at fixed frequency and raw rate, MITF is proportional to
 * IPC / AVF — the quantity Table 1 reports.
 */

#ifndef SER_AVF_MITF_HH
#define SER_AVF_MITF_HH

#include <cstdint>

namespace ser
{
namespace avf
{

/** Hours in a (non-leap) year: 24 * 365. */
constexpr double hoursPerYear = 8760.0;

/** The paper's example: MTBF of one year = 114,155 FIT. */
constexpr double fitPerYearMtbf = 1e9 / hoursPerYear;

/**
 * The raw per-bit soft error rate of the storage technology.
 * The default value (in milliFIT per bit) is representative of the
 * era's SRAM cells; every reported result in this repo is a ratio,
 * so the absolute value only scales the illustrative FIT/MTTF/MITF
 * numbers.
 */
struct ErrorRateModel
{
    /** Neutron-induced component at sea level. */
    double rawMilliFitPerBit = 1.0;

    /** Altitude in km: the paper's Section 2 notes the neutron flux
     * at 1.5 km (Denver) is 3-5x the sea-level flux; the standard
     * exponential atmospheric-attenuation model with a ~1.05 km
     * scale height lands inside that band. */
    double altitudeKm = 0.0;

    /** Alpha-particle (packaging) component, unaffected by
     * altitude, as a fraction of the sea-level neutron rate. */
    double alphaFraction = 0.2;

    /** Neutron-flux multiplier for the configured altitude. */
    double neutronFluxFactor() const;

    double rawFitPerBit() const
    {
        return rawMilliFitPerBit * 1e-3 *
               (neutronFluxFactor() + alphaFraction);
    }
};

/** FIT contribution of a structure: raw rate * bits * AVF. */
double structureFit(const ErrorRateModel &model, std::uint64_t bits,
                    double avf);

/** MTTF in years from a FIT rate. */
double fitToMttfYears(double fit);

/** FIT rate from an MTTF in years. */
double mttfYearsToFit(double mttf_years);

/**
 * MITF = IPC * frequency * MTTF.
 *
 * @param ipc committed instructions per cycle
 * @param frequency_ghz clock frequency in GHz
 * @param mttf_years mean time to failure in years
 * @return mean instructions to failure
 */
double mitf(double ipc, double frequency_ghz, double mttf_years);

/**
 * The MITF ratio between two design points at fixed frequency and
 * raw error rate: (ipc_b / avf_b) / (ipc_a / avf_a). Values above 1
 * mean design b completes more work between errors.
 */
double mitfRatio(double ipc_a, double avf_a, double ipc_b,
                 double avf_b);

} // namespace avf
} // namespace ser

#endif // SER_AVF_MITF_HH
