/**
 * @file
 * Per-PC AVF attribution (observability layer).
 *
 * The run-level AvfResult says *how vulnerable* the instruction queue
 * is; this fold says *which static instructions* are responsible.
 * It re-walks the incarnation records through the exact same
 * classification routine computeAvf() uses (avf::classifyIncarnation)
 * and charges every bit-cycle class to the incarnation's static PC,
 * so the per-PC ACE totals sum *exactly* to AvfResult::ace — no
 * approximation, no rounding drift.
 *
 * On top of the per-PC totals it derives:
 *  - an ACE-share ranking ("AVF hotspots": which handful of static
 *    instructions contribute most of the queue's SDC AVF);
 *  - residency-lifetime histograms (whole residency, pre-read and
 *    post-read phases) summarized as count/mean/p50/p90/p99, using
 *    statistics::Distribution's interpolated percentiles.
 *
 * Results are plain value types (unlike Distribution, which is
 * pinned to its StatGroup) so the harness can move them into run
 * artifacts and serialize them into the JSON manifest.
 */

#ifndef SER_AVF_ATTRIBUTION_HH
#define SER_AVF_ATTRIBUTION_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "cpu/trace.hh"

namespace ser
{
namespace avf
{

/** Count/mean/percentile summary of one residency histogram. */
struct HistogramSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Bit-cycle totals charged to one static instruction. */
struct PcAttribution
{
    std::uint32_t staticIdx = 0;

    std::uint64_t incarnations = 0;  ///< queue residencies
    std::uint64_t committedIncs = 0; ///< residencies that committed
    std::uint64_t residencyCycles = 0;  ///< clipped entry-cycles

    // Bit-cycles, same classes as AvfResult.
    std::uint64_t ace = 0;
    std::uint64_t aceRefined = 0;
    std::uint64_t unAceRead = 0;
    std::uint64_t exAce = 0;
    std::uint64_t squashedUnread = 0;
};

/** Per-PC AVF attribution for one run. */
struct AttributionResult
{
    /** One entry per static PC with at least one residency, sorted
     * by ACE bit-cycles descending (ties by static index, so the
     * order is deterministic). */
    std::vector<PcAttribution> pcs;

    // Run totals (each the exact sum of the per-PC columns, and
    // totalAce == AvfResult::ace for the same trace).
    std::uint64_t totalAce = 0;
    std::uint64_t totalUnAceRead = 0;
    std::uint64_t totalExAce = 0;
    std::uint64_t totalSquashedUnread = 0;
    std::uint64_t totalResidencyCycles = 0;
    std::uint64_t totalIncarnations = 0;

    /** Residency-lifetime histograms, in cycles per incarnation. */
    HistogramSummary lifetime;  ///< enqueue -> evict
    HistogramSummary preRead;   ///< enqueue -> issue (issued only)
    HistogramSummary postRead;  ///< issue -> evict (Ex-ACE phase)

    /** This PC's share of the run's ACE bit-cycles, in [0, 1]. */
    double aceShare(const PcAttribution &pc) const
    {
        return totalAce ? static_cast<double>(pc.ace) /
                              static_cast<double>(totalAce)
                        : 0.0;
    }
};

/** Fold a run's trace + deadness labels into per-PC attribution. */
AttributionResult attributeAvf(const cpu::SimTrace &trace,
                               const DeadnessResult &deadness);

/**
 * Print the top-N AVF hotspot table: rank, PC, disassembly, ACE
 * bit-cycles, share of the run's ACE total and cumulative share.
 * The program must be the one the trace ran.
 */
void printHotspots(std::ostream &os, const AttributionResult &attr,
                   const isa::Program &program, std::size_t topn);

/** The same table as CSV (one header line, then one row per PC). */
void writeHotspotCsv(std::ostream &os, const AttributionResult &attr,
                     const isa::Program &program, std::size_t topn);

} // namespace avf
} // namespace ser

#endif // SER_AVF_ATTRIBUTION_HH
