#include "mitf.hh"

#include <cmath>
#include <limits>

namespace ser
{
namespace avf
{

double
ErrorRateModel::neutronFluxFactor() const
{
    return std::exp(altitudeKm / 1.05);
}

double
structureFit(const ErrorRateModel &model, std::uint64_t bits,
             double avf)
{
    return model.rawFitPerBit() * static_cast<double>(bits) * avf;
}

double
fitToMttfYears(double fit)
{
    if (fit <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1e9 / fit / hoursPerYear;
}

double
mttfYearsToFit(double mttf_years)
{
    if (mttf_years <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1e9 / (mttf_years * hoursPerYear);
}

double
mitf(double ipc, double frequency_ghz, double mttf_years)
{
    double mttf_seconds = mttf_years * hoursPerYear * 3600.0;
    return ipc * frequency_ghz * 1e9 * mttf_seconds;
}

double
mitfRatio(double ipc_a, double avf_a, double ipc_b, double avf_b)
{
    if (avf_b <= 0.0 || ipc_a <= 0.0 || avf_a <= 0.0)
        return std::numeric_limits<double>::infinity();
    return (ipc_b / avf_b) / (ipc_a / avf_a);
}

} // namespace avf
} // namespace ser
