#include "regfile_avf.hh"

#include <array>
#include <sstream>
#include <vector>

#include "isa/isa.hh"
#include "sim/logging.hh"

namespace ser
{
namespace avf
{

namespace
{

/** One register's open value window during the forward walk. */
struct Window
{
    std::uint64_t defCycle = 0;
    std::uint64_t lastReadCycle = 0;
    bool open = false;
    bool read = false;
    bool dead = false;
};

class FileAccum
{
  public:
    FileAccum(std::uint64_t regs, std::uint64_t bits)
    {
        result.regs = regs;
        result.bitsPerReg = bits;
        windows.assign(regs, Window{});
    }

    void
    def(std::size_t reg, std::uint64_t cycle, bool dead)
    {
        close(reg, cycle);
        Window &w = windows[reg];
        w.open = true;
        w.defCycle = cycle;
        w.lastReadCycle = cycle;
        w.read = false;
        w.dead = dead;
    }

    void
    read(std::size_t reg, std::uint64_t cycle)
    {
        Window &w = windows[reg];
        if (!w.open)
            return;  // reading architectural init state
        w.read = true;
        if (cycle > w.lastReadCycle)
            w.lastReadCycle = cycle;
    }

    void
    close(std::size_t reg, std::uint64_t cycle)
    {
        Window &w = windows[reg];
        if (!w.open)
            return;
        std::uint64_t end = std::max(cycle, w.defCycle);
        std::uint64_t bits = result.bitsPerReg;
        if (w.dead || !w.read) {
            // Dead values (or values never read before overwrite):
            // the whole window is un-ACE — and is exactly what the
            // pi-per-register bit proves false.
            result.deadValue += (end - w.defCycle) * bits;
        } else {
            std::uint64_t last =
                std::min(std::max(w.lastReadCycle, w.defCycle), end);
            result.ace += (last - w.defCycle) * bits;
            result.exAce += (end - last) * bits;
        }
        w.open = false;
    }

    void
    finish(std::uint64_t end_cycle, std::uint64_t window_cycles)
    {
        for (std::size_t r = 0; r < windows.size(); ++r)
            close(r, end_cycle);
        result.totalBitCycles =
            result.regs * result.bitsPerReg * window_cycles;
        std::uint64_t used =
            result.ace + result.exAce + result.deadValue;
        result.unwritten =
            used > result.totalBitCycles
                ? 0
                : result.totalBitCycles - used;
    }

    RegFileAvf result;

  private:
    std::vector<Window> windows;
};

} // namespace

RegFileAvfResult
computeRegFileAvf(const cpu::SimTrace &trace,
                  const DeadnessResult &deadness)
{
    if (!trace.program)
        SER_PANIC("computeRegFileAvf: trace has no program");
    const isa::Program &program = *trace.program;

    // Commit cycle of each oracle-order instruction, from its
    // committed incarnation.
    std::vector<std::uint32_t> commit_cycle(trace.commits.size(), 0);
    for (const auto &inc : trace.incarnations) {
        if ((inc.flags & cpu::incCommitted) &&
            inc.oracleSeq != cpu::noSeq32 &&
            inc.oracleSeq < commit_cycle.size())
            commit_cycle[inc.oracleSeq] = inc.evictCycle;
    }

    FileAccum int_file(isa::numIntRegs, 64);
    FileAccum fp_file(isa::numFpRegs, 64);
    FileAccum pred_file(isa::numPredRegs, 1);

    auto file_for = [&](isa::RegClass rc) -> FileAccum * {
        switch (rc) {
          case isa::RegClass::Int: return &int_file;
          case isa::RegClass::Fp: return &fp_file;
          case isa::RegClass::Pred: return &pred_file;
          case isa::RegClass::None: return nullptr;
        }
        return nullptr;
    };

    for (std::size_t i = 0; i < trace.commits.size(); ++i) {
        const auto &cr = trace.commits[i];
        const isa::StaticInst &inst = program.inst(cr.staticIdx);
        const isa::OpInfo &oi = inst.info();
        std::uint64_t cycle = commit_cycle[i];

        // Reads first (they consult the previous def).
        if (inst.qp() != 0)
            pred_file.read(inst.qp(), cycle);
        if (cr.qpTrue) {
            if (auto *f = file_for(oi.src1Class))
                f->read(inst.src1(), cycle);
            if (auto *f = file_for(oi.src2Class))
                f->read(inst.src2(), cycle);
            if (inst.hasDst()) {
                if (auto *f = file_for(inst.dstClass())) {
                    bool dead = deadness.isDead(i);
                    f->def(inst.dst(), cycle, dead);
                }
            }
        }
    }

    std::uint64_t window = trace.endCycle - trace.startCycle;
    RegFileAvfResult out;
    int_file.finish(trace.endCycle, window);
    fp_file.finish(trace.endCycle, window);
    pred_file.finish(trace.endCycle, window);
    out.intFile = int_file.result;
    out.fpFile = fp_file.result;
    out.predFile = pred_file.result;
    return out;
}

std::string
RegFileAvfResult::summary() const
{
    std::ostringstream os;
    auto line = [&](const char *name, const RegFileAvf &f) {
        os << name << ": SDC AVF " << f.sdcAvf() * 100
           << "%, ex-ACE " << f.frac(f.exAce) * 100
           << "%, dead-value (pi-reg removable) "
           << f.falseDueAvf() * 100 << "%, unwritten "
           << f.frac(f.unwritten) * 100 << "%\n";
    };
    line("int  file", intFile);
    line("fp   file", fpFile);
    line("pred file", predFile);
    return os.str();
}

} // namespace avf
} // namespace ser
