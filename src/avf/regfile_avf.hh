/**
 * @file
 * Register-file AVF analysis — the extension the paper's conclusion
 * points at: "Once these mechanisms are in place, they can also
 * reduce the AVF of other structures, such as the register file."
 *
 * Applies the same ACE methodology to the architectural register
 * files: a register's bits are ACE from a (live) def's writeback to
 * its last read, Ex-ACE from that last read until the overwrite, and
 * un-ACE for the whole lifetime of a dynamically dead value. The
 * un-ACE (dead-value) windows are exactly what the pi-bit-per-
 * register mechanism of Section 4.3.3 proves false on a parity-
 * protected register file, so the analysis also reports the false
 * DUE AVF that mechanism would remove.
 *
 * Timing comes from the committed stream: a value is charged from
 * its producer's commit cycle to its consumers' commit cycles (a
 * writeback-to-read approximation of register-file residency).
 */

#ifndef SER_AVF_REGFILE_AVF_HH
#define SER_AVF_REGFILE_AVF_HH

#include <cstdint>
#include <string>

#include "avf/deadness.hh"
#include "cpu/trace.hh"

namespace ser
{
namespace avf
{

/** AVF accounting for one register file. */
struct RegFileAvf
{
    std::uint64_t regs = 0;
    std::uint64_t bitsPerReg = 64;
    std::uint64_t totalBitCycles = 0;

    std::uint64_t ace = 0;        ///< live value, before last read
    std::uint64_t exAce = 0;      ///< after the last read
    std::uint64_t deadValue = 0;  ///< value of a dead def (un-ACE)
    std::uint64_t unwritten = 0;  ///< never defined in the window

    double frac(std::uint64_t x) const
    {
        return totalBitCycles ? static_cast<double>(x) /
                                    static_cast<double>(
                                        totalBitCycles)
                              : 0.0;
    }

    /** SDC AVF of the unprotected file. */
    double sdcAvf() const { return frac(ace); }

    /** False DUE AVF of a parity-protected file that signals on
     * every read of a bad-parity register: dead values that do get
     * read... dead-by-definition values are read only by dead
     * consumers or not at all — with signal-on-read parity the
     * read ones signal. We charge the whole dead window, the
     * conservative bound the pi-per-register bit removes. */
    double falseDueAvf() const { return frac(deadValue); }
};

/** The three architectural files. */
struct RegFileAvfResult
{
    RegFileAvf intFile;
    RegFileAvf fpFile;
    RegFileAvf predFile;

    std::string summary() const;
};

/** Fold the committed stream into register-file AVFs. */
RegFileAvfResult computeRegFileAvf(const cpu::SimTrace &trace,
                                   const DeadnessResult &deadness);

} // namespace avf
} // namespace ser

#endif // SER_AVF_REGFILE_AVF_HH
