/**
 * @file
 * Dynamically-dead instruction analysis (paper Section 4.1).
 *
 * Classifies every committed instruction as live or dynamically dead,
 * by a backward pass over the committed stream:
 *
 *  - FDD (first-level dynamically dead): the instruction's result is
 *    never read by any other instruction — the destination register
 *    is overwritten before any read (or never accessed again, when
 *    the trace ends at a halt), or the stored memory word is
 *    overwritten before any load.
 *  - TDD (transitively dynamically dead): every reader of the result
 *    is itself dynamically dead.
 *
 * Dead instructions are further split by whether they are tracked via
 * a register or via memory, and register FDDs are tagged with whether
 * their death is established by a procedure return (the defining
 * frame is exited before the overwrite) — the category the paper's
 * Figure 3 separates out.
 *
 * Conservative (ACE-style) choices, documented in DESIGN.md:
 *  - qualifying-predicate reads always count as live uses (we do not
 *    extend transitivity through predication);
 *  - control transfers and output instructions are always live;
 *  - when the trace is truncated (no halt), defs with no future
 *    access are treated as live;
 *  - misaligned memory accesses are treated as live.
 */

#ifndef SER_AVF_DEADNESS_HH
#define SER_AVF_DEADNESS_HH

#include <cstdint>
#include <vector>

#include "cpu/trace.hh"
#include "isa/program.hh"

namespace ser
{
namespace avf
{

/** Liveness class of one committed instruction. */
enum class DeadKind : std::uint8_t
{
    Live,    ///< affects program output (or assumed to, conservatively)
    FddReg,  ///< register result never read
    TddReg,  ///< register result read only by dead instructions
    FddMem,  ///< stored word never loaded before overwrite
    TddMem,  ///< stored word loaded only by dead instructions
};

const char *deadKindName(DeadKind kind);

/** No overwrite in the trace (dead-at-end defs). */
constexpr std::uint32_t noOverwrite = ~0u;

/** Per-commit-index classification. */
struct DeadnessResult
{
    std::vector<DeadKind> kind;

    /** For dead register defs: distance (in committed instructions)
     * to the overwriting write, for PET-buffer coverage; noOverwrite
     * if the def simply dies at program end. Same for dead stores
     * (distance to the overwriting store). */
    std::vector<std::uint32_t> overwriteDist;

    /** FDD-via-register defs whose death crosses a procedure return
     * (the defining frame is exited before the overwrite). */
    std::vector<bool> returnFdd;

    // Aggregate counts over qpTrue, committed instructions.
    std::uint64_t numInsts = 0;      ///< all committed (incl nullified)
    std::uint64_t numDefs = 0;       ///< register-writing + stores
    std::uint64_t numFddReg = 0;
    std::uint64_t numTddReg = 0;
    std::uint64_t numFddMem = 0;
    std::uint64_t numTddMem = 0;
    std::uint64_t numReturnFdd = 0;  ///< subset of numFddReg

    bool isDead(std::size_t i) const
    {
        return kind[i] != DeadKind::Live;
    }

    std::uint64_t numDead() const
    {
        return numFddReg + numTddReg + numFddMem + numTddMem;
    }

    /** Fraction of committed instructions that are dynamically dead
     * (the paper reports ~20% on average). */
    double deadFraction() const
    {
        return numInsts
                   ? static_cast<double>(numDead()) /
                         static_cast<double>(numInsts)
                   : 0.0;
    }
};

/** Run the backward deadness analysis over a trace. */
DeadnessResult analyzeDeadness(const cpu::SimTrace &trace);

} // namespace avf
} // namespace ser

#endif // SER_AVF_DEADNESS_HH
