#include "deadness.hh"

#include <algorithm>
#include <vector>

#include "avf/range_min.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"

namespace ser
{
namespace avf
{

const char *
deadKindName(DeadKind kind)
{
    switch (kind) {
      case DeadKind::Live: return "live";
      case DeadKind::FddReg: return "fdd_reg";
      case DeadKind::TddReg: return "tdd_reg";
      case DeadKind::FddMem: return "fdd_mem";
      case DeadKind::TddMem: return "tdd_mem";
    }
    return "?";
}

namespace
{

/** Backward-pass accumulator for one register or memory word: what
 * the *future* (already processed) does with the value defined by
 * the next write we encounter walking backward. */
struct FutureUse
{
    std::uint32_t nextWrite = noOverwrite;
    bool hasReader = false;
    bool allReadersDead = true;
    /** Some dead reader funnels the value toward memory, so the
     * deadness is only establishable with memory tracking. */
    bool viaMemory = false;
};

/**
 * Open-addressing map from 8-aligned word address to FutureUse for
 * the backward pass. The pass is the hot loop of analyzeDeadness and
 * std::unordered_map's per-node allocation and pointer chasing
 * dominated it; this table is two flat arrays with tombstone-free
 * linear probing (the pass never erases), a power-of-two capacity,
 * and growth at 0.7 load. Every key is a word address (a multiple of
 * 8 — misaligned accesses are split onto their two covering words
 * before lookup), so the all-ones sentinel can never collide with a
 * real key. Iteration order never matters: the map is only ever
 * probed point-wise, which is what makes the DeadnessResult
 * bit-identical to the unordered_map version.
 */
class MemState
{
  public:
    /** Reserve for the expected number of distinct touched words.
     * One word per four commits is generous for the suite
     * surrogates; the table grows if a trace beats it. */
    explicit MemState(std::size_t commits)
    {
        std::size_t want = commits / 4 + 16;
        // Clamp the reservation (the table still grows on demand) so
        // a pathological maxInsts hint cannot balloon the arrays.
        want = std::min<std::size_t>(want, std::size_t{1} << 22);
        std::size_t cap = 64;
        while (cap < want * 2)
            cap <<= 1;
        _keys.assign(cap, emptyKey);
        _vals.assign(cap, FutureUse{});
        _mask = cap - 1;
    }

    FutureUse &
    operator[](std::uint64_t word)
    {
        std::size_t i = probe(word);
        if (_keys[i] != word) {
            if ((_size + 1) * 10 > (_mask + 1) * 7) {
                grow();
                i = probe(word);
            }
            _keys[i] = word;
            ++_size;
        }
        return _vals[i];
    }

  private:
    static constexpr std::uint64_t emptyKey = ~std::uint64_t{0};

    /** Slot holding 'word', or the empty slot where it belongs. */
    std::size_t
    probe(std::uint64_t word) const
    {
        // Finalizer-style mix: word addresses share their low zero
        // bits and cluster by stack/heap region, so a plain mask
        // would probe long runs.
        std::uint64_t h = word;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        std::size_t i = static_cast<std::size_t>(h) & _mask;
        while (_keys[i] != word && _keys[i] != emptyKey)
            i = (i + 1) & _mask;
        return i;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> old_keys = std::move(_keys);
        std::vector<FutureUse> old_vals = std::move(_vals);
        std::size_t cap = (_mask + 1) * 2;
        _keys.assign(cap, emptyKey);
        _vals.assign(cap, FutureUse{});
        _mask = cap - 1;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == emptyKey)
                continue;
            std::size_t j = probe(old_keys[i]);
            _keys[j] = old_keys[i];
            _vals[j] = old_vals[i];
        }
    }

    std::vector<std::uint64_t> _keys;
    std::vector<FutureUse> _vals;
    std::size_t _mask = 0;
    std::size_t _size = 0;
};

bool
hardwiredInt(std::uint8_t reg)
{
    return reg == 0;
}

bool
hardwiredFp(std::uint8_t reg)
{
    return reg <= 1;
}

bool
hardwiredPred(std::uint8_t reg)
{
    return reg == 0;
}

} // namespace

DeadnessResult
analyzeDeadness(const cpu::SimTrace &trace)
{
    SER_PROF_SCOPE("deadness_scan");
    static prof::Counter scanned(
        "deadness.commits_scanned",
        "Committed instructions classified by the deadness "
        "backward pass.");

    const isa::Program &program = *trace.program;
    const auto &commits = trace.commits;
    const std::size_t n = commits.size();
    scanned.add(n);

    DeadnessResult result;
    result.kind.assign(n, DeadKind::Live);
    result.overwriteDist.assign(n, noOverwrite);
    result.returnFdd.assign(n, false);
    result.numInsts = n;

    // Forward pass: call depth after each committed instruction.
    std::vector<std::int32_t> depth(n, 0);
    {
        std::int32_t d = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const auto &rec = commits[i];
            const isa::StaticInst &inst = program.inst(rec.staticIdx);
            if (rec.qpTrue) {
                if (inst.isCall())
                    ++d;
                else if (inst.isReturn())
                    --d;
            }
            depth[i] = d;
        }
    }
    RangeMin depth_min(depth);

    std::vector<FutureUse> int_state(isa::numIntRegs);
    std::vector<FutureUse> fp_state(isa::numFpRegs);
    std::vector<FutureUse> pred_state(isa::numPredRegs);
    MemState mem_state(trace.commits.size());

    const bool complete = trace.programHalted;

    // Decide deadness of the def described by 'st', defined at index
    // i; returns Live when conservatism demands it.
    auto decide = [&](const FutureUse &st, std::size_t i, bool is_mem,
                      std::uint32_t &dist) -> DeadKind {
        bool bounded = st.nextWrite != noOverwrite || complete;
        if (!st.hasReader) {
            if (!bounded)
                return DeadKind::Live;  // a reader may follow the trace
            dist = st.nextWrite == noOverwrite
                       ? noOverwrite
                       : st.nextWrite - static_cast<std::uint32_t>(i);
            return is_mem ? DeadKind::FddMem : DeadKind::FddReg;
        }
        if (st.allReadersDead && bounded) {
            dist = st.nextWrite == noOverwrite
                       ? noOverwrite
                       : st.nextWrite - static_cast<std::uint32_t>(i);
            // A register def whose dead chain passes through memory
            // is "tracked via memory": only the pi-on-memory level
            // can prove it dead (Section 4.3.3).
            if (is_mem || st.viaMemory)
                return DeadKind::TddMem;
            return DeadKind::TddReg;
        }
        return DeadKind::Live;
    };

    // Does the defining frame exit between def i and overwrite j?
    auto crosses_return = [&](std::size_t i,
                              std::uint32_t next_write) -> bool {
        std::size_t j = next_write == noOverwrite
                            ? n - 1
                            : static_cast<std::size_t>(next_write);
        if (i + 1 > j)
            return false;
        return depth_min.min(i + 1, j) < depth[i];
    };

    for (std::size_t idx = n; idx-- > 0;) {
        const auto &rec = commits[idx];
        const isa::StaticInst &inst = program.inst(rec.staticIdx);
        const isa::OpInfo &oi = inst.info();

        DeadKind kind = DeadKind::Live;

        if (rec.qpTrue) {
            // --- the def (register destination or stored word) ---
            bool always_live = oi.isOutput || inst.isBranch() ||
                               inst.isHalt() || oi.isNeutral;
            if (inst.hasDst()) {
                FutureUse *st = nullptr;
                bool hardwired = false;
                switch (inst.dstClass()) {
                  case isa::RegClass::Int:
                    st = &int_state[inst.dst()];
                    hardwired = hardwiredInt(inst.dst());
                    break;
                  case isa::RegClass::Fp:
                    st = &fp_state[inst.dst()];
                    hardwired = hardwiredFp(inst.dst());
                    break;
                  case isa::RegClass::Pred:
                    st = &pred_state[inst.dst()];
                    hardwired = hardwiredPred(inst.dst());
                    break;
                  case isa::RegClass::None:
                    break;
                }
                ++result.numDefs;
                std::uint32_t dist = noOverwrite;
                if (hardwired) {
                    // Writes to hardwired registers are discarded by
                    // the hardware: trivially first-level dead.
                    if (!always_live) {
                        kind = DeadKind::FddReg;
                        dist = 1;
                    }
                } else if (!always_live) {
                    kind = decide(*st, idx, false, dist);
                    if (kind == DeadKind::FddReg &&
                        crosses_return(idx, st->nextWrite)) {
                        result.returnFdd[idx] = true;
                        ++result.numReturnFdd;
                    }
                }
                if (!hardwired) {
                    st->nextWrite = static_cast<std::uint32_t>(idx);
                    st->hasReader = false;
                    st->allReadersDead = true;
                    st->viaMemory = false;
                }
                result.overwriteDist[idx] = dist;
            } else if (inst.isStore()) {
                ++result.numDefs;
                std::uint32_t dist = noOverwrite;
                if (rec.memAddr % 8 != 0) {
                    // Misaligned: partial overwrite; stay
                    // conservative on both touched words.
                    for (std::uint64_t w : {rec.memAddr / 8 * 8,
                                            rec.memAddr / 8 * 8 + 8}) {
                        FutureUse &ms = mem_state[w];
                        ms.hasReader = true;
                        ms.allReadersDead = false;
                    }
                } else {
                    FutureUse &ms = mem_state[rec.memAddr];
                    kind = decide(ms, idx, true, dist);
                    ms.nextWrite = static_cast<std::uint32_t>(idx);
                    ms.hasReader = false;
                    ms.allReadersDead = true;
                    ms.viaMemory = false;
                    result.overwriteDist[idx] = dist;
                }
            }
        }

        result.kind[idx] = kind;
        switch (kind) {
          case DeadKind::FddReg: ++result.numFddReg; break;
          case DeadKind::TddReg: ++result.numTddReg; break;
          case DeadKind::FddMem: ++result.numFddMem; break;
          case DeadKind::TddMem: ++result.numTddMem; break;
          case DeadKind::Live: break;
        }
        const bool dead_now = kind != DeadKind::Live;

        // --- the reads (attributed to older defs) ---
        // The qualifying predicate is read even by nullified
        // instructions, and qp reads are conservatively live uses.
        if (inst.qp() != 0 && !hardwiredPred(inst.qp())) {
            FutureUse &st = pred_state[inst.qp()];
            st.hasReader = true;
            st.allReadersDead = false;
        }
        if (rec.qpTrue) {
            // A use is "dead" (propagates transitivity) when the
            // reading instruction is itself dead or neutral. Two
            // exceptions: the address register of a store is always
            // a live use — corrupting it would clobber live memory —
            // and branch/output readers are live by construction
            // (dead_now is false for them).
            const bool dead_use = dead_now || oi.isNeutral;
            // A read by a dead store (or by anything itself dead via
            // memory) taints the producing def as via-memory.
            const bool mem_taint =
                dead_use && (kind == DeadKind::FddMem ||
                             kind == DeadKind::TddMem);
            auto record_read = [&](isa::RegClass rc, std::uint8_t reg,
                                   bool is_dead_use) {
                switch (rc) {
                  case isa::RegClass::Int:
                    if (!hardwiredInt(reg)) {
                        int_state[reg].hasReader = true;
                        int_state[reg].allReadersDead &= is_dead_use;
                        int_state[reg].viaMemory |= mem_taint;
                    }
                    break;
                  case isa::RegClass::Fp:
                    if (!hardwiredFp(reg)) {
                        fp_state[reg].hasReader = true;
                        fp_state[reg].allReadersDead &= is_dead_use;
                        fp_state[reg].viaMemory |= mem_taint;
                    }
                    break;
                  case isa::RegClass::Pred:
                    if (!hardwiredPred(reg)) {
                        pred_state[reg].hasReader = true;
                        pred_state[reg].allReadersDead &= is_dead_use;
                        pred_state[reg].viaMemory |= mem_taint;
                    }
                    break;
                  case isa::RegClass::None:
                    break;
                }
            };
            record_read(oi.src1Class, inst.src1(),
                        dead_use && !inst.isStore());
            record_read(oi.src2Class, inst.src2(), dead_use);

            if (inst.isLoad()) {
                if (rec.memAddr % 8 != 0) {
                    for (std::uint64_t w :
                         {rec.memAddr / 8 * 8,
                          rec.memAddr / 8 * 8 + 8}) {
                        FutureUse &ms = mem_state[w];
                        ms.hasReader = true;
                        ms.allReadersDead = false;
                    }
                } else {
                    FutureUse &ms = mem_state[rec.memAddr];
                    ms.hasReader = true;
                    ms.allReadersDead &= dead_now;
                }
            }
        }
    }

    return result;
}

} // namespace avf
} // namespace ser
