/**
 * @file
 * Per-bit AVF accounting for the instruction queue (paper Section 2).
 *
 * Folds the per-incarnation queue residencies recorded by the timing
 * model together with the deadness classification into bit-cycle
 * counts per ACE class, and derives from them:
 *
 *  - SDC AVF of the unprotected queue (= ACE bit-cycles / total);
 *  - DUE AVF of a parity-protected queue that signals on detection
 *    (= true DUE + false DUE, where true DUE equals the unprotected
 *    SDC AVF and false DUE comes from un-ACE bits that get read);
 *  - the un-ACE breakdown by source (wrong-path, predicated-false,
 *    neutral, FDD/TDD via registers/memory) that drives the paper's
 *    Figure 2 coverage analysis.
 *
 * Field-sensitive rules (Section 4.1, plus refinements documented in
 * DESIGN.md):
 *  - dynamically dead register defs: destination-specifier bits are
 *    ACE, everything else un-ACE;
 *  - dynamically dead stores: address bits (base register specifier
 *    and immediate offset) are ACE, everything else un-ACE;
 *  - neutral instructions: opcode bits ACE, everything else un-ACE;
 *  - predicated-false instructions: qualifying-predicate bits ACE,
 *    everything else un-ACE;
 *  - wrong-path instructions: fully un-ACE;
 *  - residencies that are squashed before ever being read are fully
 *    un-ACE and undetectable (the refetch wipes any strike);
 *  - post-last-read residency is Ex-ACE: never read again, so it
 *    contributes to neither SDC nor DUE (except in the
 *    decode-at-retire ablation, where it becomes readable).
 */

#ifndef SER_AVF_AVF_HH
#define SER_AVF_AVF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "avf/deadness.hh"
#include "cpu/trace.hh"

namespace ser
{
namespace avf
{

/** The un-ACE sources the paper's tracking mechanisms cover. */
enum class UnAceSource : std::uint8_t
{
    WrongPath,
    PredFalse,
    Neutral,
    FddReg,
    TddReg,
    FddMem,
    TddMem,
    NumSources
};

constexpr int numUnAceSources =
    static_cast<int>(UnAceSource::NumSources);

const char *unAceSourceName(UnAceSource src);

/** One first-level-dead register def's exposure, for PET coverage. */
struct FddExposure
{
    std::uint64_t bitCycles;      ///< read un-ACE bit-cycles
    std::uint32_t overwriteDist;  ///< commits until the overwrite
};

/**
 * Per-epoch ACE accounting: the window's bit-cycle classes binned
 * onto the same epoch grid the runtime IntervalSampler uses (anchored
 * at the window start), so vulnerability-vs-time lines up with the
 * IPC/occupancy time series. An incarnation residency spanning an
 * epoch boundary contributes to each epoch in proportion to the
 * cycles it spends there.
 */
struct EpochAce
{
    std::uint64_t startCycle = 0;
    std::uint64_t cycles = 0;
    std::uint64_t occupied = 0;   ///< valid bit-cycles (any class)
    std::uint64_t ace = 0;        ///< ACE bit-cycles
    std::uint64_t unAceRead = 0;  ///< read un-ACE (false-DUE source)
};

/** Bit-cycle totals and the AVFs derived from them. */
struct AvfResult
{
    // Window geometry.
    std::uint64_t windowCycles = 0;
    std::uint64_t totalBitCycles = 0;  ///< entries * 64 * cycles

    // Occupancy classes.
    std::uint64_t idle = 0;
    std::uint64_t exAce = 0;
    std::uint64_t squashedUnread = 0;  ///< squashed before any read
    std::uint64_t ace = 0;             ///< read, affects output

    /** Field-refined ACE bit-cycles: like 'ace' but counting only
     * the encoding fields a live instruction actually uses (unused
     * source/immediate fields cannot affect the outcome). This is a
     * tighter SDC estimate; the headline sdcAvf() stays with the
     * conservative whole-payload rule so that the false-DUE
     * decomposition still covers 100% of the un-ACE bits. */
    std::uint64_t aceRefined = 0;

    /** Read (parity-detectable) un-ACE bit-cycles by source. */
    std::uint64_t unAceRead[numUnAceSources] = {};
    /** Never-read un-ACE bit-cycles by source (no DUE, no SDC). */
    std::uint64_t unAceUnread[numUnAceSources] = {};

    /** Exposure records of read FDD-via-register bits (PET study). */
    std::vector<FddExposure> fddRegExposures;

    /** Per-epoch accounting; empty unless an epoch size was given. */
    std::vector<EpochAce> epochs;

    // --- derived metrics ---
    double frac(std::uint64_t x) const
    {
        return totalBitCycles
                   ? static_cast<double>(x) /
                         static_cast<double>(totalBitCycles)
                   : 0.0;
    }

    std::uint64_t unAceReadTotal() const;

    /** SDC AVF of the unprotected queue. */
    double sdcAvf() const { return frac(ace); }

    /** Field-refined SDC AVF (tighter; see aceRefined). */
    double sdcAvfRefined() const { return frac(aceRefined); }

    /** True DUE AVF of the parity-protected queue. */
    double trueDueAvf() const { return frac(ace); }

    /** False DUE AVF of the parity-protected queue. */
    double falseDueAvf() const { return frac(unAceReadTotal()); }

    /** Total DUE AVF (signal-on-detect parity). */
    double dueAvf() const { return trueDueAvf() + falseDueAvf(); }

    /** False DUE AVF if instructions were re-decoded at retire
     * instead of carrying an anti-pi bit: Ex-ACE time becomes
     * readable (the paper's 33% -> 41% observation). */
    double falseDueAvfDecodeAtRetire() const
    {
        return frac(unAceReadTotal() + exAce);
    }

    /** Fraction of all bit-cycles that are idle (invalid entries). */
    double idleFraction() const { return frac(idle); }
    double exAceFraction() const { return frac(exAce); }

    /** Valid-but-un-ACE fraction (the paper's "valid un-ACE"). */
    double validUnAceFraction() const
    {
        return frac(unAceReadTotal()) + frac(squashedUnread) +
               unreadUnAceFraction();
    }
    double unreadUnAceFraction() const;

    /** Human-readable summary block. */
    std::string summary() const;
};

/**
 * Window-clipped ACE classification of a single incarnation record.
 *
 * This is the one classification routine shared by computeAvf() and
 * the per-PC attribution fold (avf/attribution.hh): both multiply
 * the same per-cycle bit rates by the same clipped intervals, so the
 * per-PC ACE bit-cycle totals sum *exactly* to the run-level
 * AvfResult::ace (and likewise for every other class).
 */
struct IncarnationClass
{
    /** Pre-read residency [preLo, preHi): enqueue to issue, clipped
     * to the measurement window. For a never-issued incarnation this
     * covers the whole residency (all of it squashed-unread). */
    std::uint64_t preLo = 0;
    std::uint64_t preHi = 0;

    /** Post-read (Ex-ACE) residency [postLo, postHi), clipped.
     * Empty for a never-issued incarnation. */
    std::uint64_t postLo = 0;
    std::uint64_t postHi = 0;

    /** False when squashed before any read: the whole residency is
     * un-ACE and undetectable, and every rate below is zero. */
    bool issued = false;

    // Bits per pre-read resident cycle, by class. The three rates
    // need not cover the payload: Live instructions have no read
    // un-ACE bits, dead ones split between ACE and read un-ACE.
    std::uint64_t aceRate = 0;
    std::uint64_t aceRefinedRate = 0;
    std::uint64_t unAceReadRate = 0;

    /** Source of the read un-ACE bits (valid when unAceReadRate). */
    UnAceSource source = UnAceSource::WrongPath;

    /** FDD-via-register def: callers seeing preCycles() > 0 record a
     * PET exposure of preCycles() * unAceReadRate bit-cycles. */
    bool fddRegExposure = false;
    std::uint32_t overwriteDist = noOverwrite;

    std::uint64_t preCycles() const { return preHi - preLo; }
    std::uint64_t postCycles() const { return postHi - postLo; }
    std::uint64_t residentCycles() const
    {
        return preCycles() + postCycles();
    }
};

/** Classify one incarnation against the trace's window and the
 * deadness labels (see IncarnationClass). */
IncarnationClass classifyIncarnation(const cpu::SimTrace &trace,
                                     const DeadnessResult &deadness,
                                     const cpu::IncarnationRecord &inc);

/**
 * Memoized static-instruction constants of the classification:
 * everything classifyIncarnation derives from the opcode alone — the
 * neutral flag and the field-refined used-bits sum of a Live def.
 * (The per-DeadKind rates are already compile-time constants of the
 * encoding and need no table.) computeAvf() and the per-PC
 * attribution fold build this once per program and hand it to the
 * table overload below, so their per-incarnation loops stop
 * re-deriving OpInfo fields; results are bit-identical.
 */
struct StaticClassInfo
{
    bool isNeutral = false;
    std::uint16_t liveRefinedRate = 0;  ///< used bits of a Live def
};
using StaticClassTable = std::vector<StaticClassInfo>;

/** One StaticClassInfo per static instruction of the program. */
StaticClassTable buildStaticClassTable(const isa::Program &program);

/** classifyIncarnation with the per-program memo table. */
IncarnationClass classifyIncarnation(const cpu::SimTrace &trace,
                                     const DeadnessResult &deadness,
                                     const cpu::IncarnationRecord &inc,
                                     const StaticClassTable &table);

/**
 * Fold a run's trace + deadness labels into AVF accounting.
 *
 * When epoch_cycles is nonzero, the result additionally carries
 * per-epoch occupied/ACE/read-un-ACE bit-cycles on an epoch grid of
 * that size anchored at the window start (see EpochAce).
 */
AvfResult computeAvf(const cpu::SimTrace &trace,
                     const DeadnessResult &deadness,
                     std::uint64_t epoch_cycles = 0);

} // namespace avf
} // namespace ser

#endif // SER_AVF_AVF_HH
