#include "avf.hh"

#include <algorithm>
#include <sstream>

#include "isa/encoding.hh"
#include "sim/logging.hh"

namespace ser
{
namespace avf
{

const char *
unAceSourceName(UnAceSource src)
{
    switch (src) {
      case UnAceSource::WrongPath: return "wrong_path";
      case UnAceSource::PredFalse: return "pred_false";
      case UnAceSource::Neutral: return "neutral";
      case UnAceSource::FddReg: return "fdd_reg";
      case UnAceSource::TddReg: return "tdd_reg";
      case UnAceSource::FddMem: return "fdd_mem";
      case UnAceSource::TddMem: return "tdd_mem";
      case UnAceSource::NumSources: break;
    }
    return "?";
}

std::uint64_t
AvfResult::unAceReadTotal() const
{
    std::uint64_t total = 0;
    for (int i = 0; i < numUnAceSources; ++i)
        total += unAceRead[i];
    return total;
}

double
AvfResult::unreadUnAceFraction() const
{
    std::uint64_t total = 0;
    for (int i = 0; i < numUnAceSources; ++i)
        total += unAceUnread[i];
    return frac(total);
}

std::string
AvfResult::summary() const
{
    std::ostringstream os;
    os << "window cycles      " << windowCycles << "\n";
    os << "idle               " << idleFraction() * 100 << "%\n";
    os << "ex-ACE             " << exAceFraction() * 100 << "%\n";
    os << "ACE (SDC AVF)      " << sdcAvf() * 100 << "%\n";
    os << "  field-refined    " << sdcAvfRefined() * 100 << "%\n";
    os << "valid un-ACE       " << validUnAceFraction() * 100
       << "%\n";
    os << "DUE AVF            " << dueAvf() * 100 << "%\n";
    os << "  true DUE AVF     " << trueDueAvf() * 100 << "%\n";
    os << "  false DUE AVF    " << falseDueAvf() * 100 << "%\n";
    for (int i = 0; i < numUnAceSources; ++i) {
        os << "    " << unAceSourceName(static_cast<UnAceSource>(i))
           << " " << frac(unAceRead[i]) * 100 << "%\n";
    }
    return os.str();
}

namespace
{

constexpr std::uint64_t payloadBits = isa::encoding::payloadBits;

/** Clip [lo, hi) to the window; returns the clipped interval. */
struct Interval
{
    std::uint64_t lo;
    std::uint64_t hi;

    std::uint64_t length() const { return hi - lo; }
};

Interval
clip(std::uint64_t lo, std::uint64_t hi, std::uint64_t wlo,
     std::uint64_t whi)
{
    lo = std::max(lo, wlo);
    hi = std::min(hi, whi);
    if (hi < lo)
        hi = lo;
    return {lo, hi};
}

} // namespace

AvfResult
computeAvf(const cpu::SimTrace &trace, const DeadnessResult &deadness,
           std::uint64_t epoch_cycles)
{
    AvfResult r;
    const std::uint64_t wlo = trace.startCycle;
    const std::uint64_t whi = trace.endCycle;
    r.windowCycles = whi - wlo;
    r.totalBitCycles =
        static_cast<std::uint64_t>(trace.iqEntries) * payloadBits *
        r.windowCycles;

    if (epoch_cycles && r.windowCycles) {
        std::uint64_t n =
            (r.windowCycles + epoch_cycles - 1) / epoch_cycles;
        r.epochs.resize(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            r.epochs[i].startCycle = wlo + i * epoch_cycles;
            r.epochs[i].cycles =
                std::min(epoch_cycles, whi - r.epochs[i].startCycle);
        }
    }

    // Spread an interval's per-cycle bit rate across the epochs it
    // overlaps (no-op when epoch binning is off).
    auto spread = [&](const Interval &iv,
                      std::uint64_t bits_per_cycle,
                      std::uint64_t EpochAce::*field) {
        if (r.epochs.empty() || !bits_per_cycle || iv.hi <= iv.lo)
            return;
        std::size_t first =
            static_cast<std::size_t>((iv.lo - wlo) / epoch_cycles);
        for (std::size_t e = first; e < r.epochs.size(); ++e) {
            EpochAce &ep = r.epochs[e];
            if (ep.startCycle >= iv.hi)
                break;
            std::uint64_t ov =
                std::min(iv.hi, ep.startCycle + ep.cycles) -
                std::max(iv.lo, ep.startCycle);
            ep.*field += ov * bits_per_cycle;
        }
    };

    using namespace isa::encoding;

    std::uint64_t occupied = 0;

    for (const auto &inc : trace.incarnations) {
        const std::uint64_t enq = inc.enqueueCycle;
        const std::uint64_t evict = inc.evictCycle;
        const bool issued = inc.issueCycle != cpu::noCycle32;

        if (!issued) {
            // Squashed before any read: a strike here is wiped by
            // the refetch — fully un-ACE and undetectable.
            Interval iv = clip(enq, evict, wlo, whi);
            r.squashedUnread += iv.length() * payloadBits;
            occupied += iv.length() * payloadBits;
            spread(iv, payloadBits, &EpochAce::occupied);
            continue;
        }

        const std::uint64_t issue = inc.issueCycle;
        Interval pre_iv = clip(enq, issue, wlo, whi);
        Interval post_iv = clip(issue, evict, wlo, whi);
        std::uint64_t pre = pre_iv.length();
        std::uint64_t post = post_iv.length();
        occupied += (pre + post) * payloadBits;
        r.exAce += post * payloadBits;
        spread(pre_iv, payloadBits, &EpochAce::occupied);
        spread(post_iv, payloadBits, &EpochAce::occupied);
        if (pre == 0)
            continue;

        // Classify the pre-read residency per field. ace_rate /
        // un_rate are the ACE and read-un-ACE bits per resident
        // cycle, for the epoch fold.
        std::uint64_t ace_rate = 0;
        std::uint64_t un_rate = 0;

        if (inc.flags & cpu::incWrongPath) {
            un_rate = payloadBits;
            r.unAceRead[static_cast<int>(UnAceSource::WrongPath)] +=
                pre * payloadBits;
        } else {
            const isa::StaticInst &inst =
                trace.program->inst(inc.staticIdx);
            const isa::OpInfo &oi = inst.info();

            if (oi.isNeutral) {
                // Only the opcode bits could turn this into
                // something that matters.
                ace_rate = opcodeBits;
                un_rate = payloadBits - opcodeBits;
                r.ace += pre * opcodeBits;
                r.aceRefined += pre * opcodeBits;
                r.unAceRead[static_cast<int>(
                    UnAceSource::Neutral)] += pre * un_rate;
            } else if (inc.flags & cpu::incPredFalse) {
                // Only the qualifying-predicate bits could
                // un-nullify it.
                ace_rate = qpBits;
                un_rate = payloadBits - qpBits;
                r.ace += pre * qpBits;
                r.aceRefined += pre * qpBits;
                r.unAceRead[static_cast<int>(
                    UnAceSource::PredFalse)] += pre * un_rate;
            } else {
                DeadKind kind = DeadKind::Live;
                std::uint32_t overwrite_dist = noOverwrite;
                if (inc.oracleSeq != cpu::noSeq32 &&
                    inc.oracleSeq < deadness.kind.size()) {
                    kind = deadness.kind[inc.oracleSeq];
                    overwrite_dist =
                        deadness.overwriteDist[inc.oracleSeq];
                }

                switch (kind) {
                  case DeadKind::Live: {
                    ace_rate = payloadBits;
                    r.ace += pre * payloadBits;
                    // Refined estimate: only the fields this opcode
                    // uses.
                    const isa::OpInfo &info = oi;
                    std::uint64_t used = qpBits + opcodeBits;
                    if (info.dstClass != isa::RegClass::None)
                        used += dstBits;
                    if (info.src1Class != isa::RegClass::None)
                        used += src1Bits;
                    if (info.src2Class != isa::RegClass::None)
                        used += src2Bits;
                    if (info.usesImm)
                        used += immBits;
                    r.aceRefined += pre * used;
                    break;
                  }
                  case DeadKind::FddReg:
                  case DeadKind::TddReg: {
                    // Destination-specifier bits stay ACE (a strike
                    // there redirects the dead result onto a live
                    // register).
                    ace_rate = dstBits;
                    un_rate = payloadBits - dstBits;
                    std::uint64_t un = pre * un_rate;
                    r.ace += pre * dstBits;
                    r.aceRefined += pre * dstBits;
                    auto src = kind == DeadKind::FddReg
                                   ? UnAceSource::FddReg
                                   : UnAceSource::TddReg;
                    r.unAceRead[static_cast<int>(src)] += un;
                    if (kind == DeadKind::FddReg)
                        r.fddRegExposures.push_back(
                            {un, overwrite_dist});
                    break;
                  }
                  case DeadKind::FddMem:
                  case DeadKind::TddMem: {
                    // Address bits (base specifier + offset) stay
                    // ACE (a strike there redirects the dead store
                    // onto live memory).
                    ace_rate = src1Bits + immBits;
                    un_rate = payloadBits - ace_rate;
                    std::uint64_t un = pre * un_rate;
                    r.ace += pre * ace_rate;
                    r.aceRefined += pre * ace_rate;
                    auto src = kind == DeadKind::FddMem
                                   ? UnAceSource::FddMem
                                   : UnAceSource::TddMem;
                    r.unAceRead[static_cast<int>(src)] += un;
                    break;
                  }
                }
            }
        }

        spread(pre_iv, ace_rate, &EpochAce::ace);
        spread(pre_iv, un_rate, &EpochAce::unAceRead);
    }

    if (occupied > r.totalBitCycles)
        SER_PANIC("avf: occupied bit-cycles {} exceed total {}",
                  occupied, r.totalBitCycles);
    r.idle = r.totalBitCycles - occupied;
    return r;
}

} // namespace avf
} // namespace ser
