#include "avf.hh"

#include <algorithm>
#include <sstream>

#include "isa/encoding.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"

namespace ser
{
namespace avf
{

const char *
unAceSourceName(UnAceSource src)
{
    switch (src) {
      case UnAceSource::WrongPath: return "wrong_path";
      case UnAceSource::PredFalse: return "pred_false";
      case UnAceSource::Neutral: return "neutral";
      case UnAceSource::FddReg: return "fdd_reg";
      case UnAceSource::TddReg: return "tdd_reg";
      case UnAceSource::FddMem: return "fdd_mem";
      case UnAceSource::TddMem: return "tdd_mem";
      case UnAceSource::NumSources: break;
    }
    return "?";
}

std::uint64_t
AvfResult::unAceReadTotal() const
{
    std::uint64_t total = 0;
    for (int i = 0; i < numUnAceSources; ++i)
        total += unAceRead[i];
    return total;
}

double
AvfResult::unreadUnAceFraction() const
{
    std::uint64_t total = 0;
    for (int i = 0; i < numUnAceSources; ++i)
        total += unAceUnread[i];
    return frac(total);
}

std::string
AvfResult::summary() const
{
    std::ostringstream os;
    os << "window cycles      " << windowCycles << "\n";
    os << "idle               " << idleFraction() * 100 << "%\n";
    os << "ex-ACE             " << exAceFraction() * 100 << "%\n";
    os << "ACE (SDC AVF)      " << sdcAvf() * 100 << "%\n";
    os << "  field-refined    " << sdcAvfRefined() * 100 << "%\n";
    os << "valid un-ACE       " << validUnAceFraction() * 100
       << "%\n";
    os << "DUE AVF            " << dueAvf() * 100 << "%\n";
    os << "  true DUE AVF     " << trueDueAvf() * 100 << "%\n";
    os << "  false DUE AVF    " << falseDueAvf() * 100 << "%\n";
    for (int i = 0; i < numUnAceSources; ++i) {
        os << "    " << unAceSourceName(static_cast<UnAceSource>(i))
           << " " << frac(unAceRead[i]) * 100 << "%\n";
    }
    return os.str();
}

namespace
{

constexpr std::uint64_t payloadBits = isa::encoding::payloadBits;

/** Clip [lo, hi) to the window; returns the clipped interval. */
struct Interval
{
    std::uint64_t lo;
    std::uint64_t hi;

    std::uint64_t length() const { return hi - lo; }
};

Interval
clip(std::uint64_t lo, std::uint64_t hi, std::uint64_t wlo,
     std::uint64_t whi)
{
    lo = std::max(lo, wlo);
    hi = std::min(hi, whi);
    if (hi < lo)
        hi = lo;
    return {lo, hi};
}

} // namespace

namespace
{

/** Shared body of the two classifyIncarnation overloads: 'entry',
 * when non-null, supplies the memoized opcode-derived constants
 * instead of re-deriving them from OpInfo per incarnation. */
IncarnationClass
classifyImpl(const cpu::SimTrace &trace,
             const DeadnessResult &deadness,
             const cpu::IncarnationRecord &inc,
             const StaticClassInfo *entry)
{
    using namespace isa::encoding;

    IncarnationClass c;
    const std::uint64_t wlo = trace.startCycle;
    const std::uint64_t whi = trace.endCycle;
    const std::uint64_t enq = inc.enqueueCycle;
    const std::uint64_t evict = inc.evictCycle;
    c.issued = inc.issueCycle != cpu::noCycle32;

    if (!c.issued) {
        // Squashed before any read: a strike here is wiped by the
        // refetch — fully un-ACE and undetectable, all rates zero.
        Interval iv = clip(enq, evict, wlo, whi);
        c.preLo = iv.lo;
        c.preHi = iv.hi;
        return c;
    }

    Interval pre_iv = clip(enq, inc.issueCycle, wlo, whi);
    Interval post_iv = clip(inc.issueCycle, evict, wlo, whi);
    c.preLo = pre_iv.lo;
    c.preHi = pre_iv.hi;
    c.postLo = post_iv.lo;
    c.postHi = post_iv.hi;

    if (inc.flags & cpu::incWrongPath) {
        c.unAceReadRate = payloadBits;
        c.source = UnAceSource::WrongPath;
        return c;
    }

    const bool neutral =
        entry ? entry->isNeutral
              : trace.program->inst(inc.staticIdx).info().isNeutral;

    if (neutral) {
        // Only the opcode bits could turn this into something that
        // matters.
        c.aceRate = opcodeBits;
        c.aceRefinedRate = opcodeBits;
        c.unAceReadRate = payloadBits - opcodeBits;
        c.source = UnAceSource::Neutral;
        return c;
    }

    if (inc.flags & cpu::incPredFalse) {
        // Only the qualifying-predicate bits could un-nullify it.
        c.aceRate = qpBits;
        c.aceRefinedRate = qpBits;
        c.unAceReadRate = payloadBits - qpBits;
        c.source = UnAceSource::PredFalse;
        return c;
    }

    DeadKind kind = DeadKind::Live;
    std::uint32_t overwrite_dist = noOverwrite;
    if (inc.oracleSeq != cpu::noSeq32 &&
        inc.oracleSeq < deadness.kind.size()) {
        kind = deadness.kind[inc.oracleSeq];
        overwrite_dist = deadness.overwriteDist[inc.oracleSeq];
    }

    switch (kind) {
      case DeadKind::Live: {
        c.aceRate = payloadBits;
        // Refined estimate: only the fields this opcode uses.
        std::uint64_t used;
        if (entry) {
            used = entry->liveRefinedRate;
        } else {
            const isa::OpInfo &oi =
                trace.program->inst(inc.staticIdx).info();
            used = qpBits + opcodeBits;
            if (oi.dstClass != isa::RegClass::None)
                used += dstBits;
            if (oi.src1Class != isa::RegClass::None)
                used += src1Bits;
            if (oi.src2Class != isa::RegClass::None)
                used += src2Bits;
            if (oi.usesImm)
                used += immBits;
        }
        c.aceRefinedRate = used;
        break;
      }
      case DeadKind::FddReg:
      case DeadKind::TddReg:
        // Destination-specifier bits stay ACE (a strike there
        // redirects the dead result onto a live register).
        c.aceRate = dstBits;
        c.aceRefinedRate = dstBits;
        c.unAceReadRate = payloadBits - dstBits;
        c.source = kind == DeadKind::FddReg ? UnAceSource::FddReg
                                            : UnAceSource::TddReg;
        c.fddRegExposure = kind == DeadKind::FddReg;
        c.overwriteDist = overwrite_dist;
        break;
      case DeadKind::FddMem:
      case DeadKind::TddMem:
        // Address bits (base specifier + offset) stay ACE (a strike
        // there redirects the dead store onto live memory).
        c.aceRate = src1Bits + immBits;
        c.aceRefinedRate = c.aceRate;
        c.unAceReadRate = payloadBits - c.aceRate;
        c.source = kind == DeadKind::FddMem ? UnAceSource::FddMem
                                            : UnAceSource::TddMem;
        break;
    }
    return c;
}

} // namespace

IncarnationClass
classifyIncarnation(const cpu::SimTrace &trace,
                    const DeadnessResult &deadness,
                    const cpu::IncarnationRecord &inc)
{
    return classifyImpl(trace, deadness, inc, nullptr);
}

IncarnationClass
classifyIncarnation(const cpu::SimTrace &trace,
                    const DeadnessResult &deadness,
                    const cpu::IncarnationRecord &inc,
                    const StaticClassTable &table)
{
    return classifyImpl(trace, deadness, inc, &table[inc.staticIdx]);
}

StaticClassTable
buildStaticClassTable(const isa::Program &program)
{
    using namespace isa::encoding;
    StaticClassTable table(program.size());
    for (std::size_t i = 0; i < program.size(); ++i) {
        const isa::OpInfo &oi = program.inst(
            static_cast<std::uint32_t>(i)).info();
        StaticClassInfo &e = table[i];
        e.isNeutral = oi.isNeutral;
        std::uint64_t used = qpBits + opcodeBits;
        if (oi.dstClass != isa::RegClass::None)
            used += dstBits;
        if (oi.src1Class != isa::RegClass::None)
            used += src1Bits;
        if (oi.src2Class != isa::RegClass::None)
            used += src2Bits;
        if (oi.usesImm)
            used += immBits;
        e.liveRefinedRate = static_cast<std::uint16_t>(used);
    }
    return table;
}

AvfResult
computeAvf(const cpu::SimTrace &trace, const DeadnessResult &deadness,
           std::uint64_t epoch_cycles)
{
    SER_PROF_SCOPE("avf_fold");
    static prof::Counter folded(
        "avf.incarnations_folded",
        "Instruction-queue incarnation records folded into "
        "bit-cycle classes.");
    folded.add(trace.incarnations.size());

    AvfResult r;
    const std::uint64_t wlo = trace.startCycle;
    const std::uint64_t whi = trace.endCycle;
    r.windowCycles = whi - wlo;
    r.totalBitCycles =
        static_cast<std::uint64_t>(trace.iqEntries) * payloadBits *
        r.windowCycles;

    if (epoch_cycles && r.windowCycles) {
        std::uint64_t n =
            (r.windowCycles + epoch_cycles - 1) / epoch_cycles;
        r.epochs.resize(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            r.epochs[i].startCycle = wlo + i * epoch_cycles;
            r.epochs[i].cycles =
                std::min(epoch_cycles, whi - r.epochs[i].startCycle);
        }
    }

    // Spread an interval's per-cycle bit rate across the epochs it
    // overlaps (no-op when epoch binning is off).
    auto spread = [&](const Interval &iv,
                      std::uint64_t bits_per_cycle,
                      std::uint64_t EpochAce::*field) {
        if (r.epochs.empty() || !bits_per_cycle || iv.hi <= iv.lo)
            return;
        std::size_t first =
            static_cast<std::size_t>((iv.lo - wlo) / epoch_cycles);
        for (std::size_t e = first; e < r.epochs.size(); ++e) {
            EpochAce &ep = r.epochs[e];
            if (ep.startCycle >= iv.hi)
                break;
            std::uint64_t ov =
                std::min(iv.hi, ep.startCycle + ep.cycles) -
                std::max(iv.lo, ep.startCycle);
            ep.*field += ov * bits_per_cycle;
        }
    };

    std::uint64_t occupied = 0;
    const StaticClassTable table =
        buildStaticClassTable(*trace.program);

    for (const auto &inc : trace.incarnations) {
        IncarnationClass c =
            classifyIncarnation(trace, deadness, inc, table);
        Interval pre_iv{c.preLo, c.preHi};
        Interval post_iv{c.postLo, c.postHi};
        const std::uint64_t pre = c.preCycles();
        const std::uint64_t post = c.postCycles();

        occupied += (pre + post) * payloadBits;
        spread(pre_iv, payloadBits, &EpochAce::occupied);
        spread(post_iv, payloadBits, &EpochAce::occupied);

        if (!c.issued) {
            r.squashedUnread += pre * payloadBits;
            continue;
        }

        r.exAce += post * payloadBits;
        if (pre == 0)
            continue;

        r.ace += pre * c.aceRate;
        r.aceRefined += pre * c.aceRefinedRate;
        if (c.unAceReadRate)
            r.unAceRead[static_cast<int>(c.source)] +=
                pre * c.unAceReadRate;
        if (c.fddRegExposure)
            r.fddRegExposures.push_back(
                {pre * c.unAceReadRate, c.overwriteDist});

        spread(pre_iv, c.aceRate, &EpochAce::ace);
        spread(pre_iv, c.unAceReadRate, &EpochAce::unAceRead);
    }

    if (occupied > r.totalBitCycles)
        SER_PANIC("avf: occupied bit-cycles {} exceed total {}",
                  occupied, r.totalBitCycles);
    r.idle = r.totalBitCycles - occupied;
    return r;
}

} // namespace avf
} // namespace ser
