#include "avf.hh"

#include <algorithm>
#include <array>
#include <cstddef>
#include <sstream>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "isa/encoding.hh"
#include "sim/compiler.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"

namespace ser
{
namespace avf
{

const char *
unAceSourceName(UnAceSource src)
{
    switch (src) {
      case UnAceSource::WrongPath: return "wrong_path";
      case UnAceSource::PredFalse: return "pred_false";
      case UnAceSource::Neutral: return "neutral";
      case UnAceSource::FddReg: return "fdd_reg";
      case UnAceSource::TddReg: return "tdd_reg";
      case UnAceSource::FddMem: return "fdd_mem";
      case UnAceSource::TddMem: return "tdd_mem";
      case UnAceSource::NumSources: break;
    }
    return "?";
}

std::uint64_t
AvfResult::unAceReadTotal() const
{
    std::uint64_t total = 0;
    for (int i = 0; i < numUnAceSources; ++i)
        total += unAceRead[i];
    return total;
}

double
AvfResult::unreadUnAceFraction() const
{
    std::uint64_t total = 0;
    for (int i = 0; i < numUnAceSources; ++i)
        total += unAceUnread[i];
    return frac(total);
}

std::string
AvfResult::summary() const
{
    std::ostringstream os;
    os << "window cycles      " << windowCycles << "\n";
    os << "idle               " << idleFraction() * 100 << "%\n";
    os << "ex-ACE             " << exAceFraction() * 100 << "%\n";
    os << "ACE (SDC AVF)      " << sdcAvf() * 100 << "%\n";
    os << "  field-refined    " << sdcAvfRefined() * 100 << "%\n";
    os << "valid un-ACE       " << validUnAceFraction() * 100
       << "%\n";
    os << "DUE AVF            " << dueAvf() * 100 << "%\n";
    os << "  true DUE AVF     " << trueDueAvf() * 100 << "%\n";
    os << "  false DUE AVF    " << falseDueAvf() * 100 << "%\n";
    for (int i = 0; i < numUnAceSources; ++i) {
        os << "    " << unAceSourceName(static_cast<UnAceSource>(i))
           << " " << frac(unAceRead[i]) * 100 << "%\n";
    }
    return os.str();
}

namespace
{

constexpr std::uint64_t payloadBits = isa::encoding::payloadBits;

/** Clip [lo, hi) to the window; returns the clipped interval. */
struct Interval
{
    std::uint64_t lo;
    std::uint64_t hi;

    std::uint64_t length() const { return hi - lo; }
};

Interval
clip(std::uint64_t lo, std::uint64_t hi, std::uint64_t wlo,
     std::uint64_t whi)
{
    lo = std::max(lo, wlo);
    hi = std::min(hi, whi);
    if (hi < lo)
        hi = lo;
    return {lo, hi};
}

} // namespace

namespace
{

/** Shared body of the two classifyIncarnation overloads: 'entry',
 * when non-null, supplies the memoized opcode-derived constants
 * instead of re-deriving them from OpInfo per incarnation. */
IncarnationClass
classifyImpl(const cpu::SimTrace &trace,
             const DeadnessResult &deadness,
             const cpu::IncarnationRecord &inc,
             const StaticClassInfo *entry)
{
    using namespace isa::encoding;

    IncarnationClass c;
    const std::uint64_t wlo = trace.startCycle;
    const std::uint64_t whi = trace.endCycle;
    const std::uint64_t enq = inc.enqueueCycle;
    const std::uint64_t evict = inc.evictCycle;
    c.issued = inc.issueCycle != cpu::noCycle32;

    if (!c.issued) {
        // Squashed before any read: a strike here is wiped by the
        // refetch — fully un-ACE and undetectable, all rates zero.
        Interval iv = clip(enq, evict, wlo, whi);
        c.preLo = iv.lo;
        c.preHi = iv.hi;
        return c;
    }

    Interval pre_iv = clip(enq, inc.issueCycle, wlo, whi);
    Interval post_iv = clip(inc.issueCycle, evict, wlo, whi);
    c.preLo = pre_iv.lo;
    c.preHi = pre_iv.hi;
    c.postLo = post_iv.lo;
    c.postHi = post_iv.hi;

    if (inc.flags & cpu::incWrongPath) {
        c.unAceReadRate = payloadBits;
        c.source = UnAceSource::WrongPath;
        return c;
    }

    const bool neutral =
        entry ? entry->isNeutral
              : trace.program->inst(inc.staticIdx).info().isNeutral;

    if (neutral) {
        // Only the opcode bits could turn this into something that
        // matters.
        c.aceRate = opcodeBits;
        c.aceRefinedRate = opcodeBits;
        c.unAceReadRate = payloadBits - opcodeBits;
        c.source = UnAceSource::Neutral;
        return c;
    }

    if (inc.flags & cpu::incPredFalse) {
        // Only the qualifying-predicate bits could un-nullify it.
        c.aceRate = qpBits;
        c.aceRefinedRate = qpBits;
        c.unAceReadRate = payloadBits - qpBits;
        c.source = UnAceSource::PredFalse;
        return c;
    }

    DeadKind kind = DeadKind::Live;
    std::uint32_t overwrite_dist = noOverwrite;
    if (inc.oracleSeq != cpu::noSeq32 &&
        inc.oracleSeq < deadness.kind.size()) {
        kind = deadness.kind[inc.oracleSeq];
        overwrite_dist = deadness.overwriteDist[inc.oracleSeq];
    }

    switch (kind) {
      case DeadKind::Live: {
        c.aceRate = payloadBits;
        // Refined estimate: only the fields this opcode uses.
        std::uint64_t used;
        if (entry) {
            used = entry->liveRefinedRate;
        } else {
            const isa::OpInfo &oi =
                trace.program->inst(inc.staticIdx).info();
            used = qpBits + opcodeBits;
            if (oi.dstClass != isa::RegClass::None)
                used += dstBits;
            if (oi.src1Class != isa::RegClass::None)
                used += src1Bits;
            if (oi.src2Class != isa::RegClass::None)
                used += src2Bits;
            if (oi.usesImm)
                used += immBits;
        }
        c.aceRefinedRate = used;
        break;
      }
      case DeadKind::FddReg:
      case DeadKind::TddReg:
        // Destination-specifier bits stay ACE (a strike there
        // redirects the dead result onto a live register).
        c.aceRate = dstBits;
        c.aceRefinedRate = dstBits;
        c.unAceReadRate = payloadBits - dstBits;
        c.source = kind == DeadKind::FddReg ? UnAceSource::FddReg
                                            : UnAceSource::TddReg;
        c.fddRegExposure = kind == DeadKind::FddReg;
        c.overwriteDist = overwrite_dist;
        break;
      case DeadKind::FddMem:
      case DeadKind::TddMem:
        // Address bits (base specifier + offset) stay ACE (a strike
        // there redirects the dead store onto live memory).
        c.aceRate = src1Bits + immBits;
        c.aceRefinedRate = c.aceRate;
        c.unAceReadRate = payloadBits - c.aceRate;
        c.source = kind == DeadKind::FddMem ? UnAceSource::FddMem
                                            : UnAceSource::TddMem;
        break;
    }
    return c;
}

} // namespace

IncarnationClass
classifyIncarnation(const cpu::SimTrace &trace,
                    const DeadnessResult &deadness,
                    const cpu::IncarnationRecord &inc)
{
    return classifyImpl(trace, deadness, inc, nullptr);
}

IncarnationClass
classifyIncarnation(const cpu::SimTrace &trace,
                    const DeadnessResult &deadness,
                    const cpu::IncarnationRecord &inc,
                    const StaticClassTable &table)
{
    return classifyImpl(trace, deadness, inc, &table[inc.staticIdx]);
}

StaticClassTable
buildStaticClassTable(const isa::Program &program)
{
    using namespace isa::encoding;
    StaticClassTable table(program.size());
    for (std::size_t i = 0; i < program.size(); ++i) {
        const isa::OpInfo &oi = program.inst(
            static_cast<std::uint32_t>(i)).info();
        StaticClassInfo &e = table[i];
        e.isNeutral = oi.isNeutral;
        std::uint64_t used = qpBits + opcodeBits;
        if (oi.dstClass != isa::RegClass::None)
            used += dstBits;
        if (oi.src1Class != isa::RegClass::None)
            used += src1Bits;
        if (oi.src2Class != isa::RegClass::None)
            used += src2Bits;
        if (oi.usesImm)
            used += immBits;
        e.liveRefinedRate = static_cast<std::uint16_t>(used);
    }
    return table;
}

namespace
{

/** Branch-free select: cond ? a : b with cond in {0, 1}. The mask
 * form compiles to and/xor on every target, keeping the per-class
 * precedence chain free of data-dependent branches. */
SER_ALWAYS_INLINE std::uint64_t
sel(bool cond, std::uint64_t a, std::uint64_t b)
{
    const std::uint64_t mask = -static_cast<std::uint64_t>(cond);
    return b ^ ((a ^ b) & mask);
}

/**
 * The per-cycle bit rates of every incarnation class, indexed by a
 * compact class code. The codes collapse classifyImpl's decision
 * tree into one table lookup: every rate is a compile-time constant
 * of the encoding except a Live def's refined rate, which pass A
 * patches in from the StaticClassTable. Order matters: entries
 * kLive..kLive+4 line up with DeadKind's Live..TddMem values.
 */
enum ClassCode : unsigned
{
    kSquashed = 0,  ///< never issued: wiped by the refetch
    kWrongPath,
    kNeutral,
    kPredFalse,
    kLive,  ///< + static_cast<unsigned>(DeadKind) for dead defs
    kFddReg,
    kTddReg,
    kFddMem,
    kTddMem,
    kNumClassCodes
};

struct ClassRates
{
    std::uint64_t ace;
    std::uint64_t aceRefined;
    std::uint64_t unAceRead;
    std::uint8_t source;  ///< UnAceSource index (when unAceRead)
};

constexpr ClassRates
classRate(std::uint64_t ace_rate, std::uint64_t refined,
          UnAceSource src)
{
    return {ace_rate, refined, payloadBits - ace_rate,
            static_cast<std::uint8_t>(src)};
}

constexpr std::uint64_t addrBits =
    isa::encoding::src1Bits + isa::encoding::immBits;

constexpr ClassRates classRates[kNumClassCodes] = {
    /* kSquashed  */ {0, 0, 0, 0},
    /* kWrongPath */ {0, 0, payloadBits,
                      static_cast<std::uint8_t>(
                          UnAceSource::WrongPath)},
    /* kNeutral   */ classRate(isa::encoding::opcodeBits,
                               isa::encoding::opcodeBits,
                               UnAceSource::Neutral),
    /* kPredFalse */ classRate(isa::encoding::qpBits,
                               isa::encoding::qpBits,
                               UnAceSource::PredFalse),
    /* kLive      */ {payloadBits, 0 /* per-static, patched */, 0, 0},
    /* kFddReg    */ classRate(isa::encoding::dstBits,
                               isa::encoding::dstBits,
                               UnAceSource::FddReg),
    /* kTddReg    */ classRate(isa::encoding::dstBits,
                               isa::encoding::dstBits,
                               UnAceSource::TddReg),
    /* kFddMem    */ classRate(addrBits, addrBits,
                               UnAceSource::FddMem),
    /* kTddMem    */ classRate(addrBits, addrBits,
                               UnAceSource::TddMem),
};

/** classifyImpl's result reduced to what the hot fold consumes. */
struct FastClass
{
    std::uint64_t pre;      ///< window-clipped pre-read cycles
    std::uint64_t post;     ///< window-clipped post-read cycles
    std::uint64_t refined;  ///< field-refined ACE bits per cycle
    std::uint32_t dist;     ///< overwrite distance (FDD defs)
    unsigned k;             ///< ClassCode
};

/**
 * classifyImpl's decision tree flattened to branch-free selects plus
 * one classRates[] lookup. Data-dependent branches (wrong-path,
 * neutral, issued) mispredict heavily on real traces, so every
 * choice here is a mask select; the avf_reference_fold property test
 * pins the equivalence with classifyIncarnation().
 */
SER_ALWAYS_INLINE FastClass
classifyFast(const cpu::IncarnationRecord &inc, std::uint64_t wlo,
             std::uint64_t whi, const StaticClassInfo *stat,
             const DeadKind *dead, const std::uint32_t *odist,
             std::uint64_t dead_limit)
{
    const bool issued = inc.issueCycle != cpu::noCycle32;

    // Window-clipped pre-read [enqueue, read_end) and post-read
    // [read_end, evict) residencies; a never-read incarnation's
    // whole residency counts as pre.
    const std::uint64_t enq = inc.enqueueCycle;
    const std::uint64_t evict = inc.evictCycle;
    const std::uint64_t read_end = sel(issued, inc.issueCycle, evict);
    const std::uint64_t plo = std::max(enq, wlo);
    const std::uint64_t phi = std::min(read_end, whi);
    const std::uint64_t qlo = std::max(read_end, wlo);
    const std::uint64_t qhi = std::min(evict, whi);

    FastClass c;
    c.pre = phi > plo ? phi - plo : 0;
    c.post = qhi > qlo ? qhi - qlo : 0;

    // Deadness lookup as a clamped unconditional load: out-of-range
    // oracle seqs (wrong-path incarnations) read slot 0 and then
    // select the Live default instead.
    const bool in_range = inc.oracleSeq < dead_limit;
    const std::uint64_t di = sel(in_range, inc.oracleSeq, 0);
    const unsigned kind =
        sel(in_range, static_cast<unsigned>(dead[di]),
            static_cast<unsigned>(DeadKind::Live));
    c.dist = static_cast<std::uint32_t>(
        sel(in_range, odist[di], noOverwrite));

    // Precedence chain, later selects override earlier ones
    // (reverse order of classifyImpl's early returns).
    std::uint64_t k = kLive + kind;
    k = sel(inc.flags & cpu::incPredFalse, kPredFalse, k);
    k = sel(stat[inc.staticIdx].isNeutral, kNeutral, k);
    k = sel(inc.flags & cpu::incWrongPath, kWrongPath, k);
    k = sel(issued, k, kSquashed);
    c.k = static_cast<unsigned>(k);

    c.refined = sel(k == kLive, stat[inc.staticIdx].liveRefinedRate,
                    classRates[k].aceRefined);
    return c;
}

/**
 * Class index from its ingredient bits, precomputed for every
 * combination so the per-incarnation precedence chain (squashed >
 * wrong-path > neutral > pred-false > deadness kind, mirroring
 * classifyImpl's early returns) collapses to one table load.
 * Index layout: flags&3 | neutral<<2 | kind<<3 | issued<<6.
 */
constexpr std::array<std::uint8_t, 128> kTable = [] {
    std::array<std::uint8_t, 128> t{};
    for (unsigned idx = 0; idx < 128; ++idx) {
        const bool wp = idx & 1;
        const bool pf = idx & 2;
        const bool neutral = idx & 4;
        const unsigned kind = (idx >> 3) & 7;
        const bool issued = idx & 64;
        unsigned k;
        if (!issued)
            k = kSquashed;
        else if (wp)
            k = kWrongPath;
        else if (neutral)
            k = kNeutral;
        else if (pf)
            k = kPredFalse;
        else
            k = kLive + (kind <= 4 ? kind : 0);
        t[idx] = static_cast<std::uint8_t>(k);
    }
    return t;
}();

/** Raw column pointers of a trace's incarnation rows, bound once so
 * the fold loops index seven flat streams with no vector-header
 * reloads. */
struct ColumnView
{
    const std::uint32_t *staticIdx;
    const std::uint32_t *oracleSeq;
    const std::uint32_t *enq;
    const std::uint32_t *issue;
    const std::uint32_t *evict;
    const std::uint8_t *flags;

    explicit ColumnView(const cpu::IncarnationColumns &cols)
        : staticIdx(cols.staticIdx.data()),
          oracleSeq(cols.oracleSeq.data()),
          enq(cols.enqueueCycle.data()),
          issue(cols.issueCycle.data()),
          evict(cols.evictCycle.data()), flags(cols.flags.data())
    {
    }

    /** Gather row i for the record-at-a-time classifier (the iqEntry
     * field is irrelevant to classification). */
    cpu::IncarnationRecord row(std::size_t i) const
    {
        return {staticIdx[i], oracleSeq[i], enq[i], issue[i],
                evict[i], 0, flags[i]};
    }
};

/** One accumulator bank of the four-wide unrolled fold. */
struct FoldBank
{
    std::uint64_t preSum[kNumClassCodes] = {};
    std::uint64_t post = 0;  ///< sum of post-read cycles
    std::uint64_t ref = 0;   ///< sum of pre * liveRefinedRate
};

/**
 * One incarnation's contribution to one accumulator bank. Force-
 * inlined so the bank stays in registers across the unroll;
 * as a capturing lambda GCC 12 kept this out of line and the call
 * overhead dominated the fold.
 *
 * The overwhelmingly common case — a residency fully inside the
 * measurement window — needs no interval clipping: pre and post are
 * two subtractions. Window-straddling records (warmup prefix, run
 * tail) fall back to the branch-free clipped classifier; they arrive
 * in bursts at the window edges, so the guard predicts near-
 * perfectly. When `Whole` is set the caller has proven no record can
 * straddle (wlo == 0, and every evict cycle is at most the trace's
 * drain cycle whi), so the guard compiles out entirely.
 */
template <bool Whole>
SER_ALWAYS_INLINE void
foldOne(const ColumnView &v, std::size_t i, std::uint64_t wlo,
        std::uint64_t whi, const StaticClassInfo *stat,
        const DeadKind *dead, const std::uint32_t *odist,
        std::uint64_t dead_limit, FoldBank &bank,
        std::vector<FddExposure> &exposures)
{
    std::uint64_t pre, post, k;
    std::uint64_t live_ref = 0;
    std::uint64_t di = 0;
    const std::uint32_t enq = v.enq[i];
    const std::uint32_t issue = v.issue[i];
    const std::uint32_t evict = v.evict[i];
    const std::uint32_t fl = v.flags[i];
    if (Whole || SER_LIKELY(enq >= wlo && evict <= whi)) {
        const bool issued = issue != cpu::noCycle32;
        const std::uint32_t read_end = issued ? issue : evict;
        pre = read_end - enq;
        post = evict - read_end;
        if (fl & cpu::incWrongPath) {
            // Wrong-path residencies arrive in fetch bursts, so this
            // branch predicts; neither the deadness columns nor the
            // static table matter for them (all their rates are 0).
            k = sel(issued, kWrongPath, kSquashed);
        } else {
            const std::uint32_t seq = v.oracleSeq[i];
            const std::uint32_t sidx = v.staticIdx[i];
            unsigned kind = static_cast<unsigned>(DeadKind::Live);
            if (SER_LIKELY(seq < dead_limit)) {
                di = seq;
                kind = static_cast<unsigned>(dead[di]);
            }
            const unsigned idx =
                (fl & 3u) |
                (static_cast<unsigned>(stat[sidx].isNeutral) << 2) |
                (kind << 3) | (static_cast<unsigned>(issued) << 6);
            k = kTable[idx];
            live_ref = stat[sidx].liveRefinedRate;
        }
    } else {
        const cpu::IncarnationRecord inc = v.row(i);
        FastClass c = classifyFast(inc, wlo, whi, stat, dead, odist,
                                   dead_limit);
        pre = c.pre;
        post = c.post;
        k = c.k;
        live_ref = stat[inc.staticIdx].liveRefinedRate;
        di = sel(inc.oracleSeq < dead_limit, inc.oracleSeq, 0);
    }
    bank.post += post;
    // Only the Live class has a per-static refined rate; every other
    // class contribution is rate[k] * preSum[k], folded in once at
    // the end (classRates[kLive].aceRefined is 0 by construction).
    bank.ref += sel(k == kLive, pre, 0) * live_ref;
    bank.preSum[k] += pre;
    if (SER_UNLIKELY(k == kFddReg)) {
        if (pre)
            exposures.push_back(
                {pre * classRates[kFddReg].unAceRead, odist[di]});
    }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define SER_AVF_SIMD 1

/**
 * The fold's batch kernel: eight incarnations per step over the SoA
 * columns. Compiled for AVX2 via the target attribute (the build
 * stays baseline x86-64; computeAvf dispatches here only when the
 * host supports it), bit-identical to the scalar fold — every
 * operation is the same u32/u64 integer arithmetic, just eight lanes
 * at a time, and u64 addition is associative.
 *
 * Per step: the five u32 columns are five contiguous vector loads
 * (the SoA payoff — the AoS layout needed a strided deinterleave or
 * per-field scalar loads), flags widen from one 8-byte load, and the
 * two data-dependent lookups (deadness kind by oracle seq, static
 * info by static index) become gathers. classifyFast's precedence
 * chain turns into four blends. Only preSum[k] — eight read-modify-
 * writes to data-dependent slots — and the rare FDD exposure pushes
 * stay scalar, AVX2 having no scatter.
 *
 * Kind bytes are gathered as 32-bit words at a clamped base
 * (min(seq, limit - 4), so the 4-byte read never passes the end of
 * the table) and the addressed byte is shifted out per lane; the
 * caller guarantees dead_limit >= 4. Lanes with seq >= limit force
 * kind to Live, matching the scalar clamp.
 *
 * Window-straddling records need interval clipping; any step whose
 * straddle mask is non-zero falls back to the scalar fold for all
 * eight lanes (they cluster at the window edges, so the branch
 * predicts), which also keeps the exposure push order exactly the
 * record order.
 */
__attribute__((target("avx2"))) void
foldAvx2(const ColumnView &v, std::size_t total, std::uint64_t wlo,
         std::uint64_t whi, const StaticClassInfo *stat,
         const DeadKind *dead, const std::uint32_t *odist,
         std::uint64_t dead_limit, bool whole, FoldBank *banks,
         std::vector<FddExposure> &exposures)
{
    const __m256i sign = _mm256_set1_epi32(
        static_cast<int>(0x80000000u));
    const __m256i noCyc = _mm256_set1_epi32(-1);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i two = _mm256_set1_epi32(2);
    const __m256i byteMask = _mm256_set1_epi32(0xff);
    const __m256i kLiveV = _mm256_set1_epi32(kLive);
    const __m256i kFddRegV = _mm256_set1_epi32(kFddReg);
    const __m256i kPredFalseV = _mm256_set1_epi32(kPredFalse);
    const __m256i kNeutralV = _mm256_set1_epi32(kNeutral);
    const __m256i kWrongPathV = _mm256_set1_epi32(kWrongPath);
    const __m256i limitU = _mm256_xor_si256(
        _mm256_set1_epi32(
            static_cast<int>(static_cast<std::uint32_t>(dead_limit))),
        sign);
    const __m256i clampBase = _mm256_set1_epi32(static_cast<int>(
        static_cast<std::uint32_t>(dead_limit - 4)));
    const __m256i wloU = _mm256_xor_si256(
        _mm256_set1_epi32(
            static_cast<int>(static_cast<std::uint32_t>(wlo))),
        sign);
    const __m256i whiU = _mm256_xor_si256(
        _mm256_set1_epi32(
            static_cast<int>(static_cast<std::uint32_t>(whi))),
        sign);

    __m256i accPost = _mm256_setzero_si256();
    __m256i accRef = _mm256_setzero_si256();
    alignas(32) std::uint32_t karr[8], parr[8], sarr[8];

    std::size_t i = 0;
    for (; i + 8 <= total; i += 8) {
        const __m256i enq = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v.enq + i));
        const __m256i evi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v.evict + i));
        if (!whole) {
            // enq < wlo || evict > whi, unsigned via sign-bit flip.
            const __m256i strad = _mm256_or_si256(
                _mm256_cmpgt_epi32(wloU,
                                   _mm256_xor_si256(enq, sign)),
                _mm256_cmpgt_epi32(_mm256_xor_si256(evi, sign),
                                   whiU));
            if (SER_UNLIKELY(!_mm256_testz_si256(strad, strad))) {
                for (unsigned j = 0; j < 8; ++j)
                    foldOne<false>(v, i + j, wlo, whi, stat, dead,
                                   odist, dead_limit, banks[j & 3],
                                   exposures);
                continue;
            }
        }
        const __m256i iss = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v.issue + i));
        const __m256i seq = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v.oracleSeq + i));
        const __m256i sidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v.staticIdx + i));
        const __m256i fl = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(v.flags + i)));

        const __m256i notIss = _mm256_cmpeq_epi32(iss, noCyc);
        const __m256i readEnd = _mm256_blendv_epi8(iss, evi, notIss);
        const __m256i pre = _mm256_sub_epi32(readEnd, enq);
        const __m256i post = _mm256_sub_epi32(evi, readEnd);

        // Deadness kind: clamped 4-byte gather, per-lane byte select.
        const __m256i inr = _mm256_cmpgt_epi32(
            limitU, _mm256_xor_si256(seq, sign));
        const __m256i base = _mm256_min_epu32(seq, clampBase);
        const __m256i dg = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(dead), base, 1);
        const __m256i sh =
            _mm256_slli_epi32(_mm256_sub_epi32(seq, base), 3);
        const __m256i kind = _mm256_and_si256(
            _mm256_and_si256(_mm256_srlv_epi32(dg, sh), byteMask),
            inr);

        // StaticClassInfo is 4 bytes: isNeutral in the low byte,
        // liveRefinedRate in the top half-word.
        const __m256i sg = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(stat), sidx, 4);
        const __m256i neutral =
            _mm256_cmpeq_epi32(_mm256_and_si256(sg, one), one);
        const __m256i liveRef = _mm256_srli_epi32(sg, 16);

        // classifyFast's precedence chain as blends, low to high.
        __m256i k = _mm256_add_epi32(kLiveV, kind);
        const __m256i pf =
            _mm256_cmpeq_epi32(_mm256_and_si256(fl, two), two);
        k = _mm256_blendv_epi8(k, kPredFalseV, pf);
        k = _mm256_blendv_epi8(k, kNeutralV, neutral);
        const __m256i wp =
            _mm256_cmpeq_epi32(_mm256_and_si256(fl, one), one);
        k = _mm256_blendv_epi8(k, kWrongPathV, wp);
        k = _mm256_andnot_si256(notIss, k);  // kSquashed == 0

        // post and live-refined sums, widened to u64 lanes.
        accPost = _mm256_add_epi64(
            accPost,
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(post)));
        accPost = _mm256_add_epi64(
            accPost,
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(post, 1)));
        const __m256i liveM = _mm256_cmpeq_epi32(k, kLiveV);
        const __m256i preL = _mm256_and_si256(pre, liveM);
        accRef = _mm256_add_epi64(accRef,
                                  _mm256_mul_epu32(preL, liveRef));
        accRef = _mm256_add_epi64(
            accRef, _mm256_mul_epu32(_mm256_srli_epi64(preL, 32),
                                     _mm256_srli_epi64(liveRef, 32)));

        // The one scatter: eight class-slot accumulations, spread
        // across the banks to break the store-to-load chain.
        _mm256_store_si256(reinterpret_cast<__m256i *>(karr), k);
        _mm256_store_si256(reinterpret_cast<__m256i *>(parr), pre);
        banks[0].preSum[karr[0]] += parr[0];
        banks[1].preSum[karr[1]] += parr[1];
        banks[2].preSum[karr[2]] += parr[2];
        banks[3].preSum[karr[3]] += parr[3];
        banks[0].preSum[karr[4]] += parr[4];
        banks[1].preSum[karr[5]] += parr[5];
        banks[2].preSum[karr[6]] += parr[6];
        banks[3].preSum[karr[7]] += parr[7];

        const __m256i isExp = _mm256_cmpeq_epi32(k, kFddRegV);
        int em = _mm256_movemask_ps(_mm256_castsi256_ps(isExp));
        if (SER_UNLIKELY(em)) {
            _mm256_store_si256(reinterpret_cast<__m256i *>(sarr),
                               seq);
            do {
                const int j = __builtin_ctz(
                    static_cast<unsigned>(em));
                em &= em - 1;
                if (parr[j])
                    exposures.push_back(
                        {static_cast<std::uint64_t>(parr[j]) *
                             classRates[kFddReg].unAceRead,
                         odist[sarr[j]]});
            } while (em);
        }
    }

    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), accPost);
    banks[0].post += lanes[0] + lanes[1] + lanes[2] + lanes[3];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), accRef);
    banks[0].ref += lanes[0] + lanes[1] + lanes[2] + lanes[3];

    for (; i < total; ++i)
        foldOne<false>(v, i, wlo, whi, stat, dead, odist, dead_limit,
                       banks[0], exposures);
}

#endif // x86-64 SIMD fold

} // namespace

AvfResult
computeAvf(const cpu::SimTrace &trace, const DeadnessResult &deadness,
           std::uint64_t epoch_cycles)
{
    SER_PROF_SCOPE("avf_fold");
    static prof::Counter folded(
        "avf.incarnations_folded",
        "Instruction-queue incarnation records folded into "
        "bit-cycle classes.");
    folded.add(trace.incarnations.size());

    AvfResult r;
    const std::uint64_t wlo = trace.startCycle;
    const std::uint64_t whi = trace.endCycle;
    r.windowCycles = whi - wlo;
    r.totalBitCycles =
        static_cast<std::uint64_t>(trace.iqEntries) * payloadBits *
        r.windowCycles;

    if (epoch_cycles && r.windowCycles) {
        std::uint64_t n =
            (r.windowCycles + epoch_cycles - 1) / epoch_cycles;
        r.epochs.resize(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            r.epochs[i].startCycle = wlo + i * epoch_cycles;
            r.epochs[i].cycles =
                std::min(epoch_cycles, whi - r.epochs[i].startCycle);
        }
    }

    // Spread an interval's per-cycle bit rate across the epochs it
    // overlaps (no-op when epoch binning is off).
    auto spread = [&](const Interval &iv,
                      std::uint64_t bits_per_cycle,
                      std::uint64_t EpochAce::*field) {
        if (r.epochs.empty() || !bits_per_cycle || iv.hi <= iv.lo)
            return;
        std::size_t first =
            static_cast<std::size_t>((iv.lo - wlo) / epoch_cycles);
        for (std::size_t e = first; e < r.epochs.size(); ++e) {
            EpochAce &ep = r.epochs[e];
            if (ep.startCycle >= iv.hi)
                break;
            std::uint64_t ov =
                std::min(iv.hi, ep.startCycle + ep.cycles) -
                std::max(iv.lo, ep.startCycle);
            ep.*field += ov * bits_per_cycle;
        }
    };

    const StaticClassTable table =
        buildStaticClassTable(*trace.program);

    if (!r.epochs.empty()) {
        // Epoch-binned fold (cold path: only interval-telemetry runs
        // bin): the straightforward per-incarnation walk, unchanged.
        std::uint64_t occupied = 0;
        for (const auto &inc : trace.incarnations) {
            IncarnationClass c =
                classifyIncarnation(trace, deadness, inc, table);
            Interval pre_iv{c.preLo, c.preHi};
            Interval post_iv{c.postLo, c.postHi};
            const std::uint64_t pre = c.preCycles();
            const std::uint64_t post = c.postCycles();

            occupied += (pre + post) * payloadBits;
            spread(pre_iv, payloadBits, &EpochAce::occupied);
            spread(post_iv, payloadBits, &EpochAce::occupied);

            if (!c.issued) {
                r.squashedUnread += pre * payloadBits;
                continue;
            }

            r.exAce += post * payloadBits;
            if (pre == 0)
                continue;

            r.ace += pre * c.aceRate;
            r.aceRefined += pre * c.aceRefinedRate;
            if (c.unAceReadRate)
                r.unAceRead[static_cast<int>(c.source)] +=
                    pre * c.unAceReadRate;
            if (c.fddRegExposure)
                r.fddRegExposures.push_back(
                    {pre * c.unAceReadRate, c.overwriteDist});

            spread(pre_iv, c.aceRate, &EpochAce::ace);
            spread(pre_iv, c.unAceReadRate, &EpochAce::unAceRead);
        }
        if (occupied > r.totalBitCycles)
            SER_PANIC("avf: occupied bit-cycles {} exceed total {}",
                      occupied, r.totalBitCycles);
        r.idle = r.totalBitCycles - occupied;
        return r;
    }

    // Hot fold. Every per-cycle bit rate is a per-class constant
    // (the one exception, a Live def's refined rate, rides along as
    // its own multiply-accumulate), so instead of multiplying rates
    // into every incarnation the loop accumulates per-class resident
    // cycle sums and multiplies the rates in exactly once at the
    // end. u64 multiplication distributes over addition, so the
    // totals are bit-identical to the per-incarnation fold — the
    // avf_reference_fold property test pins this equivalence. The
    // loop is unrolled four-wide with independent accumulator banks
    // to break the store-to-load dependence through preSum[].
    const ColumnView view(trace.incarnations);
    const StaticClassInfo *stat = table.data();
    const std::size_t total = trace.incarnations.size();

    // Deadness columns with a one-entry Live fallback so the kind
    // lookup is an unconditional clamped load instead of a branch.
    static constexpr DeadKind liveKind = DeadKind::Live;
    static constexpr std::uint32_t liveDist = noOverwrite;
    const std::size_t deadSize = deadness.kind.size();
    const DeadKind *dead =
        deadSize ? deadness.kind.data() : &liveKind;
    const std::uint32_t *odist =
        deadSize ? deadness.overwriteDist.data() : &liveDist;
    const std::uint64_t deadLimit = deadSize ? deadSize : 1;

    // FDD-register exposures are pushed from the hot loop; on real
    // traces a few percent of incarnations qualify, so reserving a
    // slice of the total up front keeps the loop free of reallocation
    // copies (the vector still grows if a trace is exposure-heavy).
    r.fddRegExposures.reserve(total / 16 + 64);

    FoldBank banks[4];

    // A warmup-free trace (wlo == 0) cannot contain a window-
    // straddling record — every residency starts at or after cycle 0
    // and evicts by the drain cycle — so the whole-window
    // instantiation drops the per-record clip guard.
    const bool whole = (wlo == 0);

    // The scalar fold, four-wide with independent accumulator banks
    // to break the store-to-load dependence through preSum[].
    auto foldScalar = [&](auto whole_tag) {
        constexpr bool W = decltype(whole_tag)::value;
        std::size_t i = 0;
        const std::size_t quad_end = total & ~std::size_t{3};
        for (; i != quad_end; i += 4) {
            foldOne<W>(view, i + 0, wlo, whi, stat, dead, odist,
                       deadLimit, banks[0], r.fddRegExposures);
            foldOne<W>(view, i + 1, wlo, whi, stat, dead, odist,
                       deadLimit, banks[1], r.fddRegExposures);
            foldOne<W>(view, i + 2, wlo, whi, stat, dead, odist,
                       deadLimit, banks[2], r.fddRegExposures);
            foldOne<W>(view, i + 3, wlo, whi, stat, dead, odist,
                       deadLimit, banks[3], r.fddRegExposures);
        }
        for (; i != total; ++i)
            foldOne<W>(view, i, wlo, whi, stat, dead, odist,
                       deadLimit, banks[0], r.fddRegExposures);
    };

#if SER_AVF_SIMD
    // The batch kernel needs: AVX2, a deadness table wide enough for
    // the clamped kind gather, and window bounds that fit the u32
    // lane compares (cycle columns are u32, so any in-range record
    // does; a wider bound only occurs in synthetic traces).
    if (__builtin_cpu_supports("avx2") && deadLimit >= 4 &&
        wlo <= 0xffffffffull && whi <= 0xffffffffull) {
        foldAvx2(view, total, wlo, whi, stat, dead, odist, deadLimit,
                 whole, banks, r.fddRegExposures);
    } else
#endif
    if (whole)
        foldScalar(std::true_type{});
    else
        foldScalar(std::false_type{});

    // Multiply the per-class rates back in, once per class. Every
    // incarnation lands its pre in exactly one preSum slot, so the
    // occupancy integral is the class total plus the post sum, and
    // the rate products distribute over the class sums — bit-exact
    // against the per-incarnation fold (u64 arithmetic throughout).
    std::uint64_t preTotal = 0;
    for (unsigned k = 0; k < kNumClassCodes; ++k) {
        banks[0].preSum[k] += banks[1].preSum[k] +
                              banks[2].preSum[k] +
                              banks[3].preSum[k];
        preTotal += banks[0].preSum[k];
    }
    const std::uint64_t postTotal = banks[0].post + banks[1].post +
                                    banks[2].post + banks[3].post;
    const std::uint64_t occupied =
        (preTotal + postTotal) * payloadBits;
    r.squashedUnread = banks[0].preSum[kSquashed] * payloadBits;
    r.exAce = postTotal * payloadBits;
    r.aceRefined = banks[0].ref + banks[1].ref + banks[2].ref +
                   banks[3].ref;
    for (unsigned k = kWrongPath; k < kNumClassCodes; ++k) {
        const std::uint64_t pre_k = banks[0].preSum[k];
        r.ace += classRates[k].ace * pre_k;
        r.aceRefined += classRates[k].aceRefined * pre_k;
        r.unAceRead[classRates[k].source] +=
            classRates[k].unAceRead * pre_k;
    }

    if (occupied > r.totalBitCycles)
        SER_PANIC("avf: occupied bit-cycles {} exceed total {}",
                  occupied, r.totalBitCycles);
    r.idle = r.totalBitCycles - occupied;
    return r;
}

} // namespace avf
} // namespace ser
