#include "attribution.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>

#include "isa/encoding.hh"
#include "sim/stats.hh"

namespace ser
{
namespace avf
{

namespace
{

// Residency histograms: cycle-resolution buckets up to 512 cycles;
// longer residencies land in the overflow bin (their percentiles pin
// to the range maximum, which the summary documents by construction).
constexpr double histMax = 512.0;
constexpr double histBucket = 4.0;

HistogramSummary
summarize(const statistics::Distribution &d)
{
    HistogramSummary s;
    s.count = d.count();
    s.mean = d.value();
    s.p50 = d.percentile(50);
    s.p90 = d.percentile(90);
    s.p99 = d.percentile(99);
    return s;
}

} // namespace

AttributionResult
attributeAvf(const cpu::SimTrace &trace,
             const DeadnessResult &deadness)
{
    constexpr std::uint64_t payloadBits =
        isa::encoding::payloadBits;

    AttributionResult r;

    statistics::Distribution lifetime(nullptr, "lifetime",
                                      "residency cycles", 0.0,
                                      histMax, histBucket);
    statistics::Distribution pre_read(nullptr, "pre_read",
                                      "enqueue-to-issue cycles", 0.0,
                                      histMax, histBucket);
    statistics::Distribution post_read(nullptr, "post_read",
                                       "issue-to-evict cycles", 0.0,
                                       histMax, histBucket);

    // staticIdx -> slot in r.pcs. staticIdx is a dense program
    // index, so a direct-index table replaces the std::map this used
    // to rebuild per call; r.pcs keeps first-encounter order until
    // the ACE sort below, exactly as before.
    constexpr std::uint32_t noSlot = ~0u;
    std::vector<std::uint32_t> slot(trace.program->size(), noSlot);

    const StaticClassTable table =
        buildStaticClassTable(*trace.program);
    for (const auto &inc : trace.incarnations) {
        IncarnationClass c =
            classifyIncarnation(trace, deadness, inc, table);
        const std::uint64_t pre = c.preCycles();
        const std::uint64_t post = c.postCycles();
        const std::uint64_t resident = c.residentCycles();
        if (!resident)
            continue;  // outside the measurement window

        if (slot[inc.staticIdx] == noSlot) {
            slot[inc.staticIdx] =
                static_cast<std::uint32_t>(r.pcs.size());
            r.pcs.emplace_back();
            r.pcs.back().staticIdx = inc.staticIdx;
        }
        PcAttribution &pc = r.pcs[slot[inc.staticIdx]];

        ++pc.incarnations;
        if (inc.flags & cpu::incCommitted)
            ++pc.committedIncs;
        pc.residencyCycles += resident;
        lifetime.sample(static_cast<double>(resident));

        if (!c.issued) {
            pc.squashedUnread += pre * payloadBits;
            continue;
        }

        pre_read.sample(static_cast<double>(pre));
        post_read.sample(static_cast<double>(post));
        pc.exAce += post * payloadBits;
        pc.ace += pre * c.aceRate;
        pc.aceRefined += pre * c.aceRefinedRate;
        pc.unAceRead += pre * c.unAceReadRate;
    }

    for (const PcAttribution &pc : r.pcs) {
        r.totalAce += pc.ace;
        r.totalUnAceRead += pc.unAceRead;
        r.totalExAce += pc.exAce;
        r.totalSquashedUnread += pc.squashedUnread;
        r.totalResidencyCycles += pc.residencyCycles;
        r.totalIncarnations += pc.incarnations;
    }

    std::sort(r.pcs.begin(), r.pcs.end(),
              [](const PcAttribution &a, const PcAttribution &b) {
                  if (a.ace != b.ace)
                      return a.ace > b.ace;
                  return a.staticIdx < b.staticIdx;
              });

    r.lifetime = summarize(lifetime);
    r.preRead = summarize(pre_read);
    r.postRead = summarize(post_read);
    return r;
}

void
printHotspots(std::ostream &os, const AttributionResult &attr,
              const isa::Program &program, std::size_t topn)
{
    std::size_t n = std::min(topn, attr.pcs.size());
    os << "AVF hotspots (top " << n << " of " << attr.pcs.size()
       << " PCs by ACE bit-cycles; run ACE total " << attr.totalAce
       << ")\n";
    os << std::setw(4) << "#" << "  " << std::setw(10) << "pc"
       << "  " << std::setw(12) << "ace" << "  " << std::setw(7)
       << "share%" << "  " << std::setw(7) << "cum%" << "  "
       << std::setw(6) << "incs" << "  " << std::setw(8) << "cycles"
       << "  disassembly\n";

    double cum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const PcAttribution &pc = attr.pcs[i];
        double share = attr.aceShare(pc) * 100.0;
        cum += share;
        std::ostringstream addr;
        addr << "0x" << std::hex
             << isa::Program::indexToAddr(pc.staticIdx);
        os << std::setw(4) << i + 1 << "  " << std::setw(10)
           << addr.str() << "  " << std::setw(12) << pc.ace << "  "
           << std::setw(7) << std::fixed << std::setprecision(2)
           << share << "  " << std::setw(7) << cum << "  "
           << std::setw(6) << pc.incarnations << "  " << std::setw(8)
           << pc.residencyCycles << "  "
           << program.inst(pc.staticIdx).toString() << "\n";
        os.unsetf(std::ios::fixed);
        os << std::setprecision(6);
    }
    os << "residency lifetime (cycles): p50 " << attr.lifetime.p50
       << "  p90 " << attr.lifetime.p90 << "  p99 "
       << attr.lifetime.p99 << "  over " << attr.lifetime.count
       << " residencies\n";
}

void
writeHotspotCsv(std::ostream &os, const AttributionResult &attr,
                const isa::Program &program, std::size_t topn)
{
    os << "rank,pc,static_idx,ace_bit_cycles,ace_share,"
          "cum_ace_share,un_ace_read,ex_ace,squashed_unread,"
          "incarnations,committed,residency_cycles,disassembly\n";
    std::size_t n = std::min(topn, attr.pcs.size());
    double cum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const PcAttribution &pc = attr.pcs[i];
        double share = attr.aceShare(pc);
        cum += share;
        os << i + 1 << ",0x" << std::hex
           << isa::Program::indexToAddr(pc.staticIdx) << std::dec
           << "," << pc.staticIdx << "," << pc.ace << "," << share
           << "," << cum << "," << pc.unAceRead << "," << pc.exAce
           << "," << pc.squashedUnread << "," << pc.incarnations
           << "," << pc.committedIncs << "," << pc.residencyCycles
           << ",\"" << program.inst(pc.staticIdx).toString()
           << "\"\n";
    }
}

} // namespace avf
} // namespace ser
