/**
 * @file
 * Block-based range-minimum queries over a fixed array.
 *
 * Used by the deadness analysis to ask "did the call depth drop below
 * d anywhere between a register def and its overwrite" (the paper's
 * Figure 3 return-FDD category). Block decomposition with a sparse
 * table over block minima: O(n) memory, O(block) worst-case query.
 */

#ifndef SER_AVF_RANGE_MIN_HH
#define SER_AVF_RANGE_MIN_HH

#include <cstdint>
#include <vector>

namespace ser
{
namespace avf
{

/** Range-minimum over an immutable i32 array. */
class RangeMin
{
  public:
    explicit RangeMin(std::vector<std::int32_t> values,
                      std::size_t block = 256);

    /** Minimum of values[lo..hi] inclusive; lo <= hi required. */
    std::int32_t min(std::size_t lo, std::size_t hi) const;

    std::size_t size() const { return _values.size(); }
    std::int32_t at(std::size_t i) const { return _values[i]; }

  private:
    std::vector<std::int32_t> _values;
    std::vector<std::vector<std::int32_t>> _sparse;  ///< over blocks
    std::size_t _block;
};

} // namespace avf
} // namespace ser

#endif // SER_AVF_RANGE_MIN_HH
