/**
 * @file
 * Single-bit fault injection and outcome classification.
 *
 * The injector classifies a fault site against a finished timing run:
 * it maps (entry, cycle) to the incarnation that occupied the entry,
 * decides whether the struck bit was ever read afterwards, and — for
 * read payload bits — answers "would the program output have
 * changed" by *functionally re-running the program with that dynamic
 * instruction's encoding XORed at the struck bit* and comparing the
 * output stream against the golden run. This is the statistical
 * fault-injection methodology of the related work (Kim & Somani;
 * Wang et al.) that the paper cites as the alternative to ACE
 * analysis, and it lets the test suite cross-validate the analytical
 * AVF numbers.
 */

#ifndef SER_FAULTS_INJECTOR_HH
#define SER_FAULTS_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "cpu/trace.hh"
#include "faults/fault.hh"
#include "faults/fork_server.hh"
#include "isa/executor.hh"
#include "isa/program.hh"

namespace ser
{
namespace faults
{

/** Maps (entry, cycle) -> incarnation record. */
class ResidencyIndex
{
  public:
    /** No residency occupies the probed (entry, cycle). */
    static constexpr std::int64_t noIncarnation = -1;

    explicit ResidencyIndex(const cpu::SimTrace &trace);

    /** Index (into the trace's incarnation columns) of the
     * incarnation occupying 'entry' at 'cycle', or noIncarnation. */
    std::int64_t find(std::uint16_t entry, std::uint64_t cycle) const;

  private:
    const cpu::SimTrace &_trace;
    /** Per entry, residency row indices sorted by enqueue cycle. */
    std::vector<std::vector<std::uint32_t>> _byEntry;
};

/** Detail of a classified fault. */
struct FaultResult
{
    Outcome outcome;
    /** The incarnation hit, if any (-1 otherwise). */
    std::int64_t incarnationIndex = -1;
    /** Whether a functional re-run was needed. */
    bool reRan = false;
    /** Whether the re-run changed the program output. */
    bool outputChanged = false;
    /** Instructions the re-run executed (suffix-only with a fork
     * server attached; the full dynamic length otherwise). */
    std::uint64_t rerunSteps = 0;
};

/** Classifies faults against one finished run. */
class FaultInjector
{
  public:
    /**
     * @param program the program that was run
     * @param trace the finished timing trace
     * @param golden_output the fault-free program output
     * @param rerun_budget max instructions for a corrupted re-run
     *        (defaults to 2x the golden dynamic length)
     */
    FaultInjector(const isa::Program &program,
                  const cpu::SimTrace &trace,
                  std::vector<std::uint64_t> golden_output,
                  std::uint64_t rerun_budget = 0);

    /** Classify one fault site under the given protection. */
    FaultResult classify(const FaultSite &site,
                         Protection protection) const;

    /**
     * Counterfactual: would corrupting the given bit of the given
     * committed (oracle-order) instruction change the program
     * output? Runs the functional executor with the corruption.
     */
    bool corruptionChangesOutput(std::uint64_t oracle_seq,
                                 int bit) const;

    /** As corruptionChangesOutput, but also reports the re-run's
     * dynamic instruction cost. */
    ForkServer::Verdict rerunWithCorruption(std::uint64_t oracle_seq,
                                            int bit) const;

    /**
     * Serve counterfactual re-runs from checkpoints instead of
     * replaying from the program entry. The fork server must have
     * been built over the same program (its golden output must match
     * the one this injector was constructed with). Not owned.
     */
    void attachForkServer(const ForkServer *fork) { _fork = fork; }

    const ResidencyIndex &residency() const { return _index; }
    std::uint64_t rerunBudget() const { return _rerunBudget; }

  private:
    const isa::Program &_program;
    const cpu::SimTrace &_trace;
    std::vector<std::uint64_t> _golden;
    std::uint64_t _rerunBudget;
    ResidencyIndex _index;
    const ForkServer *_fork = nullptr;
};

} // namespace faults
} // namespace ser

#endif // SER_FAULTS_INJECTOR_HH
