#include "injector.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ser
{
namespace faults
{

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::BenignNoBit: return "benign-no-bit";
      case Outcome::BenignNotRead: return "benign-not-read";
      case Outcome::Corrected: return "corrected";
      case Outcome::BenignNoError: return "benign-no-error";
      case Outcome::Sdc: return "sdc";
      case Outcome::FalseDue: return "false-due";
      case Outcome::TrueDue: return "true-due";
      case Outcome::NumOutcomes: break;
    }
    return "?";
}

const char *
protectionName(Protection protection)
{
    switch (protection) {
      case Protection::None: return "none";
      case Protection::Parity: return "parity";
      case Protection::Ecc: return "ecc";
    }
    return "?";
}

ResidencyIndex::ResidencyIndex(const cpu::SimTrace &trace)
    : _trace(trace), _byEntry(trace.iqEntries)
{
    const auto &incs = trace.incarnations;
    for (std::size_t i = 0; i < incs.size(); ++i) {
        const std::uint16_t entry = incs.iqEntry[i];
        if (entry < _byEntry.size())
            _byEntry[entry].push_back(
                static_cast<std::uint32_t>(i));
    }
    const std::uint32_t *enq = incs.enqueueCycle.data();
    for (auto &vec : _byEntry) {
        std::sort(vec.begin(), vec.end(),
                  [enq](std::uint32_t a, std::uint32_t b) {
                      return enq[a] < enq[b];
                  });
    }
}

std::int64_t
ResidencyIndex::find(std::uint16_t entry, std::uint64_t cycle) const
{
    if (entry >= _byEntry.size())
        return noIncarnation;
    const auto &vec = _byEntry[entry];
    const std::uint32_t *enq = _trace.incarnations.enqueueCycle.data();
    // Last residency with enqueueCycle <= cycle.
    auto it = std::upper_bound(
        vec.begin(), vec.end(), cycle,
        [enq](std::uint64_t c, std::uint32_t i) {
            return c < enq[i];
        });
    if (it == vec.begin())
        return noIncarnation;
    const std::uint32_t idx = *(it - 1);
    return cycle < _trace.incarnations.evictCycle[idx]
               ? static_cast<std::int64_t>(idx)
               : noIncarnation;
}

FaultInjector::FaultInjector(const isa::Program &program,
                             const cpu::SimTrace &trace,
                             std::vector<std::uint64_t> golden_output,
                             std::uint64_t rerun_budget)
    : _program(program), _trace(trace),
      _golden(std::move(golden_output)),
      _rerunBudget(rerun_budget
                       ? rerun_budget
                       : trace.commits.size() * 2 + 10000),
      _index(trace)
{
}

bool
FaultInjector::corruptionChangesOutput(std::uint64_t oracle_seq,
                                       int bit) const
{
    return rerunWithCorruption(oracle_seq, bit).changed;
}

ForkServer::Verdict
FaultInjector::rerunWithCorruption(std::uint64_t oracle_seq,
                                   int bit) const
{
    if (_fork)
        return _fork->corruptEncoding(oracle_seq, 1ULL << bit);
    isa::Executor executor(_program);
    executor.setCorruption(oracle_seq, 1ULL << bit);
    isa::Termination term = executor.run(_rerunBudget);
    if (term == isa::Termination::Trap ||
        term == isa::Termination::MaxSteps)
        return {true, executor.steps()};  // trapped or ran away
    return {executor.state().output() != _golden, executor.steps()};
}

FaultResult
FaultInjector::classify(const FaultSite &site,
                        Protection protection) const
{
    FaultResult result{Outcome::BenignNoBit, -1, false, false};

    const std::int64_t idx = _index.find(site.entry, site.cycle);
    if (idx == ResidencyIndex::noIncarnation)
        return result;  // idle entry: outcome 1

    const cpu::IncarnationRecord rec =
        _trace.incarnations[static_cast<std::size_t>(idx)];
    result.incarnationIndex = idx;
    const bool issued = rec.issueCycle != cpu::noCycle32;
    const bool read_after = issued && site.cycle < rec.issueCycle;
    const bool wrong_path = rec.flags & cpu::incWrongPath;
    const bool committed = rec.flags & cpu::incCommitted;

    if (protection == Protection::Ecc) {
        // SECDED corrects any single-bit upset in the protected
        // block on read (the check bits included): outcome 2.
        result.outcome = read_after ? Outcome::Corrected
                                    : Outcome::BenignNotRead;
        return result;
    }

    if (site.bit == piBit) {
        // A spuriously set pi bit is examined only if the
        // instruction reaches the retire unit on the correct path;
        // there it signals a false error (Section 4.2).
        result.outcome =
            committed ? Outcome::FalseDue : Outcome::BenignNotRead;
        return result;
    }
    if (site.bit == parityBit) {
        if (protection != Protection::Parity) {
            result.outcome = Outcome::BenignNoBit;
        } else if (read_after) {
            // Detected on read; the payload is actually fine.
            result.outcome = Outcome::FalseDue;
        } else {
            result.outcome = Outcome::BenignNotRead;
        }
        return result;
    }
    if (site.bit == validBit) {
        // Losing the valid bit of a correct-path instruction that
        // had yet to issue drops it from the program: SDC. Any
        // other case just frees (or resurrects-to-garbage) an entry
        // whose content no longer matters for the committed stream.
        if (read_after && committed && !wrong_path)
            result.outcome = Outcome::Sdc;
        else
            result.outcome = Outcome::BenignNotRead;
        return result;
    }

    // Payload bit.
    if (!read_after) {
        // Struck after the last read (Ex-ACE) or in a residency
        // that was squashed before issue: the refetch or eviction
        // wipes the strike. Outcome 2.
        result.outcome = Outcome::BenignNotRead;
        return result;
    }
    if (wrong_path) {
        // The corrupted instruction issues but its results never
        // commit.
        result.outcome = protection == Protection::Parity
                             ? Outcome::FalseDue
                             : Outcome::BenignNoError;
        return result;
    }

    result.reRan = true;
    ForkServer::Verdict verdict =
        rerunWithCorruption(rec.oracleSeq, site.bit);
    result.outputChanged = verdict.changed;
    result.rerunSteps = verdict.steps;
    if (protection == Protection::Parity) {
        result.outcome = result.outputChanged ? Outcome::TrueDue
                                              : Outcome::FalseDue;
    } else {
        result.outcome = result.outputChanged
                             ? Outcome::Sdc
                             : Outcome::BenignNoError;
    }
    return result;
}

} // namespace faults
} // namespace ser
