/**
 * @file
 * Fault-site definitions for single-bit upsets in the IQ.
 *
 * A fault site is (physical queue entry, bit, cycle). Bits 0..63 are
 * the instruction payload (see isa/encoding.hh for the field map);
 * the metadata bits model the entry's valid bit, its parity bit, and
 * the pi bit the paper adds — the paper notes that a strike on the
 * pi bit itself is a false DUE event.
 */

#ifndef SER_FAULTS_FAULT_HH
#define SER_FAULTS_FAULT_HH

#include <cstdint>

namespace ser
{
namespace faults
{

/** Bit indices of an instruction-queue entry. */
constexpr int payloadBits = 64;
constexpr int validBit = 64;
constexpr int parityBit = 65;
constexpr int piBit = 66;
constexpr int entryBits = 67;  ///< payload + valid + parity + pi

/** One single-bit upset. */
struct FaultSite
{
    std::uint16_t entry;  ///< physical queue entry
    std::uint8_t bit;     ///< 0..66
    std::uint64_t cycle;  ///< when the strike lands

    bool isPayload() const { return bit < payloadBits; }
};

/** Protection configured on the queue. */
enum class Protection : std::uint8_t
{
    None,    ///< unprotected: strikes can cause SDC
    Parity,  ///< detect-only: strikes on read state become DUE
    Ecc,     ///< detect-and-correct: single-bit strikes are benign
};

/** The paper's Figure 1 outcome taxonomy. */
enum class Outcome : std::uint8_t
{
    BenignNoBit,      ///< 1: fault-free entry state (idle/unread)
    BenignNotRead,    ///< 2a: bit read-protected by squash/eviction
    Corrected,        ///< 2b: bit affected, corrected (ECC)
    BenignNoError,    ///< 3: read, but does not matter (un-ACE)
    Sdc,              ///< 4: silent data corruption
    FalseDue,         ///< 5: detected, but would not have mattered
    TrueDue,          ///< 6: detected, and would have mattered
    NumOutcomes
};

constexpr int numOutcomes = static_cast<int>(Outcome::NumOutcomes);

const char *outcomeName(Outcome outcome);

const char *protectionName(Protection protection);

/** Is the outcome an error the user observes? */
inline bool
isErrorOutcome(Outcome o)
{
    return o == Outcome::Sdc || o == Outcome::FalseDue ||
           o == Outcome::TrueDue;
}

} // namespace faults
} // namespace ser

#endif // SER_FAULTS_FAULT_HH
