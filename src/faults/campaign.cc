#include "campaign.hh"

#include <cmath>
#include <sstream>

namespace ser
{
namespace faults
{

Interval
wilson(std::uint64_t k, std::uint64_t n)
{
    if (n == 0)
        return {0.0, 1.0};
    const double z = 1.959964;  // 95%
    double nn = static_cast<double>(n);
    double p = static_cast<double>(k) / nn;
    double z2 = z * z;
    double denom = 1.0 + z2 / nn;
    double centre = p + z2 / (2.0 * nn);
    double spread =
        z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
    return {(centre - spread) / denom, (centre + spread) / denom};
}

CampaignResult
runCampaign(const FaultInjector &injector, const cpu::SimTrace &trace,
            const CampaignConfig &config)
{
    Rng rng(config.seed);
    CampaignResult result;
    result.samples = config.samples;

    std::uint64_t window = trace.endCycle - trace.startCycle;
    for (std::uint64_t i = 0; i < config.samples; ++i) {
        FaultSite site;
        site.entry = static_cast<std::uint16_t>(
            rng.range(trace.iqEntries));
        site.bit = static_cast<std::uint8_t>(
            rng.range(config.payloadOnly ? payloadBits : entryBits));
        site.cycle = trace.startCycle + rng.range(window);
        FaultResult fr = injector.classify(site, config.protection);
        ++result.counts[static_cast<std::size_t>(fr.outcome)];
    }
    return result;
}

std::string
CampaignResult::summary() const
{
    std::ostringstream os;
    os << "samples " << samples << "\n";
    for (int o = 0; o < numOutcomes; ++o) {
        auto oc = static_cast<Outcome>(o);
        Interval ci = interval(oc);
        os << "  " << outcomeName(oc) << " " << count(oc) << " ("
           << rate(oc) * 100 << "%, 95% CI [" << ci.lo * 100 << ", "
           << ci.hi * 100 << "])\n";
    }
    return os.str();
}

} // namespace faults
} // namespace ser
