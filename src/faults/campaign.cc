#include "campaign.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ser
{
namespace faults
{

Interval
wilson(std::uint64_t k, std::uint64_t n)
{
    if (n == 0)
        return {0.0, 1.0};
    const double z = 1.959964;  // 95%
    double nn = static_cast<double>(n);
    double p = static_cast<double>(k) / nn;
    double z2 = z * z;
    double denom = 1.0 + z2 / nn;
    double centre = p + z2 / (2.0 * nn);
    double spread =
        z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
    Interval ci = {std::max(0.0, (centre - spread) / denom),
                   std::min(1.0, (centre + spread) / denom)};
    // At k=0 the score lower bound is exactly 0 (and at k=n the
    // upper is exactly 1), but centre and spread only cancel up to
    // floating-point rounding, leaving a ~1e-17 residue that makes a
    // zero-count CI fail to cover an exact [0, 0] analytical band.
    if (k == 0)
        ci.lo = 0.0;
    if (k == n)
        ci.hi = 1.0;
    return ci;
}

std::uint64_t
sampleWindowCycle(Rng &rng, std::uint64_t start_cycle,
                  std::uint64_t end_cycle)
{
    std::uint64_t window =
        end_cycle > start_cycle ? end_cycle - start_cycle : 1;
    return start_cycle + rng.range(window);
}

CampaignResult
runCampaign(const FaultInjector &injector, const cpu::SimTrace &trace,
            const CampaignConfig &config)
{
    CampaignResult result;
    result.samples = config.samples;

    for (std::uint64_t i = 0; i < config.samples; ++i) {
        // Counter-based keying: sample i's site depends only on
        // (seed, i), never on how many draws other samples made, so
        // sharding or resuming the campaign cannot change the set of
        // sites drawn.
        Rng rng = Rng::keyed(config.seed, i);
        FaultSite site;
        site.entry = static_cast<std::uint16_t>(
            rng.range(trace.iqEntries));
        site.bit = static_cast<std::uint8_t>(
            rng.range(config.payloadOnly ? payloadBits : entryBits));
        site.cycle =
            sampleWindowCycle(rng, trace.startCycle, trace.endCycle);
        FaultResult fr = injector.classify(site, config.protection);
        ++result.counts[static_cast<std::size_t>(fr.outcome)];
    }
    return result;
}

std::string
CampaignResult::summary() const
{
    std::ostringstream os;
    os << "samples " << samples << "\n";
    for (int o = 0; o < numOutcomes; ++o) {
        auto oc = static_cast<Outcome>(o);
        Interval ci = interval(oc);
        os << "  " << outcomeName(oc) << " " << count(oc) << " ("
           << rate(oc) * 100 << "%, 95% CI [" << ci.lo * 100 << ", "
           << ci.hi * 100 << "])\n";
    }
    return os.str();
}

} // namespace faults
} // namespace ser
