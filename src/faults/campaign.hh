/**
 * @file
 * Monte-Carlo fault-injection campaigns.
 *
 * Samples fault sites uniformly over (entry, bit, cycle) within a
 * run's measurement window, classifies each with the FaultInjector,
 * and tallies the Figure-1 outcome distribution with binomial
 * confidence intervals. Restricting sampling to payload bits makes
 * the SDC rate an unbiased estimator of the analytical SDC AVF (and
 * likewise DUE rate vs DUE AVF), which the tests exploit to
 * cross-validate the ACE analysis.
 */

#ifndef SER_FAULTS_CAMPAIGN_HH
#define SER_FAULTS_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <string>

#include "faults/injector.hh"
#include "sim/rng.hh"

namespace ser
{
namespace faults
{

/** Campaign parameters. */
struct CampaignConfig
{
    std::uint64_t samples = 1000;
    std::uint64_t seed = 0xFA117;
    bool payloadOnly = true;  ///< sample bits 0..63 only
    Protection protection = Protection::Parity;
};

/** A two-sided Wilson confidence interval. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;
};

/** 95% Wilson score interval for k successes out of n. */
Interval wilson(std::uint64_t k, std::uint64_t n);

/**
 * Uniform strike cycle within the half-open measurement window
 * [start_cycle, end_cycle). endCycle is one past the last occupied
 * cycle, so the last occupied cycle (end_cycle - 1) is sampleable
 * and end_cycle itself never is. A degenerate (empty or reversed)
 * window pins every sample to start_cycle instead of feeding
 * Rng::range() a zero bound, which panics.
 */
std::uint64_t sampleWindowCycle(Rng &rng, std::uint64_t start_cycle,
                                std::uint64_t end_cycle);

/** Tallied campaign outcomes. */
struct CampaignResult
{
    std::uint64_t samples = 0;
    std::array<std::uint64_t, numOutcomes> counts{};  ///< by Outcome

    std::uint64_t count(Outcome o) const
    {
        return counts[static_cast<std::size_t>(o)];
    }
    double rate(Outcome o) const
    {
        return samples ? static_cast<double>(count(o)) /
                             static_cast<double>(samples)
                       : 0.0;
    }
    Interval interval(Outcome o) const
    {
        return wilson(count(o), samples);
    }

    /** SDC-rate estimate (== SDC AVF for payload-only sampling). */
    double sdcRate() const { return rate(Outcome::Sdc); }
    /** DUE-rate estimate (true + false). */
    double dueRate() const
    {
        return rate(Outcome::TrueDue) + rate(Outcome::FalseDue);
    }

    std::string summary() const;
};

/** Run a campaign against a finished run. */
CampaignResult runCampaign(const FaultInjector &injector,
                           const cpu::SimTrace &trace,
                           const CampaignConfig &config);

} // namespace faults
} // namespace ser

#endif // SER_FAULTS_CAMPAIGN_HH
