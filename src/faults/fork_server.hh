/**
 * @file
 * Checkpoint/fork service for fault-injection re-runs.
 *
 * A full counterfactual re-run replays the program from the entry
 * point for every injection. The ForkServer instead runs the golden
 * program once, capturing evenly spaced ExecCheckpoints, and serves
 * each injection by forking from the last checkpoint at or before
 * the strike — so an injection pays only its post-strike suffix.
 *
 * A fork terminates early in either direction:
 *
 *  - Convergence: at a (post-strike) checkpoint boundary the forked
 *    state equals the golden checkpoint. The executor is
 *    deterministic, so the suffix is identical to the golden run and
 *    the fault is masked (changed = false).
 *  - Divergence: the forked output stream stops being a prefix of
 *    the golden output. Output is append-only, so the final outputs
 *    must differ (changed = true).
 *
 * The verdict is exactly the full-rerun verdict (the equivalence is
 * property-tested): trap or exceeding the same absolute step budget
 * counts as changed, and a run that halts compares its full output
 * against the golden stream.
 */

#ifndef SER_FAULTS_FORK_SERVER_HH
#define SER_FAULTS_FORK_SERVER_HH

#include <cstdint>
#include <vector>

#include "isa/executor.hh"
#include "isa/program.hh"

namespace ser
{
namespace faults
{

/** Which register file a register strike lands in. */
enum class RegClass : std::uint8_t { Int, Fp, Pred };

class ForkServer
{
  public:
    /** Outcome of one forked counterfactual. */
    struct Verdict
    {
        bool changed = false;     ///< program output would differ
        std::uint64_t steps = 0;  ///< instructions the fork executed
    };

    /**
     * Run the golden program and capture checkpoints.
     *
     * @param program the program to serve forks of
     * @param budget absolute step budget for golden and forked runs
     *        (0 derives one later from the golden length: 2x + 10000)
     * @param checkpoints target number of checkpoints (>= 1); the
     *        actual count stays within [checkpoints, 2*checkpoints)
     *        via stride doubling during the single golden pass
     *
     * Panics if the golden run does not halt within the budget — a
     * campaign against a non-terminating golden run has no baseline
     * output to compare against.
     */
    ForkServer(const isa::Program &program, std::uint64_t budget = 0,
               unsigned checkpoints = 32);

    std::uint64_t goldenSteps() const { return _goldenSteps; }
    const std::vector<std::uint64_t> &goldenOutput() const
    {
        return _goldenOutput;
    }
    std::size_t numCheckpoints() const { return _checkpoints.size(); }

    /**
     * Counterfactual: XOR the encoding of the instruction fetched at
     * dynamic step 'seq' with 'mask'. Thread-safe (const, forks its
     * own executor).
     */
    Verdict corruptEncoding(std::uint64_t seq,
                            std::uint64_t mask) const;

    /**
     * Counterfactual: flip one bit of an architectural register in
     * the state reached after 'step' dynamic instructions, i.e. the
     * next reader of the register sees the flipped value.
     */
    Verdict corruptRegister(std::uint64_t step, RegClass file,
                            int reg, int bit) const;

  private:
    /** Last checkpoint with steps <= step (checkpoint 0 is step 0). */
    const isa::ExecCheckpoint &checkpointAtOrBefore(
        std::uint64_t step) const;

    /**
     * Run a forked executor to termination with convergence /
     * divergence early exits. Convergence is only tested at
     * checkpoints strictly after 'corrupt_after' steps.
     */
    Verdict runFork(isa::Executor &executor,
                    std::uint64_t fork_start,
                    std::uint64_t corrupt_after) const;

    const isa::Program &_program;
    std::uint64_t _budget;
    std::uint64_t _goldenSteps = 0;
    std::vector<std::uint64_t> _goldenOutput;
    std::vector<isa::ExecCheckpoint> _checkpoints;
};

} // namespace faults
} // namespace ser

#endif // SER_FAULTS_FORK_SERVER_HH
