/**
 * @file
 * The statistical fault-injection campaign engine.
 *
 * Promotes the demo-grade runCampaign() loop into a first-class
 * measured-AVF pipeline (ROADMAP item 1):
 *
 *  - Sites are sampled over (structure, entry, bit, cycle) with
 *    counter-based per-sample RNG keying: sample i's site depends
 *    only on (seed, i), so sharding a campaign across worker threads
 *    or resuming it mid-way draws exactly the same sites. Batches
 *    are classified in parallel into an index-addressed record
 *    vector and folded sequentially — byte-identical results at any
 *    job count.
 *
 *  - Classification covers the instruction queue (FaultInjector) and
 *    the three architectural register files, whose windows mirror
 *    the analytical avf/regfile_avf walk exactly.
 *
 *  - Counterfactual re-runs are served by a ForkServer: each
 *    injection forks from the nearest golden checkpoint and pays
 *    only its post-strike suffix (with convergence/divergence early
 *    exits) instead of a full replay.
 *
 *  - Adaptive early stop: after each batch the engine evaluates the
 *    95% Wilson CI half-widths of the per-structure SDC and DUE
 *    rates and stops once all fall below spec.ciTarget.
 *
 *  - Reconciliation: measured SDC/DUE rates are compared against the
 *    analytical AVF fold per outcome class. Each measured rate is
 *    checked against a band [lower, upper]. SDC bands are one-sided
 *    — ACE analysis only ever overestimates (the injection oracle
 *    is exact ground truth), so the IQ band is [0, field-refined
 *    ACE]. The IQ DUE rate under parity is an exact point (pre-read
 *    occupancy is precisely what both sides count, so the CI must
 *    cover it); register-file DUE bands come from the regfile fold
 *    (see DESIGN.md "Measured vs analytical AVF").
 *
 *  - SDC-producing injections (Sdc, and TrueDue under parity) are
 *    attributed to per-PC root causes and joined with the
 *    analytical avf/attribution ACE shares.
 */

#ifndef SER_FAULTS_CAMPAIGN_ENGINE_HH
#define SER_FAULTS_CAMPAIGN_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "cpu/trace.hh"
#include "faults/campaign.hh"
#include "faults/fault.hh"
#include "isa/program.hh"

namespace ser
{
namespace faults
{

/** Structures a campaign can strike. */
enum class Structure : std::uint8_t
{
    Iq,
    IntRegFile,
    FpRegFile,
    PredRegFile,
};

const char *structureName(Structure structure);

// Structure-set bitmask values for CampaignSpec::structures.
constexpr unsigned structIq = 1u << 0;
constexpr unsigned structIntReg = 1u << 1;
constexpr unsigned structFpReg = 1u << 2;
constexpr unsigned structPredReg = 1u << 3;
constexpr unsigned structRegFile =
    structIntReg | structFpReg | structPredReg;

/** Parse a csv like "iq,regfile" / "iq,int,fp,pred" into a mask. */
unsigned parseStructures(const std::string &csv);

/** Render a structure mask back to the canonical csv form. */
std::string structuresToString(unsigned mask);

/**
 * One point of the campaign convergence time-series: the state of
 * every tracked estimator after a batch of samples was folded.
 * Batch boundaries are a pure function of (samples, batchSamples,
 * ciTarget), so the series is byte-identical at any job count and
 * across run-cache hits — it is a campaign *result*, not a
 * telemetry observation.
 */
struct ConvergencePoint
{
    std::uint64_t batch = 0;    ///< 0-based batch index
    std::uint64_t samples = 0;  ///< cumulative samples folded
    /** Max per-structure 95% Wilson CI half-width (SDC and DUE) —
     * the quantity the adaptive early stop compares to ciTarget. */
    double worstHalfWidth = 1.0;

    struct StructurePoint
    {
        Structure structure = Structure::Iq;
        std::uint64_t samples = 0;  ///< landed on this structure
        double sdcRate = 0.0;
        double sdcHalfWidth = 0.0;
        double dueRate = 0.0;
        double dueHalfWidth = 0.0;
    };
    std::vector<StructurePoint> structures;
};

/** Campaign parameters. */
struct CampaignSpec
{
    std::uint64_t samples = 0;  ///< 0 disables the campaign
    std::uint64_t seed = 0xFA117;
    Protection protection = Protection::None;
    bool payloadOnly = true;    ///< IQ bits 0..63 only
    unsigned structures = structIq;
    double ciTarget = 0.0;      ///< CI half-width stop; 0 = run all
    std::uint64_t batchSamples = 4096;
    unsigned checkpoints = 32;
    unsigned rootCauseTopN = 0;

    // Non-semantic knobs: they shard or report work but cannot
    // change a single sampled site or outcome, so they are excluded
    // from cacheKey().
    unsigned jobs = 1;
    std::function<void(std::uint64_t done, std::uint64_t total)>
        onBatch;
    /** Live per-batch convergence hook (the same point that is also
     * recorded in CampaignOutcome::convergence). Fires in fold
     * order on the folding thread; like onBatch it observes the
     * campaign but cannot change it. */
    std::function<void(const ConvergencePoint &)> onConvergence;

    /**
     * Serialization of every outcome-affecting knob, for folding
     * into the RunCache key: two specs that could tally differently
     * must never share a cache entry.
     */
    std::string cacheKey() const;
};

/** Measured-vs-analytical reconciliation for one structure. */
struct StructureCampaign
{
    Structure structure = Structure::Iq;
    std::uint64_t weight = 0;  ///< site-space bits (sampling weight)
    CampaignResult tally;

    Interval sdcCi;  ///< 95% Wilson CI of the measured SDC rate
    Interval dueCi;  ///< 95% Wilson CI of the measured DUE rate

    // Analytical band per class: conservative upper bound and the
    // tightest lower bound the fold provides (see file comment).
    double analyticalSdc = 0.0;
    double analyticalSdcLower = 0.0;
    double analyticalDue = 0.0;
    double analyticalDueLower = 0.0;

    // CI overlaps the analytical band.
    bool sdcCovered = false;
    bool dueCovered = false;

    double sdcRate() const { return tally.sdcRate(); }
    double dueRate() const { return tally.dueRate(); }
};

/** One per-PC root cause of measured SDCs. */
struct RootCause
{
    std::uint32_t staticIdx = 0;
    std::uint64_t sdcInjections = 0;
    double measuredShare = 0.0;       ///< of all SDC injections
    double analyticalAceShare = 0.0;  ///< avf/attribution ACE share
};

/** Everything a finished campaign reports. */
struct CampaignOutcome
{
    // Echo of the semantic knobs (for manifests).
    std::uint64_t samplesRequested = 0;
    std::uint64_t seed = 0;
    Protection protection = Protection::None;
    bool payloadOnly = true;
    double ciTarget = 0.0;
    std::uint64_t batchSamples = 0;

    std::uint64_t samplesRun = 0;
    bool earlyStopped = false;
    /** Max per-structure CI half-width (SDC/DUE) when sampling
     * stopped. */
    double ciHalfWidth = 1.0;

    // Checkpoint/fork economics.
    std::uint64_t reruns = 0;       ///< injections needing a re-run
    std::uint64_t rerunSteps = 0;   ///< total forked instructions
    std::uint64_t goldenSteps = 0;  ///< one full golden replay
    std::uint64_t checkpoints = 0;

    std::vector<StructureCampaign> structures;
    std::vector<RootCause> rootCauses;

    /** Per-batch convergence time-series (one point per folded
     * batch, in fold order) — what `--convergence-out` streams to
     * JSONL and the telemetry server's /campaign endpoint shows
     * live. Deterministic: see ConvergencePoint. */
    std::vector<ConvergencePoint> convergence;

    /** Mean forked cost per re-run as a fraction of a full golden
     * replay — the checkpoint/fork win (< 1 means forking pays). */
    double meanRerunFraction() const
    {
        return reruns && goldenSteps
                   ? static_cast<double>(rerunSteps) /
                         (static_cast<double>(reruns) *
                          static_cast<double>(goldenSteps))
                   : 0.0;
    }

    const StructureCampaign *find(Structure structure) const;

    std::string summary() const;
};

/**
 * Run a campaign against a finished run.
 *
 * @param program the program the trace was produced from
 * @param trace the finished timing trace (defines the window)
 * @param deadness transitive deadness labels for the commit stream
 * @param avf the analytical IQ fold to reconcile against
 * @param spec campaign parameters
 */
CampaignOutcome runCampaignEngine(const isa::Program &program,
                                  const cpu::SimTrace &trace,
                                  const avf::DeadnessResult &deadness,
                                  const avf::AvfResult &avf,
                                  const CampaignSpec &spec);

} // namespace faults
} // namespace ser

#endif // SER_FAULTS_CAMPAIGN_ENGINE_HH
