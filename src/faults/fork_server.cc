#include "fork_server.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ser
{
namespace faults
{

ForkServer::ForkServer(const isa::Program &program,
                       std::uint64_t budget, unsigned checkpoints)
    : _program(program), _budget(budget)
{
    unsigned target = std::max(1u, checkpoints);
    isa::Executor executor(_program);
    _checkpoints.push_back(executor.snapshot());  // step 0

    // Single golden pass with stride doubling: capture every
    // 'stride' steps, and when the capture count reaches twice the
    // target, drop every other checkpoint and double the stride. The
    // final count lands in [target, 2*target) without knowing the
    // run length in advance.
    std::uint64_t stride = 1;
    std::uint64_t limit = _budget ? _budget : (1ULL << 26);
    isa::Termination term = isa::Termination::Running;
    while (executor.steps() < limit) {
        term = executor.step();
        if (term != isa::Termination::Running)
            break;
        if (executor.steps() % stride == 0) {
            _checkpoints.push_back(executor.snapshot());
            if (_checkpoints.size() >= 2 * target) {
                std::vector<isa::ExecCheckpoint> kept;
                kept.reserve(target + 1);
                for (std::size_t i = 0; i < _checkpoints.size();
                     i += 2)
                    kept.push_back(std::move(_checkpoints[i]));
                _checkpoints = std::move(kept);
                stride *= 2;
            }
        }
    }
    if (term != isa::Termination::Halted) {
        SER_PANIC("ForkServer: golden run did not halt within {} "
                  "steps", limit);
    }
    _goldenSteps = executor.steps();
    _goldenOutput = executor.state().output();
    if (!_budget)
        _budget = 2 * _goldenSteps + 10000;
}

const isa::ExecCheckpoint &
ForkServer::checkpointAtOrBefore(std::uint64_t step) const
{
    auto it = std::upper_bound(
        _checkpoints.begin(), _checkpoints.end(), step,
        [](std::uint64_t s, const isa::ExecCheckpoint &cp) {
            return s < cp.steps;
        });
    // Checkpoint 0 is step 0, so the range before 'it' is never
    // empty.
    return *(it - 1);
}

ForkServer::Verdict
ForkServer::runFork(isa::Executor &executor,
                    std::uint64_t fork_start,
                    std::uint64_t corrupt_after) const
{
    // First checkpoint whose state can have absorbed the corruption.
    std::size_t cpi =
        static_cast<std::size_t>(std::upper_bound(
            _checkpoints.begin(), _checkpoints.end(), corrupt_after,
            [](std::uint64_t s, const isa::ExecCheckpoint &cp) {
                return s < cp.steps;
            }) - _checkpoints.begin());

    // The restored prefix of the output is golden by construction;
    // only newly appended values need prefix-checking.
    std::size_t checked = executor.state().output().size();
    auto outputDiverged = [&] {
        const auto &out = executor.state().output();
        if (out.size() > _goldenOutput.size())
            return true;
        for (; checked < out.size(); ++checked) {
            if (out[checked] != _goldenOutput[checked])
                return true;
        }
        return false;
    };

    for (;;) {
        std::uint64_t target = cpi < _checkpoints.size()
                                   ? _checkpoints[cpi].steps
                                   : _budget;
        target = std::min(target, _budget);
        isa::Termination term = isa::Termination::Running;
        while (executor.steps() < target) {
            term = executor.step();
            if (term != isa::Termination::Running)
                break;
        }
        std::uint64_t ran = executor.steps() - fork_start;
        if (term == isa::Termination::Halted) {
            bool changed =
                outputDiverged() || executor.state().output().size()
                                        != _goldenOutput.size();
            return {changed, ran};
        }
        if (term == isa::Termination::Trap)
            return {true, ran};
        if (outputDiverged())
            return {true, ran};
        if (executor.steps() >= _budget)
            return {true, ran};  // same verdict as a full-rerun
                                 // MaxSteps: failed to terminate
        if (cpi < _checkpoints.size() &&
            executor.steps() == _checkpoints[cpi].steps) {
            const isa::ExecCheckpoint &cp = _checkpoints[cpi];
            if (executor.pc() == cp.pc &&
                executor.callDepth() == cp.callDepth &&
                executor.state().equals(cp.state)) {
                // Reconverged with the golden run at the same step
                // count: the deterministic suffix is identical, so
                // the fault is architecturally masked.
                return {false, ran};
            }
            ++cpi;
        }
    }
}

ForkServer::Verdict
ForkServer::corruptEncoding(std::uint64_t seq,
                            std::uint64_t mask) const
{
    isa::Executor executor(_program);
    const isa::ExecCheckpoint &cp = checkpointAtOrBefore(seq);
    executor.restore(cp);
    executor.setCorruption(seq, mask);
    return runFork(executor, cp.steps, seq);
}

ForkServer::Verdict
ForkServer::corruptRegister(std::uint64_t step, RegClass file,
                            int reg, int bit) const
{
    isa::Executor executor(_program);
    const isa::ExecCheckpoint &cp = checkpointAtOrBefore(step);
    executor.restore(cp);
    while (executor.steps() < step) {
        isa::Termination term = executor.step();
        if (term != isa::Termination::Running) {
            // The golden prefix halts exactly at 'step' (a strike in
            // the very last commit's cycle): the output is already
            // complete, so a register flip can no longer be read.
            return {false, executor.steps() - cp.steps};
        }
    }

    isa::ArchState &state = executor.state();
    switch (file) {
      case RegClass::Int:
        state.writeInt(reg, state.readInt(reg) ^ (1ULL << bit));
        break;
      case RegClass::Fp:
        state.writeFpBits(reg,
                          state.readFpBits(reg) ^ (1ULL << bit));
        break;
      case RegClass::Pred:
        state.writePred(reg, !state.readPred(reg));
        break;
    }
    return runFork(executor, cp.steps, step);
}

} // namespace faults
} // namespace ser
