#include "campaign_engine.hh"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <sstream>

#include "avf/attribution.hh"
#include "avf/regfile_avf.hh"
#include "faults/fork_server.hh"
#include "faults/injector.hh"
#include "isa/isa.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/prof.hh"
#include "sim/rng.hh"

namespace ser
{
namespace faults
{

const char *
structureName(Structure structure)
{
    switch (structure) {
      case Structure::Iq: return "iq";
      case Structure::IntRegFile: return "int-regfile";
      case Structure::FpRegFile: return "fp-regfile";
      case Structure::PredRegFile: return "pred-regfile";
    }
    return "?";
}

unsigned
parseStructures(const std::string &csv)
{
    unsigned mask = 0;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty())
            continue;
        if (item == "iq")
            mask |= structIq;
        else if (item == "regfile")
            mask |= structRegFile;
        else if (item == "int")
            mask |= structIntReg;
        else if (item == "fp")
            mask |= structFpReg;
        else if (item == "pred")
            mask |= structPredReg;
        else
            SER_PANIC("unknown campaign structure '{}' (expected "
                      "iq, regfile, int, fp, or pred)", item);
    }
    return mask;
}

std::string
structuresToString(unsigned mask)
{
    std::string out;
    auto add = [&](const char *name) {
        if (!out.empty())
            out += ',';
        out += name;
    };
    if (mask & structIq)
        add("iq");
    if ((mask & structRegFile) == structRegFile) {
        add("regfile");
    } else {
        if (mask & structIntReg)
            add("int");
        if (mask & structFpReg)
            add("fp");
        if (mask & structPredReg)
            add("pred");
    }
    return out;
}

std::string
CampaignSpec::cacheKey() const
{
    std::ostringstream os;
    os << "samples=" << samples << "|cseed=" << seed
       << "|prot=" << protectionName(protection)
       << "|payload=" << (payloadOnly ? 1 : 0)
       << "|structs=" << structures << "|ci=" << ciTarget
       << "|batch=" << batchSamples << "|ckpt=" << checkpoints
       << "|rootn=" << rootCauseTopN;
    return os.str();
}

const StructureCampaign *
CampaignOutcome::find(Structure structure) const
{
    for (const auto &sc : structures) {
        if (sc.structure == structure)
            return &sc;
    }
    return nullptr;
}

namespace
{

/**
 * Register-file residency: the same forward walk over the committed
 * stream that avf/regfile_avf performs, but materializing the value
 * windows so a sampled (file, reg, cycle) site can be classified.
 * A window covers [defCycle, closeCycle); lastReadCycle is the last
 * consumer's commit cycle and defCommit the producing commit's
 * index, which maps a strike to the dynamic step the ForkServer
 * must corrupt after.
 */
struct RegWindow
{
    std::uint64_t defCycle = 0;
    std::uint64_t closeCycle = 0;
    std::uint64_t lastReadCycle = 0;
    std::uint32_t defCommit = 0;
    bool read = false;
    bool dead = false;
};

class RegResidency
{
  public:
    RegResidency(const cpu::SimTrace &trace,
                 const avf::DeadnessResult &deadness)
        : _files{std::vector<std::vector<RegWindow>>(isa::numIntRegs),
                 std::vector<std::vector<RegWindow>>(isa::numFpRegs),
                 std::vector<std::vector<RegWindow>>(
                     isa::numPredRegs)}
    {
        if (!trace.program)
            SER_PANIC("RegResidency: trace has no program");
        const isa::Program &program = *trace.program;

        _commitCycle.assign(trace.commits.size(), 0);
        for (const auto &inc : trace.incarnations) {
            if ((inc.flags & cpu::incCommitted) &&
                inc.oracleSeq != cpu::noSeq32 &&
                inc.oracleSeq < _commitCycle.size())
                _commitCycle[inc.oracleSeq] = inc.evictCycle;
        }

        struct Open
        {
            RegWindow window;
            bool open = false;
        };
        std::array<std::vector<Open>, 3> live{
            std::vector<Open>(isa::numIntRegs),
            std::vector<Open>(isa::numFpRegs),
            std::vector<Open>(isa::numPredRegs)};

        auto close = [&](int file, std::size_t reg,
                         std::uint64_t cycle) {
            Open &o = live[static_cast<std::size_t>(file)][reg];
            if (!o.open)
                return;
            o.window.closeCycle = std::max(cycle, o.window.defCycle);
            _files[static_cast<std::size_t>(file)][reg].push_back(
                o.window);
            o.open = false;
        };
        auto def = [&](int file, std::size_t reg,
                       std::uint64_t cycle, std::uint32_t commit,
                       bool dead) {
            close(file, reg, cycle);
            Open &o = live[static_cast<std::size_t>(file)][reg];
            o.open = true;
            o.window = RegWindow{cycle, cycle, cycle, commit, false,
                                 dead};
        };
        auto read = [&](int file, std::size_t reg,
                        std::uint64_t cycle) {
            Open &o = live[static_cast<std::size_t>(file)][reg];
            if (!o.open)
                return;  // reading architectural init state
            o.window.read = true;
            if (cycle > o.window.lastReadCycle)
                o.window.lastReadCycle = cycle;
        };
        auto file_of = [](isa::RegClass rc) {
            switch (rc) {
              case isa::RegClass::Int: return 0;
              case isa::RegClass::Fp: return 1;
              case isa::RegClass::Pred: return 2;
              case isa::RegClass::None: break;
            }
            return -1;
        };

        for (std::size_t i = 0; i < trace.commits.size(); ++i) {
            const auto &cr = trace.commits[i];
            const isa::StaticInst &inst = program.inst(cr.staticIdx);
            const isa::OpInfo &oi = inst.info();
            std::uint64_t cycle = _commitCycle[i];

            if (inst.qp() != 0)
                read(2, inst.qp(), cycle);
            if (cr.qpTrue) {
                if (int f = file_of(oi.src1Class); f >= 0)
                    read(f, inst.src1(), cycle);
                if (int f = file_of(oi.src2Class); f >= 0)
                    read(f, inst.src2(), cycle);
                if (inst.hasDst()) {
                    if (int f = file_of(inst.dstClass()); f >= 0) {
                        def(f, inst.dst(), cycle,
                            static_cast<std::uint32_t>(i),
                            deadness.isDead(i));
                    }
                }
            }
        }
        for (std::size_t f = 0; f < 3; ++f) {
            for (std::size_t r = 0; r < live[f].size(); ++r)
                close(static_cast<int>(f), r, trace.endCycle);
        }
    }

    /** The window holding (file, reg) at 'cycle', or nullptr. */
    const RegWindow *
    find(int file, std::size_t reg, std::uint64_t cycle) const
    {
        const auto &vec = _files[static_cast<std::size_t>(file)][reg];
        auto it = std::upper_bound(
            vec.begin(), vec.end(), cycle,
            [](std::uint64_t c, const RegWindow &w) {
                return c < w.defCycle;
            });
        if (it == vec.begin())
            return nullptr;
        const RegWindow *w = &*(it - 1);
        return cycle < w->closeCycle ? w : nullptr;
    }

    /** Dynamic step count after which a strike at 'cycle' lands:
     * every commit with commit cycle <= cycle has executed. */
    std::uint64_t
    stepFor(std::uint64_t cycle) const
    {
        auto it = std::upper_bound(_commitCycle.begin(),
                                   _commitCycle.end(), cycle);
        return static_cast<std::uint64_t>(it - _commitCycle.begin());
    }

  private:
    // Indexed [file][reg]: 0 = int, 1 = fp, 2 = pred. Windows are in
    // defCycle order because the commit stream is walked in order.
    std::array<std::vector<std::vector<RegWindow>>, 3> _files;
    std::vector<std::uint64_t> _commitCycle;
};

/** One classified sample, written into an index-addressed slot. */
struct SampleRecord
{
    Outcome outcome = Outcome::BenignNoBit;
    std::uint8_t structureIdx = 0;
    std::uint32_t staticIdx = cpu::noSeq32;
    bool reRan = false;
    std::uint64_t rerunSteps = 0;
};

struct StructSpace
{
    Structure structure;
    std::uint64_t units;  ///< entries or registers
    std::uint64_t bits;   ///< bits per unit
    std::uint64_t weight() const { return units * bits; }
};

RegClass
regClassOf(Structure structure)
{
    switch (structure) {
      case Structure::IntRegFile: return RegClass::Int;
      case Structure::FpRegFile: return RegClass::Fp;
      case Structure::PredRegFile: return RegClass::Pred;
      case Structure::Iq: break;
    }
    SER_PANIC("regClassOf: not a register file structure");
}

/** CI overlap with an analytical [lo, hi] band. */
bool
covers(const Interval &ci, double lo, double hi)
{
    return ci.lo <= hi && ci.hi >= lo;
}

} // namespace

CampaignOutcome
runCampaignEngine(const isa::Program &program,
                  const cpu::SimTrace &trace,
                  const avf::DeadnessResult &deadness,
                  const avf::AvfResult &avf, const CampaignSpec &spec)
{
    SER_PROF_SCOPE("campaign");

    CampaignOutcome out;
    out.samplesRequested = spec.samples;
    out.seed = spec.seed;
    out.protection = spec.protection;
    out.payloadOnly = spec.payloadOnly;
    out.ciTarget = spec.ciTarget;
    out.batchSamples = spec.batchSamples;
    if (spec.samples == 0 || spec.structures == 0)
        return out;

    // The sampled site space: one entry per enabled structure,
    // weighted by its bit capacity (every structure shares the same
    // window, so per-cycle weights reduce to bits).
    std::vector<StructSpace> spaces;
    if (spec.structures & structIq) {
        spaces.push_back({Structure::Iq, trace.iqEntries,
                          static_cast<std::uint64_t>(
                              spec.payloadOnly ? payloadBits
                                               : entryBits)});
    }
    if (spec.structures & structIntReg)
        spaces.push_back({Structure::IntRegFile, isa::numIntRegs, 64});
    if (spec.structures & structFpReg)
        spaces.push_back({Structure::FpRegFile, isa::numFpRegs, 64});
    if (spec.structures & structPredReg)
        spaces.push_back(
            {Structure::PredRegFile, isa::numPredRegs, 1});
    std::uint64_t totalWeight = 0;
    for (const auto &space : spaces)
        totalWeight += space.weight();

    // Golden run + checkpoints, shared by every injection.
    std::uint64_t budget = trace.commits.size() * 2 + 10000;
    ForkServer fork(program, budget, spec.checkpoints);
    out.goldenSteps = fork.goldenSteps();
    out.checkpoints = fork.numCheckpoints();

    FaultInjector injector(program, trace, fork.goldenOutput(),
                           budget);
    injector.attachForkServer(&fork);

    bool wantRegs = (spec.structures & structRegFile) != 0;
    std::optional<RegResidency> regs;
    if (wantRegs)
        regs.emplace(trace, deadness);

    auto classify = [&](std::uint64_t index) {
        Rng rng = Rng::keyed(spec.seed, index);
        SampleRecord rec;
        // Draw order is fixed: structure, unit, bit, cycle — a
        // sample's site is a pure function of (seed, index).
        std::uint64_t pick = rng.range(totalWeight);
        std::size_t si = 0;
        while (si + 1 < spaces.size() &&
               pick >= spaces[si].weight()) {
            pick -= spaces[si].weight();
            ++si;
        }
        const StructSpace &space = spaces[si];
        rec.structureIdx = static_cast<std::uint8_t>(si);
        std::uint64_t unit = rng.range(space.units);
        int bit = static_cast<int>(rng.range(space.bits));
        std::uint64_t cycle = sampleWindowCycle(
            rng, trace.startCycle, trace.endCycle);

        if (space.structure == Structure::Iq) {
            FaultSite site{static_cast<std::uint16_t>(unit),
                           static_cast<std::uint8_t>(bit), cycle};
            FaultResult fr = injector.classify(site, spec.protection);
            rec.outcome = fr.outcome;
            rec.reRan = fr.reRan;
            rec.rerunSteps = fr.rerunSteps;
            if (fr.incarnationIndex >= 0) {
                rec.staticIdx =
                    trace.incarnations[static_cast<std::size_t>(
                                           fr.incarnationIndex)]
                        .staticIdx;
            }
            return rec;
        }

        const RegWindow *w = regs->find(
            space.structure == Structure::IntRegFile   ? 0
            : space.structure == Structure::FpRegFile ? 1
                                                      : 2,
            unit, cycle);
        if (!w)
            return rec;  // unwritten / between value windows
        rec.staticIdx = trace.commits[w->defCommit].staticIdx;
        // A strike at the last-read cycle lands after that read (the
        // analytical fold charges ACE over [def, lastRead)), so
        // read-after is strict.
        bool read_after = w->read && cycle < w->lastReadCycle;
        if (spec.protection == Protection::Ecc) {
            rec.outcome = read_after ? Outcome::Corrected
                                     : Outcome::BenignNotRead;
            return rec;
        }
        if (!read_after) {
            rec.outcome = Outcome::BenignNotRead;
            return rec;
        }
        ForkServer::Verdict verdict = fork.corruptRegister(
            regs->stepFor(cycle), regClassOf(space.structure),
            static_cast<int>(unit), bit);
        rec.reRan = true;
        rec.rerunSteps = verdict.steps;
        if (spec.protection == Protection::Parity) {
            rec.outcome = verdict.changed ? Outcome::TrueDue
                                          : Outcome::FalseDue;
        } else {
            rec.outcome = verdict.changed ? Outcome::Sdc
                                          : Outcome::BenignNoError;
        }
        return rec;
    };

    // Tallies, folded in sample order.
    std::vector<CampaignResult> tallies(spaces.size());
    std::map<std::uint32_t, std::uint64_t> sdcByPc;

    std::uint64_t batch = std::max<std::uint64_t>(
        1, spec.batchSamples);
    std::vector<SampleRecord> records;
    std::uint64_t done = 0;
    while (done < spec.samples) {
        std::uint64_t n = std::min(batch, spec.samples - done);
        records.resize(n);
        ser::parallelFor(
            static_cast<std::size_t>(n), spec.jobs,
            [&](std::size_t i) {
                records[i] = classify(done + i);
            });
        for (const SampleRecord &rec : records) {
            CampaignResult &tally = tallies[rec.structureIdx];
            ++tally.samples;
            ++tally.counts[static_cast<std::size_t>(rec.outcome)];
            if (rec.reRan) {
                ++out.reruns;
                out.rerunSteps += rec.rerunSteps;
            }
            bool sdc_producing =
                rec.outcome == Outcome::Sdc ||
                rec.outcome == Outcome::TrueDue;
            if (sdc_producing && rec.staticIdx != cpu::noSeq32)
                ++sdcByPc[rec.staticIdx];
        }
        done += n;
        if (spec.onBatch)
            spec.onBatch(done, spec.samples);

        // Adaptive early stop, evaluated only at batch boundaries so
        // the stopping point is a pure function of the fold so far.
        // The same per-structure CIs become one point of the
        // convergence time-series.
        ConvergencePoint point;
        point.batch = out.convergence.size();
        point.samples = done;
        point.structures.reserve(tallies.size());
        double widest = 0.0;
        for (std::size_t si = 0; si < tallies.size(); ++si) {
            const CampaignResult &tally = tallies[si];
            Interval sdc = wilson(tally.count(Outcome::Sdc),
                                  tally.samples);
            Interval due = wilson(tally.count(Outcome::TrueDue) +
                                      tally.count(Outcome::FalseDue),
                                  tally.samples);
            ConvergencePoint::StructurePoint sp;
            sp.structure = spaces[si].structure;
            sp.samples = tally.samples;
            sp.sdcRate = tally.sdcRate();
            sp.sdcHalfWidth = (sdc.hi - sdc.lo) / 2.0;
            sp.dueRate = tally.dueRate();
            sp.dueHalfWidth = (due.hi - due.lo) / 2.0;
            point.structures.push_back(sp);
            widest = std::max({widest, sp.sdcHalfWidth,
                               sp.dueHalfWidth});
        }
        point.worstHalfWidth = widest;
        out.convergence.push_back(point);
        if (spec.onConvergence)
            spec.onConvergence(point);
        out.ciHalfWidth = widest;
        if (spec.ciTarget > 0.0 && widest <= spec.ciTarget &&
            done < spec.samples) {
            out.earlyStopped = true;
            break;
        }
    }
    out.samplesRun = done;

    // Analytical reconciliation bands (see file comment; the band
    // collapses to [0, 0] for classes the protection eliminates).
    avf::RegFileAvfResult regAvf;
    if (wantRegs)
        regAvf = avf::computeRegFileAvf(trace, deadness);

    for (std::size_t si = 0; si < spaces.size(); ++si) {
        StructureCampaign sc;
        sc.structure = spaces[si].structure;
        sc.weight = spaces[si].weight();
        sc.tally = tallies[si];
        sc.sdcCi = wilson(sc.tally.count(Outcome::Sdc),
                          sc.tally.samples);
        sc.dueCi = wilson(sc.tally.count(Outcome::TrueDue) +
                              sc.tally.count(Outcome::FalseDue),
                          sc.tally.samples);

        if (spec.protection == Protection::None) {
            if (sc.structure == Structure::Iq) {
                // ACE analysis is one-sided: every refinement still
                // overestimates ground truth (an instruction marked
                // ACE has many payload bits whose flip the oracle
                // proves harmless), so the tightest analytical
                // statement is measured SDC <= field-refined ACE.
                // The gap below it is the ACE derating factor the
                // related work (Wang et al.) measures.
                sc.analyticalSdc = avf.sdcAvfRefined();
                sc.analyticalSdcLower = 0.0;
            } else {
                const avf::RegFileAvf &f =
                    sc.structure == Structure::IntRegFile
                        ? regAvf.intFile
                        : sc.structure == Structure::FpRegFile
                              ? regAvf.fpFile
                              : regAvf.predFile;
                sc.analyticalSdc = f.sdcAvf();
                sc.analyticalSdcLower = 0.0;
            }
            // No detection: nothing can signal a DUE.
        } else if (spec.protection == Protection::Parity) {
            if (sc.structure == Structure::Iq) {
                // Measured DUE counts exactly the pre-read occupied
                // bit-cycles the fold splits into ACE + read un-ACE:
                // an unbiased point estimate, not a bound.
                sc.analyticalDue = avf.dueAvf();
                sc.analyticalDueLower = avf.dueAvf();
            } else {
                const avf::RegFileAvf &f =
                    sc.structure == Structure::IntRegFile
                        ? regAvf.intFile
                        : sc.structure == Structure::FpRegFile
                              ? regAvf.fpFile
                              : regAvf.predFile;
                // Live windows signal over [def, lastRead) exactly;
                // dead windows are charged whole analytically but
                // only their read-before portion signals.
                sc.analyticalDueLower = f.frac(f.ace);
                sc.analyticalDue = f.frac(f.ace) + f.falseDueAvf();
            }
        }
        sc.sdcCovered = covers(sc.sdcCi, sc.analyticalSdcLower,
                               sc.analyticalSdc);
        sc.dueCovered = covers(sc.dueCi, sc.analyticalDueLower,
                               sc.analyticalDue);
        out.structures.push_back(sc);
    }

    // Per-PC root causes of the measured SDCs, joined with the
    // analytical attribution's ACE shares.
    if (spec.rootCauseTopN > 0 && !sdcByPc.empty()) {
        avf::AttributionResult attr = attributeAvf(trace, deadness);
        std::uint64_t totalSdc = 0;
        for (const auto &[pc, count] : sdcByPc)
            totalSdc += count;
        std::vector<RootCause> causes;
        causes.reserve(sdcByPc.size());
        for (const auto &[pc, count] : sdcByPc) {
            RootCause rc;
            rc.staticIdx = pc;
            rc.sdcInjections = count;
            rc.measuredShare =
                static_cast<double>(count) /
                static_cast<double>(totalSdc);
            for (const auto &pa : attr.pcs) {
                if (pa.staticIdx == pc) {
                    rc.analyticalAceShare = attr.aceShare(pa);
                    break;
                }
            }
            causes.push_back(rc);
        }
        std::sort(causes.begin(), causes.end(),
                  [](const RootCause &a, const RootCause &b) {
                      if (a.sdcInjections != b.sdcInjections)
                          return a.sdcInjections > b.sdcInjections;
                      return a.staticIdx < b.staticIdx;
                  });
        if (causes.size() > spec.rootCauseTopN)
            causes.resize(spec.rootCauseTopN);
        out.rootCauses = std::move(causes);
    }
    return out;
}

std::string
CampaignOutcome::summary() const
{
    std::ostringstream os;
    os << "campaign: " << samplesRun << "/" << samplesRequested
       << " samples, protection " << protectionName(protection);
    if (earlyStopped)
        os << ", early stop (CI half-width " << ciHalfWidth * 100
           << "% <= target " << ciTarget * 100 << "%)";
    os << "\n  re-runs " << reruns << ", mean forked cost "
       << meanRerunFraction() * 100 << "% of a full replay ("
       << checkpoints << " checkpoints, golden " << goldenSteps
       << " steps)\n";
    for (const auto &sc : structures) {
        os << "  " << structureName(sc.structure) << ": "
           << sc.tally.samples << " samples, SDC "
           << sc.sdcRate() * 100 << "% [" << sc.sdcCi.lo * 100
           << ", " << sc.sdcCi.hi * 100 << "] vs analytical ["
           << sc.analyticalSdcLower * 100 << ", "
           << sc.analyticalSdc * 100 << "] ("
           << (sc.sdcCovered ? "covered" : "NOT covered")
           << "), DUE " << sc.dueRate() * 100 << "% ["
           << sc.dueCi.lo * 100 << ", " << sc.dueCi.hi * 100
           << "] vs [" << sc.analyticalDueLower * 100 << ", "
           << sc.analyticalDue * 100 << "] ("
           << (sc.dueCovered ? "covered" : "NOT covered") << ")\n";
    }
    return os.str();
}

} // namespace faults
} // namespace ser
