/**
 * @file
 * Return-address stack.
 *
 * Calls push the fall-through instruction index; returns pop it. The
 * stack is updated speculatively at fetch, so the CPU snapshots
 * (top-of-stack pointer + the entry it may clobber) with every
 * control instruction and restores on squash.
 */

#ifndef SER_BRANCH_RAS_HH
#define SER_BRANCH_RAS_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"

namespace ser
{
namespace branch
{

/** Snapshot sufficient to undo shallow speculation: saves the slot
 * a speculative push would clobber and the slot a speculative
 * pop-then-push would clobber. Deeper speculative churn is repaired
 * only approximately, as in real hardware. */
struct RasCheckpoint
{
    std::uint32_t top = 0;         ///< stack pointer
    std::uint32_t size = 0;        ///< valid-entry count
    std::uint32_t savedAtTop = 0;  ///< value at slot 'top'
    std::uint32_t savedBelow = 0;  ///< value at slot 'top - 1'
};

/** Circular-buffer return-address stack. */
class Ras : public statistics::StatGroup
{
  public:
    explicit Ras(std::size_t entries,
                 statistics::StatGroup *parent = nullptr);

    /** Snapshot before any speculative push/pop at fetch. */
    RasCheckpoint checkpoint() const;

    /** Restore after squashing the instructions since 'cp'. */
    void restore(const RasCheckpoint &cp);

    void push(std::uint32_t return_index);

    /** Pop a predicted return target (0 if the stack is empty). */
    std::uint32_t pop();

    bool empty() const { return _size == 0; }

  private:
    std::vector<std::uint32_t> _stack;
    std::uint32_t _top = 0;   ///< index of the next push slot
    std::uint32_t _size = 0;  ///< valid entries (saturates at depth)

    statistics::Scalar statPushes;
    statistics::Scalar statPops;
    statistics::Scalar statEmptyPops;
};

} // namespace branch
} // namespace ser

#endif // SER_BRANCH_RAS_HH
