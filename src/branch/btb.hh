/**
 * @file
 * Branch target buffer: predicts targets of indirect branches.
 *
 * Direct TIA64 branches carry their target in the immediate, so the
 * BTB is only consulted for `bri` (indirect jumps); `ret` uses the
 * return-address stack instead.
 */

#ifndef SER_BRANCH_BTB_HH
#define SER_BRANCH_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/stats.hh"

namespace ser
{
namespace branch
{

/** Direct-mapped, tagged target buffer (targets are inst indices). */
class Btb : public statistics::StatGroup
{
  public:
    explicit Btb(std::size_t entries,
                 statistics::StatGroup *parent = nullptr);

    /** Predicted target for the branch at 'pc', if any. */
    std::optional<std::uint32_t> lookup(std::uint64_t pc);

    /** Install/refresh the resolved target. */
    void update(std::uint64_t pc, std::uint32_t target);

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint32_t target = 0;
        bool valid = false;
    };

    std::size_t index(std::uint64_t pc) const
    {
        return pc & (_entries.size() - 1);
    }

    std::vector<Entry> _entries;

    statistics::Scalar statLookups;
    statistics::Scalar statHits;
};

} // namespace branch
} // namespace ser

#endif // SER_BRANCH_BTB_HH
