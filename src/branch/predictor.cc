#include "predictor.hh"

#include <bit>

#include "sim/logging.hh"

namespace ser
{
namespace branch
{

namespace
{

/** 2-bit saturating counter helpers; >= 2 means predict taken. */
std::uint8_t
bump(std::uint8_t counter, bool taken)
{
    if (taken)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

void
checkPow2(std::size_t entries, const std::string &name)
{
    if (entries == 0 || !std::has_single_bit(entries))
        SER_FATAL("predictor {}: table size {} not a power of two",
                  name, entries);
}

} // namespace

DirectionPredictor::DirectionPredictor(const std::string &name,
                                       statistics::StatGroup *parent)
    : StatGroup(name, parent),
      statLookups(this, "lookups", "direction predictions made"),
      statCorrect(this, "correct", "predictions resolved correct"),
      statIncorrect(this, "incorrect", "predictions resolved wrong")
{
}

void
DirectionPredictor::recordResolution(bool correct)
{
    if (correct)
        ++statCorrect;
    else
        ++statIncorrect;
}

double
DirectionPredictor::accuracy() const
{
    double total = statCorrect.value() + statIncorrect.value();
    return total > 0.0 ? statCorrect.value() / total : 1.0;
}

BimodalPredictor::BimodalPredictor(std::size_t entries,
                                   statistics::StatGroup *parent,
                                   const std::string &name)
    : DirectionPredictor(name, parent)
{
    checkPow2(entries, name);
    _table.assign(entries, 1);  // weakly not-taken
}

Lookup
BimodalPredictor::predict(std::uint64_t pc)
{
    ++statLookups;
    Lookup lookup;
    lookup.taken = _table[index(pc)] >= 2;
    return lookup;
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken, const Lookup &)
{
    std::uint8_t &ctr = _table[index(pc)];
    ctr = bump(ctr, taken);
}

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits,
                                 statistics::StatGroup *parent,
                                 const std::string &name)
    : DirectionPredictor(name, parent)
{
    checkPow2(entries, name);
    if (history_bits == 0 || history_bits > 63)
        SER_FATAL("predictor {}: bad history width {}", name,
                  history_bits);
    _table.assign(entries, 1);
    _historyMask = (1ULL << history_bits) - 1;
}

Lookup
GsharePredictor::predict(std::uint64_t pc)
{
    ++statLookups;
    Lookup lookup;
    lookup.ghr = _ghr;
    lookup.taken = _table[index(pc, _ghr)] >= 2;
    // Speculative history update; repaired on mispredict.
    _ghr = ((_ghr << 1) | (lookup.taken ? 1 : 0)) & _historyMask;
    return lookup;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken,
                        const Lookup &lookup)
{
    std::uint8_t &ctr = _table[index(pc, lookup.ghr)];
    ctr = bump(ctr, taken);
}

void
GsharePredictor::restoreHistory(const Lookup &lookup, bool taken)
{
    _ghr = ((lookup.ghr << 1) | (taken ? 1 : 0)) & _historyMask;
}

TournamentPredictor::TournamentPredictor(std::size_t entries,
                                         unsigned history_bits,
                                         statistics::StatGroup *parent,
                                         const std::string &name)
    : DirectionPredictor(name, parent),
      _bimodal(entries, this, "bimodal"),
      _gshare(entries, history_bits, this, "gshare")
{
    checkPow2(entries, name);
    _chooser.assign(entries, 2);  // weakly prefer gshare
}

Lookup
TournamentPredictor::predict(std::uint64_t pc)
{
    ++statLookups;
    Lookup b = _bimodal.predict(pc);
    Lookup g = _gshare.predict(pc);
    Lookup lookup;
    lookup.ghr = g.ghr;
    lookup.meta = (b.taken ? metaBimodal : 0) |
                  (g.taken ? metaGshare : 0);
    lookup.taken = _chooser[index(pc)] >= 2 ? g.taken : b.taken;
    return lookup;
}

void
TournamentPredictor::update(std::uint64_t pc, bool taken,
                            const Lookup &lookup)
{
    bool b = lookup.meta & metaBimodal;
    bool g = lookup.meta & metaGshare;
    // Train the chooser only when the components disagreed.
    if (b != g) {
        std::uint8_t &ctr = _chooser[index(pc)];
        ctr = bump(ctr, g == taken);
    }
    _bimodal.update(pc, taken, lookup);
    _gshare.update(pc, taken, lookup);
}

void
TournamentPredictor::restoreHistory(const Lookup &lookup, bool taken)
{
    _gshare.restoreHistory(lookup, taken);
}

void
TournamentPredictor::rewindHistory(const Lookup &lookup)
{
    _gshare.rewindHistory(lookup);
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &kind, std::size_t entries,
                       unsigned history_bits,
                       statistics::StatGroup *parent)
{
    if (kind == "bimodal")
        return std::make_unique<BimodalPredictor>(entries, parent);
    if (kind == "gshare")
        return std::make_unique<GsharePredictor>(entries, history_bits,
                                                 parent);
    if (kind == "tournament")
        return std::make_unique<TournamentPredictor>(
            entries, history_bits, parent);
    SER_FATAL("unknown direction predictor kind '{}'", kind);
}

} // namespace branch
} // namespace ser
