/**
 * @file
 * Branch direction predictors.
 *
 * In TIA64 the only conditional branch is a predicated `br`, so the
 * direction predictor predicts whether the qualifying predicate will
 * be true. Three predictors are provided — bimodal, gshare, and a
 * tournament chooser over both — behind a common interface.
 *
 * Because many predictions are in flight between lookup and
 * resolution, predict() returns a Lookup token holding the global
 * history (and any component metadata) used for the lookup; the CPU
 * carries the token with the branch and hands it back to update().
 * Global history is updated speculatively at predict time and
 * repaired with restoreHistory() when a misprediction squashes the
 * younger speculative updates.
 */

#ifndef SER_BRANCH_PREDICTOR_HH
#define SER_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace ser
{
namespace branch
{

/** The outcome of one direction lookup, carried with the branch. */
struct Lookup
{
    bool taken = false;       ///< the prediction
    std::uint64_t ghr = 0;    ///< global history *before* this lookup
    std::uint8_t meta = 0;    ///< component predictions (tournament)
};

/** Interface for direction predictors. */
class DirectionPredictor : public statistics::StatGroup
{
  public:
    DirectionPredictor(const std::string &name,
                       statistics::StatGroup *parent);
    virtual ~DirectionPredictor() = default;

    /**
     * Predict the direction of the branch at instruction index 'pc',
     * speculatively updating any global history.
     */
    virtual Lookup predict(std::uint64_t pc) = 0;

    /** Train with the resolved outcome of a prior lookup. */
    virtual void update(std::uint64_t pc, bool taken,
                        const Lookup &lookup) = 0;

    /**
     * Repair speculative history after a misprediction: the history
     * becomes the branch's pre-lookup history extended with its
     * actual direction.
     */
    virtual void restoreHistory(const Lookup &, bool) {}

    /**
     * Rewind speculative history to just *before* a lookup — used
     * when the branch itself is squashed un-issued and will be
     * re-fetched and re-predicted.
     */
    virtual void rewindHistory(const Lookup &) {}

    /** Count the resolution of a prediction (for stats). */
    void recordResolution(bool correct);

    double accuracy() const;
    std::uint64_t mispredicts() const
    {
        return static_cast<std::uint64_t>(statIncorrect.value());
    }

  protected:
    statistics::Scalar statLookups;
    statistics::Scalar statCorrect;
    statistics::Scalar statIncorrect;
};

/** A table of 2-bit saturating counters indexed by pc. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    BimodalPredictor(std::size_t entries,
                     statistics::StatGroup *parent = nullptr,
                     const std::string &name = "bimodal");

    Lookup predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken,
                const Lookup &lookup) override;

  private:
    std::size_t index(std::uint64_t pc) const
    {
        return pc & (_table.size() - 1);
    }
    std::vector<std::uint8_t> _table;
};

/** Global-history predictor: counters indexed by pc ^ ghr. */
class GsharePredictor : public DirectionPredictor
{
  public:
    GsharePredictor(std::size_t entries, unsigned history_bits,
                    statistics::StatGroup *parent = nullptr,
                    const std::string &name = "gshare");

    Lookup predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken,
                const Lookup &lookup) override;
    void restoreHistory(const Lookup &lookup, bool taken) override;
    void rewindHistory(const Lookup &lookup) override
    {
        _ghr = lookup.ghr;
    }

    std::uint64_t currentHistory() const { return _ghr; }

  private:
    std::size_t index(std::uint64_t pc, std::uint64_t ghr) const
    {
        return (pc ^ ghr) & (_table.size() - 1);
    }
    std::vector<std::uint8_t> _table;
    std::uint64_t _ghr = 0;
    std::uint64_t _historyMask;
};

/** Per-branch chooser between a bimodal and a gshare component. */
class TournamentPredictor : public DirectionPredictor
{
  public:
    TournamentPredictor(std::size_t entries, unsigned history_bits,
                        statistics::StatGroup *parent = nullptr,
                        const std::string &name = "tournament");

    Lookup predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken,
                const Lookup &lookup) override;
    void restoreHistory(const Lookup &lookup, bool taken) override;
    void rewindHistory(const Lookup &lookup) override;

  private:
    static constexpr std::uint8_t metaBimodal = 1;
    static constexpr std::uint8_t metaGshare = 2;

    BimodalPredictor _bimodal;
    GsharePredictor _gshare;
    std::vector<std::uint8_t> _chooser;
    std::size_t index(std::uint64_t pc) const
    {
        return pc & (_chooser.size() - 1);
    }
};

/** Factory: "bimodal", "gshare", or "tournament". */
std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &kind, std::size_t entries,
                       unsigned history_bits,
                       statistics::StatGroup *parent);

} // namespace branch
} // namespace ser

#endif // SER_BRANCH_PREDICTOR_HH
