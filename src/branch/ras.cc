#include "ras.hh"

#include <bit>

#include "sim/logging.hh"

namespace ser
{
namespace branch
{

Ras::Ras(std::size_t entries, statistics::StatGroup *parent)
    : StatGroup("ras", parent),
      statPushes(this, "pushes", "return addresses pushed"),
      statPops(this, "pops", "return targets popped"),
      statEmptyPops(this, "empty_pops", "pops from an empty stack")
{
    if (entries == 0 || !std::has_single_bit(entries))
        SER_FATAL("ras: depth {} not a power of two", entries);
    _stack.assign(entries, 0);
}

RasCheckpoint
Ras::checkpoint() const
{
    RasCheckpoint cp;
    cp.top = _top;
    cp.size = _size;
    auto n = static_cast<std::uint32_t>(_stack.size());
    cp.savedAtTop = _stack[_top % n];
    cp.savedBelow = _stack[(_top + n - 1) % n];
    return cp;
}

void
Ras::restore(const RasCheckpoint &cp)
{
    _top = cp.top;
    _size = cp.size;
    auto n = static_cast<std::uint32_t>(_stack.size());
    _stack[_top % n] = cp.savedAtTop;
    _stack[(_top + n - 1) % n] = cp.savedBelow;
}

void
Ras::push(std::uint32_t return_index)
{
    ++statPushes;
    _stack[_top % _stack.size()] = return_index;
    _top = (_top + 1) % static_cast<std::uint32_t>(_stack.size());
    if (_size < _stack.size())
        ++_size;
}

std::uint32_t
Ras::pop()
{
    ++statPops;
    if (_size == 0) {
        ++statEmptyPops;
        return 0;
    }
    _top = (_top + static_cast<std::uint32_t>(_stack.size()) - 1) %
           static_cast<std::uint32_t>(_stack.size());
    --_size;
    return _stack[_top % _stack.size()];
}

} // namespace branch
} // namespace ser
