#include "btb.hh"

#include <bit>

#include "sim/logging.hh"

namespace ser
{
namespace branch
{

Btb::Btb(std::size_t entries, statistics::StatGroup *parent)
    : StatGroup("btb", parent),
      statLookups(this, "lookups", "target predictions requested"),
      statHits(this, "hits", "lookups with a valid entry")
{
    if (entries == 0 || !std::has_single_bit(entries))
        SER_FATAL("btb: table size {} not a power of two", entries);
    _entries.assign(entries, Entry{});
}

std::optional<std::uint32_t>
Btb::lookup(std::uint64_t pc)
{
    ++statLookups;
    const Entry &e = _entries[index(pc)];
    if (e.valid && e.tag == pc) {
        ++statHits;
        return e.target;
    }
    return std::nullopt;
}

void
Btb::update(std::uint64_t pc, std::uint32_t target)
{
    Entry &e = _entries[index(pc)];
    e.valid = true;
    e.tag = pc;
    e.target = target;
}

} // namespace branch
} // namespace ser
