/**
 * @file
 * Parameters of the in-order pipeline model.
 *
 * Defaults follow the paper's Section 5 machine: an Itanium(R)2-like
 * in-order IA64 processor with a 25-cycle pipeline, 6-wide issue, a
 * 64-entry instruction queue, and the 8KB/256KB/10MB cache hierarchy.
 * The 25 pipeline stages are modelled as: frontEndDepth cycles from
 * fetch to instruction-queue insert, the queue itself, then issue,
 * execution (per-class latencies) and in-order commit.
 */

#ifndef SER_CPU_PARAMS_HH
#define SER_CPU_PARAMS_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "isa/isa.hh"
#include "memory/hierarchy.hh"

namespace ser
{
namespace cpu
{

namespace detail
{
/** Backing store for the process-wide cycle-skip default; see
 * setDefaultCycleSkip(). */
inline std::atomic<bool> cycle_skip_default{true};
} // namespace detail

/** Process-wide default for PipelineParams::cycleSkip. The benches
 * construct their ExperimentConfigs with default PipelineParams, so
 * the --no-cycle-skip escape hatch flips this before any config is
 * built (mirroring how --no-run-cache disables the process-wide run
 * cache). */
inline bool
defaultCycleSkip()
{
    return detail::cycle_skip_default.load(std::memory_order_relaxed);
}

inline void
setDefaultCycleSkip(bool on)
{
    detail::cycle_skip_default.store(on, std::memory_order_relaxed);
}

/** All knobs of the pipeline model. */
struct PipelineParams
{
    unsigned fetchWidth = 6;
    unsigned enqueueWidth = 6;
    unsigned issueWidth = 6;
    unsigned iqEntries = 64;

    /** Cycles from fetch to instruction-queue insert. */
    unsigned frontEndDepth = 18;

    /** Cycles an entry stays occupied after issue (replay window);
     * this residency is the paper's Ex-ACE state. */
    unsigned evictDelay = 4;

    /** Cycles from branch issue to misprediction detection. */
    unsigned branchResolveDelay = 2;

    /** Extra cycles before fetch restarts after a redirect. */
    unsigned redirectDelay = 1;

    /** Fetch bubble after a predicted-taken branch (front ends lose
     * cycles redirecting even on correct predictions). */
    unsigned takenBranchBubble = 2;

    /** Direction predictor: "bimodal", "gshare" or "tournament". */
    std::string predictor = "gshare";
    std::size_t predictorEntries = 16384;
    unsigned historyBits = 12;
    std::size_t btbEntries = 4096;
    std::size_t rasEntries = 32;

    memory::HierarchyParams hierarchy;

    // Execution latencies per functional-unit class (cycles).
    unsigned latIntAlu = 1;
    unsigned latIntMul = 4;
    unsigned latIntDiv = 16;
    unsigned latFpAdd = 4;
    unsigned latFpMul = 4;
    unsigned latFpDiv = 16;
    unsigned latFpCvt = 4;

    /** Nominal clock (GHz), used only for MTTF <-> MITF scaling. */
    double frequencyGhz = 2.5;

    /** Stop fetching new (oracle) instructions after this many. */
    std::uint64_t maxInsts = 1'000'000;

    /** Hard safety bound on simulated cycles (0 = derived). */
    std::uint64_t maxCycles = 0;

    /** Event-driven idle-cycle fast-forward in run(): when a tick
     * provably cannot change state until a known future cycle, jump
     * there in one step (accounting the skipped span exactly). Every
     * simulated result is byte-identical either way — this is purely
     * a simulator-speed knob, with --no-cycle-skip as the escape
     * hatch. */
    bool cycleSkip = defaultCycleSkip();

    /** Execution latency for an op class. */
    unsigned latencyFor(isa::OpClass oc) const;
};

} // namespace cpu
} // namespace ser

#endif // SER_CPU_PARAMS_HH
