#include "sampler.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace ser
{
namespace cpu
{

void
IntervalSample::dumpJson(json::JsonWriter &jw) const
{
    jw.beginObject();
    jw.kv("start_cycle", startCycle);
    jw.kv("end_cycle", endCycle);
    jw.kv("cycles", cycles());
    jw.kv("committed", committed);
    jw.kv("ipc", ipc());
    jw.kv("fetched", fetched);
    jw.kv("mispredicts", mispredicts);
    jw.kv("trigger_squashes", triggerSquashes);
    jw.kv("trigger_squashed_insts", triggerSquashedInsts);
    jw.kv("iq_valid_entry_cycles", iqValidEntryCycles);
    jw.kv("iq_waiting_entry_cycles", iqWaitingEntryCycles);
    jw.kv("avg_iq_occupancy", avgIqOccupancy());
    jw.endObject();
}

IntervalSampler::IntervalSampler(std::uint64_t interval_cycles)
    : _intervalCycles(interval_cycles)
{
    if (interval_cycles == 0)
        SER_FATAL("sampler: interval must be at least one cycle");
}

void
IntervalSampler::windowOpen(std::uint64_t cycle)
{
    // Warmup accumulation (if any) is discarded; the epoch grid
    // restarts at the window-start cycle, aligned with the stats
    // reset and the AVF window.
    _epochStart = cycle;
    _epochTicks = 0;
    _last = IntervalCounters{};
    _current = IntervalSample{};
    _active = true;
}

void
IntervalSampler::closeEpoch(std::uint64_t end_cycle,
                            const IntervalCounters &counters)
{
    _current.startCycle = _epochStart;
    _current.endCycle = end_cycle;
    _current.committed = counters.committed - _last.committed;
    _current.fetched = counters.fetched - _last.fetched;
    _current.mispredicts =
        counters.mispredicts - _last.mispredicts;
    _current.triggerSquashes =
        counters.triggerSquashes - _last.triggerSquashes;
    _current.triggerSquashedInsts =
        counters.triggerSquashedInsts - _last.triggerSquashedInsts;
    _samples.push_back(_current);

    _last = counters;
    _epochStart = end_cycle;
    _epochTicks = 0;
    _current = IntervalSample{};
}

void
IntervalSampler::tick(std::uint64_t cycle,
                      const IntervalCounters &counters)
{
    advance(cycle, 1, counters);
}

void
IntervalSampler::advance(std::uint64_t cycle, std::uint64_t span,
                         const IntervalCounters &counters)
{
    if (!_active || span == 0)
        return;  // warmup: the measurement window is not open yet

    // Fill (and possibly close) the current partial epoch.
    std::uint64_t take = std::min(span, _intervalCycles - _epochTicks);
    _current.iqValidEntryCycles += counters.iqOccupancy * take;
    _current.iqWaitingEntryCycles += counters.iqWaiting * take;
    _epochTicks += take;
    cycle += take;
    span -= take;
    if (_epochTicks >= _intervalCycles)
        closeEpoch(cycle, counters);

    // Epochs fully interior to the remaining span are identical by
    // construction — the cumulative counters held constant across the
    // whole span, so every interior close records zero deltas and a
    // flat occupancy integral. Emit them as one batch instead of
    // re-deriving each through the delta machinery.
    if (span >= _intervalCycles) {
        const std::uint64_t full = span / _intervalCycles;
        IntervalSample s;
        s.iqValidEntryCycles =
            counters.iqOccupancy * _intervalCycles;
        s.iqWaitingEntryCycles =
            counters.iqWaiting * _intervalCycles;
        _samples.reserve(_samples.size() + full);
        for (std::uint64_t i = 0; i < full; ++i) {
            s.startCycle = cycle;
            cycle += _intervalCycles;
            s.endCycle = cycle;
            _samples.push_back(s);
        }
        _epochStart = cycle;
        _last = counters;
        span -= full * _intervalCycles;
    }

    // Trailing partial epoch.
    if (span) {
        _current.iqValidEntryCycles += counters.iqOccupancy * span;
        _current.iqWaitingEntryCycles += counters.iqWaiting * span;
        _epochTicks += span;
    }
    _lastSeen = counters;
}

void
IntervalSampler::advanceMidEpoch(std::uint64_t span,
                                 std::uint64_t occupancy,
                                 std::uint64_t waiting)
{
    if (!_active || span == 0)
        return;
    if (_epochTicks + span >= _intervalCycles)
        SER_FATAL("sampler: advanceMidEpoch would close an epoch "
                  "(use advance with real counters)");
    _current.iqValidEntryCycles += occupancy * span;
    _current.iqWaitingEntryCycles += waiting * span;
    _epochTicks += span;
}

void
IntervalSampler::finish(std::uint64_t end_cycle)
{
    finish(end_cycle, _lastSeen);
}

void
IntervalSampler::finish(std::uint64_t end_cycle,
                        const IntervalCounters &counters)
{
    if (_active && _epochTicks > 0)
        closeEpoch(end_cycle, counters);
}

void
IntervalSampler::writeJsonl(std::ostream &os) const
{
    for (const auto &sample : _samples) {
        json::JsonWriter jw(os, 0);
        sample.dumpJson(jw);
        os << "\n";
    }
}

} // namespace cpu
} // namespace ser
