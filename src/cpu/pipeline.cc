#include "pipeline.hh"

#include <algorithm>

#include "cpu/sampler.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"
#include "sim/trace_event.hh"

namespace ser
{
namespace cpu
{

unsigned
PipelineParams::latencyFor(isa::OpClass oc) const
{
    using isa::OpClass;
    switch (oc) {
      case OpClass::Nop: return 1;
      case OpClass::IntAlu: return latIntAlu;
      case OpClass::IntMul: return latIntMul;
      case OpClass::IntDiv: return latIntDiv;
      case OpClass::FpAdd: return latFpAdd;
      case OpClass::FpMul: return latFpMul;
      case OpClass::FpDiv: return latFpDiv;
      case OpClass::FpCvt: return latFpCvt;
      case OpClass::Load: return 2;   // overridden by the dcache
      case OpClass::Store: return 1;
      case OpClass::Branch: return 1;
      case OpClass::Other: return 1;
    }
    return 1;
}

InOrderPipeline::InOrderPipeline(const isa::Program &program,
                                 const PipelineParams &params,
                                 statistics::StatGroup *parent)
    : StatGroup("cpu", parent), _program(program), _params(params),
      _oracle(std::make_unique<isa::Executor>(program)),
      _dcache(std::make_unique<memory::CacheHierarchy>(
          params.hierarchy, this)),
      _dirPred(branch::makeDirectionPredictor(
          params.predictor, params.predictorEntries,
          params.historyBits, this)),
      _btb(std::make_unique<branch::Btb>(params.btbEntries, this)),
      _ras(std::make_unique<branch::Ras>(params.rasEntries, this)),
      statCycles(this, "cycles", "simulated cycles in the window"),
      statCommitted(this, "committed",
                    "instructions committed in the window"),
      statFetched(this, "fetched", "instructions fetched (all paths)"),
      statWrongPathFetched(this, "wrong_path_fetched",
                           "wrong-path instructions fetched"),
      statReplayFetched(this, "replay_fetched",
                        "squashed instructions refetched"),
      statMispredicts(this, "mispredicts",
                      "branches resolved mispredicted"),
      statTriggerSquashes(this, "trigger_squashes",
                          "exposure-trigger squash events"),
      statTriggerSquashedInsts(this, "trigger_squashed_insts",
                               "queue entries squashed by triggers"),
      statThrottleCycles(this, "throttle_cycles",
                         "cycles fetch was throttled"),
      statIqOccupancy(this, "iq_occupancy",
                      "valid IQ entries per cycle"),
      statIqValid(this, "iq_waiting",
                  "not-yet-issued IQ entries per cycle"),
      statIssueWidth(this, "issue_width",
                     "instructions issued per cycle", 0,
                     params.issueWidth + 1, 1),
      statStallLoad(this, "stall_load",
                    "issue cycles lost waiting on load data"),
      statStallExec(this, "stall_exec",
                    "issue cycles lost waiting on execution results"),
      statStallEmpty(this, "stall_empty",
                     "issue cycles with an empty (or fresh) queue")
{
    if (_params.iqEntries == 0 || _params.iqEntries > 0xffff)
        SER_FATAL("pipeline: bad iq size {}", _params.iqEntries);
    if (_params.branchResolveDelay >= _params.evictDelay)
        SER_FATAL("pipeline: branchResolveDelay ({}) must be < "
                  "evictDelay ({}) so branches resolve before their "
                  "queue entry retires",
                  _params.branchResolveDelay, _params.evictDelay);
    _freeEntries.resize(_params.iqEntries);
    for (unsigned i = 0; i < _params.iqEntries; ++i)
        _freeEntries[i] = static_cast<std::uint16_t>(
            _params.iqEntries - 1 - i);
    _intReady.assign(isa::numIntRegs, 0);
    _fpReady.assign(isa::numFpRegs, 0);
    _predReady.assign(isa::numPredRegs, 0);
    _intByLoad.assign(isa::numIntRegs, false);
    _fpByLoad.assign(isa::numFpRegs, false);
    _trace.program = &program;
    _trace.iqEntries = _params.iqEntries;

    // The in-flight population is bounded by the front-end pipe
    // capacity plus the queue; reserving it up front makes the
    // fetch→commit loop allocation-free.
    const std::size_t fe_cap =
        static_cast<std::size_t>(_params.frontEndDepth) *
        _params.enqueueWidth;
    _pool.reserve(fe_cap + _params.iqEntries);

    // Pre-size the trace from the maxInsts hint (clamped: the vector
    // blocks are virtual until touched, but stay reasonable for the
    // pathological hint values some tests use). Incarnations get
    // headroom for replays and wrong-path fetches.
    const std::uint64_t hint =
        std::min<std::uint64_t>(_params.maxInsts, 4'000'000);
    _trace.commits.reserve(hint);
    _trace.incarnations.reserve(hint + hint / 2);
}

InOrderPipeline::~InOrderPipeline() = default;

unsigned
InOrderPipeline::latencyOf(const isa::StaticInst &inst) const
{
    return _params.latencyFor(inst.opClass());
}

bool
InOrderPipeline::drained() const
{
    return _doneFetching && _fePipe.empty() && _iq.empty() &&
           _replay.empty() && _resolutions.empty() &&
           _triggers.empty() && !_wrongPathMode;
}

SimTrace
InOrderPipeline::run()
{
    SER_PROF_SCOPE("tick_loop");
    std::uint64_t loop_ticks = 0;
    std::uint64_t max_cycles =
        _params.maxCycles
            ? _params.maxCycles
            : _params.maxInsts * 1000 + 1'000'000;
    if (_tw) {
        _tw->threadName(trace::tracks::pipeline, "pipeline events");
        _tw->threadName(trace::tracks::throttle, "fetch throttle");
        for (unsigned i = 0; i < _params.iqEntries; ++i)
            _tw->threadName(trace::tracks::iqBase + i,
                            "iq[" + std::to_string(i) + "]");
    }
    if (_warmupInsts == 0) {
        _windowOpen = true;
        _windowStart = 0;
        if (_sampler)
            _sampler->windowOpen(0);
        if (_tw)
            _tw->instant(trace::tracks::pipeline, "window_open", 0,
                         {{"warmup_commits", std::uint64_t{0}}});
    }
    SER_DPRINTF(Pipeline,
                "run: start, warmup {} insts, max {} cycles",
                _warmupInsts, max_cycles);

    while (!drained()) {
        if (_cycle >= max_cycles)
            SER_PANIC("pipeline: exceeded {} cycles without draining "
                      "(committed {}, iq {}, fe {})",
                      max_cycles, _committedTotal, _iq.size(),
                      _fePipe.size());
        ++loop_ticks;
        evictAndCommit();
        resolveBranches();
        processTriggers();
        issue();
        enqueue();
        fetch();

        // Event-driven fast-forward: after ticking cycle C, every
        // cycle before the next event provably repeats this tick's
        // no-op, so the whole idle span [C, next) is accounted in
        // closed form and _cycle jumps straight to the event. The
        // drained() guard keeps the final tick advancing by exactly
        // one cycle, preserving the non-skipping end cycle.
        std::uint64_t next = _cycle + 1;
        if (_params.cycleSkip && !drained()) {
            std::uint64_t ev = nextEventCycle(max_cycles);
            if (ev > next) {
                _cyclesSkipped += ev - next;
                next = ev;
            }
        }
        const std::uint64_t span = next - _cycle;

        sampleOccupancy(span);
        statCycles += static_cast<double>(span);
        bool throttled = _cycle < _throttleUntil;
        if (throttled)
            statThrottleCycles += static_cast<double>(
                std::min(next, _throttleUntil) - _cycle);
        if (_tw) {
            if (throttled && !_throttleSliceOpen)
                _tw->begin(trace::tracks::throttle, "fetch_throttle",
                           _cycle, {{"until", _throttleUntil}});
            else if (!throttled && _throttleSliceOpen)
                _tw->end(trace::tracks::throttle, _cycle);
            _throttleSliceOpen = throttled;
            std::size_t waiting = _iq.size() - _iqIssued;
            if (_iq.size() != _tracedOccupancy ||
                waiting != _tracedWaiting) {
                _tw->counter(
                    "iq_occupancy", _cycle,
                    {{"valid",
                      static_cast<std::uint64_t>(_iq.size())},
                     {"waiting",
                      static_cast<std::uint64_t>(waiting)}});
                _tracedOccupancy = _iq.size();
                _tracedWaiting = waiting;
            }
            if (_throttleSliceOpen && _throttleUntil < next) {
                // The throttle expires inside the skipped span: emit
                // the end event at the cycle the per-cycle loop
                // would have, keeping the trace byte-identical.
                _tw->end(trace::tracks::throttle, _throttleUntil);
                _throttleSliceOpen = false;
            }
        }
        if (_sampler && _windowOpen) {
            // The cumulative counters (and the queue state) hold
            // their post-tick values through the whole idle span, so
            // one batch advance covers [C, next). Materializing the
            // counter snapshot costs five double->int conversions;
            // only pay it when the span closes an epoch.
            if (_sampler->needsCounters(span)) {
                _sampler->advance(_cycle, span, snapshotCounters());
            } else {
                _sampler->advanceMidEpoch(span, _iq.size(),
                                          _iq.size() - _iqIssued);
            }
        }
        if (span > 1) {
            // The issue stage's per-cycle bookkeeping for the inert
            // cycles: zero-width issue samples, and the stall reason
            // (constant across the span by construction — every
            // classification flip is itself an event).
            statIssueWidth.sample(0.0, span - 1);
            if (_params.issueWidth > 0)
                stallReasonAt(_cycle + 1) +=
                    static_cast<double>(span - 1);
        }
        _cycle = next;
        if (_cycle >= 0xffffffffULL)
            SER_FATAL("pipeline: run exceeded 2^32 cycles; trace "
                      "records use 32-bit cycles");
    }

    if (_tw && _throttleSliceOpen) {
        _tw->end(trace::tracks::throttle, _cycle);
        _throttleSliceOpen = false;
    }
    if (_sampler)
        _sampler->finish(_cycle, snapshotCounters());
    SER_DPRINTF(Pipeline,
                "run: drained at cycle {}, {} committed, {} cycles "
                "skipped", _cycle, _committedTotal, _cyclesSkipped);

    // Flush the run's totals to the prof layer in one batch — a
    // local accumulator in the loop, one Counter::add here, so the
    // tick loop itself carries no telemetry cost. The tick/skip
    // counts are simulator-speed observations (they change under
    // --no-cycle-skip); committed instructions and the drain cycle
    // are architectural and byte-stable across jobs and skip modes.
    {
        static prof::Counter ticks(
            "speed.tick_loop_iterations",
            "Tick-loop iterations executed (events, not cycles, "
            "under cycle skipping).");
        static prof::Counter skipped(
            "speed.cycles_skipped",
            "Idle cycles fast-forwarded by the event-driven "
            "scheduler.");
        static prof::Counter cycles(
            "pipeline.simulated_cycles",
            "Total simulated cycles (identical with or without "
            "cycle skipping).");
        static prof::Counter commits(
            "pipeline.committed_insts",
            "Committed instructions across all simulations.");
        ticks.add(loop_ticks);
        skipped.add(_cyclesSkipped);
        cycles.add(_cycle);
        commits.add(_committedTotal);
    }

    _trace.startCycle = _windowStart;
    _trace.endCycle = _cycle;
    return std::move(_trace);
}

IntervalCounters
InOrderPipeline::snapshotCounters() const
{
    IntervalCounters c;
    c.committed = static_cast<std::uint64_t>(statCommitted.value());
    c.fetched = static_cast<std::uint64_t>(statFetched.value());
    c.mispredicts =
        static_cast<std::uint64_t>(statMispredicts.value());
    c.triggerSquashes =
        static_cast<std::uint64_t>(statTriggerSquashes.value());
    c.triggerSquashedInsts = static_cast<std::uint64_t>(
        statTriggerSquashedInsts.value());
    c.iqOccupancy = _iq.size();
    c.iqWaiting = _iq.size() - _iqIssued;
    return c;
}

/**
 * The earliest cycle after _cycle at which any pipeline stage could
 * act (or any stat/trace observation could change), given that the
 * tick of _cycle just completed. Every stage is driven by a
 * scoreboard cycle, a queued event cycle, or a structural condition
 * that only another stage can change, so the minimum below is a
 * provable lower bound: every cycle strictly before it repeats the
 * just-executed no-op tick exactly. Returns at most `limit`
 * (clamped also to the 32-bit trace ceiling) so a hang still hits
 * the same panic as per-cycle ticking.
 */
std::uint64_t
InOrderPipeline::nextEventCycle(std::uint64_t limit) const
{
    std::uint64_t next =
        std::min<std::uint64_t>(limit, 0xffffffffULL);
    auto consider = [&](std::uint64_t c) {
        if (c > _cycle && c < next)
            next = c;
    };

    // Evict/commit: the queue head is issued and completes later (the
    // issued prefix completes in order, so the head is the minimum).
    if (!_iq.empty() && _iq.front()->issued())
        consider(_iq.front()->completeCycle);

    // Branch resolution: the deque is ordered by resolve cycle.
    if (!_resolutions.empty())
        consider(_resolutions.front().cycle);

    // Trigger detections (unordered, but tiny).
    for (const TriggerEvent &t : _triggers)
        consider(t.detectCycle);

    // Issue: the oldest non-issued instruction can issue once its
    // age and operand gates all pass...
    if (_iqIssued < _iq.size()) {
        const DynInst &head = *_iq[_iqIssued];
        const isa::StaticInst &inst = head.inst;
        const isa::OpInfo &oi = inst.info();
        using isa::RegClass;
        auto ready_cycle = [&](RegClass rc,
                               std::uint8_t reg) -> std::uint64_t {
            switch (rc) {
              case RegClass::Int: return _intReady[reg];
              case RegClass::Fp: return _fpReady[reg];
              case RegClass::Pred: return _predReady[reg];
              case RegClass::None: return 0;
            }
            return 0;
        };
        std::uint64_t r1 = ready_cycle(oi.src1Class, inst.src1());
        std::uint64_t r2 = ready_cycle(oi.src2Class, inst.src2());
        std::uint64_t rp = _predReady[inst.qp()];
        std::uint64_t t = std::max(head.enqueueCycle + 1, _cycle + 1);
        t = std::max(t, rp);
        if (head.wrongPath || head.qpTrue)
            t = std::max({t, r1, r2});
        consider(t);
        // ...and the stall-reason classification (load vs exec)
        // re-evaluates whenever any pending operand write lands,
        // even for operands issue itself would not wait on.
        consider(r1);
        consider(r2);
        consider(rp);
    }

    // Enqueue: the front-end head ages into a free queue entry.
    if (!_fePipe.empty() && !_freeEntries.empty())
        consider(std::max(
            _fePipe.front()->fetchCycle + _params.frontEndDepth,
            _cycle + 1));

    // Fetch: something is fetchable (wrong-path image pc in range, a
    // replay pending, or the oracle stream not yet flagged done —
    // flagging done *is* fetch's act) and the front end has room;
    // it resumes once both the redirect and the throttle lift.
    const std::size_t fe_cap =
        static_cast<std::size_t>(_params.frontEndDepth) *
        _params.enqueueWidth;
    bool fetchable =
        _wrongPathMode
            ? _wrongPc < _program.size()
            : (!_replay.empty() || !_doneFetching);
    if (fetchable && _fePipe.size() < fe_cap)
        consider(std::max(
            {_fetchResumeCycle, _throttleUntil, _cycle + 1}));

    return next;
}

void
InOrderPipeline::sampleOccupancy(std::uint64_t weight)
{
    statIqOccupancy.sample(static_cast<double>(_iq.size()), weight);
    statIqValid.sample(
        static_cast<double>(_iq.size() - _iqIssued), weight);
}

void
InOrderPipeline::finalizeIncarnation(const DynInst &di,
                                     std::uint64_t evict_cycle,
                                     std::uint8_t extra_flags)
{
    IncarnationRecord rec;
    rec.staticIdx = di.pc;
    rec.oracleSeq = di.wrongPath
                        ? noSeq32
                        : static_cast<std::uint32_t>(di.oracleSeq);
    rec.enqueueCycle = static_cast<std::uint32_t>(di.enqueueCycle);
    rec.issueCycle =
        di.issued() ? static_cast<std::uint32_t>(di.issueCycle)
                    : noCycle32;
    rec.evictCycle = static_cast<std::uint32_t>(evict_cycle);
    rec.iqEntry = di.iqEntry;
    std::uint8_t flags = extra_flags;
    if (di.wrongPath)
        flags |= incWrongPath;
    else if (!di.qpTrue)
        flags |= incPredFalse;
    rec.flags = flags;
    _trace.incarnations.push_back(rec);

    if (_tw) {
        // One slice per residency on the physical entry's track.
        // Residencies of one entry never overlap and are finalized
        // in evict order, so both events can be written here and the
        // track stays monotonic. The outcome is known now, so it
        // rides on the B event's args.
        const char *outcome = "evict";
        if (extra_flags & incCommitted)
            outcome = "commit";
        else if (extra_flags & incSquashTrigger)
            outcome = "trigger_squash";
        else if (extra_flags & incSquashMispredict)
            outcome = "mispredict_squash";
        std::uint32_t tid = trace::tracks::iqBase + rec.iqEntry;
        _tw->begin(
            tid, di.inst.toString(), rec.enqueueCycle,
            {{"seq", di.seq},
             {"pc", static_cast<std::uint64_t>(di.pc)},
             {"fetch", static_cast<std::uint64_t>(di.fetchCycle)},
             {"issue",
              rec.issueCycle == noCycle32
                  ? std::int64_t{-1}
                  : static_cast<std::int64_t>(rec.issueCycle)},
             {"outcome", outcome},
             {"wrong_path", di.wrongPath ? 1 : 0}});
        _tw->end(tid, evict_cycle);
    }
}

void
InOrderPipeline::evictAndCommit()
{
    while (!_iq.empty()) {
        DynInstPtr front = _iq.front();
        if (!front->issued() || front->completeCycle > _cycle)
            break;
        if (front->wrongPath)
            SER_PANIC("pipeline: wrong-path instruction reached "
                      "commit (seq {})", front->seq);
        SER_DPRINTF(IQ, "cycle {}: commit seq {} pc {} entry {}",
                    _cycle, front->seq, front->pc, front->iqEntry);
        finalizeIncarnation(*front, _cycle, incCommitted);
        _freeEntries.push_back(front->iqEntry);
        _iq.pop_front();
        _pool.release(front);
        --_iqIssued;

        ++_committedTotal;
        if (_windowOpen) {
            ++_trace.committedInsts;
            ++statCommitted;
        } else if (_committedTotal >= _warmupInsts) {
            _windowOpen = true;
            _windowStart = _cycle;
            resetStats();
            if (_sampler)
                _sampler->windowOpen(_cycle);
            if (_tw)
                _tw->instant(trace::tracks::pipeline, "window_open",
                             _cycle,
                             {{"warmup_commits", _committedTotal}});
            SER_DPRINTF(Pipeline,
                        "cycle {}: window opens after {} warmup "
                        "commits", _cycle, _committedTotal);
        }
    }
}

void
InOrderPipeline::resolveBranches()
{
    while (!_resolutions.empty() &&
           _resolutions.front().cycle <= _cycle) {
        DynInstPtr branch = _resolutions.front().inst;
        _resolutions.pop_front();

        // Train the direction predictor and the BTB.
        if (branch->usedDirectionPredictor) {
            _dirPred->update(branch->pc, branch->actualTaken,
                             branch->predLookup);
            _dirPred->recordResolution(!branch->mispredicted);
        }
        if (branch->inst.opcode() == isa::Opcode::Bri &&
            branch->actualTaken) {
            _btb->update(branch->pc, branch->actualNextPc);
        }

        if (branch->mispredicted) {
            ++statMispredicts;
            SER_DPRINTF(Pipeline,
                        "cycle {}: mispredict resolved, branch seq "
                        "{} pc {}", _cycle, branch->seq, branch->pc);
            if (_tw)
                _tw->instant(
                    trace::tracks::pipeline, "mispredict_squash",
                    _cycle,
                    {{"branch_pc",
                      static_cast<std::uint64_t>(branch->pc)},
                     {"branch_seq", branch->seq}});
            doMispredictSquash(branch);
        }
    }
}

void
InOrderPipeline::doMispredictSquash(const DynInstPtr &branch)
{
    // The branch is issued and still resident (resolve < evict), and
    // the queue is seq-ordered, so everything after its position is
    // younger and must go.
    std::size_t bi = _iq.size();
    for (std::size_t i = 0; i < _iq.size(); ++i) {
        if (_iq[i]->seq == branch->seq) {
            bi = i;
            break;
        }
    }
    if (bi == _iq.size())
        SER_PANIC("pipeline: resolving branch seq {} not in queue",
                  branch->seq);

    for (std::size_t i = bi + 1; i < _iq.size(); ++i) {
        DynInstPtr victim = _iq[i];
        if (!victim->wrongPath)
            SER_PANIC("pipeline: correct-path instruction younger "
                      "than an unresolved mispredict (seq {})",
                      victim->seq);
        finalizeIncarnation(*victim, _cycle, incSquashMispredict);
        _freeEntries.push_back(victim->iqEntry);
        _pool.release(victim);
    }
    _iq.resize(bi + 1);
    _iqIssued = std::min(_iqIssued, bi + 1);

    // Everything in the front end is younger than the branch.
    for (DynInstPtr di : _fePipe)
        _pool.release(di);
    _fePipe.clear();

    // Repair speculative predictor state: history as of just after
    // this branch's actual outcome; RAS rewound, then replayed.
    if (branch->usedDirectionPredictor)
        _dirPred->restoreHistory(branch->predLookup,
                                 branch->actualTaken);
    if (branch->rasCheckpointed) {
        _ras->restore(branch->rasCp);
        if (branch->actualTaken && branch->inst.isCall())
            _ras->push(branch->pc + 1);
        else if (branch->actualTaken && branch->inst.isReturn())
            _ras->pop();
    }

    _wrongPathMode = false;
    _fetchResumeCycle = std::max(
        _fetchResumeCycle, _cycle + _params.redirectDelay);
}

void
InOrderPipeline::processTriggers()
{
    if (_triggers.empty())
        return;
    bool squash = false;
    std::uint64_t throttle_until = 0;
    auto it = _triggers.begin();
    while (it != _triggers.end()) {
        if (it->detectCycle > _cycle) {
            ++it;
            continue;
        }
        if (_policy) {
            ExposureDecision d = _policy->onLoadServiced(
                it->level, it->detectCycle, it->fillCycle);
            if (_tw && (d.squash || d.throttleUntilCycle))
                _tw->instant(
                    trace::tracks::pipeline, "trigger_fire", _cycle,
                    {{"level", static_cast<int>(it->level)},
                     {"squash", d.squash ? 1 : 0},
                     {"throttle_until", d.throttleUntilCycle}});
            squash = squash || d.squash;
            throttle_until =
                std::max(throttle_until, d.throttleUntilCycle);
        }
        it = _triggers.erase(it);
    }
    if (throttle_until > _throttleUntil)
        _throttleUntil = throttle_until;
    if (squash)
        doTriggerSquash();
}

void
InOrderPipeline::doTriggerSquash()
{
    // Victims: the not-yet-issued queue suffix plus the whole front
    // end, oldest first. Correct-path victims are replayed through
    // fetch; wrong-path victims just die (their mispredicted branch,
    // if squashed too, is replayed and will re-predict).
    std::vector<DynInstPtr> victims;
    for (std::size_t i = _iqIssued; i < _iq.size(); ++i)
        victims.push_back(_iq[i]);
    std::size_t iq_victims = victims.size();
    for (const auto &di : _fePipe)
        victims.push_back(di);
    if (victims.empty())
        return;

    ++statTriggerSquashes;
    statTriggerSquashedInsts += static_cast<double>(iq_victims);
    if (_tw)
        _tw->instant(
            trace::tracks::pipeline, "trigger_squash", _cycle,
            {{"iq_victims", static_cast<std::uint64_t>(iq_victims)},
             {"fe_victims", static_cast<std::uint64_t>(
                                victims.size() - iq_victims)}});
    SER_DPRINTF(Trigger,
                "cycle {}: trigger squash, {} IQ victims, {} "
                "front-end victims", _cycle, iq_victims,
                victims.size() - iq_victims);

    for (std::size_t i = 0; i < iq_victims; ++i) {
        finalizeIncarnation(*victims[i], _cycle, incSquashTrigger);
        _freeEntries.push_back(victims[i]->iqEntry);
    }
    _iq.resize(_iqIssued);
    _fePipe.clear();

    // Rewind speculative predictor state to before the oldest victim
    // that touched it; every victim will re-predict at refetch.
    for (const auto &victim : victims) {
        if (victim->usedDirectionPredictor) {
            _dirPred->rewindHistory(victim->predLookup);
        }
        if (victim->rasCheckpointed) {
            _ras->restore(victim->rasCp);
        }
        if (victim->usedDirectionPredictor || victim->rasCheckpointed)
            break;
    }

    // If the branch whose misprediction put fetch on the wrong path
    // is itself squashed, that misprediction evaporates: it will be
    // re-predicted at replay.
    std::deque<ReplayItem> replaced;
    for (const auto &victim : victims) {
        if (victim->wrongPath)
            continue;
        if (victim->mispredicted)
            _wrongPathMode = false;
        ReplayItem item;
        item.oracleSeq = victim->oracleSeq;
        item.pc = victim->pc;
        item.inst = victim->inst;
        item.qpTrue = victim->qpTrue;
        item.actualTaken = victim->actualTaken;
        item.actualNextPc = victim->actualNextPc;
        item.memAddr = victim->memAddr;
        replaced.push_back(item);
    }
    // New victims are older than anything already awaiting replay.
    for (auto it = replaced.rbegin(); it != replaced.rend(); ++it)
        _replay.push_front(*it);

    // Everything a victim carried has been copied out (incarnation
    // record, predictor repair, replay item); recycle the slots.
    for (DynInstPtr victim : victims)
        _pool.release(victim);
}

bool
InOrderPipeline::operandsReady(const DynInst &di) const
{
    const isa::StaticInst &inst = di.inst;
    if (_predReady[inst.qp()] > _cycle)
        return false;
    // A nullified instruction consumes only its predicate.
    bool needs_sources = di.wrongPath || di.qpTrue;
    if (!needs_sources)
        return true;
    const isa::OpInfo &oi = inst.info();
    using isa::RegClass;
    auto ready = [&](RegClass rc, std::uint8_t reg) {
        switch (rc) {
          case RegClass::Int: return _intReady[reg] <= _cycle;
          case RegClass::Fp: return _fpReady[reg] <= _cycle;
          case RegClass::Pred: return _predReady[reg] <= _cycle;
          case RegClass::None: return true;
        }
        return true;
    };
    if (!ready(oi.src1Class, inst.src1()))
        return false;
    if (!ready(oi.src2Class, inst.src2()))
        return false;
    return true;
}

void
InOrderPipeline::issueOne(DynInst &di)
{
    di.issueCycle = _cycle;
    di.completeCycle = _cycle + _params.evictDelay;
    SER_DPRINTF(IQ, "cycle {}: issue seq {} pc {}{}", _cycle, di.seq,
                di.pc, di.wrongPath ? " (wrong path)" : "");

    const isa::StaticInst &inst = di.inst;
    bool executes = !di.wrongPath && di.qpTrue;

    if (executes && inst.isLoad()) {
        memory::AccessResult r = _dcache->access(di.memAddr, _cycle);
        std::uint64_t fill = _cycle + r.latency;
        std::uint8_t dst = inst.dst();
        if (inst.writesIntReg() && dst != 0) {
            _intReady[dst] = fill;
            _intByLoad[dst] = true;
        } else if (inst.writesFpReg() && dst > 1) {
            _fpReady[dst] = fill;
            _fpByLoad[dst] = true;
        }
        if (r.level != memory::HitLevel::L0) {
            // The memory system's miss signal arrives once the next
            // level's lookup fails; for a secondary (MSHR) miss the
            // outstanding request is found at the L0 lookup.
            unsigned detect = 0;
            if (r.secondary) {
                detect = _params.hierarchy.l0.hitLatency;
            } else {
                switch (r.level) {
                  case memory::HitLevel::L1:
                    detect = _params.hierarchy.l0.hitLatency;
                    break;
                  case memory::HitLevel::L2:
                    detect = _params.hierarchy.l1.hitLatency;
                    break;
                  case memory::HitLevel::Memory:
                    detect = _params.hierarchy.l2.hitLatency;
                    break;
                  case memory::HitLevel::L0:
                    break;
                }
            }
            _triggers.push_back(
                {_cycle + detect, fill, r.level});
        }
    } else if (executes && inst.isStore()) {
        _dcache->access(di.memAddr, _cycle);
    } else if (executes && inst.isPrefetch()) {
        _dcache->prefetch(di.memAddr, _cycle);
    } else if (executes && inst.hasDst()) {
        std::uint64_t ready = _cycle + latencyOf(inst);
        std::uint8_t dst = inst.dst();
        if (inst.writesIntReg() && dst != 0) {
            _intReady[dst] = ready;
            _intByLoad[dst] = false;
        } else if (inst.writesFpReg() && dst > 1) {
            _fpReady[dst] = ready;
            _fpByLoad[dst] = false;
        } else if (inst.writesPredReg() && dst != 0) {
            _predReady[dst] = ready;
        }
    }

    if (inst.isBranch() && !di.wrongPath) {
        // Correct-path control resolves (and possibly redirects)
        // after the resolve delay; wrong-path control never
        // resolves — it dies with its mispredicted ancestor.
        _resolutions.push_back(
            {_cycle + _params.branchResolveDelay, nullptr});
    }
}

/** Why the oldest non-issued instruction cannot issue at `cycle`,
 * as the scalar to charge. Factored out of recordStallReason so the
 * cycle-skipping scheduler can charge a whole idle span to the same
 * (provably constant) classification in one weighted add. */
statistics::Scalar &
InOrderPipeline::stallReasonAt(std::uint64_t cycle)
{
    if (_iqIssued >= _iq.size())
        return statStallEmpty;
    const DynInst &di = *_iq[_iqIssued];
    if (di.enqueueCycle >= cycle)
        return statStallEmpty;
    const isa::StaticInst &inst = di.inst;
    const isa::OpInfo &oi = inst.info();
    bool on_load = false;
    auto check = [&](isa::RegClass rc, std::uint8_t reg) {
        if (rc == isa::RegClass::Int && _intReady[reg] > cycle &&
            _intByLoad[reg])
            on_load = true;
        if (rc == isa::RegClass::Fp && _fpReady[reg] > cycle &&
            _fpByLoad[reg])
            on_load = true;
    };
    check(oi.src1Class, inst.src1());
    check(oi.src2Class, inst.src2());
    if (on_load)
        return statStallLoad;
    return statStallExec;
}

/** Why the oldest non-issued instruction cannot issue (stats). */
void
InOrderPipeline::recordStallReason()
{
    ++stallReasonAt(_cycle);
}

void
InOrderPipeline::issue()
{
    unsigned budget = _params.issueWidth;
    unsigned issued = 0;
    while (budget > 0 && _iqIssued < _iq.size()) {
        DynInstPtr &di = _iq[_iqIssued];
        if (di->enqueueCycle >= _cycle)
            break;  // entered the queue this cycle
        if (!operandsReady(*di))
            break;  // strict in-order issue
        issueOne(*di);
        if (di->inst.isBranch() && !di->wrongPath)
            _resolutions.back().inst = di;
        ++_iqIssued;
        --budget;
        ++issued;
    }
    if (budget > 0)
        recordStallReason();
    statIssueWidth.sample(static_cast<double>(issued));
}

void
InOrderPipeline::enqueue()
{
    unsigned budget = _params.enqueueWidth;
    while (budget > 0 && !_fePipe.empty() && !_freeEntries.empty()) {
        DynInstPtr di = _fePipe.front();
        if (di->fetchCycle + _params.frontEndDepth > _cycle)
            break;
        _fePipe.pop_front();
        di->iqEntry = _freeEntries.back();
        _freeEntries.pop_back();
        di->enqueueCycle = _cycle;
        SER_DPRINTF(IQ, "cycle {}: enqueue seq {} pc {} entry {}",
                    _cycle, di->seq, di->pc, di->iqEntry);
        _iq.push_back(di);
        --budget;
    }
}

void
InOrderPipeline::handleControlPrediction(DynInstPtr &di,
                                         bool &taken_break)
{
    const isa::StaticInst &inst = di->inst;
    if (!inst.isBranch())
        return;

    di->rasCp = _ras->checkpoint();
    di->rasCheckpointed = true;

    bool pred_taken;
    if (inst.qp() == 0) {
        pred_taken = true;
    } else {
        di->predLookup = _dirPred->predict(di->pc);
        di->usedDirectionPredictor = true;
        pred_taken = di->predLookup.taken;
    }

    std::uint32_t pred_target = di->pc + 1;
    if (pred_taken) {
        if (inst.isDirectBranch()) {
            pred_target = static_cast<std::uint32_t>(
                static_cast<std::uint32_t>(inst.imm()));
        } else if (inst.isReturn()) {
            pred_target = _ras->pop();
        } else {  // bri
            pred_target =
                _btb->lookup(di->pc).value_or(di->pc + 1);
        }
        if (inst.isCall())
            _ras->push(di->pc + 1);
    }
    di->predictedTaken = pred_taken;
    di->predictedTarget = pred_target;

    if (di->wrongPath) {
        // No oracle outcome: fetch simply follows the prediction.
        _wrongPc = pred_taken ? pred_target : di->pc + 1;
    } else {
        di->mispredicted =
            pred_taken != di->actualTaken ||
            (di->actualTaken && pred_target != di->actualNextPc);
        if (di->mispredicted) {
            _wrongPathMode = true;
            _wrongPc = pred_taken ? pred_target : di->pc + 1;
        }
    }
    if (pred_taken)
        taken_break = true;
}

DynInstPtr
InOrderPipeline::fetchOracle(bool &taken_break)
{
    isa::StepInfo si;
    isa::Termination term = _oracle->step(&si);
    if (term == isa::Termination::Trap)
        SER_FATAL("pipeline: program trapped at pc {} after {} "
                  "instructions", _oracle->pc(), _oracle->steps());

    DynInstPtr di = _pool.allocate();
    di->seq = _nextSeq++;
    di->oracleSeq = si.seq;
    di->pc = si.pc;
    di->inst = si.inst;
    di->qpTrue = si.qpTrue;
    di->actualTaken = si.taken;
    di->actualNextPc = si.nextPc;
    di->memAddr = si.memAddr;
    di->fetchCycle = _cycle;

    CommitRecord cr;
    cr.staticIdx = si.pc;
    cr.qpTrue = si.qpTrue ? 1 : 0;
    cr.memAddr = (si.qpTrue && si.inst.isMem() &&
                  !si.inst.isPrefetch())
                     ? si.memAddr
                     : 0;
    _trace.commits.push_back(cr);

    if (term == isa::Termination::Halted) {
        _doneFetching = true;
        _trace.programHalted = true;
    } else {
        handleControlPrediction(di, taken_break);
    }
    return di;
}

DynInstPtr
InOrderPipeline::fetchReplay(bool &taken_break)
{
    ReplayItem item = _replay.front();
    _replay.pop_front();

    DynInstPtr di = _pool.allocate();
    di->seq = _nextSeq++;
    di->oracleSeq = item.oracleSeq;
    di->pc = item.pc;
    di->inst = item.inst;
    di->qpTrue = item.qpTrue;
    di->actualTaken = item.actualTaken;
    di->actualNextPc = item.actualNextPc;
    di->memAddr = item.memAddr;
    di->fetchCycle = _cycle;

    if (!di->inst.isHalt())
        handleControlPrediction(di, taken_break);
    ++statReplayFetched;
    return di;
}

DynInstPtr
InOrderPipeline::fetchWrongPath(bool &taken_break)
{
    DynInstPtr di = _pool.allocate();
    di->seq = _nextSeq++;
    di->pc = _wrongPc;
    di->inst = _program.inst(_wrongPc);
    di->wrongPath = true;
    di->fetchCycle = _cycle;

    _wrongPc = _wrongPc + 1;  // default; prediction may redirect
    if (di->inst.isBranch())
        handleControlPrediction(di, taken_break);
    ++statWrongPathFetched;
    return di;
}

void
InOrderPipeline::fetch()
{
    if (_cycle < _fetchResumeCycle || _cycle < _throttleUntil)
        return;

    const std::size_t fe_cap =
        static_cast<std::size_t>(_params.frontEndDepth) *
        _params.enqueueWidth;
    unsigned budget = _params.fetchWidth;
    while (budget > 0 && _fePipe.size() < fe_cap) {
        bool taken_break = false;
        DynInstPtr di;
        if (_wrongPathMode) {
            if (_wrongPc >= _program.size())
                break;  // ran off the image; wait for resolution
            di = fetchWrongPath(taken_break);
        } else if (!_replay.empty()) {
            di = fetchReplay(taken_break);
        } else {
            if (_doneFetching ||
                _trace.commits.size() >= _params.maxInsts) {
                _doneFetching = true;
                break;
            }
            di = fetchOracle(taken_break);
        }
        _fePipe.push_back(di);
        ++statFetched;
        --budget;
        if (taken_break) {
            // The fetch group ends at a predicted-taken branch and
            // the front end pays a redirect bubble.
            _fetchResumeCycle = std::max(
                _fetchResumeCycle,
                _cycle + 1 + _params.takenBranchBubble);
            break;
        }
        if (_doneFetching)
            break;
    }
}

} // namespace cpu
} // namespace ser
