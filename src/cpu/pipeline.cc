#include "pipeline.hh"

#include <algorithm>

#include "cpu/sampler.hh"
#include "sim/compiler.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"
#include "sim/trace_event.hh"

namespace ser
{
namespace cpu
{

namespace
{
/** Ready-cycle array a RegClass::None operand indexes: always 0,
 * i.e. ready since cycle 0. Sized like the real register files so
 * any 6-bit register field is in range. */
constexpr std::uint64_t kNeverPending[64] = {};
} // namespace

unsigned
PipelineParams::latencyFor(isa::OpClass oc) const
{
    using isa::OpClass;
    switch (oc) {
      case OpClass::Nop: return 1;
      case OpClass::IntAlu: return latIntAlu;
      case OpClass::IntMul: return latIntMul;
      case OpClass::IntDiv: return latIntDiv;
      case OpClass::FpAdd: return latFpAdd;
      case OpClass::FpMul: return latFpMul;
      case OpClass::FpDiv: return latFpDiv;
      case OpClass::FpCvt: return latFpCvt;
      case OpClass::Load: return 2;   // overridden by the dcache
      case OpClass::Store: return 1;
      case OpClass::Branch: return 1;
      case OpClass::Other: return 1;
    }
    return 1;
}

InOrderPipeline::InOrderPipeline(const isa::Program &program,
                                 const PipelineParams &params,
                                 statistics::StatGroup *parent)
    : StatGroup("cpu", parent), _program(program), _params(params),
      _oracle(std::make_unique<isa::Executor>(program)),
      _dcache(std::make_unique<memory::CacheHierarchy>(
          params.hierarchy, this)),
      _dirPred(branch::makeDirectionPredictor(
          params.predictor, params.predictorEntries,
          params.historyBits, this)),
      _btb(std::make_unique<branch::Btb>(params.btbEntries, this)),
      _ras(std::make_unique<branch::Ras>(params.rasEntries, this)),
      statCycles(this, "cycles", "simulated cycles in the window"),
      statCommitted(this, "committed",
                    "instructions committed in the window"),
      statFetched(this, "fetched", "instructions fetched (all paths)"),
      statWrongPathFetched(this, "wrong_path_fetched",
                           "wrong-path instructions fetched"),
      statReplayFetched(this, "replay_fetched",
                        "squashed instructions refetched"),
      statMispredicts(this, "mispredicts",
                      "branches resolved mispredicted"),
      statTriggerSquashes(this, "trigger_squashes",
                          "exposure-trigger squash events"),
      statTriggerSquashedInsts(this, "trigger_squashed_insts",
                               "queue entries squashed by triggers"),
      statThrottleCycles(this, "throttle_cycles",
                         "cycles fetch was throttled"),
      statIqOccupancy(this, "iq_occupancy",
                      "valid IQ entries per cycle"),
      statIqValid(this, "iq_waiting",
                  "not-yet-issued IQ entries per cycle"),
      statIssueWidth(this, "issue_width",
                     "instructions issued per cycle", 0,
                     params.issueWidth + 1, 1),
      statStallLoad(this, "stall_load",
                    "issue cycles lost waiting on load data"),
      statStallExec(this, "stall_exec",
                    "issue cycles lost waiting on execution results"),
      statStallEmpty(this, "stall_empty",
                     "issue cycles with an empty (or fresh) queue")
{
    if (_params.iqEntries == 0 || _params.iqEntries > 0xffff)
        SER_FATAL("pipeline: bad iq size {}", _params.iqEntries);
    if (_params.branchResolveDelay >= _params.evictDelay)
        SER_FATAL("pipeline: branchResolveDelay ({}) must be < "
                  "evictDelay ({}) so branches resolve before their "
                  "queue entry retires",
                  _params.branchResolveDelay, _params.evictDelay);
    _freeEntries.resize(_params.iqEntries);
    for (unsigned i = 0; i < _params.iqEntries; ++i)
        _freeEntries[i] = static_cast<std::uint16_t>(
            _params.iqEntries - 1 - i);
    _intReady.assign(isa::numIntRegs, 0);
    _fpReady.assign(isa::numFpRegs, 0);
    _predReady.assign(isa::numPredRegs, 0);
    _intByLoad.assign(isa::numIntRegs, 0);
    _fpByLoad.assign(isa::numFpRegs, 0);
    _readyByClass = {kNeverPending, _intReady.data(),
                     _fpReady.data(), _predReady.data()};
    _trace.program = &program;
    _trace.iqEntries = _params.iqEntries;

    // The in-flight population is bounded by the front-end pipe
    // capacity plus the queue; reserving it up front makes the
    // fetch→commit loop allocation-free. The rings are sized to the
    // same architectural bounds (resolutions: at most one pending
    // branch per queue entry).
    const std::size_t fe_cap =
        static_cast<std::size_t>(_params.frontEndDepth) *
        _params.enqueueWidth;
    _arena.reserve(fe_cap + _params.iqEntries);
    _iq.reset(_params.iqEntries);
    _fePipe.reset(fe_cap);
    _resolutions.reset(_params.iqEntries);

    // Pre-size the trace from the maxInsts hint (clamped: the vector
    // blocks are virtual until touched, but stay reasonable for the
    // pathological hint values some tests use). Incarnations get
    // headroom for replays and wrong-path fetches.
    const std::uint64_t hint =
        std::min<std::uint64_t>(_params.maxInsts, 4'000'000);
    _trace.commits.reserve(hint);
    _trace.incarnations.reserve(2 * hint);
}

InOrderPipeline::~InOrderPipeline() = default;

unsigned
InOrderPipeline::latencyOf(const isa::StaticInst &inst) const
{
    return _params.latencyFor(inst.opClass());
}

bool
InOrderPipeline::drained() const
{
    return _doneFetching && _fePipe.empty() && _iq.empty() &&
           _replay.empty() && _resolutions.empty() &&
           _triggers.empty() && !_wrongPathMode;
}

SimTrace
InOrderPipeline::run()
{
    SER_PROF_SCOPE("tick_loop");
    std::uint64_t loop_ticks = 0;
    std::uint64_t max_cycles =
        _params.maxCycles
            ? _params.maxCycles
            : _params.maxInsts * 1000 + 1'000'000;
    if (_tw) {
        _tw->threadName(trace::tracks::pipeline, "pipeline events");
        _tw->threadName(trace::tracks::throttle, "fetch throttle");
        for (unsigned i = 0; i < _params.iqEntries; ++i)
            _tw->threadName(trace::tracks::iqBase + i,
                            "iq[" + std::to_string(i) + "]");
    }
    if (_warmupInsts == 0) {
        _windowOpen = true;
        _windowStart = 0;
        if (_sampler)
            _sampler->windowOpen(0);
        if (_tw)
            _tw->instant(trace::tracks::pipeline, "window_open", 0,
                         {{"warmup_commits", std::uint64_t{0}}});
    }
    SER_DPRINTF(Pipeline,
                "run: start, warmup {} insts, max {} cycles",
                _warmupInsts, max_cycles);

    while (!drained()) {
        if (_cycle >= max_cycles)
            SER_PANIC("pipeline: exceeded {} cycles without draining "
                      "(committed {}, iq {}, fe {})",
                      max_cycles, _committedTotal, _iq.size(),
                      _fePipe.size());
        ++loop_ticks;
        evictAndCommit();
        resolveBranches();
        processTriggers();
        issue();
        enqueue();
        fetch();

        // Event-driven fast-forward: after ticking cycle C, every
        // cycle before the next event provably repeats this tick's
        // no-op, so the whole idle span [C, next) is accounted in
        // closed form and _cycle jumps straight to the event. The
        // drained() guard keeps the final tick advancing by exactly
        // one cycle, preserving the non-skipping end cycle.
        std::uint64_t next = _cycle + 1;
        if (_params.cycleSkip && !drained()) {
            std::uint64_t ev = nextEventCycle(max_cycles);
            if (ev > next) {
                _cyclesSkipped += ev - next;
                next = ev;
            }
        }
        const std::uint64_t span = next - _cycle;

        sampleOccupancy(span);
        statCycles += static_cast<double>(span);
        bool throttled = _cycle < _throttleUntil;
        if (throttled)
            statThrottleCycles += static_cast<double>(
                std::min(next, _throttleUntil) - _cycle);
        if (_tw) {
            if (throttled && !_throttleSliceOpen)
                _tw->begin(trace::tracks::throttle, "fetch_throttle",
                           _cycle, {{"until", _throttleUntil}});
            else if (!throttled && _throttleSliceOpen)
                _tw->end(trace::tracks::throttle, _cycle);
            _throttleSliceOpen = throttled;
            std::size_t waiting = _iq.size() - _iqIssued;
            if (_iq.size() != _tracedOccupancy ||
                waiting != _tracedWaiting) {
                _tw->counter(
                    "iq_occupancy", _cycle,
                    {{"valid",
                      static_cast<std::uint64_t>(_iq.size())},
                     {"waiting",
                      static_cast<std::uint64_t>(waiting)}});
                _tracedOccupancy = _iq.size();
                _tracedWaiting = waiting;
            }
            if (_throttleSliceOpen && _throttleUntil < next) {
                // The throttle expires inside the skipped span: emit
                // the end event at the cycle the per-cycle loop
                // would have, keeping the trace byte-identical.
                _tw->end(trace::tracks::throttle, _throttleUntil);
                _throttleSliceOpen = false;
            }
        }
        if (_sampler && _windowOpen) {
            // The cumulative counters (and the queue state) hold
            // their post-tick values through the whole idle span, so
            // one batch advance covers [C, next). Materializing the
            // counter snapshot costs five double->int conversions;
            // only pay it when the span closes an epoch.
            if (_sampler->needsCounters(span)) {
                _sampler->advance(_cycle, span, snapshotCounters());
            } else {
                _sampler->advanceMidEpoch(span, _iq.size(),
                                          _iq.size() - _iqIssued);
            }
        }
        if (span > 1) {
            // The issue stage's per-cycle bookkeeping for the inert
            // cycles: zero-width issue samples, and the stall reason
            // (constant across the span by construction — every
            // classification flip is itself an event).
            statIssueWidth.sample(0.0, span - 1);
            if (_params.issueWidth > 0)
                stallReasonAt(_cycle + 1) +=
                    static_cast<double>(span - 1);
        }
        _cycle = next;
        if (_cycle >= 0xffffffffULL)
            SER_FATAL("pipeline: run exceeded 2^32 cycles; trace "
                      "records use 32-bit cycles");
    }

    if (_tw && _throttleSliceOpen) {
        _tw->end(trace::tracks::throttle, _cycle);
        _throttleSliceOpen = false;
    }
    if (_sampler)
        _sampler->finish(_cycle, snapshotCounters());
    SER_DPRINTF(Pipeline,
                "run: drained at cycle {}, {} committed, {} cycles "
                "skipped", _cycle, _committedTotal, _cyclesSkipped);

    // Flush the run's totals to the prof layer in one batch — a
    // local accumulator in the loop, one Counter::add here, so the
    // tick loop itself carries no telemetry cost. The tick/skip
    // counts are simulator-speed observations (they change under
    // --no-cycle-skip); committed instructions and the drain cycle
    // are architectural and byte-stable across jobs and skip modes.
    {
        static prof::Counter ticks(
            "speed.tick_loop_iterations",
            "Tick-loop iterations executed (events, not cycles, "
            "under cycle skipping).");
        static prof::Counter skipped(
            "speed.cycles_skipped",
            "Idle cycles fast-forwarded by the event-driven "
            "scheduler.");
        static prof::Counter cycles(
            "pipeline.simulated_cycles",
            "Total simulated cycles (identical with or without "
            "cycle skipping).");
        static prof::Counter commits(
            "pipeline.committed_insts",
            "Committed instructions across all simulations.");
        ticks.add(loop_ticks);
        skipped.add(_cyclesSkipped);
        cycles.add(_cycle);
        commits.add(_committedTotal);
    }

    _trace.startCycle = _windowStart;
    _trace.endCycle = _cycle;
    return std::move(_trace);
}

IntervalCounters
InOrderPipeline::snapshotCounters() const
{
    IntervalCounters c;
    c.committed = static_cast<std::uint64_t>(statCommitted.value());
    c.fetched = static_cast<std::uint64_t>(statFetched.value());
    c.mispredicts =
        static_cast<std::uint64_t>(statMispredicts.value());
    c.triggerSquashes =
        static_cast<std::uint64_t>(statTriggerSquashes.value());
    c.triggerSquashedInsts = static_cast<std::uint64_t>(
        statTriggerSquashedInsts.value());
    c.iqOccupancy = _iq.size();
    c.iqWaiting = _iq.size() - _iqIssued;
    return c;
}

/**
 * The earliest cycle after _cycle at which any pipeline stage could
 * act (or any stat/trace observation could change), given that the
 * tick of _cycle just completed. Every stage is driven by a
 * scoreboard cycle, a queued event cycle, or a structural condition
 * that only another stage can change, so the minimum below is a
 * provable lower bound: every cycle strictly before it repeats the
 * just-executed no-op tick exactly. Returns at most `limit`
 * (clamped also to the 32-bit trace ceiling) so a hang still hits
 * the same panic as per-cycle ticking.
 */
std::uint64_t
InOrderPipeline::nextEventCycle(std::uint64_t limit) const
{
    const std::uint64_t floor = _cycle + 1;
    std::uint64_t next =
        std::min<std::uint64_t>(limit, 0xffffffffULL);
    auto consider = [&](std::uint64_t c) {
        if (c > _cycle && c < next)
            next = c;
    };

    // Every candidate below is > _cycle, so the minimum can never
    // drop under _cycle + 1: once any candidate lands there the
    // remaining (costlier) checks cannot change the answer. The
    // early returns fire on the busy-pipeline common case, where
    // something acts next cycle and no skip happens anyway.

    // Evict/commit: the queue head is issued and completes later (the
    // issued prefix completes in order, so the head is the minimum —
    // one load from the completeCycle column).
    if (!_iq.empty() && _arena.issued(_iq.front()))
        consider(_arena.completeCycle[_iq.front()]);

    // Branch resolution: the ring is ordered by resolve cycle.
    if (!_resolutions.empty())
        consider(_resolutions.front().cycle);
    if (next == floor)
        return next;

    // Trigger detections (unordered, but tiny).
    for (const TriggerEvent &t : _triggers)
        consider(t.detectCycle);
    if (next == floor)
        return next;

    // Issue: the oldest non-issued instruction can issue once its
    // age and operand gates all pass...
    if (_iqIssued < _iq.size()) {
        const InstId head = _iq[_iqIssued];
        const std::uint32_t w = _arena.opnd[head];
        std::uint64_t r1 = _readyByClass[opndSrc1Class(w)][opndSrc1(w)];
        std::uint64_t r2 = _readyByClass[opndSrc2Class(w)][opndSrc2(w)];
        std::uint64_t rp = _predReady[opndQp(w)];
        std::uint64_t t = std::max(
            _arena.enqueueCycle[head] + 1, _cycle + 1);
        t = std::max(t, rp);
        if (_arena.flags[head] & (diWrongPath | diQpTrue))
            t = std::max({t, r1, r2});
        consider(t);
        // ...and the stall-reason classification (load vs exec)
        // re-evaluates whenever any pending operand write lands,
        // even for operands issue itself would not wait on.
        consider(r1);
        consider(r2);
        consider(rp);
    }

    if (next == floor)
        return next;

    // Enqueue: the front-end head ages into a free queue entry.
    if (!_fePipe.empty() && !_freeEntries.empty())
        consider(std::max(
            _arena.fetchCycle[_fePipe.front()] +
                _params.frontEndDepth,
            _cycle + 1));
    if (next == floor)
        return next;

    // Fetch: something is fetchable (wrong-path image pc in range, a
    // replay pending, or the oracle stream not yet flagged done —
    // flagging done *is* fetch's act) and the front end has room;
    // it resumes once both the redirect and the throttle lift.
    const std::size_t fe_cap =
        static_cast<std::size_t>(_params.frontEndDepth) *
        _params.enqueueWidth;
    bool fetchable =
        _wrongPathMode
            ? _wrongPc < _program.size()
            : (!_replay.empty() || !_doneFetching);
    if (fetchable && _fePipe.size() < fe_cap)
        consider(std::max(
            {_fetchResumeCycle, _throttleUntil, _cycle + 1}));

    return next;
}

void
InOrderPipeline::sampleOccupancy(std::uint64_t weight)
{
    statIqOccupancy.sample(static_cast<double>(_iq.size()), weight);
    statIqValid.sample(
        static_cast<double>(_iq.size() - _iqIssued), weight);
}

void
InOrderPipeline::finalizeIncarnation(InstId id,
                                     std::uint64_t evict_cycle,
                                     std::uint8_t extra_flags)
{
    const std::uint8_t f = _arena.flags[id];
    IncarnationRecord rec;
    rec.staticIdx = _arena.pc[id];
    rec.oracleSeq =
        (f & diWrongPath)
            ? noSeq32
            : static_cast<std::uint32_t>(_arena.cold[id].oracleSeq);
    rec.enqueueCycle =
        static_cast<std::uint32_t>(_arena.enqueueCycle[id]);
    rec.issueCycle =
        _arena.issued(id)
            ? static_cast<std::uint32_t>(_arena.issueCycle[id])
            : noCycle32;
    rec.evictCycle = static_cast<std::uint32_t>(evict_cycle);
    rec.iqEntry = _arena.iqEntry[id];
    std::uint8_t flags = extra_flags;
    if (f & diWrongPath)
        flags |= incWrongPath;
    else if (!(f & diQpTrue))
        flags |= incPredFalse;
    rec.flags = flags;
    _trace.incarnations.push_back(rec);

    if (SER_UNLIKELY(_tw != nullptr))
        traceIncarnation(id, rec, extra_flags, evict_cycle);
}

/** The trace-writer half of finalizeIncarnation, split out so the
 * record-building half stays small enough to inline into the commit
 * loop (this path costs a toString() and an args list — far too much
 * code to drag into the hot path for a disabled-by-default writer). */
void
InOrderPipeline::traceIncarnation(InstId id,
                                  const IncarnationRecord &rec,
                                  std::uint8_t extra_flags,
                                  std::uint64_t evict_cycle)
{
    // One slice per residency on the physical entry's track.
    // Residencies of one entry never overlap and are finalized
    // in evict order, so both events can be written here and the
    // track stays monotonic. The outcome is known now, so it
    // rides on the B event's args.
    const std::uint8_t f = _arena.flags[id];
    const char *outcome = "evict";
    if (extra_flags & incCommitted)
        outcome = "commit";
    else if (extra_flags & incSquashTrigger)
        outcome = "trigger_squash";
    else if (extra_flags & incSquashMispredict)
        outcome = "mispredict_squash";
    std::uint32_t tid = trace::tracks::iqBase + rec.iqEntry;
    _tw->begin(
        tid, _arena.cold[id].inst.toString(), rec.enqueueCycle,
        {{"seq", _arena.seq[id]},
         {"pc", static_cast<std::uint64_t>(_arena.pc[id])},
         {"fetch", static_cast<std::uint64_t>(
                       _arena.fetchCycle[id])},
         {"issue",
          rec.issueCycle == noCycle32
              ? std::int64_t{-1}
              : static_cast<std::int64_t>(rec.issueCycle)},
         {"outcome", outcome},
         {"wrong_path", (f & diWrongPath) ? 1 : 0}});
    _tw->end(tid, evict_cycle);
}

void
InOrderPipeline::evictAndCommit()
{
    while (!_iq.empty()) {
        const InstId front = _iq.front();
        if (!_arena.issued(front) ||
            _arena.completeCycle[front] > _cycle)
            break;
        if (_arena.flags[front] & diWrongPath)
            SER_PANIC("pipeline: wrong-path instruction reached "
                      "commit (seq {})", _arena.seq[front]);
        SER_DPRINTF(IQ, "cycle {}: commit seq {} pc {} entry {}",
                    _cycle, _arena.seq[front], _arena.pc[front],
                    _arena.iqEntry[front]);
        finalizeIncarnation(front, _cycle, incCommitted);
        _freeEntries.push_back(_arena.iqEntry[front]);
        _iq.pop_front();
        _arena.release(front);
        --_iqIssued;

        ++_committedTotal;
        if (_windowOpen) {
            ++_trace.committedInsts;
            ++statCommitted;
        } else if (_committedTotal >= _warmupInsts) {
            _windowOpen = true;
            _windowStart = _cycle;
            resetStats();
            if (_sampler)
                _sampler->windowOpen(_cycle);
            if (_tw)
                _tw->instant(trace::tracks::pipeline, "window_open",
                             _cycle,
                             {{"warmup_commits", _committedTotal}});
            SER_DPRINTF(Pipeline,
                        "cycle {}: window opens after {} warmup "
                        "commits", _cycle, _committedTotal);
        }
    }
}

void
InOrderPipeline::resolveBranches()
{
    while (!_resolutions.empty() &&
           _resolutions.front().cycle <= _cycle) {
        const InstId branch = _resolutions.front().inst;
        _resolutions.pop_front();
        const std::uint8_t f = _arena.flags[branch];
        const InstCold &cold = _arena.cold[branch];

        // Train the direction predictor and the BTB.
        if (f & diUsedDirPred) {
            _dirPred->update(_arena.pc[branch],
                             f & diActualTaken, cold.predLookup);
            _dirPred->recordResolution(!(f & diMispredicted));
        }
        if (cold.inst.opcode() == isa::Opcode::Bri &&
            (f & diActualTaken)) {
            _btb->update(_arena.pc[branch], cold.actualNextPc);
        }

        if (f & diMispredicted) {
            ++statMispredicts;
            SER_DPRINTF(Pipeline,
                        "cycle {}: mispredict resolved, branch seq "
                        "{} pc {}", _cycle, _arena.seq[branch],
                        _arena.pc[branch]);
            if (_tw)
                _tw->instant(
                    trace::tracks::pipeline, "mispredict_squash",
                    _cycle,
                    {{"branch_pc", static_cast<std::uint64_t>(
                                       _arena.pc[branch])},
                     {"branch_seq", _arena.seq[branch]}});
            doMispredictSquash(branch);
        }
    }
}

void
InOrderPipeline::doMispredictSquash(InstId branch)
{
    // The branch is issued and still resident (resolve < evict), and
    // the queue is seq-ordered, so everything after its position is
    // younger and must go. Ids are unique while live, so the scan
    // compares ids directly instead of dereferencing for seq.
    std::size_t bi = _iq.size();
    for (std::size_t i = 0; i < _iq.size(); ++i) {
        if (_iq[i] == branch) {
            bi = i;
            break;
        }
    }
    if (bi == _iq.size())
        SER_PANIC("pipeline: resolving branch seq {} not in queue",
                  _arena.seq[branch]);

    for (std::size_t i = bi + 1; i < _iq.size(); ++i) {
        const InstId victim = _iq[i];
        if (!(_arena.flags[victim] & diWrongPath))
            SER_PANIC("pipeline: correct-path instruction younger "
                      "than an unresolved mispredict (seq {})",
                      _arena.seq[victim]);
        finalizeIncarnation(victim, _cycle, incSquashMispredict);
        _freeEntries.push_back(_arena.iqEntry[victim]);
        _arena.release(victim);
    }
    _iq.truncate(bi + 1);
    _iqIssued = std::min(_iqIssued, bi + 1);

    // Everything in the front end is younger than the branch.
    for (std::size_t i = 0; i < _fePipe.size(); ++i)
        _arena.release(_fePipe[i]);
    _fePipe.clear();

    // Repair speculative predictor state: history as of just after
    // this branch's actual outcome; RAS rewound, then replayed.
    const std::uint8_t f = _arena.flags[branch];
    const InstCold &cold = _arena.cold[branch];
    if (f & diUsedDirPred)
        _dirPred->restoreHistory(cold.predLookup,
                                 f & diActualTaken);
    if (f & diRasCheckpointed) {
        _ras->restore(cold.rasCp);
        if ((f & diActualTaken) && cold.inst.isCall())
            _ras->push(_arena.pc[branch] + 1);
        else if ((f & diActualTaken) && cold.inst.isReturn())
            _ras->pop();
    }

    _wrongPathMode = false;
    _fetchResumeCycle = std::max(
        _fetchResumeCycle, _cycle + _params.redirectDelay);
}

void
InOrderPipeline::processTriggers()
{
    if (_triggers.empty())
        return;
    bool squash = false;
    std::uint64_t throttle_until = 0;
    auto it = _triggers.begin();
    while (it != _triggers.end()) {
        if (it->detectCycle > _cycle) {
            ++it;
            continue;
        }
        if (_policy) {
            ExposureDecision d = _policy->onLoadServiced(
                it->level, it->detectCycle, it->fillCycle);
            if (_tw && (d.squash || d.throttleUntilCycle))
                _tw->instant(
                    trace::tracks::pipeline, "trigger_fire", _cycle,
                    {{"level", static_cast<int>(it->level)},
                     {"squash", d.squash ? 1 : 0},
                     {"throttle_until", d.throttleUntilCycle}});
            squash = squash || d.squash;
            throttle_until =
                std::max(throttle_until, d.throttleUntilCycle);
        }
        it = _triggers.erase(it);
    }
    if (throttle_until > _throttleUntil)
        _throttleUntil = throttle_until;
    if (squash)
        doTriggerSquash();
}

void
InOrderPipeline::doTriggerSquash()
{
    // Victims: the not-yet-issued queue suffix plus the whole front
    // end, oldest first. Correct-path victims are replayed through
    // fetch; wrong-path victims just die (their mispredicted branch,
    // if squashed too, is replayed and will re-predict).
    std::vector<InstId> victims;
    for (std::size_t i = _iqIssued; i < _iq.size(); ++i)
        victims.push_back(_iq[i]);
    std::size_t iq_victims = victims.size();
    for (std::size_t i = 0; i < _fePipe.size(); ++i)
        victims.push_back(_fePipe[i]);
    if (victims.empty())
        return;

    ++statTriggerSquashes;
    statTriggerSquashedInsts += static_cast<double>(iq_victims);
    if (_tw)
        _tw->instant(
            trace::tracks::pipeline, "trigger_squash", _cycle,
            {{"iq_victims", static_cast<std::uint64_t>(iq_victims)},
             {"fe_victims", static_cast<std::uint64_t>(
                                victims.size() - iq_victims)}});
    SER_DPRINTF(Trigger,
                "cycle {}: trigger squash, {} IQ victims, {} "
                "front-end victims", _cycle, iq_victims,
                victims.size() - iq_victims);

    for (std::size_t i = 0; i < iq_victims; ++i) {
        finalizeIncarnation(victims[i], _cycle, incSquashTrigger);
        _freeEntries.push_back(_arena.iqEntry[victims[i]]);
    }
    _iq.truncate(_iqIssued);
    _fePipe.clear();

    // Rewind speculative predictor state to before the oldest victim
    // that touched it; every victim will re-predict at refetch.
    for (const InstId victim : victims) {
        const std::uint8_t f = _arena.flags[victim];
        if (f & diUsedDirPred) {
            _dirPred->rewindHistory(_arena.cold[victim].predLookup);
        }
        if (f & diRasCheckpointed) {
            _ras->restore(_arena.cold[victim].rasCp);
        }
        if (f & (diUsedDirPred | diRasCheckpointed))
            break;
    }

    // If the branch whose misprediction put fetch on the wrong path
    // is itself squashed, that misprediction evaporates: it will be
    // re-predicted at replay.
    std::deque<ReplayItem> replaced;
    for (const InstId victim : victims) {
        const std::uint8_t f = _arena.flags[victim];
        if (f & diWrongPath)
            continue;
        if (f & diMispredicted)
            _wrongPathMode = false;
        const InstCold &cold = _arena.cold[victim];
        ReplayItem item;
        item.oracleSeq = cold.oracleSeq;
        item.pc = _arena.pc[victim];
        item.inst = cold.inst;
        item.qpTrue = f & diQpTrue;
        item.actualTaken = f & diActualTaken;
        item.actualNextPc = cold.actualNextPc;
        item.memAddr = cold.memAddr;
        replaced.push_back(item);
    }
    // New victims are older than anything already awaiting replay.
    for (auto it = replaced.rbegin(); it != replaced.rend(); ++it)
        _replay.push_front(*it);

    // Everything a victim carried has been copied out (incarnation
    // record, predictor repair, replay item); recycle the ids.
    for (const InstId victim : victims)
        _arena.release(victim);
}

bool
InOrderPipeline::operandsReady(InstId id) const
{
    const std::uint32_t w = _arena.opnd[id];
    if (_predReady[opndQp(w)] > _cycle)
        return false;
    // A nullified instruction consumes only its predicate.
    bool needs_sources =
        _arena.flags[id] & (diWrongPath | diQpTrue);
    if (!needs_sources)
        return true;
    return _readyByClass[opndSrc1Class(w)][opndSrc1(w)] <= _cycle &&
           _readyByClass[opndSrc2Class(w)][opndSrc2(w)] <= _cycle;
}

void
InOrderPipeline::issueOne(InstId id)
{
    _arena.issueCycle[id] = _cycle;
    _arena.completeCycle[id] = _cycle + _params.evictDelay;
    const std::uint8_t f = _arena.flags[id];
    SER_DPRINTF(IQ, "cycle {}: issue seq {} pc {}{}", _cycle,
                _arena.seq[id], _arena.pc[id],
                (f & diWrongPath) ? " (wrong path)" : "");

    const isa::StaticInst &inst = _arena.cold[id].inst;
    bool executes = !(f & diWrongPath) && (f & diQpTrue);

    if (executes && inst.isLoad()) {
        memory::AccessResult r =
            _dcache->access(_arena.cold[id].memAddr, _cycle);
        std::uint64_t fill = _cycle + r.latency;
        std::uint8_t dst = inst.dst();
        if (inst.writesIntReg() && dst != 0) {
            _intReady[dst] = fill;
            _intByLoad[dst] = 1;
        } else if (inst.writesFpReg() && dst > 1) {
            _fpReady[dst] = fill;
            _fpByLoad[dst] = 1;
        }
        if (r.level != memory::HitLevel::L0) {
            // The memory system's miss signal arrives once the next
            // level's lookup fails; for a secondary (MSHR) miss the
            // outstanding request is found at the L0 lookup.
            unsigned detect = 0;
            if (r.secondary) {
                detect = _params.hierarchy.l0.hitLatency;
            } else {
                switch (r.level) {
                  case memory::HitLevel::L1:
                    detect = _params.hierarchy.l0.hitLatency;
                    break;
                  case memory::HitLevel::L2:
                    detect = _params.hierarchy.l1.hitLatency;
                    break;
                  case memory::HitLevel::Memory:
                    detect = _params.hierarchy.l2.hitLatency;
                    break;
                  case memory::HitLevel::L0:
                    break;
                }
            }
            _triggers.push_back(
                {_cycle + detect, fill, r.level});
        }
    } else if (executes && inst.isStore()) {
        _dcache->access(_arena.cold[id].memAddr, _cycle);
    } else if (executes && inst.isPrefetch()) {
        _dcache->prefetch(_arena.cold[id].memAddr, _cycle);
    } else if (executes && inst.hasDst()) {
        std::uint64_t ready = _cycle + latencyOf(inst);
        std::uint8_t dst = inst.dst();
        if (inst.writesIntReg() && dst != 0) {
            _intReady[dst] = ready;
            _intByLoad[dst] = 0;
        } else if (inst.writesFpReg() && dst > 1) {
            _fpReady[dst] = ready;
            _fpByLoad[dst] = 0;
        } else if (inst.writesPredReg() && dst != 0) {
            _predReady[dst] = ready;
        }
    }

    if (inst.isBranch() && !(f & diWrongPath)) {
        // Correct-path control resolves (and possibly redirects)
        // after the resolve delay; wrong-path control never
        // resolves — it dies with its mispredicted ancestor.
        _resolutions.push_back(
            {_cycle + _params.branchResolveDelay, id});
    }
}

/** Why the oldest non-issued instruction cannot issue at `cycle`,
 * as the scalar to charge. Factored out of recordStallReason so the
 * cycle-skipping scheduler can charge a whole idle span to the same
 * (provably constant) classification in one weighted add. */
statistics::Scalar &
InOrderPipeline::stallReasonAt(std::uint64_t cycle)
{
    if (_iqIssued >= _iq.size())
        return statStallEmpty;
    const InstId head = _iq[_iqIssued];
    if (_arena.enqueueCycle[head] >= cycle)
        return statStallEmpty;
    const std::uint32_t w = _arena.opnd[head];
    constexpr auto clsInt =
        static_cast<std::uint32_t>(isa::RegClass::Int);
    constexpr auto clsFp =
        static_cast<std::uint32_t>(isa::RegClass::Fp);
    bool on_load = false;
    auto check = [&](std::uint32_t cls, std::uint32_t reg) {
        if (cls == clsInt && _intReady[reg] > cycle &&
            _intByLoad[reg])
            on_load = true;
        if (cls == clsFp && _fpReady[reg] > cycle && _fpByLoad[reg])
            on_load = true;
    };
    check(opndSrc1Class(w), opndSrc1(w));
    check(opndSrc2Class(w), opndSrc2(w));
    if (on_load)
        return statStallLoad;
    return statStallExec;
}

/** Why the oldest non-issued instruction cannot issue (stats). */
void
InOrderPipeline::recordStallReason()
{
    ++stallReasonAt(_cycle);
}

void
InOrderPipeline::issue()
{
    unsigned budget = _params.issueWidth;
    unsigned issued = 0;
    while (budget > 0 && _iqIssued < _iq.size()) {
        const InstId di = _iq[_iqIssued];
        if (_arena.enqueueCycle[di] >= _cycle)
            break;  // entered the queue this cycle
        if (!operandsReady(di))
            break;  // strict in-order issue
        issueOne(di);
        ++_iqIssued;
        --budget;
        ++issued;
    }
    if (budget > 0)
        recordStallReason();
    statIssueWidth.sample(static_cast<double>(issued));
}

void
InOrderPipeline::enqueue()
{
    unsigned budget = _params.enqueueWidth;
    while (budget > 0 && !_fePipe.empty() && !_freeEntries.empty()) {
        const InstId di = _fePipe.front();
        if (_arena.fetchCycle[di] + _params.frontEndDepth > _cycle)
            break;
        _fePipe.pop_front();
        _arena.iqEntry[di] = _freeEntries.back();
        _freeEntries.pop_back();
        _arena.enqueueCycle[di] = _cycle;
        SER_DPRINTF(IQ, "cycle {}: enqueue seq {} pc {} entry {}",
                    _cycle, _arena.seq[di], _arena.pc[di],
                    _arena.iqEntry[di]);
        _iq.push_back(di);
        --budget;
    }
}

void
InOrderPipeline::handleControlPrediction(InstId id,
                                         bool &taken_break)
{
    InstCold &cold = _arena.cold[id];
    const isa::StaticInst &inst = cold.inst;
    if (!inst.isBranch())
        return;

    const std::uint32_t pc = _arena.pc[id];
    std::uint8_t f = _arena.flags[id];
    cold.rasCp = _ras->checkpoint();
    f |= diRasCheckpointed;

    bool pred_taken;
    if (inst.qp() == 0) {
        pred_taken = true;
    } else {
        cold.predLookup = _dirPred->predict(pc);
        f |= diUsedDirPred;
        pred_taken = cold.predLookup.taken;
    }

    std::uint32_t pred_target = pc + 1;
    if (pred_taken) {
        if (inst.isDirectBranch()) {
            pred_target = static_cast<std::uint32_t>(
                static_cast<std::uint32_t>(inst.imm()));
        } else if (inst.isReturn()) {
            pred_target = _ras->pop();
        } else {  // bri
            pred_target = _btb->lookup(pc).value_or(pc + 1);
        }
        if (inst.isCall())
            _ras->push(pc + 1);
    }
    if (pred_taken)
        f |= diPredictedTaken;
    cold.predictedTarget = pred_target;

    if (f & diWrongPath) {
        // No oracle outcome: fetch simply follows the prediction.
        _wrongPc = pred_taken ? pred_target : pc + 1;
    } else {
        const bool actual_taken = f & diActualTaken;
        const bool mispredicted =
            pred_taken != actual_taken ||
            (actual_taken && pred_target != cold.actualNextPc);
        if (mispredicted) {
            f |= diMispredicted;
            _wrongPathMode = true;
            _wrongPc = pred_taken ? pred_target : pc + 1;
        }
    }
    _arena.flags[id] = f;
    if (pred_taken)
        taken_break = true;
}

InstId
InOrderPipeline::fetchOracle(bool &taken_break)
{
    isa::StepInfo si;
    isa::Termination term = _oracle->step(&si);
    if (term == isa::Termination::Trap)
        SER_FATAL("pipeline: program trapped at pc {} after {} "
                  "instructions", _oracle->pc(), _oracle->steps());

    const InstId di = _arena.allocate();
    _arena.seq[di] = _nextSeq++;
    _arena.pc[di] = si.pc;
    _arena.fetchCycle[di] = _cycle;
    std::uint8_t f = 0;
    if (si.qpTrue)
        f |= diQpTrue;
    if (si.taken)
        f |= diActualTaken;
    _arena.flags[di] = f;
    InstCold &cold = _arena.cold[di];
    cold.oracleSeq = si.seq;
    cold.inst = si.inst;
    cold.actualNextPc = si.nextPc;
    cold.memAddr = si.memAddr;
    _arena.opnd[di] = packOperands(si.inst);

    CommitRecord cr;
    cr.staticIdx = si.pc;
    cr.qpTrue = si.qpTrue ? 1 : 0;
    cr.memAddr = (si.qpTrue && si.inst.isMem() &&
                  !si.inst.isPrefetch())
                     ? si.memAddr
                     : 0;
    _trace.commits.push_back(cr);

    if (term == isa::Termination::Halted) {
        _doneFetching = true;
        _trace.programHalted = true;
    } else {
        handleControlPrediction(di, taken_break);
    }
    return di;
}

InstId
InOrderPipeline::fetchReplay(bool &taken_break)
{
    ReplayItem item = _replay.front();
    _replay.pop_front();

    const InstId di = _arena.allocate();
    _arena.seq[di] = _nextSeq++;
    _arena.pc[di] = item.pc;
    _arena.fetchCycle[di] = _cycle;
    std::uint8_t f = 0;
    if (item.qpTrue)
        f |= diQpTrue;
    if (item.actualTaken)
        f |= diActualTaken;
    _arena.flags[di] = f;
    InstCold &cold = _arena.cold[di];
    cold.oracleSeq = item.oracleSeq;
    cold.inst = item.inst;
    cold.actualNextPc = item.actualNextPc;
    cold.memAddr = item.memAddr;
    _arena.opnd[di] = packOperands(item.inst);

    if (!cold.inst.isHalt())
        handleControlPrediction(di, taken_break);
    ++statReplayFetched;
    return di;
}

InstId
InOrderPipeline::fetchWrongPath(bool &taken_break)
{
    const InstId di = _arena.allocate();
    _arena.seq[di] = _nextSeq++;
    _arena.pc[di] = _wrongPc;
    _arena.fetchCycle[di] = _cycle;
    // Wrong-path incarnations keep the default-true predicate: the
    // issue gate treats them as consuming their sources, exactly as
    // the oracle-path default did.
    _arena.flags[di] = diQpTrue | diWrongPath;
    _arena.cold[di].inst = _program.inst(_wrongPc);
    _arena.opnd[di] = packOperands(_arena.cold[di].inst);

    _wrongPc = _wrongPc + 1;  // default; prediction may redirect
    if (_arena.cold[di].inst.isBranch())
        handleControlPrediction(di, taken_break);
    ++statWrongPathFetched;
    return di;
}

void
InOrderPipeline::fetch()
{
    if (_cycle < _fetchResumeCycle || _cycle < _throttleUntil)
        return;

    const std::size_t fe_cap =
        static_cast<std::size_t>(_params.frontEndDepth) *
        _params.enqueueWidth;
    unsigned budget = _params.fetchWidth;
    const unsigned budget0 = budget;
    while (budget > 0 && _fePipe.size() < fe_cap) {
        bool taken_break = false;
        InstId di;
        if (_wrongPathMode) {
            if (_wrongPc >= _program.size())
                break;  // ran off the image; wait for resolution
            di = fetchWrongPath(taken_break);
        } else if (!_replay.empty()) {
            di = fetchReplay(taken_break);
        } else {
            if (_doneFetching ||
                _trace.commits.size() >= _params.maxInsts) {
                _doneFetching = true;
                break;
            }
            di = fetchOracle(taken_break);
        }
        _fePipe.push_back(di);
        --budget;
        if (taken_break) {
            // The fetch group ends at a predicted-taken branch and
            // the front end pays a redirect bubble.
            _fetchResumeCycle = std::max(
                _fetchResumeCycle,
                _cycle + 1 + _params.takenBranchBubble);
            break;
        }
        if (_doneFetching)
            break;
    }
    // One weighted add per tick instead of a float add per fetch.
    statFetched += static_cast<double>(budget0 - budget);
}

} // namespace cpu
} // namespace ser
