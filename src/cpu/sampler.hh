/**
 * @file
 * Interval time-series sampling of the pipeline.
 *
 * The end-of-run AVF numbers hide *when* vulnerable state
 * accumulates: a run whose instruction queue fills during a burst of
 * L2 misses has the same average occupancy as one that is uniformly
 * half full, but very different exposure dynamics — and the IPC cost
 * of trigger squashing is only visible at the epochs where the
 * triggers actually fire. The IntervalSampler closes an epoch every
 * N cycles (plus one partial epoch at drain) and records the deltas
 * of the interesting counters, so IPC-vs-time, occupancy-vs-time and
 * squash bursts become plottable per epoch.
 *
 * Warmup handling matches the stats window: the pipeline notifies
 * the sampler when the measurement window opens; everything sampled
 * before that is discarded and the epoch grid restarts at the window
 * start cycle, so the per-epoch committed counts sum exactly to the
 * run's in-window committed-instruction count (and the epoch grid
 * lines up with the AVF fold's per-epoch ACE accounting).
 */

#ifndef SER_CPU_SAMPLER_HH
#define SER_CPU_SAMPLER_HH

#include <cstdint>
#include <ostream>
#include <vector>

namespace ser
{

namespace json
{
class JsonWriter;
}

namespace cpu
{

/** Cumulative in-window counters handed to the sampler each cycle. */
struct IntervalCounters
{
    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t triggerSquashes = 0;
    std::uint64_t triggerSquashedInsts = 0;

    /** Instantaneous end-of-cycle queue state. */
    std::uint64_t iqOccupancy = 0;
    std::uint64_t iqWaiting = 0;
};

/** One closed epoch: counter deltas over [startCycle, endCycle). */
struct IntervalSample
{
    std::uint64_t startCycle = 0;
    std::uint64_t endCycle = 0;

    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t triggerSquashes = 0;
    std::uint64_t triggerSquashedInsts = 0;

    /** Sum over the epoch's cycles of the valid-entry count: the
     * occupied entry-cycles this epoch, i.e. the exposure the paper's
     * squashing attacks. */
    std::uint64_t iqValidEntryCycles = 0;
    std::uint64_t iqWaitingEntryCycles = 0;

    std::uint64_t cycles() const { return endCycle - startCycle; }

    double
    ipc() const
    {
        return cycles() ? static_cast<double>(committed) /
                              static_cast<double>(cycles())
                        : 0.0;
    }

    double
    avgIqOccupancy() const
    {
        return cycles() ? static_cast<double>(iqValidEntryCycles) /
                              static_cast<double>(cycles())
                        : 0.0;
    }

    /** Emit this epoch as one JSON object (manifest / JSONL line). */
    void dumpJson(json::JsonWriter &jw) const;
};

/** Closes an epoch every intervalCycles ticks; see file comment. */
class IntervalSampler
{
  public:
    explicit IntervalSampler(std::uint64_t interval_cycles);

    std::uint64_t intervalCycles() const { return _intervalCycles; }

    /** Record the end of one simulated cycle. */
    void tick(std::uint64_t cycle, const IntervalCounters &counters);

    /**
     * Batch tick: cover the `span` cycles [cycle, cycle + span)
     * during which every cumulative counter — and the instantaneous
     * queue occupancy — held the values in `counters`. Closes every
     * epoch the span crosses (an idle span can cross several), with
     * arithmetic identical to `span` repeated tick() calls: interior
     * closes see the same cumulative values on both sides, so their
     * deltas are zero, exactly as per-cycle ticking would record.
     */
    void advance(std::uint64_t cycle, std::uint64_t span,
                 const IntervalCounters &counters);

    /**
     * True when advance(cycle, span, ...) would close an epoch, i.e.
     * the caller must materialize real cumulative counters.
     * Otherwise only the occupancy accumulators are touched and the
     * caller may use the snapshot-free advanceMidEpoch() fast path —
     * this is what keeps the five Stat::value() conversions off the
     * per-cycle path.
     */
    bool
    needsCounters(std::uint64_t span) const
    {
        return _active && _epochTicks + span >= _intervalCycles;
    }

    /**
     * Counter-free fast path for a span that stays strictly inside
     * the current epoch (!needsCounters(span)). Does not refresh the
     * last-seen counters, so callers mixing this in must finish with
     * the finish(end_cycle, counters) overload.
     */
    void advanceMidEpoch(std::uint64_t span, std::uint64_t occupancy,
                         std::uint64_t waiting);

    /** The measurement window opened at 'cycle': discard warmup
     * accumulation and restart the epoch grid there. */
    void windowOpen(std::uint64_t cycle);

    /** The run drained at 'end_cycle': close any partial epoch. */
    void finish(std::uint64_t end_cycle);

    /** As finish(end_cycle), but with an explicit final snapshot —
     * required when advanceMidEpoch() may have been used. */
    void finish(std::uint64_t end_cycle,
                const IntervalCounters &counters);

    const std::vector<IntervalSample> &samples() const
    {
        return _samples;
    }

    /** One JSON object per epoch, newline-delimited (JSONL). */
    void writeJsonl(std::ostream &os) const;

  private:
    void closeEpoch(std::uint64_t end_cycle,
                    const IntervalCounters &counters);

    std::uint64_t _intervalCycles;
    std::uint64_t _epochStart = 0;
    std::uint64_t _epochTicks = 0;
    bool _active = false;       ///< measurement window open?

    IntervalCounters _last;     ///< cumulative values at epoch start
    IntervalCounters _lastSeen; ///< cumulative values at last tick
    IntervalSample _current;    ///< accumulating epoch
    std::vector<IntervalSample> _samples;
};

} // namespace cpu
} // namespace ser

#endif // SER_CPU_SAMPLER_HH
