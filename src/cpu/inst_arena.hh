/**
 * @file
 * Structure-of-arrays storage for in-flight instruction incarnations.
 *
 * The pipeline used to track in-flight instructions as pool-allocated
 * DynInst structs (~150 bytes each) strung through std::deques of
 * pointers. Every per-cycle scan — evict the completed prefix, gate
 * the issue head, find the next event cycle — chased a deque map
 * entry, then a pointer, then faulted a wide struct in for one or two
 * fields. This header replaces that layout with parallel arenas: the
 * hot fields (seq, pc, the lifetime cycles, iqEntry, the packed flag
 * byte) live in contiguous per-field arrays indexed by a compact
 * InstId, so each scan touches only the columns it reads and the
 * whole in-flight window's worth of any one field shares a few cache
 * lines. Everything touched off the per-cycle path (the decoded
 * StaticInst, oracle outcomes, predictor checkpoints) stays together
 * in a cold record per id.
 *
 * Ids are recycled LIFO exactly like the pool slots they replace: the
 * next allocation reuses the most recently released id (cache-warm),
 * the recycling order is a pure function of the simulation, and the
 * in-flight population is architecturally bounded (front-end pipe
 * capacity plus instruction-queue entries), so the pipeline reserves
 * that bound up front and steady state performs zero allocations.
 * The live/high-water/capacity accounting the run manifest reports is
 * preserved unchanged.
 *
 * Not thread-safe; each pipeline owns its own arena.
 */

#ifndef SER_CPU_INST_ARENA_HH
#define SER_CPU_INST_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "isa/static_inst.hh"
#include "sim/logging.hh"

namespace ser
{
namespace cpu
{

constexpr std::uint64_t invalidCycle =
    std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t invalidSeq =
    std::numeric_limits<std::uint64_t>::max();

/** Compact arena index of one in-flight incarnation. An id must not
 * be used after its incarnation was finalized (committed or
 * squashed) — the id may already name a younger instruction. */
using InstId = std::uint16_t;
constexpr InstId noInst = 0xffff;

/** Bits of InstArena::flags, packed so squash classification and the
 * issue gate read one byte. */
enum : std::uint8_t
{
    diWrongPath = 0x01,       ///< fetched down a mispredicted path
    diQpTrue = 0x02,          ///< oracle predicate (set at allocate)
    diActualTaken = 0x04,     ///< oracle branch outcome
    diPredictedTaken = 0x08,  ///< predictor direction at fetch
    diMispredicted = 0x10,    ///< prediction disagreed with oracle
    diUsedDirPred = 0x20,     ///< direction predictor was consulted
    diRasCheckpointed = 0x40, ///< rasCp holds a valid checkpoint
};

/**
 * Packed operand descriptor: everything the per-tick issue gate
 * needs about an instruction's register reads, folded into one u32
 * at fetch so the gate never touches the cold decode record or the
 * OpInfo table again.
 *
 *   bits  5..0   qp predicate register
 *   bits 13..8   src1 register
 *   bits 21..16  src2 register
 *   bits 25..24  src1 RegClass (None=0 / Int=1 / Fp=2 / Pred=3)
 *   bits 27..26  src2 RegClass
 *
 * Register fields are 6 bits architecturally, and the RegClass
 * numeric values are pinned by the enum declaration, so the class
 * bits can directly index a 4-entry scoreboard-pointer table.
 */
inline std::uint32_t
packOperands(const isa::StaticInst &inst)
{
    const isa::OpInfo &oi = inst.info();
    return static_cast<std::uint32_t>(inst.qp() & 0x3f) |
           (static_cast<std::uint32_t>(inst.src1() & 0x3f) << 8) |
           (static_cast<std::uint32_t>(inst.src2() & 0x3f) << 16) |
           (static_cast<std::uint32_t>(oi.src1Class) << 24) |
           (static_cast<std::uint32_t>(oi.src2Class) << 26);
}

constexpr std::uint32_t opndQp(std::uint32_t w) { return w & 0x3f; }
constexpr std::uint32_t opndSrc1(std::uint32_t w)
{
    return (w >> 8) & 0x3f;
}
constexpr std::uint32_t opndSrc2(std::uint32_t w)
{
    return (w >> 16) & 0x3f;
}
constexpr std::uint32_t opndSrc1Class(std::uint32_t w)
{
    return (w >> 24) & 3;
}
constexpr std::uint32_t opndSrc2Class(std::uint32_t w)
{
    return (w >> 26) & 3;
}

/** Per-incarnation state only touched off the per-cycle scan path:
 * decode, oracle outcomes, and predictor repair state. */
struct InstCold
{
    isa::StaticInst inst;
    std::uint64_t oracleSeq = invalidSeq;
    std::uint64_t memAddr = 0;
    std::uint32_t actualNextPc = 0;
    std::uint32_t predictedTarget = 0;
    branch::Lookup predLookup;
    branch::RasCheckpoint rasCp;
};

/** SoA arena of in-flight incarnations with LIFO id recycling. */
class InstArena
{
  public:
    explicit InstArena(std::size_t slab_size = 256)
        : _slabSize(slab_size ? slab_size : 1)
    {
    }

    /** Ensure capacity for at least n ids in total. */
    void
    reserve(std::size_t n)
    {
        if (n > capacity())
            grow(n - capacity());
    }

    /** Take an id. Grows by one slab when the freelist is dry (never
     * in steady state once reserve() covered the in-flight bound).
     *
     * Only issueCycle is reset: it is the liveness predicate
     * (issued()) consulted before issueOne() writes it. Every other
     * column — and the whole cold record — is written by the fetch
     * path before any stage reads it: seq/pc/fetchCycle/flags and the
     * cold decode fields are assigned at all three fetch sites, and
     * enqueueCycle/iqEntry are assigned at enqueue() before anything
     * reads them (only queue residents are scanned, finalized, or
     * replayed). The arena round-trip unit test pins this write-
     * before-read discipline across squash/replay recycling.
     */
    InstId
    allocate()
    {
        if (_free.empty())
            grow(_slabSize);
        InstId id = _free.back();
        _free.pop_back();
        issueCycle[id] = invalidCycle;
        ++_live;
        if (_live > _highWater)
            _highWater = _live;
        return id;
    }

    /** Return an id; it must have come from allocate() and must not
     * be used afterwards. */
    void
    release(InstId id)
    {
        _free.push_back(id);
        --_live;
    }

    bool issued(InstId id) const
    {
        return issueCycle[id] != invalidCycle;
    }

    /** Ids currently handed out. */
    std::size_t live() const { return _live; }

    /** Most ids ever simultaneously live (manifest observability:
     * proves the in-flight population stayed within the reserved
     * architectural bound). */
    std::size_t highWater() const { return _highWater; }

    /** Total ids across all columns. */
    std::size_t capacity() const { return seq.size(); }

    // Hot columns, indexed by InstId. Parallel by construction:
    // resized together in grow(), reset together in allocate().
    std::vector<std::uint64_t> seq;
    std::vector<std::uint64_t> fetchCycle;
    std::vector<std::uint64_t> enqueueCycle;
    std::vector<std::uint64_t> issueCycle;
    std::vector<std::uint64_t> completeCycle;
    std::vector<std::uint32_t> pc;
    std::vector<std::uint32_t> opnd;  ///< packOperands() descriptor
    std::vector<std::uint16_t> iqEntry;
    std::vector<std::uint8_t> flags;

    /** Cold column (one record per id). */
    std::vector<InstCold> cold;

  private:
    void
    grow(std::size_t n)
    {
        std::size_t base = capacity();
        if (base + n > noInst)
            SER_FATAL("inst arena: {} ids exceeds the 16-bit id "
                      "space", base + n);
        seq.resize(base + n);
        fetchCycle.resize(base + n);
        enqueueCycle.resize(base + n);
        issueCycle.resize(base + n);
        completeCycle.resize(base + n);
        pc.resize(base + n);
        opnd.resize(base + n);
        iqEntry.resize(base + n);
        flags.resize(base + n);
        cold.resize(base + n);
        _free.reserve(_free.size() + n);
        // Push in reverse so the first allocations walk the columns
        // in index order.
        for (std::size_t i = base + n; i-- > base;)
            _free.push_back(static_cast<InstId>(i));
    }

    std::size_t _slabSize;
    std::vector<InstId> _free;
    std::size_t _live = 0;
    std::size_t _highWater = 0;
};

/**
 * Fixed-capacity ring buffer of POD elements (ids, resolutions).
 * Replaces std::deque on the per-cycle path: operator[] is one masked
 * index into one contiguous array — no chunk map indirection — and
 * push/pop never allocate once sized. Capacity rounds up to a power
 * of two; push_back past capacity doubles (never in steady state —
 * the pipeline sizes rings to their architectural bounds up front).
 */
template <typename T>
class Ring
{
  public:
    /** Size for at least cap elements and clear. */
    void
    reset(std::size_t cap)
    {
        std::size_t n = 16;
        while (n < cap)
            n <<= 1;
        _buf.assign(n, T{});
        _mask = n - 1;
        _head = 0;
        _size = 0;
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    T &front() { return _buf[_head]; }
    const T &front() const { return _buf[_head]; }
    T &back() { return _buf[(_head + _size - 1) & _mask]; }

    T &operator[](std::size_t i)
    {
        return _buf[(_head + i) & _mask];
    }
    const T &operator[](std::size_t i) const
    {
        return _buf[(_head + i) & _mask];
    }

    void
    push_back(const T &v)
    {
        if (_size + 1 > _buf.size())
            grow();
        _buf[(_head + _size) & _mask] = v;
        ++_size;
    }

    void
    pop_front()
    {
        _head = (_head + 1) & _mask;
        --_size;
    }

    /** Drop the suffix, keeping the oldest n elements (squash). */
    void
    truncate(std::size_t n)
    {
        if (n < _size)
            _size = n;
    }

    void clear() { _size = 0; }

  private:
    void
    grow()
    {
        std::vector<T> wider(_buf.empty() ? 16 : _buf.size() * 2,
                             T{});
        for (std::size_t i = 0; i < _size; ++i)
            wider[i] = _buf[(_head + i) & _mask];
        _buf = std::move(wider);
        _mask = _buf.size() - 1;
        _head = 0;
    }

    std::vector<T> _buf;
    std::size_t _mask = 0;
    std::size_t _head = 0;
    std::size_t _size = 0;
};

} // namespace cpu
} // namespace ser

#endif // SER_CPU_INST_ARENA_HH
