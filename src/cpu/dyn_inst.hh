/**
 * @file
 * DynInst: one in-flight instruction incarnation.
 *
 * The same dynamic (oracle) instruction can have several incarnations
 * when squash-and-refetch policies are active: each fetch of it —
 * original or replayed — is a distinct DynInst with its own queue
 * residency, and each contributes its own exposure interval to the
 * AVF analysis.
 */

#ifndef SER_CPU_DYN_INST_HH
#define SER_CPU_DYN_INST_HH

#include <cstdint>
#include <limits>

#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "isa/executor.hh"
#include "isa/static_inst.hh"

namespace ser
{
namespace cpu
{

constexpr std::uint64_t invalidCycle =
    std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t invalidSeq =
    std::numeric_limits<std::uint64_t>::max();

/** One in-flight incarnation of a fetched instruction. */
struct DynInst
{
    /** Global fetch sequence number (monotone over incarnations and
     * wrong-path fetches; defines age for squashing). */
    std::uint64_t seq = invalidSeq;

    /** Oracle step index (== commit order); invalidSeq if wrong-path. */
    std::uint64_t oracleSeq = invalidSeq;

    std::uint32_t pc = 0;  ///< instruction index fetched from
    isa::StaticInst inst;

    bool wrongPath = false;
    /** Oracle outcome (valid only when !wrongPath). */
    bool qpTrue = true;
    bool actualTaken = false;
    std::uint32_t actualNextPc = 0;
    std::uint64_t memAddr = 0;

    // Prediction state captured at fetch (control instructions).
    bool predictedTaken = false;
    std::uint32_t predictedTarget = 0;
    bool mispredicted = false;
    bool usedDirectionPredictor = false;
    branch::Lookup predLookup;
    branch::RasCheckpoint rasCp;
    bool rasCheckpointed = false;

    // Timing.
    std::uint64_t fetchCycle = invalidCycle;
    std::uint64_t enqueueCycle = invalidCycle;
    std::uint64_t issueCycle = invalidCycle;
    std::uint64_t completeCycle = invalidCycle;

    /** Physical instruction-queue entry index (for fault mapping). */
    std::uint16_t iqEntry = 0;

    // Disposition.
    bool squashedByTrigger = false;
    bool squashedByMispredict = false;

    bool issued() const { return issueCycle != invalidCycle; }
    bool inQueue() const
    {
        return enqueueCycle != invalidCycle;
    }
};

/**
 * In-flight instructions are pool slots (cpu/dyn_inst_pool.hh) owned
 * by the pipeline's DynInstPool and recycled at retire/squash; the
 * handle is a raw pointer, so the fetch→commit loop carries no
 * refcount traffic. A DynInstPtr must not be dereferenced after its
 * incarnation was finalized (committed or squashed) — the slot may
 * already be hosting a younger instruction.
 */
using DynInstPtr = DynInst *;

} // namespace cpu
} // namespace ser

#endif // SER_CPU_DYN_INST_HH
