/**
 * @file
 * A slab-backed DynInst allocator.
 *
 * The fetch→commit loop used to heap-allocate one
 * shared_ptr<DynInst> per fetched incarnation — two allocations and
 * refcount traffic per instruction on the hottest path in the
 * simulator. The pool replaces that with fixed slots recycled at
 * retire/squash: slots live in large slabs, a LIFO freelist hands
 * them out, and resetting a slot is a trivially-copyable assignment.
 * The in-flight population is architecturally bounded (front-end pipe
 * capacity plus instruction-queue entries), so the pipeline reserves
 * that bound up front and steady state performs zero allocations.
 *
 * The freelist is strictly LIFO: the next allocation reuses the most
 * recently released slot (cache-warm), and the recycling order is a
 * pure function of the simulation — no allocator nondeterminism can
 * leak into iteration order anywhere.
 *
 * Not thread-safe; each pipeline owns its own pool (suite-runner
 * workers each drive their own pipeline).
 */

#ifndef SER_CPU_DYN_INST_POOL_HH
#define SER_CPU_DYN_INST_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "cpu/dyn_inst.hh"

namespace ser
{
namespace cpu
{

/** Freelist of fixed DynInst slots, recycled at retire/squash. */
class DynInstPool
{
  public:
    explicit DynInstPool(std::size_t slab_size = 256)
        : _slabSize(slab_size ? slab_size : 1)
    {
    }

    /** Take a slot, reset to a default-constructed DynInst. Grows by
     * one slab when the freelist is dry (never in steady state once
     * reserve() covered the in-flight bound). */
    DynInst *allocate()
    {
        if (_free.empty())
            grow(_slabSize);
        DynInst *p = _free.back();
        _free.pop_back();
        *p = DynInst{};
        ++_live;
        if (_live > _highWater)
            _highWater = _live;
        return p;
    }

    /** Return a slot; the pointer must have come from allocate() and
     * must not be used afterwards. */
    void release(DynInst *p)
    {
        _free.push_back(p);
        --_live;
    }

    /** Ensure capacity for at least n slots in total. */
    void reserve(std::size_t n)
    {
        if (n > _capacity)
            grow(n - _capacity);
    }

    /** Slots currently handed out. */
    std::size_t live() const { return _live; }

    /** Most slots ever simultaneously live (manifest observability:
     * proves the in-flight population stayed within the reserved
     * architectural bound). */
    std::size_t highWater() const { return _highWater; }

    /** Total slots across all slabs. */
    std::size_t capacity() const { return _capacity; }

  private:
    void grow(std::size_t n)
    {
        _slabs.push_back(std::make_unique<DynInst[]>(n));
        DynInst *base = _slabs.back().get();
        _free.reserve(_free.size() + n);
        // Push in reverse so the first allocations walk the slab in
        // address order.
        for (std::size_t i = n; i-- > 0;)
            _free.push_back(base + i);
        _capacity += n;
    }

    std::size_t _slabSize;
    std::vector<std::unique_ptr<DynInst[]>> _slabs;
    std::vector<DynInst *> _free;
    std::size_t _capacity = 0;
    std::size_t _live = 0;
    std::size_t _highWater = 0;
};

} // namespace cpu
} // namespace ser

#endif // SER_CPU_DYN_INST_POOL_HH
