/**
 * @file
 * Post-run analysis records produced by the timing model.
 *
 * The AVF analysis (src/avf) and the fault injector (src/faults) are
 * post-hoc: the pipeline records, per dynamic instruction, what
 * happened and when, and the analyses classify those records after
 * the run, once register/memory deadness is computable from the full
 * committed stream. This mirrors the ACE methodology of the paper's
 * reference [18].
 *
 * Records are packed structs: a multi-million-instruction run keeps
 * tens of MB of trace, so every byte matters.
 */

#ifndef SER_CPU_TRACE_HH
#define SER_CPU_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "isa/program.hh"

namespace ser
{
namespace cpu
{

/** Disposition flags of one incarnation. */
enum IncarnationFlags : std::uint8_t
{
    incWrongPath = 1 << 0,   ///< fetched down a mispredicted path
    incPredFalse = 1 << 1,   ///< correct path, qualifying pred false
    incSquashTrigger = 1 << 2,   ///< squashed by an exposure trigger
    incSquashMispredict = 1 << 3,///< squashed by branch resolution
    incCommitted = 1 << 4,   ///< reached commit
};

/**
 * One instruction-queue residency of one incarnation.
 * All cycle fields are 32-bit; runs are bounded well below 2^32
 * cycles (the pipeline enforces this).
 */
struct IncarnationRecord
{
    std::uint32_t staticIdx;   ///< index into the Program
    std::uint32_t oracleSeq;   ///< commit-order seq; ~0u if wrong-path
    std::uint32_t enqueueCycle;
    std::uint32_t issueCycle;  ///< ~0u if never issued (squashed)
    std::uint32_t evictCycle;
    std::uint16_t iqEntry;     ///< physical entry occupied
    std::uint8_t flags;        ///< IncarnationFlags
};

static constexpr std::uint32_t noCycle32 = ~0u;
static constexpr std::uint32_t noSeq32 = ~0u;

/**
 * Structure-of-arrays storage of the incarnation records.
 *
 * The AVF fold streams every record and touches almost every field;
 * keeping each field in its own contiguous column lets that fold run
 * as wide batch passes (SIMD where available) instead of a per-struct
 * walk, and analyses that need only a field or two (residency
 * indexing by entry, per-PC attribution) stop dragging the rest of
 * the struct through the cache.
 *
 * The row type is still IncarnationRecord: push_back() scatters one
 * into the columns and operator[] / the iterator gather one back out,
 * so record-at-a-time consumers read exactly as before — they just
 * receive rows by value. Columns are public on purpose: batch passes
 * bind raw pointers to them.
 */
class IncarnationColumns
{
  public:
    std::vector<std::uint32_t> staticIdx;
    std::vector<std::uint32_t> oracleSeq;
    std::vector<std::uint32_t> enqueueCycle;
    std::vector<std::uint32_t> issueCycle;
    std::vector<std::uint32_t> evictCycle;
    std::vector<std::uint16_t> iqEntry;
    std::vector<std::uint8_t> flags;

    std::size_t size() const { return flags.size(); }
    bool empty() const { return flags.empty(); }

    void reserve(std::size_t n)
    {
        staticIdx.reserve(n);
        oracleSeq.reserve(n);
        enqueueCycle.reserve(n);
        issueCycle.reserve(n);
        evictCycle.reserve(n);
        iqEntry.reserve(n);
        flags.reserve(n);
    }

    void clear()
    {
        staticIdx.clear();
        oracleSeq.clear();
        enqueueCycle.clear();
        issueCycle.clear();
        evictCycle.clear();
        iqEntry.clear();
        flags.clear();
    }

    void push_back(const IncarnationRecord &r)
    {
        staticIdx.push_back(r.staticIdx);
        oracleSeq.push_back(r.oracleSeq);
        enqueueCycle.push_back(r.enqueueCycle);
        issueCycle.push_back(r.issueCycle);
        evictCycle.push_back(r.evictCycle);
        iqEntry.push_back(r.iqEntry);
        flags.push_back(r.flags);
    }

    /** Gather row i back into a record (by value). */
    IncarnationRecord operator[](std::size_t i) const
    {
        return {staticIdx[i], oracleSeq[i],  enqueueCycle[i],
                issueCycle[i], evictCycle[i], iqEntry[i], flags[i]};
    }

    /** Row-gathering iterator: dereferences to a record by value
     * (range-for with `const auto &` binds the usual way). */
    class const_iterator
    {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = IncarnationRecord;
        using difference_type = std::ptrdiff_t;
        using pointer = void;
        using reference = IncarnationRecord;

        const_iterator() = default;
        const_iterator(const IncarnationColumns *cols, std::size_t i)
            : _cols(cols), _i(i)
        {
        }

        IncarnationRecord operator*() const { return (*_cols)[_i]; }
        const_iterator &operator++()
        {
            ++_i;
            return *this;
        }
        const_iterator operator++(int)
        {
            const_iterator prev = *this;
            ++_i;
            return prev;
        }
        bool operator==(const const_iterator &o) const
        {
            return _i == o._i;
        }
        bool operator!=(const const_iterator &o) const
        {
            return _i != o._i;
        }

      private:
        const IncarnationColumns *_cols = nullptr;
        std::size_t _i = 0;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size()}; }
};

/** One committed (oracle-order) instruction. */
struct CommitRecord
{
    std::uint32_t staticIdx;
    std::uint8_t qpTrue;
    std::uint64_t memAddr;  ///< loads/stores with qpTrue; else 0
};

/** Everything a run leaves behind for analysis. */
struct SimTrace
{
    const isa::Program *program = nullptr;

    std::vector<CommitRecord> commits;
    IncarnationColumns incarnations;

    /** AVF measurement window [startCycle, endCycle). */
    std::uint64_t startCycle = 0;
    std::uint64_t endCycle = 0;

    /** Committed instructions inside the window. */
    std::uint64_t committedInsts = 0;

    /** True if the commit stream ends at a halt (deadness at the end
     * of the trace is then exact; otherwise tail defs are treated as
     * live, the conservative ACE assumption). */
    bool programHalted = false;

    std::uint32_t iqEntries = 64;

    double ipc() const
    {
        std::uint64_t cycles = endCycle - startCycle;
        return cycles ? static_cast<double>(committedInsts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace cpu
} // namespace ser

#endif // SER_CPU_TRACE_HH
