/**
 * @file
 * Post-run analysis records produced by the timing model.
 *
 * The AVF analysis (src/avf) and the fault injector (src/faults) are
 * post-hoc: the pipeline records, per dynamic instruction, what
 * happened and when, and the analyses classify those records after
 * the run, once register/memory deadness is computable from the full
 * committed stream. This mirrors the ACE methodology of the paper's
 * reference [18].
 *
 * Records are packed structs: a multi-million-instruction run keeps
 * tens of MB of trace, so every byte matters.
 */

#ifndef SER_CPU_TRACE_HH
#define SER_CPU_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace ser
{
namespace cpu
{

/** Disposition flags of one incarnation. */
enum IncarnationFlags : std::uint8_t
{
    incWrongPath = 1 << 0,   ///< fetched down a mispredicted path
    incPredFalse = 1 << 1,   ///< correct path, qualifying pred false
    incSquashTrigger = 1 << 2,   ///< squashed by an exposure trigger
    incSquashMispredict = 1 << 3,///< squashed by branch resolution
    incCommitted = 1 << 4,   ///< reached commit
};

/**
 * One instruction-queue residency of one incarnation.
 * All cycle fields are 32-bit; runs are bounded well below 2^32
 * cycles (the pipeline enforces this).
 */
struct IncarnationRecord
{
    std::uint32_t staticIdx;   ///< index into the Program
    std::uint32_t oracleSeq;   ///< commit-order seq; ~0u if wrong-path
    std::uint32_t enqueueCycle;
    std::uint32_t issueCycle;  ///< ~0u if never issued (squashed)
    std::uint32_t evictCycle;
    std::uint16_t iqEntry;     ///< physical entry occupied
    std::uint8_t flags;        ///< IncarnationFlags
};

static constexpr std::uint32_t noCycle32 = ~0u;
static constexpr std::uint32_t noSeq32 = ~0u;

/** One committed (oracle-order) instruction. */
struct CommitRecord
{
    std::uint32_t staticIdx;
    std::uint8_t qpTrue;
    std::uint64_t memAddr;  ///< loads/stores with qpTrue; else 0
};

/** Everything a run leaves behind for analysis. */
struct SimTrace
{
    const isa::Program *program = nullptr;

    std::vector<CommitRecord> commits;
    std::vector<IncarnationRecord> incarnations;

    /** AVF measurement window [startCycle, endCycle). */
    std::uint64_t startCycle = 0;
    std::uint64_t endCycle = 0;

    /** Committed instructions inside the window. */
    std::uint64_t committedInsts = 0;

    /** True if the commit stream ends at a halt (deadness at the end
     * of the trace is then exact; otherwise tail defs are treated as
     * live, the conservative ACE assumption). */
    bool programHalted = false;

    std::uint32_t iqEntries = 64;

    double ipc() const
    {
        std::uint64_t cycles = endCycle - startCycle;
        return cycles ? static_cast<double>(committedInsts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace cpu
} // namespace ser

#endif // SER_CPU_TRACE_HH
