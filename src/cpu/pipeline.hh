/**
 * @file
 * The in-order pipeline model.
 *
 * An Itanium(R)2-like in-order machine: fetch (with real wrong-path
 * fetching driven by the branch predictor), a front-end delay pipe,
 * a 64-entry instruction queue with strict in-order issue, scoreboard
 * interlocks with full bypass, per-class execution latencies, and
 * in-order eviction/commit.
 *
 * The timing model is execute-at-fetch: a functional Executor oracle
 * is stepped once per correct-path fetch, providing branch outcomes
 * and effective addresses. Wrong-path instructions are decoded from
 * the real program image at the (wrong) predicted pc and occupy the
 * queue until the mispredicted branch resolves, but have no
 * functional effects (matching the paper's methodology, which fetches
 * wrong paths without correct memory addresses).
 *
 * Exposure-reduction support (the paper's Section 3): an attached
 * ExposurePolicy is consulted when a load's service level becomes
 * known; it can squash all not-yet-issued queue entries (which are
 * replayed through the front end from a replay queue, preserving the
 * oracle stream) and/or throttle fetch.
 *
 * The run leaves behind a SimTrace of per-incarnation queue
 * residencies and the committed stream for post-hoc AVF analysis.
 */

#ifndef SER_CPU_PIPELINE_HH
#define SER_CPU_PIPELINE_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "branch/btb.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "cpu/hooks.hh"
#include "cpu/inst_arena.hh"
#include "cpu/params.hh"
#include "cpu/trace.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "memory/hierarchy.hh"
#include "sim/stats.hh"

namespace ser
{

namespace trace
{
class TraceWriter;
}

namespace cpu
{

class IntervalSampler;
struct IntervalCounters;

/** The in-order core. One instance simulates one program run. */
class InOrderPipeline : public statistics::StatGroup
{
  public:
    InOrderPipeline(const isa::Program &program,
                    const PipelineParams &params,
                    statistics::StatGroup *parent = nullptr);
    ~InOrderPipeline() override;

    /** Attach the exposure trigger/action policy (may be null). */
    void setExposurePolicy(ExposurePolicy *policy)
    {
        _policy = policy;
    }

    /**
     * Commit this many instructions before opening the measurement
     * window (stats are reset and the AVF window starts there).
     */
    void setWarmupInsts(std::uint64_t insts) { _warmupInsts = insts; }

    /**
     * Attach an interval time-series sampler (may be null). The
     * sampler is ticked at the end of every simulated cycle and told
     * when the measurement window opens, so its epoch grid matches
     * the stats window.
     */
    void setIntervalSampler(IntervalSampler *sampler)
    {
        _sampler = sampler;
    }

    /**
     * Attach an instruction-lifetime trace writer (may be null).
     * Every queue residency becomes a duration slice on its physical
     * entry's track; squashes, trigger firings and the measurement-
     * window opening become instants; fetch-throttle windows become
     * slices on their own track; queue occupancy becomes a counter.
     * Costs one branch per emission site when null.
     */
    void setTraceWriter(trace::TraceWriter *tw) { _tw = tw; }

    /** Run to completion and return the analysis trace. */
    SimTrace run();

    std::uint64_t cycle() const { return _cycle; }
    std::uint64_t committed() const { return _committedTotal; }

    /** Most arena ids simultaneously live (must stay within the
     * reserved front-end + queue bound; reported in the manifest). */
    std::size_t poolHighWater() const { return _arena.highWater(); }

    /** Cycles the event-driven scheduler fast-forwarded over instead
     * of ticking (0 with cycleSkip off; reported in the manifest).
     * Deliberately not a registered stat: it is a simulator-speed
     * observation, and the stats dump must stay byte-identical
     * across --no-cycle-skip. */
    std::uint64_t cyclesSkipped() const { return _cyclesSkipped; }

    /** Total arena ids reserved (fixed unless the bound is ever
     * exceeded, which would indicate a leak). */
    std::size_t poolCapacity() const { return _arena.capacity(); }

    const memory::CacheHierarchy &dcache() const { return *_dcache; }
    const branch::DirectionPredictor &predictor() const
    {
        return *_dirPred;
    }
    const isa::ArchState &archState() const
    {
        return _oracle->state();
    }

  private:
    /** A squashed correct-path instruction awaiting refetch. */
    struct ReplayItem
    {
        std::uint64_t oracleSeq;
        std::uint32_t pc;
        isa::StaticInst inst;
        bool qpTrue;
        bool actualTaken;
        std::uint32_t actualNextPc;
        std::uint64_t memAddr;
    };

    /** A load whose service level is about to become known. */
    struct TriggerEvent
    {
        std::uint64_t detectCycle;
        std::uint64_t fillCycle;
        memory::HitLevel level;
    };

    /** A correct-path control instruction awaiting resolution. */
    struct Resolution
    {
        std::uint64_t cycle;
        InstId inst;
    };

    // --- per-cycle phases, in reverse pipeline order ---
    void evictAndCommit();
    void resolveBranches();
    void processTriggers();
    void issue();
    void enqueue();
    void fetch();

    // --- helpers ---
    bool operandsReady(InstId id) const;
    void recordStallReason();
    statistics::Scalar &stallReasonAt(std::uint64_t cycle);
    std::uint64_t nextEventCycle(std::uint64_t limit) const;
    IntervalCounters snapshotCounters() const;
    void issueOne(InstId id);
    void handleControlPrediction(InstId id, bool &taken_break);
    InstId fetchOracle(bool &taken_break);
    InstId fetchReplay(bool &taken_break);
    InstId fetchWrongPath(bool &taken_break);
    void doMispredictSquash(InstId branch);
    void doTriggerSquash();
    void finalizeIncarnation(InstId id, std::uint64_t evict_cycle,
                             std::uint8_t extra_flags);
    void traceIncarnation(InstId id, const IncarnationRecord &rec,
                          std::uint8_t extra_flags,
                          std::uint64_t evict_cycle);
    void sampleOccupancy(std::uint64_t weight);
    bool drained() const;

    unsigned latencyOf(const isa::StaticInst &inst) const;

    // --- configuration and structure ---
    const isa::Program &_program;
    PipelineParams _params;
    ExposurePolicy *_policy = nullptr;
    IntervalSampler *_sampler = nullptr;
    trace::TraceWriter *_tw = nullptr;
    std::uint64_t _warmupInsts = 0;

    // Trace-emission state (only touched when _tw is set).
    bool _throttleSliceOpen = false;
    std::size_t _tracedOccupancy = ~std::size_t{0};
    std::size_t _tracedWaiting = ~std::size_t{0};

    std::unique_ptr<isa::Executor> _oracle;
    std::unique_ptr<memory::CacheHierarchy> _dcache;
    std::unique_ptr<branch::DirectionPredictor> _dirPred;
    std::unique_ptr<branch::Btb> _btb;
    std::unique_ptr<branch::Ras> _ras;

    // --- machine state ---
    InstArena _arena;  ///< SoA storage of every in-flight incarnation
    std::uint64_t _cycle = 0;
    std::uint64_t _nextSeq = 0;

    Ring<InstId> _fePipe;  ///< fetched, not yet in the IQ
    Ring<InstId> _iq;      ///< program order; issued prefix first
    std::size_t _iqIssued = 0;  ///< length of the issued prefix
    std::vector<std::uint16_t> _freeEntries;

    std::deque<ReplayItem> _replay;
    std::vector<TriggerEvent> _triggers;
    Ring<Resolution> _resolutions;

    bool _wrongPathMode = false;
    std::uint32_t _wrongPc = 0;
    bool _doneFetching = false;
    bool _oracleHalted = false;
    std::uint64_t _fetchResumeCycle = 0;
    std::uint64_t _throttleUntil = 0;

    // Scoreboard: cycle each architectural register becomes ready,
    // plus whether the pending writer is a load (stall accounting).
    // The by-load flags are bytes, not vector<bool>: the bit-packed
    // specialization turns every probe of the operand-ready scan into
    // a masked read-modify-word and defeats vectorization.
    std::vector<std::uint64_t> _intReady;
    std::vector<std::uint64_t> _fpReady;
    std::vector<std::uint64_t> _predReady;
    std::vector<std::uint8_t> _intByLoad;
    std::vector<std::uint8_t> _fpByLoad;

    // Scoreboard bases indexed by a packed-descriptor RegClass value
    // (None/Int/Fp/Pred), so the issue gate resolves "when is this
    // operand ready" with one unconditional double-indexed load
    // instead of a class switch. Entry 0 points at an all-zero
    // array: a None operand is permanently ready. Valid for the
    // pipeline's lifetime because the scoreboards are sized once in
    // the constructor and never reallocated.
    std::array<const std::uint64_t *, 4> _readyByClass{};

    // --- results ---
    SimTrace _trace;
    std::uint64_t _cyclesSkipped = 0;
    std::uint64_t _committedTotal = 0;
    std::uint64_t _windowStart = 0;
    bool _windowOpen = false;

    // --- statistics ---
    statistics::Scalar statCycles;
    statistics::Scalar statCommitted;
    statistics::Scalar statFetched;
    statistics::Scalar statWrongPathFetched;
    statistics::Scalar statReplayFetched;
    statistics::Scalar statMispredicts;
    statistics::Scalar statTriggerSquashes;
    statistics::Scalar statTriggerSquashedInsts;
    statistics::Scalar statThrottleCycles;
    statistics::Average statIqOccupancy;
    statistics::Average statIqValid;
    statistics::Distribution statIssueWidth;
    statistics::Scalar statStallLoad;   ///< cycles stalled on a load
    statistics::Scalar statStallExec;   ///< cycles stalled on an ALU/fp op
    statistics::Scalar statStallEmpty;  ///< cycles with nothing to issue
};

} // namespace cpu
} // namespace ser

#endif // SER_CPU_PIPELINE_HH
