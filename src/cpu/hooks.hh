/**
 * @file
 * Policy hooks the pipeline exposes to the soft-error library.
 *
 * The pipeline owns the *mechanisms* (squashing the queue, throttling
 * fetch); src/core owns the *policies* (which cache-miss level
 * triggers which action). This keeps the paper's trigger/action
 * framework (Section 3.1) out of the machine model proper.
 */

#ifndef SER_CPU_HOOKS_HH
#define SER_CPU_HOOKS_HH

#include <cstdint>

#include "memory/hierarchy.hh"

namespace ser
{
namespace cpu
{

/** What the pipeline should do about a serviced load. */
struct ExposureDecision
{
    /** Squash all not-yet-issued queue entries and refetch them. */
    bool squash = false;

    /** Stall fetch until the given cycle (0 = no throttle). */
    std::uint64_t throttleUntilCycle = 0;
};

/** Decides trigger/action policy for exposure reduction. */
class ExposurePolicy
{
  public:
    virtual ~ExposurePolicy() = default;

    /**
     * Called once per correct-path demand load, at the cycle the
     * pipeline learns which level serviced it (the "signal from the
     * memory system" of Section 6.3).
     *
     * @param level the level that serviced the load
     * @param detect_cycle the cycle the miss level became known
     * @param fill_cycle the cycle the data returns
     */
    virtual ExposureDecision
    onLoadServiced(memory::HitLevel level, std::uint64_t detect_cycle,
                   std::uint64_t fill_cycle) = 0;
};

} // namespace cpu
} // namespace ser

#endif // SER_CPU_HOOKS_HH
