/**
 * @file
 * The Post-commit Error Tracking (PET) buffer (Section 4.3.3, (1)).
 *
 * A FIFO log of retired instructions. When the oldest entry is
 * evicted with its pi bit set, the buffer is scanned: if the entry's
 * destination was overwritten by a later retired instruction before
 * any read, the instruction was first-level dynamically dead and the
 * error was false — no machine check is raised. Otherwise the error
 * must be signalled (and, unlike the pi-bit-everywhere schemes, the
 * offending instruction is known precisely).
 *
 * Two interfaces are provided:
 *  - an operational PetBuffer the tests and fault-injection demos
 *    drive with a retired-instruction stream, and
 *  - an analytical petCoverage() that computes, from the deadness
 *    labels, what fraction of FDD instructions a given buffer size
 *    proves dead — the data behind the paper's Figure 3.
 */

#ifndef SER_CORE_PET_BUFFER_HH
#define SER_CORE_PET_BUFFER_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "avf/deadness.hh"
#include "isa/static_inst.hh"
#include "sim/stats.hh"

namespace ser
{

namespace trace
{
class TraceWriter;
}

namespace core
{

/** One retired instruction as logged by the PET buffer. */
struct PetEntry
{
    std::uint64_t seq = 0;  ///< retire order
    isa::StaticInst inst;
    bool qpTrue = true;
    std::uint64_t memAddr = 0;  ///< stores/loads (memory mode)
    bool pi = false;            ///< possibly-incorrect bit
};

/** What happened when an entry with pi set was evicted. */
struct PetEviction
{
    std::uint64_t seq;     ///< the evicted instruction
    bool provenDead;       ///< overwrite-before-read found in buffer
    bool signalled;        ///< machine check raised
};

/** Operational FIFO PET buffer. */
class PetBuffer : public statistics::StatGroup
{
  public:
    /**
     * @param size buffer capacity in retired instructions
     * @param track_memory also prove dead stores (Figure 3's
     *        FDD-via-memory series); base design covers registers
     * @param include_returns kept for symmetry with the analytical
     *        study: the operational scan naturally covers
     *        return-established FDDs if the overwrite is in window
     */
    explicit PetBuffer(std::size_t size, bool track_memory = false,
                       statistics::StatGroup *parent = nullptr);

    /**
     * Log a retired instruction. If the buffer was full, the oldest
     * entry is evicted; if its pi bit was set, the scan runs and the
     * eviction outcome is returned.
     */
    std::optional<PetEviction> retire(const PetEntry &entry);

    /** Drain remaining entries (end of run); pi-set entries that
     * cannot be proven dead are signalled. */
    std::vector<PetEviction> drain();

    std::size_t size() const { return _entries.size(); }
    std::size_t capacity() const { return _capacity; }

    /**
     * Attach a trace-event writer (may be null). Pi-bit sets (at log
     * time) and pi evictions (proven dead and deallocated, or
     * signalled as a machine check) are emitted as instants on the
     * PET track, timestamped by retire index — the buffer's natural
     * timebase, distinct from the pipeline's cycle timebase.
     */
    void setTraceWriter(trace::TraceWriter *tw);

  private:
    PetEviction evict();
    bool scanProvesDead(const PetEntry &victim) const;
    static bool readsReg(const PetEntry &entry, isa::RegClass rc,
                         std::uint8_t reg);
    static bool writesReg(const PetEntry &entry, isa::RegClass rc,
                          std::uint8_t reg);

    std::size_t _capacity;
    bool _trackMemory;
    std::deque<PetEntry> _entries;
    trace::TraceWriter *_tw = nullptr;
    std::uint64_t _retireTicks = 0;  ///< trace timebase

    statistics::Scalar statRetired;
    statistics::Scalar statPiEvictions;
    statistics::Scalar statProvenDead;
    statistics::Scalar statSignalled;
};

/** Analytical PET coverage of dead defs at one buffer size. */
struct PetCoverage
{
    // Population sizes (first-level dead defs by category).
    std::uint64_t fddRegNonReturn = 0;
    std::uint64_t fddRegReturn = 0;
    std::uint64_t fddMem = 0;
    // Of those, how many a size-S buffer proves dead.
    std::uint64_t coveredNonReturn = 0;
    std::uint64_t coveredReturn = 0;
    std::uint64_t coveredMem = 0;

    double fracNonReturn() const
    {
        return fddRegNonReturn ? double(coveredNonReturn) /
                                     double(fddRegNonReturn)
                               : 0.0;
    }
    /** Coverage of all FDD-via-register including return-FDDs. */
    double fracRegWithReturns() const
    {
        std::uint64_t total = fddRegNonReturn + fddRegReturn;
        return total ? double(coveredNonReturn + coveredReturn) /
                           double(total)
                     : 0.0;
    }
    /** Coverage of all FDD (registers + memory). */
    double fracAll() const
    {
        std::uint64_t total =
            fddRegNonReturn + fddRegReturn + fddMem;
        return total ? double(coveredNonReturn + coveredReturn +
                              coveredMem) /
                           double(total)
                     : 0.0;
    }
};

/** Coverage of a size-'size' PET buffer, from the deadness labels. */
PetCoverage petCoverage(const avf::DeadnessResult &deadness,
                        std::uint32_t size);

} // namespace core
} // namespace ser

#endif // SER_CORE_PET_BUFFER_HH
