/**
 * @file
 * False-DUE coverage accounting across tracking levels (Figure 2).
 *
 * Starting from the AVF breakdown of a parity-protected instruction
 * queue, computes how much of the false DUE AVF each cumulative
 * tracking level eliminates: pi-to-commit removes wrong-path and
 * predicated-false contributions, the anti-pi bit removes neutral
 * instructions, the PET buffer removes the provably-dead slice of
 * FDD-via-register exposure (weighted by residency, using each
 * exposure's overwrite distance), the register-file pi bit removes
 * all FDD via registers, the store-buffer pi removes TDD via
 * registers, and pi-on-memory removes the rest.
 */

#ifndef SER_CORE_DUE_TRACKER_HH
#define SER_CORE_DUE_TRACKER_HH

#include <array>
#include <cstdint>
#include <string>

#include "avf/avf.hh"
#include "core/tracking.hh"

namespace ser
{
namespace core
{

/** Figure-2 style coverage results for one run. */
struct FalseDueAnalysis
{
    /** False DUE AVF with plain parity (signal on detect). */
    double baseFalseDueAvf = 0.0;

    /** True DUE AVF (unchanged by the tracking mechanisms). */
    double trueDueAvf = 0.0;

    /** Residual false DUE AVF after each cumulative level. */
    std::array<double, numTrackingLevels> residualFalseDue{};

    /** Fraction of the base false DUE AVF removed by each level. */
    double coveredFraction(TrackingLevel level) const
    {
        if (baseFalseDueAvf <= 0.0)
            return 1.0;
        return 1.0 -
               residualFalseDue[static_cast<int>(level)] /
                   baseFalseDueAvf;
    }

    /** Total DUE AVF at a level: true DUE + residual false DUE. */
    double dueAvf(TrackingLevel level) const
    {
        return trueDueAvf +
               residualFalseDue[static_cast<int>(level)];
    }

    std::string summary() const;
};

/** Bit-cycle-weighted PET coverage of FDD-via-register exposure. */
std::uint64_t petCoveredBitCycles(const avf::AvfResult &avf,
                                  std::uint32_t pet_size);

/** Analyze false-DUE coverage for every tracking level. */
FalseDueAnalysis analyzeFalseDue(const avf::AvfResult &avf,
                                 std::uint32_t pet_size = 512);

} // namespace core
} // namespace ser

#endif // SER_CORE_DUE_TRACKER_HH
