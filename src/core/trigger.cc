#include "trigger.hh"

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace ser
{
namespace core
{

const char *
triggerLevelName(TriggerLevel level)
{
    switch (level) {
      case TriggerLevel::None: return "none";
      case TriggerLevel::L0Miss: return "l0-miss";
      case TriggerLevel::L1Miss: return "l1-miss";
      case TriggerLevel::L2Miss: return "l2-miss";
    }
    return "?";
}

const char *
triggerActionName(TriggerAction action)
{
    switch (action) {
      case TriggerAction::Squash: return "squash";
      case TriggerAction::Throttle: return "throttle";
      case TriggerAction::SquashThrottle: return "squash+throttle";
    }
    return "?";
}

MissTriggerPolicy::MissTriggerPolicy(TriggerLevel level,
                                     TriggerAction action,
                                     statistics::StatGroup *parent)
    : StatGroup("trigger", parent), _level(level), _action(action),
      statFired(this, "fired", "trigger activations"),
      statIgnored(this, "ignored", "loads below the trigger level")
{
}

bool
MissTriggerPolicy::fires(memory::HitLevel served) const
{
    using memory::HitLevel;
    switch (_level) {
      case TriggerLevel::None:
        return false;
      case TriggerLevel::L0Miss:
        return served != HitLevel::L0;
      case TriggerLevel::L1Miss:
        return served == HitLevel::L2 || served == HitLevel::Memory;
      case TriggerLevel::L2Miss:
        return served == HitLevel::Memory;
    }
    return false;
}

cpu::ExposureDecision
MissTriggerPolicy::onLoadServiced(memory::HitLevel level,
                                  std::uint64_t detect_cycle,
                                  std::uint64_t fill_cycle)
{
    cpu::ExposureDecision d;
    // No point acting on a miss whose data is already (about to be)
    // back — e.g. a secondary miss caught late in its fill.
    if (!fires(level) || fill_cycle <= detect_cycle) {
        ++statIgnored;
        SER_DPRINTF(Trigger,
                    "cycle {}: load served at {} ignored "
                    "(below {} or fill imminent at {})",
                    detect_cycle, memory::hitLevelName(level),
                    triggerLevelName(_level), fill_cycle);
        return d;
    }
    ++statFired;
    SER_DPRINTF(Trigger,
                "cycle {}: {} fired on {} hit, action {}, "
                "fill at {}",
                detect_cycle, triggerLevelName(_level),
                memory::hitLevelName(level),
                triggerActionName(_action), fill_cycle);
    if (_action == TriggerAction::Squash ||
        _action == TriggerAction::SquashThrottle)
        d.squash = true;
    if (_action == TriggerAction::Throttle ||
        _action == TriggerAction::SquashThrottle)
        d.throttleUntilCycle = fill_cycle;
    return d;
}

std::unique_ptr<MissTriggerPolicy>
makeTriggerPolicy(const std::string &level, const std::string &action,
                  statistics::StatGroup *parent)
{
    TriggerLevel lvl;
    if (level == "none")
        lvl = TriggerLevel::None;
    else if (level == "l0")
        lvl = TriggerLevel::L0Miss;
    else if (level == "l1")
        lvl = TriggerLevel::L1Miss;
    else if (level == "l2")
        lvl = TriggerLevel::L2Miss;
    else
        SER_FATAL("unknown trigger level '{}'", level);

    TriggerAction act;
    if (action == "squash")
        act = TriggerAction::Squash;
    else if (action == "throttle")
        act = TriggerAction::Throttle;
    else if (action == "both")
        act = TriggerAction::SquashThrottle;
    else
        SER_FATAL("unknown trigger action '{}'", action);

    return std::make_unique<MissTriggerPolicy>(lvl, act, parent);
}

} // namespace core
} // namespace ser
