/**
 * @file
 * The cumulative false-DUE tracking levels of Section 4.3.
 *
 * Each level adds hardware (and coverage) on top of the previous:
 *
 *   PiToCommit    carry the pi bit to the retire unit; ignore it for
 *                 wrong-path and predicated-false instructions.
 *   AntiPi        + an anti-pi bit set at decode for neutral
 *                 instruction types (no-ops, prefetches, hints).
 *   PetBuffer     + a post-commit log proving a subset of FDD-via-
 *                 register instructions dead (overwrite before read
 *                 within the buffer window).
 *   PiRegFile     + a pi bit per register: all FDD via registers.
 *   PiStoreBuffer + pi propagated along dependences to the store
 *                 buffer: adds TDD via registers.
 *   PiMemory      + pi bits on caches/memory, signalling only at
 *                 I/O: adds FDD/TDD via memory (100% coverage).
 */

#ifndef SER_CORE_TRACKING_HH
#define SER_CORE_TRACKING_HH

#include <cstdint>

#include "avf/avf.hh"

namespace ser
{
namespace core
{

/** Cumulative tracking levels, in the paper's Figure 2 order. */
enum class TrackingLevel : std::uint8_t
{
    None,           ///< plain parity: signal on detection
    PiToCommit,
    AntiPi,
    PetBuffer,
    PiRegFile,
    PiStoreBuffer,
    PiMemory,
    NumLevels
};

constexpr int numTrackingLevels =
    static_cast<int>(TrackingLevel::NumLevels);

const char *trackingLevelName(TrackingLevel level);

/**
 * Does 'level' fully cover false DUEs from the given un-ACE source?
 * (FddReg at the PetBuffer level is only partially covered; that
 * partial coverage is computed by DueTracker from the exposure
 * records.)
 */
bool coversSource(TrackingLevel level, avf::UnAceSource source);

/**
 * Can the mechanism still name the exact instruction that suffered
 * the error when it finally signals? (Paper Section 4.3.3: the PET
 * buffer can, the pi-bit-everywhere schemes cannot.)
 */
bool preciseAttribution(TrackingLevel level);

} // namespace core
} // namespace ser

#endif // SER_CORE_TRACKING_HH
