/**
 * @file
 * Trigger/action policies for exposure reduction (paper Section 3.1).
 *
 * A trigger is an event that presages a long stall — here, a demand
 * load being serviced below a given cache level. An action reduces
 * the exposure of valid state to strikes — here, squashing every
 * not-yet-issued instruction-queue entry (refetched later), and/or
 * throttling fetch until the miss returns.
 *
 * The paper evaluates "squash on L0 load misses" and "squash on L1
 * load misses"; both are instances of MissTriggerPolicy.
 */

#ifndef SER_CORE_TRIGGER_HH
#define SER_CORE_TRIGGER_HH

#include <memory>
#include <string>

#include "cpu/hooks.hh"
#include "sim/stats.hh"

namespace ser
{
namespace core
{

/** Which miss level arms the trigger. */
enum class TriggerLevel : std::uint8_t
{
    None,    ///< never trigger (the baseline)
    L0Miss,  ///< any load serviced below the L0
    L1Miss,  ///< any load serviced below the L1
    L2Miss,  ///< any load serviced by main memory
};

const char *triggerLevelName(TriggerLevel level);

/** What to do when the trigger fires. */
enum class TriggerAction : std::uint8_t
{
    Squash,         ///< flush not-yet-issued queue entries
    Throttle,       ///< stall fetch until the fill returns
    SquashThrottle, ///< both
};

const char *triggerActionName(TriggerAction action);

/** Squash and/or throttle when a load misses past the given level. */
class MissTriggerPolicy : public cpu::ExposurePolicy,
                          public statistics::StatGroup
{
  public:
    MissTriggerPolicy(TriggerLevel level, TriggerAction action,
                      statistics::StatGroup *parent = nullptr);

    cpu::ExposureDecision
    onLoadServiced(memory::HitLevel level, std::uint64_t detect_cycle,
                   std::uint64_t fill_cycle) override;

    TriggerLevel level() const { return _level; }
    TriggerAction action() const { return _action; }

  private:
    bool fires(memory::HitLevel served) const;

    TriggerLevel _level;
    TriggerAction _action;

    statistics::Scalar statFired;
    statistics::Scalar statIgnored;
};

/** Factory from config strings ("none", "l0", "l1", "l2") and
 * ("squash", "throttle", "both"). */
std::unique_ptr<MissTriggerPolicy>
makeTriggerPolicy(const std::string &level, const std::string &action,
                  statistics::StatGroup *parent = nullptr);

} // namespace core
} // namespace ser

#endif // SER_CORE_TRIGGER_HH
