#include "due_tracker.hh"

#include <sstream>

namespace ser
{
namespace core
{

std::uint64_t
petCoveredBitCycles(const avf::AvfResult &avf, std::uint32_t pet_size)
{
    std::uint64_t covered = 0;
    for (const auto &exposure : avf.fddRegExposures) {
        if (exposure.overwriteDist != avf::noOverwrite &&
            exposure.overwriteDist <= pet_size)
            covered += exposure.bitCycles;
    }
    return covered;
}

FalseDueAnalysis
analyzeFalseDue(const avf::AvfResult &avf, std::uint32_t pet_size)
{
    FalseDueAnalysis out;
    out.baseFalseDueAvf = avf.falseDueAvf();
    out.trueDueAvf = avf.trueDueAvf();

    std::uint64_t pet_covered = petCoveredBitCycles(avf, pet_size);

    for (int l = 0; l < numTrackingLevels; ++l) {
        auto level = static_cast<TrackingLevel>(l);
        std::uint64_t residual = 0;
        for (int s = 0; s < avf::numUnAceSources; ++s) {
            auto source = static_cast<avf::UnAceSource>(s);
            std::uint64_t bits = avf.unAceRead[s];
            if (coversSource(level, source))
                continue;
            if (source == avf::UnAceSource::FddReg &&
                level == TrackingLevel::PetBuffer) {
                // Partial coverage: only exposures whose overwrite
                // falls inside the PET window are proven dead.
                residual += bits - std::min(bits, pet_covered);
                continue;
            }
            residual += bits;
        }
        out.residualFalseDue[l] = avf.frac(residual);
    }
    return out;
}

std::string
FalseDueAnalysis::summary() const
{
    std::ostringstream os;
    os << "true DUE AVF " << trueDueAvf * 100
       << "%, base false DUE AVF " << baseFalseDueAvf * 100 << "%\n";
    for (int l = 0; l < numTrackingLevels; ++l) {
        auto level = static_cast<TrackingLevel>(l);
        os << "  " << trackingLevelName(level) << ": residual false "
           << residualFalseDue[l] * 100 << "% (covered "
           << coveredFraction(level) * 100 << "%), total DUE "
           << dueAvf(level) * 100 << "%\n";
    }
    return os.str();
}

} // namespace core
} // namespace ser
