/**
 * @file
 * Fault classification under pi-bit tracking (faults x core bridge).
 *
 * A parity-protected queue that defers via the pi machinery no
 * longer signals at detection: the deferred error is re-classified
 * by replaying the pi propagation. False DUEs whose deferral proves
 * them harmless become benign (outcome 3); everything the machinery
 * still signals remains a DUE. This is the operational version of
 * the Figure 2 coverage numbers, usable directly in fault-injection
 * campaigns.
 */

#ifndef SER_CORE_TRACKED_INJECTION_HH
#define SER_CORE_TRACKED_INJECTION_HH

#include "core/pi_machine.hh"
#include "faults/campaign.hh"
#include "faults/injector.hh"

namespace ser
{
namespace core
{

/**
 * Classify a fault on a parity-protected queue that defers errors
 * at the given tracking level (instead of signalling on detection).
 */
faults::FaultResult
classifyTracked(const faults::FaultInjector &injector,
                const cpu::SimTrace &trace, const PiMachine &machine,
                const faults::FaultSite &site);

/** Monte-Carlo campaign under a tracking level. */
faults::CampaignResult
runTrackedCampaign(const faults::FaultInjector &injector,
                   const cpu::SimTrace &trace,
                   const PiMachine &machine,
                   const faults::CampaignConfig &config);

} // namespace core
} // namespace ser

#endif // SER_CORE_TRACKED_INJECTION_HH
