#include "pi_machine.hh"

#include <array>
#include <unordered_set>

#include "core/pet_buffer.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace ser
{
namespace core
{

const char *
piSignalPointName(PiSignalPoint point)
{
    switch (point) {
      case PiSignalPoint::Suppressed: return "suppressed";
      case PiSignalPoint::AtDetection: return "at-detection";
      case PiSignalPoint::AtCommit: return "at-commit";
      case PiSignalPoint::AtPetEviction: return "at-pet-eviction";
      case PiSignalPoint::AtRegisterRead: return "at-register-read";
      case PiSignalPoint::AtStoreCommit: return "at-store-commit";
      case PiSignalPoint::AtControl: return "at-control";
      case PiSignalPoint::AtPredicate: return "at-predicate";
      case PiSignalPoint::AtOutput: return "at-output";
      case PiSignalPoint::OutOfScope: return "out-of-scope";
    }
    return "?";
}

PiMachine::PiMachine(const cpu::SimTrace &trace, TrackingLevel level,
                     std::size_t pet_size)
    : _trace(trace), _level(level), _petSize(pet_size)
{
    if (!trace.program)
        SER_PANIC("PiMachine: trace has no program");
}

namespace
{

PiOutcome
signalAt(PiSignalPoint point, std::uint64_t seq)
{
    return {true, point, seq};
}

constexpr PiOutcome suppressed{};

/** Poison state over the three register files. */
struct PoisonRegs
{
    std::array<bool, isa::numIntRegs> intRegs{};
    std::array<bool, isa::numFpRegs> fpRegs{};
    std::array<bool, isa::numPredRegs> predRegs{};

    bool &slot(isa::RegClass rc, std::uint8_t reg)
    {
        // Write-sink for ignored registers; thread_local because
        // SuiteRunner workers run independent machines concurrently.
        thread_local bool scratch;
        switch (rc) {
          case isa::RegClass::Int:
            if (reg != 0)
                return intRegs[reg];
            break;
          case isa::RegClass::Fp:
            if (reg > 1)
                return fpRegs[reg];
            break;
          case isa::RegClass::Pred:
            if (reg != 0)
                return predRegs[reg];
            break;
          case isa::RegClass::None:
            break;
        }
        scratch = false;  // hardwired registers never carry poison
        return scratch;
    }

    bool any() const
    {
        for (bool b : intRegs)
            if (b)
                return true;
        for (bool b : fpRegs)
            if (b)
                return true;
        for (bool b : predRegs)
            if (b)
                return true;
        return false;
    }
};

} // namespace

PiOutcome
PiMachine::runPet(std::uint64_t seq, int dst_override) const
{
    const auto &commits = _trace.commits;
    PetBuffer pet(_petSize);

    auto entry_for = [&](std::uint64_t j, bool poisoned) {
        PetEntry e;
        e.seq = j;
        e.inst = _trace.program->inst(commits[j].staticIdx);
        e.qpTrue = commits[j].qpTrue != 0;
        e.memAddr = commits[j].memAddr;
        e.pi = poisoned;
        if (poisoned && dst_override >= 0 && e.inst.hasDst()) {
            // The PET logs the instruction as fetched — with the
            // (possibly corrupted) destination specifier.
            e.inst = isa::StaticInst(
                e.inst.opcode(), e.inst.qp(),
                static_cast<std::uint8_t>(dst_override),
                e.inst.src1(), e.inst.src2(), e.inst.imm());
        }
        return e;
    };

    // Only the poisoned instruction and its PET window matter; the
    // scan resolves by the time _petSize more instructions retire.
    std::uint64_t end =
        std::min<std::uint64_t>(commits.size(),
                                seq + _petSize + 2);
    for (std::uint64_t j = seq; j < end; ++j) {
        auto ev = pet.retire(entry_for(j, j == seq));
        if (ev && ev->seq == seq) {
            return ev->provenDead
                       ? suppressed
                       : signalAt(PiSignalPoint::AtPetEviction, j);
        }
    }
    for (const auto &ev : pet.drain()) {
        if (ev.seq == seq) {
            return ev.provenDead
                       ? suppressed
                       : signalAt(PiSignalPoint::AtPetEviction,
                                  commits.size() - 1);
        }
    }
    SER_PANIC("PiMachine: PET never evicted the poisoned entry");
}

PiOutcome
PiMachine::runRegisterTracking(std::uint64_t seq, bool with_memory,
                               int dst_override) const
{
    const auto &commits = _trace.commits;
    const isa::Program &program = *_trace.program;
    const cpu::CommitRecord &rec = commits[seq];
    const isa::StaticInst &pinst = program.inst(rec.staticIdx);

    const bool reg_file_only = _level == TrackingLevel::PiRegFile;

    PoisonRegs poison;
    std::unordered_set<std::uint64_t> poison_mem;

    // Seed the poison from the flagged instruction itself.
    if (pinst.isBranch())
        return signalAt(PiSignalPoint::AtControl, seq);
    if (pinst.isOutput())
        return signalAt(PiSignalPoint::AtOutput, seq);
    if (pinst.isHalt())
        return signalAt(PiSignalPoint::AtCommit, seq);
    if (pinst.isStore()) {
        if (_level == TrackingLevel::PiMemory &&
            rec.memAddr % 8 == 0) {
            poison_mem.insert(rec.memAddr);
        } else if (_level == TrackingLevel::PiMemory) {
            return signalAt(PiSignalPoint::OutOfScope, seq);
        } else {
            return signalAt(PiSignalPoint::AtStoreCommit, seq);
        }
    } else if (pinst.hasDst()) {
        // The pi bit follows the value to the register actually
        // written — which, if the destination specifier itself was
        // struck, is not the architectural destination.
        std::uint8_t dst =
            dst_override >= 0
                ? static_cast<std::uint8_t>(dst_override)
                : pinst.dst();
        poison.slot(pinst.dstClass(), dst) = true;
        // Writes to hardwired registers are discarded; the poison
        // dies with them.
        if (!poison.slot(pinst.dstClass(), dst))
            return suppressed;
    } else {
        // No destination and no memory effect (should not happen
        // for non-neutral instructions).
        return signalAt(PiSignalPoint::AtCommit, seq);
    }

    for (std::uint64_t j = seq + 1; j < commits.size(); ++j) {
        const cpu::CommitRecord &cr = commits[j];
        const isa::StaticInst &inst = program.inst(cr.staticIdx);
        const isa::OpInfo &oi = inst.info();

        // Qualifying predicates are consulted even when they
        // nullify: a poisoned predicate means the nullification
        // decision itself is suspect.
        if (inst.qp() != 0 && poison.predRegs[inst.qp()])
            return signalAt(PiSignalPoint::AtPredicate, j);
        if (!cr.qpTrue)
            continue;

        bool src1_poisoned =
            oi.src1Class != isa::RegClass::None &&
            poison.slot(oi.src1Class, inst.src1());
        bool src2_poisoned =
            oi.src2Class != isa::RegClass::None &&
            poison.slot(oi.src2Class, inst.src2());

        if (reg_file_only) {
            // Level 4: signal on any read of a poisoned register.
            if (src1_poisoned || src2_poisoned)
                return signalAt(PiSignalPoint::AtRegisterRead, j);
            // Overwrite before read clears the poison.
            if (inst.hasDst())
                poison.slot(inst.dstClass(), inst.dst()) = false;
            if (!poison.any())
                return suppressed;
            continue;
        }

        bool gather = src1_poisoned || src2_poisoned;
        if (with_memory && inst.isLoad()) {
            if (cr.memAddr % 8 == 0) {
                gather = gather || poison_mem.count(cr.memAddr) > 0;
            } else {
                // Misaligned loads of a poisoned word: treat as a
                // poisoned read of both touched words.
                std::uint64_t w0 = cr.memAddr / 8 * 8;
                gather = gather || poison_mem.count(w0) ||
                         poison_mem.count(w0 + 8);
            }
        }

        if (inst.isPrefetch())
            continue;  // neutral reader: poison is harmless here

        if (inst.isStore()) {
            if (src1_poisoned) {
                // Poisoned address: we no longer know where the
                // value went.
                return signalAt(PiSignalPoint::OutOfScope, j);
            }
            if (!with_memory) {
                if (src2_poisoned)
                    return signalAt(PiSignalPoint::AtStoreCommit, j);
                continue;
            }
            if (cr.memAddr % 8 == 0) {
                // The store overwrites the word: poison follows the
                // data (set or cleared).
                if (src2_poisoned)
                    poison_mem.insert(cr.memAddr);
                else
                    poison_mem.erase(cr.memAddr);
            } else if (src2_poisoned) {
                return signalAt(PiSignalPoint::OutOfScope, j);
            }
            continue;
        }
        if (inst.isOutput()) {
            if (gather)
                return signalAt(PiSignalPoint::AtOutput, j);
            continue;
        }
        if (inst.isBranch()) {
            if (gather)
                return signalAt(PiSignalPoint::AtControl, j);
            continue;
        }
        if (inst.isHalt())
            break;

        if (inst.hasDst())
            poison.slot(inst.dstClass(), inst.dst()) = gather;
        if (!gather && !poison.any() && poison_mem.empty())
            return suppressed;
    }

    // End of the trace. With a complete program, anything still
    // poisoned is dead state; with a truncated trace we must assume
    // it could still matter.
    if (_trace.programHalted)
        return suppressed;
    if (poison.any() || !poison_mem.empty())
        return signalAt(PiSignalPoint::OutOfScope,
                        commits.size() - 1);
    return suppressed;
}

PiOutcome
PiMachine::run(std::uint64_t poisoned_seq, int dst_override) const
{
    const auto &commits = _trace.commits;
    if (poisoned_seq >= commits.size())
        SER_PANIC("PiMachine: seq {} out of range ({})", poisoned_seq,
                  commits.size());

    PiOutcome out = runLevel(poisoned_seq, dst_override);
    SER_DPRINTF(Pi, "seq {} at {}: {} (seq {})", poisoned_seq,
                trackingLevelName(_level),
                out.signalled ? piSignalPointName(out.point)
                              : "suppressed",
                out.signalSeq);
    return out;
}

PiOutcome
PiMachine::runLevel(std::uint64_t poisoned_seq,
                    int dst_override) const
{
    const auto &commits = _trace.commits;

    if (_level == TrackingLevel::None)
        return signalAt(PiSignalPoint::AtDetection, poisoned_seq);

    const cpu::CommitRecord &rec = commits[poisoned_seq];
    const isa::StaticInst &inst =
        _trace.program->inst(rec.staticIdx);

    // The retire unit ignores the pi bit of predicated-false
    // instructions (Section 4.3.1); wrong-path instructions never
    // reach this code because they never commit.
    if (!rec.qpTrue)
        return suppressed;

    // The anti-pi bit neutralises errors on neutral instruction
    // types (Section 4.3.2).
    if (inst.isNeutral()) {
        if (static_cast<int>(_level) >=
            static_cast<int>(TrackingLevel::AntiPi))
            return suppressed;
        return signalAt(PiSignalPoint::AtCommit, poisoned_seq);
    }

    switch (_level) {
      case TrackingLevel::PiToCommit:
      case TrackingLevel::AntiPi:
        return signalAt(PiSignalPoint::AtCommit, poisoned_seq);
      case TrackingLevel::PetBuffer:
        return runPet(poisoned_seq, dst_override);
      case TrackingLevel::PiRegFile:
      case TrackingLevel::PiStoreBuffer:
        return runRegisterTracking(poisoned_seq, false,
                                   dst_override);
      case TrackingLevel::PiMemory:
        return runRegisterTracking(poisoned_seq, true,
                                   dst_override);
      case TrackingLevel::None:
      case TrackingLevel::NumLevels:
        break;
    }
    SER_PANIC("PiMachine: bad tracking level");
}

} // namespace core
} // namespace ser
