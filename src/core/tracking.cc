#include "tracking.hh"

namespace ser
{
namespace core
{

const char *
trackingLevelName(TrackingLevel level)
{
    switch (level) {
      case TrackingLevel::None: return "parity-only";
      case TrackingLevel::PiToCommit: return "pi-to-commit";
      case TrackingLevel::AntiPi: return "+anti-pi";
      case TrackingLevel::PetBuffer: return "+pet-buffer";
      case TrackingLevel::PiRegFile: return "+pi-reg-file";
      case TrackingLevel::PiStoreBuffer: return "+pi-store-buffer";
      case TrackingLevel::PiMemory: return "+pi-memory";
      case TrackingLevel::NumLevels: break;
    }
    return "?";
}

bool
coversSource(TrackingLevel level, avf::UnAceSource source)
{
    using avf::UnAceSource;
    auto at_least = [&](TrackingLevel needed) {
        return static_cast<int>(level) >= static_cast<int>(needed);
    };
    switch (source) {
      case UnAceSource::WrongPath:
      case UnAceSource::PredFalse:
        return at_least(TrackingLevel::PiToCommit);
      case UnAceSource::Neutral:
        return at_least(TrackingLevel::AntiPi);
      case UnAceSource::FddReg:
        // Fully covered only from PiRegFile on; the PET level's
        // partial coverage is handled separately.
        return at_least(TrackingLevel::PiRegFile);
      case UnAceSource::TddReg:
        return at_least(TrackingLevel::PiStoreBuffer);
      case UnAceSource::FddMem:
      case UnAceSource::TddMem:
        return at_least(TrackingLevel::PiMemory);
      case UnAceSource::NumSources:
        break;
    }
    return false;
}

bool
preciseAttribution(TrackingLevel level)
{
    return static_cast<int>(level) <=
           static_cast<int>(TrackingLevel::PetBuffer);
}

} // namespace core
} // namespace ser
