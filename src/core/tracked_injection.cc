#include "tracked_injection.hh"

#include "isa/encoding.hh"
#include "sim/rng.hh"

namespace ser
{
namespace core
{

faults::FaultResult
classifyTracked(const faults::FaultInjector &injector,
                const cpu::SimTrace &trace, const PiMachine &machine,
                const faults::FaultSite &site)
{
    using faults::Outcome;
    faults::FaultResult base =
        injector.classify(site, faults::Protection::Parity);
    if (base.outcome != Outcome::FalseDue &&
        base.outcome != Outcome::TrueDue)
        return base;  // never detected: tracking changes nothing

    // The detection is deferred instead of signalled. Wrong-path
    // and squashed incarnations never commit, so the pi bit is
    // never examined: suppressed from pi-to-commit onwards.
    const auto &inc = trace.incarnations[static_cast<std::size_t>(
        base.incarnationIndex)];
    if (inc.flags & cpu::incWrongPath) {
        if (machine.level() != TrackingLevel::None)
            base.outcome = Outcome::BenignNoError;
        return base;
    }
    if (!(inc.flags & cpu::incCommitted))
        return base;  // conservative: signal if it cannot retire

    // If the struck bit is in the destination-specifier field, the
    // pi bit follows the value to the register actually written.
    int dst_override = -1;
    if (site.isPayload() &&
        isa::fieldForBit(site.bit) == isa::Field::Dst) {
        const isa::StaticInst &inst =
            trace.program->inst(inc.staticIdx);
        if (inst.hasDst()) {
            int flipped_bit = site.bit - isa::encoding::dstShift;
            dst_override = (inst.dst() ^ (1 << flipped_bit)) & 0x3f;
        }
    }

    PiOutcome deferred = machine.run(inc.oracleSeq, dst_override);
    if (!deferred.signalled) {
        // Suppressing a would-have-been-true error means the
        // tracking scheme converted a DUE back into silent data
        // corruption (e.g. the stale architectural destination of a
        // dst-field strike): report it as what it is.
        base.outcome = base.outcome == Outcome::TrueDue
                           ? Outcome::Sdc
                           : Outcome::BenignNoError;
    }
    return base;
}

faults::CampaignResult
runTrackedCampaign(const faults::FaultInjector &injector,
                   const cpu::SimTrace &trace,
                   const PiMachine &machine,
                   const faults::CampaignConfig &config)
{
    Rng rng(config.seed);
    faults::CampaignResult result;
    result.samples = config.samples;
    std::uint64_t window = trace.endCycle - trace.startCycle;
    for (std::uint64_t i = 0; i < config.samples; ++i) {
        faults::FaultSite site;
        site.entry = static_cast<std::uint16_t>(
            rng.range(trace.iqEntries));
        site.bit = static_cast<std::uint8_t>(rng.range(
            config.payloadOnly ? faults::payloadBits
                               : faults::entryBits));
        site.cycle = trace.startCycle + rng.range(window);
        auto fr = classifyTracked(injector, trace, machine, site);
        ++result.counts[static_cast<std::size_t>(fr.outcome)];
    }
    return result;
}

} // namespace core
} // namespace ser
