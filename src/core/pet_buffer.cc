#include "pet_buffer.hh"

#include "sim/debug.hh"
#include "sim/trace_event.hh"

namespace ser
{
namespace core
{

PetBuffer::PetBuffer(std::size_t size, bool track_memory,
                     statistics::StatGroup *parent)
    : StatGroup("pet", parent), _capacity(size),
      _trackMemory(track_memory),
      statRetired(this, "retired", "instructions logged"),
      statPiEvictions(this, "pi_evictions",
                      "evictions with the pi bit set"),
      statProvenDead(this, "proven_dead",
                     "pi evictions proven first-level dead"),
      statSignalled(this, "signalled",
                    "pi evictions that raised a machine check")
{
}

void
PetBuffer::setTraceWriter(trace::TraceWriter *tw)
{
    _tw = tw;
    if (_tw)
        _tw->threadName(trace::tracks::petBuffer, "pi / PET buffer");
}

bool
PetBuffer::readsReg(const PetEntry &entry, isa::RegClass rc,
                    std::uint8_t reg)
{
    const isa::StaticInst &inst = entry.inst;
    const isa::OpInfo &oi = inst.info();
    // The qualifying predicate is read even when it nullifies.
    if (rc == isa::RegClass::Pred && inst.qp() == reg)
        return true;
    if (!entry.qpTrue)
        return false;
    if (oi.src1Class == rc && inst.src1() == reg)
        return true;
    if (oi.src2Class == rc && inst.src2() == reg)
        return true;
    return false;
}

bool
PetBuffer::writesReg(const PetEntry &entry, isa::RegClass rc,
                     std::uint8_t reg)
{
    return entry.qpTrue && entry.inst.dstClass() == rc &&
           entry.inst.dst() == reg;
}

bool
PetBuffer::scanProvesDead(const PetEntry &victim) const
{
    if (!victim.qpTrue)
        return false;  // nullified instructions produced nothing
    const isa::StaticInst &inst = victim.inst;

    if (inst.hasDst()) {
        isa::RegClass rc = inst.dstClass();
        std::uint8_t reg = inst.dst();
        for (const PetEntry &later : _entries) {
            // Reads are checked before the write so an instruction
            // that both reads and overwrites the register (e.g.
            // addi r4 = r4, 1) counts as a read.
            if (readsReg(later, rc, reg))
                return false;
            if (writesReg(later, rc, reg))
                return true;
        }
        return false;  // no overwrite in window: cannot prove
    }

    if (_trackMemory && inst.isStore() && victim.memAddr % 8 == 0) {
        for (const PetEntry &later : _entries) {
            if (!later.qpTrue)
                continue;
            if (later.inst.isLoad() &&
                later.memAddr == victim.memAddr)
                return false;
            if (later.inst.isStore() &&
                later.memAddr == victim.memAddr)
                return true;
        }
        return false;
    }

    return false;
}

PetEviction
PetBuffer::evict()
{
    PetEntry victim = _entries.front();
    _entries.pop_front();
    PetEviction ev;
    ev.seq = victim.seq;
    ev.provenDead = scanProvesDead(victim);
    ev.signalled = !ev.provenDead;
    ++statPiEvictions;
    if (ev.provenDead)
        ++statProvenDead;
    else
        ++statSignalled;
    if (_tw)
        _tw->instant(trace::tracks::petBuffer, "pet_evict",
                     _retireTicks,
                     {{"seq", ev.seq},
                      {"proven_dead", ev.provenDead ? 1 : 0},
                      {"signalled", ev.signalled ? 1 : 0}});
    SER_DPRINTF(PET, "evict seq {}: {}", ev.seq,
                ev.provenDead ? "proven dead, suppressed"
                              : "machine check");
    return ev;
}

std::optional<PetEviction>
PetBuffer::retire(const PetEntry &entry)
{
    ++statRetired;
    ++_retireTicks;
    if (_tw && entry.pi)
        _tw->instant(trace::tracks::petBuffer, "pi_set",
                     _retireTicks, {{"seq", entry.seq}});
    // Log first, then trim: the eviction scan thus sees a full
    // 'capacity' window of younger instructions, so an overwrite at
    // distance <= capacity proves the victim dead (matching the
    // analytical petCoverage()).
    _entries.push_back(entry);
    std::optional<PetEviction> result;
    if (_entries.size() > _capacity) {
        if (_entries.front().pi) {
            result = evict();
        } else {
            _entries.pop_front();
        }
    }
    return result;
}

std::vector<PetEviction>
PetBuffer::drain()
{
    std::vector<PetEviction> out;
    while (!_entries.empty()) {
        if (_entries.front().pi)
            out.push_back(evict());
        else
            _entries.pop_front();
    }
    return out;
}

PetCoverage
petCoverage(const avf::DeadnessResult &deadness, std::uint32_t size)
{
    PetCoverage cov;
    for (std::size_t i = 0; i < deadness.kind.size(); ++i) {
        std::uint32_t dist = deadness.overwriteDist[i];
        bool covered =
            dist != avf::noOverwrite && dist <= size;
        switch (deadness.kind[i]) {
          case avf::DeadKind::FddReg:
            if (deadness.returnFdd[i]) {
                ++cov.fddRegReturn;
                if (covered)
                    ++cov.coveredReturn;
            } else {
                ++cov.fddRegNonReturn;
                if (covered)
                    ++cov.coveredNonReturn;
            }
            break;
          case avf::DeadKind::FddMem:
            ++cov.fddMem;
            if (covered)
                ++cov.coveredMem;
            break;
          default:
            break;
        }
    }
    return cov;
}

} // namespace core
} // namespace ser
