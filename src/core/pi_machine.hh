/**
 * @file
 * Operational pi-bit propagation (paper Sections 4.2 and 4.3).
 *
 * Given a committed-instruction stream and a single instruction whose
 * queue entry suffered a detected-but-deferred error (its pi bit is
 * set), PiMachine replays the stream forward and decides whether —
 * and where — the configured tracking level finally raises the
 * machine check:
 *
 *   PiToCommit     signal at the instruction's commit unless the
 *                  retire unit can ignore it (predicated-false; the
 *                  caller handles wrong-path, which never commits).
 *   AntiPi         + neutral instructions never signal.
 *   PetBuffer      + defer past commit into a PET buffer; signal only
 *                  if the scan cannot prove the instruction FDD.
 *   PiRegFile      + transfer pi to the destination register; signal
 *                  when a poisoned register is read, suppress when it
 *                  is overwritten first.
 *   PiStoreBuffer  + propagate pi along register dependences; signal
 *                  when a poisoned value reaches a store, an output,
 *                  a control transfer, or a qualifying predicate.
 *   PiMemory       + pi bits on memory words; signal only when a
 *                  poisoned value reaches output (I/O) or goes out of
 *                  scope (e.g. an address-poisoned store).
 *
 * The suppress/signal outcome at each level is, by construction, the
 * operational mirror of the analytical deadness classification — the
 * property tests check exactly that correspondence.
 */

#ifndef SER_CORE_PI_MACHINE_HH
#define SER_CORE_PI_MACHINE_HH

#include <cstdint>
#include <string>

#include "core/tracking.hh"
#include "cpu/trace.hh"

namespace ser
{
namespace core
{

/** Where a deferred error was finally signalled (or not). */
enum class PiSignalPoint : std::uint8_t
{
    Suppressed,    ///< proven harmless; no machine check
    AtDetection,   ///< plain parity (TrackingLevel::None)
    AtCommit,
    AtPetEviction,
    AtRegisterRead,
    AtStoreCommit,
    AtControl,     ///< poisoned value steered control flow
    AtPredicate,   ///< poisoned qualifying predicate consulted
    AtOutput,      ///< poisoned value reached I/O
    OutOfScope,    ///< pi could no longer be tracked; must signal
};

const char *piSignalPointName(PiSignalPoint point);

/** Outcome of one deferred-error replay. */
struct PiOutcome
{
    bool signalled = false;
    PiSignalPoint point = PiSignalPoint::Suppressed;
    /** Commit index at which the signal was raised (if any). */
    std::uint64_t signalSeq = 0;
};

/** Replays deferred errors over a commit trace. */
class PiMachine
{
  public:
    PiMachine(const cpu::SimTrace &trace, TrackingLevel level,
              std::size_t pet_size = 512);

    /**
     * The queue entry of commit-index 'poisoned_seq' had a detected
     * error; replay forward and decide the outcome.
     *
     * 'dst_override': when the detected error may have corrupted
     * the destination-specifier field, the pi bit follows the value
     * to the register the instruction *actually* writes — pass that
     * (corrupted) register number so suppression decisions track
     * the real dataflow. Defaults to the architectural destination.
     */
    PiOutcome run(std::uint64_t poisoned_seq,
                  int dst_override = -1) const;

    TrackingLevel level() const { return _level; }

  private:
    PiOutcome runLevel(std::uint64_t poisoned_seq,
                       int dst_override) const;
    PiOutcome runRegisterTracking(std::uint64_t seq,
                                  bool with_memory,
                                  int dst_override) const;
    PiOutcome runPet(std::uint64_t seq, int dst_override) const;

    const cpu::SimTrace &_trace;
    TrackingLevel _level;
    std::size_t _petSize;
};

} // namespace core
} // namespace ser

#endif // SER_CORE_PI_MACHINE_HH
