#include "random_program.hh"

#include <string>

#include "isa/assembler.hh"
#include "sim/rng.hh"
#include "workloads/builder.hh"

namespace ser
{
namespace workloads
{

namespace
{

constexpr std::uint64_t scratchBase = 0x40000;
constexpr unsigned scratchWords = 512;

std::string
rs(int reg)
{
    return "r" + std::to_string(reg);
}

std::string
fs(int reg)
{
    return "f" + std::to_string(reg);
}

} // namespace

isa::Program
randomProgram(std::uint64_t seed, const RandomProgramOptions &opts)
{
    Rng rng(seed);
    AsmBuilder b(seed);

    auto int_reg = [&]() {
        return static_cast<int>(rng.rangeInclusive(2, 20));
    };
    auto fp_reg = [&]() {
        return static_cast<int>(rng.rangeInclusive(2, 12));
    };
    auto pred_reg = [&]() {
        return static_cast<int>(rng.rangeInclusive(2, 8));
    };
    auto scratch_off = [&]() {
        return std::to_string(rng.range(scratchWords) * 8);
    };

    b.entry("main");
    b.label("main");
    b.op("movi r50 = " + std::to_string(scratchBase));
    // Seed a few registers with data.
    for (int r = 2; r <= 20; ++r) {
        b.op("movi " + rs(r) + " = " +
             std::to_string(rng.rangeInclusive(-100000, 100000)));
    }
    for (int f = 2; f <= 12; ++f) {
        b.op("movi r21 = " +
             std::to_string(rng.rangeInclusive(1, 1000)));
        b.op("i2f " + fs(f) + " = r21");
    }
    b.op("movi r1 = " + std::to_string(opts.loopIterations));
    b.label("loop");

    static const char *alu2[] = {"add", "sub", "mul",  "divq",
                                 "remq", "and", "or",  "xor",
                                 "andc", "shl", "shr", "sar"};
    static const char *alui[] = {"addi", "andi", "ori",
                                 "xori", "shli", "shri"};
    static const char *cmps[] = {"cmpeq", "cmpne", "cmplt",
                                 "cmple", "cmpltu"};
    static const char *fops[] = {"fadd", "fsub", "fmul", "fdiv"};

    for (unsigned i = 0; i < opts.bodyInstructions; ++i) {
        std::string qp;
        bool predicated = rng.chance(opts.predicatedFraction);
        int qp_reg = predicated ? pred_reg() : 0;

        auto emit = [&](const std::string &text) {
            if (predicated)
                b.pred(qp_reg, text);
            else
                b.op(text);
        };

        double roll = rng.uniform();
        if (roll < opts.memFraction) {
            if (rng.chance(0.5)) {
                emit("ld8 " + rs(int_reg()) + " = [r50, " +
                     scratch_off() + "]");
            } else {
                emit("st8 [r50, " + scratch_off() + "] = " +
                     rs(int_reg()));
            }
        } else if (roll < opts.memFraction + opts.branchFraction) {
            // A forward data-dependent branch over a couple of ops.
            std::string skip = b.newLabel("fwd");
            b.op(std::string(cmps[rng.range(5)]) + " p" +
                 std::to_string(pred_reg()) + " = " +
                 rs(int_reg()) + ", " + rs(int_reg()));
            int p = pred_reg();
            b.op(std::string(cmps[rng.range(5)]) + " p" +
                 std::to_string(p) + " = " + rs(int_reg()) + ", " +
                 rs(int_reg()));
            b.pred(p, "br " + skip);
            b.op(std::string(alu2[rng.range(12)]) + " " +
                 rs(int_reg()) + " = " + rs(int_reg()) + ", " +
                 rs(int_reg()));
            b.op(std::string(alui[rng.range(6)]) + " " +
                 rs(int_reg()) + " = " + rs(int_reg()) + ", " +
                 std::to_string(rng.rangeInclusive(0, 63)));
            b.label(skip);
        } else if (roll < opts.memFraction + opts.branchFraction +
                              opts.fpFraction) {
            if (rng.chance(0.3)) {
                if (rng.chance(0.5)) {
                    emit("fld " + fs(fp_reg()) + " = [r50, " +
                         scratch_off() + "]");
                } else {
                    emit("fst [r50, " + scratch_off() + "] = " +
                         fs(fp_reg()));
                }
            } else if (rng.chance(0.2)) {
                emit("i2f " + fs(fp_reg()) + " = " + rs(int_reg()));
            } else if (rng.chance(0.2)) {
                emit("f2i " + rs(int_reg()) + " = " + fs(fp_reg()));
            } else {
                emit(std::string(fops[rng.range(4)]) + " " +
                     fs(fp_reg()) + " = " + fs(fp_reg()) + ", " +
                     fs(fp_reg()));
            }
        } else if (roll < opts.memFraction + opts.branchFraction +
                              opts.fpFraction + opts.outFraction) {
            emit("out " + rs(int_reg()));
        } else if (rng.chance(0.12)) {
            emit(std::string(cmps[rng.range(5)]) + " p" +
                 std::to_string(pred_reg()) + " = " +
                 rs(int_reg()) + ", " + rs(int_reg()));
        } else if (rng.chance(0.08)) {
            emit(rng.chance(0.5)
                     ? std::string("nop")
                     : "prefetch [r50, " + scratch_off() + "]");
        } else if (rng.chance(0.5)) {
            emit(std::string(alu2[rng.range(12)]) + " " +
                 rs(int_reg()) + " = " + rs(int_reg()) + ", " +
                 rs(int_reg()));
        } else {
            emit(std::string(alui[rng.range(6)]) + " " +
                 rs(int_reg()) + " = " + rs(int_reg()) + ", " +
                 std::to_string(rng.rangeInclusive(0, 1 << 20)));
        }
    }

    b.op("addi r1 = r1, -1");
    b.op("cmplt p2 = r0, r1");
    b.pred(2, "br loop");
    for (int r = 2; r <= 20; r += 3)
        b.op("out " + rs(r));
    b.op("halt");

    return isa::assembleOrDie(b.str());
}

} // namespace workloads
} // namespace ser
