#include "suite.hh"

#include "isa/assembler.hh"
#include "sim/logging.hh"
#include "workloads/kernels.hh"

namespace ser
{
namespace workloads
{

namespace
{

/** Everything buildBenchmark emits plus the data image. */
struct Generated
{
    std::string text;
    std::vector<isa::DataInit> data;
};

Generated
generate(const BenchmarkProfile &profile,
         std::uint64_t dynamic_target)
{
    AsmBuilder b(profile.seed);
    KernelContext ctx(profile);

    b.entry("main");
    b.label("main");
    b.comment("common setup: " + profile.name + " (" +
              kernelName(profile.kernel) + ")");
    std::uint64_t prolog_start = b.size();
    b.op("movi r50 = " + std::to_string(ctx.arrayA));
    b.op("movi r60 = " + std::to_string(ctx.scratchBase));
    b.op("movi r2 = 21930");
    b.op("movi r3 = 13260");
    b.op("movi r61 = " +
         std::to_string((profile.seed & 0x7fffffffULL) | 1));
    b.op("movi r30 = 1103515245");
    b.op("movi r31 = 12345");
    if (profile.floatingPoint) {
        b.op("movi r5 = 3");
        b.op("i2f f2 = r5");
        b.op("movi r5 = 2");
        b.op("i2f f3 = r5");
        b.op("fdiv f2 = f2, f3");  // f2 = 1.5
    }
    std::uint64_t init_dyn = emitKernelProlog(b, ctx);
    init_dyn += b.size() - prolog_start;

    // Size the loop body before committing to a trip count. The
    // body is unrolled so the probabilistic decorations (dead code,
    // predicated arms, padding) are realised across several
    // independently-generated copies rather than a single roll.
    constexpr unsigned unroll = 8;
    AsmBuilder body(profile.seed ^ 0xB0D4B0D4ULL);
    std::uint64_t body_dyn = 0;
    for (unsigned u = 0; u < unroll; ++u)
        body_dyn += emitKernelBody(body, ctx);
    std::uint64_t per_iter = body_dyn + 3;  // + loop overhead

    std::uint64_t iters = 1;
    if (dynamic_target > init_dyn + per_iter)
        iters = (dynamic_target - init_dyn) / per_iter;
    if (iters > 0x7fffffffULL)
        SER_FATAL("benchmark {}: trip count {} exceeds movi range",
                  profile.name, iters);

    b.op("movi r1 = " + std::to_string(iters));
    b.label("mainloop");
    b.append(body);
    b.op("addi r1 = r1, -1");
    b.op("cmplt p2 = r0, r1");
    b.pred(2, "br mainloop");
    b.op("out r63");
    b.op("halt");
    emitKernelFunctions(b, ctx);

    return {b.str(), std::move(ctx.data)};
}

} // namespace

isa::Program
buildBenchmark(const BenchmarkProfile &profile,
               std::uint64_t dynamic_target)
{
    Generated g = generate(profile, dynamic_target);
    isa::Program program = isa::assembleOrDie(g.text);
    for (const auto &init : g.data)
        program.addData(init.addr, init.value);
    return program;
}

isa::Program
buildBenchmark(const std::string &name, std::uint64_t dynamic_target)
{
    return buildBenchmark(findProfile(name), dynamic_target);
}

std::string
benchmarkSource(const BenchmarkProfile &profile,
                std::uint64_t dynamic_target)
{
    return generate(profile, dynamic_target).text;
}

} // namespace workloads
} // namespace ser
