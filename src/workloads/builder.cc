#include "builder.hh"

namespace ser
{
namespace workloads
{

void
AsmBuilder::op(const std::string &text)
{
    _text << "    " << text << "\n";
    ++_instCount;
}

void
AsmBuilder::pred(int p, const std::string &text)
{
    _text << "    (p" << p << ") " << text << "\n";
    ++_instCount;
}

void
AsmBuilder::label(const std::string &name)
{
    _text << name << ":\n";
}

std::string
AsmBuilder::newLabel(const std::string &hint)
{
    return "L_" + hint + "_" + std::to_string(_labelCounter++);
}

void
AsmBuilder::dataWord(std::uint64_t addr, std::uint64_t value)
{
    _text << ".data " << addr << "\n.word " << value << "\n";
}

void
AsmBuilder::entry(const std::string &label_name)
{
    _text << ".entry " << label_name << "\n";
}

void
AsmBuilder::comment(const std::string &text)
{
    _text << "    // " << text << "\n";
}

void
AsmBuilder::append(const AsmBuilder &other)
{
    _text << other._text.str();
    _instCount += other._instCount;
    _labelCounter += other._labelCounter;
}

void
AsmBuilder::maybeNoop(double density)
{
    if (!_rng.chance(density))
        return;
    // IA64 bundle templates pad with no-ops; the occasional branch
    // hint mimics 'brp' style hint slots.
    if (_rng.chance(0.2))
        op("hint");
    else
        op("nop");
}

void
AsmBuilder::deadCode(bool transitive, bool via_store,
                     std::uint64_t scratch_addr)
{
    (void)scratch_addr;  // the scratch base lives in r60
    // Bimodal pool reuse: two hot registers (r40-r41) absorb about
    // half the dead writes and are overwritten within tens of
    // instructions; a cold pool (r32-r35, r42-r45) reuses only every
    // few hundred. Together with the rare-path sites on r46-r49 this
    // spreads overwrite distances from tens to thousands of
    // instructions — the distribution behind the paper's Figure 3.
    _deadToggle++;
    std::string pool = deadPoolReg();

    // A def of the pool register; the next reuse of the same slot
    // overwrites it unread, making this first-level dead.
    op("add " + pool + " = r2, r3");
    if (transitive) {
        _deadToggle++;
        std::string pool2 = deadPoolReg();
        // pool is read only by the (dead) def of pool2: transitively
        // dead via registers.
        op("addi " + pool2 + " = " + pool + ", 17");
    } else if (via_store) {
        // The value dies through a dead store: the slot word is
        // overwritten (by the next via_store use of a shared slot,
        // or by this site's own next execution for the site-private
        // offsets) before any load, so the store is FDD via memory
        // and the def above is TDD via memory. Site-private offsets
        // give the memory series its longer overwrite distances.
        std::uint64_t off =
            _rng.chance(0.5)
                ? _rng.range(8) * 8           // shared hot words
                : 64 + _rng.range(1024) * 8;  // site-private words
        op("st8 [r60, " + std::to_string(off) + "] = " + pool);
    }
}

std::string
AsmBuilder::deadPoolReg()
{
    if (_rng.chance(0.55))
        return "r" + std::to_string(40 + _rng.range(2));
    static const int cold[] = {32, 33, 34, 35, 42, 43, 44, 45};
    return "r" + std::to_string(cold[_rng.range(8)]);
}

void
AsmBuilder::rareDeadWrite(int value_reg)
{
    int slot = 46 + static_cast<int>(_rng.range(4));
    // Execution probability between 2/256 and 16/256 per visit.
    auto window = 2 + _rng.range(15);
    op("andi r35 = r" + std::to_string(value_reg) + ", 255");
    op("cmpilt p8 = r35, " + std::to_string(window));
    pred(8, "add r" + std::to_string(slot) + " = r2, r3");
}

void
AsmBuilder::predicatedArms(int pred_reg, int value_reg, int dst_reg)
{
    std::string v = "r" + std::to_string(value_reg);
    std::string d = "r" + std::to_string(dst_reg);
    std::string p0s = "p" + std::to_string(pred_reg);
    std::string p1s = "p" + std::to_string(pred_reg + 1);
    // If-conversion: exactly one arm is nullified each execution.
    op("andi r39 = " + v + ", 1");
    op("cmpieq " + p0s + " = r39, 0");
    op("cmpieq " + p1s + " = r39, 1");
    pred(pred_reg, "addi " + d + " = " + v + ", 3");
    pred(pred_reg + 1, "addi " + d + " = " + v + ", 5");
}

} // namespace workloads
} // namespace ser
