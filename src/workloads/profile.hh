/**
 * @file
 * Per-benchmark profiles of the SPEC CPU2000 surrogate suite.
 *
 * The paper evaluates 12 integer and 14 floating-point CPU2000
 * benchmarks (its Table 2). We cannot run IA64 SPEC binaries, so
 * each benchmark is replaced by a generated surrogate program whose
 * dynamic character — working-set size (and hence cache miss
 * profile), instruction mix, bundle-padding no-op density, branch
 * predictability, predication usage, call behaviour and
 * dynamically-dead-code density — is parameterised to mimic the
 * published character of that benchmark. See DESIGN.md for why this
 * substitution preserves the AVF behaviour under study.
 */

#ifndef SER_WORKLOADS_PROFILE_HH
#define SER_WORKLOADS_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ser
{
namespace workloads
{

/** The generator kernel families. */
enum class Kernel : std::uint8_t
{
    PointerChase,  ///< dependent loads over a shuffled chain
    Stream,        ///< strided array sweep, fp multiply-add
    Stencil,       ///< neighbour gather/compute/scatter
    MatMul,        ///< register-blocked dense fp kernel
    Hash,          ///< randomized table probe/insert, branchy
    Compress,      ///< shift/mask/compare byte crunching, branchy
    CallTree,      ///< recursive calls with frame-local dead writes
    Sparse,        ///< index-array indirection into fp data
};

const char *kernelName(Kernel kernel);

/** Everything that shapes one surrogate benchmark. */
struct BenchmarkProfile
{
    std::string name;
    bool floatingPoint = false;
    Kernel kernel = Kernel::Stream;

    /** Working set in 8-byte words (power of two). Drives where in
     * the L0/L1/L2/memory hierarchy the benchmark lives. */
    std::uint64_t wsWords = 1 << 14;

    /** Probability of a padding no-op/hint after a body
     * instruction (IA64 bundle padding; higher for fp codes). */
    double noopDensity = 0.2;

    /** Probability of a software prefetch per body iteration. */
    double prefetchDensity = 0.0;

    /** Dead-code patterns per body iteration (expected count). */
    double deadPerIter = 0.5;

    /** If-converted (predicated) arm pairs per body iteration. */
    double predPerIter = 0.3;

    /** Data-dependent branch entropy in bits: the branch condition
     * keys on this many low bits of loaded data; more bits means
     * closer to a coin flip and more wrong-path fetch. 0 disables
     * the entropy branch. */
    unsigned entropyBits = 0;

    /** Recursion depth (CallTree) / call frequency flavour. */
    unsigned callDepth = 0;

    /** Access stride in words (Stream/Stencil). */
    unsigned strideWords = 1;

    /** Generator seed (distinct per benchmark). */
    std::uint64_t seed = 1;
};

/** The 26-entry surrogate roster, paper Table 2 order. */
const std::vector<BenchmarkProfile> &specSuite();

/** Profile lookup by name; fatal if unknown. */
const BenchmarkProfile &findProfile(const std::string &name);

/** All surrogate names, integer benchmarks first. */
std::vector<std::string> suiteNames();

} // namespace workloads
} // namespace ser

#endif // SER_WORKLOADS_PROFILE_HH
