/**
 * @file
 * A programmatic emitter of TIA64 assembly.
 *
 * The workload generators compose benchmark programs as assembler
 * text (so every generated program is also a valid input to the
 * assembler, and can be dumped for inspection). The builder tracks
 * the instruction count (for loop-trip sizing), hands out unique
 * labels, and provides the decorations the surrogate suite needs:
 * bundle-padding no-ops, prefetches, dead-code injection and
 * if-converted predicated arms.
 *
 * Register conventions used by the generators:
 *   r1        main loop counter
 *   r2-r15    primary kernel registers
 *   r16-r39   secondary kernel registers
 *   r40-r49   dead-code pool (written, rarely read)
 *   r50-r60   address/base registers
 *   r61       in-program LCG state
 *   r62       link register
 *   r63       checksum accumulator
 *   p2-p15    kernel predicates
 */

#ifndef SER_WORKLOADS_BUILDER_HH
#define SER_WORKLOADS_BUILDER_HH

#include <cstdint>
#include <sstream>
#include <string>

#include "sim/rng.hh"

namespace ser
{
namespace workloads
{

/** Accumulates assembler text. */
class AsmBuilder
{
  public:
    explicit AsmBuilder(std::uint64_t seed) : _rng(seed) {}

    /** Emit one instruction line; counts toward size(). */
    void op(const std::string &text);

    /** Emit a predicated instruction: "(pN) text". */
    void pred(int p, const std::string &text);

    /** Define a label here. */
    void label(const std::string &name);

    /** A fresh unique label with a readable hint. */
    std::string newLabel(const std::string &hint);

    /** Emit an initialised data word. */
    void dataWord(std::uint64_t addr, std::uint64_t value);

    /** Set the program entry label. */
    void entry(const std::string &label_name);

    /** Emit a comment line (no instruction). */
    void comment(const std::string &text);

    /** Instructions emitted so far. */
    std::uint64_t size() const { return _instCount; }

    /** The generator's deterministic random stream. */
    Rng &rng() { return _rng; }

    /** Append another builder's text (sizes are combined). */
    void append(const AsmBuilder &other);

    std::string str() const { return _text.str(); }

    // --- surrogate-suite decorations ---

    /** With the given probability, emit a no-op or branch hint
     * (emulating IA64 bundle padding). */
    void maybeNoop(double density);

    /** Emit a short dead-code pattern into the dead pool: a def of
     * a pool register that a later pool def overwrites unread.
     * 'transitive' adds a TDD link, 'via_store' kills the value
     * through a dead store instead. */
    void deadCode(bool transitive, bool via_store,
                  std::uint64_t scratch_addr);

    /** Emit an if-converted pair: a compare whose predicate guards
     * two complementary arms (one arm is predicated false each
     * iteration). 'value_reg' supplies varying data. */
    void predicatedArms(int pred_reg, int value_reg, int dst_reg);

    /** Emit a dead write to a reserved slot (r46-r49) guarded by a
     * rarely-true data-dependent predicate on 'value_reg'. The slot
     * reuses only every few thousand dynamic instructions, producing
     * the long-overwrite-distance FDDs that need large PET buffers
     * (the tail of the paper's Figure 3). */
    void rareDeadWrite(int value_reg);

  private:
    /** Pick a dead-pool register (bimodal hot/cold reuse). */
    std::string deadPoolReg();

    std::ostringstream _text;
    std::uint64_t _instCount = 0;
    std::uint64_t _labelCounter = 0;
    Rng _rng;
    int _deadToggle = 0;
};

} // namespace workloads
} // namespace ser

#endif // SER_WORKLOADS_BUILDER_HH
