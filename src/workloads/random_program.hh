/**
 * @file
 * Random valid TIA64 programs for property-based tests.
 *
 * Programs are random by construction but guaranteed to terminate:
 * straight-line random instructions, forward-only data-dependent
 * branches inside a single counted loop, memory confined to an
 * aligned scratch window, and a final out + halt. Useful for fuzzing
 * the assembler/executor/pipeline agreement and the deadness/pi-bit
 * equivalence properties.
 */

#ifndef SER_WORKLOADS_RANDOM_PROGRAM_HH
#define SER_WORKLOADS_RANDOM_PROGRAM_HH

#include <cstdint>

#include "isa/program.hh"

namespace ser
{
namespace workloads
{

/** Shape knobs for random programs. */
struct RandomProgramOptions
{
    unsigned loopIterations = 50;
    unsigned bodyInstructions = 60;
    double predicatedFraction = 0.2;
    double memFraction = 0.2;
    double branchFraction = 0.08;
    double fpFraction = 0.2;
    double outFraction = 0.03;
};

/** Generate a random, always-terminating program. */
isa::Program randomProgram(std::uint64_t seed,
                           const RandomProgramOptions &opts = {});

} // namespace workloads
} // namespace ser

#endif // SER_WORKLOADS_RANDOM_PROGRAM_HH
