#include "profile.hh"

#include "sim/logging.hh"

namespace ser
{
namespace workloads
{

const char *
kernelName(Kernel kernel)
{
    switch (kernel) {
      case Kernel::PointerChase: return "pointer-chase";
      case Kernel::Stream: return "stream";
      case Kernel::Stencil: return "stencil";
      case Kernel::MatMul: return "matmul";
      case Kernel::Hash: return "hash";
      case Kernel::Compress: return "compress";
      case Kernel::CallTree: return "calltree";
      case Kernel::Sparse: return "sparse";
    }
    return "?";
}

namespace
{

using K = Kernel;

BenchmarkProfile
mk(const char *name, bool fp, Kernel kernel, std::uint64_t ws_words,
   double noop, double prefetch, double dead, double pred,
   unsigned entropy, unsigned call_depth, unsigned stride,
   std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = name;
    p.floatingPoint = fp;
    p.kernel = kernel;
    p.wsWords = ws_words;
    p.noopDensity = noop;
    p.prefetchDensity = prefetch;
    p.deadPerIter = dead;
    p.predPerIter = pred;
    p.entropyBits = entropy;
    p.callDepth = call_depth;
    p.strideWords = stride;
    p.seed = seed;
    return p;
}

std::vector<BenchmarkProfile>
buildSuite()
{
    std::vector<BenchmarkProfile> s;

    // --- integer benchmarks (paper Table 2, left column) ---
    // Integer codes: modest no-op padding, heavier predication and
    // branch entropy (more wrong-path and predicated-false state),
    // pointer/branch-dominated kernels.
    //            name      fp     kernel           ws-words  noop  pref  dead  pred  ent cd  st  seed
    s.push_back(mk("bzip2",  false, K::Compress,     1 << 16, 0.16, 0.02, 2.25, 0.80, 4, 0,  1, 0xb21b2));
    s.push_back(mk("cc",     false, K::CallTree,     1 << 15, 0.18, 0.00, 2.62, 1.00, 6, 9,  1, 0xcc001));
    s.push_back(mk("crafty", false, K::Compress,     1 << 13, 0.15, 0.00, 2.25, 1.10, 5, 0,  1, 0xc4af1));
    s.push_back(mk("eon",    false, K::Sparse,       1 << 13, 0.22, 0.15, 1.88, 0.70, 4, 0,  1, 0xe0e0e));
    s.push_back(mk("gap",    false, K::Hash, 1 << 16, 0.17, 0.00, 2.10, 0.80, 5, 0,  1, 0x9a9a0));
    s.push_back(mk("gzip",   false, K::Compress,     1 << 15, 0.16, 0.02, 2.10, 0.70, 5, 0,  1, 0x971f0));
    s.push_back(mk("mcf",    false, K::PointerChase, 1 << 21, 0.15, 0.00, 1.65, 0.60, 3, 0,  1, 0x3cf00));
    s.push_back(mk("parser", false, K::CallTree,     1 << 14, 0.17, 0.00, 2.40, 0.90, 6, 12, 1, 0xa45e4));
    s.push_back(mk("perlbmk",false, K::Hash, 1 << 16, 0.18, 0.00, 2.25, 0.90, 6, 0,  1, 0x9e410));
    s.push_back(mk("twolf",  false, K::Hash, 1 << 14, 0.16, 0.00, 2.10, 0.80, 5, 0,  1, 0x2a01f));
    s.push_back(mk("vortex", false, K::PointerChase, 1 << 17, 0.18, 0.00, 2.25, 0.70, 4, 0,  1, 0x0a7e1));
    s.push_back(mk("vpr",    false, K::Sparse, 1 << 17, 0.17, 0.15, 1.88, 0.80, 5, 0,  1, 0x0b990));

    // --- floating-point benchmarks (Table 2, right column) ---
    // FP codes: heavy bundle padding (no-ops/hints), software
    // prefetch, regular loops with low branch entropy. ammp is the
    // paper's outlier: a memory-bound pointer-chasing MD code whose
    // queue fills behind a few critical misses.
    //            name       fp    kernel           ws-words  noop  pref  dead  pred  ent cd  st  seed
    s.push_back(mk("ammp",    true, K::PointerChase, 1 << 22, 0.30, 0.10, 1.50, 0.25, 1, 0,  1, 0xa3390));
    s.push_back(mk("applu",   true, K::Stencil,      1 << 18, 0.34, 0.50, 1.65, 0.25, 1, 0,  1, 0xa9910));
    s.push_back(mk("apsi",    true, K::Stencil, 1 << 17, 0.32, 0.45, 1.80, 0.30, 2, 0,  1, 0xa9510));
    s.push_back(mk("art",     true, K::Stream,       1 << 12, 0.30, 0.50, 1.35, 0.20, 1, 0,  1, 0xa4700));
    s.push_back(mk("equake",  true, K::Sparse,       1 << 19, 0.30, 0.35, 1.50, 0.25, 2, 0,  1, 0xe90a0));
    s.push_back(mk("facerec", true, K::Sparse, 1 << 17, 0.32, 0.40, 1.65, 0.30, 2, 0,  1, 0xface0));
    s.push_back(mk("fma3d",   true, K::Sparse,       1 << 17, 0.34, 0.35, 1.50, 0.25, 2, 0,  1, 0xf3a3d));
    s.push_back(mk("galgel",  true, K::MatMul, 1 << 15, 0.36, 0.40, 1.65, 0.20, 1, 0,  1, 0x9a19e));
    s.push_back(mk("lucas",   true, K::Stream,       1 << 20, 0.34, 0.50, 1.50, 0.15, 1, 0,  2, 0x10ca5));
    s.push_back(mk("mesa",    true, K::MatMul,       1 << 13, 0.28, 0.30, 1.88, 0.50, 3, 0,  1, 0x3e5a0));
    s.push_back(mk("mgrid",   true, K::Stencil,      1 << 19, 0.36, 0.50, 1.50, 0.15, 1, 0,  1, 0x39c1d));
    s.push_back(mk("sixtrack",true, K::MatMul,       1 << 12, 0.30, 0.35, 1.65, 0.35, 2, 0,  1, 0x51c74));
    s.push_back(mk("swim",    true, K::Stream,       1 << 21, 0.36, 0.55, 1.50, 0.15, 1, 0,  1, 0x5a130));
    s.push_back(mk("wupwise", true, K::MatMul, 1 << 16, 0.32, 0.40, 1.65, 0.25, 2, 0,  1, 0x3a9b1));
    return s;
}

} // namespace

const std::vector<BenchmarkProfile> &
specSuite()
{
    static const std::vector<BenchmarkProfile> suite = buildSuite();
    return suite;
}

const BenchmarkProfile &
findProfile(const std::string &name)
{
    for (const auto &profile : specSuite()) {
        if (profile.name == name)
            return profile;
    }
    SER_FATAL("unknown benchmark '{}'", name);
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &profile : specSuite())
        names.push_back(profile.name);
    return names;
}

} // namespace workloads
} // namespace ser
