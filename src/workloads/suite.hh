/**
 * @file
 * Assembly of complete surrogate benchmarks.
 *
 * buildBenchmark() wraps a kernel in the common program frame:
 *
 *     main:   common register setup (bases, LCG, fp constants)
 *             kernel prologue
 *             movi r1 = iterations        // sized to dynamic_target
 *     loop:   kernel body (+ decorations)
 *             counter decrement + back-branch
 *             out r63                      // checksum = ACE sink
 *             halt
 *             out-of-line procedures (calltree)
 *
 * The trip count is derived from the kernel's dynamic-cost estimate
 * so the program halts near (a little under) the requested dynamic
 * instruction count — completing naturally, which makes end-of-trace
 * deadness exact.
 */

#ifndef SER_WORKLOADS_SUITE_HH
#define SER_WORKLOADS_SUITE_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"
#include "workloads/profile.hh"

namespace ser
{
namespace workloads
{

/** Build the surrogate for a profile, sized to about
 * 'dynamic_target' dynamic instructions. */
isa::Program buildBenchmark(const BenchmarkProfile &profile,
                            std::uint64_t dynamic_target);

/** Build by suite name ("mcf", "ammp", ...). */
isa::Program buildBenchmark(const std::string &name,
                            std::uint64_t dynamic_target);

/** The generated assembler text (for inspection / examples). */
std::string benchmarkSource(const BenchmarkProfile &profile,
                            std::uint64_t dynamic_target);

} // namespace workloads
} // namespace ser

#endif // SER_WORKLOADS_SUITE_HH
