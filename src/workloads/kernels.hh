/**
 * @file
 * Kernel generators for the SPEC CPU2000 surrogate suite.
 *
 * Each kernel family emits (a) register setup into the program
 * prologue, (b) one loop-iteration body, and (c) any out-of-line
 * procedures, and fills in the initial data image (built directly as
 * DataInit records rather than .word directives so multi-megabyte
 * working sets stay cheap to assemble).
 */

#ifndef SER_WORKLOADS_KERNELS_HH
#define SER_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "sim/rng.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"

namespace ser
{
namespace workloads
{

/** Shared state between the suite framework and a kernel. */
struct KernelContext
{
    const BenchmarkProfile &profile;

    /** Initial memory image, applied after assembly. */
    std::vector<isa::DataInit> data;

    /** Memory layout. */
    std::uint64_t scratchBase = 0x80000;  ///< dead-store pool
    std::uint64_t stackBase = 0x90000;    ///< calltree stack
    std::uint64_t arrayA = isa::dataBase;
    std::uint64_t arrayB = 0;  ///< set from the working-set size

    /** Deterministic stream for C++-side data initialisation. */
    Rng dataRng;

    explicit KernelContext(const BenchmarkProfile &p)
        : profile(p), dataRng(p.seed ^ 0xD0D0D0D0ULL)
    {
        arrayB = arrayA + p.wsWords * 8 + 4096;
    }

    /** The register holding "hot" varying data after the body runs
     * (used to feed predication arms and checksums). */
    int hotReg = 5;

    /** Software-pipelining phase: fp kernel bodies alternate between
     * two register sets, loading into one while consuming the other,
     * so in-order issue never stalls on the fp latency chain — the
     * effect IA64 compilers achieve with rotating registers. */
    int phase = 0;
};

/**
 * Emit the kernel's prologue (register setup + data image).
 * @return estimated dynamic instructions executed by the prologue
 */
std::uint64_t emitKernelProlog(AsmBuilder &b, KernelContext &ctx);

/**
 * Emit one loop-iteration body (with the profile's decorations).
 * @return estimated dynamic instructions per iteration
 */
std::uint64_t emitKernelBody(AsmBuilder &b, KernelContext &ctx);

/** Emit out-of-line procedures (after the main halt). */
void emitKernelFunctions(AsmBuilder &b, KernelContext &ctx);

} // namespace workloads
} // namespace ser

#endif // SER_WORKLOADS_KERNELS_HH
