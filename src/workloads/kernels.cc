#include "kernels.hh"

#include <bit>
#include <cmath>
#include <string>

#include "sim/logging.hh"

namespace ser
{
namespace workloads
{

namespace
{

std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

std::uint64_t
fpBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/**
 * Wraps an AsmBuilder with the profile's decorations: every emitted
 * body instruction may be followed by bundle-padding no-ops, and
 * finish() sprinkles the iteration's dead code and predicated arms.
 */
class Body
{
  public:
    Body(AsmBuilder &b, KernelContext &ctx)
        : _b(b), _ctx(ctx), _count(0)
    {
    }

    void
    op(const std::string &text)
    {
        _b.op(text);
        ++_count;
        _b.maybeNoop(_ctx.profile.noopDensity);
    }

    void
    pred(int p, const std::string &text)
    {
        _b.pred(p, text);
        ++_count;
        _b.maybeNoop(_ctx.profile.noopDensity);
    }

    /** An in-program LCG step leaving random bits in r8. */
    void
    lcgStep()
    {
        op("mul r61 = r61, r30");
        op("add r61 = r61, r31");
        op("shri r8 = r61, 16");
    }

    /** A data-dependent conditional branch keyed on 'src'. */
    void
    entropyBranch(const std::string &src)
    {
        unsigned e = _ctx.profile.entropyBits;
        if (e == 0)
            return;
        // Mostly-taken with a data-dependent miss rate of about
        // e*16/256: real compiled loops take branches every few
        // bundles, which is what keeps fetch (and hence queue
        // occupancy) honest.
        unsigned threshold = 256 - std::min(255u, e * 16);
        std::string skip = _b.newLabel("ebr");
        op("andi r38 = " + src + ", 255");
        op("cmpilt p6 = r38, " + num(threshold));
        pred(6, "br " + skip);
        op("addi r63 = r63, 1");
        op("xori r37 = r63, 27");
        op("add r63 = r63, r37");
        _b.label(skip);
    }

    /** Maybe prefetch near the given address register. */
    void
    maybePrefetch(const std::string &addr_reg, int offset)
    {
        if (_b.rng().chance(_ctx.profile.prefetchDensity)) {
            op("prefetch [" + addr_reg + ", " +
               std::to_string(offset) + "]");
        }
    }

    /** Apply the per-iteration dead-code / predication quota. */
    void
    finish()
    {
        const BenchmarkProfile &p = _ctx.profile;
        double dead = p.deadPerIter;
        while (dead >= 1.0 || _b.rng().chance(dead)) {
            double roll = _b.rng().uniform();
            bool transitive = roll < 0.28;
            bool via_store = !transitive && roll < 0.62;
            _b.deadCode(transitive, via_store, _ctx.scratchBase);
            _count += transitive || via_store ? 2 : 1;
            dead -= 1.0;
            if (dead < 0.0)
                break;
        }
        if (_b.rng().chance(p.predPerIter)) {
            _b.predicatedArms(10, _ctx.hotReg, 36);
            _count += 5;
            if (_b.rng().chance(0.5)) {
                op("xor r63 = r63, r36");
            }
        }
        if (_b.rng().chance(0.5)) {
            _b.rareDeadWrite(_ctx.hotReg);
            _count += 3;
        }
    }

    std::uint64_t count() const { return _count; }

  private:
    AsmBuilder &_b;
    KernelContext &_ctx;
    std::uint64_t _count;
};

/** Fill [base, base + words*8) with pseudo-random integer words. */
void
fillRandomWords(KernelContext &ctx, std::uint64_t base,
                std::uint64_t words)
{
    for (std::uint64_t i = 0; i < words; ++i)
        ctx.data.push_back({base + i * 8, ctx.dataRng.next()});
}

/** Fill with random doubles in [0, 1000). */
void
fillRandomDoubles(KernelContext &ctx, std::uint64_t base,
                  std::uint64_t words)
{
    for (std::uint64_t i = 0; i < words; ++i) {
        double v = ctx.dataRng.uniform() * 1000.0;
        ctx.data.push_back({base + i * 8, fpBits(v)});
    }
}

// ---------------------------------------------------------------
// Per-kernel prologues and bodies.
// ---------------------------------------------------------------

std::uint64_t
prologPointerChase(AsmBuilder &b, KernelContext &ctx)
{
    // Nodes are 16 bytes: [next, payload]. The chase runs through
    // short sequential clusters (spatial locality) joined by jumps
    // that mostly stay in a hot region and occasionally go cold —
    // mimicking mcf/ammp's mix of resident and memory-bound
    // traversal.
    std::uint64_t nodes = ctx.profile.wsWords / 2;
    if (nodes < 64)
        nodes = 64;

    auto node_addr = [&](std::uint64_t n) {
        return ctx.arrayA + 16 * n;
    };
    // Sequential ring pointers give the short spatially-local runs;
    // the body's LCG-computed jumps supply the hot/cold reuse mix
    // (a fixed pointer graph would collapse onto a short orbit and
    // cache completely).
    for (std::uint64_t n = 0; n < nodes; ++n) {
        ctx.data.push_back(
            {node_addr(n), node_addr((n + 1) & (nodes - 1))});
        ctx.data.push_back({node_addr(n) + 8, ctx.dataRng.next()});
    }
    b.op("movi r51 = " + num(ctx.arrayA));
    ctx.hotReg = 5;
    return 1;
}

std::uint64_t
bodyPointerChase(AsmBuilder &raw, KernelContext &ctx)
{
    // The chase itself is serial (that is the point of mcf/ammp),
    // but the payload work is phased one copy behind so only the
    // pointer loads gate progress.
    Body b(raw, ctx);
    int o = ctx.phase ? 8 : 0;
    int q = ctx.phase ? 0 : 8;
    int acc = ctx.phase ? 21 : 20;
    std::string pay_o = ctx.phase ? "r25" : "r5";
    std::string pay_q = ctx.phase ? "r5" : "r25";
    ctx.phase ^= 1;

    b.op("ld8 " + pay_o + " = [r51, 8]");
    std::uint64_t nodes =
        std::max<std::uint64_t>(ctx.profile.wsWords / 2, 64);
    // mcf/ammp's hot region deliberately exceeds the 256KB L1, so
    // their stall shadows come from L2 and memory — which is what
    // makes squash-on-L1-miss so profitable for them (the paper's
    // ammp outlier).
    std::uint64_t hot =
        std::min<std::uint64_t>(nodes / 4, 65536) - 1;
    if (raw.rng().chance(0.25)) {
        // A computed jump: mostly into the hot region, sometimes
        // anywhere — genuine temporal reuse plus cold misses.
        std::uint64_t mask =
            raw.rng().chance(0.8) ? hot : nodes - 1;
        b.lcgStep();
        b.op("andi r12 = r8, " + num(mask));
        b.op("shli r13 = r12, 4");
        b.op("add r51 = r50, r13");
    } else {
        b.op("ld8 r51 = [r51, 0]");  // follow the (sequential) ring
    }
    b.maybePrefetch("r51", 64);
    b.op("xor r63 = r63, " + pay_q);
    b.op("shri r6 = " + pay_q + ", 7");
    b.op("add r63 = r63, r6");
    if (ctx.profile.floatingPoint) {
        // MD-flavoured fp work on the payload, phased like the fp
        // stream kernels; the accumulators fold into the checksum
        // so the fp chain stays live.
        b.op("i2f f" + num(4 + o) + " = r6");
        b.op("fmul f" + num(5 + o) + " = f" + num(4 + q) + ", f2");
        b.op("fadd f" + num(acc) + " = f" + num(acc) + ", f" +
             num(5 + q));
        b.op("f2i r7 = f" + num(acc == 20 ? 21 : 20));
        b.op("xor r63 = r63, r7");
    }
    b.entropyBranch(pay_q);
    b.finish();
    return b.count();
}

std::uint64_t
prologStream(AsmBuilder &b, KernelContext &ctx)
{
    fillRandomDoubles(ctx, ctx.arrayA, ctx.profile.wsWords);
    b.op("movi r9 = 0");
    b.op("movi r53 = " + num(ctx.arrayB));
    ctx.hotReg = 11;
    return 2;
}

std::uint64_t
bodyStream(AsmBuilder &raw, KernelContext &ctx)
{
    // Two-stage software pipeline: this copy loads into one register
    // set while consuming the values the previous copy loaded, so
    // the 4-cycle fp chain never stalls in-order issue.
    Body b(raw, ctx);
    unsigned step = 2 * ctx.profile.strideWords;
    int o = ctx.phase ? 8 : 0;       // this copy's fp set
    int q = ctx.phase ? 0 : 8;       // the previous copy's fp set
    std::string a51 = ctx.phase ? "r54" : "r51";
    std::string a52 = ctx.phase ? "r55" : "r52";
    std::string p51 = ctx.phase ? "r51" : "r54";
    std::string p52 = ctx.phase ? "r52" : "r55";
    ctx.phase ^= 1;

    // Stage 1: address and loads for this copy.
    b.op("shli r10 = r9, 3");
    b.op("add " + a51 + " = r50, r10");
    b.op("add " + a52 + " = r53, r10");
    b.op("fld f" + num(4 + o) + " = [" + a51 + ", 0]");
    b.op("fld f" + num(5 + o) + " = [" + a51 + ", 8]");
    b.maybePrefetch(a51, 2048);
    b.op("addi r9 = r9, " + num(step));
    b.op("andi r9 = r9, " + num(ctx.profile.wsWords - 1));

    // Stage 2: each consumer reads values produced a whole copy ago
    // (the producing phase alternates), so the fp latencies overlap
    // with independent work instead of stalling in-order issue.
    b.op("fmul f" + num(6 + q) + " = f" + num(4 + q) + ", f2");
    b.op("fadd f" + num(7 + o) + " = f" + num(6 + o) + ", f" +
         num(5 + o));
    b.op("fst [" + p52 + ", 0] = f" + num(7 + q));
    // Consume an earlier store so the output array stays live.
    b.op("fld f" + num(16 + o) + " = [" + a52 + ", " +
         std::to_string(-(int)(step * 16)) + "]");
    b.op("fadd f" + num(17 + q) + " = f" + num(7 + q) + ", f" +
         num(16 + q));
    b.op("f2i r11 = f" + num(17 + o));
    b.op("xor r63 = r63, r11");
    b.entropyBranch("r11");
    b.finish();
    return b.count();
}

std::uint64_t
prologStencil(AsmBuilder &b, KernelContext &ctx)
{
    fillRandomDoubles(ctx, ctx.arrayA, ctx.profile.wsWords);
    b.op("movi r9 = 0");
    b.op("movi r53 = " + num(ctx.arrayB));
    ctx.hotReg = 11;
    return 2;
}

std::uint64_t
bodyStencil(AsmBuilder &raw, KernelContext &ctx)
{
    // Software-pipelined like bodyStream: gather this point's
    // neighbours, combine the previous point's.
    Body b(raw, ctx);
    int o = ctx.phase ? 8 : 0;
    int q = ctx.phase ? 0 : 8;
    std::string a51 = ctx.phase ? "r54" : "r51";
    std::string a52 = ctx.phase ? "r55" : "r52";
    std::string p52 = ctx.phase ? "r52" : "r55";
    ctx.phase ^= 1;

    b.op("shli r10 = r9, 3");
    b.op("add " + a51 + " = r50, r10");
    b.op("add " + a52 + " = r53, r10");
    b.op("fld f" + num(4 + o) + " = [" + a51 + ", -8]");
    b.op("fld f" + num(5 + o) + " = [" + a51 + ", 0]");
    b.op("fld f" + num(6 + o) + " = [" + a51 + ", 8]");
    b.maybePrefetch(a51, 2048);
    b.op("addi r9 = r9, " + num(ctx.profile.strideWords));
    b.op("andi r9 = r9, " + num(ctx.profile.wsWords - 1));

    // Consumers read across phases (one copy of distance) so fp
    // latencies never stall in-order issue.
    b.op("fadd f" + num(7 + q) + " = f" + num(4 + q) + ", f" +
         num(6 + q));
    b.op("fmul f" + num(16 + o) + " = f" + num(7 + o) + ", f2");
    b.op("fadd f" + num(17 + q) + " = f" + num(16 + q) + ", f" +
         num(5 + q));
    b.op("fst [" + p52 + ", 0] = f" + num(17 + o));
    b.op("fld f" + num(18 + o) + " = [" + a52 + ", -8]");
    b.op("fadd f" + num(19 + o) + " = f" + num(17 + o) + ", f" +
         num(18 + o));
    b.op("f2i r11 = f" + num(19 + q));
    b.op("xor r63 = r63, r11");
    b.entropyBranch("r11");
    b.finish();
    return b.count();
}

std::uint64_t
prologMatMul(AsmBuilder &b, KernelContext &ctx)
{
    fillRandomDoubles(ctx, ctx.arrayA, ctx.profile.wsWords);
    fillRandomDoubles(ctx, ctx.arrayB, ctx.profile.wsWords);
    b.op("movi r9 = 0");
    b.op("movi r53 = " + num(ctx.arrayB));
    ctx.hotReg = 11;
    return 2;
}

std::uint64_t
bodyMatMul(AsmBuilder &raw, KernelContext &ctx)
{
    // Software-pipelined dot-product step with per-phase
    // accumulators (the rotating-register trick of IA64 compilers).
    Body b(raw, ctx);
    int o = ctx.phase ? 8 : 0;
    int q = ctx.phase ? 0 : 8;
    int acc = ctx.phase ? 22 : 20;  // previous phase's accumulators
    std::string a51 = ctx.phase ? "r54" : "r51";
    std::string a52 = ctx.phase ? "r55" : "r52";
    ctx.phase ^= 1;

    b.op("shli r10 = r9, 3");
    b.op("add " + a51 + " = r50, r10");
    b.op("add " + a52 + " = r53, r10");
    b.op("fld f" + num(4 + o) + " = [" + a51 + ", 0]");
    b.op("fld f" + num(5 + o) + " = [" + a52 + ", 0]");
    b.op("fld f" + num(6 + o) + " = [" + a51 + ", 8]");
    b.op("fld f" + num(7 + o) + " = [" + a52 + ", 8]");
    b.maybePrefetch(a51, 1024);
    b.op("addi r9 = r9, 2");
    b.op("andi r9 = r9, " + num(ctx.profile.wsWords - 1));

    b.op("fmul f" + num(16 + q) + " = f" + num(4 + q) + ", f" +
         num(5 + q));
    b.op("fmul f" + num(17 + q) + " = f" + num(6 + q) + ", f" +
         num(7 + q));
    // Accumulate the other phase's products (one copy old) so the
    // fmul latency is hidden.
    b.op("fadd f" + num(acc) + " = f" + num(acc) + ", f" +
         num(16 + o));
    b.op("fadd f" + num(acc + 1) + " = f" + num(acc + 1) + ", f" +
         num(17 + o));
    // Checksum the *other* phase's accumulator (written a full body
    // ago) so the read never stalls on the fadd latency.
    b.op("f2i r11 = f" + num(acc == 20 ? 22 : 20));
    b.op("xor r63 = r63, r11");
    b.entropyBranch("r11");
    b.finish();
    return b.count();
}

std::uint64_t
prologHash(AsmBuilder &b, KernelContext &ctx)
{
    fillRandomWords(ctx, ctx.arrayA, ctx.profile.wsWords);
    ctx.hotReg = 10;
    (void)b;
    return 0;
}

/** Pick this copy's index mask: mostly a small hot region (temporal
 * locality, keeping the L0 useful), occasionally the full table. */
std::uint64_t
localityMask(AsmBuilder &b, const KernelContext &ctx)
{
    std::uint64_t full = ctx.profile.wsWords - 1;
    std::uint64_t hot = std::min<std::uint64_t>(full, 511);
    return b.rng().chance(0.85) ? hot : full;
}

std::uint64_t
bodyHash(AsmBuilder &raw, KernelContext &ctx)
{
    Body b(raw, ctx);
    std::string skip = raw.newLabel("hins");
    b.lcgStep();
    b.op("andi r12 = r8, " + num(localityMask(raw, ctx)));
    b.op("shli r13 = r12, 3");
    b.op("add r14 = r50, r13");
    b.op("ld8 r10 = [r14, 0]");
    b.op("andi r15 = r10, 255");
    b.op("cmpilt p4 = r15, 128");
    b.pred(4, "br " + skip);
    b.op("st8 [r14, 0] = r8");  // insert; read by later probes
    b.op("addi r63 = r63, 1");
    raw.label(skip);
    b.op("xor r63 = r63, r10");
    b.entropyBranch("r10");
    b.finish();
    return b.count();
}

std::uint64_t
prologCompress(AsmBuilder &b, KernelContext &ctx)
{
    fillRandomWords(ctx, ctx.arrayA, ctx.profile.wsWords);
    b.op("movi r19 = 0");   // previous byte
    b.op("movi r21 = 0");   // match run length
    ctx.hotReg = 10;
    return 2;
}

std::uint64_t
bodyCompress(AsmBuilder &raw, KernelContext &ctx)
{
    Body b(raw, ctx);
    std::string match = raw.newLabel("cmatch");
    std::string done = raw.newLabel("cdone");
    b.lcgStep();
    b.op("andi r12 = r8, " + num(localityMask(raw, ctx)));
    b.op("shli r13 = r12, 3");
    b.op("add r14 = r50, r13");
    b.op("ld8 r10 = [r14, 0]");
    b.op("shri r15 = r10, 8");
    b.op("xor r16 = r15, r10");
    b.op("andi r17 = r16, 255");
    b.op("cmpeq p4 = r17, r19");
    b.pred(4, "br " + match);
    b.op("shli r20 = r17, 1");
    b.op("add r63 = r63, r20");
    b.op("movi r21 = 0");
    b.op("br " + done);
    raw.label(match);
    b.op("addi r21 = r21, 1");
    b.op("xor r63 = r63, r21");
    raw.label(done);
    b.op("add r19 = r17, r0");
    b.entropyBranch("r10");
    b.finish();
    return b.count();
}

std::uint64_t
prologCallTree(AsmBuilder &b, KernelContext &ctx)
{
    // Compiler-like codes chase symbol tables and IR nodes; tfunc
    // probes this table with the usual hot/cold mix.
    fillRandomWords(ctx, ctx.arrayA, ctx.profile.wsWords);
    b.op("movi r58 = " + num(ctx.stackBase));
    ctx.hotReg = 11;
    return 1;
}

std::uint64_t
bodyCallTree(AsmBuilder &raw, KernelContext &ctx)
{
    Body b(raw, ctx);
    b.op("movi r10 = " + num(ctx.profile.callDepth));
    b.op("call r62 = tfunc");
    b.op("xor r63 = r63, r11");
    b.entropyBranch("r11");
    b.finish();
    // Dynamic cost: the body itself plus callDepth+1 invocations of
    // tfunc (~16 instructions each).
    return b.count() +
           (ctx.profile.callDepth + 1) * 16;
}

std::uint64_t
prologSparse(AsmBuilder &b, KernelContext &ctx)
{
    // Index array at A, value array at B; indices pre-masked, with
    // temporal locality: most point into a small hot region.
    std::uint64_t full = ctx.profile.wsWords - 1;
    std::uint64_t hot = std::min<std::uint64_t>(full, 511);
    for (std::uint64_t i = 0; i < ctx.profile.wsWords; ++i) {
        std::uint64_t mask = ctx.dataRng.chance(0.85) ? hot : full;
        ctx.data.push_back(
            {ctx.arrayA + i * 8, ctx.dataRng.next() & mask});
    }
    fillRandomDoubles(ctx, ctx.arrayB, ctx.profile.wsWords);
    b.op("movi r9 = 0");
    b.op("movi r53 = " + num(ctx.arrayB));
    ctx.hotReg = 8;
    return 2;
}

std::uint64_t
bodySparse(AsmBuilder &raw, KernelContext &ctx)
{
    // Software-pipelined gather/scatter: load this copy's index,
    // translate and gather the previous copy's, consume the value
    // gathered a copy before that.
    Body b(raw, ctx);
    int o = ctx.phase ? 8 : 0;
    int q = ctx.phase ? 0 : 8;
    int acc = ctx.phase ? 22 : 20;
    std::string idx_o = ctx.phase ? "r28" : "r8";
    std::string idx_q = ctx.phase ? "r8" : "r28";
    std::string addr_q = ctx.phase ? "r14" : "r26";
    ctx.phase ^= 1;

    b.op("shli r10 = r9, 3");
    b.op("add r51 = r50, r10");
    b.op("ld8 " + idx_o + " = [r51, 0]");
    b.op("addi r9 = r9, 1");
    b.op("andi r9 = r9, " + num(ctx.profile.wsWords - 1));

    b.op("shli r13 = " + idx_q + ", 3");
    b.op("add " + addr_q + " = r53, r13");
    b.op("fld f" + num(4 + q) + " = [" + addr_q + ", 0]");
    b.maybePrefetch(addr_q, 1024);

    b.op("fmul f" + num(5 + o) + " = f" + num(4 + o) + ", f2");
    // Accumulate and scatter the other phase's (ready) product;
    // later gathers of the same slot read the scatter, keeping most
    // of them live.
    b.op("fadd f" + num(acc) + " = f" + num(acc) + ", f" +
         num(5 + q));
    b.op("fst [" + addr_q + ", 0] = f" + num(5 + q));
    b.op("f2i r11 = f" + num(acc == 20 ? 22 : 20));
    b.op("xor r63 = r63, r11");
    b.entropyBranch(idx_q);
    b.finish();
    return b.count();
}

} // namespace

std::uint64_t
emitKernelProlog(AsmBuilder &b, KernelContext &ctx)
{
    switch (ctx.profile.kernel) {
      case Kernel::PointerChase: return prologPointerChase(b, ctx);
      case Kernel::Stream: return prologStream(b, ctx);
      case Kernel::Stencil: return prologStencil(b, ctx);
      case Kernel::MatMul: return prologMatMul(b, ctx);
      case Kernel::Hash: return prologHash(b, ctx);
      case Kernel::Compress: return prologCompress(b, ctx);
      case Kernel::CallTree: return prologCallTree(b, ctx);
      case Kernel::Sparse: return prologSparse(b, ctx);
    }
    SER_PANIC("emitKernelProlog: bad kernel");
}

std::uint64_t
emitKernelBody(AsmBuilder &b, KernelContext &ctx)
{
    switch (ctx.profile.kernel) {
      case Kernel::PointerChase: return bodyPointerChase(b, ctx);
      case Kernel::Stream: return bodyStream(b, ctx);
      case Kernel::Stencil: return bodyStencil(b, ctx);
      case Kernel::MatMul: return bodyMatMul(b, ctx);
      case Kernel::Hash: return bodyHash(b, ctx);
      case Kernel::Compress: return bodyCompress(b, ctx);
      case Kernel::CallTree: return bodyCallTree(b, ctx);
      case Kernel::Sparse: return bodySparse(b, ctx);
    }
    SER_PANIC("emitKernelBody: bad kernel");
}

void
emitKernelFunctions(AsmBuilder &b, KernelContext &ctx)
{
    if (ctx.profile.kernel != Kernel::CallTree)
        return;
    std::uint64_t full = ctx.profile.wsWords - 1;
    std::uint64_t hot = std::min<std::uint64_t>(full, 511);
    std::string leaf = b.newLabel("tleaf");
    b.label("tfunc");
    b.op("st8 [r58, 0] = r62");
    b.op("addi r58 = r58, 8");
    b.op("addi r11 = r10, 7");
    b.op("mul r11 = r11, r11");
    b.op("xor r63 = r63, r11");
    // Symbol-table probes: one hot per call, plus an occasional
    // (if-converted) probe anywhere in the table, at addresses that
    // keep wandering (LCG-driven) so the cold probes stay cold.
    b.op("mul r61 = r61, r30");
    b.op("add r61 = r61, r31");
    b.op("shri r16 = r61, 16");
    b.op("andi r12 = r16, " + num(hot));
    b.op("shli r13 = r12, 3");
    b.op("add r14 = r50, r13");
    b.op("ld8 r15 = [r14, 0]");
    b.op("andi r23 = r16, 7");
    b.op("cmpieq p7 = r23, 0");
    b.op("andi r24 = r16, " + num(full));
    b.op("shli r25 = r24, 3");
    b.op("add r26 = r50, r25");
    b.pred(7, "ld8 r27 = [r26, 0]");
    b.op("xor r63 = r63, r15");
    b.pred(7, "xor r63 = r63, r27");
    // Compiler-like codes are mispredict-heavy: a data-dependent
    // branch per call.
    {
        std::string skip = b.newLabel("tbr");
        b.op("andi r38 = r15, 255");
        b.op("cmpilt p6 = r38, 176");
        b.pred(6, "br " + skip);
        b.op("addi r63 = r63, 5");
        b.op("xori r37 = r63, 51");
        b.op("add r63 = r63, r37");
        b.label(skip);
    }
    b.op("cmpilt p5 = r10, 1");
    b.pred(5, "br " + leaf);
    b.op("addi r10 = r10, -1");
    b.op("call r62 = tfunc");
    b.label(leaf);
    // Frame-local dead writes, placed just before the return so
    // their overwrite (the caller frame's same writes) happens after
    // this frame exits: return-established FDDs (Figure 3).
    b.op("add r20 = r11, r10");
    b.op("add r21 = r63, r11");
    b.op("shli r22 = r11, 2");
    b.op("addi r58 = r58, -8");
    b.op("ld8 r62 = [r58, 0]");
    b.op("ret r62");
}

} // namespace workloads
} // namespace ser
