/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Everything stochastic in the simulator draws from an explicitly
 * seeded Rng so that every experiment is exactly reproducible. The
 * generator is xoshiro256** (Blackman & Vigna), which is fast, has a
 * 2^256-1 period, and passes BigCrush.
 */

#ifndef SER_SIM_RNG_HH
#define SER_SIM_RNG_HH

#include <cstdint>

namespace ser
{

/**
 * A small, fast, seedable PRNG (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * used with standard <random> distributions if needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /**
     * Counter-based construction: an independent stream keyed by
     * (seed, index). Unlike drawing sequentially from one Rng(seed),
     * the stream for a given index does not depend on how many draws
     * any other index made, so work sharded across threads — or
     * resumed from a checkpoint — samples exactly the same points.
     * The key is derived by finalizing seed and index through two
     * rounds of the splitmix64 mixer before seeding xoshiro256**.
     */
    static Rng keyed(std::uint64_t seed, std::uint64_t index);

    /** Re-seed the generator. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform integer in [0, bound), bias-free; bound must be > 0. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t rangeInclusive(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Geometric-ish pick: index in [0, n) biased toward 0 with the
     * given decay in (0, 1); used for skewed workload choices. */
    std::uint64_t skewed(std::uint64_t n, double decay);

  private:
    std::uint64_t s_[4];
};

} // namespace ser

#endif // SER_SIM_RNG_HH
