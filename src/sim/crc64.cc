#include "crc64.hh"

namespace ser
{

namespace
{

/** Reflected ECMA-182 polynomial (0x42F0E1EBA9EA3693 bit-reversed). */
constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ull;

struct Crc64Table
{
    std::uint64_t entries[256];

    constexpr Crc64Table() : entries()
    {
        for (std::uint32_t byte = 0; byte < 256; ++byte) {
            std::uint64_t crc = byte;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ (crc & 1 ? kPoly : 0);
            entries[byte] = crc;
        }
    }
};

constexpr Crc64Table kTable;

} // namespace

std::uint64_t
crc64(std::uint64_t crc, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
    while (len--)
        crc = (crc >> 8) ^ kTable.entries[(crc ^ *p++) & 0xff];
    return ~crc;
}

} // namespace ser
