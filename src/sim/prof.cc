#include "prof.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "sim/logging.hh"

namespace ser
{
namespace prof
{

namespace detail
{
std::atomic<bool> enabledFlag{false};
} // namespace detail

namespace
{

/** One thread's counter slots. Fixed-size so the owning thread's
 * relaxed stores never race a reallocation; the registry below
 * tracks live buffers and folds a buffer into the retired totals
 * when its thread exits. */
struct ThreadBuffer
{
    std::atomic<std::uint64_t> slots[maxCounters] = {};
};

struct ScopeAcc
{
    std::uint64_t calls = 0;
    double seconds = 0.0;
};

/** Global interning table, live-thread list and retired totals.
 * All cold-path state: the mutex is taken on interning, thread
 * birth/death, scope exit and snapshot — never on Counter::add. */
struct Registry
{
    std::mutex lock;
    std::vector<std::string> names;      // by counter id
    std::vector<std::string> descs;      // by counter id
    std::map<std::string, std::size_t> ids;
    std::uint64_t retired[maxCounters] = {};
    std::vector<ThreadBuffer *> live;
    std::map<std::string, ScopeAcc> scopes;
};

Registry &
registry()
{
    static Registry *r = new Registry;  // leaked: outlives TLS dtors
    return *r;
}

/** Registers with the registry at first touch and retires (merges
 * and unregisters) at thread exit. */
struct ThreadBufferHolder
{
    ThreadBuffer buffer;

    ThreadBufferHolder()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> guard(r.lock);
        r.live.push_back(&buffer);
    }

    ~ThreadBufferHolder()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> guard(r.lock);
        for (std::size_t i = 0; i < maxCounters; ++i)
            r.retired[i] +=
                buffer.slots[i].load(std::memory_order_relaxed);
        r.live.erase(std::find(r.live.begin(), r.live.end(),
                               &buffer));
    }
};

ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBufferHolder holder;
    return holder.buffer;
}

thread_local std::string openScopePath;

} // namespace

void
setEnabled(bool on)
{
    detail::enabledFlag.store(on, std::memory_order_relaxed);
}

Counter::Counter(std::string_view name, std::string_view desc)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    auto it = r.ids.find(std::string(name));
    if (it != r.ids.end()) {
        _id = it->second;
        return;
    }
    if (r.names.size() >= maxCounters)
        SER_PANIC("prof: more than {} counters interned (adding "
                  "'{}')", maxCounters, std::string(name));
    _id = r.names.size();
    r.names.emplace_back(name);
    r.descs.emplace_back(desc);
    r.ids.emplace(r.names.back(), _id);
}

void
Counter::add(std::uint64_t v)
{
    if (!enabled())
        return;
    // Single-writer slot: a plain load/store pair is cheaper than a
    // locked RMW and still gives snapshot() untorn reads.
    std::atomic<std::uint64_t> &slot = threadBuffer().slots[_id];
    slot.store(slot.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(std::string_view name)
    : _active(enabled())
{
    if (!_active)
        return;
    _parentLen = openScopePath.size();
    if (_parentLen)
        openScopePath += '/';
    openScopePath += name;
    _start = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer()
{
    if (!_active)
        return;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - _start;
    Registry &r = registry();
    {
        std::lock_guard<std::mutex> guard(r.lock);
        ScopeAcc &acc = r.scopes[openScopePath];
        acc.calls += 1;
        acc.seconds += elapsed.count();
    }
    openScopePath.resize(_parentLen);
}

Snapshot
snapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);

    Snapshot snap;
    snap.counters.reserve(r.names.size());
    for (std::size_t i = 0; i < r.names.size(); ++i) {
        CounterSample s;
        s.name = r.names[i];
        s.desc = r.descs[i];
        s.value = r.retired[i];
        for (ThreadBuffer *buffer : r.live)
            s.value +=
                buffer->slots[i].load(std::memory_order_relaxed);
        snap.counters.push_back(std::move(s));
    }
    std::sort(snap.counters.begin(), snap.counters.end(),
              [](const CounterSample &a, const CounterSample &b) {
                  return a.name < b.name;
              });

    snap.scopes.reserve(r.scopes.size());
    for (const auto &entry : r.scopes)
        snap.scopes.push_back(
            {entry.first, entry.second.calls, entry.second.seconds});
    // std::map iterates sorted already; keep it explicit anyway.
    return snap;
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    for (std::size_t i = 0; i < maxCounters; ++i)
        r.retired[i] = 0;
    for (ThreadBuffer *buffer : r.live)
        for (std::size_t i = 0; i < maxCounters; ++i)
            buffer->slots[i].store(0, std::memory_order_relaxed);
    r.scopes.clear();
}

} // namespace prof
} // namespace ser
