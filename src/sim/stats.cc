#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "json.hh"
#include "logging.hh"

namespace ser
{
namespace statistics
{

StatBase::StatBase(StatGroup *parent, std::string name,
                   std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

void
StatBase::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << _name << " " << value() << " # " << _desc << "\n";
}

void
StatBase::dumpJson(json::JsonWriter &jw) const
{
    jw.value(value());
}

double
Average::value() const
{
    return _count ? _sum / static_cast<double>(_count) : 0.0;
}

void
Average::reset()
{
    _sum = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
    _count = 0;
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::mean " << value() << " # " << desc()
       << "\n";
    os << prefix << name() << "::count " << _count << "\n";
    if (_count) {
        os << prefix << name() << "::min " << _min << "\n";
        os << prefix << name() << "::max " << _max << "\n";
    }
}

void
Average::dumpJson(json::JsonWriter &jw) const
{
    jw.beginObject();
    jw.kv("mean", value());
    jw.kv("min", minValue());
    jw.kv("max", maxValue());
    jw.kv("count", _count);
    jw.endObject();
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double min, double max,
                           double bucket_size)
    : StatBase(parent, std::move(name), std::move(desc)),
      _min(min), _max(max), _bucketSize(bucket_size)
{
    if (bucket_size <= 0.0 || max <= min)
        SER_PANIC("Distribution {}: bad bucket spec [{}, {}) / {}",
                  this->name(), min, max, bucket_size);
    auto n = static_cast<std::size_t>(
        std::ceil((max - min) / bucket_size));
    _buckets.assign(n, 0);
}

double
Distribution::value() const
{
    return _count ? _sum / static_cast<double>(_count) : 0.0;
}

double
Distribution::percentile(double p) const
{
    if (!_count)
        return 0.0;
    if (p <= 0.0)
        return _min;
    if (p > 100.0)
        p = 100.0;
    // The sample of rank 'target' (1-based) is the percentile; walk
    // the cumulative counts until the rank falls inside a bucket and
    // interpolate linearly within it.
    double target = p / 100.0 * static_cast<double>(_count);
    double cum = static_cast<double>(_underflow);
    if (target <= cum)
        return _min;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        double b = static_cast<double>(_buckets[i]);
        if (b > 0.0 && target <= cum + b) {
            double lo = _min + static_cast<double>(i) * _bucketSize;
            return lo + (target - cum) / b * _bucketSize;
        }
        cum += b;
    }
    return _max;  // the rank lives in the overflow bin
}

std::uint64_t
Distribution::bucketCount(std::size_t i) const
{
    if (i >= _buckets.size())
        SER_PANIC("Distribution {}: bucket {} out of range", name(), i);
    return _buckets[i];
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = 0.0;
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::mean " << value() << " # " << desc()
       << "\n";
    os << prefix << name() << "::count " << _count << "\n";
    if (_count) {
        os << prefix << name() << "::p50 " << percentile(50) << "\n";
        os << prefix << name() << "::p90 " << percentile(90) << "\n";
        os << prefix << name() << "::p99 " << percentile(99) << "\n";
    }
    if (_underflow)
        os << prefix << name() << "::underflows " << _underflow << "\n";
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (!_buckets[i])
            continue;
        double lo = _min + static_cast<double>(i) * _bucketSize;
        os << prefix << name() << "::[" << lo << ","
           << lo + _bucketSize << ") " << _buckets[i] << "\n";
    }
    if (_overflow)
        os << prefix << name() << "::overflows " << _overflow << "\n";
}

void
Distribution::dumpJson(json::JsonWriter &jw) const
{
    jw.beginObject();
    jw.kv("mean", value());
    jw.kv("count", _count);
    jw.kv("p50", percentile(50));
    jw.kv("p90", percentile(90));
    jw.kv("p99", percentile(99));
    jw.kv("min", _min);
    jw.kv("bucket_size", _bucketSize);
    jw.kv("underflows", _underflow);
    jw.kv("overflows", _overflow);
    jw.key("buckets").beginArray();
    for (std::uint64_t bucket : _buckets)
        jw.value(bucket);
    jw.endArray();
    jw.endObject();
}

Formula::Formula(StatGroup *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(parent, std::move(name), std::move(desc)),
      _fn(std::move(fn))
{
    if (!_fn)
        SER_PANIC("Formula {} constructed with empty function",
                  this->name());
}

double
Formula::value() const
{
    return _fn();
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), _parent(parent)
{
    if (_parent)
        _parent->_children.push_back(this);
}

StatGroup::~StatGroup()
{
    if (_parent) {
        auto &sibs = _parent->_children;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this),
                   sibs.end());
    }
}

void
StatGroup::addStat(StatBase *stat)
{
    _stats.push_back(stat);
}

void
StatGroup::dumpStats(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? _name : prefix + "." + _name;
    if (!full.empty())
        full += ".";
    for (const auto *stat : _stats)
        stat->print(os, full);
    std::string child_prefix =
        prefix.empty() ? _name : prefix + "." + _name;
    for (const auto *child : _children)
        child->dumpStats(os, child_prefix);
}

void
StatGroup::dumpJson(json::JsonWriter &jw) const
{
    jw.key(_name);
    jw.beginObject();
    for (const auto *stat : _stats) {
        jw.key(stat->name());
        stat->dumpJson(jw);
    }
    for (const auto *child : _children)
        child->dumpJson(jw);
    jw.endObject();
}

void
StatGroup::resetStats()
{
    for (auto *stat : _stats)
        stat->reset();
    for (auto *child : _children)
        child->resetStats();
}

const StatBase *
StatGroup::findStat(const std::string &name) const
{
    for (const auto *stat : _stats) {
        if (stat->name() == name)
            return stat;
    }
    return nullptr;
}

} // namespace statistics
} // namespace ser
