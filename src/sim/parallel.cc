#include "parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ser
{

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    std::size_t workers = std::min<std::size_t>(jobs ? jobs : 1, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // A shared claim counter hands out indices; each worker drains
    // until the queue is empty. Results (written by fn) are indexed
    // by i, so scheduling never affects aggregation order.
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex errorLock;
    auto work = [&] {
        for (;;) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(errorLock);
                if (!error)
                    error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(work);
    work();  // the calling thread is worker 0
    for (auto &thread : pool)
        thread.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace ser
