#include "parallel.hh"

#include <algorithm>
#include <exception>
#include <mutex>

namespace ser
{

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    std::size_t workers = std::min<std::size_t>(jobs ? jobs : 1, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Indices flow caller -> workers through the bounded MPMC ring.
    // The ring is deliberately small: a full ring just blocks the
    // producer, and fn's results are indexed by i, so scheduling
    // never affects aggregation order.
    MpmcQueue<std::size_t> queue(std::min<std::size_t>(n, 1024));
    std::exception_ptr error;
    std::mutex errorLock;

    auto consume = [&] {
        std::size_t i;
        while (queue.pop(&i)) {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(errorLock);
                if (!error)
                    error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(consume);

    for (std::size_t i = 0; i < n; ++i)
        queue.push(i);
    queue.close();
    consume();  // the calling thread drains the tail as worker 0

    for (auto &thread : pool)
        thread.join();
    if (error)
        std::rethrow_exception(error);
}

WorkerPool::WorkerPool(unsigned threads, std::size_t queueCapacity)
    : _queue(queueCapacity)
{
    unsigned count = threads ? threads : 1;
    _threads.reserve(count);
    for (unsigned t = 0; t < count; ++t) {
        _threads.emplace_back([this] {
            std::function<void()> job;
            while (_queue.pop(&job))
                job();
        });
    }
}

WorkerPool::~WorkerPool()
{
    _queue.close();
    for (auto &thread : _threads)
        thread.join();
}

void
WorkerPool::submit(std::function<void()> job)
{
    _queue.push(std::move(job));
}

} // namespace ser
