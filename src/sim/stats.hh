/**
 * @file
 * A small hierarchical statistics package in the spirit of gem5's.
 *
 * Components own a StatGroup; individual statistics register
 * themselves with the group at construction. A group can dump all of
 * its statistics (and those of its child groups) as a name/value
 * table, and can reset them between measurement regions.
 *
 * Supported statistic kinds:
 *  - Scalar: a monotonically adjusted counter / accumulator.
 *  - Average: accumulates samples, reports mean / min / max / count.
 *  - Distribution: fixed-bucket histogram with underflow/overflow.
 *  - Formula: a lazily evaluated function of other statistics.
 */

#ifndef SER_SIM_STATS_HH
#define SER_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace ser
{

namespace json
{
class JsonWriter;
}

namespace statistics
{

class StatGroup;

/** Abstract base for every statistic. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Primary scalar value of this statistic (mean for Average). */
    virtual double value() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** Print one or more "name value # desc" lines. */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const;

    /** Emit this statistic's value node (the caller wrote the key).
     * Scalars and formulas emit a bare number; multi-valued kinds
     * emit an object. */
    virtual void dumpJson(json::JsonWriter &jw) const;

  private:
    std::string _name;
    std::string _desc;
};

/** A simple additive counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { _value += 1.0; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const override { return _value; }
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** Mean / min / max / count over a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    /**
     * Record `weight` identical observations of `v` in one call
     * (mirrors Distribution::sample). The accumulation is exact for
     * the integral values the pipeline samples — `v * weight` equals
     * `weight` repeated additions whenever both fit in the 53-bit
     * mantissa — which is what lets the cycle-skipping scheduler fold
     * a whole idle span into a single weighted sample without
     * perturbing any printed statistic.
     *
     * Defined inline: the pipeline samples several averages every
     * simulated cycle, and the body is a handful of scalar ops.
     */
    void sample(double v, std::uint64_t weight = 1)
    {
        if (weight == 0)
            return;
        _sum += v * static_cast<double>(weight);
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
        _count += weight;
    }

    double value() const override;  // the mean
    std::uint64_t count() const { return _count; }
    double total() const { return _sum; }
    double minValue() const { return _count ? _min : 0.0; }
    double maxValue() const { return _count ? _max : 0.0; }

    void reset() override;
    void print(std::ostream &os,
               const std::string &prefix) const override;
    void dumpJson(json::JsonWriter &jw) const override;

  private:
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
    std::uint64_t _count = 0;
};

/** Fixed-width-bucket histogram with underflow and overflow bins. */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double min, double max, double bucket_size);

    /** Inline for the same reason as Average::sample — it sits on
     * the pipeline's per-cycle path (issue-width histogram). */
    void sample(double v, std::uint64_t weight = 1)
    {
        _count += weight;
        _sum += v * static_cast<double>(weight);
        if (v < _min) {
            _underflow += weight;
        } else if (v >= _max) {
            _overflow += weight;
        } else {
            auto idx =
                static_cast<std::size_t>((v - _min) / _bucketSize);
            if (idx >= _buckets.size())
                idx = _buckets.size() - 1;
            _buckets[idx] += weight;
        }
    }

    double value() const override;  // the mean
    /**
     * Exact percentile from linear interpolation inside the bucket
     * the rank falls into (p in [0, 100]). Underflowed samples pin
     * to the range minimum and overflowed samples to the range
     * maximum — the histogram does not know their true values.
     * Returns 0 when no samples have been recorded.
     */
    double percentile(double p) const;
    std::uint64_t count() const { return _count; }
    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t numBuckets() const { return _buckets.size(); }
    std::uint64_t underflows() const { return _underflow; }
    std::uint64_t overflows() const { return _overflow; }

    void reset() override;
    void print(std::ostream &os,
               const std::string &prefix) const override;
    void dumpJson(json::JsonWriter &jw) const override;

  private:
    double _min;
    double _max;
    double _bucketSize;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
};

/** A lazily evaluated function of other statistics. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const override;
    void reset() override {}

  private:
    std::function<double()> _fn;
};

/**
 * A named collection of statistics and child groups.
 *
 * Groups form a tree; dump() walks the tree and prints fully
 * qualified statistic names ("cpu.iq.occupancy ...").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &statName() const { return _name; }

    /** Register a statistic (called by StatBase's constructor). */
    void addStat(StatBase *stat);

    /** Print every statistic in this group and its children. */
    void dumpStats(std::ostream &os,
                   const std::string &prefix = "") const;

    /** Emit this group (and its children) as a JSON object member:
     * `"name": { "stat": value, ..., "child": { ... } }`. Must be
     * called inside an open JSON object. */
    void dumpJson(json::JsonWriter &jw) const;

    /** Reset every statistic in this group and its children. */
    void resetStats();

    /** Find a statistic in this group by local name, or nullptr. */
    const StatBase *findStat(const std::string &name) const;

  private:
    std::string _name;
    StatGroup *_parent;
    std::vector<StatBase *> _stats;
    std::vector<StatGroup *> _children;
};

} // namespace statistics
} // namespace ser

#endif // SER_SIM_STATS_HH
