/**
 * @file
 * gem5-style per-component debug trace flags.
 *
 * Components trace with SER_DPRINTF(Flag, "fmt {}", args...). A
 * message is formatted only when its flag is selected, so disabled
 * tracing costs one mask test per call site and the default output
 * of every binary is unchanged.
 *
 * Two selection masks exist:
 *  - the *print* mask sends messages to stderr as they happen
 *    (SER_DEBUG_FLAGS=Trigger,IQ or Config key debug_flags=...);
 *  - the *capture* mask records messages into a bounded ring buffer
 *    only (SER_DEBUG_RING=...), whose tail SER_PANIC dumps, so
 *    crashes come with recent context without per-cycle spam.
 * Printing implies capturing.
 *
 * Flag names are case-insensitive; "All" selects everything.
 */

#ifndef SER_SIM_DEBUG_HH
#define SER_SIM_DEBUG_HH

#include <atomic>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace ser
{
namespace debug
{

/** One flag per traceable component. */
enum class Flag : unsigned
{
    Pipeline,  ///< pipeline phases: run, squash, window, drain
    IQ,        ///< per-instruction queue events (verbose)
    Trigger,   ///< exposure trigger decisions and squashes
    Pi,        ///< pi-bit tracking machine transitions
    PET,       ///< PET-buffer lookups and coverage decisions
    Cache,     ///< cache-hierarchy accesses below the L0
    NumFlags
};

constexpr unsigned numFlags = static_cast<unsigned>(Flag::NumFlags);

const char *flagName(Flag flag);

/** Bitmasks of selected flags (exposed for the fast-path test).
 * Atomic so SuiteRunner workers can trace concurrently; the hot
 * path below uses relaxed loads, which cost the same mask test as
 * the plain globals did. */
extern std::atomic<unsigned> printMask;
extern std::atomic<unsigned> captureMask;

/** True when the flag is selected for printing or capture. */
inline bool
enabled(Flag flag)
{
    return ((printMask.load(std::memory_order_relaxed) |
             captureMask.load(std::memory_order_relaxed)) >>
            static_cast<unsigned>(flag)) & 1u;
}

/**
 * Parse a comma-separated flag list ("Trigger,IQ", "all", "") into a
 * bitmask; returns false (mask untouched) on an unknown name.
 */
bool parseFlags(const std::string &csv, unsigned *mask);

/** Select flags for printing (and capture); fatal on unknown names. */
void setFlags(const std::string &csv);

/** Select flags for ring capture only; fatal on unknown names. */
void setCaptureFlags(const std::string &csv);

/** Route one already-formatted message (print and/or capture).
 * Thread-safe: printing holds the process-wide stderr line lock and
 * the ring is mutex-protected, so concurrent workers never interleave
 * characters within a line or race on the ring slots. */
void record(Flag flag, const std::string &msg);

/** Resize (and clear) the ring buffer. */
void setRingCapacity(std::size_t entries);

/** Drop all captured messages. */
void clearRing();

/** Captured messages, oldest first. */
std::vector<std::string> ringContents();

/** Print the most recent captured messages, oldest first. */
void dumpRingTail(std::ostream &os, std::size_t max_entries = 64);

} // namespace debug
} // namespace ser

/** Trace a component event when its debug flag is selected. */
#define SER_DPRINTF(flag, ...)                                         \
    do {                                                               \
        if (::ser::debug::enabled(::ser::debug::Flag::flag)) {         \
            ::ser::debug::record(                                      \
                ::ser::debug::Flag::flag,                              \
                ::ser::logging_detail::format(__VA_ARGS__));           \
        }                                                              \
    } while (0)

#endif // SER_SIM_DEBUG_HH
