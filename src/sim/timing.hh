/**
 * @file
 * Wall-clock phase timing for run manifests.
 *
 * The harness brackets each phase of an experiment (workload build,
 * pipeline run, deadness analysis, AVF fold, false-DUE analysis)
 * with a ScopedTimer; the accumulated PhaseTimings are emitted into
 * the run manifest so regressions in simulator throughput are
 * visible per phase, per run.
 */

#ifndef SER_SIM_TIMING_HH
#define SER_SIM_TIMING_HH

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace ser
{

/** Ordered (phase name, seconds) pairs for one run. */
struct PhaseTimings
{
    std::vector<std::pair<std::string, double>> phases;

    void
    add(std::string name, double seconds)
    {
        phases.emplace_back(std::move(name), seconds);
    }

    double
    totalSeconds() const
    {
        double total = 0.0;
        for (const auto &p : phases)
            total += p.second;
        return total;
    }
};

/** Adds the lifetime of the scope to a PhaseTimings entry. */
class ScopedTimer
{
  public:
    ScopedTimer(PhaseTimings &timings, std::string name)
        : _timings(timings), _name(std::move(name)),
          _start(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - _start;
        _timings.add(std::move(_name), elapsed.count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    PhaseTimings &_timings;
    std::string _name;
    std::chrono::steady_clock::time_point _start;
};

} // namespace ser

#endif // SER_SIM_TIMING_HH
