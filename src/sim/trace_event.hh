/**
 * @file
 * Streaming Chrome trace-event / Perfetto-compatible JSON writing.
 *
 * A TraceWriter turns simulator activity into the JSON Array Format
 * chrome://tracing and ui.perfetto.dev load natively: `B`/`E`
 * duration events, `i` instant events, `C` counter events and `M`
 * metadata (process/thread names), all serialized through
 * json::JsonWriter so the output is exactly the JSON dialect the
 * in-tree parser accepts.
 *
 * Mapping from simulator concepts:
 *  - one *run* is one trace process (`pid`); its name labels the
 *    benchmark and design point;
 *  - one *track* (`tid`) is one hardware structure whose occupancies
 *    never overlap — most importantly each physical IQ entry, so the
 *    64 entry tracks render the queue's exposure "skyline" directly;
 *  - the timestamp unit is the simulated cycle (written to `ts`,
 *    nominally microseconds — absolute scale is meaningless for a
 *    cycle-accurate model and Perfetto only needs ordering).
 *
 * A writer buffers one run's events as a comma-separated fragment;
 * writeChromeTrace() joins the fragments of any number of runs (in
 * submission order, so parallel sweeps stay byte-deterministic) into
 * one valid document:
 *
 *     { "traceEvents": [ ... ], "displayTimeUnit": "ms" }
 *
 * Within a track the writer enforces what the viewers require:
 * E events must match an open B (panic otherwise) and timestamps
 * must be monotonically non-decreasing (panic otherwise) — the
 * check_trace_events tool re-validates both on the written file.
 */

#ifndef SER_SIM_TRACE_EVENT_HH
#define SER_SIM_TRACE_EVENT_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ser
{
namespace trace
{

/** One "args" member: a key with a string, integer or real value. */
struct Arg
{
    enum class Kind : std::uint8_t { Uint, Int, Real, Str };

    Arg(std::string_view k, std::uint64_t v)
        : key(k), kind(Kind::Uint), uintValue(v) {}
    Arg(std::string_view k, std::uint32_t v)
        : Arg(k, static_cast<std::uint64_t>(v)) {}
    Arg(std::string_view k, std::int64_t v)
        : key(k), kind(Kind::Int), intValue(v) {}
    Arg(std::string_view k, int v)
        : Arg(k, static_cast<std::int64_t>(v)) {}
    Arg(std::string_view k, double v)
        : key(k), kind(Kind::Real), realValue(v) {}
    Arg(std::string_view k, std::string_view v)
        : key(k), kind(Kind::Str), strValue(v) {}
    Arg(std::string_view k, const char *v)
        : Arg(k, std::string_view(v)) {}

    std::string_view key;
    Kind kind;
    std::uint64_t uintValue = 0;
    std::int64_t intValue = 0;
    double realValue = 0.0;
    std::string_view strValue;
};

using Args = std::initializer_list<Arg>;

/**
 * The track-id (tid) layout shared by every emitting component, so
 * merged traces render consistently: low tids are special-purpose
 * tracks, instruction-queue entry tracks start at iqBase.
 */
namespace tracks
{
constexpr std::uint32_t counters = 0;   ///< counter events
constexpr std::uint32_t pipeline = 1;   ///< squash/trigger instants
constexpr std::uint32_t throttle = 2;   ///< fetch-throttle windows
constexpr std::uint32_t petBuffer = 3;  ///< pi/PET instants (retire
                                        ///< index timebase)
constexpr std::uint32_t iqBase = 16;    ///< + physical IQ entry
} // namespace tracks

/** Buffers one run's events as a Chrome trace fragment. */
class TraceWriter
{
  public:
    /** All events carry this process id; one pid per run keeps the
     * per-run tracks separate when fragments are merged. */
    explicit TraceWriter(std::uint32_t pid = 1) : _pid(pid) {}

    std::uint32_t pid() const { return _pid; }

    /** Name this run's process row in the viewer (M event). */
    void processName(std::string_view name);

    /** Name one track (M event); emit before the track's events. */
    void threadName(std::uint32_t tid, std::string_view name);

    /** Open a duration slice on a track. Slices on one track must
     * nest; ts must be >= the track's previous event. */
    void begin(std::uint32_t tid, std::string_view name,
               std::uint64_t ts, Args args = {});

    /** Close the innermost open slice on the track. */
    void end(std::uint32_t tid, std::uint64_t ts);

    /** A zero-duration marker (thread-scoped instant). */
    void instant(std::uint32_t tid, std::string_view name,
                 std::uint64_t ts, Args args = {});

    /** A counter sample; each arg is one series of the counter. */
    void counter(std::string_view name, std::uint64_t ts, Args args);

    /** Events emitted so far (metadata included). */
    std::uint64_t eventCount() const { return _events; }

    /** True when every begun slice has been ended. */
    bool balanced() const;

    /** The buffered fragment: `{...},{...},...` (may be empty). */
    std::string str() const { return _buf.str(); }

  private:
    struct TrackState
    {
        std::uint64_t openSlices = 0;
        std::uint64_t lastTs = 0;
        bool sawEvent = false;
    };

    void writeEvent(char ph, std::uint32_t tid, std::uint64_t ts,
                    std::string_view name, Args args, bool with_args);
    TrackState &track(std::uint32_t tid);

    std::uint32_t _pid;
    std::uint64_t _events = 0;
    std::ostringstream _buf;
    std::map<std::uint32_t, TrackState> _tracks;
};

/**
 * Join run fragments (in order) into one complete Chrome trace
 * document. Empty fragments are skipped; an all-empty set still
 * produces a valid document with an empty traceEvents array.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<std::string> &fragments);

/** As above, without copying the (potentially large) fragments. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<const std::string *> &fragments);

} // namespace trace
} // namespace ser

#endif // SER_SIM_TRACE_EVENT_HH
