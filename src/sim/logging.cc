#include "logging.hh"

#include "debug.hh"

namespace ser
{

namespace logging_detail
{

bool quiet = false;

std::mutex &
stderrLock()
{
    static std::mutex lock;
    return lock;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Failures come with context: dump the tail of the debug trace
    // ring (populated by SER_DPRINTF under SER_DEBUG_FLAGS /
    // SER_DEBUG_RING) before aborting. Hold the line lock so a
    // panicking worker's report stays contiguous.
    std::lock_guard<std::mutex> guard(stderrLock());
    debug::dumpRingTail(std::cerr);
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> guard(stderrLock());
        std::cerr << "fatal: " << msg << "\n  @ " << file << ":"
                  << line << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet) {
        std::lock_guard<std::mutex> guard(stderrLock());
        std::cerr << "warn: " << msg << std::endl;
    }
}

void
informImpl(const std::string &msg)
{
    if (!quiet)
        std::cout << "info: " << msg << std::endl;
}

} // namespace logging_detail

void
setLogQuiet(bool quiet)
{
    logging_detail::quiet = quiet;
}

} // namespace ser
