#include "debug.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>

namespace ser
{
namespace debug
{

std::atomic<unsigned> printMask{0};
std::atomic<unsigned> captureMask{0};

namespace
{

/** Bounded message ring; writes wrap once full. Guarded by
 * ringLock: SuiteRunner workers record concurrently. */
struct Ring
{
    std::vector<std::string> slots;
    std::size_t next = 0;   ///< next slot to write
    std::size_t count = 0;  ///< live entries (<= slots.size())

    Ring() : slots(256) {}
} ring;

std::mutex ringLock;

std::string
lowercase(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Read SER_DEBUG_FLAGS / SER_DEBUG_RING once at program start. */
struct EnvInit
{
    EnvInit()
    {
        if (const char *flags = std::getenv("SER_DEBUG_FLAGS"))
            setFlags(flags);
        if (const char *capture = std::getenv("SER_DEBUG_RING"))
            setCaptureFlags(capture);
    }
} envInit;

} // namespace

const char *
flagName(Flag flag)
{
    switch (flag) {
      case Flag::Pipeline: return "Pipeline";
      case Flag::IQ: return "IQ";
      case Flag::Trigger: return "Trigger";
      case Flag::Pi: return "Pi";
      case Flag::PET: return "PET";
      case Flag::Cache: return "Cache";
      case Flag::NumFlags: break;
    }
    return "?";
}

bool
parseFlags(const std::string &csv, unsigned *mask)
{
    unsigned out = 0;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty())
            continue;
        std::string want = lowercase(item);
        if (want == "all" || want == "1") {
            out = (1u << numFlags) - 1;
            continue;
        }
        if (want == "none" || want == "0")
            continue;
        bool found = false;
        for (unsigned f = 0; f < numFlags; ++f) {
            if (lowercase(flagName(static_cast<Flag>(f))) == want) {
                out |= 1u << f;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    *mask = out;
    return true;
}

void
setFlags(const std::string &csv)
{
    unsigned mask = 0;
    if (!parseFlags(csv, &mask))
        SER_FATAL("debug: unknown flag in '{}' (known: Pipeline, IQ, "
                  "Trigger, Pi, PET, Cache, All)", csv);
    printMask.store(mask, std::memory_order_relaxed);
}

void
setCaptureFlags(const std::string &csv)
{
    unsigned mask = 0;
    if (!parseFlags(csv, &mask))
        SER_FATAL("debug: unknown flag in '{}' (known: Pipeline, IQ, "
                  "Trigger, Pi, PET, Cache, All)", csv);
    captureMask.store(mask, std::memory_order_relaxed);
}

void
record(Flag flag, const std::string &msg)
{
    std::string line =
        std::string("[") + flagName(flag) + "] " + msg;
    unsigned bit = 1u << static_cast<unsigned>(flag);
    if (printMask.load(std::memory_order_relaxed) & bit) {
        // One lock per line: concurrent workers' messages interleave
        // by whole lines, never by characters.
        std::lock_guard<std::mutex> guard(
            logging_detail::stderrLock());
        std::cerr << line << "\n";
    }
    if ((printMask.load(std::memory_order_relaxed) |
         captureMask.load(std::memory_order_relaxed)) & bit) {
        std::lock_guard<std::mutex> guard(ringLock);
        ring.slots[ring.next] = std::move(line);
        ring.next = (ring.next + 1) % ring.slots.size();
        ring.count = std::min(ring.count + 1, ring.slots.size());
    }
}

void
setRingCapacity(std::size_t entries)
{
    if (entries == 0)
        entries = 1;
    std::lock_guard<std::mutex> guard(ringLock);
    ring.slots.assign(entries, {});
    ring.next = 0;
    ring.count = 0;
}

void
clearRing()
{
    std::lock_guard<std::mutex> guard(ringLock);
    for (auto &slot : ring.slots)
        slot.clear();
    ring.next = 0;
    ring.count = 0;
}

std::vector<std::string>
ringContents()
{
    std::lock_guard<std::mutex> guard(ringLock);
    std::vector<std::string> out;
    out.reserve(ring.count);
    std::size_t cap = ring.slots.size();
    std::size_t first = (ring.next + cap - ring.count) % cap;
    for (std::size_t i = 0; i < ring.count; ++i)
        out.push_back(ring.slots[(first + i) % cap]);
    return out;
}

void
dumpRingTail(std::ostream &os, std::size_t max_entries)
{
    std::vector<std::string> all = ringContents();
    if (all.empty())
        return;
    std::size_t start =
        all.size() > max_entries ? all.size() - max_entries : 0;
    os << "--- debug trace ring (last " << (all.size() - start)
       << " of " << all.size() << " captured) ---\n";
    for (std::size_t i = start; i < all.size(); ++i)
        os << all[i] << "\n";
    os << "--- end debug trace ring ---\n";
}

} // namespace debug
} // namespace ser
