/**
 * @file
 * A small open-addressing hash map for the simulator's hot paths.
 *
 * Generalizes the flat-table idiom proven out by the deadness pass
 * (avf/deadness.cc MemState): parallel key/value arrays, a
 * murmur-finalizer bit mix, linear probing, and growth at 0.7 load.
 * Keys are 64-bit integers and the all-ones value is reserved as the
 * empty sentinel, which every current user can guarantee by
 * construction (page indices, cache line addresses and word
 * addresses never reach 2^64-1).
 *
 * Unlike the node-based std::unordered_map this replaces, a probe
 * touches one or two contiguous cache lines and a miss costs no
 * allocation. Deletion uses the standard backward-shift fixup for
 * linear probing, so no tombstones accumulate and lookup cost stays
 * proportional to the live load factor.
 *
 * Iteration (forEach) visits slots in table order, which depends on
 * the hash layout — callers that need deterministic output must sort
 * or otherwise canonicalize what they extract, exactly as they had
 * to with unordered_map.
 */

#ifndef SER_SIM_FLAT_HASH_HH
#define SER_SIM_FLAT_HASH_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ser
{
namespace sim
{

/** Open-addressing map from uint64 keys to trivially-copyable,
 * default-constructible values. The key ~0 is reserved. */
template <typename Value>
class FlatHashMap
{
  public:
    static constexpr std::uint64_t emptyKey = ~std::uint64_t{0};

    FlatHashMap() = default;

    /** Pre-size the table for about n live entries (it still grows on
     * demand past that). */
    explicit FlatHashMap(std::size_t n) { reserve(n); }

    void
    reserve(std::size_t n)
    {
        std::size_t cap = 64;
        while (cap * 7 < n * 10)
            cap <<= 1;
        if (cap > capacity())
            rehash(cap);
    }

    Value *
    find(std::uint64_t key)
    {
        if (_keys.empty())
            return nullptr;
        std::size_t i = probe(key);
        return _keys[i] == key ? &_vals[i] : nullptr;
    }

    const Value *
    find(std::uint64_t key) const
    {
        if (_keys.empty())
            return nullptr;
        std::size_t i = probe(key);
        return _keys[i] == key ? &_vals[i] : nullptr;
    }

    bool contains(std::uint64_t key) const { return find(key); }

    /** The value for 'key', default-inserting it when absent. */
    Value &
    operator[](std::uint64_t key)
    {
        if (_keys.empty())
            rehash(64);
        std::size_t i = probe(key);
        if (_keys[i] != key) {
            if ((_size + 1) * 10 > capacity() * 7) {
                rehash(capacity() * 2);
                i = probe(key);
            }
            _keys[i] = key;
            ++_size;
        }
        return _vals[i];
    }

    /** Remove 'key' if present; backward-shifts the probe run so no
     * tombstone is left behind. */
    bool
    erase(std::uint64_t key)
    {
        if (_keys.empty())
            return false;
        std::size_t i = probe(key);
        if (_keys[i] != key)
            return false;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & _mask;
            if (_keys[j] == emptyKey)
                break;
            // An element probing from home slot h may slide back into
            // the hole at i only if i lies on its probe path, i.e. h
            // is cyclically no later than i.
            std::size_t h = home(_keys[j]);
            if (((j - h) & _mask) >= ((j - i) & _mask)) {
                _keys[i] = _keys[j];
                _vals[i] = _vals[j];
                i = j;
            }
        }
        _keys[i] = emptyKey;
        _vals[i] = Value{};
        --_size;
        return true;
    }

    /** Drop every entry for which pred(key, value) holds. Rebuilds
     * the table in one pass — meant for periodic sweeps, not the
     * per-access path. */
    template <typename Pred>
    void
    eraseIf(Pred pred)
    {
        if (!_size)
            return;
        std::vector<std::uint64_t> keep_keys;
        std::vector<Value> keep_vals;
        keep_keys.reserve(_size);
        keep_vals.reserve(_size);
        for (std::size_t i = 0; i < _keys.size(); ++i) {
            if (_keys[i] == emptyKey || pred(_keys[i], _vals[i]))
                continue;
            keep_keys.push_back(_keys[i]);
            keep_vals.push_back(_vals[i]);
        }
        std::fill(_keys.begin(), _keys.end(), emptyKey);
        std::fill(_vals.begin(), _vals.end(), Value{});
        _size = 0;
        for (std::size_t i = 0; i < keep_keys.size(); ++i)
            (*this)[keep_keys[i]] = keep_vals[i];
    }

    /** Visit every (key, value) pair in table order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t i = 0; i < _keys.size(); ++i) {
            if (_keys[i] != emptyKey)
                f(_keys[i], _vals[i]);
        }
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    void
    clear()
    {
        std::fill(_keys.begin(), _keys.end(), emptyKey);
        std::fill(_vals.begin(), _vals.end(), Value{});
        _size = 0;
    }

  private:
    std::size_t capacity() const { return _mask ? _mask + 1 : 0; }

    static std::size_t
    mix(std::uint64_t key)
    {
        // Murmur3 finalizer: keys on the hot paths (page indices,
        // line addresses) share low zero bits and cluster by region,
        // so a plain mask would probe long runs.
        std::uint64_t h = key;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        return static_cast<std::size_t>(h);
    }

    std::size_t home(std::uint64_t key) const { return mix(key) & _mask; }

    /** Slot holding 'key', or the empty slot where it belongs. */
    std::size_t
    probe(std::uint64_t key) const
    {
        std::size_t i = home(key);
        while (_keys[i] != key && _keys[i] != emptyKey)
            i = (i + 1) & _mask;
        return i;
    }

    void
    rehash(std::size_t cap)
    {
        std::vector<std::uint64_t> old_keys = std::move(_keys);
        std::vector<Value> old_vals = std::move(_vals);
        _keys.assign(cap, emptyKey);
        _vals.assign(cap, Value{});
        _mask = cap - 1;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == emptyKey)
                continue;
            std::size_t j = probe(old_keys[i]);
            _keys[j] = old_keys[i];
            _vals[j] = old_vals[i];
        }
    }

    std::vector<std::uint64_t> _keys;
    std::vector<Value> _vals;
    std::size_t _mask = 0;
    std::size_t _size = 0;
};

} // namespace sim
} // namespace ser

#endif // SER_SIM_FLAT_HASH_HH
