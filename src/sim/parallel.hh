/**
 * @file
 * The shared worker-pool primitive: run fn(i) for every i in [0, n)
 * on up to 'jobs' threads (the calling thread is one of them).
 *
 * This used to live in harness/suite_runner; it is re-homed here so
 * layers below the harness (the fault-injection campaign engine
 * shards its Monte-Carlo batches with it) can fan out without a
 * dependency cycle. harness::parallelFor remains as a thin wrapper
 * that adds the SER_JOBS default resolution.
 *
 * fn must be safe to call concurrently for distinct indices. An
 * exception thrown by fn is re-thrown on the calling thread after
 * all workers drain. jobs == 0 or 1 runs serially inline.
 */

#ifndef SER_SIM_PARALLEL_HH
#define SER_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace ser
{

void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

} // namespace ser

#endif // SER_SIM_PARALLEL_HH
