/**
 * @file
 * The shared worker-pool primitives.
 *
 * parallelFor: run fn(i) for every i in [0, n) on up to 'jobs'
 * threads (the calling thread is one of them). This used to live in
 * harness/suite_runner; it is re-homed here so layers below the
 * harness (the fault-injection campaign engine shards its
 * Monte-Carlo batches with it) can fan out without a dependency
 * cycle. harness::parallelFor remains as a thin wrapper that adds
 * the SER_JOBS default resolution.
 *
 * Since PR 10 the index handoff runs through the bounded lock-free
 * MPMC queue (sim/mpmc_queue.hh) instead of a shared claim counter:
 * the caller produces indices while workers consume, the same
 * dispatch shape the sweep daemon uses to feed cold misses from many
 * HTTP producers into one worker shard pool.
 *
 * fn must be safe to call concurrently for distinct indices. An
 * exception thrown by fn is re-thrown on the calling thread after
 * all workers drain. jobs == 0 or 1 runs serially inline.
 *
 * WorkerPool: a resident pool for long-lived processes (the daemon).
 * Jobs submitted from any thread are executed FIFO-ish by the pool;
 * the destructor drains outstanding jobs and joins.
 */

#ifndef SER_SIM_PARALLEL_HH
#define SER_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "sim/mpmc_queue.hh"

namespace ser
{

void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

class WorkerPool
{
  public:
    explicit WorkerPool(unsigned threads,
                        std::size_t queueCapacity = 256);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Enqueue a job; blocks if the bounded queue is full (natural
     * backpressure on the producer). A job must not throw — the
     * pool has nowhere to deliver the exception, so it terminates.
     */
    void submit(std::function<void()> job);

    unsigned threads() const
    {
        return static_cast<unsigned>(_threads.size());
    }

  private:
    MpmcQueue<std::function<void()>> _queue;
    std::vector<std::thread> _threads;
};

} // namespace ser

#endif // SER_SIM_PARALLEL_HH
